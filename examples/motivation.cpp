// A walkthrough of the paper's motivation (Section III): how task
// placement changes the number of usable OCS circuits and hence the coflow
// completion time.
//
// We build the Figure 2 scenario by hand — two jobs, three racks — and let
// Sunflow schedule the circuits, printing each coflow's traffic matrix,
// lower bound, and simulated CCT for a "packed" and a "spread" reduce
// placement.
#include <cstdio>
#include <memory>
#include <vector>

#include "coflow/bvn_clearance.h"
#include "coflow/sunflow.h"
#include "common/ids.h"
#include "fabric/ocs_fabric.h"
#include "net/network.h"

using namespace cosched;

namespace {

HybridTopology three_racks() {
  HybridTopology t;
  t.num_racks = 3;
  t.ocs_link = Bandwidth::gbps(8);  // 1 GB ("unit") per second
  t.ocs_reconfig_delay = Duration::milliseconds(10);
  t.elephant_threshold = DataSize::megabytes(1);
  return t;
}

void fill(Coflow& coflow, IdAllocator<FlowId>& ids,
          const std::vector<int>& maps, const std::vector<int>& reduces) {
  for (std::size_t i = 0; i < maps.size(); ++i) {
    for (std::size_t j = 0; j < reduces.size(); ++j) {
      if (i == j || maps[i] == 0 || reduces[j] == 0) continue;
      coflow.add_demand(ids, RackId{static_cast<std::int64_t>(i)},
                        RackId{static_cast<std::int64_t>(j)},
                        DataSize::gigabytes(maps[i] * reduces[j]));
    }
  }
}

void print_matrix(const Coflow& coflow) {
  const TrafficMatrix m = coflow.cross_rack_matrix();
  for (const auto& [key, size] : m.entries()) {
    std::printf("    rack %lld -> rack %lld : %4.0f units\n",
                static_cast<long long>(key.first.value()),
                static_cast<long long>(key.second.value()),
                size.in_gigabytes());
  }
}

void run_case(const char* title, const std::vector<int>& reduces1,
              const std::vector<int>& reduces2) {
  std::printf("\n--- %s ---\n", title);
  Simulator sim;
  const HybridTopology t = three_racks();
  Network net(sim, t, std::make_unique<OcsFabric>(sim, t, 1));
  SunflowScheduler sunflow(sim, net.fabric());
  IdAllocator<FlowId> ids;

  Coflow job1(CoflowId{1}, JobId{1});
  Coflow job2(CoflowId{2}, JobId{2});
  fill(job1, ids, {3, 3, 3}, reduces1);   // 9 maps
  fill(job2, ids, {5, 5, 5}, reduces2);   // 15 maps

  for (Coflow* c : {&job1, &job2}) {
    std::printf("  Job%lld traffic matrix:\n",
                static_cast<long long>(c->id().value()));
    print_matrix(*c);
    const Duration bound = c->lower_bound(net.ocs().link_rate(),
                                          net.ocs().reconfig_delay());
    std::printf("  Job%lld lower bound T(C) = %.2f units\n",
                static_cast<long long>(c->id().value()), bound.sec());
    // The Inukai/BvN clearance certifies the bandwidth part of the bound
    // is achievable with port-disjoint circuit configurations:
    const ClearanceSchedule cs =
        bvn_clearance(c->cross_rack_matrix(), net.ocs().link_rate());
    std::printf("  Job%lld BvN clearance: %zu slots, %.2f units transfer\n",
                static_cast<long long>(c->id().value()), cs.slots.size(),
                cs.transfer_time().sec());
    c->mark_released(sim.now());
    for (const auto& f : c->flows()) {
      f->set_path(FlowPath::kOcs);
      sunflow.submit(*c, *f);
    }
  }

  sim.run();

  for (Coflow* c : {&job1, &job2}) {
    double last = 0;
    for (const auto& f : c->flows()) {
      last = std::max(last, f->completion_time().sec());
    }
    std::printf("  Job%lld simulated CCT under Sunflow = %.2f units\n",
                static_cast<long long>(c->id().value()),
                last - c->release_time().sec());
  }
}

}  // namespace

int main() {
  std::printf("Motivation (paper Section III / Figure 2): the same two\n"
              "jobs, two reduce placements. 1 unit = 1 GB at 1 GB/s.\n");
  run_case("Case 1: reduces packed (2 on rack 0, 1 on rack 1)", {2, 1, 0},
           {2, 1, 0});
  run_case("Case 2: reduces spread (1 per rack)", {1, 1, 1}, {1, 1, 1});
  std::printf("\nSpreading the reduce tasks lets each job use all three\n"
              "circuits concurrently: both CCTs drop sharply. This is\n"
              "Goal-2 of Co-scheduler's design.\n");
  return 0;
}
