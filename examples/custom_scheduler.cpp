// Extending the library: writing your own JobScheduler.
//
// This example implements a deliberately naive "pack-first" scheduler —
// every job's tasks go to the lowest-numbered rack with room — and races it
// against Fair and Co-scheduler on the same workload. It demonstrates the
// three scheduler hooks (on_job_submitted / on_maps_completed / pick_task)
// and that the driver treats custom schedulers exactly like built-ins.
#include <cstdio>
#include <functional>
#include <memory>

#include "sched/coscheduler.h"
#include "sched/fair.h"
#include "sched/fairness.h"
#include "sim/driver.h"
#include "workload/generator.h"

using namespace cosched;

namespace {

/// Packs every task onto the lowest-numbered rack that still has room.
/// (Terrible for the network *and* for container contention — a useful
/// lower bound when evaluating placement policies.)
class PackFirstScheduler : public JobScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "pack-first"; }
  // Conventional Hadoop semantics: reduces overlap with maps.
  [[nodiscard]] bool defers_reduces() const override { return false; }

  void on_job_submitted(Job& job, SchedContext& ctx) override {
    // Input blocks also pack onto the first racks.
    std::vector<RackId> first_racks;
    for (std::int32_t r = 0; r < std::min(3, ctx.topo.num_racks); ++r) {
      first_racks.emplace_back(r);
    }
    job.set_block_placement(place_blocks_on_racks(
        job.spec().num_maps, first_racks, /*replication=*/3, ctx.rng));
  }

  std::optional<TaskChoice> pick_task(RackId rack,
                                      SchedContext& ctx) override {
    // Only accept containers on the lowest-numbered rack that has room:
    // tasks flow strictly left-to-right across the cluster.
    for (std::int32_t r = 0; r < rack.value(); ++r) {
      if (ctx.cluster.free_slots(RackId{r}) > 0) return std::nullopt;
    }
    for (UserId user : fair_user_order(ctx.active_jobs)) {
      for (Job* job : ctx.active_jobs) {
        if (job->spec().user != user) continue;
        if (Task* t = job->next_pending_map_any()) return TaskChoice{job, t};
        if (reduces_eligible(*job, ctx)) {
          if (Task* t = job->next_pending_reduce()) {
            return TaskChoice{job, t};
          }
        }
      }
    }
    return std::nullopt;
  }
};

RunMetrics run(std::unique_ptr<JobScheduler> sched) {
  WorkloadConfig wl;
  wl.num_jobs = 80;
  wl.num_users = 4;
  wl.arrival_window = Duration::minutes(10);
  Rng rng(2024);
  auto jobs = generate_workload(wl, rng);

  SimConfig cfg;
  cfg.topo.num_racks = 12;
  cfg.seed = 5;
  SimulationDriver driver(cfg, std::move(jobs), std::move(sched));
  return driver.run();
}

}  // namespace

int main() {
  std::printf("%-14s %12s %12s %12s %10s\n", "scheduler", "makespan(s)",
              "avg JCT(s)", "avg CCT(s)", "OCS share");
  using Factory = std::function<std::unique_ptr<JobScheduler>()>;
  const std::vector<Factory> factories{
      [] { return std::make_unique<PackFirstScheduler>(); },
      [] { return std::make_unique<FairScheduler>(); },
      [] { return std::make_unique<CoScheduler>(); },
  };
  for (const Factory& make : factories) {
    const RunMetrics m = run(make());
    std::printf("%-14s %12.1f %12.1f %12.2f %9.1f%%\n", m.scheduler.c_str(),
                m.makespan.sec(), m.avg_jct_sec(), m.avg_cct_sec(),
                100.0 * m.ocs_traffic_fraction());
  }
  return 0;
}
