// Trace tooling: generate a SWIM-style synthetic workload trace, inspect
// one, or replay one through the simulator.
//
//   trace_tools generate <path> [num_jobs] [seed]   write a trace CSV
//   trace_tools stats    <path>                     print workload stats
//   trace_tools replay   <path> <scheduler> [obs]   simulate a trace
//
// Schedulers: fair | corral | coscheduler | mts+ocas | ocas
//
// Replay observability flags:
//   --trace-out=<path>      Chrome trace_event JSON (chrome://tracing or
//                           https://ui.perfetto.dev) with counter tracks
//   --trace-csv=<path>      flat CSV of every trace event
//   --counters-out=<path>   time-series counter samples as CSV
//   --decisions-out=<stem>  scheduler decision logs: <stem>.placements.csv,
//                           <stem>.grants.csv, <stem>.circuits.csv
//   --counter-interval=<s>  sim-seconds between counter samples (default 1)
//   --profile               wall-clock profile of simulator hot paths
//   --profile-out=<path>    write that profile to a file (implies --profile)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>

#include "metrics/report.h"
#include "obs/observability.h"
#include "obs/profile.h"
#include "sim/experiment.h"
#include "workload/generator.h"
#include "workload/trace_io.h"

using namespace cosched;

namespace {

int cmd_generate(int argc, char** argv) {
  const std::string path = argv[2];
  WorkloadConfig cfg;
  cfg.num_jobs = argc > 3 ? std::atoi(argv[3]) : 1000;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                      : 42;
  Rng rng(seed);
  const auto jobs = generate_workload(cfg, rng);
  write_trace_file(path, jobs);
  std::printf("wrote %zu jobs to %s\n", jobs.size(), path.c_str());
  return 0;
}

int cmd_stats(const char* path) {
  const auto jobs = read_trace_file(path);
  const HybridTopology topo;
  const WorkloadStats s = compute_stats(jobs, topo.elephant_threshold);
  std::printf("jobs:            %lld\n", static_cast<long long>(s.num_jobs));
  std::printf("shuffle-heavy:   %lld (%.1f%%)\n",
              static_cast<long long>(s.num_shuffle_heavy),
              100.0 * static_cast<double>(s.num_shuffle_heavy) /
                  static_cast<double>(s.num_jobs));
  std::printf("map tasks:       %lld\n",
              static_cast<long long>(s.total_map_tasks));
  std::printf("reduce tasks:    %lld\n",
              static_cast<long long>(s.total_reduce_tasks));
  std::printf("total input:     %.1f GB\n", s.total_input.in_gigabytes());
  std::printf("total shuffle:   %.1f GB\n", s.total_shuffle.in_gigabytes());
  std::printf("arrival window:  [%.1f, %.1f] s\n", s.first_arrival.sec(),
              s.last_arrival.sec());
  return 0;
}

struct ObsFlags {
  std::string trace_out;
  std::string trace_csv;
  std::string counters_out;
  std::string decisions_out;
  std::string profile_out;
  double counter_interval_sec = 1.0;
  bool profile = false;
  bool any() const {
    return !trace_out.empty() || !trace_csv.empty() ||
           !counters_out.empty() || !decisions_out.empty() || profile;
  }
};

bool parse_obs_flag(const std::string& arg, ObsFlags& flags) {
  auto value_of = [&](const char* prefix, std::string& out) {
    const std::size_t n = std::string(prefix).size();
    if (arg.rfind(prefix, 0) != 0) return false;
    out = arg.substr(n);
    return true;
  };
  std::string interval;
  if (value_of("--trace-out=", flags.trace_out)) return true;
  if (value_of("--trace-csv=", flags.trace_csv)) return true;
  if (value_of("--counters-out=", flags.counters_out)) return true;
  if (value_of("--decisions-out=", flags.decisions_out)) return true;
  if (value_of("--counter-interval=", interval)) {
    flags.counter_interval_sec = std::atof(interval.c_str());
    return true;
  }
  if (value_of("--profile-out=", flags.profile_out)) {
    flags.profile = true;  // a destination implies profiling
    return true;
  }
  if (arg == "--profile") {
    flags.profile = true;
    return true;
  }
  return false;
}

void write_file(const std::string& path,
                const std::function<void(std::ostream&)>& writer,
                const char* what) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  writer(os);
  std::printf("wrote %s to %s\n", what, path.c_str());
}

int cmd_replay(const char* path, const char* scheduler,
               const ObsFlags& flags) {
  auto jobs = read_trace_file(path);
  SimConfig cfg;
  cfg.seed = 1;

  std::unique_ptr<Observability> obs;
  if (flags.any()) {
    obs = std::make_unique<Observability>();
    obs->counters.set_interval(
        Duration::seconds(flags.counter_interval_sec));
    cfg.obs = obs.get();
  }
  if (flags.profile) {
    Profiler::set_enabled(true);
    Profiler::instance().reset();
  }

  SimulationDriver driver(cfg, std::move(jobs),
                          make_scheduler_factory(scheduler)());
  const RunMetrics m = driver.run();
  std::printf("scheduler:  %s\n", m.scheduler.c_str());
  std::printf("makespan:   %.1f s\n", m.makespan.sec());
  std::printf("avg JCT:    %.1f s\n", m.avg_jct_sec());
  std::printf("avg CCT:    %.2f s\n", m.avg_cct_sec());
  std::printf("OCS share:  %.1f%% of cross-rack bytes\n",
              100.0 * m.ocs_traffic_fraction());
  std::printf("heavy JCT:  %.1f s   light JCT: %.1f s\n",
              m.avg_jct_sec(true), m.avg_jct_sec(false));

  if (obs != nullptr) {
    if (!flags.trace_out.empty()) {
      write_file(flags.trace_out,
                 [&](std::ostream& os) {
                   obs->trace.write_chrome_trace(os, &obs->counters);
                 },
                 "Chrome trace");
    }
    if (!flags.trace_csv.empty()) {
      write_file(flags.trace_csv,
                 [&](std::ostream& os) { obs->trace.write_csv(os); },
                 "trace CSV");
    }
    if (!flags.counters_out.empty()) {
      write_file(flags.counters_out,
                 [&](std::ostream& os) { obs->counters.write_csv(os); },
                 "counter CSV");
    }
    if (!flags.decisions_out.empty()) {
      write_file(flags.decisions_out + ".placements.csv",
                 [&](std::ostream& os) {
                   obs->decisions.write_placements_csv(os);
                 },
                 "placement decisions");
      write_file(flags.decisions_out + ".grants.csv",
                 [&](std::ostream& os) { obs->decisions.write_grants_csv(os); },
                 "grant decisions");
      write_file(flags.decisions_out + ".circuits.csv",
                 [&](std::ostream& os) {
                   obs->decisions.write_circuits_csv(os);
                 },
                 "circuit decisions");
    }
    print_obs_summary(std::cout, *obs);
  } else if (flags.profile && flags.profile_out.empty()) {
    Profiler::instance().write_summary(std::cout);
  }
  if (!flags.profile_out.empty()) {
    write_file(flags.profile_out,
               [&](std::ostream& os) {
                 if (obs != nullptr && !obs->profile.empty()) {
                   Profiler::write_sections(os, obs->profile);
                 } else {
                   Profiler::instance().write_summary(os);
                 }
               },
               "wall-clock profile");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  try {
    if (cmd == "generate" && argc >= 3) return cmd_generate(argc, argv);
    if (cmd == "stats" && argc == 3) return cmd_stats(argv[2]);
    if (cmd == "replay" && argc >= 4) {
      ObsFlags flags;
      bool ok = true;
      for (int i = 4; i < argc; ++i) {
        if (!parse_obs_flag(argv[i], flags)) {
          std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
          ok = false;
        }
      }
      if (ok) return cmd_replay(argv[2], argv[3], flags);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage:\n"
               "  %s generate <path> [num_jobs] [seed]\n"
               "  %s stats <path>\n"
               "  %s replay <path> <fair|corral|coscheduler|mts+ocas|ocas>\n"
               "     [--trace-out=f.json] [--trace-csv=f.csv]\n"
               "     [--counters-out=f.csv] [--decisions-out=stem]\n"
               "     [--counter-interval=sec] [--profile] "
               "[--profile-out=f.txt]\n",
               argv[0], argv[0], argv[0]);
  return 2;
}
