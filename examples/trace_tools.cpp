// Trace tooling: generate a SWIM-style synthetic workload trace, inspect
// one, or replay one through the simulator.
//
//   trace_tools generate <path> [num_jobs] [seed]   write a trace CSV
//   trace_tools stats    <path>                     print workload stats
//   trace_tools replay   <path> <scheduler>         simulate a trace
//
// Schedulers: fair | corral | coscheduler | mts+ocas | ocas
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.h"
#include "workload/generator.h"
#include "workload/trace_io.h"

using namespace cosched;

namespace {

int cmd_generate(int argc, char** argv) {
  const std::string path = argv[2];
  WorkloadConfig cfg;
  cfg.num_jobs = argc > 3 ? std::atoi(argv[3]) : 1000;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                      : 42;
  Rng rng(seed);
  const auto jobs = generate_workload(cfg, rng);
  write_trace_file(path, jobs);
  std::printf("wrote %zu jobs to %s\n", jobs.size(), path.c_str());
  return 0;
}

int cmd_stats(const char* path) {
  const auto jobs = read_trace_file(path);
  const HybridTopology topo;
  const WorkloadStats s = compute_stats(jobs, topo.elephant_threshold);
  std::printf("jobs:            %lld\n", static_cast<long long>(s.num_jobs));
  std::printf("shuffle-heavy:   %lld (%.1f%%)\n",
              static_cast<long long>(s.num_shuffle_heavy),
              100.0 * static_cast<double>(s.num_shuffle_heavy) /
                  static_cast<double>(s.num_jobs));
  std::printf("map tasks:       %lld\n",
              static_cast<long long>(s.total_map_tasks));
  std::printf("reduce tasks:    %lld\n",
              static_cast<long long>(s.total_reduce_tasks));
  std::printf("total input:     %.1f GB\n", s.total_input.in_gigabytes());
  std::printf("total shuffle:   %.1f GB\n", s.total_shuffle.in_gigabytes());
  std::printf("arrival window:  [%.1f, %.1f] s\n", s.first_arrival.sec(),
              s.last_arrival.sec());
  return 0;
}

int cmd_replay(const char* path, const char* scheduler) {
  auto jobs = read_trace_file(path);
  SimConfig cfg;
  cfg.seed = 1;
  SimulationDriver driver(cfg, std::move(jobs),
                          make_scheduler_factory(scheduler)());
  const RunMetrics m = driver.run();
  std::printf("scheduler:  %s\n", m.scheduler.c_str());
  std::printf("makespan:   %.1f s\n", m.makespan.sec());
  std::printf("avg JCT:    %.1f s\n", m.avg_jct_sec());
  std::printf("avg CCT:    %.2f s\n", m.avg_cct_sec());
  std::printf("OCS share:  %.1f%% of cross-rack bytes\n",
              100.0 * m.ocs_traffic_fraction());
  std::printf("heavy JCT:  %.1f s   light JCT: %.1f s\n",
              m.avg_jct_sec(true), m.avg_jct_sec(false));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  try {
    if (cmd == "generate" && argc >= 3) return cmd_generate(argc, argv);
    if (cmd == "stats" && argc == 3) return cmd_stats(argv[2]);
    if (cmd == "replay" && argc == 4) return cmd_replay(argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage:\n"
               "  %s generate <path> [num_jobs] [seed]\n"
               "  %s stats <path>\n"
               "  %s replay <path> <fair|corral|coscheduler|mts+ocas|ocas>\n",
               argv[0], argv[0], argv[0]);
  return 2;
}
