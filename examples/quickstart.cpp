// Quickstart: simulate a small Hybrid-DCN cluster, run a synthetic
// workload under the Fair baseline and under Co-scheduler, and print the
// paper's three metrics side by side.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API:
//   1. describe the cluster  (HybridTopology)
//   2. describe the workload (WorkloadConfig -> generate_workload)
//   3. pick a scheduler      (FairScheduler / CorralScheduler / CoScheduler)
//   4. run                   (SimulationDriver::run -> RunMetrics)
#include <cstdio>
#include <memory>

#include "sched/coscheduler.h"
#include "sched/fair.h"
#include "sim/driver.h"
#include "workload/generator.h"

using namespace cosched;

int main() {
  // 1. The cluster: the paper's 60 racks of 10 servers, each server runs
  //    20 containers. ToR uplinks are 10:1 oversubscribed toward the core
  //    EPS; every ToR also has a 100 Gb/s port on the optical circuit
  //    switch. (Keep >= ~40 racks: on tiny clusters even a scattered
  //    shuffle aggregates past the elephant threshold by accident.)
  HybridTopology topo;

  // 2. The workload: 150 jobs over ~14 minutes, 20% shuffle-heavy, with
  //    SWIM-Facebook-like heavy-tailed sizes.
  WorkloadConfig wl;
  wl.num_jobs = 150;
  wl.num_users = 8;
  wl.arrival_window = Duration::minutes(13.5);

  SimConfig sim_cfg;
  sim_cfg.topo = topo;
  sim_cfg.seed = 7;

  std::printf("%-14s %12s %12s %12s %10s\n", "scheduler", "makespan(s)",
              "avg JCT(s)", "avg CCT(s)", "OCS share");

  for (const bool use_cosched : {false, true}) {
    Rng rng(99);  // same workload for both schedulers
    std::vector<JobSpec> jobs = generate_workload(wl, rng);

    std::unique_ptr<JobScheduler> sched;
    if (use_cosched) {
      sched = std::make_unique<CoScheduler>();
    } else {
      sched = std::make_unique<FairScheduler>();
    }

    SimulationDriver driver(sim_cfg, std::move(jobs), std::move(sched));
    const RunMetrics m = driver.run();

    std::printf("%-14s %12.1f %12.1f %12.2f %9.1f%%\n", m.scheduler.c_str(),
                m.makespan.sec(), m.avg_jct_sec(), m.avg_cct_sec(),
                100.0 * m.ocs_traffic_fraction());
  }

  std::printf(
      "\nCo-scheduler aggregates each job's shuffle into elephant flows\n"
      "and rides the optical circuit switch; Fair scatters tasks and its\n"
      "shuffle crawls through the oversubscribed packet network.\n");
  return 0;
}
