// The one place a FabricSpec becomes a live fabric. Everything above the
// seam (driver, benches, tests) builds fabrics through here so adding a
// fabric kind touches exactly src/fabric/.
#pragma once

#include <memory>

#include "net/fabric.h"
#include "simcore/simulator.h"

namespace cosched {

[[nodiscard]] std::unique_ptr<Fabric> make_fabric(Simulator& sim,
                                                  const HybridTopology& topo,
                                                  const FabricSpec& spec);

}  // namespace cosched
