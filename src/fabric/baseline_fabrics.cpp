#include "fabric/baseline_fabrics.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "coflow/traffic_matrix.h"
#include "common/check.h"

namespace cosched {

FifoFabric::FifoFabric(Simulator& sim, const HybridTopology& topo,
                       std::size_t num_queues)
    : Fabric(topo), sim_(sim), queues_(num_queues), active_(num_queues) {}

void FifoFabric::submit(Coflow& /*coflow*/, Flow& flow) {
  COSCHED_CHECK(flow.path() == FlowPath::kOcs);
  COSCHED_CHECK_MSG(flow.src() != flow.dst(),
                    "intra-rack flow routed to " << name());
  const std::size_t queue = queue_index(flow);
  queues_[queue].push_back(&flow);
  ++pending_count_;
  if (active_[queue].flow == nullptr) start_transfer(queue);
}

void FifoFabric::start_transfer(std::size_t queue) {
  Flow& flow = *queues_[queue].front();
  queues_[queue].pop_front();
  --pending_count_;
  Active& active = active_[queue];
  COSCHED_CHECK(active.flow == nullptr);
  active.flow = &flow;
  active.last_update = sim_.now();
  ++active_count_;
  flow.mark_started(sim_.now());
  flow.set_rate(rate_for(flow));
  schedule_completion(queue, flow);
}

void FifoFabric::schedule_completion(std::size_t queue, Flow& flow) {
  const Duration eta = Duration::seconds(flow.remaining_bits() /
                                         flow.rate().in_bits_per_sec());
  flow.completion_event() =
      sim_.schedule_after(eta, [this, queue] { on_transfer_complete(queue); });
}

void FifoFabric::settle_active(Active& active) {
  const double moved = active.flow->settle(sim_.now() - active.last_update);
  active.last_update = sim_.now();
  if (moved > 0.0) credit_drained_bits(moved);
}

void FifoFabric::on_transfer_complete(std::size_t queue) {
  Active& active = active_[queue];
  COSCHED_CHECK(active.flow != nullptr);
  Flow& flow = *active.flow;
  settle_active(active);
  flow.set_rate(Bandwidth::zero());
  active.flow = nullptr;
  --active_count_;
  flow.mark_completed(sim_.now());
  notify_flow_complete(flow);
  if (!queues_[queue].empty()) start_transfer(queue);
}

void FifoFabric::demand_added(Flow& flow) {
  const std::size_t queue = queue_index(flow);
  Active& active = active_[queue];
  if (active.flow != &flow) {
    return;  // queued; the grown size is picked up when service starts
  }
  settle_active(active);
  flow.completion_event().cancel();
  schedule_completion(queue, flow);
}

std::vector<Flow*> FifoFabric::evict_all() {
  std::vector<Flow*> evicted;
  evicted.reserve(active_count_ + pending_count_);
  // In-service transfers first, then queued flows, both in queue-index
  // order (FIFO within a queue) — deterministic by construction.
  for (auto& active : active_) {
    if (active.flow == nullptr) continue;
    Flow& flow = *active.flow;
    settle_active(active);
    flow.completion_event().cancel();
    flow.set_rate(Bandwidth::zero());
    active.flow = nullptr;
    --active_count_;
    evicted.push_back(&flow);
  }
  for (auto& queue : queues_) {
    for (Flow* f : queue) evicted.push_back(f);
    queue.clear();
  }
  pending_count_ = 0;
  return evicted;
}

DataSize FifoFabric::bytes_in_flight() const {
  double bits = 0.0;
  for (const auto& queue : queues_) {
    for (const Flow* f : queue) bits += f->remaining_bits();
  }
  for (const auto& active : active_) {
    if (active.flow != nullptr) bits += active.flow->remaining_bits();
  }
  return DataSize::bytes(static_cast<std::int64_t>(bits / 8.0));
}

std::string FifoFabric::self_check() const {
  std::size_t actives = 0;
  for (std::size_t q = 0; q < active_.size(); ++q) {
    const Active& active = active_[q];
    if (active.flow == nullptr) continue;
    ++actives;
    if (queue_index(*active.flow) != q) {
      std::ostringstream os;
      os << name() << " transfer " << active.flow->src() << " -> "
         << active.flow->dst() << " is in service on queue " << q
         << " but belongs to queue " << queue_index(*active.flow);
      return os.str();
    }
  }
  if (actives != active_count_) {
    std::ostringstream os;
    os << name() << " active-transfer count diverged: counter "
       << active_count_ << ", actual " << actives;
    return os.str();
  }
  std::size_t queued = 0;
  for (const auto& queue : queues_) queued += queue.size();
  if (queued != pending_count_) {
    std::ostringstream os;
    os << name() << " pending-flow count diverged: counter " << pending_count_
       << ", actual " << queued;
    return os.str();
  }
  return {};
}

MeshFabric::MeshFabric(Simulator& sim, const HybridTopology& topo)
    : FifoFabric(sim, topo,
                 static_cast<std::size_t>(topo.num_racks) *
                     static_cast<std::size_t>(topo.num_racks)) {}

RingFabric::RingFabric(Simulator& sim, const HybridTopology& topo)
    : FifoFabric(sim, topo, static_cast<std::size_t>(topo.num_racks)) {}

Duration MeshFabric::cct_lower_bound(const TrafficMatrix& matrix) const {
  Duration bound = Duration::zero();
  for (const auto& entry : matrix.entries()) {
    bound = std::max(bound, transfer_time(entry.second, link_rate()));
  }
  return bound;
}

Duration RingFabric::cct_lower_bound(const TrafficMatrix& matrix) const {
  const std::int32_t racks = topo_.num_racks;
  const auto in_topology = [racks](RackId r) {
    return r.value() >= 0 && r.value() < racks;
  };
  // Per source, accumulate hop-weighted egress busy time in Duration space
  // (the hop-weighted byte sum could overflow int64 on large matrices).
  std::map<RackId, Duration> busy;
  for (const auto& entry : matrix.entries()) {
    const RackId src = entry.first.first;
    const RackId dst = entry.first.second;
    const std::int32_t h =
        in_topology(src) && in_topology(dst) && src != dst
            ? hops(src, dst)
            : 1;
    busy[src] = busy[src] + transfer_time(entry.second, link_rate()) *
                                static_cast<double>(h);
  }
  Duration bound = Duration::zero();
  for (const auto& e : busy) bound = std::max(bound, e.second);
  return bound;
}

}  // namespace cosched
