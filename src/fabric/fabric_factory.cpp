#include "fabric/fabric_factory.h"

#include "common/check.h"
#include "fabric/baseline_fabrics.h"
#include "fabric/ocs_fabric.h"
#include "fabric/rotor_fabric.h"

namespace cosched {

std::unique_ptr<Fabric> make_fabric(Simulator& sim, const HybridTopology& topo,
                                    const FabricSpec& spec) {
  switch (spec.kind) {
    case FabricKind::kOcs:
      return std::make_unique<OcsFabric>(sim, topo, spec.planes);
    case FabricKind::kRotor:
      return std::make_unique<RotorFabric>(sim, topo, spec.rotor_period);
    case FabricKind::kMesh:
      return std::make_unique<MeshFabric>(sim, topo);
    case FabricKind::kRing:
      return std::make_unique<RingFabric>(sim, topo);
  }
  COSCHED_CHECK_MSG(false, "unhandled fabric kind");
  return nullptr;
}

}  // namespace cosched
