#include "fabric/ocs_fabric.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "coflow/cct_bound.h"
#include "common/check.h"

namespace cosched {

Duration OcsFabric::cct_lower_bound(const TrafficMatrix& matrix) const {
  const auto k = static_cast<double>(num_planes());
  if (num_planes() == 1) {
    // The paper's fabric: delegate to the original free function so ocs:1
    // stays bit-identical to every pre-seam result.
    return ::cosched::cct_lower_bound(matrix, link_rate(), reconfig_delay());
  }
  const Bandwidth bw = link_rate();
  const Duration delta = reconfig_delay();
  Duration bound = Duration::zero();
  // Per-port: the port's total busy time (transfer + one setup per flow)
  // is split across at most K plane transceivers, and however the flows
  // are packed, some plane carries at least ceil(degree/K) of the setups.
  const auto port = [&](DataSize sum, std::size_t degree) {
    const Duration busy =
        (transfer_time(sum, bw) + delta * static_cast<double>(degree)) / k;
    const Duration setups =
        delta * std::ceil(static_cast<double>(degree) / k);
    return std::max(busy, setups);
  };
  for (RackId src : matrix.sources()) {
    bound = std::max(bound,
                     port(matrix.row_sum(src), matrix.row_degree(src)));
  }
  for (RackId dst : matrix.destinations()) {
    bound = std::max(bound,
                     port(matrix.col_sum(dst), matrix.col_degree(dst)));
  }
  // A flow rides exactly one circuit on one plane: extra planes never
  // shorten a single transfer below setup + full drain.
  for (const auto& entry : matrix.entries()) {
    bound = std::max(bound, ocs_flow_time(entry.second, bw, delta));
  }
  return bound;
}

OcsFabric::OcsFabric(Simulator& sim, const HybridTopology& topo,
                     std::int32_t planes)
    : Fabric(topo), sunflow_(sim, *this) {
  COSCHED_CHECK_MSG(planes >= 1, "OcsFabric needs at least one plane, got "
                                     << planes);
  planes_.reserve(static_cast<std::size_t>(planes));
  for (std::int32_t p = 0; p < planes; ++p) {
    planes_.push_back(std::make_unique<OcsSwitch>(sim, topo));
  }
  down_.assign(static_cast<std::size_t>(planes), 0);
  // Chain Sunflow's per-flow completion hook into the fabric-level one, so
  // whatever the driver registers via Fabric::set_on_flow_complete fires.
  sunflow_.set_on_flow_complete([this](Flow& f) { notify_flow_complete(f); });
}

std::vector<Flow*> OcsFabric::begin_plane_outage(std::int32_t plane_index) {
  COSCHED_CHECK_MSG(plane_index >= 0 && plane_index < num_planes(),
                    name() << " has no plane " << plane_index);
  ++down_[static_cast<std::size_t>(plane_index)];
  return sunflow_.evict_plane(plane_index);
}

void OcsFabric::end_plane_outage(std::int32_t plane_index) {
  COSCHED_CHECK_MSG(plane_index >= 0 && plane_index < num_planes(),
                    name() << " has no plane " << plane_index);
  auto& depth = down_[static_cast<std::size_t>(plane_index)];
  COSCHED_CHECK_MSG(depth > 0, "plane " << plane_index
                                        << " outage ended that never began");
  --depth;
  // Queued demand may have been waiting for exactly this plane's ports.
  if (depth == 0) sunflow_.kick();
}

std::int64_t OcsFabric::active_circuits() const {
  std::int64_t n = 0;
  for (const auto& plane : planes_) n += plane->active_circuits();
  return n;
}

void OcsFabric::set_trace(TraceRecorder* trace) {
  for (const auto& plane : planes_) plane->set_trace(trace);
}

void OcsFabric::set_reconfig_delay_provider(
    std::function<Duration()> provider) {
  // One shared provider: every plane's setups draw from the same jitter
  // stream in setup order, exactly as the single OCS did.
  for (const auto& plane : planes_) plane->set_reconfig_delay_provider(provider);
}

}  // namespace cosched
