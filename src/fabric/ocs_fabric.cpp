#include "fabric/ocs_fabric.h"

#include <utility>

#include "common/check.h"

namespace cosched {

OcsFabric::OcsFabric(Simulator& sim, const HybridTopology& topo,
                     std::int32_t planes)
    : Fabric(topo), sunflow_(sim, *this) {
  COSCHED_CHECK_MSG(planes >= 1, "OcsFabric needs at least one plane, got "
                                     << planes);
  planes_.reserve(static_cast<std::size_t>(planes));
  for (std::int32_t p = 0; p < planes; ++p) {
    planes_.push_back(std::make_unique<OcsSwitch>(sim, topo));
  }
  down_.assign(static_cast<std::size_t>(planes), 0);
  // Chain Sunflow's per-flow completion hook into the fabric-level one, so
  // whatever the driver registers via Fabric::set_on_flow_complete fires.
  sunflow_.set_on_flow_complete([this](Flow& f) { notify_flow_complete(f); });
}

std::vector<Flow*> OcsFabric::begin_plane_outage(std::int32_t plane_index) {
  COSCHED_CHECK_MSG(plane_index >= 0 && plane_index < num_planes(),
                    name() << " has no plane " << plane_index);
  ++down_[static_cast<std::size_t>(plane_index)];
  return sunflow_.evict_plane(plane_index);
}

void OcsFabric::end_plane_outage(std::int32_t plane_index) {
  COSCHED_CHECK_MSG(plane_index >= 0 && plane_index < num_planes(),
                    name() << " has no plane " << plane_index);
  auto& depth = down_[static_cast<std::size_t>(plane_index)];
  COSCHED_CHECK_MSG(depth > 0, "plane " << plane_index
                                        << " outage ended that never began");
  --depth;
  // Queued demand may have been waiting for exactly this plane's ports.
  if (depth == 0) sunflow_.kick();
}

std::int64_t OcsFabric::active_circuits() const {
  std::int64_t n = 0;
  for (const auto& plane : planes_) n += plane->active_circuits();
  return n;
}

void OcsFabric::set_trace(TraceRecorder* trace) {
  for (const auto& plane : planes_) plane->set_trace(trace);
}

void OcsFabric::set_reconfig_delay_provider(
    std::function<Duration()> provider) {
  // One shared provider: every plane's setups draw from the same jitter
  // stream in setup order, exactly as the single OCS did.
  for (const auto& plane : planes_) plane->set_reconfig_delay_provider(provider);
}

}  // namespace cosched
