// Bracketing baselines: MeshFabric and RingFabric.
//
// Neither models a real optical design — they bound the OCS results from
// both sides. MeshFabric is an idealized full mesh: every rack pair has a
// permanent dedicated circuit at the full OCS link rate, so there is no
// reconfiguration, no matching constraint, and no cross-pair contention
// (an upper bound no circuit switch can beat). RingFabric is a static
// unidirectional ring: rack i's only optical egress is toward rack i+1,
// and a flow to a rack h hops away rides h store-and-forward segments,
// modeled as a single transfer at link_rate / h with one transfer per
// source rack at a time (a deliberately weak static topology).
//
// Both serve flows FIFO per queue (per rack pair for mesh, per source
// rack for ring), settle drained bits eagerly, and keep no hidden state,
// so uncredited_settled_bits() is always zero.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/fabric.h"
#include "simcore/simulator.h"

namespace cosched {

/// Shared skeleton: N FIFO queues, at most one transfer in service per
/// queue, constant per-flow rate, completion events always scheduled.
class FifoFabric : public Fabric {
 public:
  FifoFabric(Simulator& sim, const HybridTopology& topo,
             std::size_t num_queues);

  void submit(Coflow& coflow, Flow& flow) override;
  void demand_added(Flow& flow) override;
  [[nodiscard]] std::vector<Flow*> evict_all() override;

  [[nodiscard]] std::size_t pending_flows() const override {
    return pending_count_;
  }
  [[nodiscard]] std::size_t active_transfers() const override {
    return active_count_;
  }
  [[nodiscard]] std::int64_t active_circuits() const override {
    return static_cast<std::int64_t>(active_count_);
  }
  [[nodiscard]] DataSize bytes_in_flight() const override;
  [[nodiscard]] std::string self_check() const override;

 protected:
  /// Which FIFO serves `flow`.
  [[nodiscard]] virtual std::size_t queue_index(const Flow& flow) const = 0;
  /// The constant rate `flow` drains at while in service.
  [[nodiscard]] virtual Bandwidth rate_for(const Flow& flow) const = 0;

 private:
  struct Active {
    Flow* flow = nullptr;
    SimTime last_update = SimTime::zero();
  };

  void start_transfer(std::size_t queue);
  void on_transfer_complete(std::size_t queue);
  void settle_active(Active& active);
  void schedule_completion(std::size_t queue, Flow& flow);

  Simulator& sim_;
  std::vector<std::deque<Flow*>> queues_;
  std::vector<Active> active_;
  std::size_t pending_count_ = 0;
  std::size_t active_count_ = 0;
};

class MeshFabric final : public FifoFabric {
 public:
  MeshFabric(Simulator& sim, const HybridTopology& topo);

  [[nodiscard]] FabricKind kind() const override { return FabricKind::kMesh; }
  [[nodiscard]] std::string name() const override { return "mesh"; }

  /// Every ordered pair drains concurrently on its permanent circuit with
  /// zero reconfiguration, so the only hard floor is the largest single
  /// entry's transfer time (no per-port row/col serialization, no delta).
  [[nodiscard]] Duration cct_lower_bound(
      const TrafficMatrix& matrix) const override;

 protected:
  [[nodiscard]] std::size_t queue_index(const Flow& flow) const override {
    return static_cast<std::size_t>(flow.src().value()) *
               static_cast<std::size_t>(topo_.num_racks) +
           static_cast<std::size_t>(flow.dst().value());
  }
  [[nodiscard]] Bandwidth rate_for(const Flow&) const override {
    return link_rate();
  }
};

class RingFabric final : public FifoFabric {
 public:
  RingFabric(Simulator& sim, const HybridTopology& topo);

  [[nodiscard]] FabricKind kind() const override { return FabricKind::kRing; }
  [[nodiscard]] std::string name() const override { return "ring"; }

  /// Clockwise hop count src -> dst, in [1, R-1] for cross-rack flows.
  [[nodiscard]] std::int32_t hops(RackId src, RackId dst) const {
    const std::int32_t racks = topo_.num_racks;
    return (dst.value() - src.value() + racks) % racks;
  }

  /// One transfer per source at a time, each at link/hops: a source's
  /// egress is busy for sum_j C_sj * hops(s, j) / link no matter the
  /// order, and that sum is the bound (zero reconfiguration, and no
  /// destination term — the ring serializes on sources only). Rack ids
  /// outside the topology (PSRT plans against abstract placeholder racks)
  /// count the 1-hop minimum, keeping the bound a true lower bound for
  /// any later identity assignment.
  [[nodiscard]] Duration cct_lower_bound(
      const TrafficMatrix& matrix) const override;

 protected:
  [[nodiscard]] std::size_t queue_index(const Flow& flow) const override {
    return static_cast<std::size_t>(flow.src().value());
  }
  [[nodiscard]] Bandwidth rate_for(const Flow& flow) const override {
    return link_rate() / static_cast<double>(hops(flow.src(), flow.dst()));
  }
};

}  // namespace cosched
