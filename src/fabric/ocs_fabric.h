// OcsFabric: K independent optical circuit planes driven by Sunflow.
//
// K = 1 is the paper's fabric — a single R-port OCS with one circuit per
// port and not-all-stop reconfiguration — and runs the exact pre-seam code
// path bit for bit (DESIGN.md §12). K > 1 models the K-core OCS designs of
// the related work (Wang/Shen's hybrid-switched scheduling, the
// O(K)-approximation multi-core OCS papers): every rack's ToR has one
// transceiver per plane, so up to K circuits can terminate at a rack
// simultaneously, one per plane. Sunflow allocates across planes in plane
// order; the auditor sweeps port exclusivity per plane.
//
// Plane-targeted outages (ocs-outage:...:plane=N) fail one plane: its
// in-flight transfers are evicted, queued demand stays (other planes can
// serve it), and allocation skips the plane until the window closes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "coflow/sunflow.h"
#include "net/fabric.h"
#include "net/ocs_switch.h"

namespace cosched {

class OcsFabric final : public Fabric {
 public:
  OcsFabric(Simulator& sim, const HybridTopology& topo, std::int32_t planes);

  [[nodiscard]] FabricKind kind() const override { return FabricKind::kOcs; }
  [[nodiscard]] std::string name() const override {
    return "ocs:" + std::to_string(static_cast<int>(planes_.size()));
  }

  void submit(Coflow& coflow, Flow& flow) override {
    sunflow_.submit(coflow, flow);
  }
  void demand_added(Flow& flow) override { sunflow_.demand_added(flow); }
  [[nodiscard]] std::vector<Flow*> evict_all() override {
    return sunflow_.evict_all();
  }

  /// K = 1: exactly the paper's T(C) (the cct_bound.h free function, bit
  /// for bit). K > 1: the per-port bound for K parallel planes — each
  /// port's transfer + setup busy time averages over its K transceivers,
  /// some plane still hosts ceil(degree/K) setups, and a single flow can
  /// never split across planes (the Wang et al. K-core OCS port model;
  /// docs/FABRICS.md).
  [[nodiscard]] Duration cct_lower_bound(
      const TrafficMatrix& matrix) const override;

  [[nodiscard]] std::int32_t num_planes() const override {
    return static_cast<std::int32_t>(planes_.size());
  }
  [[nodiscard]] OcsSwitch* plane(std::int32_t i) override {
    return planes_[static_cast<std::size_t>(i)].get();
  }
  [[nodiscard]] const OcsSwitch* plane(std::int32_t i) const override {
    return planes_[static_cast<std::size_t>(i)].get();
  }
  [[nodiscard]] bool plane_available(std::int32_t i) const override {
    return down_[static_cast<std::size_t>(i)] == 0;
  }
  [[nodiscard]] std::vector<Flow*> begin_plane_outage(
      std::int32_t plane_index) override;
  void end_plane_outage(std::int32_t plane_index) override;

  [[nodiscard]] std::size_t pending_flows() const override {
    return sunflow_.pending_flows();
  }
  [[nodiscard]] std::size_t active_transfers() const override {
    return sunflow_.active_transfers();
  }
  [[nodiscard]] std::size_t active_coflows() const override {
    return sunflow_.active_coflows();
  }
  [[nodiscard]] std::int64_t active_circuits() const override;
  [[nodiscard]] DataSize bytes_in_flight() const override {
    return sunflow_.bytes_in_flight();
  }
  [[nodiscard]] double uncredited_settled_bits() const override {
    return sunflow_.uncredited_settled_bits();
  }
  [[nodiscard]] std::string self_check() const override {
    return sunflow_.self_check();
  }

  void set_observability(Observability* obs) override {
    sunflow_.set_observability(obs);
  }
  void set_trace(TraceRecorder* trace) override;
  void set_reconfig_delay_provider(std::function<Duration()> provider) override;

  /// The Sunflow instance driving the planes (tests).
  [[nodiscard]] SunflowScheduler& sunflow() { return sunflow_; }

 private:
  std::vector<std::unique_ptr<OcsSwitch>> planes_;
  /// Outage depth per plane (overlapping windows compose, same as the
  /// whole-fabric depth counter in Network).
  std::vector<std::int32_t> down_;
  SunflowScheduler sunflow_;
};

}  // namespace cosched
