// RotorFabric: fixed-period round-robin matchings (Mordia / RotorNet).
//
// Instead of reconfiguring on demand, the switch cycles through R-1
// precomputed perfect matchings on a fixed slot clock: during slot k every
// rack i is wired to rack (i + s) mod R with s = 1 + (k mod (R-1)), so
// every rack pair gets a dedicated circuit once per R-1 slots regardless
// of demand. Each slot boundary pays the reconfiguration delay delta
// before circuits come up (delta must be < the period). There is no
// demand-driven reconfiguration and no coflow awareness: flows queue FIFO
// per rack pair and drain at full link rate whenever their pair's slot is
// up, preempted (and requeued at the head) at the slot boundary.
//
// Determinism: the slot clock is anchored at absolute multiples of the
// period (slot k covers [k*P, (k+1)*P)). The clock only runs while the
// fabric holds work — an idle rotor schedules nothing, so simulations
// drain — and service (re)starts at the next slot boundary after demand
// arrives. The reconfig-jitter fault is ignored: rotor switching is the
// fixed-schedule alternative the jitter knob does not model.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/fabric.h"
#include "simcore/simulator.h"

namespace cosched {

class RotorFabric final : public Fabric {
 public:
  RotorFabric(Simulator& sim, const HybridTopology& topo, Duration period);

  [[nodiscard]] FabricKind kind() const override { return FabricKind::kRotor; }
  [[nodiscard]] std::string name() const override;

  void submit(Coflow& coflow, Flow& flow) override;
  void demand_added(Flow& flow) override;
  [[nodiscard]] std::vector<Flow*> evict_all() override;

  /// Slot-quantized port bound. Per source (and, symmetrically, per
  /// destination — each slot's matching is a permutation): the port needs
  /// n = max(degree, ceil(bits / cap)) distinct slots, cap = (P - delta)*bw
  /// being one slot's usable capacity; serving one transfer at a time at
  /// rate <= bw gives the transfer_time term, and with n >= 2 the n-th
  /// slot's boundary lies > release + (n-2)*P (the first used slot may
  /// straddle the release), pays delta before circuits rise, and still has
  /// the residual bits the other n-1 slots could not carry.
  [[nodiscard]] Duration cct_lower_bound(
      const TrafficMatrix& matrix) const override;

  [[nodiscard]] std::size_t pending_flows() const override {
    return pending_count_;
  }
  [[nodiscard]] std::size_t active_transfers() const override {
    return active_count_;
  }
  [[nodiscard]] std::int64_t active_circuits() const override {
    return static_cast<std::int64_t>(active_count_);
  }
  [[nodiscard]] DataSize bytes_in_flight() const override;
  [[nodiscard]] std::string self_check() const override;

  [[nodiscard]] Duration period() const { return period_; }
  /// Slot boundaries crossed while the fabric held work (diagnostics).
  [[nodiscard]] std::int64_t slots_run() const { return slots_run_; }

 private:
  struct Active {
    Flow* flow = nullptr;
    SimTime last_update = SimTime::zero();
  };

  [[nodiscard]] std::size_t pair_index(RackId src, RackId dst) const {
    return static_cast<std::size_t>(src.value()) *
               static_cast<std::size_t>(topo_.num_racks) +
           static_cast<std::size_t>(dst.value());
  }
  [[nodiscard]] SimTime boundary(std::int64_t slot) const {
    return SimTime::seconds(period_.sec() * static_cast<double>(slot));
  }
  /// The matching shift in force during `slot`: dst = (src + shift) % R.
  [[nodiscard]] std::int32_t shift_for(std::int64_t slot) const {
    return 1 + static_cast<std::int32_t>(
                   slot % static_cast<std::int64_t>(topo_.num_racks - 1));
  }

  void arm_from(SimTime now);
  void slot_begin(std::int64_t slot);
  void circuits_up();
  /// Start serving the head flow of `src`'s current pair queue; schedules a
  /// completion event only if the flow drains strictly before slot_end_.
  void start_transfer(RackId src, std::deque<Flow*>& queue);
  void on_transfer_complete(RackId src);
  /// Settle the active transfer on `src` and credit the drained bits.
  void settle_active(Active& active);

  Simulator& sim_;
  Duration period_;
  std::vector<std::deque<Flow*>> pending_by_pair_;
  std::vector<Active> active_by_src_;
  std::size_t pending_count_ = 0;
  std::size_t active_count_ = 0;
  bool armed_ = false;
  std::int64_t slot_ = 0;            // current slot while armed
  std::int32_t shift_ = 0;           // current matching while armed
  SimTime slot_end_ = SimTime::zero();
  std::int64_t slots_run_ = 0;
  EventHandle slot_event_;
  EventHandle circuits_event_;
};

}  // namespace cosched
