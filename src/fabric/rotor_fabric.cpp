#include "fabric/rotor_fabric.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "coflow/cct_bound.h"
#include "common/check.h"

namespace cosched {

Duration RotorFabric::cct_lower_bound(const TrafficMatrix& matrix) const {
  const Bandwidth bw = link_rate();
  const Duration delta = reconfig_delay();
  // Usable bits per slot: circuits rise delta after every slot boundary
  // (slot_begin -> circuits_up), so no port moves more than this in one
  // slot — including a slot the coflow's release straddles.
  const double cap_bits = (period_ - delta).sec() * bw.in_bits_per_sec();
  const auto port = [&](DataSize sum, std::size_t degree) {
    if (sum.is_zero()) return Duration::zero();
    const Duration drain = transfer_time(sum, bw);
    const double bits = static_cast<double>(sum.in_bytes()) * 8.0;
    // Distinct slots this port must touch: one per destination (each slot
    // wires the port to exactly one peer) and enough to carry the bits.
    const double slots = std::max(static_cast<double>(degree),
                                  std::ceil(bits / cap_bits));
    if (slots <= 1.0) return drain;
    // The first used slot's boundary may precede the release (a chained
    // transfer keeps the circuit up mid-slot), so only n-2 full periods
    // provably separate the release from the last slot's boundary; that
    // slot pays delta and still moves what the earlier n-1 could not.
    const double residual = std::max(0.0, bits - (slots - 1.0) * cap_bits);
    const Duration tail =
        period_ * (slots - 2.0) + delta +
        Duration::seconds(residual / bw.in_bits_per_sec());
    return std::max(drain, tail);
  };
  Duration bound = Duration::zero();
  for (RackId src : matrix.sources()) {
    bound = std::max(bound,
                     port(matrix.row_sum(src), matrix.row_degree(src)));
  }
  for (RackId dst : matrix.destinations()) {
    bound = std::max(bound,
                     port(matrix.col_sum(dst), matrix.col_degree(dst)));
  }
  return bound;
}

RotorFabric::RotorFabric(Simulator& sim, const HybridTopology& topo,
                         Duration period)
    : Fabric(topo), sim_(sim), period_(period) {
  COSCHED_CHECK_MSG(period_ > Duration::zero(),
                    "rotor period must be positive");
  COSCHED_CHECK_MSG(
      topo_.ocs_reconfig_delay < period_,
      "rotor period " << period_ << " leaves no transfer time after the "
                      << topo_.ocs_reconfig_delay << " reconfiguration delay");
  const auto racks = static_cast<std::size_t>(topo_.num_racks);
  pending_by_pair_.resize(racks * racks);
  active_by_src_.resize(racks);
}

std::string RotorFabric::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "rotor:%gs", period_.sec());
  return buf;
}

void RotorFabric::submit(Coflow& /*coflow*/, Flow& flow) {
  COSCHED_CHECK(flow.path() == FlowPath::kOcs);
  COSCHED_CHECK_MSG(flow.src() != flow.dst(),
                    "intra-rack flow routed to the rotor fabric");
  COSCHED_CHECK_MSG(topo_.num_racks >= 2,
                    "rotor fabric needs at least two racks");
  pending_by_pair_[pair_index(flow.src(), flow.dst())].push_back(&flow);
  ++pending_count_;
  if (!armed_) arm_from(sim_.now());
}

void RotorFabric::arm_from(SimTime now) {
  // Service starts at the next absolute slot boundary: slot k covers
  // [k*P, (k+1)*P), and a mid-slot arrival waits out the remainder of the
  // current slot (its circuits were planned at a boundary it missed).
  armed_ = true;
  slot_ = static_cast<std::int64_t>(std::floor(now.sec() / period_.sec())) + 1;
  const std::int64_t slot = slot_;
  slot_event_ = sim_.schedule_at(boundary(slot),
                                 [this, slot] { slot_begin(slot); });
}

void RotorFabric::slot_begin(std::int64_t slot) {
  ++slots_run_;
  slot_ = slot;
  slot_end_ = boundary(slot + 1);
  // Preempt the previous slot's unfinished transfers: settle, credit, and
  // requeue each at the head of its pair queue (it was the head when it
  // started, so FIFO order is preserved). Completion events are only ever
  // scheduled strictly inside a slot, so none is pending here; a transfer
  // that drains exactly at the boundary settles to zero and completes now.
  for (auto& active : active_by_src_) {
    if (active.flow == nullptr) continue;
    Flow& flow = *active.flow;
    settle_active(active);
    flow.set_rate(Bandwidth::zero());
    active.flow = nullptr;
    --active_count_;
    if (flow.remaining_bits() <= 0.0) {
      flow.mark_completed(sim_.now());
      notify_flow_complete(flow);
      continue;
    }
    pending_by_pair_[pair_index(flow.src(), flow.dst())].push_front(&flow);
    ++pending_count_;
  }
  if (pending_count_ == 0) {
    // Idle: stop the clock so the simulation can drain. The next submit
    // re-arms at the then-next boundary.
    armed_ = false;
    return;
  }
  shift_ = shift_for(slot);
  // The slot's circuits come up after the reconfiguration delay.
  circuits_event_ =
      sim_.schedule_after(topo_.ocs_reconfig_delay, [this] { circuits_up(); });
  const std::int64_t next = slot + 1;
  slot_event_ = sim_.schedule_at(boundary(next),
                                 [this, next] { slot_begin(next); });
}

void RotorFabric::circuits_up() {
  const std::int32_t racks = topo_.num_racks;
  for (std::int32_t s = 0; s < racks; ++s) {
    const RackId src{s};
    const RackId dst{(s + shift_) % racks};
    std::deque<Flow*>& queue = pending_by_pair_[pair_index(src, dst)];
    if (queue.empty()) continue;
    start_transfer(src, queue);
  }
}

void RotorFabric::start_transfer(RackId src, std::deque<Flow*>& queue) {
  Flow& flow = *queue.front();
  queue.pop_front();
  --pending_count_;
  Active& active = active_by_src_[static_cast<std::size_t>(src.value())];
  COSCHED_CHECK(active.flow == nullptr);
  active.flow = &flow;
  active.last_update = sim_.now();
  ++active_count_;
  flow.mark_started(sim_.now());
  flow.set_rate(link_rate());
  const Duration eta = Duration::seconds(
      flow.remaining_bits() / link_rate().in_bits_per_sec());
  if (sim_.now() + eta < slot_end_) {
    flow.completion_event() = sim_.schedule_after(
        eta, [this, src] { on_transfer_complete(src); });
  }
  // Otherwise the slot boundary settles (and possibly completes) the flow.
}

void RotorFabric::settle_active(Active& active) {
  const double moved = active.flow->settle(sim_.now() - active.last_update);
  active.last_update = sim_.now();
  if (moved > 0.0) credit_drained_bits(moved);
}

void RotorFabric::on_transfer_complete(RackId src) {
  Active& active = active_by_src_[static_cast<std::size_t>(src.value())];
  COSCHED_CHECK(active.flow != nullptr);
  Flow& flow = *active.flow;
  settle_active(active);
  flow.set_rate(Bandwidth::zero());
  active.flow = nullptr;
  --active_count_;
  flow.mark_completed(sim_.now());
  notify_flow_complete(flow);
  // The circuit stays up for the rest of the slot: chain the next queued
  // flow of the same pair, if any.
  const RackId dst{(src.value() + shift_) % topo_.num_racks};
  std::deque<Flow*>& queue = pending_by_pair_[pair_index(src, dst)];
  if (!queue.empty()) start_transfer(src, queue);
}

void RotorFabric::demand_added(Flow& flow) {
  Active& active = active_by_src_[static_cast<std::size_t>(flow.src().value())];
  if (active.flow != &flow) {
    return;  // queued; the grown size is picked up when service starts
  }
  settle_active(active);
  flow.completion_event().cancel();
  const Duration eta = Duration::seconds(
      flow.remaining_bits() / link_rate().in_bits_per_sec());
  const RackId src = flow.src();
  if (sim_.now() + eta < slot_end_) {
    flow.completion_event() = sim_.schedule_after(
        eta, [this, src] { on_transfer_complete(src); });
  }
}

std::vector<Flow*> RotorFabric::evict_all() {
  std::vector<Flow*> evicted;
  evicted.reserve(active_count_ + pending_count_);
  // Circuit holders first (by source rack), then queued flows (by pair
  // index, FIFO within a pair) — the same shape as Sunflow's eviction.
  for (auto& active : active_by_src_) {
    if (active.flow == nullptr) continue;
    Flow& flow = *active.flow;
    settle_active(active);
    flow.completion_event().cancel();
    flow.set_rate(Bandwidth::zero());
    active.flow = nullptr;
    --active_count_;
    evicted.push_back(&flow);
  }
  for (auto& queue : pending_by_pair_) {
    for (Flow* f : queue) evicted.push_back(f);
    queue.clear();
  }
  pending_count_ = 0;
  slot_event_.cancel();
  circuits_event_.cancel();
  armed_ = false;
  return evicted;
}

DataSize RotorFabric::bytes_in_flight() const {
  double bits = 0.0;
  for (const auto& queue : pending_by_pair_) {
    for (const Flow* f : queue) bits += f->remaining_bits();
  }
  for (const auto& active : active_by_src_) {
    if (active.flow != nullptr) bits += active.flow->remaining_bits();
  }
  return DataSize::bytes(static_cast<std::int64_t>(bits / 8.0));
}

std::string RotorFabric::self_check() const {
  std::size_t actives = 0;
  for (std::size_t s = 0; s < active_by_src_.size(); ++s) {
    const Active& active = active_by_src_[s];
    if (active.flow == nullptr) continue;
    ++actives;
    const Flow& flow = *active.flow;
    const std::int32_t racks = topo_.num_racks;
    const std::int32_t expect_dst =
        (static_cast<std::int32_t>(s) + shift_) % racks;
    if (flow.src().value() != static_cast<std::int32_t>(s) ||
        flow.dst().value() != expect_dst) {
      std::ostringstream os;
      os << "rotor transfer " << flow.src() << " -> " << flow.dst()
         << " does not match slot " << slot_ << "'s matching (shift "
         << shift_ << ")";
      return os.str();
    }
  }
  if (actives != active_count_) {
    std::ostringstream os;
    os << "rotor active-transfer count diverged: counter " << active_count_
       << ", actual " << actives;
    return os.str();
  }
  std::size_t queued = 0;
  for (const auto& queue : pending_by_pair_) queued += queue.size();
  if (queued != pending_count_) {
    std::ostringstream os;
    os << "rotor pending-flow count diverged: counter " << pending_count_
       << ", actual " << queued;
    return os.str();
  }
  return {};
}

}  // namespace cosched
