// Wall-clock scoped timers for the simulator's own hot paths.
//
//   void SunflowScheduler::allocation_pass() {
//     COSCHED_PROF_SCOPE("sunflow.allocation_pass");
//     ...
//   }
//
// Profiling is off by default; a ProfScope constructed while disabled is a
// single branch and never touches the clock or the registry, so the macro
// can sit permanently in hot code. Enable with Profiler::set_enabled(true)
// (the --profile flag in trace_tools/benches) and print the per-section
// call counts and wall-clock totals with write_summary().
//
// The registry is process-global on purpose: hot paths live in leaf
// libraries (matching, EPS filling) that know nothing about the driver.
// The enabled flag is atomic and the section map is mutex-guarded so the
// parallel experiment runner's workers can all feed it; when profiling is
// off (the default) ProfScope never takes the lock, so the cost in hot
// code stays a single relaxed load.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cosched {

class Profiler {
 public:
  struct Section {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };

  static Profiler& instance();

  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  void add(const char* name, std::uint64_t ns);
  void reset();

  /// Sections sorted by total wall-clock, descending.
  [[nodiscard]] std::vector<std::pair<std::string, Section>> snapshot() const;

  /// Additionally attribute this thread's add() calls into `out` until
  /// end_capture(). `out` is cleared first and must outlive the capture.
  /// Thread-local, so a run's delta stays clean even when other experiment
  /// repetitions feed the global registry concurrently.
  static void begin_capture(std::vector<std::pair<std::string, Section>>* out);
  static void end_capture();

  /// Per-section table: calls, total ms, mean us, max us.
  void write_summary(std::ostream& os) const;
  /// Same table for an arbitrary section list (e.g. a per-run capture);
  /// sections are printed sorted by total wall-clock, descending.
  static void write_sections(
      std::ostream& os,
      std::vector<std::pair<std::string, Section>> sections);

 private:
  Profiler() = default;

  static std::atomic<bool> enabled_;
  static thread_local std::vector<std::pair<std::string, Section>>* capture_;
  // Linear scan over interned names: the simulator has ~10 instrumented
  // sections, and add() is only reached when profiling is on.
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Section>> sections_;
};

/// RAII timer feeding the global Profiler; inert when profiling is off.
class ProfScope {
 public:
  explicit ProfScope(const char* name)
      : name_(name), active_(Profiler::enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ProfScope() {
    if (!active_) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    Profiler::instance().add(name_, static_cast<std::uint64_t>(ns));
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  const char* name_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cosched

#define COSCHED_PROF_CONCAT_INNER(a, b) a##b
#define COSCHED_PROF_CONCAT(a, b) COSCHED_PROF_CONCAT_INNER(a, b)
#define COSCHED_PROF_SCOPE(name) \
  ::cosched::ProfScope COSCHED_PROF_CONCAT(cosched_prof_scope_, __LINE__)(name)
