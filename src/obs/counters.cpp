#include "obs/counters.h"

#include <ostream>
#include <utility>

#include "common/check.h"
#include "simcore/simulator.h"

namespace cosched {

void CounterRegistry::add_gauge(std::string name, Sampler sampler) {
  COSCHED_CHECK_MSG(sampler != nullptr, "gauge needs a sampler");
  COSCHED_CHECK_MSG(times_.empty(),
                    "gauges must be registered before sampling starts");
  names_.push_back(std::move(name));
  samplers_.push_back(std::move(sampler));
}

void CounterRegistry::sample_now(SimTime now) {
  if (samplers_.empty()) return;
  std::vector<double> row;
  row.reserve(samplers_.size());
  for (const Sampler& s : samplers_) row.push_back(s());
  times_.push_back(now);
  rows_.push_back(std::move(row));
}

void CounterRegistry::arm(Simulator& sim) {
  if (armed_ || samplers_.empty() || interval_ <= Duration::zero()) return;
  armed_ = true;
  sample_now(sim.now());
  sim.schedule_after(interval_, [this, &sim] { tick(sim); });
}

void CounterRegistry::tick(Simulator& sim) {
  sample_now(sim.now());
  // Re-arm only while something else is live: the sampler must never be the
  // event keeping an otherwise drained simulation running.
  if (sim.events_pending() > 0) {
    sim.schedule_after(interval_, [this, &sim] { tick(sim); });
  } else {
    armed_ = false;
  }
}

double CounterRegistry::last(const std::string& name) const {
  if (rows_.empty()) return 0.0;
  for (std::size_t j = 0; j < names_.size(); ++j) {
    if (names_[j] == name) return rows_.back()[j];
  }
  return 0.0;
}

void CounterRegistry::write_csv(std::ostream& os) const {
  os << "time_sec";
  for (const std::string& name : names_) os << ',' << name;
  os << "\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    os << times_[i].sec();
    for (double v : rows_[i]) os << ',' << v;
    os << "\n";
  }
  COSCHED_CHECK_MSG(os.good(), "counter CSV export failed");
}

}  // namespace cosched
