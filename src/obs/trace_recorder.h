// TraceRecorder: capture typed sim-time events and export them.
//
// The default-constructed recorder is the *null* recorder: disabled, and
// record() is an inline early-return — no allocation, no copy, nothing on
// the hot path beyond one predictable branch. Model code therefore records
// unconditionally through whatever pointer it holds; a disabled (or absent)
// recorder costs ~nothing, which is what lets tier-1 runs keep tracing
// compiled in.
//
// Exports:
//   * write_chrome_trace — Chrome trace_event JSON (open in chrome://tracing
//     or https://ui.perfetto.dev). Tasks become per-task duration spans
//     grouped under one "process" per job; circuits become spans on the
//     network process, one "thread" row per source rack; counter samples
//     (optional) become counter tracks.
//   * write_csv — flat timeline, one event per row, for ad-hoc plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/trace_event.h"

namespace cosched {

class CounterRegistry;

class TraceRecorder {
 public:
  /// Null (disabled) recorder.
  TraceRecorder() = default;

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Record one event. No-op (and allocation-free) when disabled.
  void record(const TraceEvent& ev) {
    if (!enabled_) return;
    events_.push_back(ev);
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Events of one kind (export helpers and tests).
  [[nodiscard]] std::int64_t count(TraceEventKind kind) const;

  /// Chrome trace_event JSON. When `counters` is given, its samples are
  /// emitted as counter ("C") tracks alongside the events.
  void write_chrome_trace(std::ostream& os,
                          const CounterRegistry* counters = nullptr) const;

  /// CSV timeline: time_sec,kind,job,task,flow,src,dst,a,b.
  void write_csv(std::ostream& os) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace cosched
