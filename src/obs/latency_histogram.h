// Log-bucketed latency histogram with *fixed* bucket boundaries.
//
// The bucket layout is a compile-time constant — 16 exact buckets for
// values 0..15, then four sub-buckets per power-of-two octave up to the
// full uint64 range (256 buckets, ~19% worst-case relative width). Because
// every histogram shares the same boundaries, merging two histograms is an
// element-wise add and is bit-for-bit deterministic regardless of the
// order samples (or merges) arrived in — the property the parallel
// experiment runner and the RunReport aggregation rely on.
//
// Percentiles are estimated by linear interpolation inside the bucket that
// contains the target rank, clamped to the exact observed [min, max]; the
// 100th percentile is the exact maximum. Values are nanoseconds by
// convention (PerfMonitor feeds wall-clock ns), but nothing here assumes a
// unit.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace cosched {

class LatencyHistogram {
 public:
  /// 16 exact buckets + 60 octaves x 4 sub-buckets = 256. Fixed forever
  /// within a schema version: RunReport serializes (lo, hi, count) triples,
  /// so readers never depend on this layout, but merges do.
  static constexpr std::size_t kNumBuckets = 256;

  /// Bucket that contains `v`: v itself for v < 16, otherwise
  /// 16 + 4*(octave-4) + sub, where octave = floor(log2 v) and sub is the
  /// next two significant bits.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v);
  /// Inclusive lower bound of bucket `i`.
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t i);
  /// Exclusive upper bound of bucket `i` (UINT64_MAX for the last bucket).
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t i);

  void add(std::uint64_t v);
  /// Element-wise add; deterministic (merge order cannot matter).
  void merge(const LatencyHistogram& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  /// Exact extrema (0 when empty).
  [[nodiscard]] std::uint64_t max() const { return count_ > 0 ? max_ : 0; }
  [[nodiscard]] std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i];
  }

  /// Estimated p-th percentile (p in [0, 100]); 0 when empty. Monotone in
  /// p, clamped to [min(), max()], exact at p = 100.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(50); }
  [[nodiscard]] double p90() const { return percentile(90); }
  [[nodiscard]] double p99() const { return percentile(99); }

 private:
  std::array<std::uint64_t, kNumBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace cosched
