#include "obs/perf_monitor.h"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <ostream>

#ifdef __linux__
#include <cstdio>
#include <cstring>
#endif

namespace cosched {

const char* to_string(PerfPhase phase) {
  switch (phase) {
    case PerfPhase::kPsrtEnumerate:
      return "psrt.enumerate";
    case PerfPhase::kSbsExplore:
      return "sbs.explore";
    case PerfPhase::kOcasGrant:
      return "ocas.grant";
    case PerfPhase::kSchedPickTask:
      return "sched.pick_task";
    case PerfPhase::kSunflowAlloc:
      return "sunflow.allocation";
    case PerfPhase::kEpsReplan:
      return "eps.replan";
    case PerfPhase::kEventDispatch:
      return "sim.event_dispatch";
    case PerfPhase::kDriverDispatch:
      return "driver.dispatch";
  }
  return "unknown";
}

std::size_t PerfPhaseStats::size_bucket_index(std::uint64_t size) {
  return static_cast<std::size_t>(std::bit_width(size));
}

std::uint64_t PerfPhaseStats::size_bucket_lo(std::size_t b) {
  if (b == 0) return 0;
  return std::uint64_t{1} << (b - 1);
}

std::uint64_t PerfPhaseStats::size_bucket_hi(std::size_t b) {
  if (b == 0) return 0;
  if (b >= kSizeBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

void PerfPhaseStats::add(std::uint64_t ns, std::uint64_t size) {
  latency.add(ns);
  ++calls;
  total_ns += ns;
  max_ns = std::max(max_ns, ns);
  SizeBucket& sb = by_size[size_bucket_index(size)];
  ++sb.calls;
  sb.total_ns += ns;
  sb.max_ns = std::max(sb.max_ns, ns);
  sb.total_size += size;
}

void PerfPhaseStats::merge(const PerfPhaseStats& other) {
  latency.merge(other.latency);
  calls += other.calls;
  total_ns += other.total_ns;
  max_ns = std::max(max_ns, other.max_ns);
  for (std::size_t b = 0; b < kSizeBuckets; ++b) {
    SizeBucket& dst = by_size[b];
    const SizeBucket& src = other.by_size[b];
    dst.calls += src.calls;
    dst.total_ns += src.total_ns;
    dst.max_ns = std::max(dst.max_ns, src.max_ns);
    dst.total_size += src.total_size;
  }
}

bool PerfSnapshot::empty() const {
  for (const PerfPhaseStats& s : phases) {
    if (s.calls > 0) return false;
  }
  return true;
}

void PerfSnapshot::merge(const PerfSnapshot& other) {
  for (std::size_t p = 0; p < kPerfPhaseCount; ++p) {
    phases[p].merge(other.phases[p]);
  }
}

std::atomic<bool> PerfMonitor::enabled_{false};
thread_local PerfSnapshot* PerfMonitor::capture_ = nullptr;

PerfMonitor& PerfMonitor::instance() {
  static PerfMonitor mon;
  return mon;
}

void PerfMonitor::record(PerfPhase phase, std::uint64_t ns,
                         std::uint64_t size) {
  if (capture_ != nullptr) {
    capture_->phases[static_cast<std::size_t>(phase)].add(ns, size);
  }
  std::lock_guard<std::mutex> lock(mu_);
  global_.phases[static_cast<std::size_t>(phase)].add(ns, size);
}

void PerfMonitor::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  global_ = PerfSnapshot{};
}

PerfSnapshot PerfMonitor::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return global_;
}

void PerfMonitor::begin_capture(PerfSnapshot* out) {
  if (out != nullptr) *out = PerfSnapshot{};
  capture_ = out;
}

void PerfMonitor::end_capture() { capture_ = nullptr; }

namespace {

double us(double ns) { return ns / 1e3; }

}  // namespace

void PerfMonitor::write_summary(std::ostream& os, const PerfSnapshot& snap) {
  os << "--- perf phases (wall clock) ---\n";
  if (snap.empty()) {
    os << "  (no samples; was the monitor enabled?)\n";
    return;
  }
  os << "  " << std::left << std::setw(20) << "phase" << std::right
     << std::setw(10) << "calls" << std::setw(12) << "total_ms"
     << std::setw(10) << "p50_us" << std::setw(10) << "p99_us"
     << std::setw(10) << "max_us" << "\n";
  const auto old_flags = os.flags();
  const auto old_prec = os.precision();
  os << std::fixed << std::setprecision(1);
  for (std::size_t p = 0; p < kPerfPhaseCount; ++p) {
    const PerfPhaseStats& s = snap.phases[p];
    if (s.calls == 0) continue;
    os << "  " << std::left << std::setw(20)
       << to_string(static_cast<PerfPhase>(p)) << std::right << std::setw(10)
       << s.calls << std::setw(12)
       << static_cast<double>(s.total_ns) / 1e6 << std::setw(10)
       << us(s.latency.p50()) << std::setw(10) << us(s.latency.p99())
       << std::setw(10) << us(static_cast<double>(s.latency.max())) << "\n";
    for (std::size_t b = 0; b < PerfPhaseStats::kSizeBuckets; ++b) {
      const PerfPhaseStats::SizeBucket& sb = s.by_size[b];
      if (sb.calls == 0) continue;
      os << "      size " << std::left << std::setw(6)
         << PerfPhaseStats::size_bucket_lo(b) << std::right << std::setw(18)
         << sb.calls << std::setw(12)
         << static_cast<double>(sb.total_ns) / 1e6 << std::setw(10)
         << us(static_cast<double>(sb.total_ns) /
               static_cast<double>(sb.calls))
         << std::setw(10) << "" << std::setw(10)
         << us(static_cast<double>(sb.max_ns)) << "\n";
    }
  }
  os.flags(old_flags);
  os.precision(old_prec);
}

std::uint64_t rss_high_water_bytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      if (std::sscanf(line + 6, "%lu", &kb) != 1) kb = 0;
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

}  // namespace cosched
