// Wall-clock cost attribution for the simulator's scheduling passes.
//
// Where the flat Profiler (profile.h) answers "how much total wall-clock
// did section X burn", the PerfMonitor answers the scale-campaign question:
// *how does the cost of one invocation grow with problem size?* Every
// instrumented phase records a per-invocation latency into a log-bucketed
// LatencyHistogram (p50/p90/p99/max) and attributes the cost to a
// log2-bucketed *size* axis — jobs considered by an OCAS grant loop, racks
// scanned by an SBS explore, flows in an EPS replan — so one monitored run
// yields the whole cost-vs-scale curve per phase.
//
//   std::optional<TaskChoice> CoScheduler::pick_task(...) {
//     PerfScope perf(PerfPhase::kOcasGrant);
//     perf.set_size(ctx.active_jobs.size());
//     ...
//   }
//
// Monitoring is pay-for-what-you-use: a PerfScope constructed while the
// monitor is disabled (the default) is a single relaxed load and never
// touches the clock. Enabling it changes nothing the simulation can see —
// the monitor only reads wall clocks and its own registry, so monitored
// runs are bit-for-bit identical to dark runs (test- and fuzzer-pinned,
// the same guarantee the auditor gives).
//
// Like the Profiler, the registry is process-global (hot paths live in
// leaf libraries) and mutex-guarded so parallel experiment workers can all
// feed it. A per-run view is available through the thread-local capture:
// the driver brackets each observed run with begin_capture()/end_capture()
// so a repetition's snapshot contains only its own invocations even when
// other repetitions share the process or run concurrently.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>

#include "obs/latency_histogram.h"

namespace cosched {

/// The instrumented phases. Names (to_string) are stable identifiers used
/// in RunReport JSON and tools/run_report.py — extend, don't renumber.
enum class PerfPhase : std::uint8_t {
  kPsrtEnumerate = 0,  ///< PSRT R_red enumeration; size = map racks >= T_e
  kSbsExplore,         ///< SBS ExploreSchedule; size = candidates x racks
  kOcasGrant,          ///< OCAS per-class grant loop; size = active jobs
  kSchedPickTask,      ///< baseline pick_task (Fair/Corral/Delay); size = active jobs
  kSunflowAlloc,       ///< Sunflow circuit selection; size = pending flows
  kEpsReplan,          ///< EPS rate recompute + replan; size = active flows
  kEventDispatch,      ///< one simulator event; size = live events pending
  kDriverDispatch,     ///< driver container-grant pass; size = racks scanned
};
inline constexpr std::size_t kPerfPhaseCount = 8;

[[nodiscard]] const char* to_string(PerfPhase phase);

/// Accumulated statistics for one phase: the per-invocation latency
/// distribution plus cost attributed to log2 size buckets.
struct PerfPhaseStats {
  /// by_size[b] aggregates invocations whose size has bit width b, i.e.
  /// size 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ... (65 buckets).
  struct SizeBucket {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    std::uint64_t total_size = 0;
  };
  static constexpr std::size_t kSizeBuckets = 65;

  LatencyHistogram latency;
  std::array<SizeBucket, kSizeBuckets> by_size{};
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;

  [[nodiscard]] static std::size_t size_bucket_index(std::uint64_t size);
  /// Inclusive lower bound of size bucket `b` (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static std::uint64_t size_bucket_lo(std::size_t b);
  /// Inclusive upper bound of size bucket `b` (0, 1, 3, 7, 15, ...).
  [[nodiscard]] static std::uint64_t size_bucket_hi(std::size_t b);

  void add(std::uint64_t ns, std::uint64_t size);
  void merge(const PerfPhaseStats& other);
};

/// A copyable view of every phase; what snapshot(), captures, and the
/// RunReport exporter trade in.
struct PerfSnapshot {
  std::array<PerfPhaseStats, kPerfPhaseCount> phases{};

  [[nodiscard]] const PerfPhaseStats& phase(PerfPhase p) const {
    return phases[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] bool empty() const;
  void merge(const PerfSnapshot& other);
};

class PerfMonitor {
 public:
  static PerfMonitor& instance();

  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(PerfPhase phase, std::uint64_t ns, std::uint64_t size);
  void reset();
  [[nodiscard]] PerfSnapshot snapshot() const;

  /// Additionally attribute this thread's record() calls into `out` until
  /// end_capture(). `out` is cleared first and must outlive the capture.
  /// Thread-local: other threads' records never leak into the capture.
  static void begin_capture(PerfSnapshot* out);
  static void end_capture();

  /// Per-phase table: calls, total ms, p50/p99/max us, plus one row per
  /// populated size bucket (cost-vs-scale in text form).
  static void write_summary(std::ostream& os, const PerfSnapshot& snap);

 private:
  PerfMonitor() = default;

  static std::atomic<bool> enabled_;
  static thread_local PerfSnapshot* capture_;

  mutable std::mutex mu_;
  PerfSnapshot global_;
};

/// RAII per-invocation timer; inert when monitoring is off. set_size()
/// tags the invocation's size axis (defaults to 0).
class PerfScope {
 public:
  explicit PerfScope(PerfPhase phase)
      : phase_(phase), active_(PerfMonitor::enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~PerfScope() {
    if (!active_) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    PerfMonitor::instance().record(phase_, static_cast<std::uint64_t>(ns),
                                   size_);
  }
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

  /// True when the monitor was enabled at construction — guard any
  /// non-trivial size computation on this.
  [[nodiscard]] bool active() const { return active_; }
  void set_size(std::uint64_t size) { size_ = size; }

 private:
  PerfPhase phase_;
  bool active_;
  std::uint64_t size_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// Resident-set high-water mark of this process in bytes (VmHWM); 0 where
/// the platform offers no cheap way to read it. Used by the heartbeat.
[[nodiscard]] std::uint64_t rss_high_water_bytes();

}  // namespace cosched
