#include "obs/profile.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace cosched {

std::atomic<bool> Profiler::enabled_{false};
thread_local std::vector<std::pair<std::string, Profiler::Section>>*
    Profiler::capture_ = nullptr;

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

namespace {

void accumulate(std::vector<std::pair<std::string, Profiler::Section>>& dst,
                const char* name, std::uint64_t ns) {
  for (auto& [section_name, section] : dst) {
    if (section_name == name) {
      ++section.calls;
      section.total_ns += ns;
      section.max_ns = std::max(section.max_ns, ns);
      return;
    }
  }
  dst.emplace_back(name, Profiler::Section{
                             .calls = 1, .total_ns = ns, .max_ns = ns});
}

}  // namespace

void Profiler::add(const char* name, std::uint64_t ns) {
  if (capture_ != nullptr) accumulate(*capture_, name, ns);
  std::lock_guard<std::mutex> lock(mu_);
  accumulate(sections_, name, ns);
}

void Profiler::begin_capture(
    std::vector<std::pair<std::string, Section>>* out) {
  if (out != nullptr) out->clear();
  capture_ = out;
}

void Profiler::end_capture() { capture_ = nullptr; }

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sections_.clear();
}

std::vector<std::pair<std::string, Profiler::Section>> Profiler::snapshot()
    const {
  std::vector<std::pair<std::string, Section>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = sections_;
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  return out;
}

void Profiler::write_summary(std::ostream& os) const {
  write_sections(os, snapshot());
}

void Profiler::write_sections(
    std::ostream& os, std::vector<std::pair<std::string, Section>> sections) {
  std::sort(sections.begin(), sections.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  os << "wall-clock profile (" << sections.size() << " sections)\n";
  os << "  " << std::left << std::setw(32) << "section" << std::right
     << std::setw(10) << "calls" << std::setw(12) << "total_ms"
     << std::setw(12) << "mean_us" << std::setw(12) << "max_us" << "\n";
  for (const auto& [name, s] : sections) {
    const double total_ms = static_cast<double>(s.total_ns) / 1e6;
    const double mean_us =
        s.calls == 0 ? 0.0
                     : static_cast<double>(s.total_ns) /
                           (1e3 * static_cast<double>(s.calls));
    const double max_us = static_cast<double>(s.max_ns) / 1e3;
    os << "  " << std::left << std::setw(32) << name << std::right
       << std::setw(10) << s.calls << std::setw(12) << std::fixed
       << std::setprecision(3) << total_ms << std::setw(12) << mean_us
       << std::setw(12) << max_us << "\n";
  }
  os.unsetf(std::ios::fixed);
}

}  // namespace cosched
