// Typed simulation-time trace events.
//
// A TraceEvent is a fixed-size, trivially-copyable record of one thing the
// simulation did: a task starting, a container being granted (with its OCAS
// priority class), a coflow being released, a flow being routed to a
// fabric, an optical circuit being configured or torn down, the deadlock
// breaker engaging. Events carry ids and at most two scalar payloads — no
// strings and no heap — so recording one is a bounds check and a struct
// copy. Human-readable names appear only at export time.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/units.h"

namespace cosched {

enum class TraceEventKind : std::uint8_t {
  kJobArrival,         // job
  kJobComplete,        // job
  kTaskStart,          // job, task, src=rack; a: 0=map 1=reduce
  kTaskFinish,         // job, task, src=rack; a: 0=map 1=reduce
  kContainerGrant,     // job, task, src=rack; a: OCAS class (1..6, -1 n/a)
  kReduceComputeStart, // job, task, src=rack
  kCoflowRelease,      // job; a: flows released so far; b: demand (GB)
  kFlowRouted,         // job, flow, src, dst; a: FlowPath; b: size (GB)
  kFlowComplete,       // job, flow, src, dst; a: FlowPath
  kCircuitSetup,       // src, dst (reconfiguration begins)
  kCircuitUp,          // src, dst (circuit carries traffic)
  kCircuitTeardown,    // src, dst
  kDeadlockBreak,      // a: total breaks so far
  kTaskStraggle,       // job, task, src=rack; b: service multiplier
  kTaskKilled,         // job, task, src=rack; a: 0=map 1=reduce
  kOcsOutage,          // a: 1=begin 0=end; b: window duration (s)
  kFlowEvicted,        // job, flow, src, dst; b: bits still to drain
};

/// Export-time names; indexable by static_cast<size_t>(kind).
[[nodiscard]] constexpr const char* to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kJobArrival:
      return "job_arrival";
    case TraceEventKind::kJobComplete:
      return "job_complete";
    case TraceEventKind::kTaskStart:
      return "task_start";
    case TraceEventKind::kTaskFinish:
      return "task_finish";
    case TraceEventKind::kContainerGrant:
      return "container_grant";
    case TraceEventKind::kReduceComputeStart:
      return "reduce_compute_start";
    case TraceEventKind::kCoflowRelease:
      return "coflow_release";
    case TraceEventKind::kFlowRouted:
      return "flow_routed";
    case TraceEventKind::kFlowComplete:
      return "flow_complete";
    case TraceEventKind::kCircuitSetup:
      return "circuit_setup";
    case TraceEventKind::kCircuitUp:
      return "circuit_up";
    case TraceEventKind::kCircuitTeardown:
      return "circuit_teardown";
    case TraceEventKind::kDeadlockBreak:
      return "deadlock_break";
    case TraceEventKind::kTaskStraggle:
      return "task_straggle";
    case TraceEventKind::kTaskKilled:
      return "task_killed";
    case TraceEventKind::kOcsOutage:
      return "ocs_outage";
    case TraceEventKind::kFlowEvicted:
      return "flow_evicted";
  }
  return "?";
}

struct TraceEvent {
  TraceEventKind kind{};
  SimTime at;
  JobId job = JobId::invalid();
  TaskId task = TaskId::invalid();
  FlowId flow = FlowId::invalid();
  RackId src = RackId::invalid();
  RackId dst = RackId::invalid();
  std::int64_t a = 0;
  double b = 0.0;

  friend bool operator==(const TraceEvent& x, const TraceEvent& y) {
    return x.kind == y.kind && x.at == y.at && x.job == y.job &&
           x.task == y.task && x.flow == y.flow && x.src == y.src &&
           x.dst == y.dst && x.a == y.a && x.b == y.b;
  }
};

}  // namespace cosched
