// DecisionLog: an audit trail of scheduler choices with their inputs.
//
// Four decision families, matching the paper's mechanisms:
//   * PlacementDecision — one per PSRT+SBS pass: the R_map guideline the
//     job ran under, every candidate count considered, the chosen reduce
//     distribution D, the concrete rack plan (R_red racks), and the
//     CCT + t_max estimate the winner scored.
//   * GrantDecision — one per container grant: which task got the slot,
//     on which rack, under which OCAS priority class.
//   * CircuitDecision — one per circuit the coflow scheduler requests:
//     which flow, between which racks, at what coflow priority.
//   * FaultDecision — one per injected fault event: what the fault layer
//     did (straggle, kill, outage begin/end, flow eviction) and to whom.
//
// Like the TraceRecorder, a default-constructed log is disabled and
// record() is an early-return.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace cosched {

struct PlacementDecision {
  SimTime at;
  JobId job = JobId::invalid();
  /// R_map guideline in force (0 = none).
  std::int32_t r_map = 0;
  /// Number of reduce racks in the chosen plan.
  std::int32_t r_red = 0;
  /// Chosen distribution D, descending (d[i] reduces on the i-th rack).
  std::vector<std::int32_t> d;
  /// Concrete rack -> reduce-count plan, sorted by rack.
  std::vector<std::pair<RackId, std::int32_t>> plan;
  /// The winner's CCT lower bound and container-availability wait.
  Duration planned_cct = Duration::zero();
  Duration t_max = Duration::zero();
  /// score = (planned_cct + t_max) in seconds — what SBS minimized.
  double score_sec = 0.0;
  /// Candidate schedules PSRT offered to SBS.
  std::int64_t candidates = 0;
};

struct GrantDecision {
  SimTime at;
  RackId rack = RackId::invalid();
  JobId job = JobId::invalid();
  TaskId task = TaskId::invalid();
  UserId user = UserId::invalid();
  bool is_map = false;
  /// OCAS priority class 1..6; -1 for schedulers without classes.
  std::int32_t ocas_class = -1;
};

struct CircuitDecision {
  SimTime at;
  CoflowId coflow = CoflowId::invalid();
  JobId job = JobId::invalid();
  FlowId flow = FlowId::invalid();
  RackId src = RackId::invalid();
  RackId dst = RackId::invalid();
  /// Coflow priority (its CCT lower bound, seconds; smaller = earlier).
  double priority_sec = 0.0;
  DataSize bytes;
};

enum class FaultAction : std::uint8_t {
  kStraggle,     // task slowed; value = service multiplier
  kKillMap,      // map attempt killed; value = kill point (fraction)
  kKillReduce,   // reduce attempt killed; value = kill point (fraction)
  kOutageBegin,  // OCS down; value = window duration (s)
  kOutageEnd,    // OCS back
  kFlowEvicted,  // OCS flow moved to the EPS; value = bits left to drain
};

[[nodiscard]] constexpr const char* to_string(FaultAction a) {
  switch (a) {
    case FaultAction::kStraggle:
      return "straggle";
    case FaultAction::kKillMap:
      return "kill_map";
    case FaultAction::kKillReduce:
      return "kill_reduce";
    case FaultAction::kOutageBegin:
      return "outage_begin";
    case FaultAction::kOutageEnd:
      return "outage_end";
    case FaultAction::kFlowEvicted:
      return "flow_evicted";
  }
  return "?";
}

struct FaultDecision {
  SimTime at;
  FaultAction action{};
  JobId job = JobId::invalid();
  TaskId task = TaskId::invalid();
  FlowId flow = FlowId::invalid();
  RackId rack = RackId::invalid();
  /// Action-dependent scalar (see FaultAction comments).
  double value = 0.0;
};

class DecisionLog {
 public:
  DecisionLog() = default;

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(PlacementDecision d) {
    if (enabled_) placements_.push_back(std::move(d));
  }
  void record(const GrantDecision& d) {
    if (enabled_) grants_.push_back(d);
  }
  void record(const CircuitDecision& d) {
    if (enabled_) circuits_.push_back(d);
  }
  void record(const FaultDecision& d) {
    if (enabled_) faults_.push_back(d);
  }

  [[nodiscard]] const std::vector<PlacementDecision>& placements() const {
    return placements_;
  }
  [[nodiscard]] const std::vector<GrantDecision>& grants() const {
    return grants_;
  }
  [[nodiscard]] const std::vector<CircuitDecision>& circuits() const {
    return circuits_;
  }
  [[nodiscard]] const std::vector<FaultDecision>& faults() const {
    return faults_;
  }

  /// CSV exports, one file (section) per decision family.
  void write_placements_csv(std::ostream& os) const;
  void write_grants_csv(std::ostream& os) const;
  void write_circuits_csv(std::ostream& os) const;
  void write_faults_csv(std::ostream& os) const;

 private:
  bool enabled_ = false;
  std::vector<PlacementDecision> placements_;
  std::vector<GrantDecision> grants_;
  std::vector<CircuitDecision> circuits_;
  std::vector<FaultDecision> faults_;
};

}  // namespace cosched
