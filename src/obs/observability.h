// The observability bundle: everything a run can record about itself.
//
// Attach one to a SimConfig (`cfg.obs = &obs`) and the driver wires it
// through the whole stack: the TraceRecorder sees task/container/coflow/
// flow/circuit events, the CounterRegistry samples queue depths, container
// occupancy, circuit utilization and bytes in flight on a sim-time cadence,
// and the DecisionLog captures every PSRT/SBS plan, OCAS container grant,
// and Sunflow circuit choice. The bundle owns no simulation state and can
// outlive the driver, so artifacts are exported after run() returns.
//
// Constructing the bundle enables trace + decisions (attaching one is the
// opt-in); individual components can be re-disabled for targeted runs.
// Wall-clock profiling (COSCHED_PROF_SCOPE) is global and enabled
// separately via Profiler::set_enabled.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "obs/decision_log.h"
#include "obs/perf_monitor.h"
#include "obs/profile.h"
#include "obs/trace_recorder.h"

namespace cosched {

struct Observability {
  Observability() {
    trace.enable();
    decisions.enable();
  }

  TraceRecorder trace;
  CounterRegistry counters;
  DecisionLog decisions;

  // Per-run wall-clock deltas, captured by the driver when the global
  // Profiler / PerfMonitor are enabled (empty otherwise). Unlike the global
  // registries these never conflate repetitions: the driver brackets the
  // run with the thread-local captures, so parallel workers stay separate.
  std::vector<std::pair<std::string, Profiler::Section>> profile;
  PerfSnapshot perf;
};

}  // namespace cosched
