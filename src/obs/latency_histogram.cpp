#include "obs/latency_histogram.h"

#include <algorithm>
#include <bit>

namespace cosched {

std::size_t LatencyHistogram::bucket_index(std::uint64_t v) {
  if (v < 16) return static_cast<std::size_t>(v);
  const int octave = std::bit_width(v) - 1;  // >= 4
  const auto sub =
      static_cast<std::size_t>((v >> (octave - 2)) & 0x3ULL);
  return 16 + 4 * static_cast<std::size_t>(octave - 4) + sub;
}

std::uint64_t LatencyHistogram::bucket_lo(std::size_t i) {
  if (i < 16) return i;
  const std::size_t k = i - 16;
  const std::size_t octave = 4 + k / 4;
  const std::uint64_t sub = k % 4;
  return (std::uint64_t{1} << octave) + sub * (std::uint64_t{1} << (octave - 2));
}

std::uint64_t LatencyHistogram::bucket_hi(std::size_t i) {
  if (i + 1 >= kNumBuckets) return ~std::uint64_t{0};
  return bucket_lo(i + 1);
}

void LatencyHistogram::add(std::uint64_t v) {
  ++counts_[bucket_index(v)];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::reset() { *this = LatencyHistogram{}; }

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  if (p >= 100.0) return static_cast<double>(max_);
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (counts_[i] == 0) continue;
    const auto next = cum + counts_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate the target rank's position inside this bucket.
      const double within =
          (target - static_cast<double>(cum)) /
          static_cast<double>(counts_[i]);
      const double lo = static_cast<double>(bucket_lo(i));
      const double hi = static_cast<double>(bucket_hi(i));
      const double v = lo + within * (hi - lo);
      return std::clamp(v, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
    cum = next;
  }
  return static_cast<double>(max_);
}

}  // namespace cosched
