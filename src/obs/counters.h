// CounterRegistry: named time-series gauges sampled on sim-time intervals.
//
// A gauge is a callback reading some live quantity (queue depth, container
// occupancy, circuit utilization, bytes in flight). The registry samples
// every gauge at a fixed simulated-time cadence and stores the rows for CSV
// export or for merging into a Chrome trace as counter tracks.
//
// Sampling is driven by the simulator's own event queue: arm() takes one
// sample immediately and schedules the next tick. A tick re-arms itself
// only while other live events remain, so sampling never keeps an otherwise
// drained simulation alive (the driver re-arms after deadlock recovery).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.h"

namespace cosched {

class Simulator;

class CounterRegistry {
 public:
  using Sampler = std::function<double()>;

  /// Register a gauge. Names become CSV column headers; keep them
  /// [a-z0-9_.] for the benefit of downstream tools.
  void add_gauge(std::string name, Sampler sampler);

  [[nodiscard]] bool empty() const { return samplers_.empty(); }
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }

  /// Sim-time between samples (default 1 s). Zero disables arm().
  void set_interval(Duration d) { interval_ = d; }
  [[nodiscard]] Duration interval() const { return interval_; }

  /// Read every gauge once, appending a row stamped `now`.
  void sample_now(SimTime now);

  /// Start periodic sampling on `sim` (idempotent while armed). Takes one
  /// sample at the current time, then one per interval while the
  /// simulation has other live events pending.
  void arm(Simulator& sim);

  [[nodiscard]] const std::vector<SimTime>& sample_times() const {
    return times_;
  }
  /// rows()[i][j] = value of gauge j at sample_times()[i].
  [[nodiscard]] const std::vector<std::vector<double>>& rows() const {
    return rows_;
  }

  /// Last sampled value of `name`; 0 when never sampled or unknown.
  [[nodiscard]] double last(const std::string& name) const;

  /// CSV: header `time_sec,<name>...`, one row per sample.
  void write_csv(std::ostream& os) const;

 private:
  void tick(Simulator& sim);

  std::vector<std::string> names_;
  std::vector<Sampler> samplers_;
  std::vector<SimTime> times_;
  std::vector<std::vector<double>> rows_;
  Duration interval_ = Duration::seconds(1);
  bool armed_ = false;
};

}  // namespace cosched
