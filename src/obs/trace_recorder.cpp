#include "obs/trace_recorder.h"

#include <ostream>
#include <set>
#include <string>

#include "common/check.h"
#include "net/flow.h"
#include "obs/counters.h"

namespace cosched {

namespace {

// Chrome trace "process" layout: one synthetic pid per actor so Perfetto
// groups related rows. Jobs get their own pid each (task spans nest under
// them, one "thread" row per task); the network and the driver share fixed
// pids.
constexpr std::int64_t kNetworkPid = 1;
constexpr std::int64_t kDriverPid = 2;
constexpr std::int64_t kJobPidBase = 1000;

std::int64_t job_pid(JobId job) { return kJobPidBase + job.value(); }

double micros(SimTime t) { return t.sec() * 1e6; }

const char* flow_event_name(std::int64_t path) {
  switch (static_cast<FlowPath>(path)) {
    case FlowPath::kEps:
      return "flow_eps";
    case FlowPath::kOcs:
      return "flow_ocs";
    case FlowPath::kLocal:
      return "flow_local";
    case FlowPath::kPending:
      break;
  }
  return "flow";
}

/// One JSON trace-event object. `args_json` is the inner object body
/// ("\"k\":1") or empty.
void emit(std::ostream& os, bool& first, const std::string& name,
          const char* cat, const char* ph, double ts, std::int64_t pid,
          std::int64_t tid, const std::string& args_json) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << name << R"(","cat":")" << cat << R"(","ph":")"
     << ph << R"(","ts":)" << ts << R"(,"pid":)" << pid << R"(,"tid":)"
     << tid;
  if (!args_json.empty()) os << R"(,"args":{)" << args_json << "}";
  os << "}";
}

void emit_process_name(std::ostream& os, bool& first, std::int64_t pid,
                       const std::string& name) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":"process_name","ph":"M","pid":)" << pid
     << R"(,"tid":0,"args":{"name":")" << name << R"("}})";
}

}  // namespace

std::int64_t TraceRecorder::count(TraceEventKind kind) const {
  std::int64_t n = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.kind == kind) ++n;
  }
  return n;
}

void TraceRecorder::write_chrome_trace(std::ostream& os,
                                       const CounterRegistry* counters) const {
  os << "{\"traceEvents\":[\n";
  bool first = true;

  emit_process_name(os, first, kNetworkPid, "network (OCS circuits + flows)");
  emit_process_name(os, first, kDriverPid, "driver/scheduler");
  std::set<JobId> jobs_seen;
  for (const TraceEvent& ev : events_) {
    if (ev.job.valid() && jobs_seen.insert(ev.job).second) {
      emit_process_name(os, first, job_pid(ev.job),
                        "job " + std::to_string(ev.job.value()));
    }
  }

  for (const TraceEvent& ev : events_) {
    const double ts = micros(ev.at);
    switch (ev.kind) {
      case TraceEventKind::kJobArrival:
        emit(os, first, "job_arrival", "job", "i", ts, job_pid(ev.job), 0,
             "\"scope\":1");
        break;
      case TraceEventKind::kJobComplete:
        emit(os, first, "job_complete", "job", "i", ts, job_pid(ev.job), 0,
             "");
        break;
      case TraceEventKind::kTaskStart:
        emit(os, first, ev.a == 0 ? "map" : "reduce", "task", "B", ts,
             job_pid(ev.job), ev.task.value(),
             "\"rack\":" + std::to_string(ev.src.value()));
        break;
      case TraceEventKind::kTaskFinish:
        emit(os, first, ev.a == 0 ? "map" : "reduce", "task", "E", ts,
             job_pid(ev.job), ev.task.value(), "");
        break;
      case TraceEventKind::kContainerGrant:
        emit(os, first, "container_grant", "sched", "i", ts, job_pid(ev.job),
             ev.task.value(),
             "\"ocas_class\":" + std::to_string(ev.a) +
                 ",\"rack\":" + std::to_string(ev.src.value()));
        break;
      case TraceEventKind::kReduceComputeStart:
        emit(os, first, "reduce_compute_start", "task", "i", ts,
             job_pid(ev.job), ev.task.value(), "");
        break;
      case TraceEventKind::kCoflowRelease:
        emit(os, first, "coflow_release", "coflow", "i", ts, job_pid(ev.job),
             0,
             "\"flows\":" + std::to_string(ev.a) +
                 ",\"gb\":" + std::to_string(ev.b));
        break;
      case TraceEventKind::kFlowRouted:
        emit(os, first, flow_event_name(ev.a), "flow", "i", ts, kNetworkPid,
             ev.src.value(),
             "\"job\":" + std::to_string(ev.job.value()) +
                 ",\"dst\":" + std::to_string(ev.dst.value()) +
                 ",\"gb\":" + std::to_string(ev.b));
        break;
      case TraceEventKind::kFlowComplete:
        emit(os, first, "flow_complete", "flow", "i", ts, kNetworkPid,
             ev.src.value(),
             "\"job\":" + std::to_string(ev.job.value()) +
                 ",\"dst\":" + std::to_string(ev.dst.value()));
        break;
      case TraceEventKind::kCircuitSetup:
        emit(os, first, "circuit", "ocs", "B", ts, kNetworkPid,
             ev.src.value(), "\"dst\":" + std::to_string(ev.dst.value()));
        break;
      case TraceEventKind::kCircuitUp:
        emit(os, first, "circuit_up", "ocs", "i", ts, kNetworkPid,
             ev.src.value(), "\"dst\":" + std::to_string(ev.dst.value()));
        break;
      case TraceEventKind::kCircuitTeardown:
        emit(os, first, "circuit", "ocs", "E", ts, kNetworkPid,
             ev.src.value(), "");
        break;
      case TraceEventKind::kDeadlockBreak:
        emit(os, first, "deadlock_break", "sched", "i", ts, kDriverPid, 0,
             "\"total\":" + std::to_string(ev.a));
        break;
      case TraceEventKind::kTaskStraggle:
        emit(os, first, "straggle", "fault", "i", ts, job_pid(ev.job),
             ev.task.value(),
             "\"rack\":" + std::to_string(ev.src.value()) +
                 ",\"slow\":" + std::to_string(ev.b));
        break;
      case TraceEventKind::kTaskKilled:
        emit(os, first, ev.a == 0 ? "kill_map" : "kill_reduce", "fault", "i",
             ts, job_pid(ev.job), ev.task.value(),
             "\"rack\":" + std::to_string(ev.src.value()));
        break;
      case TraceEventKind::kOcsOutage:
        emit(os, first, "ocs_outage", "fault", ev.a == 1 ? "B" : "E", ts,
             kNetworkPid, 0,
             ev.a == 1 ? "\"dur_sec\":" + std::to_string(ev.b) : "");
        break;
      case TraceEventKind::kFlowEvicted:
        emit(os, first, "flow_evicted", "fault", "i", ts, kNetworkPid,
             ev.src.value(),
             "\"job\":" + std::to_string(ev.job.value()) +
                 ",\"dst\":" + std::to_string(ev.dst.value()) +
                 ",\"bits_left\":" + std::to_string(ev.b));
        break;
    }
  }

  if (counters != nullptr) {
    const auto& names = counters->names();
    const auto& times = counters->sample_times();
    const auto& rows = counters->rows();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (std::size_t j = 0; j < names.size(); ++j) {
        emit(os, first, names[j], "counter", "C", micros(times[i]),
             kDriverPid, 0,
             "\"" + names[j] + "\":" + std::to_string(rows[i][j]));
      }
    }
  }

  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  COSCHED_CHECK_MSG(os.good(), "chrome trace export failed");
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "time_sec,kind,job,task,flow,src,dst,a,b\n";
  for (const TraceEvent& ev : events_) {
    os << ev.at.sec() << ',' << to_string(ev.kind) << ',' << ev.job.value()
       << ',' << ev.task.value() << ',' << ev.flow.value() << ','
       << ev.src.value() << ',' << ev.dst.value() << ',' << ev.a << ','
       << ev.b << "\n";
  }
  COSCHED_CHECK_MSG(os.good(), "trace CSV export failed");
}

}  // namespace cosched
