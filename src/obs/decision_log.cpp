#include "obs/decision_log.h"

#include <ostream>

#include "common/check.h"

namespace cosched {

namespace {

/// Join ints as "3|2|1" — pipe-separated so the field stays one CSV cell.
template <typename Range, typename Fn>
void write_joined(std::ostream& os, const Range& range, Fn&& fn) {
  bool first = true;
  for (const auto& item : range) {
    if (!first) os << '|';
    first = false;
    fn(os, item);
  }
}

}  // namespace

void DecisionLog::write_placements_csv(std::ostream& os) const {
  os << "time_sec,job,r_map,r_red,candidates,planned_cct_sec,t_max_sec,"
        "score_sec,d,plan\n";
  for (const PlacementDecision& p : placements_) {
    os << p.at.sec() << ',' << p.job.value() << ',' << p.r_map << ','
       << p.r_red << ',' << p.candidates << ',' << p.planned_cct.sec() << ','
       << p.t_max.sec() << ',' << p.score_sec << ',';
    write_joined(os, p.d, [](std::ostream& o, std::int32_t v) { o << v; });
    os << ',';
    write_joined(os, p.plan,
                 [](std::ostream& o, const std::pair<RackId, std::int32_t>& e) {
                   o << e.first.value() << ':' << e.second;
                 });
    os << "\n";
  }
  COSCHED_CHECK_MSG(os.good(), "placement CSV export failed");
}

void DecisionLog::write_grants_csv(std::ostream& os) const {
  os << "time_sec,rack,job,task,user,kind,ocas_class\n";
  for (const GrantDecision& g : grants_) {
    os << g.at.sec() << ',' << g.rack.value() << ',' << g.job.value() << ','
       << g.task.value() << ',' << g.user.value() << ','
       << (g.is_map ? "map" : "reduce") << ',' << g.ocas_class << "\n";
  }
  COSCHED_CHECK_MSG(os.good(), "grant CSV export failed");
}

void DecisionLog::write_circuits_csv(std::ostream& os) const {
  os << "time_sec,coflow,job,flow,src,dst,priority_sec,gb\n";
  for (const CircuitDecision& c : circuits_) {
    os << c.at.sec() << ',' << c.coflow.value() << ',' << c.job.value() << ','
       << c.flow.value() << ',' << c.src.value() << ',' << c.dst.value()
       << ',' << c.priority_sec << ',' << c.bytes.in_gigabytes() << "\n";
  }
  COSCHED_CHECK_MSG(os.good(), "circuit CSV export failed");
}

void DecisionLog::write_faults_csv(std::ostream& os) const {
  os << "time_sec,action,job,task,flow,rack,value\n";
  for (const FaultDecision& f : faults_) {
    os << f.at.sec() << ',' << to_string(f.action) << ',' << f.job.value()
       << ',' << f.task.value() << ',' << f.flow.value() << ','
       << f.rack.value() << ',' << f.value << "\n";
  }
  COSCHED_CHECK_MSG(os.good(), "fault CSV export failed");
}

}  // namespace cosched
