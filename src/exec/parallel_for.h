// Deterministic-result parallel index loop on top of ThreadPool.
//
//   ThreadPool pool(4);
//   std::vector<RunMetrics> slots(n);
//   parallel_for(&pool, n, [&](std::size_t i) { slots[i] = run(i); });
//
// Indices are handed out dynamically (an atomic cursor), so *which worker*
// runs index i is scheduling-dependent — but each index runs exactly once
// and the caller indexes results into pre-sized slots, so the observable
// outcome is identical to the serial loop as long as the body only writes
// state owned by its index. That slot discipline is the whole determinism
// contract of the parallel experiment path (see tests/test_determinism.cpp).
//
// A null pool (or a single-worker pool, or n <= 1) degenerates to the plain
// serial loop on the calling thread: same iteration order, no pool traffic.
// The first exception thrown by any body is captured and rethrown on the
// calling thread after every in-flight body has finished; later exceptions
// are dropped.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>

#include "exec/thread_pool.h"

namespace cosched {

template <typename Body>
void parallel_for(ThreadPool* pool, std::size_t n, const Body& body) {
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t live_tasks = 0;
  } shared;

  const std::size_t tasks = std::min(pool->size(), n);
  shared.live_tasks = tasks;
  for (std::size_t t = 0; t < tasks; ++t) {
    pool->submit([&shared, &body, n] {
      for (;;) {
        const std::size_t i =
            shared.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n || shared.failed.load(std::memory_order_relaxed)) break;
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(shared.mu);
          if (!shared.error) shared.error = std::current_exception();
          shared.failed.store(true, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(shared.mu);
      if (--shared.live_tasks == 0) shared.done_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(shared.mu);
  shared.done_cv.wait(lock, [&shared] { return shared.live_tasks == 0; });
  if (shared.error) std::rethrow_exception(shared.error);
}

}  // namespace cosched
