#include "exec/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace cosched {

ThreadPool::ThreadPool(std::size_t threads) {
  COSCHED_CHECK_MSG(threads >= 1, "ThreadPool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  COSCHED_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    COSCHED_CHECK_MSG(!stop_, "submit() on a stopped ThreadPool");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::size_t ThreadPool::resolve_threads(std::int32_t requested) {
  if (requested == 0) {
    return std::max(1u, std::thread::hardware_concurrency());
  }
  COSCHED_CHECK_MSG(requested >= 1, "thread count must be >= 0");
  return static_cast<std::size_t>(requested);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace cosched
