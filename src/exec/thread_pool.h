// A fixed-size worker pool for sharding independent simulation runs.
//
// The experiment harness (src/sim/experiment.cpp) is embarrassingly
// parallel: every (scheduler, repetition) pair owns its own forked RNG
// stream, its own SimulationDriver, and its own result slot, so runs never
// communicate. The pool therefore needs no work stealing, priorities, or
// futures — just a queue of thunks, N workers, and a way to wait for a
// batch (see parallel_for.h, which layers deterministic index dispatch and
// exception propagation on top).
//
// Workers are started in the constructor and joined in the destructor;
// submitting after shutdown() is a checked error. The pool itself never
// touches simulation state, so a `threads == 1` experiment config can (and
// does) bypass it entirely for a zero-overhead serial path.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cosched {

class ThreadPool {
 public:
  /// Start `threads` workers (>= 1; use resolve_threads for user input).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. Tasks must not throw out of the pool — wrap bodies
  /// that can throw (parallel_for does this for you).
  void submit(std::function<void()> task);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Map a user-facing thread-count request to a worker count:
  /// 0 = all hardware threads, otherwise the request itself (>= 1).
  [[nodiscard]] static std::size_t resolve_threads(std::int32_t requested);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cosched
