// Synthetic SWIM-style workload generator.
//
// The paper replays 1000 jobs drawn from the SWIM Facebook traces [3] on a
// single-node cluster to recover task durations, then feeds that log to its
// simulator. Those traces (and the replay cluster) are not available here,
// so this generator synthesizes a workload with the published shape:
//
//   * 1000 jobs arriving uniformly at random in a 90-minute window;
//   * 20 users, jobs assigned to users uniformly at random;
//   * a heavy-tailed job size distribution: most jobs are small,
//     a minority are very large (the classic Facebook shape);
//   * a configurable fraction of *shuffle-heavy* jobs (shuffle data size
//     >= the elephant threshold) — about 20% at Facebook per the paper's
//     introduction;
//   * SIR (shuffle:input ratio) around 1.0 for shuffle-heavy jobs.
//
// Every parameter is a config knob so sensitivity studies can sweep them.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "workload/job_spec.h"

namespace cosched {

struct WorkloadConfig {
  std::int32_t num_jobs = 1000;
  std::int32_t num_users = 20;
  Duration arrival_window = Duration::minutes(90);

  /// Fraction of jobs drawn from the shuffle-heavy class.
  double shuffle_heavy_fraction = 0.2;

  /// Threshold used to *construct* heavy/light jobs (should match the
  /// topology's elephant threshold).
  DataSize elephant_threshold = DataSize::gigabytes(1.125);

  /// HDFS-style block size; map count = ceil(input / block).
  DataSize block_size = DataSize::megabytes(256);

  /// Light jobs: log-normal input size (of the underlying normal, in GB).
  double light_input_mu = -1.0;   // median ~ 0.37 GB
  double light_input_sigma = 1.0;
  /// Heavy jobs: log-normal input size (median ~ 200 GB, tail to the max).
  /// The SWIM Facebook workloads are dominated by a minority of large
  /// shuffle-heavy jobs. Calibration: large enough that a shuffle-heavy
  /// job's coflow dwarfs the elephant threshold (so placement matters),
  /// small enough that its R_map guideline stays well under the rack count
  /// (so concurrent coflows can still share the OCS).
  double heavy_input_mu = 7.2;
  double heavy_input_sigma = 1.0;
  DataSize min_input = DataSize::megabytes(64);
  DataSize max_input = DataSize::gigabytes(3000);

  /// SIR distributions (log-normal of the underlying normal).
  double light_sir_mu = -1.2;  // median ~ 0.3
  double light_sir_sigma = 0.6;
  double heavy_sir_mu = 0.0;  // median 1.0, as initialized in the paper
  double heavy_sir_sigma = 0.3;

  std::int32_t max_maps = 2000;
  std::int32_t max_reduces = 120;
  /// Shuffle bytes one reduce task handles, on average (sets reduce count).
  /// Fat reduces (few per job) keep per-rack-pair demand near the elephant
  /// threshold even when only the map side is aggregated — the regime in
  /// which the paper's MTS-only ablation (Figure 5) still gains from OCS.
  DataSize shuffle_per_reduce = DataSize::gigabytes(32);

  /// Per-task compute durations (log-normal, seconds): tens of seconds,
  /// as in SWIM's scaled-down replay. Compute keeps containers lightly
  /// loaded; the cross-rack network is the differentiating resource. This
  /// matches the regime the paper's own Figure 6 implies — Fair's and
  /// Corral's makespan track the EPS oversubscription ratio, which can
  /// only happen when the electrical fabric is the binding constraint.
  double map_duration_mu = 2.3;  // median ~ 10 s
  double map_duration_sigma = 0.7;
  double reduce_duration_mu = 2.3;  // median ~ 10 s
  double reduce_duration_sigma = 0.7;

  void validate() const;
};

/// Generate a workload. Deterministic in (config, rng state).
[[nodiscard]] std::vector<JobSpec> generate_workload(const WorkloadConfig& cfg,
                                                     Rng& rng);

/// Summary statistics of a workload (used by trace tooling and tests).
struct WorkloadStats {
  std::int64_t num_jobs = 0;
  std::int64_t num_shuffle_heavy = 0;
  std::int64_t total_map_tasks = 0;
  std::int64_t total_reduce_tasks = 0;
  DataSize total_input;
  DataSize total_shuffle;
  SimTime first_arrival = SimTime::zero();
  SimTime last_arrival = SimTime::zero();
};

[[nodiscard]] WorkloadStats compute_stats(const std::vector<JobSpec>& jobs,
                                          DataSize elephant_threshold);

}  // namespace cosched
