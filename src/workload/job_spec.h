// Static description of one MapReduce job, as recorded in a trace.
//
// This is the simulator's stand-in for the SWIM Facebook trace replay logs
// the paper uses (which are not publicly redistributable): every quantity
// the schedulers consume — input size, shuffle-to-input ratio, task counts,
// per-task compute durations — is explicit here, so a synthetic trace with
// the published marginals exercises exactly the same code paths.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace cosched {

struct JobSpec {
  JobId id;
  UserId user;
  SimTime arrival = SimTime::zero();

  std::int32_t num_maps = 1;
  std::int32_t num_reduces = 1;

  /// Total input data size; each map task reads one block of
  /// input_size / num_maps.
  DataSize input_size;

  /// Shuffle-to-input ratio actually realized by the job's map output.
  double sir = 1.0;

  /// Per-map compute duration (excludes any remote-read penalty), one entry
  /// per map task.
  std::vector<Duration> map_durations;

  /// Per-reduce compute duration (excludes shuffle fetch), one entry per
  /// reduce task.
  std::vector<Duration> reduce_durations;

  [[nodiscard]] DataSize block_size() const {
    return input_size / std::max<std::int64_t>(1, num_maps);
  }

  [[nodiscard]] DataSize shuffle_size() const { return input_size * sir; }

  /// Shuffle data produced by one map task, split evenly over reduces.
  [[nodiscard]] DataSize map_output_size() const {
    return shuffle_size() / std::max<std::int64_t>(1, num_maps);
  }

  /// The paper's definition: shuffle-heavy iff the job's shuffle data size
  /// is at least the elephant-flow threshold.
  [[nodiscard]] bool shuffle_heavy(DataSize elephant_threshold) const {
    return num_reduces > 0 && shuffle_size() >= elephant_threshold;
  }

  void validate() const;
};

}  // namespace cosched
