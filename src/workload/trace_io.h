// Trace serialization: read/write a workload as a CSV file.
//
// Format (one job per line, header required):
//   job_id,user_id,arrival_sec,num_maps,num_reduces,input_bytes,sir,
//   map_durations_sec,reduce_durations_sec
// where the duration columns are ';'-separated lists in seconds.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job_spec.h"

namespace cosched {

/// Serialize to a stream. Throws CheckFailure on invalid specs.
void write_trace(std::ostream& os, const std::vector<JobSpec>& jobs);

/// Parse from a stream. Throws CheckFailure on malformed input.
[[nodiscard]] std::vector<JobSpec> read_trace(std::istream& is);

/// Convenience file wrappers.
void write_trace_file(const std::string& path,
                      const std::vector<JobSpec>& jobs);
[[nodiscard]] std::vector<JobSpec> read_trace_file(const std::string& path);

}  // namespace cosched
