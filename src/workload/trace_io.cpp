#include "workload/trace_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace cosched {

namespace {

constexpr const char* kHeader =
    "job_id,user_id,arrival_sec,num_maps,num_reduces,input_bytes,sir,"
    "map_durations_sec,reduce_durations_sec";

std::string join_durations(const std::vector<Duration>& ds) {
  std::ostringstream os;
  os << std::setprecision(17);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (i > 0) os << ';';
    os << ds[i].sec();
  }
  return os.str();
}

std::vector<Duration> split_durations(const std::string& s) {
  std::vector<Duration> out;
  if (s.empty()) return out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ';')) {
    COSCHED_CHECK_MSG(!item.empty(), "empty duration in trace");
    out.push_back(Duration::seconds(std::stod(item)));
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream is(line);
  std::string field;
  while (std::getline(is, field, ',')) fields.push_back(field);
  return fields;
}

}  // namespace

void write_trace(std::ostream& os, const std::vector<JobSpec>& jobs) {
  os << kHeader << "\n";
  os << std::setprecision(17);
  for (const JobSpec& j : jobs) {
    j.validate();
    os << j.id.value() << ',' << j.user.value() << ',' << j.arrival.sec()
       << ',' << j.num_maps << ',' << j.num_reduces << ','
       << j.input_size.in_bytes() << ',' << j.sir << ','
       << join_durations(j.map_durations) << ','
       << join_durations(j.reduce_durations) << "\n";
  }
  COSCHED_CHECK_MSG(os.good(), "trace write failed");
}

std::vector<JobSpec> read_trace(std::istream& is) {
  std::string line;
  COSCHED_CHECK_MSG(std::getline(is, line), "empty trace");
  COSCHED_CHECK_MSG(line == kHeader, "unrecognized trace header: " << line);
  std::vector<JobSpec> jobs;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    // A trailing duration field may legitimately be empty (map-only jobs);
    // split_csv drops a trailing empty field, so re-add it.
    std::vector<std::string> f = split_csv(line);
    if (f.size() == 8) f.push_back("");
    COSCHED_CHECK_MSG(f.size() == 9,
                      "trace line " << line_no << ": expected 9 fields, got "
                                    << f.size());
    JobSpec j;
    j.id = JobId{std::stoll(f[0])};
    j.user = UserId{std::stoll(f[1])};
    j.arrival = SimTime::seconds(std::stod(f[2]));
    j.num_maps = static_cast<std::int32_t>(std::stol(f[3]));
    j.num_reduces = static_cast<std::int32_t>(std::stol(f[4]));
    j.input_size = DataSize::bytes(std::stoll(f[5]));
    j.sir = std::stod(f[6]);
    j.map_durations = split_durations(f[7]);
    j.reduce_durations = split_durations(f[8]);
    j.validate();
    jobs.push_back(std::move(j));
  }
  return jobs;
}

void write_trace_file(const std::string& path,
                      const std::vector<JobSpec>& jobs) {
  std::ofstream os(path);
  COSCHED_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  write_trace(os, jobs);
}

std::vector<JobSpec> read_trace_file(const std::string& path) {
  std::ifstream is(path);
  COSCHED_CHECK_MSG(is.is_open(), "cannot open " << path);
  return read_trace(is);
}

}  // namespace cosched
