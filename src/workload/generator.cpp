#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cosched {

void WorkloadConfig::validate() const {
  COSCHED_CHECK(num_jobs > 0);
  COSCHED_CHECK(num_users > 0);
  COSCHED_CHECK(arrival_window >= Duration::zero());
  COSCHED_CHECK(shuffle_heavy_fraction >= 0.0 &&
                shuffle_heavy_fraction <= 1.0);
  COSCHED_CHECK(elephant_threshold > DataSize::zero());
  COSCHED_CHECK(block_size > DataSize::zero());
  COSCHED_CHECK(min_input > DataSize::zero());
  COSCHED_CHECK(max_input > min_input);
  COSCHED_CHECK(max_maps >= 1);
  COSCHED_CHECK(max_reduces >= 1);
  COSCHED_CHECK(shuffle_per_reduce > DataSize::zero());
}

namespace {

DataSize clamp_size(DataSize v, DataSize lo, DataSize hi) {
  return std::max(lo, std::min(hi, v));
}

Duration sample_duration(Rng& rng, double mu, double sigma) {
  // Floor at one second: a zero-length task would vanish from container
  // accounting and no real MapReduce task is that short.
  return Duration::seconds(std::max(1.0, rng.lognormal(mu, sigma)));
}

}  // namespace

std::vector<JobSpec> generate_workload(const WorkloadConfig& cfg, Rng& rng) {
  cfg.validate();
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(cfg.num_jobs));

  for (std::int32_t j = 0; j < cfg.num_jobs; ++j) {
    JobSpec spec;
    spec.id = JobId{j};
    spec.user = UserId{rng.uniform_int(0, cfg.num_users - 1)};
    spec.arrival = SimTime::zero() +
                   Duration::seconds(rng.uniform(
                       0.0, std::max(cfg.arrival_window.sec(), 1e-9)));

    const bool heavy = rng.bernoulli(cfg.shuffle_heavy_fraction);
    if (heavy) {
      spec.input_size = clamp_size(
          DataSize::gigabytes(
              rng.lognormal(cfg.heavy_input_mu, cfg.heavy_input_sigma)),
          cfg.min_input, cfg.max_input);
      spec.sir = rng.lognormal(cfg.heavy_sir_mu, cfg.heavy_sir_sigma);
      // Guarantee the class contract: shuffle size >= elephant threshold.
      if (spec.shuffle_size() < cfg.elephant_threshold) {
        spec.sir = 1.05 * (cfg.elephant_threshold / spec.input_size);
      }
    } else {
      spec.input_size = clamp_size(
          DataSize::gigabytes(
              rng.lognormal(cfg.light_input_mu, cfg.light_input_sigma)),
          cfg.min_input, cfg.max_input);
      spec.sir = rng.lognormal(cfg.light_sir_mu, cfg.light_sir_sigma);
      // Guarantee the class contract: shuffle size < elephant threshold.
      if (spec.shuffle_size() >= cfg.elephant_threshold) {
        spec.sir = 0.95 * (cfg.elephant_threshold / spec.input_size);
      }
    }

    const auto blocks = static_cast<std::int32_t>(
        (spec.input_size.in_bytes() + cfg.block_size.in_bytes() - 1) /
        cfg.block_size.in_bytes());
    spec.num_maps = std::clamp(blocks, 1, cfg.max_maps);

    if (heavy) {
      const auto reducers = static_cast<std::int32_t>(std::ceil(
          spec.shuffle_size() / cfg.shuffle_per_reduce));
      spec.num_reduces = std::clamp(reducers, 1, cfg.max_reduces);
    } else {
      // Small jobs: 0-4 reduces; some are map-only.
      spec.num_reduces =
          static_cast<std::int32_t>(rng.uniform_int(0, 4));
    }

    spec.map_durations.reserve(static_cast<std::size_t>(spec.num_maps));
    for (std::int32_t t = 0; t < spec.num_maps; ++t) {
      spec.map_durations.push_back(
          sample_duration(rng, cfg.map_duration_mu, cfg.map_duration_sigma));
    }
    spec.reduce_durations.reserve(static_cast<std::size_t>(spec.num_reduces));
    for (std::int32_t t = 0; t < spec.num_reduces; ++t) {
      spec.reduce_durations.push_back(sample_duration(
          rng, cfg.reduce_duration_mu, cfg.reduce_duration_sigma));
    }

    spec.validate();
    jobs.push_back(std::move(spec));
  }

  // Present jobs in arrival order; the driver expects it and it makes
  // traces human-scannable.
  std::sort(jobs.begin(), jobs.end(), [](const JobSpec& a, const JobSpec& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  });
  return jobs;
}

WorkloadStats compute_stats(const std::vector<JobSpec>& jobs,
                            DataSize elephant_threshold) {
  WorkloadStats s;
  s.num_jobs = static_cast<std::int64_t>(jobs.size());
  bool first = true;
  for (const JobSpec& j : jobs) {
    if (j.shuffle_heavy(elephant_threshold)) ++s.num_shuffle_heavy;
    s.total_map_tasks += j.num_maps;
    s.total_reduce_tasks += j.num_reduces;
    s.total_input += j.input_size;
    s.total_shuffle += j.shuffle_size();
    if (first || j.arrival < s.first_arrival) s.first_arrival = j.arrival;
    if (first || j.arrival > s.last_arrival) s.last_arrival = j.arrival;
    first = false;
  }
  return s;
}

}  // namespace cosched
