#include "workload/job_spec.h"

#include "common/check.h"

namespace cosched {

void JobSpec::validate() const {
  COSCHED_CHECK(id.valid());
  COSCHED_CHECK(user.valid());
  COSCHED_CHECK(num_maps >= 1);
  COSCHED_CHECK(num_reduces >= 0);
  COSCHED_CHECK(input_size > DataSize::zero());
  COSCHED_CHECK(sir >= 0.0);
  COSCHED_CHECK_MSG(map_durations.size() ==
                        static_cast<std::size_t>(num_maps),
                    "job " << id << ": map duration count mismatch");
  COSCHED_CHECK_MSG(reduce_durations.size() ==
                        static_cast<std::size_t>(num_reduces),
                    "job " << id << ": reduce duration count mismatch");
  for (const Duration& d : map_durations) COSCHED_CHECK(d > Duration::zero());
  for (const Duration& d : reduce_durations) {
    COSCHED_CHECK(d > Duration::zero());
  }
}

}  // namespace cosched
