#include "simcore/simulator.h"

#include "common/log.h"

namespace cosched {

EventHandle Simulator::schedule_at(SimTime when, std::function<void()> action) {
  COSCHED_CHECK_MSG(when >= now_, "event scheduled in the past: " << when
                                                                  << " < "
                                                                  << now_);
  COSCHED_CHECK(when.is_finite());
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  detail::EventSlot& s = slab_[slot];
  s.action = std::move(action);
  heap_.push_back(detail::HeapEntry{when, next_seq_++, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), detail::FiresLater{});
  ++live_;
  return EventHandle{self_, slot, s.gen};
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const detail::HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), detail::FiresLater{});
    heap_.pop_back();
    detail::EventSlot& s = slab_[top.slot];
    if (s.gen != top.gen) {
      --tombstones_;  // cancelled: the slot moved on, skip the stale entry
      continue;
    }
    // Consume the slot before running the action: the action may cancel its
    // own handle (EPS replan does), and the generation bump makes that a
    // no-op instead of a double-release.
    ++s.gen;
    auto action = std::move(s.action);
    s.action = nullptr;
    free_.push_back(top.slot);
    --live_;
    now_ = top.when;
    ++events_executed_;
    if (events_executed_ % 1000000 == 0) {
      COSCHED_INFO() << "simulator: " << events_executed_ << " events, "
                     << now_ << ", " << heap_.size() << " queued";
    }
    action();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  while (!heap_.empty()) {
    const detail::HeapEntry top = heap_.front();
    if (slab_[top.slot].gen != top.gen) {
      std::pop_heap(heap_.begin(), heap_.end(), detail::FiresLater{});
      heap_.pop_back();
      --tombstones_;
      continue;
    }
    if (top.when > deadline) return;
    step();
  }
}

void Simulator::compact() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const detail::HeapEntry& e) {
                               return slab_[e.slot].gen != e.gen;
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), detail::FiresLater{});
  // Every surviving entry is live and every live event has exactly one
  // entry, so a size mismatch here means a live handle was dropped.
  COSCHED_CHECK_MSG(heap_.size() == static_cast<std::size_t>(live_),
                    "compaction dropped a live event: " << heap_.size()
                                                        << " entries vs "
                                                        << live_ << " live");
  tombstones_ = 0;
  ++compactions_;
}

bool Simulator::queue_consistent() const {
  std::size_t live_entries = 0;
  for (const detail::HeapEntry& e : heap_) {
    if (slab_[e.slot].gen != e.gen) continue;
    ++live_entries;
    if (e.when < now_) return false;
  }
  if (live_entries != static_cast<std::size_t>(live_)) return false;
  if (heap_.size() - live_entries != tombstones_) return false;
  return true;
}

}  // namespace cosched
