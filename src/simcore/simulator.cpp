#include "simcore/simulator.h"

#include "common/log.h"

namespace cosched {

EventHandle Simulator::schedule_at(SimTime when, std::function<void()> action) {
  COSCHED_CHECK_MSG(when >= now_, "event scheduled in the past: " << when
                                                                  << " < "
                                                                  << now_);
  COSCHED_CHECK(when.is_finite());
  auto rec = std::make_shared<detail::EventRecord>();
  rec->when = when;
  rec->seq = next_seq_++;
  rec->action = std::move(action);
  rec->live = live_;
  ++*live_;
  queue_.push(rec);
  return EventHandle{rec};
}

bool Simulator::step() {
  while (!queue_.empty()) {
    auto rec = queue_.top();
    queue_.pop();
    if (rec->cancelled) continue;
    // Mark the record consumed before running it: the action may cancel its
    // own handle (EPS replan does), and that must not decrement live again.
    rec->cancelled = true;
    --*live_;
    now_ = rec->when;
    ++events_executed_;
    if (events_executed_ % 1000000 == 0) {
      COSCHED_INFO() << "simulator: " << events_executed_ << " events, "
                     << now_ << ", " << queue_.size() << " queued";
    }
    // Move the action out so the record can be freed even if the action
    // schedules further events.
    auto action = std::move(rec->action);
    action();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    auto& top = queue_.top();
    if (top->cancelled) {
      queue_.pop();
      continue;
    }
    if (top->when > deadline) return;
    step();
  }
}

}  // namespace cosched
