// Discrete-event simulation engine.
//
// A Simulator owns a priority queue of timestamped events. Events with equal
// timestamps fire in scheduling order (a monotonically increasing sequence
// number breaks ties), which makes every run deterministic.
//
// Scheduling returns an EventHandle that can cancel the event; cancellation
// is O(1) (the event is tombstoned and skipped when popped). This is the
// mechanism the flow-level network model uses to re-plan flow completion
// times whenever rates change.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace cosched {

class Simulator;

namespace detail {

struct EventRecord {
  SimTime when;
  std::uint64_t seq = 0;
  std::function<void()> action;
  bool cancelled = false;
  // Owning simulator's live-event count. Shared so a handle can decrement
  // on cancel without holding a Simulator pointer (handles may outlive it).
  std::shared_ptr<std::int64_t> live;
};

struct EventLater {
  bool operator()(const std::shared_ptr<EventRecord>& a,
                  const std::shared_ptr<EventRecord>& b) const {
    if (a->when != b->when) return a->when > b->when;
    return a->seq > b->seq;
  }
};

}  // namespace detail

/// Cancellation token for a scheduled event. Default-constructed handles are
/// inert; cancel() on an already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe to call repeatedly.
  void cancel() {
    if (auto rec = record_.lock()) {
      if (!rec->cancelled) {
        rec->cancelled = true;
        if (rec->live) --*rec->live;
      }
    }
  }

  /// True if the event is still queued and will fire.
  [[nodiscard]] bool pending() const {
    auto rec = record_.lock();
    return rec != nullptr && !rec->cancelled;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<detail::EventRecord> rec)
      : record_(std::move(rec)) {}
  std::weak_ptr<detail::EventRecord> record_;
};

/// The event loop. Single-threaded; all model code runs inside callbacks.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `action` at absolute time `when` (>= now).
  EventHandle schedule_at(SimTime when, std::function<void()> action);

  /// Schedule `action` after `delay` (>= 0).
  EventHandle schedule_after(Duration delay, std::function<void()> action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Run the next pending event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains.
  void run();

  /// Run until the queue drains or simulated time passes `deadline`.
  /// Events scheduled at exactly `deadline` do fire.
  void run_until(SimTime deadline);

  /// Number of events executed so far (diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Number of *live* events queued — events that will actually fire.
  /// Cancelled events leave tombstones in the queue but are not counted
  /// here; use events_pending_raw() for the physical queue size.
  [[nodiscard]] std::size_t events_pending() const {
    return static_cast<std::size_t>(*live_);
  }

  /// Physical queue size, including tombstones awaiting pop (diagnostics:
  /// the gap to events_pending() is the tombstone backlog).
  [[nodiscard]] std::size_t events_pending_raw() const {
    return queue_.size();
  }

 private:
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::shared_ptr<std::int64_t> live_ = std::make_shared<std::int64_t>(0);
  std::priority_queue<std::shared_ptr<detail::EventRecord>,
                      std::vector<std::shared_ptr<detail::EventRecord>>,
                      detail::EventLater>
      queue_;
};

}  // namespace cosched
