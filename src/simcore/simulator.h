// Discrete-event simulation engine.
//
// A Simulator owns a binary heap of timestamped event entries. Events with
// equal timestamps fire in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes every run deterministic.
//
// Event records live in a pooled slab with a free list: scheduling an event
// allocates nothing beyond (amortized) vector growth, and a fired or
// cancelled slot is recycled for the next event. Each slot carries a
// generation counter; heap entries and EventHandles snapshot the generation
// at scheduling time, so a recycled slot invalidates them in O(1) without
// any shared_ptr/weak_ptr traffic.
//
// Scheduling returns an EventHandle that can cancel the event; cancellation
// is O(1) (the slot is released and the stale heap entry is skipped when
// popped). This is the mechanism the flow-level network model uses to
// re-plan flow completion times whenever rates change. When stale entries
// (tombstones) outnumber half the physical heap the queue compacts itself,
// so replan-heavy workloads cannot grow the heap without bound.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace cosched {

class Simulator;

namespace detail {

/// One pooled event slot. `gen` increments whenever the slot is consumed
/// (fired or cancelled), invalidating outstanding heap entries and handles.
struct EventSlot {
  std::function<void()> action;
  std::uint32_t gen = 0;
};

/// Compact heap entry: ordering data plus a (slot, generation) ticket into
/// the slab. 24 bytes, no indirection during sift operations.
struct HeapEntry {
  SimTime when;
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
};

/// Max-heap comparator on "fires later", so the heap top is the earliest
/// event; seq breaks timestamp ties in scheduling order.
struct FiresLater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};

}  // namespace detail

/// Cancellation token for a scheduled event. Default-constructed handles are
/// inert; cancel() on an already-fired or already-cancelled event is a no-op.
/// Handles stay safe (and inert) even if they outlive the Simulator.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe to call repeatedly.
  inline void cancel();

  /// True if the event is still queued and will fire.
  [[nodiscard]] inline bool pending() const;

 private:
  friend class Simulator;
  EventHandle(std::shared_ptr<Simulator*> owner, std::uint32_t slot,
              std::uint32_t gen)
      : owner_(std::move(owner)), slot_(slot), gen_(gen) {}

  /// Owning simulator, nulled by ~Simulator so late handles become inert.
  std::shared_ptr<Simulator*> owner_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// The event loop. Single-threaded; all model code runs inside callbacks.
class Simulator {
 public:
  Simulator() : self_(std::make_shared<Simulator*>(this)) {}
  ~Simulator() { *self_ = nullptr; }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `action` at absolute time `when` (>= now).
  EventHandle schedule_at(SimTime when, std::function<void()> action);

  /// Schedule `action` after `delay` (>= 0).
  EventHandle schedule_after(Duration delay, std::function<void()> action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Run the next pending event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains.
  void run();

  /// Run until the queue drains or simulated time passes `deadline`.
  /// Events scheduled at exactly `deadline` do fire.
  void run_until(SimTime deadline);

  /// Number of events executed so far (diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Number of *live* events queued — events that will actually fire.
  /// Cancelled events leave tombstones in the queue but are not counted
  /// here; use events_pending_raw() for the physical queue size.
  [[nodiscard]] std::size_t events_pending() const {
    return static_cast<std::size_t>(live_);
  }

  /// Physical queue size, including tombstones awaiting pop or compaction
  /// (diagnostics: the gap to events_pending() is the tombstone backlog).
  [[nodiscard]] std::size_t events_pending_raw() const { return heap_.size(); }

  /// Times the queue dropped its tombstones in one sweep (diagnostics).
  [[nodiscard]] std::uint64_t queue_compactions() const {
    return compactions_;
  }

  /// O(queue) consistency scan for the invariant auditor: every live heap
  /// entry's generation matches its slot, the live-entry count matches the
  /// ledger, stale entries match the tombstone count, and no live event is
  /// scheduled before `now`. True on a consistent queue.
  [[nodiscard]] bool queue_consistent() const;

 private:
  friend class EventHandle;

  [[nodiscard]] bool slot_pending(std::uint32_t slot, std::uint32_t gen) const {
    return slab_[slot].gen == gen;
  }

  void cancel_slot(std::uint32_t slot, std::uint32_t gen) {
    detail::EventSlot& s = slab_[slot];
    if (s.gen != gen) return;  // already fired or cancelled
    ++s.gen;
    s.action = nullptr;
    free_.push_back(slot);
    --live_;
    ++tombstones_;
    if (tombstones_ * 2 > heap_.size()) compact();
  }

  /// Drop every stale heap entry and re-heapify. Pop order is a total order
  /// on (when, seq), so compaction never changes what fires next.
  void compact();

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::int64_t live_ = 0;
  std::size_t tombstones_ = 0;
  std::uint64_t compactions_ = 0;
  std::vector<detail::HeapEntry> heap_;
  std::vector<detail::EventSlot> slab_;
  std::vector<std::uint32_t> free_;
  std::shared_ptr<Simulator*> self_;
};

inline void EventHandle::cancel() {
  if (owner_ == nullptr || *owner_ == nullptr) return;
  (*owner_)->cancel_slot(slot_, gen_);
}

inline bool EventHandle::pending() const {
  if (owner_ == nullptr || *owner_ == nullptr) return false;
  return (*owner_)->slot_pending(slot_, gen_);
}

}  // namespace cosched
