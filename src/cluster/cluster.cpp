#include "cluster/cluster.h"

#include <algorithm>

#include "common/check.h"

namespace cosched {

Cluster::Cluster(const HybridTopology& topo) : topo_(topo) {
  topo_.validate();
  free_.assign(static_cast<std::size_t>(topo_.num_racks),
               std::vector<std::int32_t>(
                   static_cast<std::size_t>(topo_.servers_per_rack),
                   topo_.slots_per_server));
  free_per_rack_.assign(static_cast<std::size_t>(topo_.num_racks),
                        topo_.slots_per_rack());
  total_free_ = topo_.total_slots();
}

std::int64_t Cluster::free_slots(RackId rack) const {
  COSCHED_CHECK(rack.valid() && rack.value() < topo_.num_racks);
  return free_per_rack_[static_cast<std::size_t>(rack.value())];
}

std::int64_t Cluster::used_slots(RackId rack) const {
  return topo_.slots_per_rack() - free_slots(rack);
}

std::int64_t Cluster::total_free_slots() const { return total_free_; }

NodeId Cluster::node_id(RackId rack, std::int32_t server_index) const {
  COSCHED_CHECK(rack.valid() && rack.value() < topo_.num_racks);
  COSCHED_CHECK(server_index >= 0 && server_index < topo_.servers_per_rack);
  return NodeId{rack.value() * topo_.servers_per_rack + server_index};
}

std::int32_t Cluster::node_server_index(RackId rack, NodeId node) const {
  COSCHED_CHECK(node.valid());
  const std::int64_t idx = node.value() - rack.value() * topo_.servers_per_rack;
  COSCHED_CHECK_MSG(idx >= 0 && idx < topo_.servers_per_rack,
                    "node " << node << " is not on rack " << rack);
  return static_cast<std::int32_t>(idx);
}

NodeId Cluster::allocate_slot(RackId rack) {
  COSCHED_CHECK_MSG(free_slots(rack) > 0, "no free slot on rack " << rack);
  auto& servers = free_[static_cast<std::size_t>(rack.value())];
  const auto best = std::max_element(servers.begin(), servers.end());
  COSCHED_CHECK(*best > 0);
  --*best;
  --free_per_rack_[static_cast<std::size_t>(rack.value())];
  --total_free_;
  return node_id(rack,
                 static_cast<std::int32_t>(best - servers.begin()));
}

void Cluster::release_slot(RackId rack, NodeId node) {
  const std::int32_t server = node_server_index(rack, node);
  auto& count = free_[static_cast<std::size_t>(rack.value())]
                     [static_cast<std::size_t>(server)];
  COSCHED_CHECK_MSG(count < topo_.slots_per_server,
                    "slot double-release on node " << node);
  ++count;
  ++free_per_rack_[static_cast<std::size_t>(rack.value())];
  ++total_free_;
}

}  // namespace cosched
