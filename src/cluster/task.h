// Runtime state of one map or reduce task.
//
// Lifecycle:
//   map:    kPending -> kRunning (placed; computes immediately) -> kCompleted
//   reduce: kPending -> kRunning (placed; occupies a container, waits for its
//           shuffle data) -> compute begins (begin_compute) -> kCompleted
//
// A reduce task's container is held from placement until completion — this
// is exactly the container-wastage effect the paper's Section IV-A targets.
#pragma once

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"

namespace cosched {

enum class TaskKind { kMap, kReduce };
enum class TaskState { kPending, kRunning, kCompleted };

class Task {
 public:
  Task(TaskId id, JobId job, TaskKind kind, std::int32_t index,
       Duration compute_duration)
      : id_(id),
        job_(job),
        kind_(kind),
        index_(index),
        compute_duration_(compute_duration) {}

  [[nodiscard]] TaskId id() const { return id_; }
  [[nodiscard]] JobId job() const { return job_; }
  [[nodiscard]] TaskKind kind() const { return kind_; }
  [[nodiscard]] std::int32_t index() const { return index_; }
  [[nodiscard]] TaskState state() const { return state_; }
  [[nodiscard]] Duration compute_duration() const { return compute_duration_; }

  [[nodiscard]] RackId rack() const { return rack_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] SimTime placed_at() const { return placed_at_; }
  [[nodiscard]] SimTime compute_started_at() const {
    return compute_started_at_;
  }
  [[nodiscard]] SimTime completed_at() const { return completed_at_; }
  [[nodiscard]] bool compute_started() const { return compute_started_; }

  /// Extra time a non-data-local map pays to read its block remotely.
  [[nodiscard]] Duration read_penalty() const { return read_penalty_; }
  void set_read_penalty(Duration d) { read_penalty_ = d; }

  /// Service-time multiplier for this attempt (fault injection; 1.0 = none).
  [[nodiscard]] double straggle_factor() const { return straggle_factor_; }
  void set_straggle_factor(double f) {
    COSCHED_CHECK(f >= 1.0);
    straggle_factor_ = f;
  }

  /// Total time the task occupies its container once computing.
  [[nodiscard]] Duration run_duration() const {
    return (compute_duration_ + read_penalty_) * straggle_factor_;
  }

  /// Which attempt is (or was last) running; 1 until a fault kills one.
  [[nodiscard]] std::int32_t attempt() const { return attempt_; }

  void place(RackId rack, NodeId node, SimTime now) {
    COSCHED_CHECK(state_ == TaskState::kPending);
    state_ = TaskState::kRunning;
    rack_ = rack;
    node_ = node;
    placed_at_ = now;
    if (kind_ == TaskKind::kMap) {
      compute_started_ = true;
      compute_started_at_ = now;
    }
  }

  void begin_compute(SimTime now) {
    COSCHED_CHECK(state_ == TaskState::kRunning);
    COSCHED_CHECK(kind_ == TaskKind::kReduce);
    COSCHED_CHECK(!compute_started_);
    compute_started_ = true;
    compute_started_at_ = now;
  }

  void complete(SimTime now) {
    COSCHED_CHECK(state_ == TaskState::kRunning);
    COSCHED_CHECK(compute_started_);
    state_ = TaskState::kCompleted;
    completed_at_ = now;
  }

  /// Fault injection: the container died mid-attempt. The task goes back to
  /// kPending for a fresh attempt; all placement state is discarded.
  void reset_for_retry() {
    COSCHED_CHECK(state_ == TaskState::kRunning);
    state_ = TaskState::kPending;
    rack_ = RackId::invalid();
    node_ = NodeId::invalid();
    compute_started_ = false;
    straggle_factor_ = 1.0;
    ++attempt_;
  }

  /// True remaining run time; only meaningful while computing.
  [[nodiscard]] Duration true_remaining(SimTime now) const {
    COSCHED_CHECK(compute_started_ && state_ == TaskState::kRunning);
    const Duration elapsed = now - compute_started_at_;
    const Duration total = run_duration();
    return elapsed >= total ? Duration::zero() : total - elapsed;
  }

 private:
  TaskId id_;
  JobId job_;
  TaskKind kind_;
  std::int32_t index_;
  Duration compute_duration_;
  Duration read_penalty_ = Duration::zero();
  double straggle_factor_ = 1.0;
  std::int32_t attempt_ = 1;

  TaskState state_ = TaskState::kPending;
  RackId rack_ = RackId::invalid();
  NodeId node_ = NodeId::invalid();
  bool compute_started_ = false;
  SimTime placed_at_ = SimTime::zero();
  SimTime compute_started_at_ = SimTime::zero();
  SimTime completed_at_ = SimTime::zero();
};

}  // namespace cosched
