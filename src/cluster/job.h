// Runtime state of one job: its tasks, block placement, map-output
// bookkeeping, shuffle coflow, and the scheduler guidance attached to it
// (R_map guideline, best reduce schedule).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cluster/block_placement.h"
#include "cluster/task.h"
#include "coflow/coflow.h"
#include "common/ids.h"
#include "workload/job_spec.h"

namespace cosched {

class Job {
 public:
  Job(const JobSpec& spec, DataSize elephant_threshold,
      IdAllocator<TaskId>& task_ids, CoflowId coflow_id);

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  [[nodiscard]] JobId id() const { return spec_.id; }
  [[nodiscard]] const JobSpec& spec() const { return spec_; }
  [[nodiscard]] bool shuffle_heavy() const { return shuffle_heavy_; }

  [[nodiscard]] std::vector<Task>& maps() { return maps_; }
  [[nodiscard]] std::vector<Task>& reduces() { return reduces_; }
  [[nodiscard]] const std::vector<Task>& maps() const { return maps_; }
  [[nodiscard]] const std::vector<Task>& reduces() const { return reduces_; }

  // ----- input block placement ------------------------------------------
  void set_block_placement(std::vector<BlockReplicas> blocks);
  [[nodiscard]] const BlockReplicas& block(std::int32_t map_index) const;
  [[nodiscard]] bool has_block_placement() const { return !blocks_.empty(); }
  /// True if map task `map_index` is data-local on `rack`.
  [[nodiscard]] bool map_local_on(std::int32_t map_index, RackId rack) const;

  // ----- map progress ----------------------------------------------------
  [[nodiscard]] std::int32_t maps_completed() const { return maps_completed_; }
  [[nodiscard]] std::int32_t maps_placed() const { return maps_placed_; }
  [[nodiscard]] bool all_maps_placed() const {
    return maps_placed_ == spec_.num_maps;
  }
  [[nodiscard]] bool all_maps_done() const {
    return maps_completed_ == spec_.num_maps;
  }
  void note_map_placed(RackId rack) {
    ++maps_placed_;
    map_racks_used_.insert(rack);
  }
  void note_map_completed(RackId rack, DataSize output) {
    ++maps_completed_;
    map_output_by_rack_[rack] += output;
  }
  [[nodiscard]] const std::set<RackId>& map_racks_used() const {
    return map_racks_used_;
  }
  [[nodiscard]] const std::map<RackId, DataSize>& map_output_by_rack() const {
    return map_output_by_rack_;
  }

  // ----- reduce progress --------------------------------------------------
  [[nodiscard]] std::int32_t reduces_placed() const { return reduces_placed_; }
  [[nodiscard]] std::int32_t reduces_completed() const {
    return reduces_completed_;
  }
  [[nodiscard]] bool all_reduces_placed() const {
    return reduces_placed_ == spec_.num_reduces;
  }
  void note_reduce_placed(RackId rack) {
    ++reduces_placed_;
    ++reduce_placed_by_rack_[rack];
  }
  void note_reduce_completed() { ++reduces_completed_; }
  [[nodiscard]] const std::map<RackId, std::int32_t>& reduce_placed_by_rack()
      const {
    return reduce_placed_by_rack_;
  }

  // ----- scheduler guidance (Co-scheduler) --------------------------------
  /// R_map guideline; 0 means "no guideline" (baseline schedulers).
  [[nodiscard]] std::int32_t r_map_guideline() const {
    return r_map_guideline_;
  }
  void set_r_map_guideline(std::int32_t r) { r_map_guideline_ = r; }

  /// The concrete R_map racks chosen for the guideline: one rack per block
  /// residue so together they hold a full replica of the input.
  [[nodiscard]] const std::vector<RackId>& guideline_map_racks() const {
    return guideline_map_racks_;
  }
  void set_guideline_map_racks(std::vector<RackId> racks) {
    guideline_map_racks_ = std::move(racks);
  }
  [[nodiscard]] bool in_map_guideline(RackId rack) const;

  /// Best reduce schedule: rack -> number of reduce tasks. Empty means no
  /// plan (baselines, shuffle-light jobs).
  [[nodiscard]] const std::map<RackId, std::int32_t>& reduce_plan() const {
    return reduce_plan_;
  }
  void set_reduce_plan(std::map<RackId, std::int32_t> plan,
                       Duration planned_cct) {
    reduce_plan_ = std::move(plan);
    planned_cct_ = planned_cct;
  }
  [[nodiscard]] bool has_reduce_plan() const { return !reduce_plan_.empty(); }
  /// Abandon the plan (deadlock recovery); reduces then place anywhere.
  void clear_reduce_plan() { reduce_plan_.clear(); }
  [[nodiscard]] Duration planned_cct() const { return planned_cct_; }

  /// Remaining plan capacity for a reduce on `rack`.
  [[nodiscard]] std::int32_t reduce_plan_remaining(RackId rack) const;

  // ----- coflow ------------------------------------------------------------
  [[nodiscard]] Coflow& coflow() { return *coflow_; }
  [[nodiscard]] const Coflow& coflow() const { return *coflow_; }
  /// Whether the job's shuffle demand has any flows at all.
  [[nodiscard]] bool has_shuffle() const { return !coflow_->flows().empty(); }

  // ----- completion ---------------------------------------------------------
  [[nodiscard]] bool completed() const { return completed_; }
  [[nodiscard]] SimTime completion_time() const { return completion_time_; }
  void mark_completed(SimTime now) {
    completed_ = true;
    completion_time_ = now;
  }

  /// All reduce work done? (Map-only jobs complete when maps are done.)
  [[nodiscard]] bool work_done() const {
    return all_maps_done() && reduces_completed_ == spec_.num_reduces;
  }

  // ----- scheduling helpers -------------------------------------------------
  // Pending tasks never return to pending once placed, so these use
  // monotonic cursors / lazily pruned per-rack queues and are amortized
  // O(1) per call.

  /// Next pending reduce task, or nullptr.
  [[nodiscard]] Task* next_pending_reduce();
  /// Next pending map task whose block has a replica on `rack`, or nullptr.
  [[nodiscard]] Task* next_pending_map_local(RackId rack);
  /// Next pending map task regardless of locality, or nullptr.
  [[nodiscard]] Task* next_pending_map_any();
  /// Racks that (may) still hold pending local maps. Lazily pruned; a
  /// returned rack is only a candidate — confirm with
  /// next_pending_map_local.
  [[nodiscard]] std::vector<RackId> racks_with_pending_local_maps() const;

  // ----- fault injection ----------------------------------------------------
  /// A running map attempt was killed: undo its placement accounting and
  /// make the task schedulable again. Call after Task::reset_for_retry().
  void requeue_map(std::int32_t index);
  /// Same for a reduce attempt that had been placed on `rack`; decrementing
  /// the per-rack placement count re-opens the slot in the reduce plan, so
  /// OCAS naturally re-grants it.
  void requeue_reduce(std::int32_t index, RackId rack);

  /// Whether the job's shuffle demand has been materialized into flows.
  [[nodiscard]] bool shuffle_released() const { return shuffle_released_; }
  void mark_shuffle_released() { shuffle_released_ = true; }

  /// Rack set a scheduler confines this job to (Corral). Empty = no limit.
  [[nodiscard]] const std::vector<RackId>& preferred_racks() const {
    return preferred_racks_;
  }
  void set_preferred_racks(std::vector<RackId> racks) {
    preferred_racks_ = std::move(racks);
  }
  [[nodiscard]] bool rack_preferred(RackId rack) const;

 private:
  JobSpec spec_;
  bool shuffle_heavy_;
  std::vector<Task> maps_;
  std::vector<Task> reduces_;
  std::vector<BlockReplicas> blocks_;

  std::int32_t maps_placed_ = 0;
  std::int32_t maps_completed_ = 0;
  std::set<RackId> map_racks_used_;
  std::map<RackId, DataSize> map_output_by_rack_;

  std::int32_t reduces_placed_ = 0;
  std::int32_t reduces_completed_ = 0;
  std::map<RackId, std::int32_t> reduce_placed_by_rack_;

  std::int32_t r_map_guideline_ = 0;
  std::vector<RackId> guideline_map_racks_;
  std::map<RackId, std::int32_t> reduce_plan_;
  Duration planned_cct_ = Duration::zero();

  std::unique_ptr<Coflow> coflow_;
  bool shuffle_released_ = false;

  std::vector<RackId> preferred_racks_;

  // Scheduling helper state.
  std::int32_t reduce_cursor_ = 0;
  std::int32_t map_cursor_ = 0;
  std::map<RackId, std::vector<std::int32_t>> pending_maps_by_rack_;

  bool completed_ = false;
  SimTime completion_time_ = SimTime::zero();
};

}  // namespace cosched
