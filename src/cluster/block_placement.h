// HDFS-style input block placement policies.
//
// Every block has `replication` replicas, each on a distinct rack. Three
// policies are provided:
//   * random     — conventional Hadoop: replicas scattered over the whole
//                  cluster (Fair's default);
//   * clustered  — the paper's MTS guideline: `replication` mutually
//                  disjoint sets of `r_data` racks, replica k of every
//                  block spread evenly over set k;
//   * on_racks   — all replicas confined to a caller-chosen rack set
//                  (Corral-style planning).
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace cosched {

struct BlockReplicas {
  /// Racks holding a replica; distinct.
  std::vector<RackId> racks;
};

/// Conventional random placement over all `num_racks` racks.
[[nodiscard]] std::vector<BlockReplicas> place_blocks_random(
    std::int32_t num_blocks, std::int32_t num_racks, std::int32_t replication,
    Rng& rng);

/// The MTS guideline placement: `replication` disjoint random sets of
/// `r_data` racks; replica k of block b lands on set_k[b mod r_data], so
/// each set holds the whole input spread evenly. `r_data` is clamped so the
/// sets fit (replication * r_data <= num_racks). Returns the chosen sets
/// through `sets_out` when non-null.
[[nodiscard]] std::vector<BlockReplicas> place_blocks_clustered(
    std::int32_t num_blocks, std::int32_t num_racks, std::int32_t replication,
    std::int32_t r_data, Rng& rng,
    std::vector<std::vector<RackId>>* sets_out = nullptr);

/// All replicas confined to `racks` (replicas of one block on distinct
/// racks when possible).
[[nodiscard]] std::vector<BlockReplicas> place_blocks_on_racks(
    std::int32_t num_blocks, const std::vector<RackId>& racks,
    std::int32_t replication, Rng& rng);

}  // namespace cosched
