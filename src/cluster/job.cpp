#include "cluster/job.h"

#include <algorithm>

#include "common/check.h"

namespace cosched {

Job::Job(const JobSpec& spec, DataSize elephant_threshold,
         IdAllocator<TaskId>& task_ids, CoflowId coflow_id)
    : spec_(spec), shuffle_heavy_(spec.shuffle_heavy(elephant_threshold)) {
  spec_.validate();
  maps_.reserve(static_cast<std::size_t>(spec_.num_maps));
  for (std::int32_t i = 0; i < spec_.num_maps; ++i) {
    maps_.emplace_back(task_ids.next(), spec_.id, TaskKind::kMap, i,
                       spec_.map_durations[static_cast<std::size_t>(i)]);
  }
  reduces_.reserve(static_cast<std::size_t>(spec_.num_reduces));
  for (std::int32_t i = 0; i < spec_.num_reduces; ++i) {
    reduces_.emplace_back(task_ids.next(), spec_.id, TaskKind::kReduce, i,
                          spec_.reduce_durations[static_cast<std::size_t>(i)]);
  }
  coflow_ = std::make_unique<Coflow>(coflow_id, spec_.id);
}

void Job::set_block_placement(std::vector<BlockReplicas> blocks) {
  COSCHED_CHECK_MSG(blocks.size() == static_cast<std::size_t>(spec_.num_maps),
                    "job " << id() << ": expected one block per map task");
  blocks_ = std::move(blocks);
  pending_maps_by_rack_.clear();
  for (std::int32_t i = 0; i < spec_.num_maps; ++i) {
    for (RackId r : blocks_[static_cast<std::size_t>(i)].racks) {
      pending_maps_by_rack_[r].push_back(i);
    }
  }
}

Task* Job::next_pending_reduce() {
  while (reduce_cursor_ < spec_.num_reduces &&
         reduces_[static_cast<std::size_t>(reduce_cursor_)].state() !=
             TaskState::kPending) {
    ++reduce_cursor_;
  }
  if (reduce_cursor_ >= spec_.num_reduces) return nullptr;
  return &reduces_[static_cast<std::size_t>(reduce_cursor_)];
}

Task* Job::next_pending_map_local(RackId rack) {
  auto it = pending_maps_by_rack_.find(rack);
  if (it == pending_maps_by_rack_.end()) return nullptr;
  std::vector<std::int32_t>& queue = it->second;
  while (!queue.empty()) {
    Task& t = maps_[static_cast<std::size_t>(queue.back())];
    if (t.state() == TaskState::kPending) return &t;
    queue.pop_back();  // placed elsewhere; prune lazily
  }
  pending_maps_by_rack_.erase(it);
  return nullptr;
}

Task* Job::next_pending_map_any() {
  while (map_cursor_ < spec_.num_maps &&
         maps_[static_cast<std::size_t>(map_cursor_)].state() !=
             TaskState::kPending) {
    ++map_cursor_;
  }
  if (map_cursor_ >= spec_.num_maps) return nullptr;
  return &maps_[static_cast<std::size_t>(map_cursor_)];
}

std::vector<RackId> Job::racks_with_pending_local_maps() const {
  std::vector<RackId> out;
  out.reserve(pending_maps_by_rack_.size());
  for (const auto& [rack, queue] : pending_maps_by_rack_) {
    if (!queue.empty()) out.push_back(rack);
  }
  return out;
}

bool Job::in_map_guideline(RackId rack) const {
  return std::find(guideline_map_racks_.begin(), guideline_map_racks_.end(),
                   rack) != guideline_map_racks_.end();
}

bool Job::rack_preferred(RackId rack) const {
  if (preferred_racks_.empty()) return true;
  return std::find(preferred_racks_.begin(), preferred_racks_.end(), rack) !=
         preferred_racks_.end();
}

const BlockReplicas& Job::block(std::int32_t map_index) const {
  COSCHED_CHECK(map_index >= 0 &&
                map_index < static_cast<std::int32_t>(blocks_.size()));
  return blocks_[static_cast<std::size_t>(map_index)];
}

bool Job::map_local_on(std::int32_t map_index, RackId rack) const {
  const BlockReplicas& b = block(map_index);
  return std::find(b.racks.begin(), b.racks.end(), rack) != b.racks.end();
}

void Job::requeue_map(std::int32_t index) {
  COSCHED_CHECK(index >= 0 && index < spec_.num_maps);
  COSCHED_CHECK(maps_[static_cast<std::size_t>(index)].state() ==
                TaskState::kPending);
  --maps_placed_;
  // The monotonic cursor may already be past this task; pull it back so
  // next_pending_map_any can find it again. Stale per-rack queue entries
  // are harmless (pruned by state), so pushing unconditionally is safe.
  map_cursor_ = std::min(map_cursor_, index);
  if (!blocks_.empty()) {
    for (RackId r : blocks_[static_cast<std::size_t>(index)].racks) {
      pending_maps_by_rack_[r].push_back(index);
    }
  }
  // map_racks_used_ keeps the killed attempt's rack: the attempt did run
  // there, and the set only feeds placement heuristics.
}

void Job::requeue_reduce(std::int32_t index, RackId rack) {
  COSCHED_CHECK(index >= 0 && index < spec_.num_reduces);
  COSCHED_CHECK(reduces_[static_cast<std::size_t>(index)].state() ==
                TaskState::kPending);
  --reduces_placed_;
  auto it = reduce_placed_by_rack_.find(rack);
  COSCHED_CHECK(it != reduce_placed_by_rack_.end() && it->second > 0);
  --it->second;
  reduce_cursor_ = std::min(reduce_cursor_, index);
}

std::int32_t Job::reduce_plan_remaining(RackId rack) const {
  auto it = reduce_plan_.find(rack);
  if (it == reduce_plan_.end()) return 0;
  auto placed_it = reduce_placed_by_rack_.find(rack);
  const std::int32_t placed =
      placed_it == reduce_placed_by_rack_.end() ? 0 : placed_it->second;
  return std::max(0, it->second - placed);
}

}  // namespace cosched
