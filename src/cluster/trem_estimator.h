// Remaining-processing-time (T_rem) estimation.
//
// The paper estimates every running task's remaining time with the linear
// progress model T_rem = t_elapsed * (1-P)/P (Equation 8) and reports that
// the model's error is ~2.9% in practice. In a simulator, the linear model
// applied to a constant-rate task reproduces the true remaining time
// exactly, so we model estimation *error* directly: each task draws a
// stable multiplicative factor in [1-e, 1+e] (e = configured error rate)
// once, and every estimate of that task is true_remaining * factor. This
// is the knob swept by the paper's Figure 7 sensitivity study.
//
// The AvailabilityOracle is the consumer-facing interface: schedulers ask
// "how long until k containers are simultaneously free on rack r?", which
// ExploreSchedule (Algorithm 1) needs.
#pragma once

#include <unordered_map>

#include "cluster/task.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"

namespace cosched {

class TremEstimator {
 public:
  /// `error_rate` = e in the paper's |real - estimate| / real metric.
  TremEstimator(Rng rng, double error_rate)
      : rng_(rng), error_rate_(error_rate) {
    COSCHED_CHECK(error_rate >= 0.0);
  }

  [[nodiscard]] double error_rate() const { return error_rate_; }

  /// Estimate of a running task's remaining time.
  [[nodiscard]] Duration estimate(const Task& task, SimTime now) {
    return task.true_remaining(now) * factor_for(task.id());
  }

  /// The stable per-task error factor (sampled lazily on first use).
  [[nodiscard]] double factor_for(TaskId id) {
    auto it = factors_.find(id);
    if (it == factors_.end()) {
      const double f = 1.0 + error_rate_ * rng_.uniform(-1.0, 1.0);
      it = factors_.emplace(id, f).first;
    }
    return it->second;
  }

  /// Drop a completed task's factor (keeps the map bounded).
  void forget(TaskId id) { factors_.erase(id); }

 private:
  Rng rng_;
  double error_rate_;
  std::unordered_map<TaskId, double> factors_;
};

/// How long until `count` containers are simultaneously free on `rack`?
/// Implemented by the simulation driver (which knows the running tasks).
class AvailabilityOracle {
 public:
  virtual ~AvailabilityOracle() = default;
  /// Non-const: implementations lazily sample per-task error factors.
  [[nodiscard]] virtual Duration estimate_availability(RackId rack,
                                                       std::int64_t count) = 0;
};

}  // namespace cosched
