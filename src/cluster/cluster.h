// Container (slot) accounting for the rack/node hierarchy.
//
// A container is a fixed-size task slot on a server (paper: 20 per server,
// 10 servers per rack). The Cluster tracks free slots; it knows nothing
// about jobs — the driver owns task state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "net/topology.h"

namespace cosched {

class Cluster {
 public:
  explicit Cluster(const HybridTopology& topo);

  [[nodiscard]] std::int32_t num_racks() const { return topo_.num_racks; }
  [[nodiscard]] std::int64_t slots_per_rack() const {
    return topo_.slots_per_rack();
  }
  [[nodiscard]] std::int64_t free_slots(RackId rack) const;
  [[nodiscard]] std::int64_t used_slots(RackId rack) const;
  [[nodiscard]] std::int64_t total_free_slots() const;

  /// Claim one slot on `rack`; returns the node hosting it. Picks the node
  /// with the most free slots (balances load across servers). Requires a
  /// free slot.
  NodeId allocate_slot(RackId rack);

  /// Return a slot previously obtained from allocate_slot.
  void release_slot(RackId rack, NodeId node);

  /// Global node id of server `server_index` on `rack`.
  [[nodiscard]] NodeId node_id(RackId rack, std::int32_t server_index) const;

 private:
  [[nodiscard]] std::int32_t node_server_index(RackId rack,
                                               NodeId node) const;

  HybridTopology topo_;
  // free_[rack][server] = free slots on that server.
  std::vector<std::vector<std::int32_t>> free_;
  std::vector<std::int64_t> free_per_rack_;
  std::int64_t total_free_ = 0;
};

}  // namespace cosched
