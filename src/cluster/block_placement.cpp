#include "cluster/block_placement.h"

#include <algorithm>

#include "common/check.h"

namespace cosched {

std::vector<BlockReplicas> place_blocks_random(std::int32_t num_blocks,
                                               std::int32_t num_racks,
                                               std::int32_t replication,
                                               Rng& rng) {
  COSCHED_CHECK(num_blocks >= 0);
  COSCHED_CHECK(num_racks >= 1);
  COSCHED_CHECK(replication >= 1);
  const std::int32_t effective_repl = std::min(replication, num_racks);
  std::vector<BlockReplicas> out;
  out.reserve(static_cast<std::size_t>(num_blocks));
  for (std::int32_t b = 0; b < num_blocks; ++b) {
    BlockReplicas br;
    for (std::int64_t r : rng.sample_without_replacement(num_racks,
                                                         effective_repl)) {
      br.racks.push_back(RackId{r});
    }
    out.push_back(std::move(br));
  }
  return out;
}

std::vector<BlockReplicas> place_blocks_clustered(
    std::int32_t num_blocks, std::int32_t num_racks, std::int32_t replication,
    std::int32_t r_data, Rng& rng,
    std::vector<std::vector<RackId>>* sets_out) {
  COSCHED_CHECK(num_blocks >= 0);
  COSCHED_CHECK(num_racks >= 1);
  COSCHED_CHECK(replication >= 1);
  COSCHED_CHECK(r_data >= 1);

  // Clamp so `replication` disjoint sets of r_data racks fit the cluster.
  const std::int32_t effective_repl = std::min(replication, num_racks);
  const std::int32_t max_r_data = std::max(1, num_racks / effective_repl);
  const std::int32_t rd = std::min(r_data, max_r_data);

  const std::vector<std::int64_t> chosen = rng.sample_without_replacement(
      num_racks, static_cast<std::int64_t>(effective_repl) * rd);

  std::vector<std::vector<RackId>> sets(
      static_cast<std::size_t>(effective_repl));
  for (std::int32_t k = 0; k < effective_repl; ++k) {
    for (std::int32_t i = 0; i < rd; ++i) {
      sets[static_cast<std::size_t>(k)].push_back(
          RackId{chosen[static_cast<std::size_t>(k) * rd + i]});
    }
  }

  std::vector<BlockReplicas> out;
  out.reserve(static_cast<std::size_t>(num_blocks));
  for (std::int32_t b = 0; b < num_blocks; ++b) {
    BlockReplicas br;
    for (std::int32_t k = 0; k < effective_repl; ++k) {
      br.racks.push_back(
          sets[static_cast<std::size_t>(k)][static_cast<std::size_t>(b % rd)]);
    }
    out.push_back(std::move(br));
  }
  if (sets_out != nullptr) *sets_out = std::move(sets);
  return out;
}

std::vector<BlockReplicas> place_blocks_on_racks(
    std::int32_t num_blocks, const std::vector<RackId>& racks,
    std::int32_t replication, Rng& rng) {
  COSCHED_CHECK(num_blocks >= 0);
  COSCHED_CHECK(!racks.empty());
  COSCHED_CHECK(replication >= 1);
  const auto n = static_cast<std::int64_t>(racks.size());
  const std::int64_t effective_repl =
      std::min<std::int64_t>(replication, n);
  std::vector<BlockReplicas> out;
  out.reserve(static_cast<std::size_t>(num_blocks));
  for (std::int32_t b = 0; b < num_blocks; ++b) {
    BlockReplicas br;
    for (std::int64_t i : rng.sample_without_replacement(n, effective_repl)) {
      br.racks.push_back(racks[static_cast<std::size_t>(i)]);
    }
    out.push_back(std::move(br));
  }
  return out;
}

}  // namespace cosched
