// FIFO circuit scheduler — the "no coflow awareness" strawman.
//
// Flows are served in submission order: whenever ports free up, the oldest
// pending flow whose source output port and destination input port are both
// free gets a circuit, regardless of which coflow it belongs to. This is
// what a plain circuit-switch arbiter would do; comparing it against
// Sunflow isolates the value of shortest-coflow-first ordering (the
// ablation bench bench_micro_circuit).
#pragma once

#include <deque>
#include <map>

#include "coflow/circuit_scheduler.h"
#include "net/network.h"
#include "simcore/simulator.h"

namespace cosched {

class FifoCircuitScheduler : public CircuitScheduler {
 public:
  FifoCircuitScheduler(Simulator& sim, Network& net);

  void submit(Coflow& coflow, Flow& flow) override;
  void demand_added(Flow& flow) override;
  [[nodiscard]] std::size_t pending_flows() const override {
    return pending_.size();
  }

 private:
  struct ActiveTransfer {
    Flow* flow;
    bool transferring = false;
    SimTime last_update = SimTime::zero();
  };

  void request_allocation_pass();
  void allocation_pass();
  void start_transfer(FlowId id);
  void on_transfer_complete(FlowId id);

  Simulator& sim_;
  Network& net_;
  std::deque<Flow*> pending_;  // FIFO order
  std::map<FlowId, ActiveTransfer> active_;
  bool pass_scheduled_ = false;
};

}  // namespace cosched
