#include "coflow/bvn_clearance.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/check.h"

namespace cosched {

Duration ClearanceSchedule::transfer_time() const {
  Duration t = Duration::zero();
  for (const auto& slot : slots) t += slot.duration;
  return t;
}

Duration ClearanceSchedule::total_time(Duration reconfig_delay) const {
  return transfer_time() +
         reconfig_delay * static_cast<double>(slots.size());
}

ClearanceSchedule bvn_clearance(const TrafficMatrix& matrix, Bandwidth bw) {
  ClearanceSchedule schedule;
  if (matrix.empty()) return schedule;

  // Dense index spaces for the two sides. A rack that both sends and
  // receives appears once on each side (its output port and input port are
  // independent resources).
  const std::vector<RackId> srcs = matrix.sources();
  const std::vector<RackId> dsts = matrix.destinations();
  const std::size_t n = std::max(srcs.size(), dsts.size());

  std::map<RackId, std::size_t> src_index;
  for (std::size_t i = 0; i < srcs.size(); ++i) src_index[srcs[i]] = i;
  std::map<RackId, std::size_t> dst_index;
  for (std::size_t j = 0; j < dsts.size(); ++j) dst_index[dsts[j]] = j;

  // real[i][j]: demand still to clear; pad[i][j]: filler making the matrix
  // doubly balanced. All in exact bytes.
  std::vector<std::vector<std::int64_t>> real(
      n, std::vector<std::int64_t>(n, 0));
  std::vector<std::vector<std::int64_t>> pad(
      n, std::vector<std::int64_t>(n, 0));
  for (const auto& [key, size] : matrix.entries()) {
    real[src_index[key.first]][dst_index[key.second]] = size.in_bytes();
  }

  // T = max row/col sum of the real matrix.
  std::vector<std::int64_t> row_sum(n, 0);
  std::vector<std::int64_t> col_sum(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      row_sum[i] += real[i][j];
      col_sum[j] += real[i][j];
    }
  }
  std::int64_t target = 0;
  for (std::size_t i = 0; i < n; ++i) {
    target = std::max({target, row_sum[i], col_sum[i]});
  }
  COSCHED_CHECK(target > 0);

  // Pad greedily: total row deficit equals total column deficit, so the
  // two-pointer sweep exactly balances the matrix.
  {
    std::size_t j = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t need = target - row_sum[i];
      while (need > 0) {
        COSCHED_CHECK(j < n);
        const std::int64_t col_need = target - col_sum[j];
        if (col_need == 0) {
          ++j;
          continue;
        }
        const std::int64_t add = std::min(need, col_need);
        pad[i][j] += add;
        row_sum[i] += add;
        col_sum[j] += add;
        need -= add;
      }
    }
  }

  // Repeatedly extract a perfect matching over positive combined entries.
  std::int64_t cleared = 0;
  while (cleared < target) {
    BipartiteGraph graph(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (real[i][j] + pad[i][j] > 0) graph.add_edge(i, j);
      }
    }
    const MatchingResult match = maximum_bipartite_matching(graph);
    COSCHED_CHECK_MSG(match.size == n,
                      "balanced positive matrix must admit a perfect "
                      "matching (Birkhoff-von Neumann)");

    std::int64_t slot_bytes = std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = match.match_left[i];
      slot_bytes = std::min(slot_bytes, real[i][j] + pad[i][j]);
    }
    COSCHED_CHECK(slot_bytes > 0);

    ClearanceSlot slot;
    slot.duration = transfer_time(DataSize::bytes(slot_bytes), bw);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = match.match_left[i];
      // Drain the real demand first; padding absorbs the remainder.
      const std::int64_t from_real = std::min(slot_bytes, real[i][j]);
      if (from_real > 0 && i < srcs.size() && j < dsts.size()) {
        slot.circuits.emplace_back(srcs[i], dsts[j]);
      }
      real[i][j] -= from_real;
      pad[i][j] -= slot_bytes - from_real;
      COSCHED_CHECK(pad[i][j] >= 0);
    }
    schedule.slots.push_back(std::move(slot));
    cleared += slot_bytes;
  }

  return schedule;
}

}  // namespace cosched
