#include "coflow/bvn_circuit.h"

#include <algorithm>

#include "common/check.h"

namespace cosched {

BvnCircuitScheduler::BvnCircuitScheduler(Simulator& sim, Network& net)
    : sim_(sim), net_(net) {}

void BvnCircuitScheduler::submit(Coflow& coflow, Flow& flow) {
  COSCHED_CHECK(flow.path() == FlowPath::kOcs);
  COSCHED_CHECK(flow.src() != flow.dst());
  auto it = queue_.find(coflow.id());
  if (it == queue_.end()) {
    Entry entry;
    entry.coflow = &coflow;
    entry.priority_sec =
        net_.fabric().cct_lower_bound(coflow.cross_rack_matrix()).sec();
    it = queue_.emplace(coflow.id(), std::move(entry)).first;
    auto pos = std::find_if(order_.begin(), order_.end(), [&](CoflowId id) {
      const Entry& e = queue_.at(id);
      return e.priority_sec > it->second.priority_sec ||
             (e.priority_sec == it->second.priority_sec && id > coflow.id());
    });
    order_.insert(pos, coflow.id());
  }
  it->second.flows.push_back(&flow);
  maybe_start_next();
}

void BvnCircuitScheduler::demand_added(Flow& flow) {
  // Picked up when the remaining-demand matrix is rebuilt at the next slot
  // boundary; nothing to do mid-slot.
  (void)flow;
}

std::size_t BvnCircuitScheduler::pending_flows() const {
  std::size_t n = 0;
  for (const auto& [id, entry] : queue_) {
    for (const Flow* f : entry.flows) {
      if (!f->completed()) ++n;
    }
  }
  return n;
}

void BvnCircuitScheduler::maybe_start_next() {
  // Defer the head-of-queue selection to a zero-delay event so every
  // coflow submitted at this instant participates in the priority order.
  if (active_.valid() || order_.empty() || start_scheduled_) return;
  start_scheduled_ = true;
  sim_.schedule_after(Duration::zero(), [this] {
    start_scheduled_ = false;
    if (active_.valid() || order_.empty()) return;
    active_ = order_.front();
    if (!slot_running_) run_next_slot();
  });
}

void BvnCircuitScheduler::run_next_slot() {
  COSCHED_CHECK(active_.valid());
  Entry& entry = queue_.at(active_);

  // Remaining-demand matrix.
  TrafficMatrix remaining;
  std::map<std::pair<RackId, RackId>, Flow*> by_pair;
  for (Flow* f : entry.flows) {
    if (f->completed() || f->remaining_bits() <= 1.0) continue;
    remaining.add(f->src(), f->dst(), f->remaining());
    by_pair[{f->src(), f->dst()}] = f;
  }

  if (remaining.empty()) {
    // Coflow drained: retire it and move on.
    for (Flow* f : entry.flows) {
      if (!f->completed()) {
        f->mark_completed(sim_.now());
        notify_flow_complete(*f);
      }
    }
    order_.erase(std::remove(order_.begin(), order_.end(), active_),
                 order_.end());
    queue_.erase(active_);
    active_ = CoflowId::invalid();
    maybe_start_next();
    return;
  }

  const ClearanceSchedule schedule =
      bvn_clearance(remaining, net_.ocs().link_rate());
  COSCHED_CHECK(!schedule.slots.empty());
  const ClearanceSlot& slot = schedule.slots.front();

  slot_flows_.clear();
  slot_duration_ = slot.duration;
  circuits_ready_ = 0;
  slot_running_ = true;
  ++slots_executed_;
  for (const auto& [src, dst] : slot.circuits) {
    Flow* f = by_pair.at({src, dst});
    slot_flows_.push_back(f);
    f->mark_started(sim_.now());
    f->set_rate(net_.ocs().link_rate());
    net_.ocs().setup_circuit(src, dst, [this] { on_circuit_up(); });
  }
}

void BvnCircuitScheduler::on_circuit_up() {
  ++circuits_ready_;
  if (circuits_ready_ < slot_flows_.size()) return;
  // All circuits of the slot are up: transfer for the slot duration.
  sim_.schedule_after(slot_duration_, [this] { finish_slot(); });
}

void BvnCircuitScheduler::finish_slot() {
  COSCHED_CHECK(slot_running_);
  Entry& entry = queue_.at(active_);
  (void)entry;
  for (Flow* f : slot_flows_) {
    const double moved = f->settle(slot_duration_);
    net_.note_ocs_bytes(
        DataSize::bytes(static_cast<std::int64_t>(moved / 8.0)));
    net_.ocs().teardown_circuit(f->src(), f->dst());
    if (f->remaining_bits() <= 1.0) {
      f->mark_completed(sim_.now());
      notify_flow_complete(*f);
    }
  }
  slot_flows_.clear();
  slot_running_ = false;
  run_next_slot();
}

}  // namespace cosched
