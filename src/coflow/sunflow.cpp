#include "coflow/sunflow.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "coflow/matching.h"
#include "common/check.h"
#include "common/log.h"
#include "net/ocs_switch.h"
#include "obs/observability.h"
#include "obs/perf_monitor.h"
#include "obs/profile.h"

namespace cosched {

SunflowScheduler::SunflowScheduler(Simulator& sim, Fabric& fabric)
    : sim_(sim), fabric_(fabric) {}

void SunflowScheduler::submit(Coflow& coflow, Flow& flow) {
  COSCHED_CHECK(flow.path() == FlowPath::kOcs);
  COSCHED_CHECK_MSG(flow.src() != flow.dst(),
                    "intra-rack flow routed to the circuit fabric");
  auto it = entries_.find(coflow.id());
  if (it == entries_.end()) {
    CoflowEntry entry;
    entry.coflow = &coflow;
    // Shortest-bound-first priority, frozen at first submit. The fabric's
    // own bound, not the single-circuit formula: on ocs:K the per-plane
    // formula inverted wide-vs-tall coflow ordering (K = 1 is the same
    // function, so the paper's ordering is pinned unchanged).
    entry.priority_sec =
        fabric_.cct_lower_bound(coflow.cross_rack_matrix()).sec();
    it = entries_.emplace(coflow.id(), std::move(entry)).first;
    // Keep `order_` sorted by (priority, id): stable, deterministic.
    auto pos = std::find_if(order_.begin(), order_.end(), [&](CoflowId id) {
      const CoflowEntry& e = entries_.at(id);
      return e.priority_sec > it->second.priority_sec ||
             (e.priority_sec == it->second.priority_sec && id > coflow.id());
    });
    order_.insert(pos, coflow.id());
  }
  it->second.pending.push_back(&flow);
  request_allocation_pass();
}

void SunflowScheduler::demand_added(Flow& flow) {
  auto it = active_.find(flow.id());
  if (it == active_.end()) {
    return;  // still pending; the grown size is picked up at circuit setup
  }
  ActiveTransfer& at = it->second;
  if (at.state == TransferState::kReconfiguring) {
    return;  // size grows before the transfer begins; nothing to re-plan
  }
  // Settle what has drained so far, then re-plan the completion event. The
  // settled bits are credited when the transfer ends (completion credits
  // the whole flow; eviction credits the transfer), so track them both per
  // transfer and in the scheduler-wide uncredited counter the auditor uses.
  const double moved = flow.settle(sim_.now() - at.last_update);
  at.settled_bits += moved;
  uncredited_settled_bits_ += moved;
  at.last_update = sim_.now();
  flow.completion_event().cancel();
  const Duration eta = Duration::seconds(
      flow.remaining_bits() / fabric_.link_rate().in_bits_per_sec());
  FlowId id = flow.id();
  flow.completion_event() =
      sim_.schedule_after(eta, [this, id] { on_transfer_complete(id); });
}

std::size_t SunflowScheduler::pending_flows() const {
  std::size_t n = 0;
  for (const auto& [id, entry] : entries_) n += entry.pending.size();
  return n;
}

DataSize SunflowScheduler::bytes_in_flight() const {
  double bits = 0.0;
  for (const auto& [id, entry] : entries_) {
    for (const Flow* f : entry.pending) bits += f->remaining_bits();
  }
  for (const auto& [id, at] : active_) bits += at.flow->remaining_bits();
  return DataSize::bytes(static_cast<std::int64_t>(bits / 8.0));
}

void SunflowScheduler::evict_transfer(ActiveTransfer& at) {
  Flow& flow = *at.flow;
  if (at.state == TransferState::kTransferring) {
    // Credit everything this transfer drained: the final settle plus any
    // bits settled earlier at demand_added points (previously lost).
    const double moved =
        flow.settle(sim_.now() - at.last_update) + at.settled_bits;
    uncredited_settled_bits_ -= at.settled_bits;
    if (moved > 0.0) fabric_.credit_drained_bits(moved);
    flow.completion_event().cancel();
    flow.set_rate(Bandwidth::zero());
  }
  // Tears down a connected circuit, or cancels one mid-reconfiguration:
  // the teardown's generation bump invalidates the pending setup
  // completion, so start_transfer never fires for this flow.
  fabric_.plane(at.plane)->teardown_circuit(flow.src(), flow.dst());
}

std::vector<Flow*> SunflowScheduler::evict_all() {
  std::vector<Flow*> evicted;
  evicted.reserve(active_.size() + pending_flows());
  for (auto& [id, at] : active_) {
    evict_transfer(at);
    evicted.push_back(at.flow);
  }
  active_.clear();
  for (CoflowId cid : order_) {
    for (Flow* f : entries_.at(cid).pending) evicted.push_back(f);
  }
  entries_.clear();
  order_.clear();
  return evicted;
}

std::vector<Flow*> SunflowScheduler::evict_plane(std::int32_t plane) {
  std::vector<Flow*> evicted;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.plane != plane) {
      ++it;
      continue;
    }
    evict_transfer(it->second);
    evicted.push_back(it->second.flow);
    it = active_.erase(it);
  }
  // Drop coflow entries left with nothing queued and nothing in flight, so
  // order_ does not accumulate husks across repeated plane outages. (A
  // coflow that later reopens demand is resubmitted like any new coflow.)
  for (auto eit = entries_.begin(); eit != entries_.end();) {
    bool live = !eit->second.pending.empty();
    for (auto ait = active_.begin(); !live && ait != active_.end(); ++ait) {
      live = ait->second.flow->coflow() == eit->first;
    }
    if (live) {
      ++eit;
      continue;
    }
    order_.erase(std::remove(order_.begin(), order_.end(), eit->first),
                 order_.end());
    eit = entries_.erase(eit);
  }
  return evicted;
}

void SunflowScheduler::request_allocation_pass() {
  if (pass_scheduled_) return;
  pass_scheduled_ = true;
  sim_.schedule_after(Duration::zero(), [this] {
    pass_scheduled_ = false;
    allocation_pass();
  });
}

void SunflowScheduler::allocation_pass() {
  COSCHED_PROF_SCOPE("sunflow.allocation_pass");
  PerfScope perf(PerfPhase::kSunflowAlloc);
  if (perf.active()) perf.set_size(pending_flows());
  // Ports that a higher-priority coflow still needs (pending demand it
  // could not start this pass) are *reserved*: a lower-priority coflow may
  // not take them even if they are momentarily free. Without this, a long
  // low-priority transfer can slip onto a port during the few milliseconds
  // the head coflow spends waiting for its matching port to reconfigure,
  // inverting Sunflow's shortest-coflow-first order. Reservations span all
  // planes (see the header comment).
  const auto num_racks = static_cast<std::size_t>(fabric_.topology().num_racks);
  if (reserved_out_.size() < num_racks) {
    reserved_out_.resize(num_racks, 0);
    reserved_in_.resize(num_racks, 0);
    src_seen_.resize(num_racks, 0);
    dst_seen_.resize(num_racks, 0);
    src_slot_.resize(num_racks, 0);
    dst_slot_.resize(num_racks, 0);
  }
  std::fill(reserved_out_.begin(), reserved_out_.end(), 0);
  std::fill(reserved_in_.begin(), reserved_in_.end(), 0);
  const std::int32_t planes = fabric_.num_planes();
  for (CoflowId cid : order_) {
    CoflowEntry& entry = entries_.at(cid);
    if (entry.pending.empty()) continue;
    // Try every available plane in plane order. On a single-plane fabric
    // this loop body runs once — the pre-seam code sequence, bit for bit.
    for (std::int32_t p = 0; p < planes && !entry.pending.empty(); ++p) {
      if (!fabric_.plane_available(p)) continue;
      match_on_plane(cid, entry, p);
    }
    // Whatever this coflow could not start keeps its ports reserved
    // against lower-priority coflows.
    for (Flow* f : entry.pending) {
      reserved_out_[static_cast<std::size_t>(f->src().value())] = 1;
      reserved_in_[static_cast<std::size_t>(f->dst().value())] = 1;
    }
  }
}

void SunflowScheduler::match_on_plane(CoflowId cid, CoflowEntry& entry,
                                      std::int32_t plane_index) {
  OcsSwitch& plane = *fabric_.plane(plane_index);
  // Give this coflow as many circuits as its pending flows can use on the
  // plane's currently-free ports: a maximum bipartite matching between free
  // source output ports and free destination input ports. This is what
  // lets an all-to-all shuffle use rotations of simultaneous circuits
  // instead of serializing (Goal-2 / Figure 2 of the paper). srcs_/dsts_
  // collect eligible racks in first-seen pending order, exactly as the
  // former std::map emplace did.
  ++scratch_gen_;
  srcs_.clear();
  dsts_.clear();
  for (Flow* f : entry.pending) {
    const auto s = static_cast<std::size_t>(f->src().value());
    const auto d = static_cast<std::size_t>(f->dst().value());
    if (!plane.out_port_free(f->src()) || !plane.in_port_free(f->dst()) ||
        reserved_out_[s] != 0 || reserved_in_[d] != 0) {
      continue;
    }
    if (src_seen_[s] != scratch_gen_) {
      src_seen_[s] = scratch_gen_;
      src_slot_[s] = srcs_.size();
      srcs_.push_back(f->src());
    }
    if (dst_seen_[d] != scratch_gen_) {
      dst_seen_[d] = scratch_gen_;
      dst_slot_[d] = dsts_.size();
      dsts_.push_back(f->dst());
    }
  }
  if (srcs_.empty() || dsts_.empty()) return;

  // Flows are aggregated per rack pair within a coflow, so at most one
  // pending flow exists per (src, dst) edge.
  if (adj_.size() < srcs_.size()) adj_.resize(srcs_.size());
  for (std::size_t i = 0; i < srcs_.size(); ++i) adj_[i].clear();
  BipartiteGraph graph(srcs_.size(), dsts_.size());
  // Deterministic edge order: sort pending by (src, dst).
  std::sort(entry.pending.begin(), entry.pending.end(),
            [](const Flow* a, const Flow* b) {
              return std::make_pair(a->src(), a->dst()) <
                     std::make_pair(b->src(), b->dst());
            });
  for (Flow* f : entry.pending) {
    const auto s = static_cast<std::size_t>(f->src().value());
    const auto d = static_cast<std::size_t>(f->dst().value());
    if (src_seen_[s] != scratch_gen_ || dst_seen_[d] != scratch_gen_) {
      continue;
    }
    graph.add_edge(src_slot_[s], dst_slot_[d]);
    adj_[src_slot_[s]].emplace_back(dst_slot_[d], f);
  }
  const MatchingResult match = maximum_bipartite_matching(graph);

  for (std::size_t i = 0; i < srcs_.size(); ++i) {
    const std::size_t j = match.match_left[i];
    if (j == MatchingResult::kUnmatched) continue;
    Flow* flow = nullptr;
    for (const auto& [dj, f] : adj_[i]) {
      if (dj == j) flow = f;  // last match mirrors the former map overwrite
    }
    COSCHED_CHECK(flow != nullptr);
    entry.pending.erase(
        std::remove(entry.pending.begin(), entry.pending.end(), flow),
        entry.pending.end());
    active_.emplace(flow->id(),
                    ActiveTransfer{flow, TransferState::kReconfiguring,
                                   sim_.now(), 0.0, plane_index});
    if (obs_ != nullptr) {
      obs_->decisions.record(CircuitDecision{
          .at = sim_.now(),
          .coflow = cid,
          .job = flow->job(),
          .flow = flow->id(),
          .src = flow->src(),
          .dst = flow->dst(),
          .priority_sec = entry.priority_sec,
          .bytes = flow->size()});
    }
    FlowId id = flow->id();
    plane.setup_circuit(flow->src(), flow->dst(),
                        [this, id] { start_transfer(id); });
  }
}

void SunflowScheduler::start_transfer(FlowId id) {
  auto it = active_.find(id);
  COSCHED_CHECK(it != active_.end());
  ActiveTransfer& at = it->second;
  Flow& flow = *at.flow;
  at.state = TransferState::kTransferring;
  at.last_update = sim_.now();
  flow.mark_started(sim_.now());
  flow.set_rate(fabric_.link_rate());
  const Duration eta = Duration::seconds(
      flow.remaining_bits() / fabric_.link_rate().in_bits_per_sec());
  flow.completion_event() =
      sim_.schedule_after(eta, [this, id] { on_transfer_complete(id); });
}

void SunflowScheduler::on_transfer_complete(FlowId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  Flow& flow = *it->second.flow;
  fabric_.plane(it->second.plane)->teardown_circuit(flow.src(), flow.dst());
  // Credit only what this flow has not been credited before: a flow whose
  // demand reopened after an earlier circuit completion carries its first
  // transfer in size(), and crediting the full size again would double-
  // count it. Integer DataSize arithmetic, so the common single-completion
  // case credits exactly size() as before.
  DataSize& credited = credited_[id];
  fabric_.credit_bytes(flow.size() - credited);
  credited = flow.size();
  uncredited_settled_bits_ -= it->second.settled_bits;
  flow.mark_completed(sim_.now());
  active_.erase(it);

  // Drop empty coflow entries so `order_` stays short.
  auto eit = entries_.find(flow.coflow());
  if (eit != entries_.end() && eit->second.pending.empty() &&
      eit->second.coflow->all_flows_complete()) {
    order_.erase(std::remove(order_.begin(), order_.end(), flow.coflow()),
                 order_.end());
    entries_.erase(eit);
  }

  notify_flow_complete(flow);
  request_allocation_pass();
}

std::string SunflowScheduler::self_check() const {
  std::int64_t transferring = 0;
  std::int64_t reconfiguring = 0;
  for (const auto& [id, at] : active_) {
    if (!fabric_.plane_available(at.plane)) {
      std::ostringstream os;
      os << "flow " << id << " holds a circuit on plane " << at.plane
         << " which is inside an outage window";
      return os.str();
    }
    if (at.state == TransferState::kTransferring) {
      ++transferring;
    } else {
      ++reconfiguring;
    }
  }
  std::int64_t connected_ports = 0;
  std::int64_t reconfiguring_ports = 0;
  for (std::int32_t p = 0; p < fabric_.num_planes(); ++p) {
    connected_ports += fabric_.plane(p)->active_circuits();
    reconfiguring_ports += fabric_.plane(p)->reconfiguring_ports();
  }
  if (connected_ports != transferring || reconfiguring_ports != reconfiguring) {
    std::ostringstream os;
    os << "plane port states diverge from transfers: " << connected_ports
       << " connected ports vs " << transferring << " transferring flows, "
       << reconfiguring_ports << " reconfiguring ports vs " << reconfiguring
       << " reconfiguring flows";
    return os.str();
  }
  return {};
}

}  // namespace cosched
