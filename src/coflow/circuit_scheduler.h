// Interface for OCS circuit schedulers (Sunflow is the one the paper uses).
//
// The job-scheduling layer routes each elephant flow here; the circuit
// scheduler decides when each flow gets a circuit. Flows are grouped by
// their Coflow so schedulers can prioritize whole coflows.
#pragma once

#include <functional>

#include "coflow/coflow.h"
#include "net/flow.h"

namespace cosched {

class CircuitScheduler {
 public:
  using FlowCallback = std::function<void(Flow&)>;

  virtual ~CircuitScheduler() = default;

  /// Hand one OCS-bound flow of `coflow` to the scheduler. May be called
  /// repeatedly for the same coflow as more of its flows materialize.
  virtual void submit(Coflow& coflow, Flow& flow) = 0;

  /// The demand of an already-submitted flow grew.
  virtual void demand_added(Flow& flow) = 0;

  /// Invoked exactly once per flow when it finishes draining.
  void set_on_flow_complete(FlowCallback cb) { on_flow_complete_ = std::move(cb); }

  /// Flows currently waiting for a circuit (diagnostics).
  [[nodiscard]] virtual std::size_t pending_flows() const = 0;

 protected:
  void notify_flow_complete(Flow& flow) {
    if (on_flow_complete_) on_flow_complete_(flow);
  }

 private:
  FlowCallback on_flow_complete_;
};

}  // namespace cosched
