#include "coflow/cct_bound.h"

#include <algorithm>

namespace cosched {

Duration ocs_flow_time(DataSize size, Bandwidth bw, Duration delta) {
  if (size.is_zero()) return Duration::zero();
  return transfer_time(size, bw) + delta;
}

Duration cct_lower_bound(const TrafficMatrix& matrix, Bandwidth bw,
                         Duration delta) {
  Duration bound = Duration::zero();
  for (RackId src : matrix.sources()) {
    const Duration row = transfer_time(matrix.row_sum(src), bw) +
                         delta * static_cast<double>(matrix.row_degree(src));
    bound = std::max(bound, row);
  }
  for (RackId dst : matrix.destinations()) {
    const Duration col = transfer_time(matrix.col_sum(dst), bw) +
                         delta * static_cast<double>(matrix.col_degree(dst));
    bound = std::max(bound, col);
  }
  return bound;
}

}  // namespace cosched
