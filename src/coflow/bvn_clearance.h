// Optimal clearance of a traffic matrix over a circuit switch
// (Inukai's SS/TDMA time-slot assignment [21], the algorithm the paper's
// Section II-C cites to show the CCT lower bound is achievable).
//
// Given matrix C, pad it so that every row sum and column sum equals
// T = max row/column sum, then repeatedly extract a perfect matching over
// the positive entries (guaranteed to exist by Birkhoff–von-Neumann /
// Hall's theorem) and run it for the minimum entry it covers. The real
// (non-padding) entries drain in total transfer time exactly T / BW.
#pragma once

#include <vector>

#include "coflow/matching.h"
#include "coflow/traffic_matrix.h"
#include "common/units.h"

namespace cosched {

/// One switch configuration: a set of simultaneous circuits held for
/// `duration`. Only real (non-padding) circuits are listed.
struct ClearanceSlot {
  Duration duration;
  std::vector<std::pair<RackId, RackId>> circuits;
};

struct ClearanceSchedule {
  std::vector<ClearanceSlot> slots;

  /// Pure transfer time (sum of slot durations, no reconfiguration delay).
  [[nodiscard]] Duration transfer_time() const;

  /// Wall-clock time if every slot boundary costs one reconfiguration
  /// delay on all ports (all-stop accounting).
  [[nodiscard]] Duration total_time(Duration reconfig_delay) const;
};

/// Decompose `matrix` into a clearance schedule at link rate `bw`.
/// The returned schedule's transfer_time() equals
/// max(max row sum, max col sum) / bw — the bandwidth component of the
/// paper's CCT lower bound.
[[nodiscard]] ClearanceSchedule bvn_clearance(const TrafficMatrix& matrix,
                                              Bandwidth bw);

}  // namespace cosched
