#include "coflow/coflow.h"

#include "common/check.h"

namespace cosched {

std::pair<Flow*, bool> Coflow::add_demand(IdAllocator<FlowId>& ids, RackId src,
                                          RackId dst, DataSize size) {
  COSCHED_CHECK(size >= DataSize::zero());
  auto it = by_pair_.find({src, dst});
  if (it != by_pair_.end()) {
    it->second->add_demand(size);
    return {it->second, false};
  }
  flows_.push_back(
      std::make_unique<Flow>(ids.next(), id_, job_, src, dst, size));
  Flow* flow = flows_.back().get();
  by_pair_[{src, dst}] = flow;
  return {flow, true};
}

Flow* Coflow::find_flow(RackId src, RackId dst) {
  auto it = by_pair_.find({src, dst});
  return it == by_pair_.end() ? nullptr : it->second;
}

TrafficMatrix Coflow::cross_rack_matrix() const {
  TrafficMatrix m;
  for (const auto& f : flows_) {
    if (f->src() != f->dst()) m.add(f->src(), f->dst(), f->size());
  }
  return m;
}

bool Coflow::all_flows_complete() const {
  for (const auto& f : flows_) {
    if (!f->completed()) return false;
  }
  return true;
}

DataSize Coflow::total_demand() const {
  DataSize t = DataSize::zero();
  for (const auto& f : flows_) t += f->size();
  return t;
}

}  // namespace cosched
