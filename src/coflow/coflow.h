// The Coflow abstraction: all shuffle flows of one job, with their traffic
// matrix and completion bookkeeping.
//
// A Coflow owns its Flow objects. Flows are aggregated per rack pair, so
// `demand(src, dst, size)` either creates a flow or grows an existing one.
// The *release* time — when the flows were handed to the network — anchors
// CCT measurement: CCT = (last flow completion) - (release of first flow).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "coflow/cct_bound.h"
#include "coflow/traffic_matrix.h"
#include "common/ids.h"
#include "net/flow.h"

namespace cosched {

class Coflow {
 public:
  Coflow(CoflowId id, JobId job) : id_(id), job_(job) {}

  Coflow(const Coflow&) = delete;
  Coflow& operator=(const Coflow&) = delete;

  [[nodiscard]] CoflowId id() const { return id_; }
  [[nodiscard]] JobId job() const { return job_; }

  /// Add demand between a rack pair; creates or grows the flow. Returns the
  /// flow and whether it was newly created.
  std::pair<Flow*, bool> add_demand(IdAllocator<FlowId>& ids, RackId src,
                                    RackId dst, DataSize size);

  [[nodiscard]] Flow* find_flow(RackId src, RackId dst);
  [[nodiscard]] const std::vector<std::unique_ptr<Flow>>& flows() const {
    return flows_;
  }

  /// Cross-rack demand only (what the OCS lower bound is computed over).
  [[nodiscard]] TrafficMatrix cross_rack_matrix() const;

  /// Lower bound T(C) over the cross-rack matrix.
  [[nodiscard]] Duration lower_bound(Bandwidth bw, Duration delta) const {
    return cct_lower_bound(cross_rack_matrix(), bw, delta);
  }

  [[nodiscard]] bool all_flows_complete() const;

  /// Mark that the first flows were handed to the network at `now`.
  void mark_released(SimTime now) {
    if (!released_) {
      released_ = true;
      release_time_ = now;
    }
  }
  [[nodiscard]] bool released() const { return released_; }
  [[nodiscard]] SimTime release_time() const { return release_time_; }

  void mark_completed(SimTime now) {
    completed_ = true;
    completion_time_ = now;
  }
  [[nodiscard]] bool completed() const { return completed_; }
  [[nodiscard]] SimTime completion_time() const { return completion_time_; }

  /// Coflow completion time; valid once completed.
  [[nodiscard]] Duration cct() const { return completion_time_ - release_time_; }

  [[nodiscard]] DataSize total_demand() const;

 private:
  CoflowId id_;
  JobId job_;
  std::vector<std::unique_ptr<Flow>> flows_;
  std::map<std::pair<RackId, RackId>, Flow*> by_pair_;
  bool released_ = false;
  bool completed_ = false;
  SimTime release_time_ = SimTime::zero();
  SimTime completion_time_ = SimTime::zero();
};

}  // namespace cosched
