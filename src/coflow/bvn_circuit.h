// BvN/TMS circuit scheduler: serve one coflow at a time, shortest lower
// bound first, clearing its traffic matrix with the Inukai/Birkhoff–von-
// Neumann decomposition (src/coflow/bvn_clearance.h).
//
// Each slot configures a set of port-disjoint circuits, transfers for the
// slot duration, then reconfigures — the classical traffic-matrix-
// scheduling discipline (all-stop between slots, one reconfiguration delay
// per slot). Within a coflow this meets the bandwidth term of T(C)
// exactly and usually pays fewer reconfigurations than per-flow schedules;
// across coflows it forgoes Sunflow's work conservation (ports the active
// coflow does not use stay idle). The ablation bench (bench_micro_circuit)
// quantifies both effects.
//
// The remaining schedule is recomputed from the surviving demand after
// every slot, so demand added mid-coflow is picked up at the next slot
// boundary.
#pragma once

#include <map>
#include <vector>

#include "coflow/bvn_clearance.h"
#include "coflow/circuit_scheduler.h"
#include "net/network.h"
#include "simcore/simulator.h"

namespace cosched {

class BvnCircuitScheduler : public CircuitScheduler {
 public:
  BvnCircuitScheduler(Simulator& sim, Network& net);

  void submit(Coflow& coflow, Flow& flow) override;
  void demand_added(Flow& flow) override;
  [[nodiscard]] std::size_t pending_flows() const override;

  /// Total slots executed (diagnostics).
  [[nodiscard]] std::int64_t slots_executed() const {
    return slots_executed_;
  }

 private:
  struct Entry {
    Coflow* coflow;
    double priority_sec;
    std::vector<Flow*> flows;
  };

  void maybe_start_next();
  void run_next_slot();
  void on_circuit_up();
  void finish_slot();

  Simulator& sim_;
  Network& net_;
  std::map<CoflowId, Entry> queue_;
  std::vector<CoflowId> order_;
  CoflowId active_ = CoflowId::invalid();
  // Current slot state.
  std::vector<Flow*> slot_flows_;
  Duration slot_duration_ = Duration::zero();
  std::size_t circuits_ready_ = 0;
  bool slot_running_ = false;
  bool start_scheduled_ = false;
  std::int64_t slots_executed_ = 0;
};

}  // namespace cosched
