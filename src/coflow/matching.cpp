#include "coflow/matching.h"

#include <limits>
#include <queue>

#include "common/check.h"
#include "obs/profile.h"

namespace cosched {

BipartiteGraph::BipartiteGraph(std::size_t num_left, std::size_t num_right)
    : adj_(num_left), num_right_(num_right) {}

void BipartiteGraph::add_edge(std::size_t left, std::size_t right) {
  COSCHED_CHECK(left < adj_.size());
  COSCHED_CHECK(right < num_right_);
  adj_[left].push_back(right);
}

namespace {

constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
constexpr std::size_t kNil = MatchingResult::kUnmatched;

class HopcroftKarp {
 public:
  explicit HopcroftKarp(const BipartiteGraph& g)
      : g_(g),
        match_left_(g.num_left(), kNil),
        match_right_(g.num_right(), kNil),
        dist_(g.num_left(), kInf) {}

  MatchingResult run() {
    std::size_t matched = 0;
    while (bfs()) {
      for (std::size_t l = 0; l < g_.num_left(); ++l) {
        if (match_left_[l] == kNil && dfs(l)) ++matched;
      }
    }
    MatchingResult result;
    result.match_left = std::move(match_left_);
    result.match_right = std::move(match_right_);
    result.size = matched;
    return result;
  }

 private:
  // Layered BFS from free left vertices; returns true if an augmenting
  // path exists.
  bool bfs() {
    std::queue<std::size_t> q;
    for (std::size_t l = 0; l < g_.num_left(); ++l) {
      if (match_left_[l] == kNil) {
        dist_[l] = 0;
        q.push(l);
      } else {
        dist_[l] = kInf;
      }
    }
    bool found = false;
    while (!q.empty()) {
      const std::size_t l = q.front();
      q.pop();
      for (std::size_t r : g_.neighbors(l)) {
        const std::size_t next = match_right_[r];
        if (next == kNil) {
          found = true;
        } else if (dist_[next] == kInf) {
          dist_[next] = dist_[l] + 1;
          q.push(next);
        }
      }
    }
    return found;
  }

  bool dfs(std::size_t l) {
    for (std::size_t r : g_.neighbors(l)) {
      const std::size_t next = match_right_[r];
      if (next == kNil || (dist_[next] == dist_[l] + 1 && dfs(next))) {
        match_left_[l] = r;
        match_right_[r] = l;
        return true;
      }
    }
    dist_[l] = kInf;
    return false;
  }

  const BipartiteGraph& g_;
  std::vector<std::size_t> match_left_;
  std::vector<std::size_t> match_right_;
  std::vector<std::size_t> dist_;
};

}  // namespace

MatchingResult maximum_bipartite_matching(const BipartiteGraph& graph) {
  COSCHED_PROF_SCOPE("matching.hopcroft_karp");
  return HopcroftKarp(graph).run();
}

}  // namespace cosched
