// The Coflow-completion-time lower bound for OCS transfer
// (Section II-C of the paper).
//
//   t_ij = C_ij / BW_OCS + delta          (C_ij > 0)
//   T(C) = max( max_i sum_j t_ij , max_j sum_i t_ij )
//
// Each output (input) port can serve one circuit at a time and every flow
// pays at least one reconfiguration, so no schedule can beat T(C).
#pragma once

#include "coflow/traffic_matrix.h"
#include "common/units.h"

namespace cosched {

/// Minimum time to transfer a single flow of `size` over the OCS.
[[nodiscard]] Duration ocs_flow_time(DataSize size, Bandwidth bw,
                                     Duration delta);

/// The lower bound T(C). Zero for an empty matrix.
[[nodiscard]] Duration cct_lower_bound(const TrafficMatrix& matrix,
                                       Bandwidth bw, Duration delta);

}  // namespace cosched
