// The Coflow-completion-time lower bound for OCS transfer
// (Section II-C of the paper).
//
//   t_ij = C_ij / BW_OCS + delta          (C_ij > 0)
//   T(C) = max( max_i sum_j t_ij , max_j sum_i t_ij )
//
// Each output (input) port can serve one circuit at a time and every flow
// pays at least one reconfiguration, so no schedule can beat T(C).
#pragma once

#include <cstdint>
#include <functional>

#include "coflow/traffic_matrix.h"
#include "common/units.h"

namespace cosched {

/// Minimum time to transfer a single flow of `size` over the OCS.
[[nodiscard]] Duration ocs_flow_time(DataSize size, Bandwidth bw,
                                     Duration delta);

/// The lower bound T(C). Zero for an empty matrix.
///
/// This free function is the *legacy* (and ocs:1) bound: one circuit per
/// rack pair, delta per setup. Fabrics with different circuit models
/// override Fabric::cct_lower_bound instead (docs/FABRICS.md); planners
/// reach whichever applies through a CctBoundFn.
[[nodiscard]] Duration cct_lower_bound(const TrafficMatrix& matrix,
                                       Bandwidth bw, Duration delta);

/// Which T(C) the *planner* (PSRT/SBS) consults. kFabric routes through
/// Fabric::cct_lower_bound — the default, and the bug fix this enum guards:
/// the pre-fabric-aware planner charged the one-circuit-per-pair formula on
/// every fabric. kLegacy is the escape hatch (--bound=legacy) that restores
/// the fabric-oblivious planner for A/B comparison; recorded metrics and
/// circuit-scheduler priorities stay fabric-aware in both modes, so a
/// run_report diff between the modes isolates the placement delta.
enum class CctBoundMode : std::uint8_t { kFabric, kLegacy };

[[nodiscard]] constexpr const char* to_string(CctBoundMode m) {
  return m == CctBoundMode::kFabric ? "fabric" : "legacy";
}

/// A bound evaluator a planner can call without knowing which fabric (or
/// escape hatch) is behind it.
using CctBoundFn = std::function<Duration(const TrafficMatrix&)>;

/// The legacy one-circuit-per-pair T(C) as a CctBoundFn.
[[nodiscard]] inline CctBoundFn legacy_cct_bound(Bandwidth bw,
                                                 Duration delta) {
  return [bw, delta](const TrafficMatrix& matrix) {
    return cct_lower_bound(matrix, bw, delta);
  };
}

}  // namespace cosched
