// Sunflow [18]: shortest-coflow-first, non-preemptive circuit scheduling.
//
// Coflows are prioritized by their CCT lower bound T(C), computed when the
// coflow is first submitted (smaller bound = higher priority). An
// allocation pass walks coflows in priority order and, for every pending
// flow whose source output port and destination input port are both free
// on some plane, sets up a circuit. A circuit is held non-preemptively
// until its flow drains; reconfiguration stalls only the two ports
// involved (not-all-stop). Lower-priority coflows may use ports the
// higher-priority coflows leave idle (work conservation).
//
// The scheduler allocates across the planes of a Fabric (src/net/fabric.h).
// On a single-plane fabric — the paper's OCS — the per-plane loop runs its
// body exactly once, executing the pre-seam code sequence bit for bit. On
// ocs:K it matches each coflow against every available plane in plane
// order, so one rack pair can carry up to K simultaneous circuits (one per
// plane) from different coflows. Port reservations (a higher-priority
// coflow's unmet demand) are plane-wide: the head coflow wants *a* circuit
// for that pair, and holding the pair on all planes is what keeps
// shortest-coflow-first strict.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "coflow/circuit_scheduler.h"
#include "net/fabric.h"
#include "simcore/simulator.h"

namespace cosched {

struct Observability;

class SunflowScheduler : public CircuitScheduler {
 public:
  SunflowScheduler(Simulator& sim, Fabric& fabric);

  void submit(Coflow& coflow, Flow& flow) override;
  void demand_added(Flow& flow) override;
  [[nodiscard]] std::size_t pending_flows() const override;

  /// Transfers currently holding a circuit (diagnostics).
  [[nodiscard]] std::size_t active_transfers() const {
    return active_.size();
  }

  /// Coflows with pending or active circuit demand (diagnostics).
  [[nodiscard]] std::size_t active_coflows() const { return entries_.size(); }

  /// Bytes still to drain across pending and circuit-held flows.
  [[nodiscard]] DataSize bytes_in_flight() const;

  /// Fault injection (fabric outage): abort every queued and in-flight
  /// circuit transfer. Mid-circuit flows are settled first — the bits they
  /// already drained are credited to the fabric's accounting — and their
  /// circuits torn down (including circuits still reconfiguring). The
  /// returned flows are incomplete and unrouted as far as this scheduler is
  /// concerned; the caller re-routes them (onto the EPS). Deterministic
  /// order: circuit holders by flow id, then queued flows by coflow
  /// priority.
  [[nodiscard]] std::vector<Flow*> evict_all();

  /// Plane-scoped outage: abort only the transfers holding circuits on
  /// `plane` (flow-id order). Queued flows stay queued — the remaining
  /// planes can still serve them.
  [[nodiscard]] std::vector<Flow*> evict_plane(std::int32_t plane);

  /// Re-run the allocation pass (a downed plane came back).
  void kick() { request_allocation_pass(); }

  /// Attach tracing + decision logging; null (the default) disables both.
  void set_observability(Observability* obs) { obs_ = obs; }

  /// Bits settled out of in-flight transfers (mid-transfer demand growth)
  /// but not yet credited to the fabric's accounting — completion credits
  /// whole flows, so settled bits stay uncredited until the flow completes
  /// or is evicted. The invariant auditor adds this term to its
  /// conservation identity; zero whenever no transfer is mid-flight.
  [[nodiscard]] double uncredited_settled_bits() const {
    return uncredited_settled_bits_;
  }

  /// Internal coherence, re-derived from first principles: every active
  /// transfer sits on an available plane, and the planes' port states sum
  /// to exactly the transfers in each state (connected ports ==
  /// transferring flows, reconfiguring out-ports == reconfiguring flows).
  /// Empty string = coherent. Only meaningful while this scheduler is the
  /// sole driver of the fabric's planes (the simulation driver's setup).
  [[nodiscard]] std::string self_check() const;

 private:
  enum class TransferState { kReconfiguring, kTransferring };

  struct ActiveTransfer {
    Flow* flow;
    TransferState state = TransferState::kReconfiguring;
    SimTime last_update = SimTime::zero();
    /// Bits settled during this transfer before its completion/eviction
    /// (demand_added settle points). Needed so eviction can credit the
    /// whole transfer, not just the span since the last settle.
    double settled_bits = 0.0;
    /// Which fabric plane holds this transfer's circuit.
    std::int32_t plane = 0;
  };

  struct CoflowEntry {
    Coflow* coflow;
    double priority_sec;  // T(C) at first submit; smaller = higher priority
    std::vector<Flow*> pending;
  };

  void request_allocation_pass();
  void allocation_pass();
  /// One coflow x one plane: match the coflow's pending flows against the
  /// plane's free ports and start the matched transfers. Returns the
  /// eligibility scan's outcome so the caller can skip empty planes.
  void match_on_plane(CoflowId cid, CoflowEntry& entry, std::int32_t plane);
  void start_transfer(FlowId id);
  void on_transfer_complete(FlowId id);
  /// Shared eviction body: settle, credit, tear down, and collect one
  /// active transfer (the map entry is erased by the caller).
  void evict_transfer(ActiveTransfer& at);

  Simulator& sim_;
  Fabric& fabric_;
  std::map<CoflowId, CoflowEntry> entries_;
  /// Coflow ids in priority order (priority, id) — deterministic.
  std::vector<CoflowId> order_;
  std::map<FlowId, ActiveTransfer> active_;
  /// Circuit bytes already credited per flow, so a flow that completes,
  /// gets reopened by late demand, and rides the fabric again credits only
  /// the delta on its second completion instead of double-counting the
  /// first transfer (the size is cumulative).
  std::map<FlowId, DataSize> credited_;
  double uncredited_settled_bits_ = 0.0;
  bool pass_scheduled_ = false;
  Observability* obs_ = nullptr;

  // ----- allocation-pass scratch (flat, reused across passes) -------------
  // The pass runs millions of times at 100k-job scale and node-based
  // set/map scratch dominated its cost; these per-rack arrays replace them
  // with identical iteration order (first-seen rack order, same edge
  // order), so the matching — and therefore the simulation — is
  // bit-identical. Generation stamps avoid clearing per coflow; contents
  // are meaningless between passes and carry no scheduling state.
  std::vector<char> reserved_out_;
  std::vector<char> reserved_in_;
  std::vector<std::uint64_t> src_seen_;
  std::vector<std::uint64_t> dst_seen_;
  std::vector<std::size_t> src_slot_;
  std::vector<std::size_t> dst_slot_;
  std::uint64_t scratch_gen_ = 0;
  std::vector<RackId> srcs_;
  std::vector<RackId> dsts_;
  /// srcs_ index -> (dsts_ index, flow) edges, grouped by construction.
  std::vector<std::vector<std::pair<std::size_t, Flow*>>> adj_;
};

}  // namespace cosched
