// Sunflow [18]: shortest-coflow-first, non-preemptive circuit scheduling.
//
// Coflows are prioritized by their CCT lower bound T(C), computed when the
// coflow is first submitted (smaller bound = higher priority). An
// allocation pass walks coflows in priority order and, for every pending
// flow whose source output port and destination input port are both free,
// sets up a circuit. A circuit is held non-preemptively until its flow
// drains; reconfiguration stalls only the two ports involved
// (not-all-stop). Lower-priority coflows may use ports the higher-priority
// coflows leave idle (work conservation).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "coflow/circuit_scheduler.h"
#include "net/network.h"
#include "simcore/simulator.h"

namespace cosched {

struct Observability;

class SunflowScheduler : public CircuitScheduler {
 public:
  SunflowScheduler(Simulator& sim, Network& net);

  void submit(Coflow& coflow, Flow& flow) override;
  void demand_added(Flow& flow) override;
  [[nodiscard]] std::size_t pending_flows() const override;

  /// Transfers currently holding a circuit (diagnostics).
  [[nodiscard]] std::size_t active_transfers() const {
    return active_.size();
  }

  /// Coflows with pending or active OCS demand (diagnostics).
  [[nodiscard]] std::size_t active_coflows() const { return entries_.size(); }

  /// Bytes still to drain across pending and circuit-held flows.
  [[nodiscard]] DataSize bytes_in_flight() const;

  /// Fault injection (OCS outage): abort every queued and in-flight OCS
  /// transfer. Mid-circuit flows are settled first — the bits they already
  /// drained are credited to the network's OCS accounting — and their
  /// circuits torn down (including circuits still reconfiguring). The
  /// returned flows are incomplete and unrouted as far as this scheduler is
  /// concerned; the caller re-routes them (onto the EPS). Deterministic
  /// order: circuit holders by flow id, then queued flows by coflow
  /// priority.
  [[nodiscard]] std::vector<Flow*> evict_all();

  /// Attach tracing + decision logging; null (the default) disables both.
  void set_observability(Observability* obs) { obs_ = obs; }

  /// Bits settled out of in-flight transfers (mid-transfer demand growth)
  /// but not yet credited to the network's OCS accounting — completion
  /// credits whole flows, so settled bits stay uncredited until the flow
  /// completes or is evicted. The invariant auditor adds this term to its
  /// conservation identity; zero whenever no transfer is mid-flight.
  [[nodiscard]] double uncredited_settled_bits() const {
    return uncredited_settled_bits_;
  }

 private:
  enum class TransferState { kReconfiguring, kTransferring };

  struct ActiveTransfer {
    Flow* flow;
    TransferState state = TransferState::kReconfiguring;
    SimTime last_update = SimTime::zero();
    /// Bits settled during this transfer before its completion/eviction
    /// (demand_added settle points). Needed so eviction can credit the
    /// whole transfer, not just the span since the last settle.
    double settled_bits = 0.0;
  };

  struct CoflowEntry {
    Coflow* coflow;
    double priority_sec;  // T(C) at first submit; smaller = higher priority
    std::vector<Flow*> pending;
  };

  void request_allocation_pass();
  void allocation_pass();
  void start_transfer(FlowId id);
  void on_transfer_complete(FlowId id);

  Simulator& sim_;
  Network& net_;
  std::map<CoflowId, CoflowEntry> entries_;
  /// Coflow ids in priority order (priority, id) — deterministic.
  std::vector<CoflowId> order_;
  std::map<FlowId, ActiveTransfer> active_;
  /// OCS bytes already credited per flow, so a flow that completes, gets
  /// reopened by late demand, and rides the OCS again credits only the
  /// delta on its second completion instead of double-counting the first
  /// transfer (the size is cumulative).
  std::map<FlowId, DataSize> credited_;
  double uncredited_settled_bits_ = 0.0;
  bool pass_scheduled_ = false;
  Observability* obs_ = nullptr;

  // ----- allocation-pass scratch (flat, reused across passes) -------------
  // The pass runs millions of times at 100k-job scale and node-based
  // set/map scratch dominated its cost; these per-rack arrays replace them
  // with identical iteration order (first-seen rack order, same edge
  // order), so the matching — and therefore the simulation — is
  // bit-identical. Generation stamps avoid clearing per coflow; contents
  // are meaningless between passes and carry no scheduling state.
  std::vector<char> reserved_out_;
  std::vector<char> reserved_in_;
  std::vector<std::uint64_t> src_seen_;
  std::vector<std::uint64_t> dst_seen_;
  std::vector<std::size_t> src_slot_;
  std::vector<std::size_t> dst_slot_;
  std::uint64_t scratch_gen_ = 0;
  std::vector<RackId> srcs_;
  std::vector<RackId> dsts_;
  /// srcs_ index -> (dsts_ index, flow) edges, grouped by construction.
  std::vector<std::vector<std::pair<std::size_t, Flow*>>> adj_;
};

}  // namespace cosched
