// Sparse rack-to-rack traffic matrix C = (C_ij) describing one Coflow.
//
// Entries are keyed (source rack, destination rack); iteration order is
// deterministic (std::map). Only cross-rack demand belongs in the matrix —
// intra-rack bytes never touch the OCS and are excluded by callers.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace cosched {

class TrafficMatrix {
 public:
  using Key = std::pair<RackId, RackId>;
  using EntryMap = std::map<Key, DataSize>;

  /// Add demand from src to dst (accumulates into an existing entry).
  void add(RackId src, RackId dst, DataSize size);

  [[nodiscard]] DataSize at(RackId src, RackId dst) const;
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t num_entries() const { return entries_.size(); }
  [[nodiscard]] DataSize total() const;

  [[nodiscard]] DataSize row_sum(RackId src) const;
  [[nodiscard]] DataSize col_sum(RackId dst) const;
  [[nodiscard]] std::size_t row_degree(RackId src) const;
  [[nodiscard]] std::size_t col_degree(RackId dst) const;

  /// Distinct source racks, ascending.
  [[nodiscard]] std::vector<RackId> sources() const;
  /// Distinct destination racks, ascending.
  [[nodiscard]] std::vector<RackId> destinations() const;

  [[nodiscard]] const EntryMap& entries() const { return entries_; }

 private:
  EntryMap entries_;
};

}  // namespace cosched
