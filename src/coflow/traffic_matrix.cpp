#include "coflow/traffic_matrix.h"

#include <set>

#include "common/check.h"

namespace cosched {

void TrafficMatrix::add(RackId src, RackId dst, DataSize size) {
  COSCHED_CHECK(src.valid() && dst.valid());
  COSCHED_CHECK(size >= DataSize::zero());
  if (size.is_zero()) return;
  entries_[{src, dst}] += size;
}

DataSize TrafficMatrix::at(RackId src, RackId dst) const {
  auto it = entries_.find({src, dst});
  return it == entries_.end() ? DataSize::zero() : it->second;
}

DataSize TrafficMatrix::total() const {
  DataSize t = DataSize::zero();
  for (const auto& [key, size] : entries_) t += size;
  return t;
}

DataSize TrafficMatrix::row_sum(RackId src) const {
  DataSize t = DataSize::zero();
  for (const auto& [key, size] : entries_) {
    if (key.first == src) t += size;
  }
  return t;
}

DataSize TrafficMatrix::col_sum(RackId dst) const {
  DataSize t = DataSize::zero();
  for (const auto& [key, size] : entries_) {
    if (key.second == dst) t += size;
  }
  return t;
}

std::size_t TrafficMatrix::row_degree(RackId src) const {
  std::size_t n = 0;
  for (const auto& [key, size] : entries_) {
    if (key.first == src) ++n;
  }
  return n;
}

std::size_t TrafficMatrix::col_degree(RackId dst) const {
  std::size_t n = 0;
  for (const auto& [key, size] : entries_) {
    if (key.second == dst) ++n;
  }
  return n;
}

std::vector<RackId> TrafficMatrix::sources() const {
  std::set<RackId> s;
  for (const auto& [key, size] : entries_) s.insert(key.first);
  return {s.begin(), s.end()};
}

std::vector<RackId> TrafficMatrix::destinations() const {
  std::set<RackId> s;
  for (const auto& [key, size] : entries_) s.insert(key.second);
  return {s.begin(), s.end()};
}

}  // namespace cosched
