#include "coflow/fifo_circuit.h"

#include "common/check.h"

namespace cosched {

FifoCircuitScheduler::FifoCircuitScheduler(Simulator& sim, Network& net)
    : sim_(sim), net_(net) {}

void FifoCircuitScheduler::submit(Coflow& coflow, Flow& flow) {
  (void)coflow;
  COSCHED_CHECK(flow.path() == FlowPath::kOcs);
  COSCHED_CHECK(flow.src() != flow.dst());
  pending_.push_back(&flow);
  request_allocation_pass();
}

void FifoCircuitScheduler::demand_added(Flow& flow) {
  auto it = active_.find(flow.id());
  if (it == active_.end() || !it->second.transferring) return;
  flow.settle(sim_.now() - it->second.last_update);
  it->second.last_update = sim_.now();
  flow.completion_event().cancel();
  const Duration eta = Duration::seconds(
      flow.remaining_bits() / net_.ocs().link_rate().in_bits_per_sec());
  FlowId id = flow.id();
  flow.completion_event() =
      sim_.schedule_after(eta, [this, id] { on_transfer_complete(id); });
}

void FifoCircuitScheduler::request_allocation_pass() {
  if (pass_scheduled_) return;
  pass_scheduled_ = true;
  sim_.schedule_after(Duration::zero(), [this] {
    pass_scheduled_ = false;
    allocation_pass();
  });
}

void FifoCircuitScheduler::allocation_pass() {
  for (auto it = pending_.begin(); it != pending_.end();) {
    Flow* flow = *it;
    if (net_.ocs().out_port_free(flow->src()) &&
        net_.ocs().in_port_free(flow->dst())) {
      it = pending_.erase(it);
      active_.emplace(flow->id(), ActiveTransfer{flow, false, sim_.now()});
      FlowId id = flow->id();
      net_.ocs().setup_circuit(flow->src(), flow->dst(),
                               [this, id] { start_transfer(id); });
    } else {
      ++it;
    }
  }
}

void FifoCircuitScheduler::start_transfer(FlowId id) {
  auto it = active_.find(id);
  COSCHED_CHECK(it != active_.end());
  Flow& flow = *it->second.flow;
  it->second.transferring = true;
  it->second.last_update = sim_.now();
  flow.mark_started(sim_.now());
  flow.set_rate(net_.ocs().link_rate());
  const Duration eta = Duration::seconds(
      flow.remaining_bits() / net_.ocs().link_rate().in_bits_per_sec());
  flow.completion_event() =
      sim_.schedule_after(eta, [this, id] { on_transfer_complete(id); });
}

void FifoCircuitScheduler::on_transfer_complete(FlowId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  Flow& flow = *it->second.flow;
  net_.ocs().teardown_circuit(flow.src(), flow.dst());
  net_.note_ocs_bytes(flow.size());
  flow.mark_completed(sim_.now());
  active_.erase(it);
  notify_flow_complete(flow);
  request_allocation_pass();
}

}  // namespace cosched
