// Maximum bipartite matching (Hopcroft–Karp).
//
// Substrate for the Birkhoff–von-Neumann / Inukai clearance decomposition:
// each circuit configuration of the OCS is a matching between output ports
// and input ports, and the clearance algorithm repeatedly extracts perfect
// matchings from the positive entries of a (padded) traffic matrix.
#pragma once

#include <cstdint>
#include <vector>

namespace cosched {

/// Bipartite graph with `num_left` left vertices and `num_right` right
/// vertices, addressed by dense indices.
class BipartiteGraph {
 public:
  BipartiteGraph(std::size_t num_left, std::size_t num_right);

  void add_edge(std::size_t left, std::size_t right);

  [[nodiscard]] std::size_t num_left() const { return adj_.size(); }
  [[nodiscard]] std::size_t num_right() const { return num_right_; }
  [[nodiscard]] const std::vector<std::size_t>& neighbors(
      std::size_t left) const {
    return adj_[left];
  }

 private:
  std::vector<std::vector<std::size_t>> adj_;
  std::size_t num_right_;
};

/// Result of a maximum matching: match_left[l] = matched right vertex or
/// kUnmatched; likewise match_right.
struct MatchingResult {
  static constexpr std::size_t kUnmatched = static_cast<std::size_t>(-1);
  std::vector<std::size_t> match_left;
  std::vector<std::size_t> match_right;
  std::size_t size = 0;
};

/// Hopcroft–Karp: O(E * sqrt(V)).
[[nodiscard]] MatchingResult maximum_bipartite_matching(
    const BipartiteGraph& graph);

}  // namespace cosched
