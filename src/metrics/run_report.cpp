#include "metrics/run_report.h"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "metrics/report.h"
#include "obs/counters.h"

namespace cosched {

namespace {

// Minimal JSON emission. Strings here are scheduler/section/counter names
// ([a-z0-9_.+-]), but escape defensively anyway.
void emit_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Shortest representation that round-trips a double (%.17g is exact; try
// %.15g / %.16g first for readability). JSON has no Inf/NaN — emit null.
void emit_double(std::ostream& os, double v) {
  if (v != v || v == __builtin_huge_val() || v == -__builtin_huge_val()) {
    os << "null";
    return;
  }
  char buf[40];
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  os << buf;
}

void emit_percentiles(std::ostream& os, const PercentileDigest& d) {
  os << "{\"p50\": ";
  emit_double(os, d.p50);
  os << ", \"p90\": ";
  emit_double(os, d.p90);
  os << ", \"p99\": ";
  emit_double(os, d.p99);
  os << ", \"max\": ";
  emit_double(os, d.max);
  os << "}";
}

void emit_phase(std::ostream& os, PerfPhase phase, const PerfPhaseStats& s) {
  os << "    {\"name\": ";
  emit_string(os, to_string(phase));
  os << ", \"calls\": " << s.calls << ", \"total_ns\": " << s.total_ns
     << ", \"max_ns\": " << s.max_ns << ",\n";
  os << "     \"latency_ns\": {\"count\": " << s.latency.count()
     << ", \"min\": " << s.latency.min() << ", \"max\": " << s.latency.max()
     << ", \"mean\": ";
  emit_double(os, s.latency.mean());
  os << ", \"p50\": ";
  emit_double(os, s.latency.p50());
  os << ", \"p90\": ";
  emit_double(os, s.latency.p90());
  os << ", \"p99\": ";
  emit_double(os, s.latency.p99());
  os << "},\n";
  // Histogram as (lo, hi, count) triples for the non-empty buckets only:
  // readers never need the in-memory bucket layout.
  os << "     \"histogram\": [";
  bool first = true;
  for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const std::uint64_t n = s.latency.bucket_count(i);
    if (n == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "[" << LatencyHistogram::bucket_lo(i) << ", "
       << LatencyHistogram::bucket_hi(i) << ", " << n << "]";
  }
  os << "],\n";
  os << "     \"by_size\": [";
  first = true;
  for (std::size_t b = 0; b < PerfPhaseStats::kSizeBuckets; ++b) {
    const PerfPhaseStats::SizeBucket& sb = s.by_size[b];
    if (sb.calls == 0) continue;
    if (!first) os << ",\n                 ";
    first = false;
    os << "{\"size_lo\": " << PerfPhaseStats::size_bucket_lo(b)
       << ", \"size_hi\": " << PerfPhaseStats::size_bucket_hi(b)
       << ", \"calls\": " << sb.calls << ", \"total_ns\": " << sb.total_ns
       << ", \"max_ns\": " << sb.max_ns << ", \"mean_size\": ";
    emit_double(os, static_cast<double>(sb.total_size) /
                        static_cast<double>(sb.calls));
    os << "}";
  }
  os << "]}";
}

}  // namespace

void write_run_report_json(
    std::ostream& os, const RunMetrics& run, const RunReportMeta& meta,
    const PerfSnapshot* perf,
    const std::vector<std::pair<std::string, Profiler::Section>>* profile,
    const CounterRegistry* counters) {
  os << "{\n";
  os << "  \"schema\": ";
  emit_string(os, kRunReportSchema);
  os << ",\n  \"version\": " << kRunReportVersion << ",\n";
  os << "  \"scheduler\": ";
  emit_string(os, run.scheduler);
  os << ",\n  \"seed\": " << run.seed << ",\n";
  os << "  \"config\": {\"jobs\": " << meta.num_jobs
     << ", \"racks\": " << meta.num_racks << "},\n";
  os << "  \"wall_time_sec\": ";
  emit_double(os, meta.wall_time_sec);
  os << ",\n  \"rss_high_water_bytes\": " << meta.rss_high_water_bytes
     << ",\n";

  os << "  \"metrics\": {\n";
  os << "    \"makespan_sec\": ";
  emit_double(os, run.makespan.sec());
  os << ",\n    \"avg_jct_sec\": ";
  emit_double(os, run.avg_jct_sec());
  os << ",\n    \"avg_cct_sec\": ";
  emit_double(os, run.avg_cct_sec());
  os << ",\n    \"avg_jct_heavy_sec\": ";
  emit_double(os, run.avg_jct_sec(true));
  os << ",\n    \"avg_jct_light_sec\": ";
  emit_double(os, run.avg_jct_sec(false));
  os << ",\n    \"avg_cct_heavy_sec\": ";
  emit_double(os, run.avg_cct_sec(true));
  os << ",\n    \"avg_cct_light_sec\": ";
  emit_double(os, run.avg_cct_sec(false));
  os << ",\n    \"jct_percentiles\": ";
  emit_percentiles(os, jct_percentiles(run));
  os << ",\n    \"cct_percentiles\": ";
  emit_percentiles(os, cct_percentiles(run));
  os << ",\n    \"jain_fairness\": ";
  emit_double(os, jain_fairness_index(run));
  os << ",\n    \"ocs_traffic_fraction\": ";
  emit_double(os, run.ocs_traffic_fraction());
  os << ",\n    \"ocs_gb\": ";
  emit_double(os, run.ocs_bytes.in_gigabytes());
  os << ",\n    \"eps_gb\": ";
  emit_double(os, run.eps_bytes.in_gigabytes());
  os << ",\n    \"local_gb\": ";
  emit_double(os, run.local_bytes.in_gigabytes());
  os << ",\n    \"jobs\": " << run.jobs.size()
     << ",\n    \"events_executed\": " << run.events_executed
     << ",\n    \"dispatch_waves\": " << run.dispatch_waves << "\n  },\n";

  os << "  \"faults\": {\"stragglers\": " << run.faults.stragglers
     << ", \"maps_killed\": " << run.faults.maps_killed
     << ", \"reduces_killed\": " << run.faults.reduces_killed
     << ", \"ocs_outages\": " << run.faults.ocs_outages
     << ", \"flows_evicted\": " << run.faults.flows_evicted
     << ", \"ocs_downtime_sec\": ";
  emit_double(os, run.faults.ocs_downtime_sec);
  os << "},\n";

  os << "  \"counters\": {";
  if (counters != nullptr) {
    bool first = true;
    for (const std::string& name : counters->names()) {
      if (!first) os << ", ";
      first = false;
      emit_string(os, name);
      os << ": ";
      emit_double(os, counters->last(name));
    }
  }
  os << "},\n";

  os << "  \"profile\": [";
  if (profile != nullptr) {
    bool first = true;
    for (const auto& [name, s] : *profile) {
      if (!first) os << ",\n";
      if (first) os << "\n";
      first = false;
      os << "    {\"section\": ";
      emit_string(os, name);
      os << ", \"calls\": " << s.calls << ", \"total_ns\": " << s.total_ns
         << ", \"max_ns\": " << s.max_ns << "}";
    }
    if (!first) os << "\n  ";
  }
  os << "],\n";

  os << "  \"phases\": [";
  if (perf != nullptr) {
    for (std::size_t p = 0; p < kPerfPhaseCount; ++p) {
      os << (p == 0 ? "\n" : ",\n");
      emit_phase(os, static_cast<PerfPhase>(p), perf->phases[p]);
    }
    os << "\n  ";
  }
  os << "]\n";
  os << "}\n";
}

}  // namespace cosched
