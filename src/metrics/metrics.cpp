#include "metrics/metrics.h"

#include <cmath>

#include "common/check.h"

namespace cosched {

namespace {

double mean_or_zero(double sum, std::int64_t n) {
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

double RunMetrics::avg_jct_sec() const {
  double sum = 0;
  for (const JobRecord& j : jobs) sum += j.jct.sec();
  return mean_or_zero(sum, static_cast<std::int64_t>(jobs.size()));
}

double RunMetrics::avg_cct_sec() const {
  double sum = 0;
  std::int64_t n = 0;
  for (const JobRecord& j : jobs) {
    if (!j.has_shuffle) continue;
    sum += j.cct.sec();
    ++n;
  }
  return mean_or_zero(sum, n);
}

double RunMetrics::avg_jct_sec(bool shuffle_heavy) const {
  double sum = 0;
  std::int64_t n = 0;
  for (const JobRecord& j : jobs) {
    if (j.shuffle_heavy != shuffle_heavy) continue;
    sum += j.jct.sec();
    ++n;
  }
  return mean_or_zero(sum, n);
}

double RunMetrics::avg_cct_sec(bool shuffle_heavy) const {
  double sum = 0;
  std::int64_t n = 0;
  for (const JobRecord& j : jobs) {
    if (j.shuffle_heavy != shuffle_heavy || !j.has_shuffle) continue;
    sum += j.cct.sec();
    ++n;
  }
  return mean_or_zero(sum, n);
}

double RunMetrics::ocs_traffic_fraction() const {
  const double cross = static_cast<double>(ocs_bytes.in_bytes()) +
                       static_cast<double>(eps_bytes.in_bytes());
  if (cross <= 0.0) return 0.0;
  return static_cast<double>(ocs_bytes.in_bytes()) / cross;
}

void AggregateMetrics::add(const RunMetrics& run) {
  if (repetitions == 0) scheduler = run.scheduler;
  COSCHED_CHECK_MSG(scheduler == run.scheduler,
                    "mixing schedulers in one aggregate");
  ++repetitions;
  makespan_sec.add(run.makespan.sec());
  avg_jct_sec.add(run.avg_jct_sec());
  avg_cct_sec.add(run.avg_cct_sec());
  avg_jct_heavy_sec.add(run.avg_jct_sec(true));
  avg_jct_light_sec.add(run.avg_jct_sec(false));
  avg_cct_heavy_sec.add(run.avg_cct_sec(true));
  avg_cct_light_sec.add(run.avg_cct_sec(false));
  ocs_fraction.add(run.ocs_traffic_fraction());
  tasks_killed.add(static_cast<double>(run.faults.tasks_killed()));
  stragglers.add(static_cast<double>(run.faults.stragglers));
}

double improvement_over(double baseline, double subject) {
  COSCHED_CHECK(baseline != 0.0);
  return std::abs(baseline - subject) / baseline;
}

}  // namespace cosched
