#include "metrics/report.h"

#include <map>
#include <ostream>

#include "common/check.h"
#include "common/stats.h"
#include "obs/observability.h"
#include "obs/perf_monitor.h"
#include "obs/profile.h"

namespace cosched {

namespace {

PercentileDigest digest(std::vector<double> xs) {
  PercentileDigest d;
  if (xs.empty()) return d;
  d.p50 = percentile(xs, 50);
  d.p90 = percentile(xs, 90);
  d.p99 = percentile(xs, 99);
  d.max = percentile(xs, 100);
  return d;
}

}  // namespace

PercentileDigest jct_percentiles(const RunMetrics& run) {
  std::vector<double> xs;
  xs.reserve(run.jobs.size());
  for (const JobRecord& j : run.jobs) xs.push_back(j.jct.sec());
  return digest(std::move(xs));
}

PercentileDigest cct_percentiles(const RunMetrics& run) {
  std::vector<double> xs;
  for (const JobRecord& j : run.jobs) {
    if (j.has_shuffle) xs.push_back(j.cct.sec());
  }
  return digest(std::move(xs));
}

double jain_fairness_index(const RunMetrics& run) {
  std::map<UserId, RunningStat> per_user;
  for (const JobRecord& j : run.jobs) per_user[j.user].add(j.jct.sec());
  if (per_user.empty()) return 1.0;
  double sum = 0, sum_sq = 0;
  for (const auto& [user, stat] : per_user) {
    sum += stat.mean();
    sum_sq += stat.mean() * stat.mean();
  }
  const auto n = static_cast<double>(per_user.size());
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (n * sum_sq);
}

void write_job_timeline_csv(std::ostream& os, const RunMetrics& run) {
  os << "job_id,user,shuffle_heavy,arrival_sec,completion_sec,jct_sec,"
        "cct_sec,shuffle_gb\n";
  for (const JobRecord& j : run.jobs) {
    os << j.id.value() << ',' << j.user.value() << ','
       << (j.shuffle_heavy ? 1 : 0) << ',' << j.arrival.sec() << ','
       << j.completion.sec() << ',' << j.jct.sec() << ','
       << (j.has_shuffle ? j.cct.sec() : 0.0) << ','
       << j.shuffle_bytes.in_gigabytes() << "\n";
  }
  COSCHED_CHECK_MSG(os.good(), "timeline export failed");
}

void print_summary(std::ostream& os, const RunMetrics& run) {
  const PercentileDigest jct = jct_percentiles(run);
  const PercentileDigest cct = cct_percentiles(run);
  os << "scheduler:   " << run.scheduler << "\n"
     << "jobs:        " << run.jobs.size() << "\n"
     << "makespan:    " << run.makespan.sec() << " s\n"
     << "avg JCT:     " << run.avg_jct_sec() << " s  (p50 " << jct.p50
     << ", p90 " << jct.p90 << ", p99 " << jct.p99 << ")\n"
     << "avg CCT:     " << run.avg_cct_sec() << " s  (p50 " << cct.p50
     << ", p90 " << cct.p90 << ", p99 " << cct.p99 << ")\n"
     << "OCS share:   " << 100.0 * run.ocs_traffic_fraction() << " %\n"
     << "fairness:    " << jain_fairness_index(run) << " (Jain, user JCT)\n";
}

void print_obs_summary(std::ostream& os, const Observability& obs) {
  os << "trace events: " << obs.trace.size() << "\n";
  constexpr TraceEventKind kKinds[] = {
      TraceEventKind::kJobArrival,         TraceEventKind::kJobComplete,
      TraceEventKind::kTaskStart,          TraceEventKind::kTaskFinish,
      TraceEventKind::kContainerGrant,     TraceEventKind::kReduceComputeStart,
      TraceEventKind::kCoflowRelease,      TraceEventKind::kFlowRouted,
      TraceEventKind::kFlowComplete,       TraceEventKind::kCircuitSetup,
      TraceEventKind::kCircuitUp,          TraceEventKind::kCircuitTeardown,
      TraceEventKind::kDeadlockBreak,
  };
  for (TraceEventKind kind : kKinds) {
    const std::int64_t n = obs.trace.count(kind);
    if (n > 0) os << "  " << to_string(kind) << ": " << n << "\n";
  }
  os << "decisions: " << obs.decisions.placements().size() << " placements, "
     << obs.decisions.grants().size() << " grants, "
     << obs.decisions.circuits().size() << " circuits\n";
  if (!obs.counters.rows().empty()) {
    os << "counters (" << obs.counters.rows().size()
       << " samples, last values):\n";
    for (const std::string& name : obs.counters.names()) {
      // Per-rack occupancy would flood the summary; the CSV keeps it.
      if (name.rfind("cluster.rack_used.", 0) == 0) continue;
      os << "  " << name << ": " << obs.counters.last(name) << "\n";
    }
  }
  // Prefer the per-run capture: the global registry accumulates across
  // every repetition (and every scheduler) the process ran, so its totals
  // conflate runs; obs.profile covers exactly the observed run.
  if (!obs.profile.empty()) {
    Profiler::write_sections(os, obs.profile);
  } else if (Profiler::enabled()) {
    Profiler::instance().write_summary(os);
  }
  if (!obs.perf.empty()) PerfMonitor::write_summary(os, obs.perf);
}

}  // namespace cosched
