// Reporting helpers on top of RunMetrics: percentile digests, per-user
// fairness, and a CSV timeline export for offline analysis/plotting.
#pragma once

#include <iosfwd>
#include <vector>

#include "metrics/metrics.h"

namespace cosched {

struct Observability;

struct PercentileDigest {
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
};

/// Digest of JCTs (all jobs) in seconds.
[[nodiscard]] PercentileDigest jct_percentiles(const RunMetrics& run);
/// Digest of CCTs (jobs with shuffle) in seconds.
[[nodiscard]] PercentileDigest cct_percentiles(const RunMetrics& run);

/// Jain's fairness index over per-user mean JCT slowdown — 1.0 means every
/// user experienced the same average JCT; lower means skew.
[[nodiscard]] double jain_fairness_index(const RunMetrics& run);

/// CSV export: one line per job
/// (job_id,user,heavy,arrival,completion,jct,cct,shuffle_gb).
void write_job_timeline_csv(std::ostream& os, const RunMetrics& run);

/// Human-readable one-run summary.
void print_summary(std::ostream& os, const RunMetrics& run);

/// Trace-aware addendum: per-kind trace event counts, decision tallies,
/// last counter samples, and the wall-clock profile when enabled.
void print_obs_summary(std::ostream& os, const Observability& obs);

}  // namespace cosched
