// RunReport: one schema-versioned JSON document per run, merging the
// result metrics (RunMetrics + derived digests), fault accounting, final
// counter values, the flat wall-clock profile, and the PerfMonitor's
// per-phase latency histograms with their size attribution.
//
// This is the scale campaign's unit of record: `bench_scale --report-out=`
// writes one, CI archives it, and `tools/run_report.py` validates,
// pretty-prints, and diffs them. The schema is append-only — bump
// kRunReportVersion when a field's meaning changes, add fields freely.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "metrics/metrics.h"
#include "obs/perf_monitor.h"
#include "obs/profile.h"

namespace cosched {

class CounterRegistry;

inline constexpr const char* kRunReportSchema = "cosched.run_report";
/// v2 added metrics.dispatch_waves (the peak-RSS high-water mark has been
/// top-level since v1); tools/run_report.py accepts both versions.
inline constexpr int kRunReportVersion = 2;

/// Run-level context that RunMetrics does not carry: workload/topology
/// shape and the wall-clock envelope of the run.
struct RunReportMeta {
  std::int64_t num_jobs = 0;
  std::int32_t num_racks = 0;
  double wall_time_sec = 0.0;
  std::uint64_t rss_high_water_bytes = 0;
};

/// Serialize one run as a RunReport JSON document. `perf`, `profile`, and
/// `counters` are optional — null/empty inputs produce empty sections, so
/// a dark run still yields a valid (if sparse) report. The output is
/// deterministic for identical inputs: fixed key order, non-empty
/// histogram buckets as (lo, hi, count) triples, round-trip double
/// formatting.
void write_run_report_json(
    std::ostream& os, const RunMetrics& run, const RunReportMeta& meta,
    const PerfSnapshot* perf = nullptr,
    const std::vector<std::pair<std::string, Profiler::Section>>* profile =
        nullptr,
    const CounterRegistry* counters = nullptr);

}  // namespace cosched
