// Result records for one simulation run, and aggregation across repeated
// runs — the quantities the paper's evaluation reports: makespan, average
// job completion time, average coflow completion time, OCS/EPS traffic
// split, with shuffle-heavy / non-shuffle-heavy breakdowns.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"
#include "common/units.h"
#include "faults/fault_stats.h"

namespace cosched {

struct JobRecord {
  JobId id;
  UserId user;
  bool shuffle_heavy = false;
  bool has_shuffle = false;  // produced at least one shuffle flow
  SimTime arrival = SimTime::zero();
  SimTime completion = SimTime::zero();
  Duration jct = Duration::zero();
  Duration cct = Duration::zero();  // valid iff has_shuffle
  DataSize shuffle_bytes;
  /// Total map output credited to racks. Always exactly
  /// num_maps * map_output_size: a map attempt killed and re-executed
  /// regenerates its output once, never zero or twice.
  DataSize map_output_bytes;

  /// Task-phase timing (for invariant checks and phase breakdowns).
  SimTime last_map_completion = SimTime::zero();
  /// Infinity when the job has no reduce tasks.
  SimTime first_reduce_placement = SimTime::infinity();
  /// Lower bound T(C) of the final cross-rack matrix at OCS rate (valid
  /// iff has_shuffle).
  Duration cct_lower_bound = Duration::zero();
  /// True if every cross-rack shuffle flow used the circuit fabric.
  /// Same-rack (kLocal) flows are exempt: they never enter the cross-rack
  /// matrix that cct_lower_bound is computed over, so they cannot
  /// invalidate the bound — only EPS detours (mice, evictions) can.
  bool all_flows_ocs = false;
};

struct RunMetrics {
  std::string scheduler;
  std::uint64_t seed = 0;

  Duration makespan = Duration::zero();
  std::vector<JobRecord> jobs;

  DataSize ocs_bytes;
  DataSize eps_bytes;
  DataSize local_bytes;

  std::uint64_t events_executed = 0;
  /// Dispatch waves that actually scanned (pending work existed at entry).
  /// Deterministic and engine-invariant: identical across rate, scheduler,
  /// and dispatch engines — `run_report.py diff` pins it like
  /// events_executed.
  std::uint64_t dispatch_waves = 0;

  /// Fault accounting (all zero when the run had an empty fault plan).
  FaultSummary faults;

  // ---- derived ------------------------------------------------------------
  [[nodiscard]] double avg_jct_sec() const;
  [[nodiscard]] double avg_cct_sec() const;
  /// Averages restricted to shuffle-heavy (or non-heavy) jobs.
  [[nodiscard]] double avg_jct_sec(bool shuffle_heavy) const;
  [[nodiscard]] double avg_cct_sec(bool shuffle_heavy) const;
  /// Fraction of cross-rack bytes that used the OCS.
  [[nodiscard]] double ocs_traffic_fraction() const;
};

/// Mean of a metric over repetitions.
struct AggregateMetrics {
  std::string scheduler;
  std::size_t repetitions = 0;
  RunningStat makespan_sec;
  RunningStat avg_jct_sec;
  RunningStat avg_cct_sec;
  RunningStat avg_jct_heavy_sec;
  RunningStat avg_jct_light_sec;
  RunningStat avg_cct_heavy_sec;
  RunningStat avg_cct_light_sec;
  RunningStat ocs_fraction;
  RunningStat tasks_killed;
  RunningStat stragglers;

  void add(const RunMetrics& run);
};

/// The paper's comparison metric (Equation 10):
/// |baseline - subject| / baseline.
[[nodiscard]] double improvement_over(double baseline, double subject);

}  // namespace cosched
