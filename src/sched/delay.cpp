#include "sched/delay.h"

#include "obs/perf_monitor.h"
#include "sched/fairness.h"

namespace cosched {

void DelayScheduler::on_job_submitted(Job& job, SchedContext& ctx) {
  job.set_block_placement(place_blocks_random(
      job.spec().num_maps, ctx.topo.num_racks, opts_.replication, ctx.rng));
  skips_.erase(job.id());
}

std::optional<TaskChoice> DelayScheduler::pick_task(RackId rack,
                                                    SchedContext& ctx) {
  PerfScope perf(PerfPhase::kSchedPickTask);
  perf.set_size(ctx.active_jobs.size());
  for (UserId user : fair_user_order(ctx.active_jobs)) {
    for (Job* job : ctx.active_jobs) {
      if (job->spec().user != user) continue;
      // Data-local map: take it and reset the job's skip budget.
      if (Task* t = job->next_pending_map_local(rack)) {
        skips_[job->id()] = 0;
        return TaskChoice{job, t};
      }
      if (reduces_eligible(*job, ctx)) {
        if (Task* t = job->next_pending_reduce()) {
          return TaskChoice{job, t};
        }
      }
      // Non-local map: only after the job has waited out its delay.
      if (job->next_pending_map_any() != nullptr) {
        std::int32_t& skips = skips_[job->id()];
        if (skips >= opts_.max_skips) {
          skips = 0;
          return TaskChoice{job, job->next_pending_map_any()};
        }
        ++skips;  // decline this offer; try the next job
      }
    }
  }
  return std::nullopt;
}

}  // namespace cosched
