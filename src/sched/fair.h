// The Hadoop Fair scheduler [13] — the paper's primary baseline.
//
// Input blocks are scattered randomly over the whole cluster (conventional
// HDFS). Containers go to the most under-served user; within a user, jobs
// in arrival order. On a given rack the scheduler prefers a data-local map,
// then an eligible reduce (slow-start overlap), then any map (paying a
// remote-read penalty). No attempt is made to aggregate traffic — exactly
// the behavior the paper criticizes in Section I.
#pragma once

#include "sched/scheduler.h"

namespace cosched {

class FairScheduler : public JobScheduler {
 public:
  /// HDFS replication factor (paper assumes the Hadoop default of 3).
  explicit FairScheduler(std::int32_t replication = 3)
      : replication_(replication) {}

  [[nodiscard]] std::string name() const override { return "fair"; }
  [[nodiscard]] bool defers_reduces() const override { return false; }

  void on_job_submitted(Job& job, SchedContext& ctx) override;
  std::optional<TaskChoice> pick_task(RackId rack, SchedContext& ctx) override;
  /// pick_task only scans job/cluster state; a decline mutates nothing.
  [[nodiscard]] bool declines_are_stable() const override { return true; }

 private:
  std::int32_t replication_;
};

}  // namespace cosched
