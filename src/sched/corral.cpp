#include "sched/corral.h"

#include <algorithm>
#include <cmath>

#include "obs/perf_monitor.h"
#include "sched/fairness.h"

namespace cosched {

void CorralScheduler::on_job_submitted(Job& job, SchedContext& ctx) {
  // Size the rack set to the job's peak parallel task demand.
  const double slots_budget =
      opts_.occupancy * static_cast<double>(ctx.topo.slots_per_rack());
  const auto peak_tasks = static_cast<double>(
      std::max(job.spec().num_maps, job.spec().num_reduces));
  const auto want = static_cast<std::int32_t>(
      std::ceil(peak_tasks / std::max(slots_budget, 1.0)));
  const std::int32_t set_size =
      std::clamp(want, 1, ctx.topo.num_racks);

  // Pick the least-loaded racks right now (ties by id for determinism).
  std::vector<RackId> racks;
  racks.reserve(static_cast<std::size_t>(ctx.topo.num_racks));
  for (std::int32_t r = 0; r < ctx.topo.num_racks; ++r) {
    racks.emplace_back(r);
  }
  std::stable_sort(racks.begin(), racks.end(), [&](RackId a, RackId b) {
    return ctx.cluster.used_slots(a) < ctx.cluster.used_slots(b);
  });
  racks.resize(static_cast<std::size_t>(set_size));

  job.set_block_placement(place_blocks_on_racks(
      job.spec().num_maps, racks, opts_.replication, ctx.rng));
  job.set_preferred_racks(std::move(racks));
}

std::optional<TaskChoice> CorralScheduler::pick_task(RackId rack,
                                                     SchedContext& ctx) {
  PerfScope perf(PerfPhase::kSchedPickTask);
  perf.set_size(ctx.active_jobs.size());
  for (UserId user : fair_user_order(ctx.active_jobs)) {
    for (Job* job : ctx.active_jobs) {
      if (job->spec().user != user) continue;
      if (!job->rack_preferred(rack)) continue;  // strict confinement
      // Inside its rack set every map is data-local by construction.
      if (Task* t = job->next_pending_map_local(rack)) {
        return TaskChoice{job, t};
      }
      if (reduces_eligible(*job, ctx)) {
        if (Task* t = job->next_pending_reduce()) {
          return TaskChoice{job, t};
        }
      }
      // Non-local (within the set) map: block replicas may not cover every
      // rack of a large set.
      if (Task* t = job->next_pending_map_any()) {
        return TaskChoice{job, t};
      }
    }
  }
  return std::nullopt;
}

}  // namespace cosched
