// Corral [14]-style network-aware scheduler — the paper's second baseline.
//
// Corral plans, per job, a small set of racks sized to the job's task
// demand and confines the job's input data, map tasks, AND reduce tasks to
// that set, eliminating most cross-rack shuffle. (The real Corral solves an
// offline packing problem over recurring jobs; this reconstruction keeps
// its defining behavior — same-rack-set map+reduce placement — which is
// what the paper's comparison exercises.) As the paper notes, this causes
// container contention on the chosen racks and aggregates traffic only
// incidentally, so little of it crosses the elephant threshold.
#pragma once

#include "sched/scheduler.h"

namespace cosched {

class CorralScheduler : public JobScheduler {
 public:
  struct Options {
    std::int32_t replication = 3;
    /// Target fraction of a rack's containers a job may plan to occupy;
    /// rack-set size = ceil(peak task demand / (occupancy * slots/rack)).
    double occupancy = 0.25;
  };

  CorralScheduler() : CorralScheduler(Options{}) {}
  explicit CorralScheduler(Options opts) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "corral"; }
  [[nodiscard]] bool defers_reduces() const override { return false; }

  void on_job_submitted(Job& job, SchedContext& ctx) override;
  std::optional<TaskChoice> pick_task(RackId rack, SchedContext& ctx) override;
  /// pick_task only scans job/cluster state; a decline mutates nothing.
  [[nodiscard]] bool declines_are_stable() const override { return true; }

 private:
  Options opts_;
};

}  // namespace cosched
