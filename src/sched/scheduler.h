// The job-scheduler interface.
//
// A JobScheduler makes three kinds of decisions, invoked by the simulation
// driver at well-defined points:
//
//   1. on_job_submitted — input data placement and any per-job planning
//      (Co-scheduler computes the R_map guideline here);
//   2. on_maps_completed — reduce planning once the map output distribution
//      is known (Co-scheduler's PSRT + SBS run here);
//   3. pick_task — container-grant time: one free container on one rack is
//      offered and the scheduler returns the task to run in it (or nothing).
//
// Schedulers also declare their reduce-phase semantics: baselines overlap
// reduces with maps (Hadoop slow-start), Co-scheduler defers reduces until
// all maps finish (Section IV-A of the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/job.h"
#include "cluster/trem_estimator.h"
#include "coflow/cct_bound.h"
#include "common/rng.h"
#include "net/topology.h"
#include "simcore/simulator.h"

namespace cosched {

class Fabric;
struct Observability;

/// Which decision engine a scheduler runs. kIncremental is the production
/// fast path (cached candidate lists, memoized SBS scans); kReference is
/// the naive per-event recompute retained as the oracle — the fuzzer and
/// the determinism suite cross-check the two bit for bit, mirroring
/// EpsFabric::RateEngine from the network layer.
enum class SchedEngine : std::uint8_t { kIncremental, kReference };

[[nodiscard]] constexpr const char* to_string(SchedEngine e) {
  return e == SchedEngine::kIncremental ? "incremental" : "reference";
}

/// Everything a scheduler may consult when deciding.
struct SchedContext {
  SimTime now;
  const HybridTopology& topo;
  Cluster& cluster;
  /// Jobs that have arrived and not yet completed, in arrival order.
  const std::vector<Job*>& active_jobs;
  AvailabilityOracle& availability;
  Rng& rng;
  /// Fraction of a job's maps that must finish before an overlapping
  /// scheduler may place its reduces (Hadoop slow-start; baselines only).
  double reduce_slowstart = 0.05;
  /// Optional tracing/decision-log bundle; null when not observing.
  Observability* obs = nullptr;
  /// Whether the availability oracle's T_rem estimates carry multiplicative
  /// noise (Figure 7's knob or a trem-noise fault clause). The noise draws
  /// lazily per task from one RNG stream, so estimate *values* depend on
  /// the global order of first touches; a fast path that would reorder
  /// those touches must fall back to reference-order queries when this is
  /// set (see explore_schedules_incremental).
  bool availability_noisy = false;
  /// The circuit fabric whose cct_lower_bound the planner consults when
  /// cct_bound == kFabric. Null (hand-built test contexts) falls back to
  /// the legacy ocs:1 bound over topo.ocs_link / topo.ocs_reconfig_delay —
  /// identical to the fabric bound on the default fabric.
  const Fabric* fabric = nullptr;
  /// Which T(C) the planner charges (SimConfig::cct_bound; --bound=).
  CctBoundMode cct_bound = CctBoundMode::kFabric;
};

struct TaskChoice {
  Job* job;
  Task* task;
  /// OCAS priority class (1..6) that selected the task; -1 for schedulers
  /// without priority classes.
  std::int32_t priority_class = -1;
};

class JobScheduler {
 public:
  virtual ~JobScheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// If true, the driver only lets this scheduler place a job's reduce
  /// tasks after all of its maps completed, and releases the job's shuffle
  /// as one coflow after the last reduce container is granted.
  [[nodiscard]] virtual bool defers_reduces() const = 0;

  /// Place the job's input blocks (must call job.set_block_placement) and
  /// do any admission-time planning.
  virtual void on_job_submitted(Job& job, SchedContext& ctx) = 0;

  /// Invoked when the job's last map task completes.
  virtual void on_maps_completed(Job& job, SchedContext& ctx) {
    (void)job;
    (void)ctx;
  }

  /// Offer one free container on `rack`. Return the task to run or nullopt.
  virtual std::optional<TaskChoice> pick_task(RackId rack,
                                              SchedContext& ctx) = 0;

  /// Whether a nullopt from pick_task is a pure function of scheduler-
  /// visible state: true promises that re-offering the same rack with no
  /// intervening state change returns nullopt again and that declining has
  /// no observable side effects, so the driver's offer queue may skip the
  /// re-offer outright (DESIGN.md §11). Delay scheduling counts offers —
  /// a decline advances skip budgets — so it keeps the conservative
  /// default. Cache-only mutations (candidate pruning, no-grant memos)
  /// that never change a future outcome do not break stability.
  [[nodiscard]] virtual bool declines_are_stable() const { return false; }

  /// Valid immediately after a pick_task that returned nullopt: true means
  /// the decline was *rack-independent* — the scheduler proved that no rack
  /// could receive a grant at its current state (e.g. the incremental
  /// candidate index is empty), so replaying pick_task on any other rack
  /// before the next state change would return the identical nullopt with
  /// no observable side effects. The offer-queue dispatch engine uses this
  /// to end an all-decline wave after a single pick instead of offering
  /// every free rack (DESIGN.md §11). Only meaningful when
  /// declines_are_stable() is also true; the conservative default is
  /// "rack-dependent".
  [[nodiscard]] virtual bool last_decline_was_global() const { return false; }

  // ----- engine selection ---------------------------------------------------
  /// Select the decision engine. Default is a no-op: schedulers without an
  /// incremental path always run their one (reference) implementation.
  virtual void set_sched_engine(SchedEngine engine) { (void)engine; }
  [[nodiscard]] virtual SchedEngine sched_engine() const {
    return SchedEngine::kReference;
  }

  // ----- state-change notifications (incremental engines) -------------------
  // The driver reports every scheduling-relevant state transition through
  // these hooks so an incremental engine can maintain its caches. All are
  // no-ops by default; the reference engine ignores them. Ordering
  // contract: each hook fires *after* the corresponding Job counters have
  // been updated (note_map_placed / note_map_completed / requeue_map / ...),
  // so a hook sees the same job state a fresh recompute would.

  /// A container was granted to `task` of `job` on `rack`.
  virtual void on_task_placed(Job& job, Task& task, RackId rack) {
    (void)job, (void)task, (void)rack;
  }
  /// `task` of `job` completed and released its container on `rack`.
  virtual void on_task_completed(Job& job, Task& task, RackId rack) {
    (void)job, (void)task, (void)rack;
  }
  /// A running attempt of `task` was killed on `rack` and the task is
  /// pending again (Job::requeue_map / requeue_reduce already ran).
  virtual void on_task_requeued(Job& job, Task& task, RackId rack) {
    (void)job, (void)task, (void)rack;
  }
  /// `job` finished and is about to leave the active set: retire any
  /// scheduler state attached to it.
  virtual void on_job_completed(Job& job) { (void)job; }
  /// The deadlock breaker abandoned `job`'s reduce plan
  /// (Job::clear_reduce_plan already ran), re-opening class-5 grants.
  virtual void on_reduce_plan_cleared(Job& job) { (void)job; }

  // ----- audit hook ---------------------------------------------------------
  /// Re-derive any incremental caches from first principles and compare:
  /// return an empty string when coherent, else a description of the first
  /// divergence (the invariant auditor turns it into an AuditFailure).
  [[nodiscard]] virtual std::string audit_invariants(
      const std::vector<Job*>& active_jobs) const {
    (void)active_jobs;
    return {};
  }

 protected:
  /// Whether `job`'s reduces are eligible for placement under this
  /// scheduler's reduce semantics.
  [[nodiscard]] bool reduces_eligible(const Job& job,
                                      const SchedContext& ctx) const {
    if (job.spec().num_reduces == 0) return false;
    if (defers_reduces()) return job.all_maps_done();
    const auto threshold = static_cast<std::int32_t>(
        std::ceil(ctx.reduce_slowstart *
                  static_cast<double>(job.spec().num_maps)));
    return job.maps_completed() >= threshold;
  }
};

}  // namespace cosched
