// The job-scheduler interface.
//
// A JobScheduler makes three kinds of decisions, invoked by the simulation
// driver at well-defined points:
//
//   1. on_job_submitted — input data placement and any per-job planning
//      (Co-scheduler computes the R_map guideline here);
//   2. on_maps_completed — reduce planning once the map output distribution
//      is known (Co-scheduler's PSRT + SBS run here);
//   3. pick_task — container-grant time: one free container on one rack is
//      offered and the scheduler returns the task to run in it (or nothing).
//
// Schedulers also declare their reduce-phase semantics: baselines overlap
// reduces with maps (Hadoop slow-start), Co-scheduler defers reduces until
// all maps finish (Section IV-A of the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/job.h"
#include "cluster/trem_estimator.h"
#include "common/rng.h"
#include "net/topology.h"
#include "simcore/simulator.h"

namespace cosched {

struct Observability;

/// Everything a scheduler may consult when deciding.
struct SchedContext {
  SimTime now;
  const HybridTopology& topo;
  Cluster& cluster;
  /// Jobs that have arrived and not yet completed, in arrival order.
  const std::vector<Job*>& active_jobs;
  AvailabilityOracle& availability;
  Rng& rng;
  /// Fraction of a job's maps that must finish before an overlapping
  /// scheduler may place its reduces (Hadoop slow-start; baselines only).
  double reduce_slowstart = 0.05;
  /// Optional tracing/decision-log bundle; null when not observing.
  Observability* obs = nullptr;
};

struct TaskChoice {
  Job* job;
  Task* task;
  /// OCAS priority class (1..6) that selected the task; -1 for schedulers
  /// without priority classes.
  std::int32_t priority_class = -1;
};

class JobScheduler {
 public:
  virtual ~JobScheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// If true, the driver only lets this scheduler place a job's reduce
  /// tasks after all of its maps completed, and releases the job's shuffle
  /// as one coflow after the last reduce container is granted.
  [[nodiscard]] virtual bool defers_reduces() const = 0;

  /// Place the job's input blocks (must call job.set_block_placement) and
  /// do any admission-time planning.
  virtual void on_job_submitted(Job& job, SchedContext& ctx) = 0;

  /// Invoked when the job's last map task completes.
  virtual void on_maps_completed(Job& job, SchedContext& ctx) {
    (void)job;
    (void)ctx;
  }

  /// Offer one free container on `rack`. Return the task to run or nullopt.
  virtual std::optional<TaskChoice> pick_task(RackId rack,
                                              SchedContext& ctx) = 0;

 protected:
  /// Whether `job`'s reduces are eligible for placement under this
  /// scheduler's reduce semantics.
  [[nodiscard]] bool reduces_eligible(const Job& job,
                                      const SchedContext& ctx) const {
    if (job.spec().num_reduces == 0) return false;
    if (defers_reduces()) return job.all_maps_done();
    const auto threshold = static_cast<std::int32_t>(
        std::ceil(ctx.reduce_slowstart *
                  static_cast<double>(job.spec().num_maps)));
    return job.maps_completed() >= threshold;
  }
};

}  // namespace cosched
