// Delay scheduler [4] (Zaharia et al., EuroSys'10) — an extra baseline.
//
// Fair sharing plus *delay scheduling* for locality: when the job at the
// head of the fair queue has no data-local map for the offered container,
// the scheduler skips the job for a bounded number of scheduling
// opportunities before letting it run a map non-locally. Like Fair, it
// spreads tasks across the whole cluster and overlaps reduces with maps —
// the paper groups both among the schedulers that "totally disaggregate
// the data transfers of the jobs".
#pragma once

#include <map>

#include "sched/scheduler.h"

namespace cosched {

class DelayScheduler : public JobScheduler {
 public:
  struct Options {
    std::int32_t replication = 3;
    /// Scheduling opportunities a job may skip while waiting for locality.
    std::int32_t max_skips = 20;
  };

  DelayScheduler() : DelayScheduler(Options{}) {}
  explicit DelayScheduler(Options opts) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "delay"; }
  [[nodiscard]] bool defers_reduces() const override { return false; }

  void on_job_submitted(Job& job, SchedContext& ctx) override;
  std::optional<TaskChoice> pick_task(RackId rack, SchedContext& ctx) override;

 private:
  Options opts_;
  /// Consecutive offers each job declined for lack of locality.
  std::map<JobId, std::int32_t> skips_;
};

}  // namespace cosched
