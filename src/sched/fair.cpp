#include "sched/fair.h"

#include "obs/perf_monitor.h"
#include "sched/fairness.h"

namespace cosched {

void FairScheduler::on_job_submitted(Job& job, SchedContext& ctx) {
  job.set_block_placement(place_blocks_random(
      job.spec().num_maps, ctx.topo.num_racks, replication_, ctx.rng));
}

std::optional<TaskChoice> FairScheduler::pick_task(RackId rack,
                                                   SchedContext& ctx) {
  PerfScope perf(PerfPhase::kSchedPickTask);
  perf.set_size(ctx.active_jobs.size());
  for (UserId user : fair_user_order(ctx.active_jobs)) {
    for (Job* job : ctx.active_jobs) {
      if (job->spec().user != user) continue;
      // 1. Data-local map.
      if (Task* t = job->next_pending_map_local(rack)) {
        return TaskChoice{job, t};
      }
      // 2. Eligible reduce (slow-start overlap with the map phase).
      if (reduces_eligible(*job, ctx)) {
        if (Task* t = job->next_pending_reduce()) {
          return TaskChoice{job, t};
        }
      }
      // 3. Any map, run remotely.
      if (Task* t = job->next_pending_map_any()) {
        return TaskChoice{job, t};
      }
    }
  }
  return std::nullopt;
}

}  // namespace cosched
