// Co-scheduler — the paper's contribution (Section IV).
//
// Four cooperating mechanisms:
//
//   MTS  (Section IV-C): at submission, a shuffle-heavy job gets a guideline
//        R_map = floor(sqrt(Input * SIR / T_e)) and its input blocks are
//        placed on `replication` disjoint sets of R_map racks, so that maps
//        can run data-locally on R_map racks and every map-rack's output can
//        cross the elephant threshold toward every reduce rack.
//
//   PSRT (Section IV-D): when the job's maps finish, enumerate every
//        feasible reduce-rack count R_red in [1, floor(SM_1/T_e)] and, for
//        each, the reduce-task distribution D that (a) pushes every flow
//        over T_e and (b) minimizes the CCT lower bound T(C) — start every
//        rack at the minimum aggregation count, then add remaining tasks to
//        the least-loaded rack.
//
//   SBS  (Section IV-E, Algorithm 1): ExploreSchedule greedily matches the
//        sorted (descending) D to the racks whose containers free earliest
//        (per the T_rem estimator), which is optimal for the given D; the
//        best schedule minimizes CCT + t_max.
//
//   OCAS (Section IV-F, Algorithm 2): at container-grant time, serve the
//        most under-served user and pick, in priority order: planned
//        shuffle-heavy reduce → guideline shuffle-heavy map → light reduce →
//        light map → any reduce → any map.
//
// Reduce semantics follow Section IV-A: reduces are placed only after all
// maps finish, and the shuffle coflow is released only after every reduce
// container is granted.
//
// The ablation modes of the paper's Figure 5 are flags: OCAS-only disables
// everything but the grant policy (degenerating to Fair-with-deferred-
// reduces), MTS+OCAS disables the reduce planning.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "coflow/cct_bound.h"
#include "sched/scheduler.h"

namespace cosched {

/// One PSRT candidate: run the job's reduces on `d.size()` racks, `d[i]`
/// tasks on the i-th, for a CCT lower bound of `cct`.
struct PossibleSchedule {
  std::vector<std::int32_t> d;
  Duration cct;
};

/// PSRT: all possible schedules for a map-output distribution `sm`
/// (per-rack output sizes, each >= elephant_threshold, any order). `bound`
/// evaluates the CCT lower bound of each candidate's abstract traffic
/// matrix — the active fabric's Fabric::cct_lower_bound under the default
/// planner mode, or legacy_cct_bound under --bound=legacy.
[[nodiscard]] std::vector<PossibleSchedule> possible_reduce_schedules(
    const std::vector<DataSize>& sm, std::int32_t num_reduces,
    DataSize elephant_threshold, const CctBoundFn& bound,
    std::int32_t max_racks);

/// Legacy-signature convenience: the fabric-oblivious ocs:1 bound over
/// (ocs_rate, reconfig_delay). Kept so pre-fabric-aware callers and the
/// pinned property tests keep compiling against the original contract.
[[nodiscard]] std::vector<PossibleSchedule> possible_reduce_schedules(
    const std::vector<DataSize>& sm, std::int32_t num_reduces,
    DataSize elephant_threshold, Bandwidth ocs_rate, Duration reconfig_delay,
    std::int32_t max_racks);

/// The incremental-engine PSRT enumeration: bit-identical output to
/// possible_reduce_schedules for the same `bound`, evaluating it on a
/// surrogate matrix of O(m + R_red) entries instead of the full m x R_red
/// build (m = map racks). Every full-matrix entry is the exact integer
/// llround(SM_i * d_j / R), weakly monotone in both SM_i and d_j, and
/// every fabric bound is weakly monotone per row/column in (sum, degree):
/// the binding row is always the largest map rack's and the binding column
/// is always one receiving d_max = d[0] tasks. The surrogate materializes
/// exactly those two lines (shared corner entry added once); its extra
/// degree-1 lines are dominated, so the bound over the surrogate equals
/// the bound over the full matrix bit for bit (DESIGN.md §11).
[[nodiscard]] std::vector<PossibleSchedule>
possible_reduce_schedules_incremental(const std::vector<DataSize>& sm,
                                      std::int32_t num_reduces,
                                      DataSize elephant_threshold,
                                      const CctBoundFn& bound,
                                      std::int32_t max_racks);

/// Legacy-signature convenience, as above.
[[nodiscard]] std::vector<PossibleSchedule>
possible_reduce_schedules_incremental(const std::vector<DataSize>& sm,
                                      std::int32_t num_reduces,
                                      DataSize elephant_threshold,
                                      Bandwidth ocs_rate,
                                      Duration reconfig_delay,
                                      std::int32_t max_racks);

/// MTS's map-rack guideline (Section IV-C), before clamping to the cluster:
/// R_map = floor(sqrt(Input * SIR / T_e)), at least 1. Monotone
/// non-decreasing in Input (and in SIR) — a property the test suite checks.
[[nodiscard]] std::int32_t mts_map_rack_guideline(DataSize input, double sir,
                                                  DataSize elephant_threshold);

/// One SBS exploration (Algorithm 1): a PSRT candidate's D greedily matched
/// to the racks whose containers free earliest.
struct ExploredSchedule {
  /// Chosen reduce racks with their task counts (sums to the job's reduces).
  std::map<RackId, std::int32_t> plan;
  /// The candidate's distribution, sorted descending (assignment order).
  std::vector<std::int32_t> d;
  /// The candidate's CCT lower bound T(C).
  Duration cct;
  /// Worst container wait over the chosen racks.
  Duration t_max;
  /// SBS's objective: CCT + t_max (Section IV-E).
  [[nodiscard]] double score_sec() const { return (cct + t_max).sec(); }
};

/// SBS's ExploreSchedule over every PSRT candidate: for each, assign the
/// descending D to the earliest-available unselected racks. Candidates
/// with no feasible assignment are dropped.
[[nodiscard]] std::vector<ExploredSchedule> explore_schedules(
    const std::vector<PossibleSchedule>& schedules, std::int32_t num_racks,
    AvailabilityOracle& availability);

/// The incremental-engine ExploreSchedule: bit-identical results to
/// explore_schedules with far fewer oracle queries. Every distinct
/// (rack, count) pair is estimated at most once per pass and the answers
/// are memoized; the clean path (availability_noisy == false) additionally
/// replaces the per-candidate O(racks) min-scans with BestRackHeap rank
/// orders built once per distinct count. When `availability_noisy` is set
/// the memoized pass replays the reference's exact query order instead
/// (same loop, memo lookups), because noisy T_rem estimates draw lazily
/// from one RNG stream and reordering first touches would change the
/// drawn values (see SchedContext::availability_noisy).
[[nodiscard]] std::vector<ExploredSchedule> explore_schedules_incremental(
    const std::vector<PossibleSchedule>& schedules, std::int32_t num_racks,
    AvailabilityOracle& availability, bool availability_noisy);

/// Index of the minimum-score exploration; nullopt when `explored` is
/// empty. Ties break toward the earliest candidate (enumeration order).
[[nodiscard]] std::optional<std::size_t> best_schedule_index(
    const std::vector<ExploredSchedule>& explored);

class CoScheduler : public JobScheduler {
 public:
  struct Options {
    /// MTS: guideline input placement + map-rack cap.
    bool enable_mts = true;
    /// PSRT + SBS: reduce planning (requires MTS to be meaningful, as the
    /// paper notes, but the flag is independent for the ablation study).
    bool enable_reduce_planning = true;
    std::int32_t replication = 3;
    /// Multiplicative noise applied to the predicted SIR at submission
    /// (0 = the paper's recurring-job assumption of accurate prediction).
    double sir_prediction_error = 0.0;
  };

  CoScheduler() : CoScheduler(Options{}) {}
  explicit CoScheduler(Options opts) : opts_(opts) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool defers_reduces() const override { return true; }

  void on_job_submitted(Job& job, SchedContext& ctx) override;
  void on_maps_completed(Job& job, SchedContext& ctx) override;
  std::optional<TaskChoice> pick_task(RackId rack, SchedContext& ctx) override;
  /// Both engines' pick_task declines are outcome-pure: the reference only
  /// scans, and the incremental path's decline-time mutations (candidate
  /// pruning, the no-grant memo) never change a future pick result.
  [[nodiscard]] bool declines_are_stable() const override { return true; }
  /// True only when the incremental engine's last decline fell out of an
  /// empty candidate index: no user had a single map or reduce candidate,
  /// a condition that mentions no rack, so every rack's pick at this state
  /// is the same pure nullopt. The reference engine never reports global
  /// declines — it is the oracle and takes no shortcuts.
  [[nodiscard]] bool last_decline_was_global() const override {
    return last_decline_global_;
  }

  void set_sched_engine(SchedEngine engine) override { engine_ = engine; }
  [[nodiscard]] SchedEngine sched_engine() const override { return engine_; }

  void on_task_placed(Job& job, Task& task, RackId rack) override;
  void on_task_completed(Job& job, Task& task, RackId rack) override;
  void on_task_requeued(Job& job, Task& task, RackId rack) override;
  void on_job_completed(Job& job) override;
  void on_reduce_plan_cleared(Job& job) override;

  [[nodiscard]] std::string audit_invariants(
      const std::vector<Job*>& active_jobs) const override;

 private:
  // ----- incremental OCAS state (engine_ == kIncremental only) -------------
  //
  // The reference pick_task scans every active job per container offer —
  // O(active_jobs) even when almost all of them are network-bound with
  // nothing pending. The incremental engine keeps, per user, the jobs that
  // can still receive a container:
  //
  //   * map_candidates: jobs with (possibly) pending maps. Keyed by an
  //     arrival sequence number so iteration reproduces the reference's
  //     arrival-order scan even after a killed attempt re-inserts a job.
  //     Lazily pruned: a job whose next_pending_map_any() is null is
  //     dropped mid-scan and re-inserted by on_task_requeued if a kill
  //     makes a map pending again.
  //   * reduce_candidates: jobs past all_maps_done with reduces still to
  //     place (membership only begins at on_maps_completed, because
  //     CoScheduler defers reduces). Same keying and pruning.
  //
  // Candidate membership is a strict superset of every OCAS class's match
  // condition, so the filtered scans return exactly the reference's first
  // match. The per-user running-task counters reproduce fair_user_order
  // without touching the active-job list.
  struct UserState {
    /// Running (placed, not completed) tasks over the user's active jobs —
    /// the fair-share key, maintained by the placement/completion hooks.
    std::int64_t running = 0;
    /// Active (arrived, not completed) jobs; the UserState is erased when
    /// this drops to zero, matching fair_user_order's user set.
    std::int64_t active = 0;
    std::map<std::int64_t, Job*> map_candidates;
    std::map<std::int64_t, Job*> reduce_candidates;
  };

  /// SBS over the possible schedules; installs the best plan on the job.
  void select_best_schedule(Job& job,
                            const std::vector<PossibleSchedule>& schedules,
                            const std::vector<RackId>& map_racks,
                            SchedContext& ctx);

  std::optional<TaskChoice> pick_task_reference(RackId rack,
                                                SchedContext& ctx);
  std::optional<TaskChoice> pick_task_incremental(RackId rack,
                                                  SchedContext& ctx);
  /// One user's six OCAS class scans over their candidate lists, pruning
  /// exhausted candidates along the way.
  std::optional<TaskChoice> scan_user(UserState& u, RackId rack,
                                      SchedContext& ctx);

  /// Any state change that could turn a cached "no grant on this rack"
  /// answer into a grant invalidates every cached answer. Conservatively
  /// bumped on every notification hook: over-bumping costs one extra scan
  /// per rack, staleness would silently diverge from the reference.
  void invalidate_no_grant_cache() { ++epoch_; }

  Options opts_;
  SchedEngine engine_ = SchedEngine::kIncremental;

  // uid-ascending so iterating + stable-sorting by (running, uid)
  // reproduces fair_user_order exactly.
  std::map<UserId, UserState> users_;
  /// Arrival sequence per live tracked job (candidate-map key).
  std::unordered_map<JobId, std::int64_t> seq_;
  std::int64_t next_seq_ = 0;
  /// Per-rack memo of "pick_task returned nullopt at epoch E": a dispatch
  /// wave re-offers idle racks many times; once nothing is grantable on a
  /// rack, it stays ungrantable until some hook bumps epoch_.
  std::vector<std::uint64_t> no_grant_epoch_;
  std::uint64_t epoch_ = 1;
  /// Whether the most recent pick_task nullopt was rack-independent (the
  /// candidate index was empty). Cleared on every grant and on memo-hit
  /// declines, which prove nothing about other racks.
  bool last_decline_global_ = false;
};

}  // namespace cosched
