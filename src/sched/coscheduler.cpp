#include "sched/coscheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/log.h"
#include "obs/decision_log.h"
#include "obs/observability.h"
#include "obs/perf_monitor.h"
#include "obs/profile.h"
#include "sched/fairness.h"

namespace cosched {

std::vector<PossibleSchedule> possible_reduce_schedules(
    const std::vector<DataSize>& sm, std::int32_t num_reduces,
    DataSize elephant_threshold, Bandwidth ocs_rate, Duration reconfig_delay,
    std::int32_t max_racks) {
  std::vector<PossibleSchedule> out;
  if (sm.empty() || num_reduces <= 0) return out;
  std::vector<DataSize> sorted = sm;
  std::sort(sorted.begin(), sorted.end());
  const DataSize sm_min = sorted.front();
  COSCHED_CHECK_MSG(sm_min >= elephant_threshold,
                    "PSRT input must be pre-filtered to >= T_e");

  // Upper bound on R_red: floor(SM_1 / T_e) keeps every flow from the
  // smallest map rack above the threshold (Equation 7), further capped by
  // the number of reduce tasks and racks available.
  const auto r_red_max = static_cast<std::int32_t>(std::min<std::int64_t>(
      {sm_min.in_bytes() / elephant_threshold.in_bytes(),
       static_cast<std::int64_t>(num_reduces),
       static_cast<std::int64_t>(max_racks)}));

  for (std::int32_t r_red = 1; r_red <= r_red_max; ++r_red) {
    // Aggregation floor: rack j needs d_j reduces so that
    // SM_1 * d_j / num_reduces >= T_e.
    const auto d_min = static_cast<std::int32_t>(std::ceil(
        static_cast<double>(elephant_threshold.in_bytes()) *
        static_cast<double>(num_reduces) /
        static_cast<double>(sm_min.in_bytes())));
    if (static_cast<std::int64_t>(d_min) * r_red > num_reduces) {
      continue;  // cannot aggregate every rack past the threshold
    }

    // Start every rack at the floor, then feed the remaining tasks to the
    // currently least-loaded rack (received data is proportional to d_j, so
    // least-loaded = smallest d_j). This minimizes max_j col-sum and hence
    // the lower bound.
    std::vector<std::int32_t> d(static_cast<std::size_t>(r_red), d_min);
    std::int32_t rem = num_reduces - d_min * r_red;
    std::size_t next = 0;
    while (rem > 0) {
      d[next] += 1;
      next = (next + 1) % d.size();
      --rem;
    }

    // CCT lower bound for this placement, with reduce racks abstracted as
    // fresh ids (rack identities are chosen later by SBS).
    TrafficMatrix matrix;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      for (std::size_t j = 0; j < d.size(); ++j) {
        const DataSize c =
            sorted[i] * (static_cast<double>(d[j]) /
                         static_cast<double>(num_reduces));
        matrix.add(RackId{static_cast<std::int64_t>(i)},
                   RackId{static_cast<std::int64_t>(1000000 + j)}, c);
      }
    }
    PossibleSchedule ps;
    ps.d = std::move(d);
    ps.cct = cct_lower_bound(matrix, ocs_rate, reconfig_delay);
    out.push_back(std::move(ps));
  }
  return out;
}

std::int32_t mts_map_rack_guideline(DataSize input, double sir,
                                    DataSize elephant_threshold) {
  COSCHED_CHECK(elephant_threshold.in_bytes() > 0);
  const double ratio = (input * std::max(sir, 0.0)) / elephant_threshold;
  const auto r_map = static_cast<std::int32_t>(std::floor(std::sqrt(ratio)));
  return std::max(r_map, 1);
}

std::vector<ExploredSchedule> explore_schedules(
    const std::vector<PossibleSchedule>& schedules, std::int32_t num_racks,
    AvailabilityOracle& availability) {
  std::vector<ExploredSchedule> out;
  for (const PossibleSchedule& ps : schedules) {
    // ExploreSchedule (Algorithm 1): descending D, each d_i to the
    // earliest-available unselected rack.
    ExploredSchedule ex;
    ex.d = ps.d;
    std::sort(ex.d.begin(), ex.d.end(), std::greater<>());
    ex.cct = ps.cct;

    bool feasible = true;
    for (std::int32_t di : ex.d) {
      Duration best_t = Duration::infinity();
      RackId best_rack = RackId::invalid();
      for (std::int32_t r = 0; r < num_racks; ++r) {
        const RackId rack{r};
        if (ex.plan.count(rack) > 0) continue;  // selected racks are spent
        const Duration t = availability.estimate_availability(rack, di);
        if (t < best_t) {
          best_t = t;
          best_rack = rack;
        }
      }
      if (!best_rack.valid() || !best_t.is_finite()) {
        feasible = false;
        break;
      }
      ex.plan[best_rack] = di;
      ex.t_max = std::max(ex.t_max, best_t);
    }
    if (feasible) out.push_back(std::move(ex));
  }
  return out;
}

std::optional<std::size_t> best_schedule_index(
    const std::vector<ExploredSchedule>& explored) {
  if (explored.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < explored.size(); ++i) {
    if (explored[i].score_sec() < explored[best].score_sec()) best = i;
  }
  return best;
}

std::string CoScheduler::name() const {
  if (opts_.enable_mts && opts_.enable_reduce_planning) return "coscheduler";
  if (opts_.enable_mts) return "mts+ocas";
  return "ocas";
}

void CoScheduler::on_job_submitted(Job& job, SchedContext& ctx) {
  const JobSpec& spec = job.spec();

  double predicted_sir = spec.sir;
  if (opts_.sir_prediction_error > 0.0) {
    predicted_sir *=
        1.0 + opts_.sir_prediction_error * ctx.rng.uniform(-1.0, 1.0);
    predicted_sir = std::max(predicted_sir, 0.0);
  }
  const DataSize predicted_shuffle = spec.input_size * predicted_sir;
  const bool predicted_heavy =
      spec.num_reduces > 0 && predicted_shuffle >= ctx.topo.elephant_threshold;

  if (!opts_.enable_mts || !predicted_heavy) {
    job.set_block_placement(place_blocks_random(
        spec.num_maps, ctx.topo.num_racks, opts_.replication, ctx.rng));
    return;
  }

  // MTS guideline: R_map = floor(sqrt(Input*SIR / T_e)), clamped so the
  // replication-many disjoint rack sets fit and so the job's own task
  // counts can populate the racks.
  auto r_map = mts_map_rack_guideline(spec.input_size, predicted_sir,
                                      ctx.topo.elephant_threshold);
  r_map = std::min(r_map, std::max(1, ctx.topo.num_racks /
                                          opts_.replication));
  r_map = std::min(r_map, spec.num_maps);
  r_map = std::min(r_map, std::max(spec.num_reduces, 1));

  std::vector<std::vector<RackId>> sets;
  job.set_block_placement(place_blocks_clustered(spec.num_maps,
                                                 ctx.topo.num_racks,
                                                 opts_.replication, r_map,
                                                 ctx.rng, &sets));
  // Concrete guideline racks: rack p of set k holds blocks congruent to
  // p mod r_data, so picking, for every residue p, the least-loaded rack
  // among {set_k[p]} yields R_map racks that jointly hold a full replica
  // ("any R_map racks selected from the three disjoint sets", IV-C).
  const auto r_data = static_cast<std::int32_t>(sets.front().size());
  std::vector<RackId> guideline;
  guideline.reserve(static_cast<std::size_t>(r_data));
  for (std::int32_t p = 0; p < r_data; ++p) {
    RackId best = sets.front()[static_cast<std::size_t>(p)];
    for (const auto& set : sets) {
      const RackId cand = set[static_cast<std::size_t>(p)];
      if (ctx.cluster.used_slots(cand) < ctx.cluster.used_slots(best)) {
        best = cand;
      }
    }
    guideline.push_back(best);
  }
  job.set_r_map_guideline(r_data);
  job.set_guideline_map_racks(std::move(guideline));
}

void CoScheduler::on_maps_completed(Job& job, SchedContext& ctx) {
  COSCHED_PROF_SCOPE("coscheduler.on_maps_completed");
  if (!opts_.enable_reduce_planning) return;
  if (!job.shuffle_heavy() || job.spec().num_reduces == 0) return;

  // PSRT operates on the *actual* per-rack map output, disregarding racks
  // whose output is below T_e (they cannot use the OCS regardless).
  std::vector<RackId> map_racks;
  std::vector<DataSize> sm;
  for (const auto& [rack, size] : job.map_output_by_rack()) {
    if (size >= ctx.topo.elephant_threshold) {
      map_racks.push_back(rack);
      sm.push_back(size);
    }
  }
  if (sm.empty()) return;  // cannot exploit the OCS; reduces spread freely

  PerfScope perf(PerfPhase::kPsrtEnumerate);
  perf.set_size(sm.size());
  const std::vector<PossibleSchedule> schedules = possible_reduce_schedules(
      sm, job.spec().num_reduces, ctx.topo.elephant_threshold,
      ctx.topo.ocs_link, ctx.topo.ocs_reconfig_delay, ctx.topo.num_racks);
  if (schedules.empty()) return;

  select_best_schedule(job, schedules, map_racks, ctx);
}

void CoScheduler::select_best_schedule(
    Job& job, const std::vector<PossibleSchedule>& schedules,
    const std::vector<RackId>& map_racks, SchedContext& ctx) {
  (void)map_racks;
  PerfScope perf(PerfPhase::kSbsExplore);
  perf.set_size(schedules.size() *
                static_cast<std::uint64_t>(ctx.topo.num_racks));
  const std::vector<ExploredSchedule> explored =
      explore_schedules(schedules, ctx.topo.num_racks, ctx.availability);
  const std::optional<std::size_t> best_index = best_schedule_index(explored);
  if (!best_index.has_value()) return;
  ExploredSchedule best = explored[*best_index];

  if (ctx.obs != nullptr) {
    PlacementDecision dec;
    dec.at = ctx.now;
    dec.job = job.id();
    dec.r_map = job.r_map_guideline();
    dec.r_red = static_cast<std::int32_t>(best.plan.size());
    dec.d = best.d;
    dec.plan.assign(best.plan.begin(), best.plan.end());
    dec.planned_cct = best.cct;
    dec.t_max = best.t_max;
    dec.score_sec = best.score_sec();
    dec.candidates = static_cast<std::int64_t>(schedules.size());
    ctx.obs->decisions.record(std::move(dec));
  }
  job.set_reduce_plan(std::move(best.plan), best.cct);
}

namespace {

/// Class-6 gate: a guided shuffle-heavy job may run maps off-guideline only
/// when no guideline-conforming placement is possible right now — i.e., no
/// guideline rack has both a free container and a pending local map.
bool map_overflow_allowed(Job& job, const SchedContext& ctx) {
  if (!job.shuffle_heavy() || job.r_map_guideline() <= 0) return true;
  for (RackId r : job.guideline_map_racks()) {
    if (ctx.cluster.free_slots(r) > 0 &&
        job.next_pending_map_local(r) != nullptr) {
      return false;  // a conforming placement exists; no overflow yet
    }
  }
  return true;
}

}  // namespace

std::optional<TaskChoice> CoScheduler::pick_task(RackId rack,
                                                 SchedContext& ctx) {
  PerfScope perf(PerfPhase::kOcasGrant);
  perf.set_size(ctx.active_jobs.size());
  for (UserId user : fair_user_order(ctx.active_jobs)) {
    std::vector<Job*> jobs;
    for (Job* job : ctx.active_jobs) {
      if (job->spec().user == user) jobs.push_back(job);
    }

    // OCAS priority classes (Algorithm 2), evaluated across the user's
    // jobs in arrival order.

    // 1. Reduce from a shuffle-heavy job whose best schedule contains this
    //    rack (plan capacity remaining).
    for (Job* job : jobs) {
      if (!job->shuffle_heavy() || !job->has_reduce_plan()) continue;
      if (job->reduce_plan_remaining(rack) <= 0) continue;
      if (!reduces_eligible(*job, ctx)) continue;
      if (Task* t = job->next_pending_reduce()) return TaskChoice{job, t, 1};
    }
    // 2. Map from a shuffle-heavy job whose data is on this rack and which
    //    keeps the job's maps on its R_map guideline racks.
    for (Job* job : jobs) {
      if (!job->shuffle_heavy() || job->r_map_guideline() <= 0) continue;
      if (!job->in_map_guideline(rack)) continue;
      if (Task* t = job->next_pending_map_local(rack)) {
        return TaskChoice{job, t, 2};
      }
    }
    // 3. Reduce from a non-shuffle-heavy job.
    for (Job* job : jobs) {
      if (job->shuffle_heavy()) continue;
      if (!reduces_eligible(*job, ctx)) continue;
      if (Task* t = job->next_pending_reduce()) return TaskChoice{job, t, 3};
    }
    // 4. Any map from a non-shuffle-heavy job (local first).
    for (Job* job : jobs) {
      if (job->shuffle_heavy()) continue;
      if (Task* t = job->next_pending_map_local(rack)) {
        return TaskChoice{job, t, 4};
      }
    }
    for (Job* job : jobs) {
      if (job->shuffle_heavy()) continue;
      if (Task* t = job->next_pending_map_any()) return TaskChoice{job, t, 4};
    }
    // 5. Any available reduce: shuffle-heavy jobs with no plan (their map
    //    output cannot use the OCS anyway). Planned jobs stay on plan.
    for (Job* job : jobs) {
      if (!job->shuffle_heavy() || job->has_reduce_plan()) continue;
      if (!reduces_eligible(*job, ctx)) continue;
      if (Task* t = job->next_pending_reduce()) return TaskChoice{job, t, 5};
    }
    // 6. Any available map. For a guided shuffle-heavy job this is the
    //    overflow path (maps beyond the R_map cap or off the data racks,
    //    paying the remote-read penalty); it only opens once the job's
    //    guideline racks are saturated, otherwise the guideline would
    //    dissolve the moment any other rack had a free container.
    for (Job* job : jobs) {
      if (!map_overflow_allowed(*job, ctx)) continue;
      if (Task* t = job->next_pending_map_local(rack)) {
        return TaskChoice{job, t, 6};
      }
    }
    for (Job* job : jobs) {
      if (!map_overflow_allowed(*job, ctx)) continue;
      if (Task* t = job->next_pending_map_any()) return TaskChoice{job, t, 6};
    }
  }
  return std::nullopt;
}

}  // namespace cosched
