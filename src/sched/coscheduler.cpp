#include "sched/coscheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "net/fabric.h"
#include "obs/decision_log.h"
#include "obs/observability.h"
#include "obs/perf_monitor.h"
#include "obs/profile.h"
#include "sched/best_rack_heap.h"
#include "sched/fairness.h"

namespace cosched {

namespace {

/// The bound the planner charges under `ctx`: the fabric's own
/// cct_lower_bound by default, the legacy ocs:1 formula under
/// --bound=legacy or when no fabric is attached (hand-built contexts).
CctBoundFn planner_cct_bound(const SchedContext& ctx) {
  if (ctx.cct_bound == CctBoundMode::kFabric && ctx.fabric != nullptr) {
    const Fabric* fabric = ctx.fabric;
    return [fabric](const TrafficMatrix& matrix) {
      return fabric->cct_lower_bound(matrix);
    };
  }
  return legacy_cct_bound(ctx.topo.ocs_link, ctx.topo.ocs_reconfig_delay);
}

}  // namespace

std::vector<PossibleSchedule> possible_reduce_schedules(
    const std::vector<DataSize>& sm, std::int32_t num_reduces,
    DataSize elephant_threshold, const CctBoundFn& bound,
    std::int32_t max_racks) {
  std::vector<PossibleSchedule> out;
  if (sm.empty() || num_reduces <= 0) return out;
  std::vector<DataSize> sorted = sm;
  std::sort(sorted.begin(), sorted.end());
  const DataSize sm_min = sorted.front();
  COSCHED_CHECK_MSG(sm_min >= elephant_threshold,
                    "PSRT input must be pre-filtered to >= T_e");

  // Upper bound on R_red: floor(SM_1 / T_e) keeps every flow from the
  // smallest map rack above the threshold (Equation 7), further capped by
  // the number of reduce tasks and racks available.
  const auto r_red_max = static_cast<std::int32_t>(std::min<std::int64_t>(
      {sm_min.in_bytes() / elephant_threshold.in_bytes(),
       static_cast<std::int64_t>(num_reduces),
       static_cast<std::int64_t>(max_racks)}));

  for (std::int32_t r_red = 1; r_red <= r_red_max; ++r_red) {
    // Aggregation floor: rack j needs d_j reduces so that
    // SM_1 * d_j / num_reduces >= T_e.
    const auto d_min = static_cast<std::int32_t>(std::ceil(
        static_cast<double>(elephant_threshold.in_bytes()) *
        static_cast<double>(num_reduces) /
        static_cast<double>(sm_min.in_bytes())));
    if (static_cast<std::int64_t>(d_min) * r_red > num_reduces) {
      continue;  // cannot aggregate every rack past the threshold
    }

    // Start every rack at the floor, then feed the remaining tasks to the
    // currently least-loaded rack (received data is proportional to d_j, so
    // least-loaded = smallest d_j). This minimizes max_j col-sum and hence
    // the lower bound.
    std::vector<std::int32_t> d(static_cast<std::size_t>(r_red), d_min);
    std::int32_t rem = num_reduces - d_min * r_red;
    std::size_t next = 0;
    while (rem > 0) {
      d[next] += 1;
      next = (next + 1) % d.size();
      --rem;
    }

    // CCT lower bound for this placement, with reduce racks abstracted as
    // fresh ids (rack identities are chosen later by SBS).
    TrafficMatrix matrix;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      for (std::size_t j = 0; j < d.size(); ++j) {
        const DataSize c =
            sorted[i] * (static_cast<double>(d[j]) /
                         static_cast<double>(num_reduces));
        matrix.add(RackId{static_cast<std::int64_t>(i)},
                   RackId{static_cast<std::int64_t>(1000000 + j)}, c);
      }
    }
    PossibleSchedule ps;
    ps.d = std::move(d);
    ps.cct = bound(matrix);
    out.push_back(std::move(ps));
  }
  return out;
}

std::vector<PossibleSchedule> possible_reduce_schedules(
    const std::vector<DataSize>& sm, std::int32_t num_reduces,
    DataSize elephant_threshold, Bandwidth ocs_rate, Duration reconfig_delay,
    std::int32_t max_racks) {
  return possible_reduce_schedules(sm, num_reduces, elephant_threshold,
                                   legacy_cct_bound(ocs_rate, reconfig_delay),
                                   max_racks);
}

std::vector<PossibleSchedule> possible_reduce_schedules_incremental(
    const std::vector<DataSize>& sm, std::int32_t num_reduces,
    DataSize elephant_threshold, const CctBoundFn& bound,
    std::int32_t max_racks) {
  std::vector<PossibleSchedule> out;
  if (sm.empty() || num_reduces <= 0) return out;
  std::vector<DataSize> sorted = sm;
  std::sort(sorted.begin(), sorted.end());
  const DataSize sm_min = sorted.front();
  COSCHED_CHECK_MSG(sm_min >= elephant_threshold,
                    "PSRT input must be pre-filtered to >= T_e");

  const auto r_red_max = static_cast<std::int32_t>(std::min<std::int64_t>(
      {sm_min.in_bytes() / elephant_threshold.in_bytes(),
       static_cast<std::int64_t>(num_reduces),
       static_cast<std::int64_t>(max_racks)}));

  for (std::int32_t r_red = 1; r_red <= r_red_max; ++r_red) {
    const auto d_min = static_cast<std::int32_t>(std::ceil(
        static_cast<double>(elephant_threshold.in_bytes()) *
        static_cast<double>(num_reduces) /
        static_cast<double>(sm_min.in_bytes())));
    if (static_cast<std::int64_t>(d_min) * r_red > num_reduces) {
      continue;
    }

    std::vector<std::int32_t> d(static_cast<std::size_t>(r_red), d_min);
    std::int32_t rem = num_reduces - d_min * r_red;
    std::size_t next = 0;
    while (rem > 0) {
      d[next] += 1;
      next = (next + 1) % d.size();
      --rem;
    }

    // The reference builds the full m x r_red matrix with entries
    //   c_ij = sorted[i] * (d[j] / num_reduces)    (exact int64, llround)
    // and takes `bound` over it. Every fabric bound is, per row/column, a
    // weakly monotone function of (sum, degree) — and weakly monotone in
    // each entry for its per-entry terms — while every row of the full
    // matrix shares degree r_red and every column degree m, with the
    // per-entry multiply weakly monotone in both factors. So the binding
    // row is the largest map rack's (sorted.back()) and the binding column
    // is one receiving d_max tasks (the round-robin fill leaves the
    // maximum at d[0]). Materializing exactly those two lines — with the
    // verbatim per-entry expressions, the shared corner entry added once —
    // yields a surrogate whose extra lines (degree 1, dominated sums)
    // never bind, so `bound` over it reproduces the full-matrix value bit
    // for bit in O(m + R_red) entries per candidate.
    TrafficMatrix surrogate;
    const auto m = static_cast<std::int64_t>(sorted.size());
    for (std::size_t j = 0; j < d.size(); ++j) {
      surrogate.add(RackId{m - 1}, RackId{static_cast<std::int64_t>(1000000 + j)},
                    sorted.back() * (static_cast<double>(d[j]) /
                                     static_cast<double>(num_reduces)));
    }
    const double d_max_share = static_cast<double>(d[0]) /
                               static_cast<double>(num_reduces);
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      surrogate.add(RackId{static_cast<std::int64_t>(i)}, RackId{1000000},
                    sorted[i] * d_max_share);
    }

    PossibleSchedule ps;
    ps.d = std::move(d);
    ps.cct = bound(surrogate);
    out.push_back(std::move(ps));
  }
  return out;
}

std::vector<PossibleSchedule> possible_reduce_schedules_incremental(
    const std::vector<DataSize>& sm, std::int32_t num_reduces,
    DataSize elephant_threshold, Bandwidth ocs_rate, Duration reconfig_delay,
    std::int32_t max_racks) {
  return possible_reduce_schedules_incremental(
      sm, num_reduces, elephant_threshold,
      legacy_cct_bound(ocs_rate, reconfig_delay), max_racks);
}

std::int32_t mts_map_rack_guideline(DataSize input, double sir,
                                    DataSize elephant_threshold) {
  COSCHED_CHECK(elephant_threshold.in_bytes() > 0);
  const double ratio = (input * std::max(sir, 0.0)) / elephant_threshold;
  const auto r_map = static_cast<std::int32_t>(std::floor(std::sqrt(ratio)));
  return std::max(r_map, 1);
}

std::vector<ExploredSchedule> explore_schedules(
    const std::vector<PossibleSchedule>& schedules, std::int32_t num_racks,
    AvailabilityOracle& availability) {
  std::vector<ExploredSchedule> out;
  for (const PossibleSchedule& ps : schedules) {
    // ExploreSchedule (Algorithm 1): descending D, each d_i to the
    // earliest-available unselected rack.
    ExploredSchedule ex;
    ex.d = ps.d;
    std::sort(ex.d.begin(), ex.d.end(), std::greater<>());
    ex.cct = ps.cct;

    bool feasible = true;
    for (std::int32_t di : ex.d) {
      Duration best_t = Duration::infinity();
      RackId best_rack = RackId::invalid();
      for (std::int32_t r = 0; r < num_racks; ++r) {
        const RackId rack{r};
        if (ex.plan.count(rack) > 0) continue;  // selected racks are spent
        const Duration t = availability.estimate_availability(rack, di);
        if (t < best_t) {
          best_t = t;
          best_rack = rack;
        }
      }
      if (!best_rack.valid() || !best_t.is_finite()) {
        feasible = false;
        break;
      }
      ex.plan[best_rack] = di;
      ex.t_max = std::max(ex.t_max, best_t);
    }
    if (feasible) out.push_back(std::move(ex));
  }
  return out;
}

std::vector<ExploredSchedule> explore_schedules_incremental(
    const std::vector<PossibleSchedule>& schedules, std::int32_t num_racks,
    AvailabilityOracle& availability, bool availability_noisy) {
  std::vector<ExploredSchedule> out;
  if (schedules.empty()) return out;

  if (availability_noisy) {
    // Noisy T_rem estimates draw their per-task factors lazily from one
    // shared RNG stream, so the *values* depend on the global order of
    // first oracle touches. Replay the reference's exact query order (per
    // candidate, d descending, racks ascending, selected racks skipped)
    // and memoize per (rack, count): repeated queries cannot draw anything
    // new (factors are cached per task and no state changes mid-pass), so
    // a memo hit returns exactly what the reference's repeat call would.
    std::unordered_map<std::int64_t, Duration> memo;
    const auto estimate = [&](RackId rack, std::int32_t count) {
      const std::int64_t key =
          static_cast<std::int64_t>(count) * num_racks + rack.value();
      auto it = memo.find(key);
      if (it == memo.end()) {
        it = memo.emplace(key, availability.estimate_availability(rack, count))
                 .first;
      }
      return it->second;
    };
    for (const PossibleSchedule& ps : schedules) {
      ExploredSchedule ex;
      ex.d = ps.d;
      std::sort(ex.d.begin(), ex.d.end(), std::greater<>());
      ex.cct = ps.cct;
      bool feasible = true;
      for (std::int32_t di : ex.d) {
        Duration best_t = Duration::infinity();
        RackId best_rack = RackId::invalid();
        for (std::int32_t r = 0; r < num_racks; ++r) {
          const RackId rack{r};
          if (ex.plan.count(rack) > 0) continue;
          const Duration t = estimate(rack, di);
          if (t < best_t) {
            best_t = t;
            best_rack = rack;
          }
        }
        if (!best_rack.valid() || !best_t.is_finite()) {
          feasible = false;
          break;
        }
        ex.plan[best_rack] = di;
        ex.t_max = std::max(ex.t_max, best_t);
      }
      if (feasible) out.push_back(std::move(ex));
    }
    return out;
  }

  // Clean estimates (no T_rem noise) are pure in (rack, count, sim state),
  // so query order is free: per distinct count, estimate every rack once
  // and materialize a (availability, rack-id) rank order through the
  // lazily-repaired heap. Each candidate then takes the first unselected
  // rack in rank order — exactly the reference scan's strict minimum with
  // its lowest-rack tie-break.
  std::map<std::int32_t, std::vector<std::pair<double, RackId>>> ranks;
  const auto rank_for = [&](std::int32_t count)
      -> const std::vector<std::pair<double, RackId>>& {
    auto it = ranks.find(count);
    if (it == ranks.end()) {
      BestRackHeap heap(num_racks);
      for (std::int32_t r = 0; r < num_racks; ++r) {
        const RackId rack{r};
        heap.update(rack, availability.estimate_availability(rack, count).sec());
      }
      std::vector<std::pair<double, RackId>> order;
      order.reserve(static_cast<std::size_t>(num_racks));
      while (!heap.empty()) {
        const double key = heap.best_key();
        order.emplace_back(key, heap.pop_best());
      }
      it = ranks.emplace(count, std::move(order)).first;
    }
    return it->second;
  };

  for (const PossibleSchedule& ps : schedules) {
    ExploredSchedule ex;
    ex.d = ps.d;
    std::sort(ex.d.begin(), ex.d.end(), std::greater<>());
    ex.cct = ps.cct;
    bool feasible = true;
    for (std::int32_t di : ex.d) {
      const auto& order = rank_for(di);
      RackId best_rack = RackId::invalid();
      double best_sec = std::numeric_limits<double>::infinity();
      for (const auto& [sec, rack] : order) {
        if (ex.plan.count(rack) > 0) continue;  // selected racks are spent
        best_rack = rack;
        best_sec = sec;
        break;
      }
      if (!best_rack.valid() || std::isinf(best_sec)) {
        feasible = false;
        break;
      }
      ex.plan[best_rack] = di;
      ex.t_max = std::max(ex.t_max, Duration::seconds(best_sec));
    }
    if (feasible) out.push_back(std::move(ex));
  }
  return out;
}

std::optional<std::size_t> best_schedule_index(
    const std::vector<ExploredSchedule>& explored) {
  if (explored.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < explored.size(); ++i) {
    if (explored[i].score_sec() < explored[best].score_sec()) best = i;
  }
  return best;
}

std::string CoScheduler::name() const {
  if (opts_.enable_mts && opts_.enable_reduce_planning) return "coscheduler";
  if (opts_.enable_mts) return "mts+ocas";
  return "ocas";
}

void CoScheduler::on_job_submitted(Job& job, SchedContext& ctx) {
  const JobSpec& spec = job.spec();
  if (engine_ == SchedEngine::kIncremental) {
    invalidate_no_grant_cache();
    const std::int64_t s = next_seq_++;
    seq_.emplace(job.id(), s);
    UserState& u = users_[spec.user];
    ++u.active;
    // Every job has at least one map (JobSpec::validate); reduce-candidate
    // membership begins at on_maps_completed, matching reduces_eligible.
    u.map_candidates.emplace(s, &job);
  }

  double predicted_sir = spec.sir;
  if (opts_.sir_prediction_error > 0.0) {
    predicted_sir *=
        1.0 + opts_.sir_prediction_error * ctx.rng.uniform(-1.0, 1.0);
    predicted_sir = std::max(predicted_sir, 0.0);
  }
  const DataSize predicted_shuffle = spec.input_size * predicted_sir;
  const bool predicted_heavy =
      spec.num_reduces > 0 && predicted_shuffle >= ctx.topo.elephant_threshold;

  if (!opts_.enable_mts || !predicted_heavy) {
    job.set_block_placement(place_blocks_random(
        spec.num_maps, ctx.topo.num_racks, opts_.replication, ctx.rng));
    return;
  }

  // MTS guideline: R_map = floor(sqrt(Input*SIR / T_e)), clamped so the
  // replication-many disjoint rack sets fit and so the job's own task
  // counts can populate the racks.
  auto r_map = mts_map_rack_guideline(spec.input_size, predicted_sir,
                                      ctx.topo.elephant_threshold);
  r_map = std::min(r_map, std::max(1, ctx.topo.num_racks /
                                          opts_.replication));
  r_map = std::min(r_map, spec.num_maps);
  r_map = std::min(r_map, std::max(spec.num_reduces, 1));

  std::vector<std::vector<RackId>> sets;
  job.set_block_placement(place_blocks_clustered(spec.num_maps,
                                                 ctx.topo.num_racks,
                                                 opts_.replication, r_map,
                                                 ctx.rng, &sets));
  // Concrete guideline racks: rack p of set k holds blocks congruent to
  // p mod r_data, so picking, for every residue p, the least-loaded rack
  // among {set_k[p]} yields R_map racks that jointly hold a full replica
  // ("any R_map racks selected from the three disjoint sets", IV-C).
  const auto r_data = static_cast<std::int32_t>(sets.front().size());
  std::vector<RackId> guideline;
  guideline.reserve(static_cast<std::size_t>(r_data));
  for (std::int32_t p = 0; p < r_data; ++p) {
    RackId best = sets.front()[static_cast<std::size_t>(p)];
    for (const auto& set : sets) {
      const RackId cand = set[static_cast<std::size_t>(p)];
      if (ctx.cluster.used_slots(cand) < ctx.cluster.used_slots(best)) {
        best = cand;
      }
    }
    guideline.push_back(best);
  }
  job.set_r_map_guideline(r_data);
  job.set_guideline_map_racks(std::move(guideline));
}

void CoScheduler::on_maps_completed(Job& job, SchedContext& ctx) {
  COSCHED_PROF_SCOPE("coscheduler.on_maps_completed");
  if (engine_ == SchedEngine::kIncremental) {
    // Membership must begin before any of the planning early-returns
    // below: reduces become eligible at all_maps_done whether or not the
    // job gets a reduce plan.
    invalidate_no_grant_cache();
    if (job.spec().num_reduces > 0) {
      users_[job.spec().user].reduce_candidates.emplace(seq_.at(job.id()),
                                                        &job);
    }
  }
  if (!opts_.enable_reduce_planning) return;
  if (!job.shuffle_heavy() || job.spec().num_reduces == 0) return;

  // PSRT operates on the *actual* per-rack map output, disregarding racks
  // whose output is below T_e (they cannot use the OCS regardless).
  std::vector<RackId> map_racks;
  std::vector<DataSize> sm;
  for (const auto& [rack, size] : job.map_output_by_rack()) {
    if (size >= ctx.topo.elephant_threshold) {
      map_racks.push_back(rack);
      sm.push_back(size);
    }
  }
  if (sm.empty()) return;  // cannot exploit the OCS; reduces spread freely

  PerfScope perf(PerfPhase::kPsrtEnumerate);
  perf.set_size(sm.size());
  const CctBoundFn bound = planner_cct_bound(ctx);
  const std::vector<PossibleSchedule> schedules =
      engine_ == SchedEngine::kIncremental
          ? possible_reduce_schedules_incremental(
                sm, job.spec().num_reduces, ctx.topo.elephant_threshold,
                bound, ctx.topo.num_racks)
          : possible_reduce_schedules(sm, job.spec().num_reduces,
                                      ctx.topo.elephant_threshold, bound,
                                      ctx.topo.num_racks);
  if (schedules.empty()) return;

  select_best_schedule(job, schedules, map_racks, ctx);
}

void CoScheduler::select_best_schedule(
    Job& job, const std::vector<PossibleSchedule>& schedules,
    const std::vector<RackId>& map_racks, SchedContext& ctx) {
  (void)map_racks;
  PerfScope perf(PerfPhase::kSbsExplore);
  perf.set_size(schedules.size() *
                static_cast<std::uint64_t>(ctx.topo.num_racks));
  const std::vector<ExploredSchedule> explored =
      engine_ == SchedEngine::kIncremental
          ? explore_schedules_incremental(schedules, ctx.topo.num_racks,
                                          ctx.availability,
                                          ctx.availability_noisy)
          : explore_schedules(schedules, ctx.topo.num_racks, ctx.availability);
  const std::optional<std::size_t> best_index = best_schedule_index(explored);
  if (!best_index.has_value()) return;
  ExploredSchedule best = explored[*best_index];

  if (ctx.obs != nullptr) {
    PlacementDecision dec;
    dec.at = ctx.now;
    dec.job = job.id();
    dec.r_map = job.r_map_guideline();
    dec.r_red = static_cast<std::int32_t>(best.plan.size());
    dec.d = best.d;
    dec.plan.assign(best.plan.begin(), best.plan.end());
    dec.planned_cct = best.cct;
    dec.t_max = best.t_max;
    dec.score_sec = best.score_sec();
    dec.candidates = static_cast<std::int64_t>(schedules.size());
    ctx.obs->decisions.record(std::move(dec));
  }
  job.set_reduce_plan(std::move(best.plan), best.cct);
}

namespace {

/// Class-6 gate: a guided shuffle-heavy job may run maps off-guideline only
/// when no guideline-conforming placement is possible right now — i.e., no
/// guideline rack has both a free container and a pending local map.
bool map_overflow_allowed(Job& job, const SchedContext& ctx) {
  if (!job.shuffle_heavy() || job.r_map_guideline() <= 0) return true;
  for (RackId r : job.guideline_map_racks()) {
    if (ctx.cluster.free_slots(r) > 0 &&
        job.next_pending_map_local(r) != nullptr) {
      return false;  // a conforming placement exists; no overflow yet
    }
  }
  return true;
}

}  // namespace

std::optional<TaskChoice> CoScheduler::pick_task(RackId rack,
                                                 SchedContext& ctx) {
  PerfScope perf(PerfPhase::kOcasGrant);
  perf.set_size(ctx.active_jobs.size());
  return engine_ == SchedEngine::kIncremental
             ? pick_task_incremental(rack, ctx)
             : pick_task_reference(rack, ctx);
}

std::optional<TaskChoice> CoScheduler::pick_task_reference(RackId rack,
                                                           SchedContext& ctx) {
  for (UserId user : fair_user_order(ctx.active_jobs)) {
    std::vector<Job*> jobs;
    for (Job* job : ctx.active_jobs) {
      if (job->spec().user == user) jobs.push_back(job);
    }

    // OCAS priority classes (Algorithm 2), evaluated across the user's
    // jobs in arrival order.

    // 1. Reduce from a shuffle-heavy job whose best schedule contains this
    //    rack (plan capacity remaining).
    for (Job* job : jobs) {
      if (!job->shuffle_heavy() || !job->has_reduce_plan()) continue;
      if (job->reduce_plan_remaining(rack) <= 0) continue;
      if (!reduces_eligible(*job, ctx)) continue;
      if (Task* t = job->next_pending_reduce()) return TaskChoice{job, t, 1};
    }
    // 2. Map from a shuffle-heavy job whose data is on this rack and which
    //    keeps the job's maps on its R_map guideline racks.
    for (Job* job : jobs) {
      if (!job->shuffle_heavy() || job->r_map_guideline() <= 0) continue;
      if (!job->in_map_guideline(rack)) continue;
      if (Task* t = job->next_pending_map_local(rack)) {
        return TaskChoice{job, t, 2};
      }
    }
    // 3. Reduce from a non-shuffle-heavy job.
    for (Job* job : jobs) {
      if (job->shuffle_heavy()) continue;
      if (!reduces_eligible(*job, ctx)) continue;
      if (Task* t = job->next_pending_reduce()) return TaskChoice{job, t, 3};
    }
    // 4. Any map from a non-shuffle-heavy job (local first).
    for (Job* job : jobs) {
      if (job->shuffle_heavy()) continue;
      if (Task* t = job->next_pending_map_local(rack)) {
        return TaskChoice{job, t, 4};
      }
    }
    for (Job* job : jobs) {
      if (job->shuffle_heavy()) continue;
      if (Task* t = job->next_pending_map_any()) return TaskChoice{job, t, 4};
    }
    // 5. Any available reduce: shuffle-heavy jobs with no plan (their map
    //    output cannot use the OCS anyway). Planned jobs stay on plan.
    for (Job* job : jobs) {
      if (!job->shuffle_heavy() || job->has_reduce_plan()) continue;
      if (!reduces_eligible(*job, ctx)) continue;
      if (Task* t = job->next_pending_reduce()) return TaskChoice{job, t, 5};
    }
    // 6. Any available map. For a guided shuffle-heavy job this is the
    //    overflow path (maps beyond the R_map cap or off the data racks,
    //    paying the remote-read penalty); it only opens once the job's
    //    guideline racks are saturated, otherwise the guideline would
    //    dissolve the moment any other rack had a free container.
    for (Job* job : jobs) {
      if (!map_overflow_allowed(*job, ctx)) continue;
      if (Task* t = job->next_pending_map_local(rack)) {
        return TaskChoice{job, t, 6};
      }
    }
    for (Job* job : jobs) {
      if (!map_overflow_allowed(*job, ctx)) continue;
      if (Task* t = job->next_pending_map_any()) return TaskChoice{job, t, 6};
    }
  }
  return std::nullopt;
}

std::optional<TaskChoice> CoScheduler::pick_task_incremental(
    RackId rack, SchedContext& ctx) {
  const auto num_racks = static_cast<std::size_t>(ctx.topo.num_racks);
  if (no_grant_epoch_.size() < num_racks) no_grant_epoch_.resize(num_racks, 0);
  const auto ri = static_cast<std::size_t>(rack.value());
  // A memo hit proves only this rack declined at this epoch.
  last_decline_global_ = false;
  if (no_grant_epoch_[ri] == epoch_) return std::nullopt;

  // Fair user order over the tracked users. fair_user_order stable-sorts a
  // uid-ascending (user, running) list by (running, uid); iterating the
  // uid-ascending users_ map and stable-sorting by running alone is the
  // same total order. Users without candidates cannot match any class and
  // are filtered up front — (running, uid) is a strict total order, so
  // filtering commutes with sorting.
  std::vector<std::pair<std::int64_t, UserState*>> order;
  order.reserve(users_.size());
  for (auto& [user, state] : users_) {
    if (state.map_candidates.empty() && state.reduce_candidates.empty()) {
      continue;
    }
    order.emplace_back(state.running, &state);
  }
  std::stable_sort(
      order.begin(), order.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });

  for (auto& [running, state] : order) {
    if (auto choice = scan_user(*state, rack, ctx)) return choice;
  }
  no_grant_epoch_[ri] = epoch_;
  // Empty order means no user had any candidate at all — a condition that
  // never mentioned the offered rack, so this nullopt holds for every rack
  // until the next epoch bump. This is the common steady-state shape (all
  // placed tasks are running, nothing is releasable), and it lets the
  // offer-queue engine end the wave after this single pick.
  last_decline_global_ = order.empty();
  return std::nullopt;
}

std::optional<TaskChoice> CoScheduler::scan_user(UserState& u, RackId rack,
                                                 SchedContext& ctx) {
  // The six OCAS classes of pick_task_reference, with each "for job in the
  // user's active jobs" scan narrowed to the candidate list whose
  // membership is a superset of the class's match condition:
  //   * reduce_candidates members satisfy all_maps_done && num_reduces > 0,
  //     i.e. reduces_eligible, so classes 1/3/5 need no eligibility check;
  //   * map_candidates members (possibly) have pending maps — a non-null
  //     next_pending_map_local implies a non-null next_pending_map_any, so
  //     pruning on the latter never hides a local match.
  // Both lists iterate in arrival-sequence order, reproducing the
  // reference's arrival-order scan; exhausted entries are pruned in place
  // (the requeue hook re-inserts them if a kill re-opens work).

  // 1. Planned shuffle-heavy reduce with plan capacity on this rack.
  for (auto it = u.reduce_candidates.begin();
       it != u.reduce_candidates.end();) {
    Job* job = it->second;
    Task* t = job->next_pending_reduce();
    if (t == nullptr) {
      it = u.reduce_candidates.erase(it);
      continue;
    }
    if (job->shuffle_heavy() && job->has_reduce_plan() &&
        job->reduce_plan_remaining(rack) > 0) {
      return TaskChoice{job, t, 1};
    }
    ++it;
  }
  // 2. Guideline-conforming shuffle-heavy map.
  for (auto it = u.map_candidates.begin(); it != u.map_candidates.end();) {
    Job* job = it->second;
    if (job->next_pending_map_any() == nullptr) {
      it = u.map_candidates.erase(it);
      continue;
    }
    if (job->shuffle_heavy() && job->r_map_guideline() > 0 &&
        job->in_map_guideline(rack)) {
      if (Task* t = job->next_pending_map_local(rack)) {
        return TaskChoice{job, t, 2};
      }
    }
    ++it;
  }
  // 3. Reduce from a non-shuffle-heavy job.
  for (auto it = u.reduce_candidates.begin();
       it != u.reduce_candidates.end();) {
    Job* job = it->second;
    Task* t = job->next_pending_reduce();
    if (t == nullptr) {
      it = u.reduce_candidates.erase(it);
      continue;
    }
    if (!job->shuffle_heavy()) return TaskChoice{job, t, 3};
    ++it;
  }
  // 4. Any map from a non-shuffle-heavy job (local first).
  for (auto it = u.map_candidates.begin(); it != u.map_candidates.end();) {
    Job* job = it->second;
    if (job->next_pending_map_any() == nullptr) {
      it = u.map_candidates.erase(it);
      continue;
    }
    if (!job->shuffle_heavy()) {
      if (Task* t = job->next_pending_map_local(rack)) {
        return TaskChoice{job, t, 4};
      }
    }
    ++it;
  }
  for (auto it = u.map_candidates.begin(); it != u.map_candidates.end();) {
    Job* job = it->second;
    Task* t = job->next_pending_map_any();
    if (t == nullptr) {
      it = u.map_candidates.erase(it);
      continue;
    }
    if (!job->shuffle_heavy()) return TaskChoice{job, t, 4};
    ++it;
  }
  // 5. Reduce from a shuffle-heavy job with no plan.
  for (auto it = u.reduce_candidates.begin();
       it != u.reduce_candidates.end();) {
    Job* job = it->second;
    Task* t = job->next_pending_reduce();
    if (t == nullptr) {
      it = u.reduce_candidates.erase(it);
      continue;
    }
    if (job->shuffle_heavy() && !job->has_reduce_plan()) {
      return TaskChoice{job, t, 5};
    }
    ++it;
  }
  // 6. Overflow map (local first), gated like the reference.
  for (auto it = u.map_candidates.begin(); it != u.map_candidates.end();) {
    Job* job = it->second;
    if (job->next_pending_map_any() == nullptr) {
      it = u.map_candidates.erase(it);
      continue;
    }
    if (map_overflow_allowed(*job, ctx)) {
      if (Task* t = job->next_pending_map_local(rack)) {
        return TaskChoice{job, t, 6};
      }
    }
    ++it;
  }
  for (auto it = u.map_candidates.begin(); it != u.map_candidates.end();) {
    Job* job = it->second;
    Task* t = job->next_pending_map_any();
    if (t == nullptr) {
      it = u.map_candidates.erase(it);
      continue;
    }
    if (map_overflow_allowed(*job, ctx)) return TaskChoice{job, t, 6};
    ++it;
  }
  return std::nullopt;
}

void CoScheduler::on_task_placed(Job& job, Task& task, RackId rack) {
  (void)task, (void)rack;
  if (engine_ != SchedEngine::kIncremental) return;
  invalidate_no_grant_cache();
  ++users_[job.spec().user].running;
}

void CoScheduler::on_task_completed(Job& job, Task& task, RackId rack) {
  (void)task, (void)rack;
  if (engine_ != SchedEngine::kIncremental) return;
  invalidate_no_grant_cache();
  --users_[job.spec().user].running;
}

void CoScheduler::on_task_requeued(Job& job, Task& task, RackId rack) {
  (void)rack;
  if (engine_ != SchedEngine::kIncremental) return;
  invalidate_no_grant_cache();
  UserState& u = users_[job.spec().user];
  --u.running;
  const std::int64_t s = seq_.at(job.id());
  if (task.kind() == TaskKind::kMap) {
    u.map_candidates.emplace(s, &job);
  } else {
    u.reduce_candidates.emplace(s, &job);
  }
}

void CoScheduler::on_job_completed(Job& job) {
  if (engine_ != SchedEngine::kIncremental) return;
  invalidate_no_grant_cache();
  const auto it = seq_.find(job.id());
  COSCHED_CHECK_MSG(it != seq_.end(),
                    "untracked job " << job.id() << " completed");
  const auto uit = users_.find(job.spec().user);
  COSCHED_CHECK(uit != users_.end());
  uit->second.map_candidates.erase(it->second);
  uit->second.reduce_candidates.erase(it->second);
  if (--uit->second.active == 0) users_.erase(uit);
  seq_.erase(it);
}

void CoScheduler::on_reduce_plan_cleared(Job& job) {
  (void)job;
  if (engine_ != SchedEngine::kIncremental) return;
  // A cleared plan re-opens class-5 grants for the job; its
  // reduce-candidate membership never lapsed (pruning only happens when
  // every reduce is placed, and the breaker targets jobs with unplaced
  // reduces), so only the no-grant memo needs invalidating.
  invalidate_no_grant_cache();
}

std::string CoScheduler::audit_invariants(
    const std::vector<Job*>& active_jobs) const {
  if (engine_ != SchedEngine::kIncremental) return {};
  const auto describe = [](const Job& job, const char* what) {
    std::ostringstream os;
    os << "incremental scheduler state incoherent: job " << job.id()
       << " (user " << job.spec().user << "): " << what;
    return os.str();
  };

  // Recompute what the caches must contain from the active set alone.
  std::map<UserId, std::int64_t> running;
  std::map<UserId, std::int64_t> active;
  for (const Job* job : active_jobs) {
    const UserId user = job->spec().user;
    running[user] += (job->maps_placed() - job->maps_completed()) +
                     (job->reduces_placed() - job->reduces_completed());
    ++active[user];

    const auto sit = seq_.find(job->id());
    if (sit == seq_.end()) return describe(*job, "active but not tracked");
    const auto uit = users_.find(user);
    if (uit == users_.end()) return describe(*job, "user state missing");
    const UserState& u = uit->second;
    if (job->maps_placed() < job->spec().num_maps &&
        u.map_candidates.count(sit->second) == 0) {
      return describe(*job, "has pending maps but is not a map candidate");
    }
    if (job->all_maps_done() && job->spec().num_reduces > 0 &&
        job->reduces_placed() < job->spec().num_reduces &&
        u.reduce_candidates.count(sit->second) == 0) {
      return describe(*job,
                      "has eligible pending reduces but is not a reduce "
                      "candidate");
    }
  }

  // Retired jobs' state must actually be freed: nothing tracked beyond the
  // active set, no user state outliving its last active job.
  if (seq_.size() != active_jobs.size()) {
    std::ostringstream os;
    os << "incremental scheduler tracks " << seq_.size() << " jobs but "
       << active_jobs.size() << " are active (retired state not freed)";
    return os.str();
  }
  for (const auto& [user, state] : users_) {
    const auto ait = active.find(user);
    if (ait == active.end()) {
      std::ostringstream os;
      os << "user " << user << " has scheduler state but no active jobs";
      return os.str();
    }
    if (state.active != ait->second || state.running != running.at(user)) {
      std::ostringstream os;
      os << "user " << user << " counters diverge: tracked active="
         << state.active << " running=" << state.running << ", recomputed "
         << "active=" << ait->second << " running=" << running.at(user);
      return os.str();
    }
    for (const auto& [s, job] : state.map_candidates) {
      const auto sit = seq_.find(job->id());
      if (sit == seq_.end() || sit->second != s) {
        return describe(*job, "stale map candidate");
      }
    }
    for (const auto& [s, job] : state.reduce_candidates) {
      const auto sit = seq_.find(job->id());
      if (sit == seq_.end() || sit->second != s) {
        return describe(*job, "stale reduce candidate");
      }
    }
  }
  return {};
}

}  // namespace cosched
