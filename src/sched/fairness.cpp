#include "sched/fairness.h"

#include <algorithm>
#include <map>

namespace cosched {

std::vector<std::pair<UserId, std::int64_t>> user_running_tasks(
    const std::vector<Job*>& jobs) {
  std::map<UserId, std::int64_t> counts;
  for (const Job* job : jobs) {
    const std::int64_t running =
        (job->maps_placed() - job->maps_completed()) +
        (job->reduces_placed() - job->reduces_completed());
    counts[job->spec().user] += running;
  }
  return {counts.begin(), counts.end()};
}

std::vector<UserId> fair_user_order(const std::vector<Job*>& jobs) {
  auto counts = user_running_tasks(jobs);
  std::stable_sort(counts.begin(), counts.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return a.second < b.second;
                     return a.first < b.first;
                   });
  std::vector<UserId> order;
  order.reserve(counts.size());
  for (const auto& [user, count] : counts) order.push_back(user);
  return order;
}

std::vector<Job*> jobs_of_user(const std::vector<Job*>& jobs, UserId user) {
  std::vector<Job*> out;
  for (Job* job : jobs) {
    if (job->spec().user == user) out.push_back(job);
  }
  return out;
}

}  // namespace cosched
