// BestRackHeap: a lazily-repaired min-heap over racks.
//
// SBS's ExploreSchedule repeatedly asks "which rack frees `d_i` containers
// earliest?" — the reference implementation answers with a full O(racks)
// scan per question. This heap answers it in O(log racks) amortized: keys
// are updated in place (update() just pushes a fresh entry) and stale heap
// entries are discarded lazily when they surface at the top, the classic
// lazy-deletion priority queue.
//
// Ordering matches the reference scan exactly: smallest key first, ties
// broken toward the lowest rack id (the reference's ascending scan keeps
// the first strict minimum, i.e. the lowest-id rack among ties).
//
// The heap is deliberately oblivious to *what* the key means (container
// availability in seconds, a guideline score, ...) so the property suite
// can drive it with arbitrary free/grant key sequences and compare against
// a brute-force argmin scan.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/ids.h"

namespace cosched {

class BestRackHeap {
 public:
  /// An empty heap over `num_racks` racks; no rack has a key yet.
  explicit BestRackHeap(std::int32_t num_racks)
      : current_(static_cast<std::size_t>(num_racks),
                 std::numeric_limits<double>::quiet_NaN()) {}

  /// Set (or overwrite) `rack`'s key. Stale entries for the rack stay in
  /// the heap and are skipped when popped.
  void update(RackId rack, double key) {
    current_[static_cast<std::size_t>(rack.value())] = key;
    entries_.push_back(Entry{key, rack});
    std::push_heap(entries_.begin(), entries_.end(), Later{});
  }

  /// The rack with the smallest key (ties: lowest rack id), or invalid when
  /// every rack's entry has been popped or nothing was ever updated.
  [[nodiscard]] RackId best() {
    repair();
    return entries_.empty() ? RackId::invalid() : entries_.front().rack;
  }

  /// Key of best(); meaningless when best() is invalid.
  [[nodiscard]] double best_key() {
    repair();
    return entries_.empty() ? std::numeric_limits<double>::quiet_NaN()
                            : entries_.front().key;
  }

  /// Remove and return the best rack (invalid when empty). The rack's
  /// current key is forgotten, so it stays out until the next update().
  RackId pop_best() {
    repair();
    if (entries_.empty()) return RackId::invalid();
    const RackId rack = entries_.front().rack;
    std::pop_heap(entries_.begin(), entries_.end(), Later{});
    entries_.pop_back();
    current_[static_cast<std::size_t>(rack.value())] =
        std::numeric_limits<double>::quiet_NaN();
    return rack;
  }

  [[nodiscard]] bool empty() {
    repair();
    return entries_.empty();
  }

 private:
  struct Entry {
    double key;
    RackId rack;
  };
  /// std::push_heap comparator for a *min*-heap with (key, rack-id)
  /// tie-breaking: `a` sorts later than `b` when its key is larger, or on
  /// equal keys when its rack id is higher.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.key != b.key) return a.key > b.key;
      return a.rack.value() > b.rack.value();
    }
  };

  /// Discard stale top entries: an entry is live iff it matches the rack's
  /// current key bit-for-bit (NaN current = rack removed, never matches).
  void repair() {
    while (!entries_.empty()) {
      const Entry& top = entries_.front();
      const double cur = current_[static_cast<std::size_t>(top.rack.value())];
      if (cur == top.key) return;  // NaN != anything, so removed racks pop
      std::pop_heap(entries_.begin(), entries_.end(), Later{});
      entries_.pop_back();
    }
  }

  /// Authoritative key per rack; NaN = no live entry.
  std::vector<double> current_;
  std::vector<Entry> entries_;
};

}  // namespace cosched
