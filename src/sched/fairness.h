// The fair-sharing user policy (Algorithm 2, line 1).
//
// Users are ordered by their current running-task count, fewest first (each
// user's fair share is equal, so the most under-served user is the one with
// the fewest running tasks). Ties break by user id for determinism.
#pragma once

#include <vector>

#include "cluster/job.h"
#include "common/ids.h"

namespace cosched {

/// Running tasks (placed, not completed) per user over the given jobs.
[[nodiscard]] std::vector<std::pair<UserId, std::int64_t>> user_running_tasks(
    const std::vector<Job*>& jobs);

/// Users with at least one active job, most under-served first.
[[nodiscard]] std::vector<UserId> fair_user_order(
    const std::vector<Job*>& jobs);

/// `jobs` filtered to one user, arrival order preserved.
[[nodiscard]] std::vector<Job*> jobs_of_user(const std::vector<Job*>& jobs,
                                             UserId user);

}  // namespace cosched
