// Per-run fault accounting. Header-only POD so the metrics layer can embed
// it in RunMetrics without linking against the faults library.
//
// Every counter is zero for a run with an empty fault plan.
#pragma once

#include <cstdint>

namespace cosched {

struct FaultSummary {
  /// Task attempts slowed by the straggler fault.
  std::int64_t stragglers = 0;
  /// Map / reduce attempts killed mid-run (each implies one re-execution).
  std::int64_t maps_killed = 0;
  std::int64_t reduces_killed = 0;
  /// OCS outage windows that began during the run.
  std::int64_t ocs_outages = 0;
  /// OCS flows (pending or mid-circuit) evicted onto the EPS by outages.
  std::int64_t flows_evicted = 0;
  /// Total simulated seconds the OCS was unavailable.
  double ocs_downtime_sec = 0.0;

  [[nodiscard]] std::int64_t tasks_killed() const {
    return maps_killed + reduces_killed;
  }
};

}  // namespace cosched
