// FaultInjector: the runtime half of the fault layer — the deterministic
// randomness behind a FaultPlan, plus the run's fault accounting.
//
// Determinism contract (docs/FAULTS.md):
//   * Every fault family draws from its own RNG stream, forked from the
//     run seed with a fixed per-family stream id. Adding or removing one
//     fault family therefore never perturbs the draws of another.
//   * Draws happen inside simulation callbacks, whose order is totally
//     ordered by the event queue — so a fixed (plan, seed) pair replays
//     bit-for-bit, regardless of the experiment runner's --threads value
//     (each run is single-threaded; threads only shard independent runs).
//   * An empty plan draws nothing and schedules nothing: the run is
//     bit-for-bit identical to one without the faults layer.
#pragma once

#include <optional>

#include "common/rng.h"
#include "common/units.h"
#include "faults/fault_spec.h"
#include "faults/fault_stats.h"

namespace cosched {

class FaultInjector {
 public:
  /// Stream ids for per-family RNG forks (documented in docs/FAULTS.md).
  static constexpr std::uint64_t kStragglerStream = 0xFA010001ULL;
  static constexpr std::uint64_t kKillStream = 0xFA010002ULL;
  static constexpr std::uint64_t kJitterStream = 0xFA010003ULL;

  FaultInjector(FaultPlan plan, std::uint64_t seed);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] bool enabled() const { return !plan_.empty(); }

  [[nodiscard]] bool has_straggler() const {
    return plan_.straggler.has_value();
  }
  [[nodiscard]] bool has_container_kill() const {
    return plan_.container_kill.has_value();
  }
  [[nodiscard]] bool has_reconfig_jitter() const {
    return plan_.reconfig_jitter.has_value();
  }

  /// Service-time multiplier for one task attempt (1.0 = no straggle).
  /// Requires has_straggler(); counts straggles into the summary.
  [[nodiscard]] double draw_straggler_multiplier();

  /// Kill point for one task attempt as a fraction of its run duration, or
  /// nullopt when this attempt survives. Requires has_container_kill().
  [[nodiscard]] std::optional<double> draw_kill_point();

  /// Jittered reconfiguration delay around the nominal delta. Requires
  /// has_reconfig_jitter().
  [[nodiscard]] Duration jittered_reconfig_delay(Duration nominal);

  [[nodiscard]] FaultSummary& stats() { return stats_; }
  [[nodiscard]] const FaultSummary& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  Rng straggler_rng_;
  Rng kill_rng_;
  Rng jitter_rng_;
  FaultSummary stats_;
};

}  // namespace cosched
