#include "faults/fault_spec.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace cosched {

namespace {

/// Split `s` on `sep` (no escaping; empty fields preserved).
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

/// Strict double parse; an optional trailing 's' (seconds) is allowed when
/// `allow_seconds_suffix` — everything else trailing is an error.
bool parse_double(const std::string& s, bool allow_seconds_suffix,
                  double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno == ERANGE || end == s.c_str()) return false;
  if (*end == 's' && allow_seconds_suffix) ++end;
  if (*end != '\0') return false;
  *out = v;
  return true;
}

/// One `key=value` pair of a clause.
struct KeyValue {
  std::string key;
  std::string value;
};

bool parse_kv(const std::string& part, KeyValue* kv, std::string* error,
              const std::string& clause_name) {
  const std::size_t eq = part.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= part.size()) {
    *error = clause_name + ": expected key=value, got '" + part + "'";
    return false;
  }
  kv->key = part.substr(0, eq);
  kv->value = part.substr(eq + 1);
  return true;
}

bool fail(std::string* error, const std::string& msg) {
  *error = msg;
  return false;
}

bool parse_clause(const std::string& clause, FaultPlan* plan,
                  std::string* error) {
  const std::vector<std::string> parts = split(clause, ':');
  const std::string& name = parts[0];

  if (name == "straggler") {
    if (plan->straggler.has_value()) {
      return fail(error, "duplicate straggler clause");
    }
    StragglerFault f;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      KeyValue kv;
      if (!parse_kv(parts[i], &kv, error, name)) return false;
      double v = 0.0;
      if (!parse_double(kv.value, false, &v)) {
        return fail(error, "straggler: bad number '" + kv.value + "'");
      }
      if (kv.key == "p") {
        if (v < 0.0 || v > 1.0) {
          return fail(error, "straggler: p must be in [0, 1]");
        }
        f.p = v;
      } else if (kv.key == "slow") {
        if (v <= 1.0) return fail(error, "straggler: slow must be > 1");
        f.slow = v;
      } else {
        return fail(error, "straggler: unknown key '" + kv.key + "'");
      }
    }
    plan->straggler = f;
    return true;
  }

  if (name == "container-kill") {
    if (plan->container_kill.has_value()) {
      return fail(error, "duplicate container-kill clause");
    }
    ContainerKillFault f;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      KeyValue kv;
      if (!parse_kv(parts[i], &kv, error, name)) return false;
      double v = 0.0;
      if (!parse_double(kv.value, false, &v)) {
        return fail(error, "container-kill: bad number '" + kv.value + "'");
      }
      if (kv.key == "p") {
        if (v < 0.0 || v >= 1.0) {
          return fail(error,
                      "container-kill: p must be in [0, 1) (p = 1 would "
                      "re-execute forever)");
        }
        f.p = v;
      } else {
        return fail(error, "container-kill: unknown key '" + kv.key + "'");
      }
    }
    plan->container_kill = f;
    return true;
  }

  if (name == "ocs-outage") {
    OcsOutageFault f;
    bool have_at = false;
    bool have_dur = false;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      KeyValue kv;
      if (!parse_kv(parts[i], &kv, error, name)) return false;
      if (kv.key == "plane") {
        // Plane indices are bare non-negative integers (no 's' suffix).
        double p = 0.0;
        const auto plane = [&]() -> std::int32_t {
          if (!parse_double(kv.value, false, &p)) return -1;
          const auto n = static_cast<std::int32_t>(p);
          return (p >= 0.0 && static_cast<double>(n) == p) ? n : -1;
        }();
        if (plane < 0) {
          return fail(error, "ocs-outage: plane must be a non-negative "
                             "integer, got '" + kv.value + "'");
        }
        f.plane = plane;
        continue;
      }
      double v = 0.0;
      if (!parse_double(kv.value, true, &v)) {
        return fail(error, "ocs-outage: bad duration '" + kv.value + "'");
      }
      if (kv.key == "at") {
        if (v < 0.0) return fail(error, "ocs-outage: at must be >= 0");
        f.at = SimTime::seconds(v);
        have_at = true;
      } else if (kv.key == "dur") {
        if (v <= 0.0) return fail(error, "ocs-outage: dur must be > 0");
        f.dur = Duration::seconds(v);
        have_dur = true;
      } else {
        return fail(error, "ocs-outage: unknown key '" + kv.key + "'");
      }
    }
    if (!have_at || !have_dur) {
      return fail(error, "ocs-outage requires at= and dur=");
    }
    plan->ocs_outages.push_back(f);
    return true;
  }

  if (name == "reconfig-jitter") {
    if (plan->reconfig_jitter.has_value()) {
      return fail(error, "duplicate reconfig-jitter clause");
    }
    ReconfigJitterFault f;
    bool have_pct = false;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      KeyValue kv;
      if (!parse_kv(parts[i], &kv, error, name)) return false;
      double v = 0.0;
      if (!parse_double(kv.value, false, &v)) {
        return fail(error, "reconfig-jitter: bad number '" + kv.value + "'");
      }
      if (kv.key == "pct") {
        if (v <= 0.0 || v > 100.0) {
          return fail(error, "reconfig-jitter: pct must be in (0, 100]");
        }
        f.pct = v / 100.0;
        have_pct = true;
      } else {
        return fail(error, "reconfig-jitter: unknown key '" + kv.key + "'");
      }
    }
    if (!have_pct) return fail(error, "reconfig-jitter requires pct=");
    plan->reconfig_jitter = f;
    return true;
  }

  if (name == "trem-noise") {
    if (plan->trem_noise.has_value()) {
      return fail(error, "duplicate trem-noise clause");
    }
    TremNoiseFault f;
    bool have_pct = false;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      KeyValue kv;
      if (!parse_kv(parts[i], &kv, error, name)) return false;
      double v = 0.0;
      if (!parse_double(kv.value, false, &v)) {
        return fail(error, "trem-noise: bad number '" + kv.value + "'");
      }
      if (kv.key == "pct") {
        if (v < 0.0) return fail(error, "trem-noise: pct must be >= 0");
        f.rate = v / 100.0;
        have_pct = true;
      } else {
        return fail(error, "trem-noise: unknown key '" + kv.key + "'");
      }
    }
    if (!have_pct) return fail(error, "trem-noise requires pct=");
    plan->trem_noise = f;
    return true;
  }

  return fail(error, "unknown fault '" + name + "'");
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(const std::string& spec,
                                          std::string* error) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& clause : split(spec, ',')) {
    if (clause.empty()) {
      *error = "empty fault clause";
      return std::nullopt;
    }
    if (!parse_clause(clause, &plan, error)) return std::nullopt;
  }
  return plan;
}

std::string FaultPlan::to_spec() const {
  std::string out;
  auto append = [&out](const std::string& clause) {
    if (!out.empty()) out += ',';
    out += clause;
  };
  if (straggler.has_value()) {
    append("straggler:p=" + fmt(straggler->p) +
           ":slow=" + fmt(straggler->slow));
  }
  if (container_kill.has_value()) {
    append("container-kill:p=" + fmt(container_kill->p));
  }
  for (const OcsOutageFault& o : ocs_outages) {
    std::string clause = "ocs-outage:at=" + fmt(o.at.sec()) +
                         "s:dur=" + fmt(o.dur.sec()) + "s";
    if (o.plane >= 0) clause += ":plane=" + std::to_string(o.plane);
    append(clause);
  }
  if (reconfig_jitter.has_value()) {
    append("reconfig-jitter:pct=" + fmt(reconfig_jitter->pct * 100.0));
  }
  if (trem_noise.has_value()) {
    append("trem-noise:pct=" + fmt(trem_noise->rate * 100.0));
  }
  return out;
}

}  // namespace cosched
