// Fault-injection plans: what can go wrong in a run, parsed from a spec
// string.
//
// A FaultPlan is a declarative description of every fault a run injects —
// task stragglers, container kills with re-execution, OCS outages with
// graceful hybrid→EPS-only degradation, circuit-reconfiguration jitter
// around delta, and structured T_rem estimator noise. Plans come from the
// shared `--faults=` bench flag (or are built directly in code) with the
// grammar
//
//   spec    := clause (',' clause)*
//   clause  := name (':' key '=' value)*
//   name    := straggler | container-kill | ocs-outage
//            | reconfig-jitter | trem-noise
//
//   straggler:p=0.05:slow=2.0      p: per-attempt probability, slow: service
//                                  multiplier (> 1)
//   container-kill:p=0.01          p: per-attempt probability of a mid-run
//                                  kill; the task re-executes
//   ocs-outage:at=300s:dur=60s     repeatable; OCS unavailable in
//                                  [at, at+dur), elephants fall back to EPS;
//                                  an optional plane=N (N >= 0) fails only
//                                  circuit plane N of an ocs:K fabric
//   reconfig-jitter:pct=50         each circuit setup pays
//                                  delta * U[1-pct/100, 1+pct/100]
//   trem-noise:pct=30              T_rem estimator error rate (overrides
//                                  SimConfig::trem_error_rate; subsumes the
//                                  Figure-7 knob)
//
// Durations accept an optional trailing 's'. The empty spec parses to the
// empty plan, and an empty plan is guaranteed bit-for-bit identical to a
// run without the faults layer at all (see docs/FAULTS.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"

namespace cosched {

struct StragglerFault {
  /// Probability that one task *attempt* straggles.
  double p = 0.05;
  /// Service-time multiplier applied to a straggling attempt (> 1).
  double slow = 2.0;
};

struct ContainerKillFault {
  /// Probability that one task attempt is killed mid-run and re-executed.
  double p = 0.01;
};

struct OcsOutageFault {
  /// Outage window [at, at + dur): no new flow is routed to the OCS and
  /// every in-flight circuit transfer is evicted onto the EPS.
  SimTime at = SimTime::zero();
  Duration dur = Duration::zero();
  /// Target: -1 (the default) fails the whole fabric; >= 0 fails only that
  /// circuit plane of an ocs:K fabric — its in-flight transfers are evicted
  /// onto the EPS, queued demand stays for the surviving planes.
  std::int32_t plane = -1;
};

struct ReconfigJitterFault {
  /// Relative half-width: each setup pays delta * U[1 - pct, 1 + pct].
  double pct = 0.5;
};

struct TremNoiseFault {
  /// T_rem estimation error rate e (the paper's Figure-7 knob).
  double rate = 0.0;
};

/// The full fault description of one run. Default-constructed plans are
/// empty; empty plans inject nothing and perturb nothing.
struct FaultPlan {
  std::optional<StragglerFault> straggler;
  std::optional<ContainerKillFault> container_kill;
  std::vector<OcsOutageFault> ocs_outages;
  std::optional<ReconfigJitterFault> reconfig_jitter;
  std::optional<TremNoiseFault> trem_noise;

  [[nodiscard]] bool empty() const {
    return !straggler.has_value() && !container_kill.has_value() &&
           ocs_outages.empty() && !reconfig_jitter.has_value() &&
           !trem_noise.has_value();
  }

  /// The T_rem error rate in force: the trem-noise fault when present,
  /// otherwise the legacy SimConfig knob.
  [[nodiscard]] double trem_error_or(double base) const {
    return trem_noise.has_value() ? trem_noise->rate : base;
  }

  /// Parse a spec string (see header comment for the grammar). Returns
  /// nullopt and sets *error on malformed input; "" yields the empty plan.
  [[nodiscard]] static std::optional<FaultPlan> parse(const std::string& spec,
                                                      std::string* error);

  /// Canonical round-trippable spec string ("" for the empty plan).
  [[nodiscard]] std::string to_spec() const;
};

}  // namespace cosched
