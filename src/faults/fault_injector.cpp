#include "faults/fault_injector.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace cosched {

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)),
      straggler_rng_(Rng(seed).fork(kStragglerStream)),
      kill_rng_(Rng(seed).fork(kKillStream)),
      jitter_rng_(Rng(seed).fork(kJitterStream)) {}

double FaultInjector::draw_straggler_multiplier() {
  COSCHED_DCHECK(has_straggler());
  if (!straggler_rng_.bernoulli(plan_.straggler->p)) return 1.0;
  ++stats_.stragglers;
  return plan_.straggler->slow;
}

std::optional<double> FaultInjector::draw_kill_point() {
  COSCHED_DCHECK(has_container_kill());
  if (!kill_rng_.bernoulli(plan_.container_kill->p)) return std::nullopt;
  // Strictly inside the attempt: the kill always lands before completion, so
  // a killed attempt can never also complete.
  return kill_rng_.uniform(0.05, 0.95);
}

Duration FaultInjector::jittered_reconfig_delay(Duration nominal) {
  COSCHED_DCHECK(has_reconfig_jitter());
  const double pct = plan_.reconfig_jitter->pct;
  const double factor = jitter_rng_.uniform(1.0 - pct, 1.0 + pct);
  return nominal * std::max(factor, 0.0);
}

}  // namespace cosched
