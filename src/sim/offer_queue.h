// OfferQueue: the event-driven dispatch index (DESIGN.md §11).
//
// A dispatch wave offers free containers to the scheduler rack by rack.
// The reference implementation scans all racks every pass; at 256+ racks
// with waves fired per event that scan is the dominant self-time of
// `driver.dispatch`. The OfferQueue keeps two pieces of state so a wave
// touches only the racks that can matter:
//
//   * free-set membership — a bitset over racks with at least one free
//     container, maintained by the driver at every allocate/release. A
//     wave iterates set bits in round-robin order from the rotating
//     start, so the visit order (and thus every scheduler decision) is
//     bit-for-bit the reference scan order with the free==0 `continue`s
//     deleted rather than skipped one by one.
//
//   * decline stamps — per-rack epoch stamps recording "the scheduler
//     declined this rack at epoch E". The driver bumps the epoch at
//     every scheduler-visible state change (grant, completion, kill,
//     arrival, plan change — the same sites that invalidate the PR 7
//     no-grant memo). A re-offer may be skipped only when the rack's
//     stamp equals the current epoch AND the scheduler declares its
//     declines stable (JobScheduler::declines_are_stable — pure
//     declines, no skip counters). The reference scan would call
//     pick_task and get the identical nullopt with no side effects, so
//     skipping the call is invisible to the simulation.
//
//   * a global decline stamp — "the scheduler proved no rack can be
//     granted at epoch E" (JobScheduler::last_decline_was_global, e.g.
//     an empty candidate index). Ends an all-decline wave after one
//     pick instead of one per free rack — the decisive case on an
//     underloaded cluster where the free set is nearly all racks.
//
// The queue never decides anything by itself: it is a pure index over
// driver-owned state, and `audit()` recomputes the free set from the
// Cluster to prove coherence at every dispatch boundary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"

namespace cosched {

class Cluster;

class OfferQueue {
 public:
  explicit OfferQueue(std::int32_t num_racks);

  /// `rack` has at least one free container (idempotent).
  void mark_free(RackId rack);
  /// `rack` has no free containers (idempotent).
  void mark_full(RackId rack);
  [[nodiscard]] bool is_free(RackId rack) const;

  /// A scheduler-visible state change: previously-stamped declines may
  /// no longer hold.
  void note_state_changed() { ++epoch_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// The scheduler declined an offer on `rack` at the current epoch.
  void note_declined(RackId rack);
  /// Whether `rack`'s last decline happened at the current epoch (no
  /// state change since — a stable-decline scheduler would decline again).
  [[nodiscard]] bool declined_at_current_epoch(RackId rack) const;

  /// The scheduler reported a *rack-independent* decline
  /// (JobScheduler::last_decline_was_global): no rack can be granted at
  /// the current epoch. Valid until the next note_state_changed.
  void note_declined_globally() { global_declined_at_ = epoch_; }
  [[nodiscard]] bool declined_globally_at_current_epoch() const {
    return global_declined_at_ == epoch_;
  }

  /// Visit every rack in the free set exactly once, in round-robin order
  /// starting at `start` (start, start+1, ..., wrap). `fn(RackId)` returns
  /// false to stop early. `fn` may clear the visited rack's own bit (a
  /// grant consuming the rack's last slot); it must not set bits — no
  /// container is ever released inside a dispatch wave.
  template <typename Fn>
  void for_each_free_from(std::int32_t start, Fn&& fn) {
    if (visit_range(start, num_racks_, fn)) visit_range(0, start, fn);
  }

  /// Recompute the free set from the cluster and compare; empty when
  /// coherent, else a description of the first divergence (the invariant
  /// auditor turns it into an AuditFailure).
  [[nodiscard]] std::string audit(const Cluster& cluster) const;

 private:
  // Visit set bits in [lo, hi); false if fn stopped the iteration. Words
  // are re-read per step so a bit cleared by fn at the visited rack can
  // never be served from a stale cache.
  template <typename Fn>
  bool visit_range(std::int32_t lo, std::int32_t hi, Fn& fn) {
    std::int32_t i = lo;
    while (i < hi) {
      const std::uint64_t word =
          words_[static_cast<std::size_t>(i >> 6)] >>
          (static_cast<std::uint32_t>(i) & 63U);
      if (word == 0) {
        i = (i | 63) + 1;  // next word boundary
        continue;
      }
      i += count_trailing_zeros(word);
      if (i >= hi) return true;
      if (!fn(RackId{i})) return false;
      ++i;
    }
    return true;
  }

  [[nodiscard]] static std::int32_t count_trailing_zeros(std::uint64_t w);

  std::int32_t num_racks_;
  std::vector<std::uint64_t> words_;
  /// declined_at_[rack] == epoch at the rack's most recent decline; 0 (a
  /// value epoch_ never takes) means "never declined".
  std::vector<std::uint64_t> declined_at_;
  std::uint64_t epoch_ = 1;
  /// Epoch of the most recent rack-independent decline; 0 = never.
  std::uint64_t global_declined_at_ = 0;
};

}  // namespace cosched
