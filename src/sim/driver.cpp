#include "sim/driver.h"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/check.h"
#include "common/log.h"
#include "fabric/fabric_factory.h"
#include "obs/observability.h"
#include "obs/perf_monitor.h"
#include "obs/profile.h"

namespace cosched {

SimulationDriver::SimulationDriver(SimConfig cfg, std::vector<JobSpec> workload,
                                   std::unique_ptr<JobScheduler> scheduler)
    : cfg_(cfg),
      workload_(std::move(workload)),
      scheduler_(std::move(scheduler)),
      net_(sim_, cfg_.topo, make_fabric(sim_, cfg_.topo, cfg_.fabric)),
      cluster_(cfg_.topo),
      rng_(cfg_.seed),
      trem_(Rng(cfg_.seed).fork(0xbeef),
            cfg_.faults.trem_error_or(cfg_.trem_error_rate)),
      faults_(cfg_.faults, cfg_.seed),
      running_by_rack_(static_cast<std::size_t>(cfg_.topo.num_racks)),
      offers_(cfg.topo.num_racks) {
  COSCHED_CHECK(scheduler_ != nullptr);
  cfg_.topo.validate();
  // Every rack starts with all containers free.
  for (std::int32_t r = 0; r < cfg_.topo.num_racks; ++r) {
    offers_.mark_free(RackId{r});
  }
  net_.eps().set_rate_engine(cfg_.eps_engine);
  scheduler_->set_sched_engine(cfg_.sched_engine);
  if (cfg_.audit) {
    audit_ = std::make_unique<InvariantAuditor>(sim_, net_, cluster_,
                                                net_.fabric(), cfg_.topo);
    // The cct-lower-bound check holds whenever the fabric's per-setup
    // delay is what the bound formula assumes. Reconfiguration jitter
    // draws delta * U[1-pct, 1+pct] per setup — possibly *below* the base
    // delta — so the bound is no longer a guarantee under that fault.
    audit_->set_cct_bound_check(!faults_.has_reconfig_jitter());
  }
  net_.fabric().set_on_flow_complete(
      [this](Flow& f) { on_flow_complete(f); });
  if (faults_.has_reconfig_jitter()) {
    net_.fabric().set_reconfig_delay_provider([this] {
      return faults_.jittered_reconfig_delay(cfg_.topo.ocs_reconfig_delay);
    });
  }
  if (cfg_.obs != nullptr) {
    net_.fabric().set_trace(&cfg_.obs->trace);
    net_.fabric().set_observability(cfg_.obs);
    register_counters();
  }
}

void SimulationDriver::register_counters() {
  CounterRegistry& c = cfg_.obs->counters;
  c.add_gauge("sim.events_live",
              [this] { return static_cast<double>(sim_.events_pending()); });
  c.add_gauge("sim.events_raw", [this] {
    return static_cast<double>(sim_.events_pending_raw());
  });
  c.add_gauge("jobs.active",
              [this] { return static_cast<double>(active_jobs_.size()); });
  c.add_gauge("tasks.pending",
              [this] { return static_cast<double>(pending_tasks_); });
  const double total_slots = static_cast<double>(
      cfg_.topo.num_racks * cfg_.topo.slots_per_rack());
  c.add_gauge("cluster.containers_used", [this, total_slots] {
    return total_slots - static_cast<double>(cluster_.total_free_slots());
  });
  for (std::int32_t r = 0; r < cfg_.topo.num_racks; ++r) {
    c.add_gauge("cluster.rack_used." + std::to_string(r), [this, r] {
      return static_cast<double>(cluster_.used_slots(RackId{r}));
    });
  }
  c.add_gauge("ocs.circuits_active", [this] {
    return static_cast<double>(net_.fabric().active_circuits());
  });
  c.add_gauge("ocs.utilization", [this] {
    return static_cast<double>(net_.fabric().active_circuits()) /
           static_cast<double>(cfg_.topo.num_racks);
  });
  c.add_gauge("ocs.transfers_active", [this] {
    return static_cast<double>(net_.fabric().active_transfers());
  });
  c.add_gauge("ocs.gb_in_flight", [this] {
    return net_.fabric().bytes_in_flight().in_gigabytes();
  });
  c.add_gauge("coflows.active", [this] {
    return static_cast<double>(net_.fabric().active_coflows());
  });
  c.add_gauge("eps.flows_active", [this] {
    return static_cast<double>(net_.eps().active_flows());
  });
  c.add_gauge("eps.gb_in_flight",
              [this] { return net_.eps().bytes_in_flight().in_gigabytes(); });
  c.add_gauge("eps.replans", [this] {
    return static_cast<double>(net_.eps().replans());
  });
  c.add_gauge("eps.groups_active", [this] {
    return static_cast<double>(net_.eps().active_groups());
  });
  c.add_gauge("sim.queue_compactions", [this] {
    return static_cast<double>(sim_.queue_compactions());
  });
}

SchedContext SimulationDriver::make_context() {
  return SchedContext{sim_.now(), cfg_.topo, cluster_,
                      active_jobs_, *this,   rng_,
                      cfg_.reduce_slowstart,  cfg_.obs,
                      cfg_.faults.trem_error_or(cfg_.trem_error_rate) > 0.0,
                      &net_.fabric(), cfg_.cct_bound};
}

RunMetrics SimulationDriver::run() {
  // Per-run wall-clock capture: when the global Profiler / PerfMonitor are
  // enabled and an obs bundle is attached, bracket this run with the
  // thread-local captures so the bundle's profile/perf deltas cover exactly
  // this run's thread — no conflation across repetitions or with parallel
  // workers sharing the global registries.
  const bool capture_prof = cfg_.obs != nullptr && Profiler::enabled();
  const bool capture_perf = cfg_.obs != nullptr && PerfMonitor::enabled();
  if (capture_prof) Profiler::begin_capture(&cfg_.obs->profile);
  if (capture_perf) PerfMonitor::begin_capture(&cfg_.obs->perf);

  if (cfg_.heartbeat_sec > 0.0) {
    wall_start_ = std::chrono::steady_clock::now();
    next_beat_ = wall_start_ + std::chrono::duration_cast<
                                   std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(
                                       cfg_.heartbeat_sec));
  }

  for (std::size_t i = 0; i < workload_.size(); ++i) {
    sim_.schedule_at(workload_[i].arrival, [this, i] { on_job_arrival(i); });
  }
  for (const OcsOutageFault& o : faults_.plan().ocs_outages) {
    sim_.schedule_at(o.at, [this, o] { begin_ocs_outage(o); });
    sim_.schedule_at(o.at + o.dur, [this, o] { end_ocs_outage(o); });
  }
  while (true) {
    // (Re-)arm the counter sampler: it disarms itself whenever the queue
    // would otherwise drain, so each recovery round needs a fresh arm.
    if (cfg_.obs != nullptr) cfg_.obs->counters.arm(sim_);
    run_event_loop();
    if (jobs_completed_ == static_cast<std::int64_t>(workload_.size())) break;
    COSCHED_CHECK_MSG(break_deadlock(),
                      "simulation drained with "
                          << static_cast<std::int64_t>(workload_.size()) -
                                 jobs_completed_
                          << " jobs incomplete and no recovery possible");
  }
  if (audit_) audit_->final_check();
  if (cfg_.heartbeat_sec > 0.0) emit_heartbeat();  // final summary beat
  if (capture_prof) Profiler::end_capture();
  if (capture_perf) PerfMonitor::end_capture();

  RunMetrics m;
  m.scheduler = scheduler_->name();
  m.seed = cfg_.seed;
  m.makespan = last_completion_ - SimTime::zero();
  m.ocs_bytes = net_.ocs_bytes_transferred();
  m.eps_bytes = net_.eps_bytes_transferred();
  m.local_bytes = net_.local_bytes_transferred();
  m.events_executed = sim_.events_executed();
  m.dispatch_waves = dispatch_waves_;
  m.faults = faults_.stats();
  // Every container must be back: killed tasks release their slots and
  // every retry ran to completion.
  COSCHED_CHECK_MSG(cluster_.total_free_slots() ==
                        cfg_.topo.num_racks * cfg_.topo.slots_per_rack(),
                    "containers leaked at end of run");
  m.jobs.reserve(jobs_.size());
  for (const auto& job : jobs_) {
    JobRecord rec;
    rec.id = job->id();
    rec.user = job->spec().user;
    rec.shuffle_heavy = job->shuffle_heavy();
    rec.has_shuffle = job->has_shuffle();
    rec.arrival = job->spec().arrival;
    rec.completion = job->completion_time();
    rec.jct = job->completion_time() - job->spec().arrival;
    if (rec.has_shuffle) {
      COSCHED_CHECK(job->coflow().completed());
      rec.cct = job->coflow().cct();
      rec.shuffle_bytes = job->coflow().total_demand();
      // The *fabric's* bound, always (regardless of the planner's
      // cct_bound escape hatch): on mesh/ring/rotor the old ocs_link/
      // reconfig_delay formula reported a bound for a fabric the run
      // never used (docs/FABRICS.md, "The bound contract").
      rec.cct_lower_bound =
          net_.fabric().cct_lower_bound(job->coflow().cross_rack_matrix());
      rec.all_flows_ocs = true;
      for (const auto& f : job->coflow().flows()) {
        // Same-rack flows never enter the cross-rack matrix the bound is
        // computed over; only an EPS detour can invalidate the bound.
        if (f->path() == FlowPath::kLocal) continue;
        if (f->path() != FlowPath::kOcs) rec.all_flows_ocs = false;
      }
    }
    for (const auto& [rack, output] : job->map_output_by_rack()) {
      rec.map_output_bytes += output;
    }
    for (const Task& t : job->maps()) {
      rec.last_map_completion =
          std::max(rec.last_map_completion, t.completed_at());
    }
    for (const Task& t : job->reduces()) {
      rec.first_reduce_placement =
          std::min(rec.first_reduce_placement, t.placed_at());
    }
    m.jobs.push_back(rec);
  }
  return m;
}

void SimulationDriver::run_event_loop() {
  const bool monitored = PerfMonitor::enabled();
  const bool beating = cfg_.heartbeat_sec > 0.0;
  if (!monitored && !beating) {
    // Dark path: identical to the instrumented loop below, since run() is
    // exactly `while (step()) {}` — just without the per-event overhead.
    sim_.run();
    return;
  }
  // The wall clock is consulted once per kBeatCheckStride events, not per
  // event, so heartbeating costs ~nothing even at 100k-job scale.
  constexpr std::uint64_t kBeatCheckStride = 1024;
  std::uint64_t until_check = kBeatCheckStride;
  while (true) {
    bool more;
    if (monitored) {
      const std::size_t pending = sim_.events_pending();
      PerfScope perf(PerfPhase::kEventDispatch);
      perf.set_size(pending);
      more = sim_.step();
    } else {
      more = sim_.step();
    }
    if (!more) break;
    if (beating && --until_check == 0) {
      until_check = kBeatCheckStride;
      if (std::chrono::steady_clock::now() >= next_beat_) emit_heartbeat();
    }
  }
}

void SimulationDriver::emit_heartbeat() {
  const auto now = std::chrono::steady_clock::now();
  const double wall_sec =
      std::chrono::duration<double>(now - wall_start_).count();
  const std::uint64_t events = sim_.events_executed();
  const double window_sec = wall_sec - last_beat_wall_sec_;
  const double ev_per_sec =
      window_sec > 0.0
          ? static_cast<double>(events - last_beat_events_) / window_sec
          : 0.0;
  // One formatted write so concurrent repetitions interleave per line, not
  // per token.
  std::ostringstream line;
  line << "[heartbeat] wall=" << std::fixed << std::setprecision(1)
       << wall_sec << "s sim=" << sim_.now().sec() << "s events=" << events
       << " ev/s=" << std::setprecision(0) << ev_per_sec
       << " jobs=" << jobs_completed_ << "/" << workload_.size()
       << " rss_hwm_mb=" << rss_high_water_bytes() / (1024 * 1024) << "\n";
  std::ostream& os =
      cfg_.heartbeat_out != nullptr ? *cfg_.heartbeat_out : std::cerr;
  os << line.str() << std::flush;
  last_beat_events_ = events;
  last_beat_wall_sec_ = wall_sec;
  next_beat_ =
      now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(cfg_.heartbeat_sec));
}

void SimulationDriver::on_job_arrival(std::size_t workload_index) {
  const JobSpec& spec = workload_[workload_index];
  jobs_.push_back(std::make_unique<Job>(spec, cfg_.topo.elephant_threshold,
                                        task_ids_,
                                        CoflowId{spec.id.value()}));
  Job* job = jobs_.back().get();
  job_by_id_[job->id()] = job;
  active_jobs_.push_back(job);
  pending_tasks_ += spec.num_maps + spec.num_reduces;

  if (cfg_.obs != nullptr) {
    cfg_.obs->trace.record({.kind = TraceEventKind::kJobArrival,
                            .at = sim_.now(),
                            .job = job->id()});
  }
  SchedContext ctx = make_context();
  scheduler_->on_job_submitted(*job, ctx);
  COSCHED_CHECK_MSG(job->has_block_placement(),
                    "scheduler failed to place input of job " << job->id());
  note_sched_state_changed();
  request_dispatch();
}

void SimulationDriver::request_dispatch() {
  if (dispatch_scheduled_) return;
  if (pending_tasks_ == 0 || cluster_.total_free_slots() == 0) return;
  dispatch_scheduled_ = true;
  sim_.schedule_after(Duration::zero(), [this] {
    dispatch_scheduled_ = false;
    dispatch();
  });
}

void SimulationDriver::dispatch() {
  COSCHED_PROF_SCOPE("driver.dispatch");
  PerfScope perf(PerfPhase::kDriverDispatch);
  perf.set_size(static_cast<std::uint64_t>(cfg_.topo.num_racks));
  if (pending_tasks_ == 0) return;
  ++dispatch_waves_;
  SchedContext ctx = make_context();
  // One container per rack per pass, racks visited round-robin from a
  // rotating start: this models YARN granting containers as NodeManagers
  // across the cluster heartbeat, rather than draining one rack at a time
  // (which would artificially clump a job's tasks onto the first rack).
  const std::int32_t start = dispatch_rotation_++ % cfg_.topo.num_racks;
  if (cfg_.dispatch_engine == DispatchEngine::kScan) {
    dispatch_scan(ctx, start);
  } else {
    dispatch_offer_queue(ctx, start);
  }
}

void SimulationDriver::dispatch_scan(SchedContext& ctx, std::int32_t start) {
  const std::int32_t racks = cfg_.topo.num_racks;
  bool progress = true;
  bool placed_any = false;
  while (progress && pending_tasks_ > 0) {
    progress = false;
    for (std::int32_t k = 0; k < racks && pending_tasks_ > 0; ++k) {
      const RackId rack{(start + k) % racks};
      if (cluster_.free_slots(rack) == 0) continue;
      auto choice = scheduler_->pick_task(rack, ctx);
      if (!choice.has_value()) continue;
      start_task(*choice->job, *choice->task, rack, choice->priority_class);
      progress = true;
      placed_any = true;
    }
  }
  finish_dispatch_wave(placed_any);
}

void SimulationDriver::dispatch_offer_queue(SchedContext& ctx,
                                            std::int32_t start) {
  // Bit-for-bit the scan above: the free-set iteration visits exactly the
  // racks the scan's free_slots(rack) != 0 check would reach, in the same
  // round-robin order, and the decline-stamp skip drops only pick_task
  // calls that are guaranteed (declines_are_stable) to be side-effect-free
  // nullopt replays. Grants bump the epoch, so a pass after any grant
  // re-offers every rack that declined before that grant — exactly the
  // racks whose answer may have changed, and a superset re-check of what
  // the scan performs.
  const bool stable = scheduler_->declines_are_stable();
  // A still-current global decline stamp (heartbeat re-offer with no state
  // change in between) means every pick this wave would be a pure nullopt
  // replay: skip them all. finish_dispatch_wave re-arms the heartbeat
  // exactly as the all-decline wave it stands in for would have.
  if (stable && offers_.declined_globally_at_current_epoch()) {
    finish_dispatch_wave(/*placed_any=*/false);
    return;
  }
  bool progress = true;
  bool placed_any = false;
  bool global_decline = false;
  while (progress && pending_tasks_ > 0 && !global_decline) {
    progress = false;
    offers_.for_each_free_from(start, [&](RackId rack) {
      if (pending_tasks_ == 0) return false;
      if (stable && offers_.declined_at_current_epoch(rack)) return true;
      auto choice = scheduler_->pick_task(rack, ctx);
      if (!choice.has_value()) {
        offers_.note_declined(rack);
        // A rack-independent decline settles the remaining racks: each
        // would be the identical side-effect-free nullopt the scan engine
        // replays one rack at a time. The epoch cannot change across
        // declines, so the conclusion holds for the rest of the wave.
        if (stable && scheduler_->last_decline_was_global()) {
          offers_.note_declined_globally();
          global_decline = true;
          return false;
        }
        return true;
      }
      start_task(*choice->job, *choice->task, rack, choice->priority_class);
      progress = true;
      placed_any = true;
      return true;
    });
  }
  finish_dispatch_wave(placed_any);
}

void SimulationDriver::finish_dispatch_wave(bool placed_any) {
  if (audit_) {
    audit_->check_light();
    audit_->check_scheduler(*scheduler_, active_jobs_);
    audit_->check_offer_queue(offers_.audit(cluster_));
  }

  // A scheduler may decline offers it could accept later without any
  // triggering event (delay scheduling waiting for locality). Re-offer on
  // a heartbeat, as YARN NodeManagers would. Under the offer-queue engine
  // the re-offer wave only visits the declining racks (the free set) —
  // full racks are never touched.
  if (!placed_any && pending_tasks_ > 0 && cluster_.total_free_slots() > 0 &&
      !heartbeat_scheduled_) {
    heartbeat_scheduled_ = true;
    sim_.schedule_after(Duration::seconds(1), [this] {
      heartbeat_scheduled_ = false;
      dispatch();
    });
  }
}

void SimulationDriver::start_task(Job& job, Task& task, RackId rack,
                                  std::int32_t grant_class) {
  const NodeId node = cluster_.allocate_slot(rack);
  sync_offer_membership(rack);
  task.place(rack, node, sim_.now());
  running_by_rack_[static_cast<std::size_t>(rack.value())].push_back(&task);
  --pending_tasks_;
  note_sched_state_changed();

  const bool is_map = task.kind() == TaskKind::kMap;
  if (cfg_.obs != nullptr) {
    cfg_.obs->trace.record({.kind = TraceEventKind::kContainerGrant,
                            .at = sim_.now(),
                            .job = job.id(),
                            .task = task.id(),
                            .src = rack,
                            .a = grant_class});
    cfg_.obs->trace.record({.kind = TraceEventKind::kTaskStart,
                            .at = sim_.now(),
                            .job = job.id(),
                            .task = task.id(),
                            .src = rack,
                            .a = is_map ? 0 : 1});
    cfg_.obs->decisions.record(GrantDecision{.at = sim_.now(),
                                             .rack = rack,
                                             .job = job.id(),
                                             .task = task.id(),
                                             .user = job.spec().user,
                                             .is_map = is_map,
                                             .ocas_class = grant_class});
  }
  // Audit before note_map_placed/note_reduce_placed advance the job's
  // per-rack counters, so the class-1 check still sees the pre-grant plan
  // capacity this grant was admitted against.
  if (audit_) audit_->on_container_grant(job, task, rack, grant_class);

  if (task.kind() == TaskKind::kMap) {
    job.note_map_placed(rack);
    scheduler_->on_task_placed(job, task, rack);
    if (!job.map_local_on(task.index(), rack)) {
      // Remote read: fetching the block over the network, modeled as a
      // deterministic NIC-limited delay (small flows are not worth pushing
      // through the fluid fabric; all schedulers pay the same price).
      task.set_read_penalty(
          transfer_time(job.spec().block_size(), cfg_.topo.server_nic));
    }
    apply_attempt_faults(job, task);
    Job* jp = &job;
    Task* tp = &task;
    EventHandle done = sim_.schedule_after(
        task.run_duration(), [this, jp, tp] { on_map_complete(*jp, *tp); });
    if (faults_.has_container_kill()) {
      completion_events_[task.id()] = std::move(done);
    }
    return;
  }

  // Reduce task: occupies the container; shuffle demand materializes per
  // the scheduler's reduce semantics.
  job.note_reduce_placed(rack);
  scheduler_->on_task_placed(job, task, rack);
  apply_attempt_faults(job, task);
  if (scheduler_->defers_reduces()) {
    COSCHED_CHECK_MSG(job.all_maps_done(),
                      "deferred scheduler placed a reduce before maps done");
    // Release the coflow as one unit once every reduce container is
    // granted (Section IV-A). A job whose shuffle was already partially
    // released by the deadlock breaker keeps streaming incrementally.
    if (job.all_reduces_placed() || job.shuffle_released()) {
      sync_reduce_demand(job);
    }
  } else if (job.all_maps_done()) {
    sync_reduce_demand(job);
  }
  // A retried reduce can land on a rack whose fetches already drained;
  // sync_reduce_demand then has no new demand to materialize for the rack
  // and will not poke it, so check for an immediately-startable compute
  // here. Idempotent and guard-gated: a no-op on every non-retry placement.
  if (job.shuffle_released()) try_start_reduce_computes(job, rack);
}

void SimulationDriver::remove_running(RackId rack, Task& task) {
  auto& v = running_by_rack_[static_cast<std::size_t>(rack.value())];
  auto it = std::find(v.begin(), v.end(), &task);
  COSCHED_CHECK(it != v.end());
  v.erase(it);
}

void SimulationDriver::on_map_complete(Job& job, Task& task) {
  task.complete(sim_.now());
  if (cfg_.obs != nullptr) {
    cfg_.obs->trace.record({.kind = TraceEventKind::kTaskFinish,
                            .at = sim_.now(),
                            .job = job.id(),
                            .task = task.id(),
                            .src = task.rack(),
                            .a = 0});
  }
  remove_running(task.rack(), task);
  cluster_.release_slot(task.rack(), task.node());
  sync_offer_membership(task.rack());
  note_sched_state_changed();
  if (audit_) audit_->on_container_release(job, task, task.rack());
  trem_.forget(task.id());
  if (faults_.has_container_kill()) completion_events_.erase(task.id());
  job.note_map_completed(task.rack(), job.spec().map_output_size());
  scheduler_->on_task_completed(job, task, task.rack());

  if (job.all_maps_done()) {
    SchedContext ctx = make_context();
    scheduler_->on_maps_completed(job, ctx);
    if (audit_) audit_->on_reduce_plan(job);
    if (job.spec().num_reduces == 0) {
      finish_job(job);
    } else if (!scheduler_->defers_reduces()) {
      sync_reduce_demand(job);
    }
  }
  request_dispatch();
}

void SimulationDriver::sync_reduce_demand(Job& job) {
  COSCHED_CHECK(job.all_maps_done());
  note_sched_state_changed();
  std::vector<std::int32_t>& demanded = demanded_[job.id()];
  demanded.resize(static_cast<std::size_t>(cfg_.topo.num_racks), 0);
  const bool first_release = !job.shuffle_released();
  job.mark_shuffle_released();
  job.coflow().mark_released(sim_.now());
  std::vector<RackId> touched;
  for (const auto& [rack, placed] : job.reduce_placed_by_rack()) {
    const auto ri = static_cast<std::size_t>(rack.value());
    const std::int32_t missing = placed - demanded[ri];
    if (missing <= 0) continue;
    demanded[ri] = placed;
    touched.push_back(rack);
    const double share = static_cast<double>(missing) /
                         static_cast<double>(job.spec().num_reduces);
    for (const auto& [src, output] : job.map_output_by_rack()) {
      const DataSize demand = output * share;
      if (demand.is_zero()) continue;
      auto [flow, created] =
          job.coflow().add_demand(flow_ids_, src, rack, demand);
      route_flow(job, *flow, created);
    }
  }
  if (first_release && cfg_.obs != nullptr) {
    cfg_.obs->trace.record(
        {.kind = TraceEventKind::kCoflowRelease,
         .at = sim_.now(),
         .job = job.id(),
         .a = static_cast<std::int64_t>(job.coflow().flows().size()),
         .b = job.coflow().total_demand().in_gigabytes()});
  }
  for (RackId rack : touched) try_start_reduce_computes(job, rack);
}

void SimulationDriver::route_flow(Job& job, Flow& flow, bool created) {
  if (created) {
    flow.set_path(net_.classify(flow));
    COSCHED_DEBUG() << "job " << job.id() << " flow " << flow.src() << "->"
                    << flow.dst() << " " << flow.size() << " via "
                    << to_string(flow.path());
    if (cfg_.obs != nullptr) {
      cfg_.obs->trace.record({.kind = TraceEventKind::kFlowRouted,
                              .at = sim_.now(),
                              .job = flow.job(),
                              .flow = flow.id(),
                              .src = flow.src(),
                              .dst = flow.dst(),
                              .a = static_cast<std::int64_t>(flow.path()),
                              .b = flow.size().in_gigabytes()});
    }
    flows_in_fabric_.insert(flow.id());
    if (audit_) audit_->on_flow_routed(job, flow);
    if (flow.path() == FlowPath::kOcs) {
      net_.fabric().submit(job.coflow(), flow);
    } else {
      net_.eps().start_flow(flow, [this](Flow& f) { on_flow_complete(f); });
    }
    return;
  }
  if (flows_in_fabric_.count(flow.id()) > 0) {
    // Demand grew while in flight; the path sticks (a flow that started
    // small on the EPS does not get promoted — exactly the aggregation
    // failure of overlapping schedulers the paper describes).
    if (audit_) audit_->on_flow_routed(job, flow);
    if (flow.path() == FlowPath::kOcs) {
      net_.fabric().demand_added(flow);
    } else {
      net_.eps().demand_added(flow);
    }
    return;
  }
  // Reopened: the flow had drained, and a late reduce added more demand.
  flows_in_fabric_.insert(flow.id());
  if (flow.path() == FlowPath::kOcs && !net_.ocs_available()) {
    // The flow rode the OCS before, but the OCS is down now: degrade the
    // re-fetch onto the EPS rather than queueing behind the outage.
    flow.set_path(FlowPath::kEps);
  }
  if (audit_) audit_->on_flow_routed(job, flow);
  if (flow.path() == FlowPath::kOcs) {
    net_.fabric().submit(job.coflow(), flow);
  } else {
    net_.eps().start_flow(flow, [this](Flow& f) { on_flow_complete(f); });
  }
}

void SimulationDriver::on_flow_complete(Flow& flow) {
  if (audit_) audit_->on_flow_completed(flow);
  flows_in_fabric_.erase(flow.id());
  if (cfg_.obs != nullptr) {
    cfg_.obs->trace.record({.kind = TraceEventKind::kFlowComplete,
                            .at = sim_.now(),
                            .job = flow.job(),
                            .flow = flow.id(),
                            .src = flow.src(),
                            .dst = flow.dst(),
                            .a = static_cast<std::int64_t>(flow.path())});
  }
  Job* job = job_by_id_.at(flow.job());
  if (job->all_maps_done() && job->all_reduces_placed() &&
      job->coflow().all_flows_complete() && !job->coflow().completed()) {
    job->coflow().mark_completed(sim_.now());
  }
  try_start_reduce_computes(*job, flow.dst());
}

bool SimulationDriver::rack_fetch_done(const Job& job, RackId rack) const {
  for (const auto& f : job.coflow().flows()) {
    if (f->dst() == rack && !f->completed()) return false;
  }
  return true;
}

void SimulationDriver::try_start_reduce_computes(Job& job, RackId rack) {
  if (!job.all_maps_done() || !job.shuffle_released()) return;
  if (!rack_fetch_done(job, rack)) return;
  for (Task& t : job.reduces()) {
    if (t.state() != TaskState::kRunning || t.compute_started()) continue;
    if (t.rack() != rack) continue;
    t.begin_compute(sim_.now());
    if (cfg_.obs != nullptr) {
      cfg_.obs->trace.record({.kind = TraceEventKind::kReduceComputeStart,
                              .at = sim_.now(),
                              .job = job.id(),
                              .task = t.id(),
                              .src = rack});
    }
    Job* jp = &job;
    Task* tp = &t;
    EventHandle done = sim_.schedule_after(
        t.run_duration(), [this, jp, tp] { on_reduce_complete(*jp, *tp); });
    if (faults_.has_container_kill()) {
      completion_events_[t.id()] = std::move(done);
    }
  }
}

void SimulationDriver::apply_attempt_faults(Job& job, Task& task) {
  if (faults_.has_straggler()) {
    const double multiplier = faults_.draw_straggler_multiplier();
    if (multiplier != 1.0) {
      task.set_straggle_factor(multiplier);
      if (cfg_.obs != nullptr) {
        cfg_.obs->trace.record({.kind = TraceEventKind::kTaskStraggle,
                                .at = sim_.now(),
                                .job = job.id(),
                                .task = task.id(),
                                .src = task.rack(),
                                .b = multiplier});
        cfg_.obs->decisions.record(FaultDecision{.at = sim_.now(),
                                                 .action = FaultAction::kStraggle,
                                                 .job = job.id(),
                                                 .task = task.id(),
                                                 .rack = task.rack(),
                                                 .value = multiplier});
      }
    }
  }
  // A zero-length attempt completes at its own placement instant; there is
  // no interior point to kill it at, so it never draws.
  if (faults_.has_container_kill() &&
      task.run_duration() > Duration::zero()) {
    if (const std::optional<double> frac = faults_.draw_kill_point()) {
      Job* jp = &job;
      Task* tp = &task;
      // frac < 1 puts the kill strictly before this attempt's completion
      // (a reduce computes no earlier than its placement), so a killed
      // attempt can never also complete.
      sim_.schedule_after(task.run_duration() * *frac,
                          [this, jp, tp] { on_task_killed(*jp, *tp); });
    }
  }
}

void SimulationDriver::on_task_killed(Job& job, Task& task) {
  COSCHED_CHECK(task.state() == TaskState::kRunning);
  const bool is_map = task.kind() == TaskKind::kMap;
  const RackId rack = task.rack();
  const double frac = task.run_duration() > Duration::zero()
                          ? (sim_.now() - task.placed_at()) /
                                task.run_duration()
                          : 0.0;
  if (auto it = completion_events_.find(task.id());
      it != completion_events_.end()) {
    it->second.cancel();
    completion_events_.erase(it);
  }
  remove_running(rack, task);
  cluster_.release_slot(rack, task.node());
  sync_offer_membership(rack);
  note_sched_state_changed();
  if (audit_) audit_->on_container_release(job, task, rack);
  trem_.forget(task.id());
  if (cfg_.obs != nullptr) {
    cfg_.obs->trace.record({.kind = TraceEventKind::kTaskKilled,
                            .at = sim_.now(),
                            .job = job.id(),
                            .task = task.id(),
                            .src = rack,
                            .a = is_map ? 0 : 1});
    cfg_.obs->decisions.record(FaultDecision{
        .at = sim_.now(),
        .action = is_map ? FaultAction::kKillMap : FaultAction::kKillReduce,
        .job = job.id(),
        .task = task.id(),
        .rack = rack,
        .value = frac});
  }
  task.reset_for_retry();
  if (is_map) {
    job.requeue_map(task.index());
    ++faults_.stats().maps_killed;
  } else {
    job.requeue_reduce(task.index(), rack);
    ++faults_.stats().reduces_killed;
  }
  scheduler_->on_task_requeued(job, task, rack);
  ++pending_tasks_;
  request_dispatch();
}

void SimulationDriver::reroute_evicted(const std::vector<Flow*>& evicted) {
  // Degrade gracefully: everything the outage evicted — queued or
  // mid-transfer — finishes its remaining bytes over the EPS.
  for (Flow* flow : evicted) {
    ++faults_.stats().flows_evicted;
    if (cfg_.obs != nullptr) {
      cfg_.obs->trace.record({.kind = TraceEventKind::kFlowEvicted,
                              .at = sim_.now(),
                              .job = flow->job(),
                              .flow = flow->id(),
                              .src = flow->src(),
                              .dst = flow->dst(),
                              .b = flow->remaining_bits()});
      cfg_.obs->decisions.record(FaultDecision{.at = sim_.now(),
                                               .action = FaultAction::kFlowEvicted,
                                               .job = flow->job(),
                                               .flow = flow->id(),
                                               .value = flow->remaining_bits()});
    }
    flow->set_path(FlowPath::kEps);
    net_.eps().start_flow(*flow, [this](Flow& f) { on_flow_complete(f); });
  }
}

void SimulationDriver::begin_ocs_outage(const OcsOutageFault& outage) {
  ++faults_.stats().ocs_outages;
  faults_.stats().ocs_downtime_sec += outage.dur.sec();
  if (cfg_.obs != nullptr) {
    cfg_.obs->trace.record({.kind = TraceEventKind::kOcsOutage,
                            .at = sim_.now(),
                            .a = 1,
                            .b = outage.dur.sec()});
    cfg_.obs->decisions.record(FaultDecision{.at = sim_.now(),
                                             .action = FaultAction::kOutageBegin,
                                             .value = outage.dur.sec()});
  }
  if (outage.plane >= 0 && outage.plane < net_.fabric().num_planes()) {
    // Plane-targeted: only that plane's in-flight transfers are evicted;
    // queued demand stays (the surviving planes serve it), classification
    // is unchanged, and allocation skips the plane until it heals. A plane
    // index the fabric doesn't have (plane=3 on ocs:2, any plane= on
    // rotor/mesh/ring) degrades to a whole-fabric outage below, so fault
    // plans stay composable with every --fabric choice.
    reroute_evicted(net_.fabric().begin_plane_outage(outage.plane));
    if (audit_) audit_->check_light();
    return;
  }
  net_.begin_ocs_outage();
  reroute_evicted(net_.fabric().evict_all());
  if (audit_) audit_->on_outage_begin();
}

void SimulationDriver::end_ocs_outage(const OcsOutageFault& outage) {
  if (outage.plane >= 0 && outage.plane < net_.fabric().num_planes()) {
    net_.fabric().end_plane_outage(outage.plane);
    if (audit_) audit_->check_light();
  } else {
    net_.end_ocs_outage();
    if (audit_) audit_->on_outage_end();
  }
  if (cfg_.obs != nullptr) {
    cfg_.obs->trace.record({.kind = TraceEventKind::kOcsOutage,
                            .at = sim_.now(),
                            .a = 0,
                            .b = outage.dur.sec()});
    cfg_.obs->decisions.record(FaultDecision{
        .at = sim_.now(), .action = FaultAction::kOutageEnd});
  }
}

void SimulationDriver::on_reduce_complete(Job& job, Task& task) {
  task.complete(sim_.now());
  if (cfg_.obs != nullptr) {
    cfg_.obs->trace.record({.kind = TraceEventKind::kTaskFinish,
                            .at = sim_.now(),
                            .job = job.id(),
                            .task = task.id(),
                            .src = task.rack(),
                            .a = 1});
  }
  remove_running(task.rack(), task);
  cluster_.release_slot(task.rack(), task.node());
  sync_offer_membership(task.rack());
  note_sched_state_changed();
  if (audit_) audit_->on_container_release(job, task, task.rack());
  trem_.forget(task.id());
  if (faults_.has_container_kill()) completion_events_.erase(task.id());
  job.note_reduce_completed();
  scheduler_->on_task_completed(job, task, task.rack());
  if (job.work_done()) finish_job(job);
  request_dispatch();
}

void SimulationDriver::finish_job(Job& job) {
  COSCHED_CHECK(!job.completed());
  job.mark_completed(sim_.now());
  if (audit_) audit_->on_job_finished(job);
  if (cfg_.obs != nullptr) {
    cfg_.obs->trace.record({.kind = TraceEventKind::kJobComplete,
                            .at = sim_.now(),
                            .job = job.id()});
  }
  last_completion_ = std::max(last_completion_, sim_.now());
  ++jobs_completed_;
  demanded_.erase(job.id());
  auto it = std::find(active_jobs_.begin(), active_jobs_.end(), &job);
  COSCHED_CHECK(it != active_jobs_.end());
  active_jobs_.erase(it);
  scheduler_->on_job_completed(job);
  note_sched_state_changed();
}

bool SimulationDriver::break_deadlock() {
  // The event queue drained with jobs incomplete: deferred jobs are holding
  // containers with waiting reduces while their remaining reduces cannot be
  // placed (plans pointing at saturated racks, or mutual container waits).
  // Recovery: abandon plans and partially release placed reduces so they
  // fetch, compute, and free their containers.
  bool changed = false;
  for (Job* job : active_jobs_) {
    if (!job->all_maps_done() || job->spec().num_reduces == 0) continue;
    if (job->all_reduces_placed()) continue;
    if (job->has_reduce_plan()) {
      job->clear_reduce_plan();
      scheduler_->on_reduce_plan_cleared(*job);
      changed = true;
    }
    if (job->reduces_placed() > 0 && !job->shuffle_released()) {
      sync_reduce_demand(*job);
      changed = true;
    }
  }
  if (changed) {
    note_sched_state_changed();
    ++deadlock_breaks_;
    if (cfg_.obs != nullptr) {
      cfg_.obs->trace.record({.kind = TraceEventKind::kDeadlockBreak,
                              .at = sim_.now(),
                              .a = deadlock_breaks_});
    }
    COSCHED_WARN() << "deadlock breaker engaged (" << deadlock_breaks_
                   << " total)";
    request_dispatch();
  }
  return changed;
}

Duration SimulationDriver::estimate_availability(RackId rack,
                                                 std::int64_t count) {
  COSCHED_PROF_SCOPE("driver.estimate_availability");
  COSCHED_CHECK(count > 0);
  if (count > cfg_.topo.slots_per_rack()) return Duration::infinity();
  const std::int64_t free = cluster_.free_slots(rack);
  if (free >= count) return Duration::zero();
  const std::int64_t need = count - free;

  std::vector<double> remaining_sec;
  const auto& running = running_by_rack_[static_cast<std::size_t>(rack.value())];
  remaining_sec.reserve(running.size());
  for (Task* t : running) {
    double est;
    if (t->compute_started()) {
      est = trem_.estimate(*t, sim_.now()).sec();
    } else {
      // A reduce still fetching: remaining = slowest incoming flow at an
      // optimistic rate plus the compute phase, all through the same
      // error model.
      const Job* job = job_by_id_.at(t->job());
      double fetch_sec = 0.0;
      for (const auto& f : job->coflow().flows()) {
        if (f->dst() != rack || f->completed()) continue;
        const Bandwidth hint =
            f->rate().in_bits_per_sec() > 0.0
                ? f->rate()
                : (f->path() == FlowPath::kOcs ? cfg_.topo.ocs_link
                                               : cfg_.topo.eps_rack_link());
        fetch_sec = std::max(fetch_sec,
                             f->remaining_bits() / hint.in_bits_per_sec());
      }
      est = (t->compute_duration().sec() + fetch_sec) *
            trem_.factor_for(t->id());
    }
    remaining_sec.push_back(std::max(est, 0.0));
  }
  if (static_cast<std::int64_t>(remaining_sec.size()) < need) {
    // Should not happen (free + running == slots), but stay safe.
    return Duration::infinity();
  }
  std::nth_element(remaining_sec.begin(),
                   remaining_sec.begin() + (need - 1), remaining_sec.end());
  return Duration::seconds(remaining_sec[static_cast<std::size_t>(need - 1)]);
}

}  // namespace cosched
