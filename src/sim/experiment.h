// Experiment harness: repeated simulation runs over freshly generated
// workloads, aggregated per scheduler — the machinery behind every figure
// reproduction in bench/.
//
// Each repetition r uses an independently forked RNG stream for workload
// generation and seed base_seed + r for the simulation, so schedulers are
// compared on identical workloads within a repetition (paired comparison,
// as in the paper's normalized plots).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "sched/scheduler.h"
#include "sim/driver.h"
#include "workload/generator.h"

namespace cosched {

using SchedulerFactory = std::function<std::unique_ptr<JobScheduler>()>;

struct ExperimentConfig {
  SimConfig sim;
  WorkloadConfig workload;
  std::int32_t repetitions = 5;
  std::uint64_t base_seed = 42;
};

/// Build one of the standard schedulers by name: "fair", "corral",
/// "coscheduler", "mts+ocas", "ocas". Throws on unknown names.
[[nodiscard]] SchedulerFactory make_scheduler_factory(const std::string& name);

/// One run: a single repetition of `factory`'s scheduler on the workload
/// of repetition `rep`.
[[nodiscard]] RunMetrics run_once(const ExperimentConfig& cfg,
                                  const SchedulerFactory& factory,
                                  std::int32_t rep);

/// All repetitions for one scheduler.
[[nodiscard]] AggregateMetrics run_experiment(const ExperimentConfig& cfg,
                                              const SchedulerFactory& factory);

/// Paired comparison across schedulers (same workloads per repetition).
[[nodiscard]] std::vector<AggregateMetrics> compare_schedulers(
    const ExperimentConfig& cfg, const std::vector<std::string>& names);

}  // namespace cosched
