// Experiment harness: repeated simulation runs over freshly generated
// workloads, aggregated per scheduler — the machinery behind every figure
// reproduction in bench/.
//
// Each repetition r uses an independently forked RNG stream for workload
// generation and seed base_seed + r for the simulation, so schedulers are
// compared on identical workloads within a repetition (paired comparison,
// as in the paper's normalized plots).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "sched/scheduler.h"
#include "sim/driver.h"
#include "workload/generator.h"

namespace cosched {

using SchedulerFactory = std::function<std::unique_ptr<JobScheduler>()>;

struct ExperimentConfig {
  SimConfig sim;
  WorkloadConfig workload;
  std::int32_t repetitions = 5;
  std::uint64_t base_seed = 42;
};

/// How to shard independent run_once calls across worker threads.
///
/// Determinism contract: results are bit-for-bit identical to the serial
/// path for any thread count. Each (scheduler, repetition) run derives its
/// RNG streams purely from (base_seed, rep), writes into a pre-sized slot,
/// and aggregation happens on the calling thread in the serial order — so
/// only wall clock depends on `threads` (guarded by ctest -L determinism).
struct ParallelExperimentConfig {
  /// 1 = serial on the calling thread (today's behavior, the default);
  /// 0 = one worker per hardware thread; N > 1 = N workers.
  std::int32_t threads = 1;
  /// Observability sinks (cfg.sim.obs) are single-run recorders, so the
  /// parallel path thread-confines them: only this repetition — of the
  /// first scheduler, for compare_schedulers — keeps the obs pointer, all
  /// other runs record nothing. The serial path attaches obs to every run,
  /// as before.
  std::int32_t observed_repetition = 0;
};

/// Build one of the standard schedulers by name: "fair", "corral",
/// "coscheduler", "mts+ocas", "ocas". Throws on unknown names.
[[nodiscard]] SchedulerFactory make_scheduler_factory(const std::string& name);

/// One run: a single repetition of `factory`'s scheduler on the workload
/// of repetition `rep`.
[[nodiscard]] RunMetrics run_once(const ExperimentConfig& cfg,
                                  const SchedulerFactory& factory,
                                  std::int32_t rep);

/// All repetitions for one scheduler, as raw per-repetition results in
/// repetition order (the granularity the determinism suite compares).
[[nodiscard]] std::vector<RunMetrics> run_repetitions(
    const ExperimentConfig& cfg, const SchedulerFactory& factory,
    const ParallelExperimentConfig& par = {});

/// All repetitions for one scheduler, aggregated.
[[nodiscard]] AggregateMetrics run_experiment(
    const ExperimentConfig& cfg, const SchedulerFactory& factory,
    const ParallelExperimentConfig& par = {});

/// Paired comparison across schedulers (same workloads per repetition).
/// With par.threads != 1, all (scheduler, repetition) pairs shard across
/// one worker pool; aggregation order matches the serial path exactly.
[[nodiscard]] std::vector<AggregateMetrics> compare_schedulers(
    const ExperimentConfig& cfg, const std::vector<std::string>& names,
    const ParallelExperimentConfig& par = {});

}  // namespace cosched
