// SimulationDriver: the trace-driven flow-level event simulation that ties
// together the cluster (containers), the hybrid network (EPS + OCS), the
// coflow scheduler (Sunflow), and a pluggable job scheduler.
//
// Execution model
// ---------------
//  * Job arrival: the job's Job object is built, the scheduler places its
//    input blocks and does admission planning, dispatch is requested.
//  * Dispatch (coalesced per sim instant): racks with free containers are
//    offered to the scheduler one container at a time (Algorithm 2's
//    container-grant loop).
//  * Map tasks compute for their trace duration (+ a deterministic remote-
//    read penalty when not data-local) and report their output size to
//    their rack on completion.
//  * Reduce tasks occupy a container from placement. Their shuffle demand
//    is aggregated per (map rack -> reduce rack) into the job's Coflow:
//      - overlapping schedulers (Fair/Corral): a reduce's demand
//        materializes once placed and all maps are done; flows start (and
//        grow) incrementally, so they are classified small -> EPS;
//      - deferring schedulers (Co-scheduler): the whole coflow is released
//        once every reduce container is granted, so flows carry their full
//        aggregated size and elephants ride the OCS (Section IV-A).
//  * A reduce starts computing when every flow into its rack for its job
//    has drained; the job completes when all reduces do. CCT is measured
//    from coflow release to last flow completion.
#pragma once

#include <chrono>
#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "audit/invariant_auditor.h"
#include "cluster/cluster.h"
#include "cluster/job.h"
#include "cluster/trem_estimator.h"
#include "common/rng.h"
#include "faults/fault_injector.h"
#include "metrics/metrics.h"
#include "net/network.h"
#include "sched/scheduler.h"
#include "sim/offer_queue.h"
#include "simcore/simulator.h"
#include "workload/job_spec.h"

namespace cosched {

struct Observability;

/// Whether SimConfig::audit defaults on: yes in Debug builds (and CI's
/// sanitizer matrix), no in Release, where the paper-scale benches run.
/// The auditor is always compiled either way — this only picks the default.
inline constexpr bool kAuditDefaultOn =
#ifdef NDEBUG
    false;
#else
    true;
#endif

/// Which dispatch-wave implementation the driver runs. kOfferQueue is the
/// production fast path: waves iterate only the racks in the offer queue's
/// free set and skip re-offers a stable-decline scheduler already refused
/// at the current epoch (DESIGN.md §11). kScan is the original all-racks
/// round-robin scan, retained as the oracle — the dispatch differential
/// suite and the fuzzer cross-check the two bit for bit, exactly like
/// EpsFabric::RateEngine and SchedEngine.
enum class DispatchEngine : std::uint8_t { kOfferQueue, kScan };

[[nodiscard]] constexpr const char* to_string(DispatchEngine e) {
  return e == DispatchEngine::kOfferQueue ? "offer-queue" : "scan";
}

struct SimConfig {
  HybridTopology topo;
  /// Which circuit fabric carries the elephants (docs/FABRICS.md). The
  /// default — ocs:1 — is the paper's single-core OCS and runs the exact
  /// pre-fabric-seam code path bit for bit.
  FabricSpec fabric;
  /// Hadoop slow-start fraction for overlapping schedulers: the share of a
  /// job's maps that must finish before its reduces may take containers.
  /// Hadoop's default is 0.05 — the conventional overlap whose container
  /// waste Section IV-A of the paper criticizes.
  double reduce_slowstart = 0.05;
  /// T_rem estimation error rate (Figure 7's knob). A `trem-noise` clause
  /// in `faults` overrides this.
  double trem_error_rate = 0.0;
  /// Fault-injection plan (src/faults/fault_spec.h). The default — an empty
  /// plan — injects nothing and leaves the run bit-for-bit unchanged.
  FaultPlan faults;
  std::uint64_t seed = 1;
  /// Optional tracing/counters/decision-log bundle (must outlive the
  /// driver). Null — the default — records nothing and costs ~nothing.
  Observability* obs = nullptr;
  /// Wall-clock heartbeat period in seconds (--heartbeat=SECS). 0 — the
  /// default — disables it. Heartbeats report progress (sim-time reached,
  /// events processed, jobs finished, events/sec over a sliding window, RSS
  /// high-water) and never touch simulation state: a heartbeating run is
  /// bit-for-bit identical to a silent one.
  double heartbeat_sec = 0.0;
  /// Heartbeat destination; null — the default — means stderr.
  std::ostream* heartbeat_out = nullptr;
  /// Runtime invariant auditor (src/audit/): byte conservation, container
  /// ledger, OCS port exclusivity, event-queue sanity, scheduler contracts.
  /// Purely observational — audited runs are bit-for-bit identical to
  /// unaudited ones; a violation aborts with a structured dump.
  bool audit = kAuditDefaultOn;
  /// Which EPS rate engine computes max-min shares. kGrouped is the
  /// production fast path; the fuzzer cross-checks it against kReference.
  EpsFabric::RateEngine eps_engine = EpsFabric::RateEngine::kGrouped;
  /// Which scheduler decision engine runs (schedulers without an
  /// incremental path ignore it). kIncremental is the production fast
  /// path; the fuzzer and the sched-equivalence suite cross-check it
  /// against kReference bit for bit, exactly like eps_engine.
  SchedEngine sched_engine = SchedEngine::kIncremental;
  /// Which dispatch-wave implementation runs. kOfferQueue is the production
  /// fast path; the dispatch differential suite and the fuzzer cross-check
  /// it against kScan bit for bit.
  DispatchEngine dispatch_engine = DispatchEngine::kOfferQueue;
  /// Which T(C) the planner (PSRT/SBS) charges. kFabric — the default —
  /// routes through Fabric::cct_lower_bound; kLegacy (--bound=legacy) is
  /// the fabric-oblivious escape hatch for A/B-ing the placement delta.
  /// Recorded metrics, circuit-scheduler priorities, and the auditor stay
  /// fabric-aware in both modes. On ocs:1 the two modes are bit-identical.
  CctBoundMode cct_bound = CctBoundMode::kFabric;
};

class SimulationDriver : public AvailabilityOracle {
 public:
  SimulationDriver(SimConfig cfg, std::vector<JobSpec> workload,
                   std::unique_ptr<JobScheduler> scheduler);

  /// Run the whole workload to completion and collect the metrics.
  RunMetrics run();

  /// The invariant auditor, or null when cfg.audit is false. Exposed for
  /// the audit tests (checks_run, debug_inject_phantom_bits).
  [[nodiscard]] InvariantAuditor* auditor() { return audit_.get(); }

  // AvailabilityOracle: estimated delay until `count` containers are free
  // simultaneously on `rack` (free now => zero).
  Duration estimate_availability(RackId rack, std::int64_t count) override;

 private:
  SchedContext make_context();

  /// Drain the event queue like `sim_.run()`, but stepped from the driver
  /// so wall-clock instrumentation (PerfMonitor event-dispatch timing,
  /// --heartbeat progress lines) can wrap each event. Falls through to
  /// `sim_.run()` when both are dark — and since run() is exactly
  /// `while (step()) {}`, the instrumented loop executes the identical
  /// event sequence either way.
  void run_event_loop();
  void emit_heartbeat();

  void on_job_arrival(std::size_t workload_index);
  void request_dispatch();
  void dispatch();
  /// The two dispatch-wave bodies (cfg_.dispatch_engine picks one):
  /// dispatch_scan is the original all-racks round-robin scan retained as
  /// the oracle; dispatch_offer_queue iterates only the offer queue's free
  /// set and skips epoch-stamped declines for stable-decline schedulers.
  /// Both produce bit-identical simulations (DESIGN.md §11).
  void dispatch_scan(SchedContext& ctx, std::int32_t start);
  void dispatch_offer_queue(SchedContext& ctx, std::int32_t start);
  /// Shared dispatch-wave epilogue: audit sync point (light + scheduler +
  /// offer-queue coherence) and the 1 s heartbeat re-offer arming.
  void finish_dispatch_wave(bool placed_any);
  /// Scheduler-visible state changed: stamped declines may no longer hold.
  /// Called at every site that can change a pick_task outcome — grants,
  /// completions, kills, arrivals, plan clears, shuffle releases.
  void note_sched_state_changed() { offers_.note_state_changed(); }
  /// Re-derive the rack's free/full offer-queue membership after an
  /// allocate or release on it.
  void sync_offer_membership(RackId rack) {
    if (cluster_.free_slots(rack) > 0) {
      offers_.mark_free(rack);
    } else {
      offers_.mark_full(rack);
    }
  }
  void start_task(Job& job, Task& task, RackId rack,
                  std::int32_t grant_class);
  /// Register the driver's gauges with cfg_.obs->counters (ctor-time).
  void register_counters();

  void on_map_complete(Job& job, Task& task);
  void on_reduce_complete(Job& job, Task& task);

  // ----- fault injection ----------------------------------------------------
  /// Per-attempt fault draws for a just-placed task: straggle factor and,
  /// when configured, a kill timer strictly inside the attempt. No-op (and
  /// draw-free) for fault families not in the plan.
  void apply_attempt_faults(Job& job, Task& task);
  /// A container-kill timer fired: free the container, roll the task back
  /// to pending (its next attempt redraws faults), and undo the placement
  /// accounting so schedulers re-grant it — including OCAS's reduce plan.
  void on_task_killed(Job& job, Task& task);
  void begin_ocs_outage(const OcsOutageFault& outage);
  void end_ocs_outage(const OcsOutageFault& outage);
  /// Shared outage epilogue: every evicted flow (whole-fabric or single
  /// plane) finishes its remaining bytes over the EPS.
  void reroute_evicted(const std::vector<Flow*>& evicted);

  /// Materialize shuffle demand for every placed-but-undemanded reduce of
  /// `job` (idempotent; requires all maps done). The single entry point
  /// for overlap-mode releases, defer-mode whole-coflow releases, and the
  /// deadlock breaker's partial releases.
  void sync_reduce_demand(Job& job);
  /// Route a (new, grown, or reopened) flow into the right fabric.
  void route_flow(Job& job, Flow& flow, bool created);
  void on_flow_complete(Flow& flow);
  /// Last-resort recovery: partially release shuffles of deferred jobs that
  /// are mutually blocked on containers held by waiting reduces. Returns
  /// true if it changed anything.
  bool break_deadlock();

  [[nodiscard]] bool rack_fetch_done(const Job& job, RackId rack) const;
  void try_start_reduce_computes(Job& job, RackId rack);
  void finish_job(Job& job);
  void remove_running(RackId rack, Task& task);

  SimConfig cfg_;
  std::vector<JobSpec> workload_;
  std::unique_ptr<JobScheduler> scheduler_;

  Simulator sim_;
  Network net_;
  Cluster cluster_;
  Rng rng_;
  TremEstimator trem_;
  FaultInjector faults_;
  /// Null unless cfg.audit — every hook call is `if (audit_)`-guarded, so
  /// the unaudited hot path pays one branch per sync point.
  std::unique_ptr<InvariantAuditor> audit_;

  IdAllocator<TaskId> task_ids_;
  IdAllocator<FlowId> flow_ids_;

  std::vector<std::unique_ptr<Job>> jobs_;
  std::unordered_map<JobId, Job*> job_by_id_;
  std::vector<Job*> active_jobs_;

  std::vector<std::vector<Task*>> running_by_rack_;
  std::unordered_set<FlowId> flows_in_fabric_;
  /// Reduce tasks per (job, rack) whose demand is already in the coflow:
  /// a flat per-rack vector (indexed by rack) per job, erased with the job.
  std::unordered_map<JobId, std::vector<std::int32_t>> demanded_;
  /// Task-completion events that a container kill may need to cancel.
  /// Populated only when the plan has container kills, so the common path
  /// never stores handles.
  std::unordered_map<TaskId, EventHandle> completion_events_;
  std::int64_t deadlock_breaks_ = 0;

  // Wall-clock heartbeat state (cfg_.heartbeat_sec > 0 only). The sliding
  // events/sec window is the delta since the previous beat.
  std::chrono::steady_clock::time_point wall_start_{};
  std::chrono::steady_clock::time_point next_beat_{};
  std::uint64_t last_beat_events_ = 0;
  double last_beat_wall_sec_ = 0.0;

  bool dispatch_scheduled_ = false;
  bool heartbeat_scheduled_ = false;
  std::int64_t pending_tasks_ = 0;
  std::int32_t dispatch_rotation_ = 0;
  /// Event-driven dispatch index (free-set membership + decline stamps).
  /// Maintained under both dispatch engines so the audit can cross-check
  /// its coherence even while the reference scan drives the waves.
  OfferQueue offers_;
  /// Dispatch waves that actually scanned (pending work existed). Engine-
  /// and mode-invariant, exported as RunMetrics::dispatch_waves.
  std::uint64_t dispatch_waves_ = 0;
  SimTime last_completion_ = SimTime::zero();
  std::int64_t jobs_completed_ = 0;
};

}  // namespace cosched
