#include "sim/experiment.h"

#include "common/check.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "sched/corral.h"
#include "sched/coscheduler.h"
#include "sched/delay.h"
#include "sched/fair.h"

namespace cosched {

SchedulerFactory make_scheduler_factory(const std::string& name) {
  if (name == "fair") {
    return [] { return std::make_unique<FairScheduler>(); };
  }
  if (name == "corral") {
    return [] { return std::make_unique<CorralScheduler>(); };
  }
  if (name == "delay") {
    return [] { return std::make_unique<DelayScheduler>(); };
  }
  if (name == "coscheduler") {
    return [] { return std::make_unique<CoScheduler>(); };
  }
  if (name == "mts+ocas") {
    return [] {
      CoScheduler::Options opts;
      opts.enable_reduce_planning = false;
      return std::make_unique<CoScheduler>(opts);
    };
  }
  if (name == "ocas") {
    return [] {
      CoScheduler::Options opts;
      opts.enable_mts = false;
      opts.enable_reduce_planning = false;
      return std::make_unique<CoScheduler>(opts);
    };
  }
  COSCHED_CHECK_MSG(false, "unknown scheduler: " << name);
  return {};
}

RunMetrics run_once(const ExperimentConfig& cfg,
                    const SchedulerFactory& factory, std::int32_t rep) {
  Rng workload_rng =
      Rng(cfg.base_seed).fork(static_cast<std::uint64_t>(rep) + 1);
  std::vector<JobSpec> jobs = generate_workload(cfg.workload, workload_rng);

  SimConfig sim_cfg = cfg.sim;
  sim_cfg.seed = cfg.base_seed + static_cast<std::uint64_t>(rep) * 1000003ULL;
  SimulationDriver driver(sim_cfg, std::move(jobs), factory());
  return driver.run();
}

namespace {

/// The per-run config for repetition `rep` under a parallel shard: every
/// run but the designated one drops the (single-consumer) obs bundle, so
/// recording stays confined to one thread.
ExperimentConfig confine_obs(const ExperimentConfig& cfg, std::int32_t rep,
                             bool designated_scheduler,
                             const ParallelExperimentConfig& par) {
  ExperimentConfig run_cfg = cfg;
  if (!designated_scheduler || rep != par.observed_repetition) {
    run_cfg.sim.obs = nullptr;
  }
  return run_cfg;
}

}  // namespace

std::vector<RunMetrics> run_repetitions(const ExperimentConfig& cfg,
                                        const SchedulerFactory& factory,
                                        const ParallelExperimentConfig& par) {
  COSCHED_CHECK(cfg.repetitions >= 1);
  const std::size_t reps = static_cast<std::size_t>(cfg.repetitions);
  std::vector<RunMetrics> slots(reps);
  if (par.threads == 1) {
    for (std::size_t rep = 0; rep < reps; ++rep) {
      slots[rep] = run_once(cfg, factory, static_cast<std::int32_t>(rep));
    }
    return slots;
  }
  ThreadPool pool(ThreadPool::resolve_threads(par.threads));
  parallel_for(&pool, reps, [&](std::size_t rep) {
    const auto r = static_cast<std::int32_t>(rep);
    slots[rep] = run_once(confine_obs(cfg, r, /*designated_scheduler=*/true,
                                      par),
                          factory, r);
  });
  return slots;
}

AggregateMetrics run_experiment(const ExperimentConfig& cfg,
                                const SchedulerFactory& factory,
                                const ParallelExperimentConfig& par) {
  AggregateMetrics agg;
  for (const RunMetrics& run : run_repetitions(cfg, factory, par)) {
    agg.add(run);
  }
  return agg;
}

std::vector<AggregateMetrics> compare_schedulers(
    const ExperimentConfig& cfg, const std::vector<std::string>& names,
    const ParallelExperimentConfig& par) {
  COSCHED_CHECK(cfg.repetitions >= 1);
  const std::size_t reps = static_cast<std::size_t>(cfg.repetitions);

  // Resolve every name up front so an unknown scheduler fails fast and
  // deterministically, before any simulation work starts.
  std::vector<SchedulerFactory> factories;
  factories.reserve(names.size());
  for (const std::string& name : names) {
    factories.push_back(make_scheduler_factory(name));
  }

  // Pre-sized slots indexed by (scheduler, repetition): workers only ever
  // write their own slot, and aggregation below runs on the calling thread
  // in the exact order of the serial path.
  std::vector<std::vector<RunMetrics>> slots(names.size());
  for (auto& s : slots) s.resize(reps);

  if (par.threads == 1) {
    for (std::size_t s = 0; s < names.size(); ++s) {
      for (std::size_t rep = 0; rep < reps; ++rep) {
        slots[s][rep] =
            run_once(cfg, factories[s], static_cast<std::int32_t>(rep));
      }
    }
  } else {
    ThreadPool pool(ThreadPool::resolve_threads(par.threads));
    parallel_for(&pool, names.size() * reps, [&](std::size_t i) {
      const std::size_t s = i / reps;
      const auto rep = static_cast<std::int32_t>(i % reps);
      slots[s][static_cast<std::size_t>(rep)] = run_once(
          confine_obs(cfg, rep, /*designated_scheduler=*/s == 0, par),
          factories[s], rep);
    });
  }

  std::vector<AggregateMetrics> out;
  out.reserve(names.size());
  for (std::size_t s = 0; s < names.size(); ++s) {
    AggregateMetrics agg;
    for (const RunMetrics& run : slots[s]) agg.add(run);
    out.push_back(std::move(agg));
  }
  return out;
}

}  // namespace cosched
