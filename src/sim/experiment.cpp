#include "sim/experiment.h"

#include "common/check.h"
#include "sched/corral.h"
#include "sched/coscheduler.h"
#include "sched/delay.h"
#include "sched/fair.h"

namespace cosched {

SchedulerFactory make_scheduler_factory(const std::string& name) {
  if (name == "fair") {
    return [] { return std::make_unique<FairScheduler>(); };
  }
  if (name == "corral") {
    return [] { return std::make_unique<CorralScheduler>(); };
  }
  if (name == "delay") {
    return [] { return std::make_unique<DelayScheduler>(); };
  }
  if (name == "coscheduler") {
    return [] { return std::make_unique<CoScheduler>(); };
  }
  if (name == "mts+ocas") {
    return [] {
      CoScheduler::Options opts;
      opts.enable_reduce_planning = false;
      return std::make_unique<CoScheduler>(opts);
    };
  }
  if (name == "ocas") {
    return [] {
      CoScheduler::Options opts;
      opts.enable_mts = false;
      opts.enable_reduce_planning = false;
      return std::make_unique<CoScheduler>(opts);
    };
  }
  COSCHED_CHECK_MSG(false, "unknown scheduler: " << name);
  return {};
}

RunMetrics run_once(const ExperimentConfig& cfg,
                    const SchedulerFactory& factory, std::int32_t rep) {
  Rng workload_rng =
      Rng(cfg.base_seed).fork(static_cast<std::uint64_t>(rep) + 1);
  std::vector<JobSpec> jobs = generate_workload(cfg.workload, workload_rng);

  SimConfig sim_cfg = cfg.sim;
  sim_cfg.seed = cfg.base_seed + static_cast<std::uint64_t>(rep) * 1000003ULL;
  SimulationDriver driver(sim_cfg, std::move(jobs), factory());
  return driver.run();
}

AggregateMetrics run_experiment(const ExperimentConfig& cfg,
                                const SchedulerFactory& factory) {
  COSCHED_CHECK(cfg.repetitions >= 1);
  AggregateMetrics agg;
  for (std::int32_t rep = 0; rep < cfg.repetitions; ++rep) {
    agg.add(run_once(cfg, factory, rep));
  }
  return agg;
}

std::vector<AggregateMetrics> compare_schedulers(
    const ExperimentConfig& cfg, const std::vector<std::string>& names) {
  std::vector<AggregateMetrics> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    out.push_back(run_experiment(cfg, make_scheduler_factory(name)));
  }
  return out;
}

}  // namespace cosched
