#include "sim/offer_queue.h"

#include <bit>
#include <sstream>

#include "cluster/cluster.h"
#include "common/check.h"

namespace cosched {

OfferQueue::OfferQueue(std::int32_t num_racks)
    : num_racks_(num_racks),
      words_(static_cast<std::size_t>((num_racks + 63) / 64), 0),
      declined_at_(static_cast<std::size_t>(num_racks), 0) {
  COSCHED_CHECK(num_racks > 0);
}

void OfferQueue::mark_free(RackId rack) {
  const auto r = static_cast<std::uint32_t>(rack.value());
  words_[r >> 6] |= std::uint64_t{1} << (r & 63U);
}

void OfferQueue::mark_full(RackId rack) {
  const auto r = static_cast<std::uint32_t>(rack.value());
  words_[r >> 6] &= ~(std::uint64_t{1} << (r & 63U));
}

bool OfferQueue::is_free(RackId rack) const {
  const auto r = static_cast<std::uint32_t>(rack.value());
  return (words_[r >> 6] >> (r & 63U)) & 1U;
}

void OfferQueue::note_declined(RackId rack) {
  declined_at_[static_cast<std::size_t>(rack.value())] = epoch_;
}

bool OfferQueue::declined_at_current_epoch(RackId rack) const {
  return declined_at_[static_cast<std::size_t>(rack.value())] == epoch_;
}

std::int32_t OfferQueue::count_trailing_zeros(std::uint64_t w) {
  return std::countr_zero(w);
}

std::string OfferQueue::audit(const Cluster& cluster) const {
  for (std::int32_t r = 0; r < num_racks_; ++r) {
    const RackId rack{r};
    const bool cluster_free = cluster.free_slots(rack) > 0;
    if (is_free(rack) != cluster_free) {
      std::ostringstream os;
      os << "offer queue incoherent at rack " << r << ": queue says "
         << (is_free(rack) ? "free" : "full") << " but cluster has "
         << cluster.free_slots(rack) << " free slots";
      return os.str();
    }
    if (declined_at_[static_cast<std::size_t>(r)] > epoch_) {
      std::ostringstream os;
      os << "offer queue decline stamp from the future at rack " << r << ": "
         << declined_at_[static_cast<std::size_t>(r)] << " > epoch "
         << epoch_;
      return os.str();
    }
  }
  return {};
}

}  // namespace cosched
