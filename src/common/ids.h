// Strongly typed integer identifiers.
//
// Every entity in the simulator (rack, node, job, task, flow, ...) is named
// by a distinct ID type so that a RackId cannot be passed where a JobId is
// expected. IDs are trivially copyable, hashable, and ordered.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace cosched {

/// CRTP-free strong integer id. `Tag` distinguishes unrelated id spaces.
template <typename Tag>
class StrongId {
 public:
  using value_type = std::int64_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator>(StrongId a, StrongId b) {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator<=(StrongId a, StrongId b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>=(StrongId a, StrongId b) {
    return a.value_ >= b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

  /// Sentinel for "no id".
  static constexpr StrongId invalid() { return StrongId{-1}; }

 private:
  value_type value_ = -1;
};

struct RackTag {};
struct NodeTag {};
struct JobTag {};
struct TaskTag {};
struct FlowTag {};
struct UserTag {};
struct CoflowTag {};
struct BlockTag {};
struct ContainerTag {};

using RackId = StrongId<RackTag>;
using NodeId = StrongId<NodeTag>;
using JobId = StrongId<JobTag>;
using TaskId = StrongId<TaskTag>;
using FlowId = StrongId<FlowTag>;
using UserId = StrongId<UserTag>;
using CoflowId = StrongId<CoflowTag>;
using BlockId = StrongId<BlockTag>;
using ContainerId = StrongId<ContainerTag>;

/// Monotonic id generator; one per id space per simulation run.
template <typename Id>
class IdAllocator {
 public:
  Id next() { return Id{next_++}; }
  [[nodiscard]] std::int64_t allocated() const { return next_; }

 private:
  std::int64_t next_ = 0;
};

}  // namespace cosched

namespace std {
template <typename Tag>
struct hash<cosched::StrongId<Tag>> {
  size_t operator()(cosched::StrongId<Tag> id) const noexcept {
    return std::hash<std::int64_t>{}(id.value());
  }
};
}  // namespace std
