// Deterministic random number generation.
//
// The simulator must be bit-for-bit reproducible across platforms and
// standard-library implementations, so we do not use std::<distribution>
// (whose algorithms are unspecified). Instead we implement xoshiro256**
// seeded through SplitMix64, plus the handful of distributions the workload
// generator needs (uniform, exponential, log-normal via Box–Muller, Zipf).
//
// Every run owns exactly one root Rng; sub-streams for repetitions are
// derived with `fork(stream_id)` so adding a consumer never perturbs others.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace cosched {

/// SplitMix64 — used only to expand seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 with derived distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent stream. Deterministic in (this seed, stream_id).
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const {
    SplitMix64 sm(state_[0] ^ (0xa5a5a5a5a5a5a5a5ULL + stream_id));
    return Rng(sm.next() ^ (stream_id * 0x9e3779b97f4a7c15ULL));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    COSCHED_DCHECK(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli with probability p of true.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Exponential with given mean (mean = 1/lambda).
  double exponential(double mean);

  /// Standard normal via Box–Muller (one value per call; cached pair).
  double normal(double mu = 0.0, double sigma = 1.0);

  /// Log-normal: exp(N(mu, sigma)). Parameters are of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Zipf-like rank sampling over [1, n] with exponent s (s > 0).
  /// Used for heavy-tailed job size classes.
  std::int64_t zipf(std::int64_t n, double s);

  /// Sample k distinct values uniformly from [0, n). O(n) reservoir-free
  /// partial Fisher–Yates.
  std::vector<std::int64_t> sample_without_replacement(std::int64_t n,
                                                       std::int64_t k);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::int64_t i = static_cast<std::int64_t>(v.size()) - 1; i > 0;
         --i) {
      const std::int64_t j = uniform_int(0, i);
      using std::swap;
      swap(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(j)]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cosched
