#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace cosched {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double p) {
  COSCHED_CHECK(!values.empty());
  COSCHED_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  COSCHED_CHECK(hi > lo);
  COSCHED_CHECK(bins > 0);
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  COSCHED_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::to_string(std::size_t max_width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto width = counts_[i] * max_width / peak;
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(width, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace cosched
