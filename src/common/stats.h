// Small statistics helpers shared by the metrics module and the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cosched {

/// Streaming mean / variance / extrema (Welford).
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one.
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile over a stored sample (linear interpolation between
/// order statistics; p in [0, 100]).
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Fixed-bin histogram over [lo, hi); samples outside clamp to the end bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::string to_string(std::size_t max_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace cosched
