#include "common/rng.h"

#include <cmath>

namespace cosched {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  COSCHED_CHECK(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Lemire's unbiased bounded sampling (rejection on the low word).
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  COSCHED_CHECK(mean > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mu + sigma * cached_normal_;
  }
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mu + sigma * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  COSCHED_CHECK(n >= 1);
  COSCHED_CHECK(s > 0.0);
  // Inverse-CDF over the (small) support; n is at most a few thousand in
  // our workloads so the O(n) normalization is fine and exact.
  double norm = 0.0;
  for (std::int64_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(k, s);
  double u = uniform01() * norm;
  for (std::int64_t k = 1; k <= n; ++k) {
    u -= 1.0 / std::pow(k, s);
    if (u <= 0.0) return k;
  }
  return n;
}

std::vector<std::int64_t> Rng::sample_without_replacement(std::int64_t n,
                                                          std::int64_t k) {
  COSCHED_CHECK(k >= 0);
  COSCHED_CHECK(k <= n);
  std::vector<std::int64_t> pool(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) {
    const std::int64_t j = uniform_int(i, n - 1);
    std::swap(pool[static_cast<std::size_t>(i)],
              pool[static_cast<std::size_t>(j)]);
    out.push_back(pool[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace cosched
