// Physical units used throughout the simulator.
//
// Three quantities appear everywhere: simulated time, data size, and link
// bandwidth. Each gets a small strongly-typed value class so that, e.g., a
// number of bytes can never be silently used as a number of seconds. All
// arithmetic that makes dimensional sense is provided; anything else is a
// compile error.
//
//   SimTime   — absolute simulated time (seconds since simulation start)
//   Duration  — difference of two SimTimes
//   DataSize  — bytes (64-bit; exabytes of headroom)
//   Bandwidth — bits per second (double)
//
// DataSize / Bandwidth = Duration, Bandwidth * Duration = DataSize.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

#include "common/check.h"

namespace cosched {

/// A span of simulated time, in seconds.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration seconds(double s) {
    return Duration{s};
  }
  [[nodiscard]] static constexpr Duration milliseconds(double ms) {
    return Duration{ms / 1e3};
  }
  [[nodiscard]] static constexpr Duration microseconds(double us) {
    return Duration{us / 1e6};
  }
  [[nodiscard]] static constexpr Duration minutes(double m) {
    return Duration{m * 60.0};
  }
  [[nodiscard]] static constexpr Duration hours(double h) {
    return Duration{h * 3600.0};
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0.0}; }
  [[nodiscard]] static constexpr Duration infinity() {
    return Duration{std::numeric_limits<double>::infinity()};
  }

  [[nodiscard]] constexpr double sec() const { return sec_; }
  [[nodiscard]] constexpr double millis() const { return sec_ * 1e3; }
  [[nodiscard]] constexpr bool is_finite() const {
    return std::isfinite(sec_);
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.sec_ + b.sec_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.sec_ - b.sec_};
  }
  // Scaling an infinite duration by zero (e.g. a timeout of
  // Duration::infinity() times a zero retry count) must yield zero, not the
  // NaN that IEEE inf * 0 produces — a NaN duration poisons every
  // comparison downstream and evades the is_finite() guards.
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration{(k == 0.0 || a.sec_ == 0.0) ? 0.0 : a.sec_ * k};
  }
  friend constexpr Duration operator*(double k, Duration a) {
    return Duration{(k == 0.0 || a.sec_ == 0.0) ? 0.0 : a.sec_ * k};
  }
  friend constexpr Duration operator/(Duration a, double k) {
    return Duration{a.sec_ / k};
  }
  friend constexpr double operator/(Duration a, Duration b) {
    return a.sec_ / b.sec_;
  }
  constexpr Duration& operator+=(Duration o) {
    sec_ += o.sec_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    sec_ -= o.sec_;
    return *this;
  }
  friend constexpr auto operator<=>(Duration a, Duration b) = default;

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.sec_ << "s";
  }

 private:
  constexpr explicit Duration(double s) : sec_(s) {}
  double sec_ = 0.0;
};

/// An absolute point in simulated time.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0.0}; }
  [[nodiscard]] static constexpr SimTime seconds(double s) {
    return SimTime{s};
  }
  [[nodiscard]] static constexpr SimTime infinity() {
    return SimTime{std::numeric_limits<double>::infinity()};
  }

  [[nodiscard]] constexpr double sec() const { return sec_; }
  [[nodiscard]] constexpr bool is_finite() const {
    return std::isfinite(sec_);
  }

  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime{t.sec_ + d.sec()};
  }
  friend constexpr SimTime operator+(Duration d, SimTime t) { return t + d; }
  friend constexpr SimTime operator-(SimTime t, Duration d) {
    return SimTime{t.sec_ - d.sec()};
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration::seconds(a.sec_ - b.sec_);
  }
  constexpr SimTime& operator+=(Duration d) {
    sec_ += d.sec();
    return *this;
  }
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << "t=" << t.sec_ << "s";
  }

 private:
  constexpr explicit SimTime(double s) : sec_(s) {}
  double sec_ = 0.0;
};

/// A quantity of data, in bytes.
class DataSize {
 public:
  constexpr DataSize() = default;

  [[nodiscard]] static constexpr DataSize bytes(std::int64_t b) {
    return DataSize{b};
  }
  [[nodiscard]] static constexpr DataSize kilobytes(double kb) {
    return DataSize{static_cast<std::int64_t>(kb * 1e3)};
  }
  [[nodiscard]] static constexpr DataSize megabytes(double mb) {
    return DataSize{static_cast<std::int64_t>(mb * 1e6)};
  }
  [[nodiscard]] static constexpr DataSize gigabytes(double gb) {
    return DataSize{static_cast<std::int64_t>(gb * 1e9)};
  }
  [[nodiscard]] static constexpr DataSize zero() { return DataSize{0}; }

  [[nodiscard]] constexpr std::int64_t in_bytes() const { return bytes_; }
  [[nodiscard]] constexpr double in_gigabytes() const {
    return static_cast<double>(bytes_) / 1e9;
  }
  [[nodiscard]] constexpr bool is_zero() const { return bytes_ == 0; }

  friend constexpr DataSize operator+(DataSize a, DataSize b) {
    return DataSize{a.bytes_ + b.bytes_};
  }
  friend constexpr DataSize operator-(DataSize a, DataSize b) {
    return DataSize{a.bytes_ - b.bytes_};
  }
  friend DataSize operator*(DataSize a, double k) {
    return DataSize{std::llround(static_cast<double>(a.bytes_) * k)};
  }
  friend DataSize operator*(double k, DataSize a) { return a * k; }
  friend constexpr double operator/(DataSize a, DataSize b) {
    return static_cast<double>(a.bytes_) / static_cast<double>(b.bytes_);
  }
  friend constexpr DataSize operator/(DataSize a, std::int64_t k) {
    return DataSize{a.bytes_ / k};
  }
  constexpr DataSize& operator+=(DataSize o) {
    bytes_ += o.bytes_;
    return *this;
  }
  constexpr DataSize& operator-=(DataSize o) {
    bytes_ -= o.bytes_;
    return *this;
  }
  friend constexpr auto operator<=>(DataSize a, DataSize b) = default;

  friend std::ostream& operator<<(std::ostream& os, DataSize d) {
    return os << d.in_gigabytes() << "GB";
  }

 private:
  constexpr explicit DataSize(std::int64_t b) : bytes_(b) {}
  std::int64_t bytes_ = 0;
};

/// Link bandwidth, in bits per second.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth bits_per_sec(double bps) {
    return Bandwidth{bps};
  }
  [[nodiscard]] static constexpr Bandwidth gbps(double g) {
    return Bandwidth{g * 1e9};
  }
  [[nodiscard]] static constexpr Bandwidth mbps(double m) {
    return Bandwidth{m * 1e6};
  }
  [[nodiscard]] static constexpr Bandwidth zero() { return Bandwidth{0.0}; }

  [[nodiscard]] constexpr double in_bits_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double in_gbps() const { return bps_ / 1e9; }
  [[nodiscard]] constexpr bool is_zero() const { return bps_ == 0.0; }

  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) {
    return Bandwidth{a.bps_ + b.bps_};
  }
  friend constexpr Bandwidth operator-(Bandwidth a, Bandwidth b) {
    return Bandwidth{a.bps_ - b.bps_};
  }
  friend constexpr Bandwidth operator*(Bandwidth a, double k) {
    return Bandwidth{a.bps_ * k};
  }
  friend constexpr Bandwidth operator*(double k, Bandwidth a) { return a * k; }
  friend constexpr Bandwidth operator/(Bandwidth a, double k) {
    return Bandwidth{a.bps_ / k};
  }
  friend constexpr double operator/(Bandwidth a, Bandwidth b) {
    return a.bps_ / b.bps_;
  }
  friend constexpr auto operator<=>(Bandwidth a, Bandwidth b) = default;

  friend std::ostream& operator<<(std::ostream& os, Bandwidth b) {
    return os << b.in_gbps() << "Gbps";
  }

 private:
  constexpr explicit Bandwidth(double bps) : bps_(bps) {}
  double bps_ = 0.0;
};

/// Time to push `size` through a link of rate `bw`.
[[nodiscard]] inline Duration transfer_time(DataSize size, Bandwidth bw) {
  COSCHED_CHECK_MSG(bw.in_bits_per_sec() > 0.0,
                    "transfer over zero-bandwidth link");
  return Duration::seconds(static_cast<double>(size.in_bytes()) * 8.0 /
                           bw.in_bits_per_sec());
}

/// Data moved by a link of rate `bw` in time `d` (rounded down to bytes).
[[nodiscard]] inline DataSize data_transferred(Bandwidth bw, Duration d) {
  return DataSize::bytes(static_cast<std::int64_t>(
      bw.in_bits_per_sec() * d.sec() / 8.0));
}

}  // namespace cosched
