#include "common/log.h"

#include <iostream>

namespace cosched {
namespace {

LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;  // empty = default stderr sink

void default_sink(LogLevel level, const std::string& message) {
  std::cerr << "[" << Log::level_name(level) << "] " << message << "\n";
}

}  // namespace

LogLevel Log::level() { return g_level; }
void Log::set_level(LogLevel level) { g_level = level; }
void Log::set_sink(Sink sink) { g_sink = std::move(sink); }
void Log::reset_sink() { g_sink = nullptr; }

void Log::write(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, message);
  } else {
    default_sink(level, message);
  }
}

const char* Log::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace cosched
