#include "common/log.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace cosched {
namespace {

LogLevel initial_level() {
  LogLevel level = LogLevel::kWarn;
  if (const char* env = std::getenv("COSCHED_LOG_LEVEL")) {
    if (auto parsed = parse_log_level(env)) level = *parsed;
  }
  return level;
}

// The level is an atomic and the sink is mutex-guarded: worker threads of a
// parallel experiment shard (src/exec/) all funnel through this one logger,
// and the lock also keeps concurrently emitted lines from interleaving.
std::atomic<LogLevel> g_level = initial_level();
std::mutex g_sink_mu;
Log::Sink g_sink;  // empty = default stderr sink; guarded by g_sink_mu

void default_sink(LogLevel level, const std::string& message) {
  std::cerr << "[" << Log::level_name(level) << "] " << message << "\n";
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }
void Log::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Log::init_from_env() {
  if (const char* env = std::getenv("COSCHED_LOG_LEVEL")) {
    if (auto parsed = parse_log_level(env)) Log::set_level(*parsed);
  }
}
void Log::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}
void Log::reset_sink() {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = nullptr;
}

void Log::write(LogLevel level, const std::string& message) {
  if (level < Log::level()) return;
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink) {
    g_sink(level, message);
  } else {
    default_sink(level, message);
  }
}

const char* Log::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace cosched
