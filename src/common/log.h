// Minimal leveled logger.
//
// The simulator is a library, so logging goes through one injectable sink.
// Default sink writes to stderr; tests install a capturing sink. The level
// is a process-wide atomic and the sink is mutex-guarded: a single
// simulation is single-threaded, but the parallel experiment runner
// (src/exec/) drives many simulations at once through this one logger, and
// the lock keeps their lines from interleaving mid-message.
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace cosched {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Returns nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Global log configuration. Safe to use from parallel experiment workers
/// (see header comment).
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel level();
  static void set_level(LogLevel level);
  static void set_sink(Sink sink);
  static void reset_sink();

  /// Re-read COSCHED_LOG_LEVEL from the environment (applied once at
  /// startup automatically; exposed so tests can exercise the parsing).
  /// Unset or unparsable values leave the level unchanged.
  static void init_from_env();

  static void write(LogLevel level, const std::string& message);
  static const char* level_name(LogLevel level);
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace cosched

#define COSCHED_LOG(lvl)                             \
  if (::cosched::Log::level() <= ::cosched::LogLevel::lvl) \
  ::cosched::detail::LogLine(::cosched::LogLevel::lvl)

#define COSCHED_TRACE() COSCHED_LOG(kTrace)
#define COSCHED_DEBUG() COSCHED_LOG(kDebug)
#define COSCHED_INFO() COSCHED_LOG(kInfo)
#define COSCHED_WARN() COSCHED_LOG(kWarn)
#define COSCHED_ERROR() COSCHED_LOG(kError)
