// Lightweight precondition / invariant checking.
//
// COSCHED_CHECK is always on (simulation correctness depends on it and the
// cost is negligible next to the event loop); COSCHED_DCHECK compiles out in
// release builds for hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cosched {

/// Thrown when a COSCHED_CHECK fails. Carries file/line context.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace detail
}  // namespace cosched

#define COSCHED_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr))                                                         \
      ::cosched::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define COSCHED_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream cosched_check_os;                               \
      cosched_check_os << msg;                                           \
      ::cosched::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                      cosched_check_os.str());           \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define COSCHED_DCHECK(expr) \
  do {                       \
  } while (0)
#else
#define COSCHED_DCHECK(expr) COSCHED_CHECK(expr)
#endif
