// Facade over the hybrid network: the EPS fabric, a pluggable circuit
// fabric (src/net/fabric.h; implementations in src/fabric/), and traffic
// accounting. Routing policy (the c-Through elephant rule, delegated to
// Fabric::admits) lives here.
#pragma once

#include <memory>
#include <utility>

#include "common/check.h"
#include "net/eps_fabric.h"
#include "net/fabric.h"
#include "net/ocs_switch.h"
#include "net/topology.h"

namespace cosched {

class Network {
 public:
  /// The circuit side is injected: make_fabric (src/fabric/) builds one
  /// from a FabricSpec; tests and benches that want the paper's fabric
  /// construct OcsFabric{K=1} directly.
  Network(Simulator& sim, const HybridTopology& topo,
          std::unique_ptr<Fabric> fabric)
      : topo_(topo), eps_(sim, topo), fabric_(std::move(fabric)) {
    topo_.validate();
    COSCHED_CHECK_MSG(fabric_ != nullptr, "Network needs a circuit fabric");
  }

  [[nodiscard]] const HybridTopology& topology() const { return topo_; }
  [[nodiscard]] EpsFabric& eps() { return eps_; }
  [[nodiscard]] const EpsFabric& eps() const { return eps_; }
  [[nodiscard]] Fabric& fabric() { return *fabric_; }
  [[nodiscard]] const Fabric& fabric() const { return *fabric_; }

  /// The first circuit plane, for callers wired to the paper's single-OCS
  /// shape (fifo/bvn circuit schedulers, micro-benches). Aborts on fabrics
  /// without planes — route through fabric() instead.
  [[nodiscard]] OcsSwitch& ocs() {
    OcsSwitch* plane = fabric_->plane(0);
    COSCHED_CHECK_MSG(plane != nullptr,
                      "Network::ocs(): fabric " << fabric_->name()
                                                << " has no OCS planes");
    return *plane;
  }
  [[nodiscard]] const OcsSwitch& ocs() const {
    const OcsSwitch* plane = std::as_const(*fabric_).plane(0);
    COSCHED_CHECK_MSG(plane != nullptr,
                      "Network::ocs(): fabric " << fabric_->name()
                                                << " has no OCS planes");
    return *plane;
  }

  /// Route a flow: local if intra-rack, the circuit fabric if it admits
  /// the flow (the c-Through elephant rule for every current fabric), EPS
  /// otherwise. During a whole-fabric outage every cross-rack flow
  /// degrades to the EPS.
  [[nodiscard]] FlowPath classify(const Flow& flow) const {
    if (flow.src() == flow.dst()) return FlowPath::kLocal;
    if (!ocs_available()) return FlowPath::kEps;
    if (fabric_->admits(flow)) return FlowPath::kOcs;
    return FlowPath::kEps;
  }

  // ----- circuit-fabric availability (fault injection) ---------------------
  // A depth counter so overlapping outage windows compose: the fabric is
  // back only when every window that covers `now` has ended. (Plane-scoped
  // outages live on the fabric itself and do not touch this.)
  [[nodiscard]] bool ocs_available() const { return ocs_down_depth_ == 0; }
  void begin_ocs_outage() { ++ocs_down_depth_; }
  void end_ocs_outage() {
    COSCHED_CHECK(ocs_down_depth_ > 0);
    --ocs_down_depth_;
  }

  /// Circuit-fabric byte accounting, delegated to the fabric's shared
  /// ledger (Fabric::credit_bytes / credit_drained_bits).
  void note_ocs_bytes(DataSize bytes) { fabric_->credit_bytes(bytes); }
  void note_ocs_drained_bits(double bits) {
    fabric_->credit_drained_bits(bits);
  }

  [[nodiscard]] DataSize ocs_bytes_transferred() const {
    return fabric_->bytes_transferred();
  }
  /// Exact drained circuit bits (no byte truncation), for the invariant
  /// auditor's conservation identity.
  [[nodiscard]] double ocs_bits_transferred() const {
    return fabric_->bits_transferred();
  }
  [[nodiscard]] DataSize eps_bytes_transferred() const {
    return eps_.eps_bytes_transferred();
  }
  [[nodiscard]] DataSize local_bytes_transferred() const {
    return eps_.local_bytes_transferred();
  }

 private:
  HybridTopology topo_;
  EpsFabric eps_;
  std::unique_ptr<Fabric> fabric_;
  std::int32_t ocs_down_depth_ = 0;
};

}  // namespace cosched
