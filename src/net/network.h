// Facade over the hybrid network: the EPS fabric, the OCS, and traffic
// accounting. Routing policy (the c-Through elephant rule) lives here.
#pragma once

#include <memory>

#include "net/eps_fabric.h"
#include "net/ocs_switch.h"
#include "net/topology.h"

namespace cosched {

class Network {
 public:
  Network(Simulator& sim, const HybridTopology& topo)
      : topo_(topo), eps_(sim, topo), ocs_(sim, topo) {
    topo_.validate();
  }

  [[nodiscard]] const HybridTopology& topology() const { return topo_; }
  [[nodiscard]] EpsFabric& eps() { return eps_; }
  [[nodiscard]] OcsSwitch& ocs() { return ocs_; }
  [[nodiscard]] const EpsFabric& eps() const { return eps_; }
  [[nodiscard]] const OcsSwitch& ocs() const { return ocs_; }

  /// Route a flow: local if intra-rack, OCS if the aggregated rack-pair
  /// demand reaches the elephant threshold, EPS otherwise.
  [[nodiscard]] FlowPath classify(const Flow& flow) const {
    if (flow.src() == flow.dst()) return FlowPath::kLocal;
    if (flow.size() >= topo_.elephant_threshold) return FlowPath::kOcs;
    return FlowPath::kEps;
  }

  /// OCS byte accounting, reported by the circuit scheduler as transfers
  /// drain (the OCS itself is rate-constant so the scheduler owns timing).
  void note_ocs_bytes(DataSize bytes) { ocs_bytes_ += bytes; }

  [[nodiscard]] DataSize ocs_bytes_transferred() const { return ocs_bytes_; }
  [[nodiscard]] DataSize eps_bytes_transferred() const {
    return eps_.eps_bytes_transferred();
  }
  [[nodiscard]] DataSize local_bytes_transferred() const {
    return eps_.local_bytes_transferred();
  }

 private:
  HybridTopology topo_;
  EpsFabric eps_;
  OcsSwitch ocs_;
  DataSize ocs_bytes_ = DataSize::zero();
};

}  // namespace cosched
