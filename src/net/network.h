// Facade over the hybrid network: the EPS fabric, the OCS, and traffic
// accounting. Routing policy (the c-Through elephant rule) lives here.
#pragma once

#include <memory>

#include "common/check.h"
#include "net/eps_fabric.h"
#include "net/ocs_switch.h"
#include "net/topology.h"

namespace cosched {

class Network {
 public:
  Network(Simulator& sim, const HybridTopology& topo)
      : topo_(topo), eps_(sim, topo), ocs_(sim, topo) {
    topo_.validate();
  }

  [[nodiscard]] const HybridTopology& topology() const { return topo_; }
  [[nodiscard]] EpsFabric& eps() { return eps_; }
  [[nodiscard]] OcsSwitch& ocs() { return ocs_; }
  [[nodiscard]] const EpsFabric& eps() const { return eps_; }
  [[nodiscard]] const OcsSwitch& ocs() const { return ocs_; }

  /// Route a flow: local if intra-rack, OCS if the aggregated rack-pair
  /// demand reaches the elephant threshold, EPS otherwise. During an OCS
  /// outage every cross-rack flow degrades to the EPS.
  [[nodiscard]] FlowPath classify(const Flow& flow) const {
    if (flow.src() == flow.dst()) return FlowPath::kLocal;
    if (!ocs_available()) return FlowPath::kEps;
    if (flow.size() >= topo_.elephant_threshold) return FlowPath::kOcs;
    return FlowPath::kEps;
  }

  // ----- OCS availability (fault injection) --------------------------------
  // A depth counter so overlapping outage windows compose: the OCS is back
  // only when every window that covers `now` has ended.
  [[nodiscard]] bool ocs_available() const { return ocs_down_depth_ == 0; }
  void begin_ocs_outage() { ++ocs_down_depth_; }
  void end_ocs_outage() {
    COSCHED_CHECK(ocs_down_depth_ > 0);
    --ocs_down_depth_;
  }

  /// OCS byte accounting, reported by the circuit scheduler as transfers
  /// drain (the OCS itself is rate-constant so the scheduler owns timing).
  void note_ocs_bytes(DataSize bytes) { ocs_bytes_ += bytes; }
  /// Partial-drain accounting for circuits torn down mid-transfer (OCS
  /// outage eviction). Kept in a separate accumulator so runs without
  /// evictions report byte counts bit-identical to runs without this hook.
  void note_ocs_drained_bits(double bits) { ocs_evicted_bits_ += bits; }

  [[nodiscard]] DataSize ocs_bytes_transferred() const {
    if (ocs_evicted_bits_ == 0.0) return ocs_bytes_;
    return ocs_bytes_ +
           DataSize::bytes(static_cast<std::int64_t>(ocs_evicted_bits_ / 8.0));
  }
  /// Exact drained OCS bits (no byte truncation), for the invariant
  /// auditor's conservation identity.
  [[nodiscard]] double ocs_bits_transferred() const {
    return static_cast<double>(ocs_bytes_.in_bytes()) * 8.0 +
           ocs_evicted_bits_;
  }
  [[nodiscard]] DataSize eps_bytes_transferred() const {
    return eps_.eps_bytes_transferred();
  }
  [[nodiscard]] DataSize local_bytes_transferred() const {
    return eps_.local_bytes_transferred();
  }

 private:
  HybridTopology topo_;
  EpsFabric eps_;
  OcsSwitch ocs_;
  DataSize ocs_bytes_ = DataSize::zero();
  double ocs_evicted_bits_ = 0.0;
  std::int32_t ocs_down_depth_ = 0;
};

}  // namespace cosched
