// The optical circuit switch.
//
// Non-blocking R-port switch: rack r's ToR owns output port r (for sending)
// and input port r (for receiving). A circuit connects one output port to
// one input port; each port carries at most one circuit at a time. Setting
// up (or changing) a circuit stalls *only* the two ports involved for the
// reconfiguration delay delta — the "not-all-stop" model of Sunflow that
// the paper adopts.
//
// The OCS knows nothing about coflows. A circuit scheduler (src/coflow)
// decides which circuits to request and which flow each circuit carries;
// the OCS provides port state, the reconfiguration timer, and the constant
// link rate for transfers.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "net/flow.h"
#include "net/topology.h"
#include "simcore/simulator.h"

namespace cosched {

class TraceRecorder;

enum class PortState { kFree, kReconfiguring, kConnected };

class OcsSwitch {
 public:
  OcsSwitch(Simulator& sim, const HybridTopology& topo);

  [[nodiscard]] std::int32_t num_ports() const { return topo_.num_racks; }
  [[nodiscard]] Bandwidth link_rate() const { return topo_.ocs_link; }
  [[nodiscard]] Duration reconfig_delay() const {
    return topo_.ocs_reconfig_delay;
  }

  [[nodiscard]] bool out_port_free(RackId r) const;
  [[nodiscard]] bool in_port_free(RackId r) const;
  [[nodiscard]] PortState out_port_state(RackId r) const;
  [[nodiscard]] PortState in_port_state(RackId r) const;

  /// The rack currently (or about to be) connected to `src`'s output port.
  [[nodiscard]] std::optional<RackId> connected_to(RackId src) const;

  /// Claim src's output port and dst's input port and start reconfiguring.
  /// Both ports must be free. After the reconfiguration delay the circuit is
  /// up and `on_up` fires. Returns the number of circuits set up so far
  /// (diagnostics id).
  void setup_circuit(RackId src, RackId dst, std::function<void()> on_up);

  /// Release a circuit (or a circuit still reconfiguring). Frees both ports
  /// immediately; the cost of the tear-down is borne by the next setup on
  /// these ports (not-all-stop accounting).
  void teardown_circuit(RackId src, RackId dst);

  [[nodiscard]] bool circuit_up(RackId src, RackId dst) const;

  /// Total circuits established and reconfigurations begun (diagnostics).
  [[nodiscard]] std::int64_t circuits_established() const {
    return circuits_established_;
  }
  [[nodiscard]] std::int64_t reconfigurations() const {
    return reconfigurations_;
  }

  /// Circuits currently up (kConnected output ports).
  [[nodiscard]] std::int64_t active_circuits() const;
  /// Ports currently mid-reconfiguration.
  [[nodiscard]] std::int64_t reconfiguring_ports() const;

  /// Attach a trace recorder for circuit setup/up/teardown events. Null
  /// (the default) disables tracing.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Override the per-setup reconfiguration delay (fault injection: jitter
  /// around delta). Unset (the default) uses the topology's constant delta,
  /// with no call overhead on that path.
  void set_reconfig_delay_provider(std::function<Duration()> provider) {
    reconfig_delay_provider_ = std::move(provider);
  }

 private:
  struct PortPair {
    PortState state = PortState::kFree;
    RackId peer = RackId::invalid();
    // Generation counter invalidates in-flight reconfiguration completions
    // after a teardown arrives during the delay window.
    std::int64_t generation = 0;
  };

  PortPair& out(RackId r);
  PortPair& in(RackId r);
  const PortPair& out(RackId r) const;
  const PortPair& in(RackId r) const;

  Simulator& sim_;
  HybridTopology topo_;
  std::vector<PortPair> out_ports_;
  std::vector<PortPair> in_ports_;
  std::int64_t circuits_established_ = 0;
  std::int64_t reconfigurations_ = 0;
  TraceRecorder* trace_ = nullptr;
  std::function<Duration()> reconfig_delay_provider_;
};

}  // namespace cosched
