// The circuit-fabric seam: everything beside the EPS is a Fabric.
//
// The paper evaluates exactly one fabric shape — a single OCS with one
// circuit per rack port — but the related work (K-core OCS, rotor/TDMA
// designs like Mordia/RotorNet) varies exactly this layer. Fabric is the
// interface Network, the driver, and the auditor program against;
// implementations live in src/fabric/ (OcsFabric{K}, RotorFabric,
// MeshFabric, RingFabric). docs/FABRICS.md states the full contract.
//
// Obligations every implementation must uphold (see docs/FABRICS.md):
//   * Determinism — no wall clock, no RNG; identical inputs produce
//     identical event sequences bit for bit.
//   * Byte conservation — every bit a submitted flow drains is credited
//     through credit_bytes / credit_drained_bits (or still counted by
//     uncredited_settled_bits()), so the auditor's conservation identity
//     closes at every sync point.
//   * Eviction totality — evict_all() returns every incomplete flow the
//     fabric holds (queued or in flight) with its rate zeroed and its
//     completion event cancelled, leaving the fabric empty.
//   * Quiet outages — after evict_all() the fabric schedules nothing until
//     new demand is submitted (the auditor's outage quiet-window check).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "net/flow.h"
#include "net/topology.h"

namespace cosched {

class Coflow;
class OcsSwitch;
class TraceRecorder;
class TrafficMatrix;
struct Observability;

enum class FabricKind : std::uint8_t { kOcs, kRotor, kMesh, kRing };

[[nodiscard]] constexpr const char* to_string(FabricKind k) {
  switch (k) {
    case FabricKind::kOcs:
      return "ocs";
    case FabricKind::kRotor:
      return "rotor";
    case FabricKind::kMesh:
      return "mesh";
    case FabricKind::kRing:
      return "ring";
  }
  return "?";
}

/// Parsed `--fabric=` value. Grammar (strict: anything else is an error,
/// never a silent default — same spirit as the numeric bench parsers):
///
///   spec   := "ocs" [":" K]        K in [1, 64]; planes per rack pair
///           | "rotor" [":" PERIOD] PERIOD := positive number with an
///                                  optional "ms" or "s" suffix (bare
///                                  numbers are seconds; default 100ms)
///           | "mesh"
///           | "ring"
///
/// The default-constructed spec is "ocs:1" — the paper's fabric, and the
/// configuration every pre-fabric-seam result was produced under.
struct FabricSpec {
  FabricKind kind = FabricKind::kOcs;
  /// Independent circuit planes (OCS only).
  std::int32_t planes = 1;
  /// Rotor slot length (rotor only).
  Duration rotor_period = Duration::milliseconds(100);

  [[nodiscard]] static std::optional<FabricSpec> parse(const std::string& spec,
                                                       std::string* error);

  /// Canonical round-trippable spelling: "ocs:K", "rotor:Ts", "mesh",
  /// "ring". parse(to_spec()) reproduces the spec exactly.
  [[nodiscard]] std::string to_spec() const;

  friend bool operator==(const FabricSpec& a, const FabricSpec& b) {
    return a.kind == b.kind && a.planes == b.planes &&
           a.rotor_period == b.rotor_period;
  }
};

/// Abstract circuit fabric. Network owns one and routes elephants into it;
/// the EPS (in Network) carries everything else. The byte accounting lives
/// here concretely so every implementation reports drained traffic through
/// one arithmetic — the exact arithmetic Network used before the seam, so
/// runs without evictions report bit-identical byte counts.
class Fabric {
 public:
  using FlowCallback = std::function<void(Flow&)>;

  explicit Fabric(const HybridTopology& topo) : topo_(topo) {
    topo_.validate();
  }
  virtual ~Fabric() = default;

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] virtual FabricKind kind() const = 0;
  /// Canonical spec name ("ocs:4", "rotor:0.1s", ...) for messages.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Would this fabric carry `flow`? Only cross-rack flows reach this
  /// (Network handles local traffic and outage fallback). The default is
  /// the c-Through elephant rule every current fabric shares.
  [[nodiscard]] virtual bool admits(const Flow& flow) const {
    return flow.size() >= topo_.elephant_threshold;
  }

  /// Hand one admitted flow of `coflow` to the fabric. May be called
  /// repeatedly for the same coflow as more of its flows materialize.
  virtual void submit(Coflow& coflow, Flow& flow) = 0;
  /// The demand of an already-submitted flow grew.
  virtual void demand_added(Flow& flow) = 0;
  /// Whole-fabric outage: abort every queued and in-flight transfer,
  /// crediting partially-drained bits. Returned flows are incomplete and
  /// unrouted as far as the fabric is concerned; the caller re-routes them
  /// (onto the EPS). Deterministic order.
  [[nodiscard]] virtual std::vector<Flow*> evict_all() = 0;

  /// A hard lower bound on the time this fabric needs to drain `matrix` as
  /// one coflow, measured from the coflow's release: no schedule the fabric
  /// can produce completes sooner. Each implementation documents the model
  /// its bound encodes (docs/FABRICS.md section "The bound contract");
  /// ocs:1 reproduces the paper's T(C) (src/coflow/cct_bound.h) bit for
  /// bit. Consumers: PSRT/SBS planning, Sunflow and BVN coflow priorities,
  /// RunMetrics::cct_lower_bound, and the auditor's cct-lower-bound check.
  /// Pure virtual (not defaulted) because cosched_net cannot link against
  /// TrafficMatrix's accessors — implementations live in src/fabric/.
  [[nodiscard]] virtual Duration cct_lower_bound(
      const TrafficMatrix& matrix) const = 0;

  // ----- plane access (OCS-family fabrics) ---------------------------------
  /// Independent circuit planes. Non-plane fabrics report 0; plane(i) is
  /// then never called. The auditor sweeps port exclusivity per plane.
  [[nodiscard]] virtual std::int32_t num_planes() const { return 0; }
  [[nodiscard]] virtual OcsSwitch* plane(std::int32_t) { return nullptr; }
  [[nodiscard]] virtual const OcsSwitch* plane(std::int32_t) const {
    return nullptr;
  }
  [[nodiscard]] virtual bool plane_available(std::int32_t) const {
    return true;
  }
  /// Plane-targeted outage (ocs-outage:plane=N): evict that plane's
  /// in-flight transfers (queued flows stay queued — other planes can still
  /// serve them) and stop allocating on it until end_plane_outage. Fabrics
  /// without planes reject the call.
  [[nodiscard]] virtual std::vector<Flow*> begin_plane_outage(
      std::int32_t plane_index) {
    COSCHED_CHECK_MSG(false, name() << " has no plane " << plane_index
                                    << " to fail (plane-targeted outages "
                                       "need an ocs:K fabric)");
    return {};
  }
  virtual void end_plane_outage(std::int32_t plane_index) {
    COSCHED_CHECK_MSG(false,
                      name() << " has no plane " << plane_index << " to heal");
  }

  // ----- diagnostics -------------------------------------------------------
  [[nodiscard]] virtual std::size_t pending_flows() const = 0;
  [[nodiscard]] virtual std::size_t active_transfers() const = 0;
  [[nodiscard]] virtual std::size_t active_coflows() const { return 0; }
  [[nodiscard]] virtual std::int64_t active_circuits() const = 0;
  [[nodiscard]] virtual DataSize bytes_in_flight() const = 0;
  /// Bits settled out of in-flight transfers but not yet credited through
  /// credit_bytes/credit_drained_bits (see SunflowScheduler). The auditor
  /// adds this term to its conservation identity.
  [[nodiscard]] virtual double uncredited_settled_bits() const { return 0.0; }
  /// Fabric-specific internal invariants, re-derived from first principles
  /// ("every transfer's circuit exists", "every active pair matches the
  /// current rotor matching"). Empty string = coherent; the auditor aborts
  /// on anything else. Called at dispatch boundaries and outage edges.
  [[nodiscard]] virtual std::string self_check() const { return {}; }

  // ----- hooks -------------------------------------------------------------
  /// Invoked exactly once per flow when it finishes draining on the fabric.
  void set_on_flow_complete(FlowCallback cb) {
    on_flow_complete_ = std::move(cb);
  }
  virtual void set_observability(Observability*) {}
  virtual void set_trace(TraceRecorder*) {}
  /// Override the per-setup reconfiguration delay (fault injection:
  /// reconfig-jitter). No-op for fabrics without demand-driven setups.
  virtual void set_reconfig_delay_provider(std::function<Duration()>) {}

  // ----- shared link parameters and byte accounting ------------------------
  [[nodiscard]] const HybridTopology& topology() const { return topo_; }
  [[nodiscard]] Bandwidth link_rate() const { return topo_.ocs_link; }
  [[nodiscard]] Duration reconfig_delay() const {
    return topo_.ocs_reconfig_delay;
  }

  /// Whole-flow credit, reported by the fabric's scheduler as transfers
  /// drain (fabrics are rate-constant, so their schedulers own timing).
  void credit_bytes(DataSize bytes) { bytes_ += bytes; }
  /// Partial-drain credit for transfers torn down mid-flight (eviction) or
  /// settled incrementally (rotor slot ends). Kept in a separate double
  /// accumulator so runs that never touch it report byte counts
  /// bit-identical to integer-only accounting.
  void credit_drained_bits(double bits) { drained_bits_ += bits; }

  [[nodiscard]] DataSize bytes_transferred() const {
    if (drained_bits_ == 0.0) return bytes_;
    return bytes_ +
           DataSize::bytes(static_cast<std::int64_t>(drained_bits_ / 8.0));
  }
  /// Exact drained bits (no byte truncation), for the auditor's
  /// conservation identity.
  [[nodiscard]] double bits_transferred() const {
    return static_cast<double>(bytes_.in_bytes()) * 8.0 + drained_bits_;
  }

 protected:
  void notify_flow_complete(Flow& flow) {
    if (on_flow_complete_) on_flow_complete_(flow);
  }

  HybridTopology topo_;

 private:
  FlowCallback on_flow_complete_;
  DataSize bytes_ = DataSize::zero();
  double drained_bits_ = 0.0;
};

}  // namespace cosched
