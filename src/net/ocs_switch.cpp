#include "net/ocs_switch.h"

#include <algorithm>

#include "obs/trace_recorder.h"

namespace cosched {

OcsSwitch::OcsSwitch(Simulator& sim, const HybridTopology& topo)
    : sim_(sim),
      topo_(topo),
      out_ports_(static_cast<std::size_t>(topo.num_racks)),
      in_ports_(static_cast<std::size_t>(topo.num_racks)) {
  topo_.validate();
}

OcsSwitch::PortPair& OcsSwitch::out(RackId r) {
  COSCHED_CHECK(r.valid() && r.value() < topo_.num_racks);
  return out_ports_[static_cast<std::size_t>(r.value())];
}
OcsSwitch::PortPair& OcsSwitch::in(RackId r) {
  COSCHED_CHECK(r.valid() && r.value() < topo_.num_racks);
  return in_ports_[static_cast<std::size_t>(r.value())];
}
const OcsSwitch::PortPair& OcsSwitch::out(RackId r) const {
  COSCHED_CHECK(r.valid() && r.value() < topo_.num_racks);
  return out_ports_[static_cast<std::size_t>(r.value())];
}
const OcsSwitch::PortPair& OcsSwitch::in(RackId r) const {
  COSCHED_CHECK(r.valid() && r.value() < topo_.num_racks);
  return in_ports_[static_cast<std::size_t>(r.value())];
}

bool OcsSwitch::out_port_free(RackId r) const {
  return out(r).state == PortState::kFree;
}
bool OcsSwitch::in_port_free(RackId r) const {
  return in(r).state == PortState::kFree;
}
PortState OcsSwitch::out_port_state(RackId r) const { return out(r).state; }
PortState OcsSwitch::in_port_state(RackId r) const { return in(r).state; }

std::optional<RackId> OcsSwitch::connected_to(RackId src) const {
  const auto& p = out(src);
  if (p.state == PortState::kFree) return std::nullopt;
  return p.peer;
}

void OcsSwitch::setup_circuit(RackId src, RackId dst,
                              std::function<void()> on_up) {
  COSCHED_CHECK_MSG(out_port_free(src),
                    "output port of rack " << src << " busy");
  COSCHED_CHECK_MSG(in_port_free(dst), "input port of rack " << dst << " busy");
  COSCHED_CHECK_MSG(src != dst, "self-circuit requested for rack " << src);

  auto& o = out(src);
  auto& i = in(dst);
  o.state = PortState::kReconfiguring;
  o.peer = dst;
  ++o.generation;
  i.state = PortState::kReconfiguring;
  i.peer = src;
  ++i.generation;
  ++reconfigurations_;
  if (trace_ != nullptr) {
    trace_->record({.kind = TraceEventKind::kCircuitSetup,
                    .at = sim_.now(),
                    .src = src,
                    .dst = dst});
  }

  const std::int64_t gen_out = o.generation;
  const std::int64_t gen_in = i.generation;
  const Duration delay = reconfig_delay_provider_
                             ? reconfig_delay_provider_()
                             : topo_.ocs_reconfig_delay;
  sim_.schedule_after(
      delay,
      [this, src, dst, gen_out, gen_in, cb = std::move(on_up)] {
        auto& oo = out(src);
        auto& ii = in(dst);
        if (oo.generation != gen_out || ii.generation != gen_in) {
          return;  // torn down (or re-purposed) during the delay
        }
        COSCHED_CHECK(oo.state == PortState::kReconfiguring);
        COSCHED_CHECK(ii.state == PortState::kReconfiguring);
        oo.state = PortState::kConnected;
        ii.state = PortState::kConnected;
        ++circuits_established_;
        if (trace_ != nullptr) {
          trace_->record({.kind = TraceEventKind::kCircuitUp,
                          .at = sim_.now(),
                          .src = src,
                          .dst = dst});
        }
        if (cb) cb();
      });
}

void OcsSwitch::teardown_circuit(RackId src, RackId dst) {
  auto& o = out(src);
  auto& i = in(dst);
  COSCHED_CHECK_MSG(o.state != PortState::kFree && o.peer == dst,
                    "no circuit " << src << "->" << dst << " to tear down");
  COSCHED_CHECK(i.state != PortState::kFree && i.peer == src);
  o.state = PortState::kFree;
  o.peer = RackId::invalid();
  ++o.generation;
  i.state = PortState::kFree;
  i.peer = RackId::invalid();
  ++i.generation;
  if (trace_ != nullptr) {
    trace_->record({.kind = TraceEventKind::kCircuitTeardown,
                    .at = sim_.now(),
                    .src = src,
                    .dst = dst});
  }
}

bool OcsSwitch::circuit_up(RackId src, RackId dst) const {
  const auto& o = out(src);
  return o.state == PortState::kConnected && o.peer == dst;
}

std::int64_t OcsSwitch::active_circuits() const {
  return std::count_if(out_ports_.begin(), out_ports_.end(),
                       [](const PortPair& p) {
                         return p.state == PortState::kConnected;
                       });
}

std::int64_t OcsSwitch::reconfiguring_ports() const {
  return std::count_if(out_ports_.begin(), out_ports_.end(),
                       [](const PortPair& p) {
                         return p.state == PortState::kReconfiguring;
                       });
}

}  // namespace cosched
