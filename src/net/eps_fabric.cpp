#include "net/eps_fabric.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.h"
#include "obs/perf_monitor.h"
#include "obs/profile.h"

namespace cosched {

namespace {

// Completion is declared when fewer than this many bits remain; guards
// against floating-point residue keeping a drained flow alive.
constexpr double kResidualBits = 1e-3;

// Rate recomputations triggered within this window of the previous one are
// coalesced into a single deferred pass. Rates are then stale by at most
// this long — negligible against multi-second EPS transfers, and a large
// constant-factor win when thousands of flows churn.
constexpr Duration kReplanInterval = Duration::milliseconds(100);

// Relative tolerance for deciding that a link is saturated at the current
// fill level. Shared by both rate engines so they freeze identical sets.
constexpr double kTightTol = 1e-12;

}  // namespace

EpsFabric::EpsFabric(Simulator& sim, const HybridTopology& topo)
    : sim_(sim), topo_(topo) {
  topo_.validate();
  const auto racks = static_cast<std::size_t>(topo_.num_racks);
  group_of_pair_.assign(racks * racks, -1);
  up_count_.assign(racks, 0);
  down_count_.assign(racks, 0);
  link_epoch_.assign(2 * racks, 0);
  link_groups_.resize(2 * racks);
}

void EpsFabric::start_flow(Flow& flow, CompletionCallback on_complete) {
  COSCHED_CHECK_MSG(!flow.completed(), "flow " << flow.id() << " already done");
  COSCHED_CHECK(flow.path() == FlowPath::kEps ||
                flow.path() == FlowPath::kLocal);
  flow.mark_started(sim_.now());
  flow.set_rate(Bandwidth::zero());
  const auto [it, inserted] = active_.emplace(
      flow.id(), ActiveFlow{&flow, std::move(on_complete), sim_.now(),
                            flow.remaining_bits()});
  COSCHED_CHECK_MSG(inserted, "flow " << flow.id() << " already active");
  in_flight_bits_ += flow.remaining_bits();
  if (flow.path() == FlowPath::kEps) group_add(flow);
  if (flow.remaining_bits() <= kResidualBits) {
    // Zero-byte flow: complete immediately (still asynchronously, so the
    // caller's state machine sees a uniform event ordering).
    FlowId id = flow.id();
    sim_.schedule_after(Duration::zero(), [this, id] {
      on_completion_event(id);
    });
    return;
  }
  request_replan();
}

void EpsFabric::demand_added(Flow& flow) {
  auto it = active_.find(flow.id());
  if (it != active_.end()) {
    settle_flow(it->second);
    in_flight_bits_ += flow.remaining_bits() - it->second.tracked_bits;
    it->second.tracked_bits = flow.remaining_bits();
  }
  request_replan();
}

void EpsFabric::request_replan() {
  if (replan_scheduled_) return;
  replan_scheduled_ = true;
  const SimTime due = std::max(sim_.now(), last_replan_ + kReplanInterval);
  sim_.schedule_at(due, [this] {
    replan_scheduled_ = false;
    recompute_and_replan();
  });
}

void EpsFabric::settle_flow(ActiveFlow& af) {
  const Duration elapsed = sim_.now() - af.last_settle;
  af.last_settle = sim_.now();
  if (elapsed <= Duration::zero()) return;
  const double moved_bits = af.flow->settle(elapsed);
  af.tracked_bits -= moved_bits;
  in_flight_bits_ -= moved_bits;
  if (af.flow->path() == FlowPath::kLocal) {
    local_bits_ += moved_bits;
  } else {
    eps_bits_ += moved_bits;
  }
}

void EpsFabric::recompute_and_replan() {
  COSCHED_PROF_SCOPE("eps.recompute_and_replan");
  PerfScope perf(PerfPhase::kEpsReplan);
  perf.set_size(active_.size());
  ++replans_;
  last_replan_ = sim_.now();
  // Settle every flow at its current (old) rate before rates change.
  for (auto& [id, af] : active_) settle_flow(af);
  if (engine_ == RateEngine::kGrouped) {
    fill_rates_grouped();
    replan_completion_events(/*assign_group_rates=*/true);
  } else {
    fill_rates_reference();
    replan_completion_events(/*assign_group_rates=*/false);
  }
}

void EpsFabric::fill_rates_grouped() {
  COSCHED_PROF_SCOPE("eps.fill_rates");
  const double link_cap = topo_.eps_rack_link().in_bits_per_sec();
  const auto racks = static_cast<std::size_t>(topo_.num_racks);
  const auto nlinks = static_cast<std::int32_t>(racks);

  up_cap_.assign(racks, link_cap);
  down_cap_.assign(racks, link_cap);
  up_load_ = up_count_;
  down_load_ = down_count_;
  std::fill(link_epoch_.begin(), link_epoch_.end(), 0U);
  for (auto& lg : link_groups_) lg.clear();
  link_heap_.clear();

  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    FlowGroup& g = groups_[gi];
    g.frozen = false;
    g.rate = 0.0;
    link_groups_[static_cast<std::size_t>(g.src)].push_back(
        static_cast<std::int32_t>(gi));
    link_groups_[racks + static_cast<std::size_t>(g.dst)].push_back(
        static_cast<std::int32_t>(gi));
  }

  // Min-heap on (ratio, link): the top is the most constrained link; the
  // link index breaks exact ties deterministically.
  const auto fills_later = [](const LinkEntry& a, const LinkEntry& b) {
    if (a.ratio != b.ratio) return a.ratio > b.ratio;
    return a.link > b.link;
  };
  const auto push_link = [&](std::int32_t link, double cap,
                             std::int32_t load) {
    link_heap_.push_back(LinkEntry{
        cap / load, link_epoch_[static_cast<std::size_t>(link)], link});
    std::push_heap(link_heap_.begin(), link_heap_.end(), fills_later);
  };
  for (std::size_t r = 0; r < racks; ++r) {
    if (up_load_[r] > 0) {
      push_link(static_cast<std::int32_t>(r), up_cap_[r], up_load_[r]);
    }
    if (down_load_[r] > 0) {
      push_link(nlinks + static_cast<std::int32_t>(r), down_cap_[r],
                down_load_[r]);
    }
  }

  std::size_t remaining = groups_.size();
  while (remaining > 0) {
    // Pop entries until the top is live: that link is the most constrained.
    LinkEntry top{};
    for (;;) {
      COSCHED_CHECK_MSG(!link_heap_.empty(),
                        "progressive filling made no progress");
      top = link_heap_.front();
      std::pop_heap(link_heap_.begin(), link_heap_.end(), fills_later);
      link_heap_.pop_back();
      if (top.epoch == link_epoch_[static_cast<std::size_t>(top.link)]) break;
    }
    const double best_share = top.ratio;
    const double threshold = best_share * (1.0 + kTightTol);

    // Gather every link saturated at this share. The reference freezes a
    // flow when either of its endpoint links is within tolerance of
    // best_share, so one round may drain several links at once.
    tight_links_.clear();
    tight_links_.push_back(top.link);
    while (!link_heap_.empty()) {
      const LinkEntry next = link_heap_.front();
      if (next.epoch != link_epoch_[static_cast<std::size_t>(next.link)]) {
        std::pop_heap(link_heap_.begin(), link_heap_.end(), fills_later);
        link_heap_.pop_back();
        continue;
      }
      if (next.ratio > threshold) break;
      tight_links_.push_back(next.link);
      std::pop_heap(link_heap_.begin(), link_heap_.end(), fills_later);
      link_heap_.pop_back();
    }

    for (const std::int32_t link : tight_links_) {
      auto& members = link_groups_[static_cast<std::size_t>(link)];
      for (const std::int32_t gi : members) {
        FlowGroup& g = groups_[static_cast<std::size_t>(gi)];
        if (g.frozen) continue;
        g.frozen = true;
        g.rate = best_share;
        --remaining;
        const auto s = static_cast<std::size_t>(g.src);
        const auto d = static_cast<std::size_t>(g.dst);
        // Drain residual capacity exactly as the per-flow reference does —
        // one subtract-then-clamp per member flow — so both engines see
        // bit-identical link capacities in every later round.
        for (std::int32_t k = 0; k < g.count; ++k) {
          up_cap_[s] -= best_share;
          down_cap_[d] -= best_share;
          up_cap_[s] = std::max(up_cap_[s], 0.0);
          down_cap_[d] = std::max(down_cap_[d], 0.0);
        }
        up_load_[s] -= g.count;
        down_load_[d] -= g.count;
        ++link_epoch_[s];
        ++link_epoch_[racks + d];
        if (up_load_[s] > 0) {
          push_link(static_cast<std::int32_t>(s), up_cap_[s], up_load_[s]);
        }
        if (down_load_[d] > 0) {
          push_link(nlinks + static_cast<std::int32_t>(d), down_cap_[d],
                    down_load_[d]);
        }
      }
      members.clear();
    }
  }
}

void EpsFabric::fill_rates_reference() {
  COSCHED_PROF_SCOPE("eps.fill_rates");
  // --- Progressive filling over rack uplinks and downlinks. -------------
  // Local flows are not constrained by the fabric; they run at NIC speed.
  const double link_cap = topo_.eps_rack_link().in_bits_per_sec();
  const auto racks = static_cast<std::size_t>(topo_.num_racks);

  std::vector<double> up_cap(racks, link_cap);
  std::vector<double> down_cap(racks, link_cap);
  std::vector<int> up_load(racks, 0);
  std::vector<int> down_load(racks, 0);

  std::vector<ActiveFlow*> eps_flows;
  for (auto& [id, af] : active_) {
    if (af.flow->path() == FlowPath::kLocal) {
      af.flow->set_rate(topo_.server_nic);
      continue;
    }
    const auto s = static_cast<std::size_t>(af.flow->src().value());
    const auto d = static_cast<std::size_t>(af.flow->dst().value());
    COSCHED_CHECK(s < racks && d < racks);
    ++up_load[s];
    ++down_load[d];
    eps_flows.push_back(&af);
  }

  std::vector<bool> frozen(eps_flows.size(), false);
  std::size_t remaining = eps_flows.size();
  while (remaining > 0) {
    // Find the most constrained link: min residual_capacity / active_load.
    double best_share = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < racks; ++r) {
      if (up_load[r] > 0) {
        best_share = std::min(best_share, up_cap[r] / up_load[r]);
      }
      if (down_load[r] > 0) {
        best_share = std::min(best_share, down_cap[r] / down_load[r]);
      }
    }
    COSCHED_CHECK(best_share < std::numeric_limits<double>::infinity());

    // Freeze every flow whose uplink or downlink is saturated at this share.
    bool froze_any = false;
    for (std::size_t i = 0; i < eps_flows.size(); ++i) {
      if (frozen[i]) continue;
      const auto s =
          static_cast<std::size_t>(eps_flows[i]->flow->src().value());
      const auto d =
          static_cast<std::size_t>(eps_flows[i]->flow->dst().value());
      const bool up_tight =
          up_cap[s] / up_load[s] <= best_share * (1.0 + kTightTol);
      const bool down_tight =
          down_cap[d] / down_load[d] <= best_share * (1.0 + kTightTol);
      if (!up_tight && !down_tight) continue;
      eps_flows[i]->flow->set_rate(Bandwidth::bits_per_sec(best_share));
      frozen[i] = true;
      froze_any = true;
      --remaining;
      up_cap[s] -= best_share;
      down_cap[d] -= best_share;
      --up_load[s];
      --down_load[d];
      up_cap[s] = std::max(up_cap[s], 0.0);
      down_cap[d] = std::max(down_cap[d], 0.0);
    }
    COSCHED_CHECK_MSG(froze_any, "progressive filling made no progress");
  }
}

void EpsFabric::replan_completion_events(bool assign_group_rates) {
  // Hysteresis: leave a pending event in place when the new ETA moved by
  // less than 0.1% — on_completion_event verifies actual drain and
  // reschedules if the flow is not quite done, so this is safe and avoids
  // O(flows) heap churn on every rate perturbation.
  for (auto& [fid, af] : active_) {
    if (assign_group_rates) {
      if (af.flow->path() == FlowPath::kLocal) {
        af.flow->set_rate(topo_.server_nic);
      } else {
        const std::int32_t gi = group_of_pair_[pair_index(*af.flow)];
        COSCHED_CHECK(gi >= 0);
        af.flow->set_rate(Bandwidth::bits_per_sec(
            groups_[static_cast<std::size_t>(gi)].rate));
      }
    }
    const double rate = af.flow->rate().in_bits_per_sec();
    if (rate <= 0.0) {
      // A zero-byte flow awaiting its immediate-completion event.
      COSCHED_CHECK(af.flow->remaining_bits() <= kResidualBits);
      continue;
    }
    const Duration eta = Duration::seconds(af.flow->remaining_bits() / rate);
    const SimTime deadline = sim_.now() + eta;
    if (af.flow->completion_event().pending()) {
      const double drift =
          std::abs((af.flow->planned_completion() - deadline).sec());
      if (drift <= 1e-3 * eta.sec() + 1e-9) continue;
      af.flow->completion_event().cancel();
    }
    FlowId id = af.flow->id();
    af.flow->set_planned_completion(deadline);
    af.flow->completion_event() =
        sim_.schedule_at(deadline, [this, id] { on_completion_event(id); });
  }
}

void EpsFabric::on_completion_event(FlowId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return;  // already completed via another path
  settle_flow(it->second);
  Flow& flow = *it->second.flow;
  if (flow.remaining_bits() > kResidualBits) {
    // Not quite drained (demand grew, or the hysteresis left a slightly
    // early event in place): reschedule from the current remaining/rate —
    // unless the residue would drain within a nanosecond, in which case
    // it is floating-point noise: count it done now (re-adding a
    // sub-nanosecond event can fail to advance the clock at all, which
    // would loop forever).
    const double rate = flow.rate().in_bits_per_sec();
    if (rate <= 0.0) {
      // Demand landed on a zero-byte flow within its creation instant: the
      // immediate-completion event raced the replan that would assign a
      // rate. Leave the flow to the (already requested, or re-requested
      // here) replan, which re-plans its completion event too.
      request_replan();
      return;
    }
    const double eta_sec = flow.remaining_bits() / rate;
    if (eta_sec > 1e-9) {
      const Duration eta = Duration::seconds(eta_sec);
      flow.set_planned_completion(sim_.now() + eta);
      flow.completion_event() = sim_.schedule_after(
          eta, [this, id] { on_completion_event(id); });
      return;
    }
  }
  flow.mark_completed(sim_.now());
  flow.completion_event().cancel();
  // Drop the settled residue from the in-flight accumulator (it is below
  // kResidualBits and was never accounted as transferred).
  in_flight_bits_ -= it->second.tracked_bits;
  if (flow.path() == FlowPath::kEps) group_remove(flow);
  CompletionCallback cb = std::move(it->second.on_complete);
  active_.erase(it);
  if (!active_.empty()) request_replan();
  if (cb) cb(flow);
}

void EpsFabric::group_add(const Flow& flow) {
  const std::size_t pair = pair_index(flow);
  std::int32_t gi = group_of_pair_[pair];
  if (gi < 0) {
    gi = static_cast<std::int32_t>(groups_.size());
    groups_.push_back(
        FlowGroup{static_cast<std::int32_t>(flow.src().value()),
                  static_cast<std::int32_t>(flow.dst().value()), 0, 0.0,
                  false});
    group_of_pair_[pair] = gi;
  }
  ++groups_[static_cast<std::size_t>(gi)].count;
  ++up_count_[static_cast<std::size_t>(flow.src().value())];
  ++down_count_[static_cast<std::size_t>(flow.dst().value())];
}

void EpsFabric::group_remove(const Flow& flow) {
  const std::size_t pair = pair_index(flow);
  const std::int32_t gi = group_of_pair_[pair];
  COSCHED_CHECK_MSG(gi >= 0, "flow " << flow.id() << " has no group");
  FlowGroup& g = groups_[static_cast<std::size_t>(gi)];
  --g.count;
  --up_count_[static_cast<std::size_t>(g.src)];
  --down_count_[static_cast<std::size_t>(g.dst)];
  COSCHED_CHECK(g.count >= 0);
  if (g.count > 0) return;
  // Swap-erase the empty group and patch the moved group's pair index.
  group_of_pair_[pair] = -1;
  const auto last = static_cast<std::int32_t>(groups_.size()) - 1;
  if (gi != last) {
    g = groups_[static_cast<std::size_t>(last)];
    const auto racks = static_cast<std::size_t>(topo_.num_racks);
    group_of_pair_[static_cast<std::size_t>(g.src) * racks +
                   static_cast<std::size_t>(g.dst)] = gi;
  }
  groups_.pop_back();
}

std::size_t EpsFabric::pair_index(const Flow& flow) const {
  const auto racks = static_cast<std::size_t>(topo_.num_racks);
  const auto s = static_cast<std::size_t>(flow.src().value());
  const auto d = static_cast<std::size_t>(flow.dst().value());
  COSCHED_CHECK(s < racks && d < racks);
  return s * racks + d;
}

DataSize EpsFabric::bytes_in_flight() const {
  return DataSize::bytes(
      static_cast<std::int64_t>(std::max(in_flight_bits_, 0.0) / 8.0));
}

std::vector<std::pair<FlowId, Bandwidth>> EpsFabric::current_rates() const {
  std::vector<std::pair<FlowId, Bandwidth>> out;
  out.reserve(active_.size());
  for (const auto& [id, af] : active_) {
    out.emplace_back(id, af.flow->rate());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace cosched
