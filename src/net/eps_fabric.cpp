#include "net/eps_fabric.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/log.h"
#include "obs/profile.h"

namespace cosched {

namespace {

// Completion is declared when fewer than this many bits remain; guards
// against floating-point residue keeping a drained flow alive.
constexpr double kResidualBits = 1e-3;

// Rate recomputations triggered within this window of the previous one are
// coalesced into a single deferred pass. Rates are then stale by at most
// this long — negligible against multi-second EPS transfers, and a large
// constant-factor win when thousands of flows churn.
constexpr Duration kReplanInterval = Duration::milliseconds(100);

}  // namespace

EpsFabric::EpsFabric(Simulator& sim, const HybridTopology& topo)
    : sim_(sim), topo_(topo) {
  topo_.validate();
}

void EpsFabric::start_flow(Flow& flow, CompletionCallback on_complete) {
  COSCHED_CHECK_MSG(!flow.completed(), "flow " << flow.id() << " already done");
  COSCHED_CHECK(flow.path() == FlowPath::kEps ||
                flow.path() == FlowPath::kLocal);
  flow.mark_started(sim_.now());
  flow.set_rate(Bandwidth::zero());
  active_.emplace(flow.id(),
                  ActiveFlow{&flow, std::move(on_complete), sim_.now()});
  if (flow.remaining_bits() <= kResidualBits) {
    // Zero-byte flow: complete immediately (still asynchronously, so the
    // caller's state machine sees a uniform event ordering).
    FlowId id = flow.id();
    sim_.schedule_after(Duration::zero(), [this, id] {
      on_completion_event(id);
    });
    return;
  }
  request_replan();
}

void EpsFabric::demand_added(Flow& flow) {
  auto it = active_.find(flow.id());
  if (it != active_.end()) settle_flow(it->second);
  request_replan();
}

void EpsFabric::request_replan() {
  if (replan_scheduled_) return;
  replan_scheduled_ = true;
  const SimTime due = std::max(sim_.now(), last_replan_ + kReplanInterval);
  sim_.schedule_at(due, [this] {
    replan_scheduled_ = false;
    recompute_and_replan();
  });
}

void EpsFabric::settle_flow(ActiveFlow& af) {
  const Duration elapsed = sim_.now() - af.last_settle;
  af.last_settle = sim_.now();
  if (elapsed <= Duration::zero()) return;
  const double moved_bits = af.flow->settle(elapsed);
  const auto moved =
      DataSize::bytes(static_cast<std::int64_t>(moved_bits / 8.0));
  if (af.flow->path() == FlowPath::kLocal) {
    local_bytes_ += moved;
  } else {
    eps_bytes_ += moved;
  }
}

void EpsFabric::recompute_and_replan() {
  COSCHED_PROF_SCOPE("eps.recompute_and_replan");
  ++replans_;
  last_replan_ = sim_.now();
  // Settle every flow at its current (old) rate before rates change.
  for (auto& [id, af] : active_) settle_flow(af);

  // --- Progressive filling over rack uplinks and downlinks. -------------
  // Local flows are not constrained by the fabric; they run at NIC speed.
  const double link_cap = topo_.eps_rack_link().in_bits_per_sec();
  const auto racks = static_cast<std::size_t>(topo_.num_racks);

  std::vector<double> up_cap(racks, link_cap);
  std::vector<double> down_cap(racks, link_cap);
  std::vector<int> up_load(racks, 0);
  std::vector<int> down_load(racks, 0);

  std::vector<ActiveFlow*> eps_flows;
  for (auto& [id, af] : active_) {
    if (af.flow->path() == FlowPath::kLocal) {
      af.flow->set_rate(topo_.server_nic);
      continue;
    }
    const auto s = static_cast<std::size_t>(af.flow->src().value());
    const auto d = static_cast<std::size_t>(af.flow->dst().value());
    COSCHED_CHECK(s < racks && d < racks);
    ++up_load[s];
    ++down_load[d];
    eps_flows.push_back(&af);
  }

  std::vector<bool> frozen(eps_flows.size(), false);
  std::size_t remaining = eps_flows.size();
  while (remaining > 0) {
    // Find the most constrained link: min residual_capacity / active_load.
    double best_share = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < racks; ++r) {
      if (up_load[r] > 0) {
        best_share = std::min(best_share, up_cap[r] / up_load[r]);
      }
      if (down_load[r] > 0) {
        best_share = std::min(best_share, down_cap[r] / down_load[r]);
      }
    }
    COSCHED_CHECK(best_share < std::numeric_limits<double>::infinity());

    // Freeze every flow whose uplink or downlink is saturated at this share.
    bool froze_any = false;
    for (std::size_t i = 0; i < eps_flows.size(); ++i) {
      if (frozen[i]) continue;
      const auto s =
          static_cast<std::size_t>(eps_flows[i]->flow->src().value());
      const auto d =
          static_cast<std::size_t>(eps_flows[i]->flow->dst().value());
      const bool up_tight =
          up_cap[s] / up_load[s] <= best_share * (1.0 + 1e-12);
      const bool down_tight =
          down_cap[d] / down_load[d] <= best_share * (1.0 + 1e-12);
      if (!up_tight && !down_tight) continue;
      eps_flows[i]->flow->set_rate(Bandwidth::bits_per_sec(best_share));
      frozen[i] = true;
      froze_any = true;
      --remaining;
      up_cap[s] -= best_share;
      down_cap[d] -= best_share;
      --up_load[s];
      --down_load[d];
      up_cap[s] = std::max(up_cap[s], 0.0);
      down_cap[d] = std::max(down_cap[d], 0.0);
    }
    COSCHED_CHECK_MSG(froze_any, "progressive filling made no progress");
  }

  // --- Re-plan completion events. ----------------------------------------
  // Hysteresis: leave a pending event in place when the new ETA moved by
  // less than 0.1% — on_completion_event verifies actual drain and
  // reschedules if the flow is not quite done, so this is safe and avoids
  // O(flows) heap churn on every rate perturbation.
  for (auto& [fid, af] : active_) {
    const double rate = af.flow->rate().in_bits_per_sec();
    if (rate <= 0.0) {
      // A zero-byte flow awaiting its immediate-completion event.
      COSCHED_CHECK(af.flow->remaining_bits() <= kResidualBits);
      continue;
    }
    const Duration eta = Duration::seconds(af.flow->remaining_bits() / rate);
    const SimTime deadline = sim_.now() + eta;
    if (af.flow->completion_event().pending()) {
      const double drift =
          std::abs((af.flow->planned_completion() - deadline).sec());
      if (drift <= 1e-3 * eta.sec() + 1e-9) continue;
      af.flow->completion_event().cancel();
    }
    FlowId id = af.flow->id();
    af.flow->set_planned_completion(deadline);
    af.flow->completion_event() =
        sim_.schedule_at(deadline, [this, id] { on_completion_event(id); });
  }
}

void EpsFabric::on_completion_event(FlowId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return;  // already completed via another path
  settle_flow(it->second);
  Flow& flow = *it->second.flow;
  if (flow.remaining_bits() > kResidualBits) {
    // Not quite drained (demand grew, or the hysteresis left a slightly
    // early event in place): reschedule from the current remaining/rate —
    // unless the residue would drain within a nanosecond, in which case
    // it is floating-point noise: count it done now (re-adding a
    // sub-nanosecond event can fail to advance the clock at all, which
    // would loop forever).
    const double rate = flow.rate().in_bits_per_sec();
    COSCHED_CHECK(rate > 0.0);
    const double eta_sec = flow.remaining_bits() / rate;
    if (eta_sec > 1e-9) {
      const Duration eta = Duration::seconds(eta_sec);
      flow.set_planned_completion(sim_.now() + eta);
      flow.completion_event() = sim_.schedule_after(
          eta, [this, id] { on_completion_event(id); });
      return;
    }
  }
  flow.mark_completed(sim_.now());
  flow.completion_event().cancel();
  CompletionCallback cb = std::move(it->second.on_complete);
  active_.erase(it);
  if (!active_.empty()) request_replan();
  if (cb) cb(flow);
}

DataSize EpsFabric::bytes_in_flight() const {
  double bits = 0.0;
  for (const auto& [id, af] : active_) bits += af.flow->remaining_bits();
  return DataSize::bytes(static_cast<std::int64_t>(bits / 8.0));
}

std::vector<std::pair<FlowId, Bandwidth>> EpsFabric::current_rates() const {
  std::vector<std::pair<FlowId, Bandwidth>> out;
  out.reserve(active_.size());
  for (const auto& [id, af] : active_) {
    out.emplace_back(id, af.flow->rate());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace cosched
