// Flow-level model of the electrical packet-switched network.
//
// The core is assumed non-blocking; contention happens on each rack's ToR
// uplink (toward the core) and downlink (from the core), both of capacity
// `eps_rack_link()`. Active flows receive their max-min fair share computed
// by progressive filling: repeatedly find the most-constrained link, freeze
// the flows crossing it at the fair share, and continue with residual
// capacities.
//
// Rates are piecewise constant between network events. Every mutation
// (flow added, demand added, flow finished) settles in-flight bytes, then
// recomputes all rates and re-plans each flow's completion event.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "net/flow.h"
#include "net/topology.h"
#include "simcore/simulator.h"

namespace cosched {

class EpsFabric {
 public:
  using CompletionCallback = std::function<void(Flow&)>;

  EpsFabric(Simulator& sim, const HybridTopology& topo);

  /// Begin transferring `flow` over the EPS (or the local rack path when
  /// src == dst). `on_complete` fires exactly once, when the flow drains.
  void start_flow(Flow& flow, CompletionCallback on_complete);

  /// Notify the fabric that `flow`'s size grew (demand added mid-transfer).
  void demand_added(Flow& flow);

  /// Current number of in-flight flows (EPS + local).
  [[nodiscard]] std::size_t active_flows() const { return active_.size(); }

  /// Total bytes drained through the cross-rack EPS links so far.
  [[nodiscard]] DataSize eps_bytes_transferred() const { return eps_bytes_; }

  /// Total bytes drained through intra-rack (local) paths so far.
  [[nodiscard]] DataSize local_bytes_transferred() const {
    return local_bytes_;
  }

  /// Bytes still to drain across all active flows (settled view lags the
  /// fluid model by at most one replan interval).
  [[nodiscard]] DataSize bytes_in_flight() const;

  /// Progressive-filling passes executed so far (diagnostics).
  [[nodiscard]] std::int64_t replans() const { return replans_; }

  /// Max-min fair rates for the current flow set (exposed for testing),
  /// sorted by flow id.
  [[nodiscard]] std::vector<std::pair<FlowId, Bandwidth>> current_rates()
      const;

 private:
  struct ActiveFlow {
    Flow* flow;
    CompletionCallback on_complete;
    /// Last time this flow's fluid transfer was advanced.
    SimTime last_settle = SimTime::zero();
  };

  /// Advance one flow's fluid transfer to now (at its current rate) and
  /// account the moved bytes.
  void settle_flow(ActiveFlow& af);
  /// Coalesce rate recomputation: mutations within one replan interval
  /// trigger a single progressive-filling pass. The first change after a
  /// quiet period replans immediately (so isolated transitions stay
  /// exact); storms are batched at kReplanInterval granularity.
  void request_replan();
  void recompute_and_replan();
  void on_completion_event(FlowId id);

  Simulator& sim_;
  HybridTopology topo_;
  std::unordered_map<FlowId, ActiveFlow> active_;
  SimTime last_replan_ = SimTime::seconds(-1e9);
  bool replan_scheduled_ = false;
  DataSize eps_bytes_ = DataSize::zero();
  DataSize local_bytes_ = DataSize::zero();
  std::int64_t replans_ = 0;
};

}  // namespace cosched
