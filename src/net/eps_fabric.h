// Flow-level model of the electrical packet-switched network.
//
// The core is assumed non-blocking; contention happens on each rack's ToR
// uplink (toward the core) and downlink (from the core), both of capacity
// `eps_rack_link()`. Active flows receive their max-min fair share computed
// by progressive filling: repeatedly find the most-constrained link, freeze
// the flows crossing it at the fair share, and continue with residual
// capacities.
//
// The production fast path exploits a structural fact of this two-level
// topology: a flow's max-min share depends only on its (src, dst) rack
// pair, because all flows of one pair cross exactly the same two links and
// therefore freeze in the same filling round at the same share. The fabric
// maintains flow *groups* keyed by rack pair incrementally (on flow start
// and completion, together with per-rack up/down flow counts) and
// water-fills over groups, locating each round's most constrained link
// with a lazy min-heap over the 2*racks rack links instead of rescanning
// every link and every flow per round. The retained per-flow
// implementation (RateEngine::kReference) computes the same rates bit for
// bit; the determinism test suite enforces that equivalence.
//
// Rates are piecewise constant between network events. Every mutation
// (flow added, demand added, flow finished) settles in-flight bytes, then
// recomputes all rates and re-plans each flow's completion event.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/flow.h"
#include "net/topology.h"
#include "simcore/simulator.h"

namespace cosched {

class EpsFabric {
 public:
  using CompletionCallback = std::function<void(Flow&)>;

  /// Which progressive-filling implementation recomputes rates. kGrouped is
  /// the production fast path (water-filling over (src, dst) rack-pair
  /// groups); kReference is the retained per-flow implementation used by
  /// the equivalence regression tests and the before/after benchmarks.
  enum class RateEngine { kGrouped, kReference };

  EpsFabric(Simulator& sim, const HybridTopology& topo);

  /// Begin transferring `flow` over the EPS (or the local rack path when
  /// src == dst). `on_complete` fires exactly once, when the flow drains.
  void start_flow(Flow& flow, CompletionCallback on_complete);

  /// Notify the fabric that `flow`'s size grew (demand added mid-transfer).
  void demand_added(Flow& flow);

  /// Current number of in-flight flows (EPS + local).
  [[nodiscard]] std::size_t active_flows() const { return active_.size(); }

  /// Active (src, dst) rack pairs with at least one in-flight EPS flow.
  [[nodiscard]] std::size_t active_groups() const { return groups_.size(); }

  /// Total bytes drained through the cross-rack EPS links so far.
  /// Accumulated in bits and converted once here, so frequent settles do
  /// not truncate away fractional bytes.
  [[nodiscard]] DataSize eps_bytes_transferred() const {
    return DataSize::bytes(static_cast<std::int64_t>(eps_bits_ / 8.0));
  }

  /// Total bytes drained through intra-rack (local) paths so far.
  [[nodiscard]] DataSize local_bytes_transferred() const {
    return DataSize::bytes(static_cast<std::int64_t>(local_bits_ / 8.0));
  }

  /// Exact drained-bit accumulators (no byte truncation), for the
  /// invariant auditor's conservation identity.
  [[nodiscard]] double eps_bits() const { return eps_bits_; }
  [[nodiscard]] double local_bits() const { return local_bits_; }

  /// Bytes still to drain across all active flows, O(1) via an
  /// incrementally maintained accumulator (the settled view lags the fluid
  /// model by at most one replan interval).
  [[nodiscard]] DataSize bytes_in_flight() const;

  /// Progressive-filling passes executed so far (diagnostics).
  [[nodiscard]] std::int64_t replans() const { return replans_; }

  void set_rate_engine(RateEngine engine) { engine_ = engine; }
  [[nodiscard]] RateEngine rate_engine() const { return engine_; }

  /// Max-min fair rates for the current flow set (exposed for testing),
  /// sorted by flow id.
  [[nodiscard]] std::vector<std::pair<FlowId, Bandwidth>> current_rates()
      const;

 private:
  struct ActiveFlow {
    Flow* flow;
    CompletionCallback on_complete;
    /// Last time this flow's fluid transfer was advanced.
    SimTime last_settle = SimTime::zero();
    /// Remaining bits as last synced into the in-flight accumulator.
    double tracked_bits = 0.0;
  };

  /// One (src, dst) rack pair with at least one active EPS flow. `count`
  /// is maintained incrementally; `rate` and `frozen` are scratch for the
  /// current filling pass.
  struct FlowGroup {
    std::int32_t src;
    std::int32_t dst;
    std::int32_t count = 0;
    double rate = 0.0;
    bool frozen = false;
  };

  /// Lazy min-heap entry for one rack link (links 0..racks-1 are uplinks,
  /// racks..2*racks-1 downlinks). Stale once `epoch` no longer matches
  /// link_epoch_ — the link's capacity or load changed after the push.
  struct LinkEntry {
    double ratio;
    std::uint32_t epoch;
    std::int32_t link;
  };

  /// Advance one flow's fluid transfer to now (at its current rate) and
  /// account the moved bits.
  void settle_flow(ActiveFlow& af);
  /// Coalesce rate recomputation: mutations within one replan interval
  /// trigger a single progressive-filling pass. The first change after a
  /// quiet period replans immediately (so isolated transitions stay
  /// exact); storms are batched at kReplanInterval granularity.
  void request_replan();
  void recompute_and_replan();
  /// Fast path: water-fill over flow groups with a lazy link min-heap.
  /// Leaves the per-flow share in each group's `rate`.
  void fill_rates_grouped();
  /// Reference path: per-flow progressive filling with a full link scan
  /// per round. Assigns flow rates directly (including local flows).
  void fill_rates_reference();
  /// Push rates onto flows (grouped engine only) and re-plan completion
  /// events with ETA hysteresis.
  void replan_completion_events(bool assign_group_rates);
  void on_completion_event(FlowId id);
  void group_add(const Flow& flow);
  void group_remove(const Flow& flow);
  [[nodiscard]] std::size_t pair_index(const Flow& flow) const;

  Simulator& sim_;
  HybridTopology topo_;
  RateEngine engine_ = RateEngine::kGrouped;
  std::unordered_map<FlowId, ActiveFlow> active_;
  SimTime last_replan_ = SimTime::seconds(-1e9);
  bool replan_scheduled_ = false;
  std::int64_t replans_ = 0;

  // Byte accounting, kept in double bits and converted at read time.
  double eps_bits_ = 0.0;
  double local_bits_ = 0.0;
  double in_flight_bits_ = 0.0;

  // Flow groups, maintained incrementally on flow start/completion.
  std::vector<FlowGroup> groups_;
  std::vector<std::int32_t> group_of_pair_;  // racks*racks, -1 = no group
  std::vector<std::int32_t> up_count_;   // active EPS flows per source rack
  std::vector<std::int32_t> down_count_;  // active EPS flows per dest rack

  // Scratch reused across grouped filling passes (no per-pass allocation
  // once the vectors reach steady-state capacity).
  std::vector<double> up_cap_;
  std::vector<double> down_cap_;
  std::vector<std::int32_t> up_load_;
  std::vector<std::int32_t> down_load_;
  std::vector<std::uint32_t> link_epoch_;
  std::vector<std::vector<std::int32_t>> link_groups_;
  std::vector<LinkEntry> link_heap_;
  std::vector<std::int32_t> tight_links_;
};

}  // namespace cosched
