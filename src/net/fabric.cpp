#include "net/fabric.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace cosched {

namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

/// Strict positive-integer parse of a whole string: digits only (no
/// whitespace, no sign, no trailing characters), value in [1, max_value].
bool parse_planes(const std::string& s, std::int32_t max_value,
                  std::int32_t* out) {
  if (s.empty() || s[0] < '0' || s[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE || end == s.c_str() || *end != '\0') return false;
  if (v < 1 || v > max_value) return false;
  *out = static_cast<std::int32_t>(v);
  return true;
}

/// Strict positive duration: a number (digits or '.', no sign, no
/// whitespace) with an optional "ms" or "s" suffix; bare numbers are
/// seconds. Rejects zero, negatives, and any trailing junk.
bool parse_period(const std::string& s, Duration* out) {
  if (s.empty() || ((s[0] < '0' || s[0] > '9') && s[0] != '.')) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno == ERANGE || end == s.c_str()) return false;
  double scale = 1.0;
  if (end[0] == 'm' && end[1] == 's' && end[2] == '\0') {
    scale = 1e-3;
  } else if (end[0] == 's' && end[1] == '\0') {
    scale = 1.0;
  } else if (end[0] != '\0') {
    return false;
  }
  if (!(v > 0.0)) return false;  // also rejects NaN
  *out = Duration::seconds(v * scale);
  return true;
}

}  // namespace

std::optional<FabricSpec> FabricSpec::parse(const std::string& spec,
                                            std::string* error) {
  if (spec.empty()) {
    fail(error, "empty fabric spec (expected ocs[:K], rotor[:PERIOD], mesh, "
                "or ring)");
    return std::nullopt;
  }
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const bool has_arg = colon != std::string::npos;
  const std::string arg = has_arg ? spec.substr(colon + 1) : std::string();

  FabricSpec out;
  if (name == "ocs") {
    out.kind = FabricKind::kOcs;
    if (has_arg && !parse_planes(arg, 64, &out.planes)) {
      fail(error, "ocs fabric: plane count must be an integer in [1, 64], "
                  "got '" + arg + "'");
      return std::nullopt;
    }
    return out;
  }
  if (name == "rotor") {
    out.kind = FabricKind::kRotor;
    if (has_arg && !parse_period(arg, &out.rotor_period)) {
      fail(error, "rotor fabric: period must be a positive duration "
                  "(e.g. 100ms or 0.1s), got '" + arg + "'");
      return std::nullopt;
    }
    return out;
  }
  if (name == "mesh" || name == "ring") {
    if (has_arg) {
      fail(error, name + " fabric takes no parameter, got '" + arg + "'");
      return std::nullopt;
    }
    out.kind = name == "mesh" ? FabricKind::kMesh : FabricKind::kRing;
    return out;
  }
  fail(error, "unknown fabric '" + name +
                  "' (expected ocs[:K], rotor[:PERIOD], mesh, or ring)");
  return std::nullopt;
}

std::string FabricSpec::to_spec() const {
  switch (kind) {
    case FabricKind::kOcs:
      return "ocs:" + std::to_string(planes);
    case FabricKind::kRotor: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "rotor:%gs", rotor_period.sec());
      return buf;
    }
    case FabricKind::kMesh:
      return "mesh";
    case FabricKind::kRing:
      return "ring";
  }
  return "?";
}

}  // namespace cosched
