// Static description of the Hybrid-DCN (Figure 1 of the paper).
//
// R racks of servers. Each rack's ToR switch has two uplinks: one to the
// core electrical packet switch (EPS) — oversubscribed — and one to the
// optical circuit switch (OCS) at 100 Gb/s. The OCS is a non-blocking
// R-port circuit switch: one circuit per input port at a time, and changing
// a circuit costs a reconfiguration delay delta.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "common/units.h"

namespace cosched {

struct HybridTopology {
  std::int32_t num_racks = 60;
  std::int32_t servers_per_rack = 10;
  std::int32_t slots_per_server = 20;  // max concurrent tasks per server

  Bandwidth server_nic = Bandwidth::gbps(10);
  /// Aggregate-server-bandwidth : ToR-uplink ratio (paper default 10:1).
  double eps_oversubscription = 10.0;
  Bandwidth ocs_link = Bandwidth::gbps(100);
  Duration ocs_reconfig_delay = Duration::milliseconds(10);

  /// Flows at or above this size may use the OCS (c-Through style).
  DataSize elephant_threshold = DataSize::gigabytes(1.125);

  /// Capacity of one ToR's uplink (and downlink) to the core EPS.
  [[nodiscard]] Bandwidth eps_rack_link() const {
    COSCHED_CHECK(eps_oversubscription > 0.0);
    return server_nic * static_cast<double>(servers_per_rack) /
           eps_oversubscription;
  }

  [[nodiscard]] std::int64_t slots_per_rack() const {
    return static_cast<std::int64_t>(servers_per_rack) * slots_per_server;
  }

  [[nodiscard]] std::int64_t total_slots() const {
    return slots_per_rack() * num_racks;
  }

  void validate() const {
    COSCHED_CHECK(num_racks > 0);
    COSCHED_CHECK(servers_per_rack > 0);
    COSCHED_CHECK(slots_per_server > 0);
    COSCHED_CHECK(server_nic.in_bits_per_sec() > 0);
    COSCHED_CHECK(ocs_link.in_bits_per_sec() > 0);
    COSCHED_CHECK(eps_oversubscription > 0);
    COSCHED_CHECK(ocs_reconfig_delay >= Duration::zero());
    COSCHED_CHECK(elephant_threshold > DataSize::zero());
  }
};

}  // namespace cosched
