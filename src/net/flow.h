// A rack-to-rack flow in the fluid (flow-level) network model.
//
// Flows are aggregated per (job, source rack, destination rack): all shuffle
// bytes a job moves between one rack pair form one Flow. The elephant rule
// is applied at this granularity, exactly as in the paper.
//
// A Flow's `remaining_bits` is settled lazily: whenever the set of active
// flows (and hence rates) changes, the owner advances every active flow by
// rate * elapsed and re-plans completion events.
#pragma once

#include <algorithm>
#include <functional>

#include "common/ids.h"
#include "common/units.h"
#include "simcore/simulator.h"

namespace cosched {

enum class FlowPath {
  kPending,  // not yet routed
  kEps,      // shares the oversubscribed packet network
  kOcs,      // waits for / uses an optical circuit
  kLocal     // src == dst; served at NIC speed without fabric contention
};

[[nodiscard]] constexpr const char* to_string(FlowPath p) {
  switch (p) {
    case FlowPath::kPending:
      return "pending";
    case FlowPath::kEps:
      return "eps";
    case FlowPath::kOcs:
      return "ocs";
    case FlowPath::kLocal:
      return "local";
  }
  return "?";
}

class Flow {
 public:
  Flow(FlowId id, CoflowId coflow, JobId job, RackId src, RackId dst,
       DataSize size)
      : id_(id),
        coflow_(coflow),
        job_(job),
        src_(src),
        dst_(dst),
        size_(size),
        remaining_bits_(static_cast<double>(size.in_bytes()) * 8.0) {}

  Flow(const Flow&) = delete;
  Flow& operator=(const Flow&) = delete;

  [[nodiscard]] FlowId id() const { return id_; }
  [[nodiscard]] CoflowId coflow() const { return coflow_; }
  [[nodiscard]] JobId job() const { return job_; }
  [[nodiscard]] RackId src() const { return src_; }
  [[nodiscard]] RackId dst() const { return dst_; }
  [[nodiscard]] DataSize size() const { return size_; }
  [[nodiscard]] FlowPath path() const { return path_; }
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool completed() const { return completed_; }
  [[nodiscard]] SimTime start_time() const { return start_time_; }
  [[nodiscard]] SimTime completion_time() const { return completion_time_; }
  [[nodiscard]] double remaining_bits() const { return remaining_bits_; }
  [[nodiscard]] DataSize remaining() const {
    return DataSize::bytes(static_cast<std::int64_t>(remaining_bits_ / 8.0));
  }
  [[nodiscard]] Bandwidth rate() const { return rate_; }

  void set_path(FlowPath p) { path_ = p; }

  /// Additional demand discovered after creation (a reduce task placed on
  /// the destination rack after the flow already existed).
  void add_demand(DataSize extra) {
    size_ += extra;
    remaining_bits_ += static_cast<double>(extra.in_bytes()) * 8.0;
    if (completed_ && remaining_bits_ > 0.0) completed_ = false;
  }

  void mark_started(SimTime now) {
    if (!started_) {
      started_ = true;
      start_time_ = now;
    }
  }

  void mark_completed(SimTime now) {
    completed_ = true;
    remaining_bits_ = 0.0;
    completion_time_ = now;
  }

  /// Advance the fluid transfer by `elapsed` at the current rate.
  /// Returns the number of bits moved.
  double settle(Duration elapsed) {
    const double moved =
        std::min(remaining_bits_, rate_.in_bits_per_sec() * elapsed.sec());
    remaining_bits_ -= moved;
    return moved;
  }

  void set_rate(Bandwidth r) { rate_ = r; }

  /// Completion event bookkeeping for whichever fabric is carrying the flow.
  EventHandle& completion_event() { return completion_event_; }

  /// Deadline the current completion event targets (fabric bookkeeping;
  /// used to skip rescheduling when a rate change barely moves the ETA).
  [[nodiscard]] SimTime planned_completion() const {
    return planned_completion_;
  }
  void set_planned_completion(SimTime t) { planned_completion_ = t; }

 private:
  FlowId id_;
  CoflowId coflow_;
  JobId job_;
  RackId src_;
  RackId dst_;
  DataSize size_;
  double remaining_bits_;
  FlowPath path_ = FlowPath::kPending;
  bool started_ = false;
  bool completed_ = false;
  SimTime start_time_ = SimTime::zero();
  SimTime completion_time_ = SimTime::zero();
  Bandwidth rate_ = Bandwidth::zero();
  EventHandle completion_event_;
  SimTime planned_completion_ = SimTime::infinity();
};

}  // namespace cosched
