// InvariantAuditor: a passive runtime checker the driver reports into at
// well-defined sync points. It re-derives the bookkeeping the simulation
// depends on — byte ledgers, container ledgers, OCS port state, event-queue
// shape, scheduler contracts — from an independent shadow copy and aborts
// with a structured dump on the first divergence.
//
// Design constraints (see DESIGN.md §8):
//   * Strictly passive: the auditor never schedules events, never draws
//     from any RNG, and never mutates model state. An audited run is
//     bit-for-bit identical to an unaudited one; only the failure mode
//     changes (structured AuditFailure instead of silent corruption).
//   * Always compiled, flag-enabled: SimConfig::audit (default on in Debug
//     builds, off in Release; benches expose --audit / --no-audit).
//   * Cheap checks (one rack's slot ledger) run at every grant/release;
//     O(racks) sweeps run at dispatch boundaries and outage edges; O(flows)
//     conservation sweeps run at job completion and end of run.
//
// Checked invariants and their sync points:
//   1. Byte conservation — for every flow, bits injected (its cumulative
//      size, synced at route_flow) equal bits drained through EPS + local +
//      OCS accounting plus bits still in flight, up to the documented
//      sub-residual completion slack. Checked per job at finish (all of the
//      job's flows complete with zero remainder) and globally at job
//      finish, outage edges, and end of run.
//   2. Container ledger — per rack, auditor-counted grants == cluster
//      used_slots and granted + free == capacity; a task never runs
//      without a grant and never holds two. Checked at every grant,
//      release, and kill, plus full sweeps with check_light().
//   3. Fabric coherence — for plane-based fabrics (ocs:K), at most one
//      circuit per ingress/egress port per plane, out/in port states
//      symmetric, no activity on a downed plane; for every fabric, no
//      circuit activity (connected, reconfiguring, or mid-transfer) inside
//      a whole-fabric outage window, plus the fabric's own
//      Fabric::self_check() invariants at every light check.
//   4. Event-queue sanity — live-entry count matches the queue's ledger,
//      no live event is scheduled before `now`, and compaction never drops
//      a live handle (Simulator::queue_consistent()).
//   5. Scheduler contracts — PSRT's installed reduce plan sums to the
//      job's reduce count; every OCAS grant satisfies the predicate of the
//      priority class it was logged under (class 1 grants have remaining
//      plan capacity on the rack, class 2 grants are guideline-local maps,
//      and so on).
//   6. Scheduler cache coherence — an incremental scheduler engine's
//      cached state (candidate lists, fair-share counters, retired-job
//      bookkeeping) re-derived from first principles via
//      JobScheduler::audit_invariants at dispatch boundaries; any
//      divergence between cache and recompute aborts.
//   7. CCT lower bound — a completed coflow whose every cross-rack flow
//      drained on the circuit fabric (same-rack flows are exempt: they
//      never enter the cross-rack matrix the bound is computed over) must
//      take at least the fabric's own
//      Fabric::cct_lower_bound over its final traffic matrix (each fabric
//      documents its model in docs/FABRICS.md). Checked at job finish;
//      disabled by the driver when reconfiguration jitter is injected
//      (jittered setups can undercut the base delay the bound charges),
//      and skipped for coflows reopened after completion (a killed
//      reduce's re-fetch lands outside the measured CCT window).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/job.h"
#include "common/check.h"
#include "net/network.h"
#include "simcore/simulator.h"

namespace cosched {

class JobScheduler;

/// Thrown on the first invariant violation. Subclasses CheckFailure so
/// existing CheckFailure handlers (tests, bench guards) also catch audit
/// aborts; what() carries the structured dump.
class AuditFailure : public CheckFailure {
 public:
  explicit AuditFailure(const std::string& what) : CheckFailure(what) {}
};

class InvariantAuditor {
 public:
  InvariantAuditor(const Simulator& sim, const Network& net,
                   const Cluster& cluster, const Fabric& fabric,
                   const HybridTopology& topo);

  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  // ----- driver sync points ------------------------------------------------
  /// A container was granted (task already placed, before the job's
  /// per-rack placement counters advance — so plan capacity is still
  /// visible for the class-1 check). `grant_class` is the OCAS priority
  /// class from TaskChoice (-1 for schedulers without classes).
  void on_container_grant(const Job& job, const Task& task, RackId rack,
                          std::int32_t grant_class);
  /// A container was returned — task completion or kill rollback.
  void on_container_release(const Job& job, const Task& task, RackId rack);
  /// The scheduler finished its PSRT+SBS pass for `job` (plan installed or
  /// deliberately absent).
  void on_reduce_plan(const Job& job);
  /// A flow was created, grew, or reopened in route_flow — the single
  /// entry point where demand reaches a fabric. Syncs the flow's size into
  /// the injected ledger.
  void on_flow_routed(const Job& job, const Flow& flow);
  /// A flow drained (driver-level completion callback).
  void on_flow_completed(const Flow& flow);
  /// A whole-fabric outage window opened (called after eviction) / closed.
  /// Plane-targeted outages use check_light() instead — the surviving
  /// planes keep transferring, so there is no quiet window to enforce.
  void on_outage_begin();
  void on_outage_end();
  /// A job completed: per-job conservation, the CCT-lower-bound check for
  /// pure-OCS coflows, plus a global heavy check.
  void on_job_finished(const Job& job);

  /// Arm or disarm invariant 7 (default off — the driver arms it unless
  /// the run injects reconfiguration jitter, whose per-setup draws can go
  /// below the base delay the bound assumes).
  void set_cct_bound_check(bool enabled) { check_cct_bound_ = enabled; }

  // ----- check passes ------------------------------------------------------
  /// O(racks * planes) sweep: container ledger, per-plane port
  /// exclusivity/symmetry, outage quiet-window, fabric self_check.
  /// Called at dispatch boundaries and outage edges.
  void check_light();
  /// check_light plus byte conservation over every tracked flow and the
  /// event-queue consistency scan.
  void check_heavy();
  /// Scheduler cache coherence: ask `sched` to re-derive its incremental
  /// caches from `active_jobs` and compare (JobScheduler::audit_invariants).
  /// A no-op for reference engines, which return an empty report.
  void check_scheduler(const JobScheduler& sched,
                       const std::vector<Job*>& active_jobs);
  /// Offer-queue coherence: the driver passes OfferQueue::audit()'s
  /// self-report (free-set vs cluster free_slots, decline-stamp sanity) so
  /// the audit library stays independent of sim headers. Empty = coherent.
  void check_offer_queue(const std::string& report);
  /// End-of-run: heavy check plus emptiness — no granted containers, no
  /// incomplete tracked flow, no un-drained bits.
  void final_check();

  // ----- test hooks --------------------------------------------------------
  /// Corrupt the injected-bytes ledger by `bits` without moving any real
  /// bytes, so tests can prove a broken ledger is caught (the acceptance
  /// criterion's "intentionally broken byte-ledger" hook).
  void debug_inject_phantom_bits(double bits) { phantom_bits_ += bits; }

  [[nodiscard]] std::int64_t checks_run() const { return checks_run_; }
  [[nodiscard]] std::size_t tracked_flows() const { return flows_.size(); }

 private:
  struct FlowLedger {
    const Flow* flow = nullptr;
    JobId job = JobId::invalid();
    /// Cumulative demand routed into a fabric for this flow, in bits.
    double injected_bits = 0.0;
  };

  [[noreturn]] void fail(const std::string& check,
                         const std::string& detail) const;
  void check_rack_ledger(RackId rack) const;
  void check_ocs_ports() const;
  void check_conservation() const;

  const Simulator& sim_;
  const Network& net_;
  const Cluster& cluster_;
  const Fabric& fabric_;
  const HybridTopology& topo_;

  // Shadow container ledger.
  std::vector<std::int64_t> granted_;
  std::unordered_map<TaskId, RackId> running_tasks_;

  // Shadow byte ledger.
  std::unordered_map<FlowId, FlowLedger> flows_;
  std::unordered_map<JobId, double> job_injected_bits_;
  double injected_bits_ = 0.0;
  double phantom_bits_ = 0.0;
  std::int64_t completed_flow_events_ = 0;

  std::int32_t outage_depth_ = 0;
  std::int64_t checks_run_ = 0;
  bool check_cct_bound_ = false;
  /// Jobs whose coflow was reopened after completing — a killed reduce's
  /// re-placement re-fetches map output after the measured CCT window
  /// closed, so the final matrix holds more work than the window carried
  /// and the lower-bound comparison (invariant 7) is no longer meaningful.
  std::unordered_set<JobId> reopened_after_complete_;
};

}  // namespace cosched
