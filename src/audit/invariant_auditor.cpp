#include "audit/invariant_auditor.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "sched/scheduler.h"

namespace cosched {

namespace {

// Conservation slack per completed-flow event. Completion drops an
// unaccounted residue of at most kResidualBits (1e-3) plus up to one
// nanosecond of drain at the fastest link (100 Gb/s -> 100 bits); 1 KiBit
// per completion bounds both with two orders of margin while staying far
// below any real bookkeeping bug (flows are megabytes and up).
constexpr double kSlackBitsPerCompletion = 1024.0;

// Relative floating-point slack on the whole ledger (double accumulators;
// actual rounding error is ~1e-13 relative even over millions of settles).
constexpr double kRelativeSlack = 1e-9;

}  // namespace

InvariantAuditor::InvariantAuditor(const Simulator& sim, const Network& net,
                                   const Cluster& cluster, const Fabric& fabric,
                                   const HybridTopology& topo)
    : sim_(sim), net_(net), cluster_(cluster), fabric_(fabric), topo_(topo) {
  granted_.assign(static_cast<std::size_t>(topo_.num_racks), 0);
}

void InvariantAuditor::fail(const std::string& check,
                            const std::string& detail) const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "=== INVARIANT AUDIT FAILURE ===\n";
  os << "check: " << check << "\n";
  os << "sim time: " << sim_.now() << "\n";
  os << detail << "\n";
  os << "--- container ledger (granted/free/capacity per rack) ---\n";
  std::int64_t total_granted = 0;
  std::int32_t dumped = 0;
  for (std::int32_t r = 0; r < topo_.num_racks; ++r) {
    const std::int64_t g = granted_[static_cast<std::size_t>(r)];
    total_granted += g;
    const std::int64_t free = cluster_.free_slots(RackId{r});
    const bool mismatch =
        g != cluster_.used_slots(RackId{r}) || g + free != topo_.slots_per_rack();
    if ((g != 0 || mismatch) && dumped < 32) {
      os << "rack " << r << ": " << g << "/" << free << "/"
         << topo_.slots_per_rack() << (mismatch ? "  <-- MISMATCH" : "")
         << "\n";
      ++dumped;
    }
  }
  os << "total granted: " << total_granted
     << ", cluster free: " << cluster_.total_free_slots()
     << ", capacity: " << topo_.total_slots() << "\n";
  os << "--- byte ledger (bits) ---\n";
  double in_flight = 0.0;
  std::size_t incomplete = 0;
  for (const auto& [id, ledger] : flows_) {
    in_flight += ledger.flow->remaining_bits();
    if (!ledger.flow->completed()) ++incomplete;
  }
  os << "injected: " << injected_bits_ << " (phantom: " << phantom_bits_
     << ")\n";
  os << "drained: eps=" << net_.eps().eps_bits()
     << " local=" << net_.eps().local_bits()
     << " ocs=" << net_.ocs_bits_transferred() << "\n";
  os << "in-flight (tracked remainder): " << in_flight << "\n";
  os << "uncredited fabric settle: " << fabric_.uncredited_settled_bits()
     << "\n";
  os << "tracked flows: " << flows_.size() << " (" << incomplete
     << " incomplete, " << completed_flow_events_ << " completion events)\n";
  os << "running tasks: " << running_tasks_.size()
     << ", outage depth: " << outage_depth_ << "\n";
  os << "===";
  throw AuditFailure(os.str());
}

void InvariantAuditor::check_rack_ledger(RackId rack) const {
  const auto r = static_cast<std::size_t>(rack.value());
  const std::int64_t g = granted_[r];
  const std::int64_t used = cluster_.used_slots(rack);
  const std::int64_t free = cluster_.free_slots(rack);
  if (g < 0 || g > topo_.slots_per_rack() || g != used ||
      g + free != topo_.slots_per_rack()) {
    std::ostringstream os;
    os << "rack " << rack << ": audited grants " << g << ", cluster used "
       << used << ", free " << free << ", capacity " << topo_.slots_per_rack();
    fail("container-ledger", os.str());
  }
}

void InvariantAuditor::on_container_grant(const Job& job, const Task& task,
                                          RackId rack,
                                          std::int32_t grant_class) {
  ++granted_[static_cast<std::size_t>(rack.value())];
  const auto [it, inserted] = running_tasks_.emplace(task.id(), rack);
  if (!inserted) {
    std::ostringstream os;
    os << "job " << job.id() << " task " << task.id() << " granted on " << rack
       << " while already holding a container on " << it->second;
    fail("container-ledger", os.str());
  }
  check_rack_ledger(rack);

  const bool is_map = task.kind() == TaskKind::kMap;
  bool ok = true;
  switch (grant_class) {
    case -1:
      break;  // scheduler without OCAS classes
    case 1:
      ok = !is_map && job.shuffle_heavy() && job.has_reduce_plan() &&
           job.reduce_plan_remaining(rack) > 0;
      break;
    case 2:
      ok = is_map && job.shuffle_heavy() && job.r_map_guideline() > 0 &&
           job.in_map_guideline(rack);
      break;
    case 3:
      ok = !is_map && !job.shuffle_heavy();
      break;
    case 4:
      ok = is_map && !job.shuffle_heavy();
      break;
    case 5:
      ok = !is_map && job.shuffle_heavy() && !job.has_reduce_plan();
      break;
    case 6:
      ok = is_map;
      break;
    default:
      ok = false;
      break;
  }
  if (!ok) {
    std::ostringstream os;
    os << "job " << job.id() << " task " << task.id() << " ("
       << (is_map ? "map" : "reduce") << ") granted on " << rack
       << " under OCAS class " << grant_class
       << " whose predicate does not hold (shuffle_heavy="
       << job.shuffle_heavy() << ", has_plan=" << job.has_reduce_plan()
       << ", plan_remaining=" << job.reduce_plan_remaining(rack)
       << ", in_guideline=" << job.in_map_guideline(rack) << ")";
    fail("ocas-grant-contract", os.str());
  }
}

void InvariantAuditor::on_container_release(const Job& job, const Task& task,
                                            RackId rack) {
  auto it = running_tasks_.find(task.id());
  if (it == running_tasks_.end() || it->second != rack) {
    std::ostringstream os;
    os << "job " << job.id() << " task " << task.id() << " released a container"
       << " on " << rack << " it was never granted"
       << (it != running_tasks_.end() ? " (granted on a different rack)" : "");
    fail("container-ledger", os.str());
  }
  running_tasks_.erase(it);
  --granted_[static_cast<std::size_t>(rack.value())];
  check_rack_ledger(rack);
}

void InvariantAuditor::on_reduce_plan(const Job& job) {
  if (!job.has_reduce_plan()) return;
  std::int64_t sum = 0;
  for (const auto& [rack, count] : job.reduce_plan()) {
    if (count <= 0 || rack.value() < 0 || rack.value() >= topo_.num_racks) {
      std::ostringstream os;
      os << "job " << job.id() << " plan entry " << rack << " -> " << count;
      fail("psrt-plan-contract", os.str());
    }
    sum += count;
  }
  if (sum != job.spec().num_reduces) {
    std::ostringstream os;
    os << "job " << job.id() << " reduce plan sums to " << sum << " over "
       << job.reduce_plan().size() << " racks; job has "
       << job.spec().num_reduces << " reduces";
    fail("psrt-plan-contract", os.str());
  }
}

void InvariantAuditor::on_flow_routed(const Job& job, const Flow& flow) {
  if (flow.path() == FlowPath::kPending) {
    std::ostringstream os;
    os << "flow " << flow.id() << " reached a fabric without a path";
    fail("flow-routing", os.str());
  }
  if (outage_depth_ > 0 && flow.path() == FlowPath::kOcs) {
    std::ostringstream os;
    os << "flow " << flow.id() << " routed to the OCS inside an outage window";
    fail("ocs-outage-quiet", os.str());
  }
  if (job.coflow().completed()) {
    // New demand reaching a fabric after the coflow already completed: a
    // killed reduce's re-placement re-fetching map output. The coflow's
    // measured CCT window is closed, so its final matrix now carries more
    // work than the window did — invariant 7 must skip this job.
    reopened_after_complete_.insert(job.id());
  }
  FlowLedger& ledger = flows_[flow.id()];
  ledger.flow = &flow;
  ledger.job = job.id();
  const double target = static_cast<double>(flow.size().in_bytes()) * 8.0;
  const double delta = target - ledger.injected_bits;
  if (delta < 0.0) {
    std::ostringstream os;
    os << "flow " << flow.id() << " size shrank: previously injected "
       << ledger.injected_bits << " bits, now " << target;
    fail("byte-conservation", os.str());
  }
  ledger.injected_bits = target;
  injected_bits_ += delta;
  job_injected_bits_[job.id()] += delta;
}

void InvariantAuditor::on_flow_completed(const Flow& flow) {
  ++completed_flow_events_;
  auto it = flows_.find(flow.id());
  if (it == flows_.end()) {
    std::ostringstream os;
    os << "flow " << flow.id() << " completed without ever being routed";
    fail("flow-routing", os.str());
  }
  if (!flow.completed() || flow.remaining_bits() != 0.0) {
    std::ostringstream os;
    os << "flow " << flow.id() << " reported complete with "
       << flow.remaining_bits() << " bits remaining (completed="
       << flow.completed() << ")";
    fail("byte-conservation", os.str());
  }
  if (outage_depth_ > 0 && flow.path() == FlowPath::kOcs) {
    std::ostringstream os;
    os << "flow " << flow.id()
       << " drained over the OCS inside an outage window";
    fail("ocs-outage-quiet", os.str());
  }
}

void InvariantAuditor::on_outage_begin() {
  ++outage_depth_;
  check_light();
}

void InvariantAuditor::on_outage_end() {
  if (outage_depth_ <= 0) {
    fail("ocs-outage-quiet", "outage ended that never began");
  }
  --outage_depth_;
  check_light();
}

void InvariantAuditor::on_job_finished(const Job& job) {
  double flow_bits = 0.0;
  for (const auto& f : job.coflow().flows()) {
    if (!f->completed() || f->remaining_bits() != 0.0) {
      std::ostringstream os;
      os << "job " << job.id() << " finished with flow " << f->id()
         << " incomplete (" << f->remaining_bits() << " bits remaining)";
      fail("byte-conservation", os.str());
    }
    flow_bits += static_cast<double>(f->size().in_bytes()) * 8.0;
  }
  // Every bit of shuffle demand the job ever grew must have passed through
  // route_flow; the per-job injected ledger is synced there, so the two
  // views must agree exactly (both are sums of the same integral sizes).
  auto it = job_injected_bits_.find(job.id());
  const double injected = it != job_injected_bits_.end() ? it->second : 0.0;
  if (injected != flow_bits) {
    std::ostringstream os;
    os << "job " << job.id() << " coflow totals " << flow_bits
       << " bits but only " << injected << " bits were routed";
    fail("byte-conservation", os.str());
  }
  // Invariant 7: a coflow that rode the circuit fabric end to end cannot
  // beat the fabric's own lower bound over its final traffic matrix. Flows
  // that ever fell back to the EPS (outage eviction, overlap-mode mice)
  // void the premise, so the check requires every flow on FlowPath::kOcs.
  if (check_cct_bound_ && job.has_shuffle() && job.coflow().completed() &&
      reopened_after_complete_.count(job.id()) == 0) {
    bool all_ocs = true;
    for (const auto& f : job.coflow().flows()) {
      // Same-rack flows never enter the cross-rack matrix the bound is
      // computed over; only an EPS detour (mice, evictions) can deliver
      // cross-rack bytes faster than the circuit model allows.
      if (f->path() == FlowPath::kLocal) continue;
      if (f->path() != FlowPath::kOcs) {
        all_ocs = false;
        break;
      }
    }
    if (all_ocs) {
      const Duration bound =
          fabric_.cct_lower_bound(job.coflow().cross_rack_matrix());
      // Tolerance covers sub-nanosecond completion rounding (the same
      // slack the property suite grants).
      if (job.coflow().cct().sec() < bound.sec() - 1e-6) {
        std::ostringstream os;
        os << "job " << job.id() << " coflow finished in "
           << job.coflow().cct() << " but " << fabric_.name()
           << " lower-bounds it at " << bound;
        os << "\n  release=" << job.coflow().release_time()
           << " completion=" << job.coflow().completion_time();
        for (const auto& f : job.coflow().flows()) {
          os << "\n  flow " << f->id() << " " << f->src() << "->" << f->dst()
             << " size=" << f->size() << " path=" << to_string(f->path())
             << " start=" << f->start_time()
             << " done=" << f->completion_time();
        }
        fail("cct-lower-bound", os.str());
      }
    }
  }
  check_heavy();
}

void InvariantAuditor::check_ocs_ports() const {
  const std::int32_t racks = topo_.num_racks;
  std::vector<std::int32_t> in_refs(static_cast<std::size_t>(racks), 0);
  std::int64_t busy_out_total = 0;
  std::int64_t reconfiguring_total = 0;
  for (std::int32_t p = 0; p < fabric_.num_planes(); ++p) {
    const OcsSwitch& ocs = *fabric_.plane(p);
    std::fill(in_refs.begin(), in_refs.end(), 0);
    std::int32_t busy_out = 0;
    std::int32_t busy_in = 0;
    for (std::int32_t r = 0; r < racks; ++r) {
      const RackId rack{r};
      if (ocs.in_port_state(rack) != PortState::kFree) ++busy_in;
      const PortState out = ocs.out_port_state(rack);
      if (out == PortState::kFree) continue;
      ++busy_out;
      const auto peer = ocs.connected_to(rack);
      if (!peer.has_value()) {
        std::ostringstream os;
        os << "plane " << p << " out port " << rack << " busy with no peer";
        fail("ocs-port-exclusivity", os.str());
      }
      if (++in_refs[static_cast<std::size_t>(peer->value())] > 1) {
        std::ostringstream os;
        os << "plane " << p << " in port " << *peer
           << " targeted by more than one circuit";
        fail("ocs-port-exclusivity", os.str());
      }
      if (ocs.in_port_state(*peer) != out) {
        std::ostringstream os;
        os << "plane " << p << " circuit " << rack << " -> " << *peer
           << " has asymmetric port states";
        fail("ocs-port-exclusivity", os.str());
      }
    }
    if (busy_out != busy_in) {
      std::ostringstream os;
      os << "plane " << p << ": " << busy_out << " busy out ports vs "
         << busy_in << " busy in ports";
      fail("ocs-port-exclusivity", os.str());
    }
    if (!fabric_.plane_available(p) &&
        (busy_out != 0 || ocs.reconfiguring_ports() != 0)) {
      std::ostringstream os;
      os << "downed plane " << p << " has circuit activity: " << busy_out
         << " busy ports, " << ocs.reconfiguring_ports() << " reconfiguring";
      fail("ocs-outage-quiet", os.str());
    }
    busy_out_total += busy_out;
    reconfiguring_total += ocs.reconfiguring_ports();
  }
  if (outage_depth_ > 0) {
    if (busy_out_total != 0 || reconfiguring_total != 0 ||
        fabric_.active_transfers() != 0 || fabric_.pending_flows() != 0) {
      std::ostringstream os;
      os << "circuit activity inside an outage window: " << busy_out_total
         << " busy ports, " << reconfiguring_total << " reconfiguring, "
         << fabric_.active_transfers() << " transfers, "
         << fabric_.pending_flows() << " queued";
      fail("ocs-outage-quiet", os.str());
    }
  }
}

void InvariantAuditor::check_conservation() const {
  const double drained = net_.eps().eps_bits() + net_.eps().local_bits() +
                         net_.ocs_bits_transferred();
  double in_flight = 0.0;
  for (const auto& [id, ledger] : flows_) {
    in_flight += ledger.flow->remaining_bits();
  }
  const double actual =
      drained + in_flight + fabric_.uncredited_settled_bits();
  const double expected = injected_bits_ + phantom_bits_;
  const double tolerance =
      kRelativeSlack * std::max(expected, 1.0) +
      kSlackBitsPerCompletion *
          static_cast<double>(completed_flow_events_ + 1);
  if (std::abs(expected - actual) > tolerance) {
    std::ostringstream os;
    os << std::setprecision(17);
    os << "injected " << expected << " bits != drained " << drained
       << " + in-flight " << in_flight << " + uncredited "
       << fabric_.uncredited_settled_bits() << " = " << actual
       << " (delta " << expected - actual << ", tolerance " << tolerance
       << ")";
    fail("byte-conservation", os.str());
  }
}

void InvariantAuditor::check_light() {
  ++checks_run_;
  for (std::int32_t r = 0; r < topo_.num_racks; ++r) {
    check_rack_ledger(RackId{r});
  }
  check_ocs_ports();
  if (const std::string report = fabric_.self_check(); !report.empty()) {
    fail("fabric-self-check", report);
  }
}

void InvariantAuditor::check_heavy() {
  check_light();
  check_conservation();
  if (!sim_.queue_consistent()) {
    fail("event-queue",
         "queue inconsistent: live-entry count diverged from the ledger, or "
         "a live event is scheduled before now");
  }
}

void InvariantAuditor::check_scheduler(const JobScheduler& sched,
                                       const std::vector<Job*>& active_jobs) {
  ++checks_run_;
  const std::string report = sched.audit_invariants(active_jobs);
  if (!report.empty()) fail("sched-state-coherence", report);
}

void InvariantAuditor::check_offer_queue(const std::string& report) {
  ++checks_run_;
  if (!report.empty()) fail("offer-queue-coherence", report);
}

void InvariantAuditor::final_check() {
  check_heavy();
  if (!running_tasks_.empty()) {
    std::ostringstream os;
    os << running_tasks_.size() << " tasks still hold containers at end of run";
    fail("container-ledger", os.str());
  }
  for (const auto& [id, ledger] : flows_) {
    if (!ledger.flow->completed() || ledger.flow->remaining_bits() != 0.0) {
      std::ostringstream os;
      os << "flow " << id << " (job " << ledger.job
         << ") never drained: " << ledger.flow->remaining_bits()
         << " bits remaining";
      fail("byte-conservation", os.str());
    }
  }
  if (fabric_.active_transfers() != 0 || fabric_.pending_flows() != 0 ||
      net_.eps().active_flows() != 0) {
    std::ostringstream os;
    os << "fabrics not empty at end of run: " << fabric_.active_transfers()
       << " circuit transfers, " << fabric_.pending_flows() << " queued, "
       << net_.eps().active_flows() << " EPS flows";
    fail("byte-conservation", os.str());
  }
}

}  // namespace cosched
