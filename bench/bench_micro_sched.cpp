// Microbenchmarks for the scheduler decision engines: end-to-end dispatch
// cost of whole runs under the incremental vs reference engines, one SBS
// exploration pass under both explore implementations, and BestRackHeap
// churn. The paired *Reference benchmarks run in the same binary, so their
// ratio is immune to machine-speed differences (the same trick as
// bench_micro_net's EPS replan pair); tools/bench_engine.py extracts it
// into BENCH_engine.json.
//
// Baseline generation: COSCHED_SCHED_BENCH_FORCE_REFERENCE=1 makes the
// incrementally-named run benchmarks execute the reference engine instead,
// which is how results/bench_sched_before.json was produced — an honest
// "before" with matching benchmark names, from the same binary.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "sched/best_rack_heap.h"
#include "sched/coscheduler.h"
#include "sim/experiment.h"

namespace cosched {
namespace {

SchedEngine engine_or_forced(SchedEngine engine) {
  const char* force = std::getenv("COSCHED_SCHED_BENCH_FORCE_REFERENCE");
  if (force != nullptr && *force != '\0' && *force != '0') {
    return SchedEngine::kReference;
  }
  return engine;
}

ExperimentConfig dispatch_config(std::int32_t jobs, SchedEngine engine) {
  ExperimentConfig cfg;
  cfg.sim.topo = HybridTopology{};  // paper defaults: 60 racks
  cfg.workload.num_jobs = jobs;
  cfg.workload.num_users = 20;
  cfg.workload.arrival_window = Duration::minutes(90.0 * jobs / 1000.0);
  cfg.repetitions = 1;
  cfg.base_seed = 42;
  cfg.sim.audit = false;
  cfg.sim.sched_engine = engine;
  return cfg;
}

// One full coscheduler run per iteration: dominated by dispatch at this
// load (ocas.grant + sbs.explore were ~90% of wall at 10k jobs), so the
// end-to-end time is an honest proxy for scheduler-engine cost.
void BM_SchedDispatchRun(benchmark::State& state) {
  const ExperimentConfig cfg =
      dispatch_config(static_cast<std::int32_t>(state.range(0)),
                      engine_or_forced(SchedEngine::kIncremental));
  const SchedulerFactory factory = make_scheduler_factory("coscheduler");
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(cfg, factory, 0).events_executed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedDispatchRun)
    ->Arg(200)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_SchedDispatchRunReference(benchmark::State& state) {
  const ExperimentConfig cfg =
      dispatch_config(static_cast<std::int32_t>(state.range(0)),
                      SchedEngine::kReference);
  const SchedulerFactory factory = make_scheduler_factory("coscheduler");
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(cfg, factory, 0).events_executed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedDispatchRunReference)
    ->Arg(200)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

// ---- SBS exploration: one pass over every PSRT candidate. ---------------

/// Deterministic oracle with the driver's real per-query cost profile:
/// SimulationDriver::estimate_availability walks every running task on the
/// rack, estimates its remaining time, and nth_elements the result — the
/// expensive part the incremental engine's memoization avoids repeating.
/// A busy paper-scale rack runs ~200 tasks; emulate that work per call.
class DriverCostAvailability : public AvailabilityOracle {
 public:
  explicit DriverCostAvailability(std::int32_t num_racks)
      : num_racks_(num_racks) {}

  Duration estimate_availability(RackId rack, std::int64_t count) override {
    constexpr std::int64_t kRunning = 200;  // paper: 200 containers/rack
    remaining_.clear();
    for (std::int64_t t = 0; t < kRunning; ++t) {
      remaining_.push_back(static_cast<double>(
          (rack.value() * 131 + t * 37) % 1009));
    }
    const std::int64_t need = std::min(count, kRunning);
    std::nth_element(remaining_.begin(), remaining_.begin() + (need - 1),
                     remaining_.end());
    return Duration::seconds(
        remaining_[static_cast<std::size_t>(need - 1)] /
        static_cast<double>(num_racks_));
  }

 private:
  std::int32_t num_racks_;
  std::vector<double> remaining_;
};

std::vector<PossibleSchedule> wide_candidate_set() {
  // A large shuffle on 4 map racks: many R_red candidates, overlapping
  // counts — the shape that makes per-candidate full scans expensive.
  const auto te = DataSize::gigabytes(1.125);
  const std::vector<DataSize> sm{te * 20.0, te * 15.0, te * 10.0, te * 5.0};
  return possible_reduce_schedules(sm, 40, te, Bandwidth::gbps(100),
                                   Duration::milliseconds(10), 60);
}

void BM_SbsExplorePass(benchmark::State& state) {
  const auto schedules = wide_candidate_set();
  DriverCostAvailability oracle(60);
  const bool reference =
      engine_or_forced(SchedEngine::kIncremental) == SchedEngine::kReference;
  for (auto _ : state) {
    auto explored =
        reference
            ? explore_schedules(schedules, 60, oracle)
            : explore_schedules_incremental(schedules, 60, oracle, false);
    benchmark::DoNotOptimize(explored.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(schedules.size()));
}
BENCHMARK(BM_SbsExplorePass);

void BM_SbsExplorePassReference(benchmark::State& state) {
  const auto schedules = wide_candidate_set();
  DriverCostAvailability oracle(60);
  for (auto _ : state) {
    auto explored = explore_schedules(schedules, 60, oracle);
    benchmark::DoNotOptimize(explored.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(schedules.size()));
}
BENCHMARK(BM_SbsExplorePassReference);

// ---- BestRackHeap: update + pop churn at paper scale. -------------------

void BM_BestRackHeapChurn(benchmark::State& state) {
  const std::int32_t racks = static_cast<std::int32_t>(state.range(0));
  BestRackHeap heap(racks);
  std::int64_t i = 0;
  for (auto _ : state) {
    heap.update(RackId{i % racks}, static_cast<double>((i * 31) % 997));
    if (i % 4 == 3) benchmark::DoNotOptimize(heap.pop_best().value());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BestRackHeapChurn)->Arg(60)->Arg(256);

}  // namespace
}  // namespace cosched

BENCHMARK_MAIN();
