// Figure 3 reproduction.
//
// 3(a): makespan, average JCT, and average CCT of Fair, Corral, and
//       Co-scheduler, normalized to Fair.
// 3(b): fraction of cross-rack shuffle traffic carried by the OCS vs EPS.
//
// Paper's reported shape: Co-scheduler reduces makespan by 51.2% / 37.2%,
// average JCT by 54.6% / 33.8%, and average CCT by 73.6% / 54.8% vs Fair /
// Corral; OCS carries 92.2% (Co-scheduler), 33.0% (Corral), 2.2% (Fair) of
// the traffic.
#include "bench_util.h"

using namespace cosched;
using namespace cosched::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const ExperimentConfig cfg = paper_config(args);

  const std::vector<std::string> names{"fair", "corral", "coscheduler"};
  const auto results = compare_schedulers(cfg, names);
  const AggregateMetrics& fair = results[0];

  print_header("Figure 3(a): normalized to Fair (lower is better)");
  print_cols({"makespan", "avg JCT", "avg CCT"});
  for (const auto& r : results) {
    print_row(r.scheduler,
              {r.makespan_sec.mean() / fair.makespan_sec.mean(),
               r.avg_jct_sec.mean() / fair.avg_jct_sec.mean(),
               r.avg_cct_sec.mean() / fair.avg_cct_sec.mean()});
  }

  print_header("Figure 3(a): improvement over Fair (Equation 10)");
  print_cols({"makespan", "avg JCT", "avg CCT"});
  for (const auto& r : results) {
    print_row(r.scheduler,
              {improvement_over(fair.makespan_sec.mean(),
                                r.makespan_sec.mean()),
               improvement_over(fair.avg_jct_sec.mean(),
                                r.avg_jct_sec.mean()),
               improvement_over(fair.avg_cct_sec.mean(),
                                r.avg_cct_sec.mean())});
  }

  print_header("Figure 3(b): fraction of cross-rack traffic via OCS");
  print_cols({"ocs", "eps"});
  for (const auto& r : results) {
    print_row(r.scheduler,
              {r.ocs_fraction.mean(), 1.0 - r.ocs_fraction.mean()});
  }

  std::printf("\n(paper: Co-scheduler vs Fair: makespan -51.2%%, JCT -54.6%%,"
              " CCT -73.6%%; OCS share 92.2%% / 33.0%% / 2.2%%)\n");
  return 0;
}
