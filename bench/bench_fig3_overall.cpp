// Figure 3 reproduction.
//
// 3(a): makespan, average JCT, and average CCT of Fair, Corral, and
//       Co-scheduler, normalized to Fair.
// 3(b): fraction of cross-rack shuffle traffic carried by the OCS vs EPS.
//
// Paper's reported shape: Co-scheduler reduces makespan by 51.2% / 37.2%,
// average JCT by 54.6% / 33.8%, and average CCT by 73.6% / 54.8% vs Fair /
// Corral; OCS carries 92.2% (Co-scheduler), 33.0% (Corral), 2.2% (Fair) of
// the traffic.
#include <chrono>
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "metrics/report.h"
#include "metrics/run_report.h"
#include "obs/observability.h"
#include "obs/perf_monitor.h"
#include "obs/profile.h"

using namespace cosched;
using namespace cosched::bench;

namespace {

/// Re-run repetition 0 of the coscheduler with the observability bundle
/// attached and export the requested artifacts. A separate pass keeps the
/// timed comparison runs free of recording overhead.
void run_observed_rep(const ExperimentConfig& cfg, const BenchArgs& args) {
  Observability obs;
  ExperimentConfig observed = cfg;
  observed.sim.obs = &obs;
  // A RunReport wants the per-phase latency histograms, so monitor the
  // observed repetition (monitoring never perturbs results; the driver's
  // thread-local capture fills obs.perf / obs.profile for this run only).
  const bool perf_was_enabled = PerfMonitor::enabled();
  if (!args.report_out.empty()) PerfMonitor::set_enabled(true);

  const auto wall_start = std::chrono::steady_clock::now();
  const RunMetrics run =
      run_once(observed, make_scheduler_factory("coscheduler"), 0);
  const double wall_sec = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
  PerfMonitor::set_enabled(perf_was_enabled);

  if (!args.trace_out.empty()) {
    std::ofstream os(args.trace_out);
    obs.trace.write_chrome_trace(os, &obs.counters);
    std::printf("wrote Chrome trace to %s\n", args.trace_out.c_str());
  }
  if (!args.counters_out.empty()) {
    std::ofstream os(args.counters_out);
    obs.counters.write_csv(os);
    std::printf("wrote counter CSV to %s\n", args.counters_out.c_str());
  }
  if (!args.report_out.empty()) {
    RunReportMeta meta;
    meta.num_jobs = args.jobs;
    meta.num_racks = cfg.sim.topo.num_racks;
    meta.wall_time_sec = wall_sec;
    meta.rss_high_water_bytes = rss_high_water_bytes();
    std::ofstream os(args.report_out);
    write_run_report_json(os, run, meta, &obs.perf, &obs.profile,
                          &obs.counters);
    std::printf("wrote RunReport to %s\n", args.report_out.c_str());
  }
  print_obs_summary(std::cout, obs);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const ExperimentConfig cfg = paper_config(args);

  if (args.profile) {
    Profiler::set_enabled(true);
    Profiler::instance().reset();
  }

  const std::vector<std::string> names{"fair", "corral", "coscheduler"};
  const auto results = compare_schedulers(cfg, names, args.parallel());
  const AggregateMetrics& fair = results[0];

  print_header("Figure 3(a): normalized to Fair (lower is better)");
  print_cols({"makespan", "avg JCT", "avg CCT"});
  for (const auto& r : results) {
    print_row(r.scheduler,
              {r.makespan_sec.mean() / fair.makespan_sec.mean(),
               r.avg_jct_sec.mean() / fair.avg_jct_sec.mean(),
               r.avg_cct_sec.mean() / fair.avg_cct_sec.mean()});
  }

  print_header("Figure 3(a): improvement over Fair (Equation 10)");
  print_cols({"makespan", "avg JCT", "avg CCT"});
  for (const auto& r : results) {
    print_row(r.scheduler,
              {improvement_over(fair.makespan_sec.mean(),
                                r.makespan_sec.mean()),
               improvement_over(fair.avg_jct_sec.mean(),
                                r.avg_jct_sec.mean()),
               improvement_over(fair.avg_cct_sec.mean(),
                                r.avg_cct_sec.mean())});
  }

  print_header("Figure 3(b): fraction of cross-rack traffic via OCS");
  print_cols({"ocs", "eps"});
  for (const auto& r : results) {
    print_row(r.scheduler,
              {r.ocs_fraction.mean(), 1.0 - r.ocs_fraction.mean()});
  }

  std::printf("\n(paper: Co-scheduler vs Fair: makespan -51.2%%, JCT -54.6%%,"
              " CCT -73.6%%; OCS share 92.2%% / 33.0%% / 2.2%%)\n");

  if (args.observing()) run_observed_rep(cfg, args);
  // print_obs_summary already includes the profile table when observing.
  if (args.profile && !args.observing()) {
    Profiler::instance().write_summary(std::cout);
  }
  if (!args.profile_out.empty()) {
    std::ofstream os(args.profile_out);
    Profiler::instance().write_summary(os);
    std::printf("wrote profile to %s\n", args.profile_out.c_str());
  }
  return 0;
}
