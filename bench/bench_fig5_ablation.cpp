// Figure 5 reproduction: contribution of Co-scheduler's mechanisms.
//
//   OCAS                      — grant policy only (no guideline, no plan);
//                               the paper notes this degenerates to Fair.
//   MTS + OCAS                — input/map guideline but unplanned reduces.
//   MTS + PSRT + SBS + OCAS   — full Co-scheduler.
//
// Paper's reported shape: MTS+OCAS improves over OCAS by 12% makespan /
// 14% JCT / 19% CCT; the full system is much better than both.
#include "bench_util.h"

using namespace cosched;
using namespace cosched::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const ExperimentConfig cfg = paper_config(args);

  const auto results =
      compare_schedulers(cfg, {"ocas", "mts+ocas", "coscheduler"},
                         args.parallel());
  const AggregateMetrics& ocas = results[0];

  print_header("Figure 5: normalized to OCAS (lower is better)");
  print_cols({"makespan", "avg JCT", "avg CCT"});
  for (const auto& r : results) {
    print_row(r.scheduler,
              {r.makespan_sec.mean() / ocas.makespan_sec.mean(),
               r.avg_jct_sec.mean() / ocas.avg_jct_sec.mean(),
               r.avg_cct_sec.mean() / ocas.avg_cct_sec.mean()});
  }

  print_header("Figure 5: improvement over OCAS (Equation 10)");
  print_cols({"makespan", "avg JCT", "avg CCT"});
  for (const auto& r : results) {
    print_row(r.scheduler,
              {improvement_over(ocas.makespan_sec.mean(),
                                r.makespan_sec.mean()),
               improvement_over(ocas.avg_jct_sec.mean(),
                                r.avg_jct_sec.mean()),
               improvement_over(ocas.avg_cct_sec.mean(),
                                r.avg_cct_sec.mean())});
  }

  std::printf("\n(paper: MTS+OCAS -12%%/-14%%/-19%% vs OCAS; full "
              "Co-scheduler far ahead of both)\n");
  return 0;
}
