// Microbenchmarks for the driver dispatch engines (DESIGN.md §11):
//
//   * Synthetic wave pairs — one dispatch wave's rack iteration over a
//     sparse free set, as the OfferQueue bitset walk vs the reference
//     all-racks scan, at 60 / 256 / 1024 racks. Pure index cost, no
//     simulation.
//   * Full-run pairs — `driver.dispatch` *self time* (the profiler
//     section, not whole-run wall) of a 10k-job coscheduler run under the
//     offer-queue vs scan engines, at the paper's 60 racks and at 256.
//     These use manual timing so the reported number is exactly the
//     dispatch cost the tentpole optimizes, and run a fixed single
//     iteration (a full run each) to keep the suite's cost bounded.
//
// The paired *Scan benchmarks run in the same binary, so their ratio is
// immune to machine-speed differences; tools/bench_engine.py extracts it
// into BENCH_engine.json.
//
// Baseline generation: COSCHED_DISPATCH_BENCH_FORCE_SCAN=1 makes the
// offer-queue-named benchmarks execute the scan engine instead, which is
// how results/bench_dispatch_before.json was produced — an honest
// "before" with matching benchmark names, from the same binary.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "obs/profile.h"
#include "sim/experiment.h"
#include "sim/offer_queue.h"

namespace cosched {
namespace {

DispatchEngine engine_or_forced(DispatchEngine engine) {
  const char* force = std::getenv("COSCHED_DISPATCH_BENCH_FORCE_SCAN");
  if (force != nullptr && *force != '\0' && *force != '0') {
    return DispatchEngine::kScan;
  }
  return engine;
}

// ---- Synthetic wave pairs: one pass over a sparse free set. -------------

/// The steady-state shape on a loaded cluster: nearly every rack is full,
/// a handful have a free container. One in 32 racks free (>= 2 so the
/// walk always wraps across words at 60+ racks).
constexpr std::int32_t kFreeStride = 32;

void BM_OfferQueueWave(benchmark::State& state) {
  const auto racks = static_cast<std::int32_t>(state.range(0));
  OfferQueue offers(racks);
  for (std::int32_t r = 0; r < racks; r += kFreeStride) {
    offers.mark_free(RackId{r});
  }
  std::int32_t start = 0;
  std::int64_t visited = 0;
  for (auto _ : state) {
    offers.for_each_free_from(start, [&](RackId rack) {
      benchmark::DoNotOptimize(rack.value());
      ++visited;
      return true;
    });
    start = (start + 1) % racks;  // the driver's rotating fairness start
  }
  state.SetItemsProcessed(visited);
}
BENCHMARK(BM_OfferQueueWave)->Arg(60)->Arg(256)->Arg(1024);

void BM_FullScanWave(benchmark::State& state) {
  // The reference scan's per-wave work: touch every rack, test for free
  // slots, visit the free ones. The free-slot test is a vector load, like
  // Cluster::free_slots.
  const auto racks = static_cast<std::int32_t>(state.range(0));
  std::vector<std::int64_t> free_slots(static_cast<std::size_t>(racks), 0);
  for (std::int32_t r = 0; r < racks; r += kFreeStride) {
    free_slots[static_cast<std::size_t>(r)] = 1;
  }
  std::int32_t start = 0;
  std::int64_t visited = 0;
  for (auto _ : state) {
    for (std::int32_t k = 0; k < racks; ++k) {
      const std::int32_t rack = (start + k) % racks;
      if (free_slots[static_cast<std::size_t>(rack)] == 0) continue;
      benchmark::DoNotOptimize(rack);
      ++visited;
    }
    start = (start + 1) % racks;
  }
  state.SetItemsProcessed(visited);
}
BENCHMARK(BM_FullScanWave)->Arg(60)->Arg(256)->Arg(1024);

// ---- Full-run pairs: driver.dispatch self time at 10k jobs. -------------

ExperimentConfig dispatch_config(std::int32_t jobs, std::int32_t racks,
                                 DispatchEngine engine) {
  ExperimentConfig cfg;
  cfg.sim.topo = HybridTopology{};  // paper defaults: 60 racks
  cfg.sim.topo.num_racks = racks;
  cfg.workload.num_jobs = jobs;
  cfg.workload.num_users = 20;
  cfg.workload.arrival_window = Duration::minutes(90.0 * jobs / 1000.0);
  cfg.repetitions = 1;
  cfg.base_seed = 42;
  cfg.sim.audit = false;
  cfg.sim.dispatch_engine = engine;
  return cfg;
}

/// One full run per iteration; the reported (manual) time is the
/// `driver.dispatch` profiler section's total — the self time of the wave
/// loop itself, scheduler pick_task cost included, event execution and
/// flow bookkeeping excluded.
void run_and_report_dispatch_time(benchmark::State& state,
                                  DispatchEngine engine) {
  const ExperimentConfig cfg =
      dispatch_config(static_cast<std::int32_t>(state.range(0)),
                      static_cast<std::int32_t>(state.range(1)), engine);
  const SchedulerFactory factory = make_scheduler_factory("coscheduler");
  for (auto _ : state) {
    Profiler::set_enabled(true);
    Profiler::instance().reset();
    benchmark::DoNotOptimize(run_once(cfg, factory, 0).events_executed);
    double dispatch_ns = 0.0;
    for (const auto& [name, section] : Profiler::instance().snapshot()) {
      if (std::strcmp(name.c_str(), "driver.dispatch") == 0) {
        dispatch_ns = static_cast<double>(section.total_ns);
      }
    }
    Profiler::set_enabled(false);
    state.SetIterationTime(dispatch_ns / 1e9);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_DriverDispatchSelfTime(benchmark::State& state) {
  run_and_report_dispatch_time(
      state, engine_or_forced(DispatchEngine::kOfferQueue));
}
BENCHMARK(BM_DriverDispatchSelfTime)
    ->Args({10000, 60})
    ->Args({10000, 256})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_DriverDispatchSelfTimeScan(benchmark::State& state) {
  run_and_report_dispatch_time(state, DispatchEngine::kScan);
}
BENCHMARK(BM_DriverDispatchSelfTimeScan)
    ->Args({10000, 60})
    ->Args({10000, 256})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cosched

BENCHMARK_MAIN();
