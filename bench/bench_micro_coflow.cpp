// Microbenchmarks for the coflow algorithms: CCT lower bound, maximum
// bipartite matching, and the Birkhoff–von-Neumann clearance decomposition.
#include <benchmark/benchmark.h>

#include "coflow/bvn_clearance.h"
#include "coflow/cct_bound.h"
#include "coflow/matching.h"
#include "common/rng.h"

namespace cosched {
namespace {

TrafficMatrix random_matrix(std::int64_t racks, double density,
                            std::uint64_t seed) {
  Rng rng(seed);
  TrafficMatrix m;
  for (std::int64_t i = 0; i < racks; ++i) {
    for (std::int64_t j = 0; j < racks; ++j) {
      if (i != j && rng.bernoulli(density)) {
        m.add(RackId{i}, RackId{j},
              DataSize::megabytes(
                  static_cast<double>(rng.uniform_int(100, 5000))));
      }
    }
  }
  return m;
}

void BM_CctLowerBound(benchmark::State& state) {
  const TrafficMatrix m = random_matrix(state.range(0), 0.3, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cct_lower_bound(m, Bandwidth::gbps(100),
                                             Duration::milliseconds(10)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CctLowerBound)->Range(4, 64)->Complexity();

void BM_HopcroftKarp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  BipartiteGraph g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.bernoulli(0.3)) g.add_edge(i, j);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(maximum_bipartite_matching(g).size);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HopcroftKarp)->Range(8, 256)->Complexity();

void BM_BvnClearance(benchmark::State& state) {
  const TrafficMatrix m = random_matrix(state.range(0), 0.4, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bvn_clearance(m, Bandwidth::gbps(100)).slots.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BvnClearance)->Range(4, 48)->Complexity();

}  // namespace
}  // namespace cosched

BENCHMARK_MAIN();
