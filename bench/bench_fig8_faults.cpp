// Figure 8 (robustness extension, not in the paper): how gracefully each
// scheduler degrades under injected faults.
//
// Two sweeps, both normalized to each scheduler's own fault-free run so the
// tables read as "x% slower than itself under faults" — the fair question
// for robustness (Co-scheduler already wins the absolute comparison in
// Figure 3):
//
//   (a/b) task faults: straggler probability p with slow=2.0, plus
//         container kills at p/4 (kills are rarer than stragglers);
//   (c/d) an OCS outage of increasing duration starting 20% into the
//         arrival window — shuffles mid-flight are evicted onto the EPS
//         and new elephants stay there until the OCS recovers.
//
// A --faults= plan given on the command line is the *base* plan: the sweep
// overrides only the clauses it varies (straggler/container-kill in a/b,
// ocs-outage in c/d), so e.g. reconfig-jitter can be layered underneath.
#include "bench_util.h"

using namespace cosched;
using namespace cosched::bench;

namespace {

AggregateMetrics run_with(const BenchArgs& args, const FaultPlan& plan,
                          const std::string& sched) {
  ExperimentConfig cfg = paper_config(args);
  cfg.sim.faults = plan;
  return run_experiment(cfg, make_scheduler_factory(sched), args.parallel());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::vector<std::string> scheds{"coscheduler", "fair", "corral"};
  const std::vector<double> rates{0.0, 0.05, 0.10, 0.20};

  // ---- sweep A: task faults (stragglers + container kills) ----------------
  std::vector<std::vector<AggregateMetrics>> task_runs(scheds.size());
  for (std::size_t s = 0; s < scheds.size(); ++s) {
    for (double rate : rates) {
      FaultPlan plan = args.faults;
      plan.straggler.reset();
      plan.container_kill.reset();
      if (rate > 0.0) {
        plan.straggler = StragglerFault{rate, 2.0};
        plan.container_kill = ContainerKillFault{rate / 4.0};
      }
      task_runs[s].push_back(run_with(args, plan, scheds[s]));
    }
  }

  std::vector<std::string> rate_cols;
  for (double r : rates) {
    rate_cols.push_back("p=" + std::to_string(static_cast<int>(r * 100)) +
                        "%");
  }

  print_header(
      "Figure 8(a): makespan vs task-fault rate (each normalized to its own "
      "fault-free run)");
  print_cols(rate_cols);
  for (std::size_t s = 0; s < scheds.size(); ++s) {
    std::vector<double> row;
    for (const AggregateMetrics& m : task_runs[s]) {
      row.push_back(m.makespan_sec.mean() /
                    task_runs[s][0].makespan_sec.mean());
    }
    print_row(scheds[s], row);
  }

  print_header("Figure 8(b): average CCT vs task-fault rate (normalized)");
  print_cols(rate_cols);
  for (std::size_t s = 0; s < scheds.size(); ++s) {
    std::vector<double> row;
    for (const AggregateMetrics& m : task_runs[s]) {
      row.push_back(m.avg_cct_sec.mean() / task_runs[s][0].avg_cct_sec.mean());
    }
    print_row(scheds[s], row);
  }

  print_header("Fault accounting (mean per repetition, coscheduler)");
  print_cols(rate_cols);
  {
    std::vector<double> stragglers, killed;
    for (const AggregateMetrics& m : task_runs[0]) {
      stragglers.push_back(m.stragglers.mean());
      killed.push_back(m.tasks_killed.mean());
    }
    print_row("stragglers", stragglers);
    print_row("tasks killed", killed);
  }

  // ---- sweep B: OCS outage of increasing duration -------------------------
  // Placed 20% into the arrival window and sized as a fraction of it, so
  // the sweep stays meaningful for any --jobs.
  ExperimentConfig base_cfg = paper_config(args);
  const double window_sec = base_cfg.workload.arrival_window.sec();
  const std::vector<double> outage_fracs{0.05, 0.10, 0.20};

  std::vector<std::string> outage_cols{"none"};
  for (double f : outage_fracs) {
    outage_cols.push_back(std::to_string(static_cast<int>(f * 100)) +
                          "%win");
  }

  std::vector<std::vector<AggregateMetrics>> outage_runs(scheds.size());
  for (std::size_t s = 0; s < scheds.size(); ++s) {
    outage_runs[s].push_back(task_runs[s][0]);  // fault-free baseline
    for (double frac : outage_fracs) {
      FaultPlan plan = args.faults;
      plan.straggler.reset();
      plan.container_kill.reset();
      plan.ocs_outages.clear();
      plan.ocs_outages.push_back(
          OcsOutageFault{SimTime::seconds(0.2 * window_sec),
                         Duration::seconds(frac * window_sec)});
      outage_runs[s].push_back(run_with(args, plan, scheds[s]));
    }
  }

  print_header(
      "Figure 8(c): makespan vs OCS outage duration (fraction of the "
      "arrival window; normalized to own fault-free run)");
  print_cols(outage_cols);
  for (std::size_t s = 0; s < scheds.size(); ++s) {
    std::vector<double> row;
    for (const AggregateMetrics& m : outage_runs[s]) {
      row.push_back(m.makespan_sec.mean() /
                    outage_runs[s][0].makespan_sec.mean());
    }
    print_row(scheds[s], row);
  }

  print_header("Figure 8(d): average CCT vs OCS outage duration (normalized)");
  print_cols(outage_cols);
  for (std::size_t s = 0; s < scheds.size(); ++s) {
    std::vector<double> row;
    for (const AggregateMetrics& m : outage_runs[s]) {
      row.push_back(m.avg_cct_sec.mean() /
                    outage_runs[s][0].avg_cct_sec.mean());
    }
    print_row(scheds[s], row);
  }

  std::printf(
      "\n(expected: Co-scheduler's relative degradation is no worse than "
      "Fair/Corral — re-granted containers flow through OCAS and evicted "
      "shuffles finish on the EPS without losing bytes)\n");
  return 0;
}
