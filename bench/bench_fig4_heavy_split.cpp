// Figure 4 reproduction: performance improvements of Co-scheduler over
// Fair (4a) and Corral (4b), split into shuffle-heavy and non-shuffle-heavy
// jobs (average JCT and average CCT, Equation 10).
//
// Paper's reported shape: both job classes improve; shuffle-heavy jobs
// improve substantially more (they are the ones the OCS accelerates; the
// light jobs gain because containers free earlier).
#include "bench_util.h"

using namespace cosched;
using namespace cosched::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const ExperimentConfig cfg = paper_config(args);

  const auto results =
      compare_schedulers(cfg, {"fair", "corral", "coscheduler"},
                         args.parallel());
  const AggregateMetrics& fair = results[0];
  const AggregateMetrics& corral = results[1];
  const AggregateMetrics& cosched = results[2];

  auto panel = [&](const char* title, const AggregateMetrics& base) {
    print_header(title);
    print_cols({"JCT", "CCT"});
    print_row("shuffle-heavy",
              {improvement_over(base.avg_jct_heavy_sec.mean(),
                                cosched.avg_jct_heavy_sec.mean()),
               improvement_over(base.avg_cct_heavy_sec.mean(),
                                cosched.avg_cct_heavy_sec.mean())});
    print_row("non-shuffle-heavy",
              {improvement_over(base.avg_jct_light_sec.mean(),
                                cosched.avg_jct_light_sec.mean()),
               improvement_over(base.avg_cct_light_sec.mean(),
                                cosched.avg_cct_light_sec.mean())});
  };

  panel("Figure 4(a): Co-scheduler improvement over Fair", fair);
  panel("Figure 4(b): Co-scheduler improvement over Corral", corral);

  std::printf("\n(paper: both classes improve; shuffle-heavy improves "
              "more)\n");
  return 0;
}
