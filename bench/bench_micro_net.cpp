// Microbenchmarks for the network substrate: EPS max-min recomputation
// cost as a function of the active-flow count, and OCS circuit churn.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/eps_fabric.h"
#include "net/ocs_switch.h"

namespace cosched {
namespace {

HybridTopology topo60() {
  HybridTopology t;
  return t;  // paper defaults: 60 racks
}

void BM_EpsProgressiveFilling(benchmark::State& state) {
  const auto num_flows = static_cast<std::size_t>(state.range(0));
  Simulator sim;
  EpsFabric eps(sim, topo60());
  Rng rng(1);
  IdAllocator<FlowId> ids;
  std::vector<std::unique_ptr<Flow>> flows;
  for (std::size_t i = 0; i < num_flows; ++i) {
    const auto src = rng.uniform_int(0, 59);
    auto dst = rng.uniform_int(0, 59);
    if (dst == src) dst = (dst + 1) % 60;
    flows.push_back(std::make_unique<Flow>(ids.next(), CoflowId{0}, JobId{0},
                                           RackId{src}, RackId{dst},
                                           DataSize::gigabytes(100)));
    flows.back()->set_path(FlowPath::kEps);
    eps.start_flow(*flows.back(), nullptr);
  }
  sim.run_until(SimTime::zero());  // initial replan
  for (auto _ : state) {
    // Force a fresh settle + recompute by nudging demand.
    flows[0]->add_demand(DataSize::bytes(1));
    eps.demand_added(*flows[0]);
    sim.run_until(sim.now());  // process the coalesced replan event
    benchmark::DoNotOptimize(eps.current_rates().size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EpsProgressiveFilling)->Range(8, 8192)->Complexity();

void BM_OcsCircuitChurn(benchmark::State& state) {
  Simulator sim;
  OcsSwitch ocs(sim, topo60());
  std::int64_t i = 0;
  for (auto _ : state) {
    const RackId src{i % 60};
    const RackId dst{(i + 7) % 60};
    ocs.setup_circuit(src, dst, nullptr);
    sim.run();  // completes the reconfiguration
    ocs.teardown_circuit(src, dst);
    ++i;
  }
}
BENCHMARK(BM_OcsCircuitChurn);

void BM_EpsSingleFlowLifecycle(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    EpsFabric eps(sim, topo60());
    IdAllocator<FlowId> ids;
    Flow f(ids.next(), CoflowId{0}, JobId{0}, RackId{0}, RackId{1},
           DataSize::gigabytes(1));
    f.set_path(FlowPath::kEps);
    eps.start_flow(f, nullptr);
    sim.run();
    benchmark::DoNotOptimize(f.completed());
  }
}
BENCHMARK(BM_EpsSingleFlowLifecycle);

}  // namespace
}  // namespace cosched

BENCHMARK_MAIN();
