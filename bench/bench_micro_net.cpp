// Microbenchmarks for the network substrate: EPS max-min recomputation
// cost as a function of the active-flow count, and OCS circuit churn.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/eps_fabric.h"
#include "net/ocs_switch.h"

namespace cosched {
namespace {

HybridTopology topo60() {
  HybridTopology t;
  return t;  // paper defaults: 60 racks
}

// Shared setup: `num_flows` concurrent EPS flows spread over the 60-rack
// paper topology, large enough that none of them drains during the bench.
struct ChurnFixture {
  Simulator sim;
  EpsFabric eps;
  Rng rng{1};
  IdAllocator<FlowId> ids;
  std::vector<std::unique_ptr<Flow>> flows;

  explicit ChurnFixture(
      std::size_t num_flows,
      EpsFabric::RateEngine engine = EpsFabric::RateEngine::kGrouped)
      : eps(sim, topo60()) {
    eps.set_rate_engine(engine);
    for (std::size_t i = 0; i < num_flows; ++i) {
      const auto src = rng.uniform_int(0, 59);
      auto dst = rng.uniform_int(0, 59);
      if (dst == src) dst = (dst + 1) % 60;
      flows.push_back(std::make_unique<Flow>(ids.next(), CoflowId{0}, JobId{0},
                                             RackId{src}, RackId{dst},
                                             DataSize::gigabytes(100)));
      flows.back()->set_path(FlowPath::kEps);
      eps.start_flow(*flows.back(), nullptr);
    }
    sim.run_until(sim.now());  // initial replan
  }

  /// Nudge one flow's demand and advance past the coalescing window so the
  /// deferred recompute_and_replan actually fires (one full replan per call).
  void one_replan(std::size_t idx) {
    flows[idx]->add_demand(DataSize::bytes(1));
    eps.demand_added(*flows[idx]);
    sim.run_until(sim.now() + Duration::milliseconds(100));
  }
};

void BM_EpsProgressiveFilling(benchmark::State& state) {
  ChurnFixture fx(static_cast<std::size_t>(state.range(0)));
  const std::int64_t before = fx.eps.replans();
  for (auto _ : state) {
    fx.one_replan(0);
    benchmark::DoNotOptimize(fx.eps.active_flows());
  }
  COSCHED_CHECK(fx.eps.replans() - before ==
                static_cast<std::int64_t>(state.iterations()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EpsProgressiveFilling)->Range(8, 8192)->Complexity();

// The acceptance scenario: >= 5k concurrent flows, 60 racks, every
// iteration is exactly one settle-all + progressive-filling + replan pass.
void BM_EpsHighChurnReplan(benchmark::State& state) {
  ChurnFixture fx(static_cast<std::size_t>(state.range(0)));
  std::size_t idx = 0;
  for (auto _ : state) {
    fx.one_replan(idx);
    idx = (idx + 1) % fx.flows.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpsHighChurnReplan)
    ->Arg(5000)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond);

// Same scenario on the retained per-flow reference engine: the in-binary
// before/after pair for the CI speedup guard (immune to runner speed).
void BM_EpsHighChurnReplanReference(benchmark::State& state) {
  ChurnFixture fx(static_cast<std::size_t>(state.range(0)),
                  EpsFabric::RateEngine::kReference);
  std::size_t idx = 0;
  for (auto _ : state) {
    fx.one_replan(idx);
    idx = (idx + 1) % fx.flows.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpsHighChurnReplanReference)
    ->Arg(5000)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond);

// bytes_in_flight() is sampled by the obs gauge every counter tick.
void BM_EpsBytesInFlight(benchmark::State& state) {
  ChurnFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.eps.bytes_in_flight().in_bytes());
  }
}
BENCHMARK(BM_EpsBytesInFlight)->Arg(5000);

// Start/complete churn: zero-byte flows enter and immediately drain, so
// this measures per-flow fabric bookkeeping plus event-pool turnover.
void BM_EpsFlowStartCompleteChurn(benchmark::State& state) {
  Simulator sim;
  EpsFabric eps(sim, topo60());
  IdAllocator<FlowId> ids;
  std::int64_t i = 0;
  for (auto _ : state) {
    Flow f(ids.next(), CoflowId{0}, JobId{0}, RackId{i % 60},
           RackId{(i + 11) % 60}, DataSize::zero());
    f.set_path(FlowPath::kEps);
    eps.start_flow(f, nullptr);
    sim.run_until(sim.now());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpsFlowStartCompleteChurn);

void BM_OcsCircuitChurn(benchmark::State& state) {
  Simulator sim;
  OcsSwitch ocs(sim, topo60());
  std::int64_t i = 0;
  for (auto _ : state) {
    const RackId src{i % 60};
    const RackId dst{(i + 7) % 60};
    ocs.setup_circuit(src, dst, nullptr);
    sim.run();  // completes the reconfiguration
    ocs.teardown_circuit(src, dst);
    ++i;
  }
}
BENCHMARK(BM_OcsCircuitChurn);

void BM_EpsSingleFlowLifecycle(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    EpsFabric eps(sim, topo60());
    IdAllocator<FlowId> ids;
    Flow f(ids.next(), CoflowId{0}, JobId{0}, RackId{0}, RackId{1},
           DataSize::gigabytes(1));
    f.set_path(FlowPath::kEps);
    eps.start_flow(f, nullptr);
    sim.run();
    benchmark::DoNotOptimize(f.completed());
  }
}
BENCHMARK(BM_EpsSingleFlowLifecycle);

}  // namespace
}  // namespace cosched

BENCHMARK_MAIN();
