// Scale-campaign harness (ROADMAP item 1): one large synthetic SWIM-like
// run — parameterized jobs x racks, 10k-100k jobs — with the wall-clock
// observability stack on: PerfMonitor phase histograms, a --heartbeat
// progress line (default: every 10 s), and a unified RunReport
// (--report-out=FILE, validated by tools/run_report.py).
//
//   bench_scale --jobs=10000 --report-out=r.json
//   bench_scale --jobs=100000 --racks=256 --heartbeat=30 --report-out=r.json
//
// Unlike the figure benches this runs a single repetition of a single
// scheduler (--sched=NAME, default coscheduler): the unit of interest is
// where one big run spends its wall clock, not cross-run statistics.
// Monitoring is always on here — it never perturbs simulation results
// (bit-for-bit, see tests/test_perf.cpp) — so every run yields the full
// cost-vs-scale curve per scheduling pass.
#include <chrono>
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "metrics/report.h"
#include "metrics/run_report.h"
#include "obs/perf_monitor.h"
#include "obs/profile.h"

using namespace cosched;
using namespace cosched::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  if (args.heartbeat_sec < 0.0) args.heartbeat_sec = 10.0;
  const ExperimentConfig cfg = paper_config(args);

  const ScaleComboCheck combo =
      check_scale_combo(args.jobs, cfg.sim.topo.num_racks);
  if (!combo.ok) {
    std::fprintf(stderr, "%s\n", combo.error.c_str());
    return 2;
  }
  if (!combo.warning.empty()) {
    std::fprintf(stderr, "warning: %s\n", combo.warning.c_str());
  }

  PerfMonitor::set_enabled(true);
  PerfMonitor::instance().reset();
  if (args.profile) {
    Profiler::set_enabled(true);
    Profiler::instance().reset();
  }

  std::printf(
      "bench_scale: %s (%s engine, %s dispatch), %d jobs on %d racks, "
      "seed %llu\n",
      args.sched.c_str(), to_string(args.sched_engine),
      to_string(args.dispatch_engine), args.jobs, cfg.sim.topo.num_racks,
      static_cast<unsigned long long>(args.seed));
  SchedulerFactory factory;
  try {
    factory = make_scheduler_factory(args.sched);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--sched: %s\n", e.what());
    return 2;
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const RunMetrics run = run_once(cfg, factory, 0);
  const double wall_sec = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

  print_summary(std::cout, run);
  std::printf("wall clock: %.2f s (%.0f events/s), RSS high-water %.0f MB\n",
              wall_sec,
              static_cast<double>(run.events_executed) / wall_sec,
              static_cast<double>(rss_high_water_bytes()) / (1024 * 1024));

  const PerfSnapshot perf = PerfMonitor::instance().snapshot();
  PerfMonitor::write_summary(std::cout, perf);

  const auto profile = Profiler::instance().snapshot();
  if (args.profile) {
    if (!args.profile_out.empty()) {
      std::ofstream os(args.profile_out);
      if (!os) {
        std::fprintf(stderr, "cannot open --profile-out=%s\n",
                     args.profile_out.c_str());
        return 1;
      }
      Profiler::instance().write_summary(os);
      PerfMonitor::write_summary(os, perf);
      std::printf("wrote profile to %s\n", args.profile_out.c_str());
    } else {
      Profiler::instance().write_summary(std::cout);
    }
  }

  if (!args.report_out.empty()) {
    RunReportMeta meta;
    meta.num_jobs = args.jobs;
    meta.num_racks = cfg.sim.topo.num_racks;
    meta.wall_time_sec = wall_sec;
    meta.rss_high_water_bytes = rss_high_water_bytes();
    std::ofstream os(args.report_out);
    if (!os) {
      std::fprintf(stderr, "cannot open --report-out=%s\n",
                   args.report_out.c_str());
      return 1;
    }
    write_run_report_json(os, run, meta, &perf,
                          args.profile ? &profile : nullptr);
    std::printf("wrote RunReport to %s\n", args.report_out.c_str());
  }
  return 0;
}
