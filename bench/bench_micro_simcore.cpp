// Microbenchmarks for the discrete-event core: schedule/fire throughput,
// cancellation tombstoning, and the EPS-style cancel+reschedule churn that
// dominates event-queue traffic during flow-rate replans.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "simcore/simulator.h"

namespace cosched {
namespace {

// Pure schedule+fire throughput: fill a queue, drain it.
void BM_SimScheduleFire(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::int64_t fired = 0;
  for (auto _ : state) {
    Simulator sim;
    for (std::size_t i = 0; i < n; ++i) {
      // Spread timestamps so the heap actually reorders, with ties to
      // exercise the seq-number ordering too.
      sim.schedule_at(SimTime::seconds(static_cast<double>(i % 97)),
                      [&fired] { ++fired; });
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_SimScheduleFire)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

// Schedule a batch, cancel every other event, drain the rest: the pop loop
// must skip the tombstones.
void BM_SimScheduleCancelFire(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::int64_t fired = 0;
  std::vector<EventHandle> handles(n);
  for (auto _ : state) {
    Simulator sim;
    for (std::size_t i = 0; i < n; ++i) {
      handles[i] = sim.schedule_at(
          SimTime::seconds(static_cast<double>(i % 97)), [&fired] { ++fired; });
    }
    for (std::size_t i = 0; i < n; i += 2) handles[i].cancel();
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_SimScheduleCancelFire)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

// The flow-replan pattern: n live completion events; every round cancels
// and reschedules all of them slightly later, then fires the earliest.
// Tombstones pile up ahead of the clock, so this is the scenario that
// rewards cheap cancellation and queue compaction.
void BM_SimReplanChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Simulator sim;
  std::vector<EventHandle> handles(n);
  std::int64_t fired = 0;
  double base = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    handles[i] = sim.schedule_at(
        SimTime::seconds(base + static_cast<double>(i)), [&fired] { ++fired; });
  }
  for (auto _ : state) {
    base += 1e-3;
    for (std::size_t i = 0; i < n; ++i) {
      handles[i].cancel();
      handles[i] = sim.schedule_at(
          SimTime::seconds(base + static_cast<double>(i)),
          [&fired] { ++fired; });
    }
    sim.step();  // fire the earliest so simulated time keeps advancing
  }
  // One item = one cancel+reschedule pair.
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_SimReplanChurn)->Arg(1 << 10)->Arg(1 << 12);

}  // namespace
}  // namespace cosched

BENCHMARK_MAIN();
