// Figure 7 reproduction: sensitivity of Co-scheduler to the T_rem
// estimation error rate (0% ... 50%). Fair and Corral do not use T_rem;
// they are shown as flat references, and everything is normalized to Fair
// (error 0) as in the paper's presentation.
//
// Paper's reported shape: makespan and average JCT improvements shrink as
// the error grows but stay substantial (>= 36% / 46% vs Fair at 50%);
// average CCT is nearly insensitive.
#include "bench_util.h"

using namespace cosched;
using namespace cosched::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::vector<double> errors{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};

  ExperimentConfig cfg = paper_config(args);
  const AggregateMetrics fair = run_experiment(
      cfg, make_scheduler_factory("fair"), args.parallel());
  const AggregateMetrics corral = run_experiment(
      cfg, make_scheduler_factory("corral"), args.parallel());

  std::vector<double> makespans, jcts, ccts;
  for (double err : errors) {
    ExperimentConfig ecfg = paper_config(args);
    // The error is injected through the faults layer; trem_error_or routes
    // it into the same TremEstimator stream, so this is bit-for-bit the
    // legacy `sim.trem_error_rate = err` at the same seed.
    ecfg.sim.faults.trem_noise = TremNoiseFault{err};
    const AggregateMetrics m = run_experiment(
        ecfg, make_scheduler_factory("coscheduler"), args.parallel());
    makespans.push_back(m.makespan_sec.mean() / fair.makespan_sec.mean());
    jcts.push_back(m.avg_jct_sec.mean() / fair.avg_jct_sec.mean());
    ccts.push_back(m.avg_cct_sec.mean() / fair.avg_cct_sec.mean());
  }

  std::vector<std::string> cols;
  for (double e : errors) {
    cols.push_back(std::to_string(static_cast<int>(e * 100)) + "%");
  }

  print_header("Figure 7(a): makespan vs T_rem error (normalized to Fair)");
  print_cols(cols);
  print_row("coscheduler", makespans);
  print_row("fair (ref)", std::vector<double>(errors.size(), 1.0));
  print_row("corral (ref)",
            std::vector<double>(errors.size(),
                                corral.makespan_sec.mean() /
                                    fair.makespan_sec.mean()));

  print_header("Figure 7(b): average JCT vs T_rem error");
  print_cols(cols);
  print_row("coscheduler", jcts);
  print_row("fair (ref)", std::vector<double>(errors.size(), 1.0));
  print_row("corral (ref)",
            std::vector<double>(errors.size(), corral.avg_jct_sec.mean() /
                                                   fair.avg_jct_sec.mean()));

  print_header("Figure 7(c): average CCT vs T_rem error");
  print_cols(cols);
  print_row("coscheduler", ccts);
  print_row("fair (ref)", std::vector<double>(errors.size(), 1.0));
  print_row("corral (ref)",
            std::vector<double>(errors.size(), corral.avg_cct_sec.mean() /
                                                   fair.avg_cct_sec.mean()));

  std::printf("\n(paper: improvements shrink with error but Co-scheduler "
              "still beats Fair by >=36%% makespan / 46%% JCT at 50%% "
              "error; CCT nearly insensitive)\n");
  return 0;
}
