// Figure 6 reproduction: sensitivity to the EPS oversubscription ratio
// (3:1 ... 20:1). All values normalized to Fair at 10:1, as in the paper.
//
// Paper's reported shape: Co-scheduler is insensitive (its traffic rides
// the OCS); Fair and Corral degrade markedly as the ratio grows.
#include "bench_util.h"

using namespace cosched;
using namespace cosched::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::vector<double> ratios{3, 5, 10, 15, 20};
  const std::vector<std::string> names{"fair", "corral", "coscheduler"};

  // Baseline: Fair at 10:1.
  ExperimentConfig base_cfg = paper_config(args);
  base_cfg.sim.topo.eps_oversubscription = 10.0;
  const AggregateMetrics fair10 =
      run_experiment(base_cfg, make_scheduler_factory("fair"),
                     args.parallel());

  struct Series {
    std::vector<double> makespan, jct, cct;
  };
  std::vector<Series> series(names.size());

  for (double ratio : ratios) {
    ExperimentConfig cfg = paper_config(args);
    cfg.sim.topo.eps_oversubscription = ratio;
    for (std::size_t s = 0; s < names.size(); ++s) {
      const AggregateMetrics m = run_experiment(
          cfg, make_scheduler_factory(names[s]), args.parallel());
      series[s].makespan.push_back(m.makespan_sec.mean() /
                                   fair10.makespan_sec.mean());
      series[s].jct.push_back(m.avg_jct_sec.mean() /
                              fair10.avg_jct_sec.mean());
      series[s].cct.push_back(m.avg_cct_sec.mean() /
                              fair10.avg_cct_sec.mean());
    }
  }

  auto panel = [&](const char* title,
                   std::vector<double> Series::*member) {
    print_header(title);
    std::vector<std::string> cols;
    for (double r : ratios) cols.push_back(std::to_string((int)r) + ":1");
    print_cols(cols);
    for (std::size_t s = 0; s < names.size(); ++s) {
      print_row(names[s], series[s].*member);
    }
  };

  panel("Figure 6(a): makespan (normalized to Fair at 10:1)",
        &Series::makespan);
  panel("Figure 6(b): average JCT (normalized to Fair at 10:1)",
        &Series::jct);
  panel("Figure 6(c): average CCT (normalized to Fair at 10:1)",
        &Series::cct);

  std::printf("\n(paper: Co-scheduler flat across ratios; Fair and Corral "
              "degrade as oversubscription grows)\n");
  return 0;
}
