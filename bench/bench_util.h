// Shared helpers for the figure-reproduction benches: a tiny flag parser,
// the paper's experiment defaults, and table printing.
//
// Every bench accepts:
//   --reps=N     repetitions (paper: 20; default 3 to keep CI fast)
//   --jobs=N     jobs per repetition (paper: 1000)
//   --seed=N     base seed
//   --threads=N  worker threads sharding independent runs (default 1 =
//                serial; 0 = one per hardware thread). Results are
//                bit-for-bit identical for every thread count — see
//                ParallelExperimentConfig and ctest -L determinism.
//   --faults=SPEC fault-injection plan applied to every run (see
//                src/faults/fault_spec.h for the grammar, docs/FAULTS.md
//                for the model), e.g.
//                --faults=straggler:p=0.05:slow=2,ocs-outage:at=300s:dur=60s
//   --fabric=SPEC circuit fabric carrying the elephants: ocs[:K] (K circuit
//                planes; default ocs:1, the paper's single OCS), rotor[:P]
//                (fixed-period round-robin matchings), mesh, or ring — see
//                docs/FABRICS.md
//   --audit / --no-audit
//                enable/disable the runtime invariant auditor (see
//                src/audit/). Default: on in Debug builds, off in Release.
//                Audited runs are bit-for-bit identical to unaudited ones;
//                the auditor only observes.
// and prints one table per figure panel, with values normalized exactly the
// way the paper normalizes them (to the Fair scheduler unless stated).
//
// Numeric flags are parsed strictly: non-numeric, trailing-garbage, or
// out-of-range values are errors, not silent zeros.
//
// Observability (benches that support it, currently bench_fig3_overall
// and bench_scale):
//   --trace-out=PATH      Chrome trace JSON of one coscheduler repetition
//   --counters-out=PATH   counter samples of that repetition as CSV
//   --profile             wall-clock profile of simulator hot paths
//   --profile-out=PATH    write that profile to a file (implies --profile)
//   --heartbeat=SECS      wall-clock progress line every SECS seconds
//   --report-out=PATH     unified RunReport JSON (tools/run_report.py)
//   --racks=N             override the paper's 60-rack topology
//   --sched=NAME          scheduler for single-scheduler benches
//                         (bench_scale; default coscheduler)
//   --sched-engine=NAME   scheduler decision engine: incremental (default,
//                         cached fast path) or reference (the per-event
//                         recompute oracle) — bit-identical results
//   --eps-engine=NAME     EPS max-min engine: grouped (default) or
//                         reference — bit-identical results
//   --dispatch-engine=NAME driver dispatch engine: offer-queue (default,
//                         event-driven free-rack set) or scan (the
//                         O(racks) round-robin oracle) — bit-identical
#pragma once

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "faults/fault_spec.h"
#include "sim/experiment.h"

namespace cosched::bench {

/// Strict decimal parse of a whole C string into [min_value, max_value];
/// rejects empty input, any trailing characters, and overflow. The first
/// character must be a digit or '-': strtoll itself skips leading
/// whitespace and accepts '+', which would let " 5" or "+5" through a
/// parser documented as strict.
inline bool parse_int32(const char* s, std::int32_t min_value,
                        std::int32_t max_value, std::int32_t* out) {
  if (s == nullptr || *s == '\0') return false;
  const char* digits = (*s == '-') ? s + 1 : s;
  if (*digits < '0' || *digits > '9') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  if (v < min_value || v > max_value) return false;
  *out = static_cast<std::int32_t>(v);
  return true;
}

/// Strict decimal parse of a whole C string into a uint64. The first
/// character must be a digit: besides whitespace/'+' laundering, strtoull
/// parses a *negative* number by wrapping it into range without setting
/// ERANGE, so " -1" would sail through the old '-' prefix check (which the
/// skipped whitespace defeated) and come back as 18446744073709551615.
inline bool parse_uint64(const char* s, std::uint64_t* out) {
  if (s == nullptr || *s < '0' || *s > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

/// Strict decimal parse of a whole C string into [min_value, max_value];
/// same contract as parse_int32 — no leading whitespace, no '+', no
/// trailing characters, and inf/nan spellings are rejected (the first
/// character must be a digit, '-', or '.').
inline bool parse_double(const char* s, double min_value, double max_value,
                         double* out) {
  if (s == nullptr || *s == '\0') return false;
  const char* digits = (*s == '-') ? s + 1 : s;
  if ((*digits < '0' || *digits > '9') && *digits != '.') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  if (!(v >= min_value && v <= max_value)) return false;  // also rejects NaN
  *out = v;
  return true;
}

struct BenchArgs {
  std::int32_t reps = 2;
  std::int32_t jobs = 200;
  std::uint64_t seed = 42;
  /// 0 = the paper's 60-rack topology; > 0 overrides num_racks.
  std::int32_t racks = 0;
  /// Wall-clock heartbeat period (--heartbeat=SECS); 0 = off. Negative
  /// means "flag absent", letting benches pick their own default
  /// (bench_scale heartbeats every 10 s unless told otherwise).
  double heartbeat_sec = -1.0;
  /// RunReport JSON destination (--report-out=PATH); empty = none.
  std::string report_out;
  /// Profile destination file (--profile-out=PATH, implies --profile);
  /// empty = stdout when --profile is set.
  std::string profile_out;
  /// Scheduler for single-scheduler benches (bench_scale).
  std::string sched = "coscheduler";
  /// Scheduler decision engine (--sched-engine=incremental|reference).
  SchedEngine sched_engine = SchedEngine::kIncremental;
  /// Planner CCT-bound mode (--bound=fabric|legacy). fabric — the default —
  /// charges the active fabric's Fabric::cct_lower_bound in PSRT/SBS;
  /// legacy is the fabric-oblivious escape hatch for A/B comparison
  /// (metrics stay fabric-aware either way; identical on ocs:1).
  CctBoundMode cct_bound = CctBoundMode::kFabric;
  /// EPS rate engine (--eps-engine=grouped|reference).
  EpsFabric::RateEngine eps_engine = EpsFabric::RateEngine::kGrouped;
  /// Driver dispatch engine (--dispatch-engine=offer-queue|scan).
  DispatchEngine dispatch_engine = DispatchEngine::kOfferQueue;
  /// 1 = serial (default), 0 = all hardware threads, N > 1 = N workers.
  std::int32_t threads = 1;
  std::string trace_out;
  std::string counters_out;
  bool profile = false;
  /// Validated fault plan from --faults= (empty plan when the flag is
  /// absent), plus the original spec string for display.
  FaultPlan faults;
  std::string faults_spec;
  /// Circuit fabric (--fabric=ocs[:K]|rotor[:PERIOD]|mesh|ring; see
  /// docs/FABRICS.md). Default ocs:1 — the paper's fabric.
  FabricSpec fabric;
  std::string fabric_spec = "ocs:1";
  /// Runtime invariant auditor (--audit / --no-audit). Defaults on in
  /// Debug builds and off in Release, matching SimConfig.
  bool audit = kAuditDefaultOn;

  [[nodiscard]] bool observing() const {
    return !trace_out.empty() || !counters_out.empty() || !report_out.empty();
  }

  /// The run-sharding config benches pass to run_experiment /
  /// compare_schedulers.
  [[nodiscard]] ParallelExperimentConfig parallel() const {
    ParallelExperimentConfig par;
    par.threads = threads;
    return par;
  }

  /// Parse argv. On any error, `*error` gets a message and nullopt is
  /// returned; `*help` is set when --help/-h was seen (caller prints usage).
  static std::optional<BenchArgs> parse_or_error(int argc, char** argv,
                                                 std::string* error,
                                                 bool* help) {
    BenchArgs args;
    *help = false;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto value = [&](const char* prefix) -> const char* {
        return a.rfind(prefix, 0) == 0 ? a.c_str() + std::strlen(prefix)
                                       : nullptr;
      };
      if (const char* reps = value("--reps=")) {
        if (!parse_int32(reps, 1, std::numeric_limits<std::int32_t>::max(),
                         &args.reps)) {
          *error = "--reps expects a positive integer, got '" +
                   std::string(reps) + "'";
          return std::nullopt;
        }
      } else if (const char* jobs = value("--jobs=")) {
        if (!parse_int32(jobs, 1, std::numeric_limits<std::int32_t>::max(),
                         &args.jobs)) {
          *error = "--jobs expects a positive integer, got '" +
                   std::string(jobs) + "'";
          return std::nullopt;
        }
      } else if (const char* seed = value("--seed=")) {
        if (!parse_uint64(seed, &args.seed)) {
          *error = "--seed expects a non-negative integer, got '" +
                   std::string(seed) + "'";
          return std::nullopt;
        }
      } else if (const char* threads = value("--threads=")) {
        if (!parse_int32(threads, 0, std::numeric_limits<std::int32_t>::max(),
                         &args.threads)) {
          *error = "--threads expects an integer >= 0 (0 = all hardware "
                   "threads), got '" +
                   std::string(threads) + "'";
          return std::nullopt;
        }
      } else if (const char* faults = value("--faults=")) {
        std::string parse_error;
        const std::optional<FaultPlan> plan =
            FaultPlan::parse(faults, &parse_error);
        if (!plan.has_value()) {
          *error = "--faults: " + parse_error;
          return std::nullopt;
        }
        args.faults = *plan;
        args.faults_spec = faults;
      } else if (const char* fabric = value("--fabric=")) {
        std::string parse_error;
        const std::optional<FabricSpec> spec =
            FabricSpec::parse(fabric, &parse_error);
        if (!spec.has_value()) {
          *error = "--fabric: " + parse_error;
          return std::nullopt;
        }
        args.fabric = *spec;
        args.fabric_spec = spec->to_spec();
      } else if (const char* racks = value("--racks=")) {
        if (!parse_int32(racks, 2, 100000, &args.racks)) {
          *error = "--racks expects an integer >= 2, got '" +
                   std::string(racks) + "'";
          return std::nullopt;
        }
      } else if (const char* hb = value("--heartbeat=")) {
        if (!parse_double(hb, 0.0, 1e9, &args.heartbeat_sec)) {
          *error = "--heartbeat expects seconds >= 0, got '" +
                   std::string(hb) + "'";
          return std::nullopt;
        }
      } else if (const char* report = value("--report-out=")) {
        args.report_out = report;
      } else if (const char* prof = value("--profile-out=")) {
        args.profile_out = prof;
        args.profile = true;
      } else if (const char* sched = value("--sched=")) {
        args.sched = sched;
      } else if (const char* sched_eng = value("--sched-engine=")) {
        // Exact-match validation, same spirit as the strict numeric
        // parsers: anything but the two engine names is an error, never a
        // silent default.
        if (std::strcmp(sched_eng, "incremental") == 0) {
          args.sched_engine = SchedEngine::kIncremental;
        } else if (std::strcmp(sched_eng, "reference") == 0) {
          args.sched_engine = SchedEngine::kReference;
        } else {
          *error = "--sched-engine expects 'incremental' or 'reference', "
                   "got '" +
                   std::string(sched_eng) + "'";
          return std::nullopt;
        }
      } else if (const char* bound = value("--bound=")) {
        if (std::strcmp(bound, "fabric") == 0) {
          args.cct_bound = CctBoundMode::kFabric;
        } else if (std::strcmp(bound, "legacy") == 0) {
          args.cct_bound = CctBoundMode::kLegacy;
        } else {
          *error = "--bound expects 'fabric' or 'legacy', got '" +
                   std::string(bound) + "'";
          return std::nullopt;
        }
      } else if (const char* eps_eng = value("--eps-engine=")) {
        if (std::strcmp(eps_eng, "grouped") == 0) {
          args.eps_engine = EpsFabric::RateEngine::kGrouped;
        } else if (std::strcmp(eps_eng, "reference") == 0) {
          args.eps_engine = EpsFabric::RateEngine::kReference;
        } else {
          *error = "--eps-engine expects 'grouped' or 'reference', got '" +
                   std::string(eps_eng) + "'";
          return std::nullopt;
        }
      } else if (const char* de = value("--dispatch-engine=")) {
        if (std::strcmp(de, "offer-queue") == 0) {
          args.dispatch_engine = DispatchEngine::kOfferQueue;
        } else if (std::strcmp(de, "scan") == 0) {
          args.dispatch_engine = DispatchEngine::kScan;
        } else {
          *error = "--dispatch-engine expects 'offer-queue' or 'scan', "
                   "got '" +
                   std::string(de) + "'";
          return std::nullopt;
        }
      } else if (const char* trace = value("--trace-out=")) {
        args.trace_out = trace;
      } else if (const char* counters = value("--counters-out=")) {
        args.counters_out = counters;
      } else if (a == "--profile") {
        args.profile = true;
      } else if (a == "--audit") {
        args.audit = true;
      } else if (a == "--no-audit") {
        args.audit = false;
      } else if (a == "--help" || a == "-h") {
        *help = true;
        return args;
      } else {
        *error = "unknown flag: " + a;
        return std::nullopt;
      }
    }
    return args;
  }

  static void print_usage(const char* prog) {
    std::printf(
        "usage: %s [--reps=N] [--jobs=N (paper: 1000)] [--seed=N]\n"
        "          [--threads=N (0 = all hardware threads)]\n"
        "          [--racks=N (default: paper's 60)]\n"
        "          [--sched=NAME (single-scheduler benches; default "
        "coscheduler)]\n"
        "          [--sched-engine=incremental|reference (default "
        "incremental)]\n"
        "          [--eps-engine=grouped|reference (default grouped)]\n"
        "          [--dispatch-engine=offer-queue|scan (default "
        "offer-queue)]\n"
        "          [--fabric=ocs[:K]|rotor[:PERIOD]|mesh|ring (default "
        "ocs:1;\n"
        "           see docs/FABRICS.md)]\n"
        "          [--bound=fabric|legacy (planner T(C); default fabric, "
        "the\n"
        "           active fabric's own bound — legacy is the "
        "fabric-oblivious\n"
        "           escape hatch)]\n"
        "          [--faults=SPEC (see docs/FAULTS.md)]\n"
        "          [--audit | --no-audit (invariant auditor; default %s)]\n"
        "          [--trace-out=PATH] [--counters-out=PATH]\n"
        "          [--profile] [--profile-out=PATH]\n"
        "          [--heartbeat=SECS] [--report-out=PATH]\n",
        prog, kAuditDefaultOn ? "on" : "off");
  }

  static BenchArgs parse(int argc, char** argv) {
    std::string error;
    bool help = false;
    const std::optional<BenchArgs> args =
        parse_or_error(argc, argv, &error, &help);
    if (help) {
      print_usage(argv[0]);
      std::exit(0);
    }
    if (!args.has_value()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      print_usage(argv[0]);
      std::exit(2);
    }
    return *args;
  }
};

/// bench_scale's --jobs/--racks combination check, beyond per-flag
/// parsing: rejects non-positive values outright (the parser already
/// enforces jobs >= 1 and racks >= 2, but the helper is the single source
/// of truth for programmatic callers and tests), and warns when the sweep
/// point cannot keep the topology busy — fewer jobs than racks leaves
/// racks idle for the entire run, so per-rack scaling numbers from that
/// combo are noise, not signal.
struct ScaleComboCheck {
  bool ok = true;
  std::string error;    ///< set when !ok (combo rejected)
  std::string warning;  ///< set when ok but the combo is degenerate
};

inline ScaleComboCheck check_scale_combo(std::int32_t jobs,
                                         std::int32_t racks) {
  ScaleComboCheck check;
  if (racks <= 0) {
    check.ok = false;
    check.error = "--racks must be positive, got " + std::to_string(racks);
    return check;
  }
  if (jobs <= 0) {
    check.ok = false;
    check.error = "--jobs must be positive, got " + std::to_string(jobs);
    return check;
  }
  if (jobs < racks) {
    check.warning = "only " + std::to_string(jobs) + " jobs across " +
                    std::to_string(racks) +
                    " racks: most racks will sit idle, so per-rack scaling "
                    "numbers from this combo are not meaningful";
  }
  return check;
}

/// The paper's experimental setting (Section V-A): 60 racks x 10 servers,
/// 20 containers/server, 10 Gb/s NICs, 10:1 oversubscription, 100 Gb/s OCS,
/// delta = 10 ms, T_e = 1.125 GB, 1000 jobs in [0, 90] min, 20 users.
inline ExperimentConfig paper_config(const BenchArgs& args) {
  ExperimentConfig cfg;
  cfg.sim.topo = HybridTopology{};  // defaults mirror the paper
  if (args.racks > 0) cfg.sim.topo.num_racks = args.racks;
  cfg.workload.num_jobs = args.jobs;
  cfg.workload.num_users = 20;
  // Scale the arrival window with the job count so smaller --jobs runs
  // keep the paper's offered load.
  cfg.workload.arrival_window =
      Duration::minutes(90.0 * args.jobs / 1000.0);
  cfg.repetitions = args.reps;
  cfg.base_seed = args.seed;
  cfg.sim.faults = args.faults;
  cfg.sim.fabric = args.fabric;
  cfg.sim.audit = args.audit;
  cfg.sim.sched_engine = args.sched_engine;
  cfg.sim.cct_bound = args.cct_bound;
  cfg.sim.eps_engine = args.eps_engine;
  cfg.sim.dispatch_engine = args.dispatch_engine;
  cfg.sim.heartbeat_sec = std::max(0.0, args.heartbeat_sec);
  return cfg;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void print_row(const std::string& label,
                      const std::vector<double>& values) {
  std::printf("%-22s", label.c_str());
  for (double v : values) std::printf(" %10.3f", v);
  std::printf("\n");
}

inline void print_cols(const std::vector<std::string>& cols) {
  std::printf("%-22s", "");
  for (const auto& c : cols) std::printf(" %10s", c.c_str());
  std::printf("\n");
}

}  // namespace cosched::bench
