// Shared helpers for the figure-reproduction benches: a tiny flag parser,
// the paper's experiment defaults, and table printing.
//
// Every bench accepts:
//   --reps=N    repetitions (paper: 20; default 3 to keep CI fast)
//   --jobs=N    jobs per repetition (paper: 1000)
//   --seed=N    base seed
// and prints one table per figure panel, with values normalized exactly the
// way the paper normalizes them (to the Fair scheduler unless stated).
//
// Observability (benches that support it, currently bench_fig3_overall):
//   --trace-out=PATH      Chrome trace JSON of one coscheduler repetition
//   --counters-out=PATH   counter samples of that repetition as CSV
//   --profile             wall-clock profile of simulator hot paths
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/experiment.h"

namespace cosched::bench {

struct BenchArgs {
  std::int32_t reps = 2;
  std::int32_t jobs = 200;
  std::uint64_t seed = 42;
  std::string trace_out;
  std::string counters_out;
  bool profile = false;

  [[nodiscard]] bool observing() const {
    return !trace_out.empty() || !counters_out.empty();
  }

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto value = [&](const char* prefix) -> const char* {
        return a.rfind(prefix, 0) == 0 ? a.c_str() + std::strlen(prefix)
                                       : nullptr;
      };
      if (const char* reps = value("--reps=")) {
        args.reps = std::atoi(reps);
      } else if (const char* jobs = value("--jobs=")) {
        args.jobs = std::atoi(jobs);
      } else if (const char* seed = value("--seed=")) {
        args.seed = std::strtoull(seed, nullptr, 10);
      } else if (const char* trace = value("--trace-out=")) {
        args.trace_out = trace;
      } else if (const char* counters = value("--counters-out=")) {
        args.counters_out = counters;
      } else if (a == "--profile") {
        args.profile = true;
      } else if (a == "--help" || a == "-h") {
        std::printf(
            "usage: %s [--reps=N] [--jobs=N (paper: 1000)] [--seed=N]\n"
            "          [--trace-out=PATH] [--counters-out=PATH] [--profile]\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
        std::exit(2);
      }
    }
    return args;
  }
};

/// The paper's experimental setting (Section V-A): 60 racks x 10 servers,
/// 20 containers/server, 10 Gb/s NICs, 10:1 oversubscription, 100 Gb/s OCS,
/// delta = 10 ms, T_e = 1.125 GB, 1000 jobs in [0, 90] min, 20 users.
inline ExperimentConfig paper_config(const BenchArgs& args) {
  ExperimentConfig cfg;
  cfg.sim.topo = HybridTopology{};  // defaults mirror the paper
  cfg.workload.num_jobs = args.jobs;
  cfg.workload.num_users = 20;
  // Scale the arrival window with the job count so smaller --jobs runs
  // keep the paper's offered load.
  cfg.workload.arrival_window =
      Duration::minutes(90.0 * args.jobs / 1000.0);
  cfg.repetitions = args.reps;
  cfg.base_seed = args.seed;
  return cfg;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void print_row(const std::string& label,
                      const std::vector<double>& values) {
  std::printf("%-22s", label.c_str());
  for (double v : values) std::printf(" %10.3f", v);
  std::printf("\n");
}

inline void print_cols(const std::vector<std::string>& cols) {
  std::printf("%-22s", "");
  for (const auto& c : cols) std::printf(" %10s", c.c_str());
  std::printf("\n");
}

}  // namespace cosched::bench
