// Circuit-scheduler ablation (a DESIGN.md extension, not a paper figure):
// average CCT of random coflow batches under FIFO, Sunflow, and BvN/TMS.
//
// Measured shape: Sunflow < FIFO < BvN for average CCT on mixed batches.
// Shortest-first ordering wins; notably, BvN/TMS's per-coflow optimality
// loses to even FIFO because strict one-coflow-at-a-time service idles
// every port the active coflow does not use — work conservation matters
// more than clearance optimality at moderate load.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "coflow/bvn_circuit.h"
#include "coflow/fifo_circuit.h"
#include "coflow/sunflow.h"
#include "fabric/ocs_fabric.h"
#include "common/rng.h"
#include "common/stats.h"

using namespace cosched;

namespace {

HybridTopology topo() {
  HybridTopology t;
  t.num_racks = 20;
  return t;
}

double run_batch(const std::string& kind, std::uint64_t seed,
                 int num_coflows) {
  Simulator sim;
  const HybridTopology t = topo();
  Network net(sim, t, std::make_unique<OcsFabric>(sim, t, 1));
  std::unique_ptr<CircuitScheduler> sched;
  if (kind == "fifo") {
    sched = std::make_unique<FifoCircuitScheduler>(sim, net);
  } else if (kind == "bvn") {
    sched = std::make_unique<BvnCircuitScheduler>(sim, net);
  } else {
    sched = std::make_unique<SunflowScheduler>(sim, net.fabric());
  }

  Rng rng(seed);
  IdAllocator<FlowId> ids;
  std::vector<std::unique_ptr<Coflow>> coflows;
  for (int k = 0; k < num_coflows; ++k) {
    coflows.push_back(
        std::make_unique<Coflow>(CoflowId{k}, JobId{k}));
    Coflow& c = *coflows.back();
    // Heavy-tailed widths and sizes.
    const int width = 1 + static_cast<int>(rng.zipf(8, 1.2));
    for (int e = 0; e < width; ++e) {
      const auto s = rng.uniform_int(0, 19);
      auto d = rng.uniform_int(0, 19);
      if (d == s) d = (d + 1) % 20;
      c.add_demand(ids, RackId{s}, RackId{d},
                   DataSize::gigabytes(
                       1.25 * static_cast<double>(rng.zipf(32, 1.3))));
    }
    c.mark_released(sim.now());
    for (const auto& f : c.flows()) {
      f->set_path(FlowPath::kOcs);
      sched->submit(c, *f);
    }
  }
  sim.run();

  RunningStat ccts;
  for (const auto& c : coflows) {
    double last = 0;
    for (const auto& f : c->flows()) {
      last = std::max(last, f->completion_time().sec());
    }
    ccts.add(last - c->release_time().sec());
  }
  return ccts.mean();
}

}  // namespace

int main() {
  std::printf("=== Circuit-scheduler ablation: avg CCT (s) over random "
              "coflow batches ===\n");
  std::printf("%-10s %10s %10s %10s\n", "batch", "sunflow", "bvn", "fifo");
  for (int n : {10, 30, 60}) {
    RunningStat sun, bvn, fifo;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      sun.add(run_batch("sunflow", seed, n));
      bvn.add(run_batch("bvn", seed, n));
      fifo.add(run_batch("fifo", seed, n));
    }
    std::printf("%-10d %10.3f %10.3f %10.3f\n", n, sun.mean(), bvn.mean(),
                fifo.mean());
  }
  std::printf(
      "\n(sunflow wins via shortest-first + work conservation; bvn/tms\n"
      " loses to fifo because one-coflow-at-a-time service idles ports)\n");
  return 0;
}
