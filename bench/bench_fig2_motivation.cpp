// Figure 2 reproduction (the motivation example, Section III-B).
//
// Two jobs on a 3-rack cluster. Job1: 9 maps, 3 reduces; Job2: 15 maps,
// 3 reduces; every map sends 1 unit to every reduce; the OCS moves 1 unit
// per unit time; Sunflow schedules the coflows (Job1 has priority — its
// lower-bound CCT is smaller).
//
//   Case 1 (poor placement): maps spread 3/3/3 (5/5/5), but reduces packed
//          on two racks (2+1). Few circuits usable, long CCTs.
//   Case 2 (good placement): reduces spread 1/1/1 — all three circuits run
//          concurrently, much shorter CCTs.
//
// The paper reports Case 1 CCTs of 12+2d / 20+3d and Case 2 CCTs of
// 6+2d / 16+3d (d = reconfiguration delay). The figure's exact placements
// are not fully recoverable from the text; the placements below reproduce
// the paper's lower bounds for Job1 exactly and the qualitative gap for
// Job2 (whose CCT includes queueing behind Job1).
//
// Units: 1 unit of data = 1 GB, OCS = 8 Gb/s (1 GB per unit time = 1 s).
#include <cstdio>
#include <memory>

#include "coflow/sunflow.h"
#include "common/ids.h"
#include "fabric/ocs_fabric.h"
#include "net/network.h"

using namespace cosched;

namespace {

struct Case {
  Simulator sim;
  Network net;
  SunflowScheduler sunflow;
  IdAllocator<FlowId> flow_ids;

  explicit Case(Duration delta)
      : net(sim, topo(delta),
            std::make_unique<OcsFabric>(sim, topo(delta), 1)),
        sunflow(sim, net.fabric()) {}

  static HybridTopology topo(Duration delta) {
    HybridTopology t;
    t.num_racks = 3;
    t.ocs_link = Bandwidth::gbps(8);  // 1 GB per "unit time" (second)
    t.ocs_reconfig_delay = delta;
    t.elephant_threshold = DataSize::megabytes(1);  // everything qualifies
    return t;
  }

  // maps[i] = #maps on rack i; reduces[j] = #reduces on rack j.
  // Every map sends 1 unit (1 GB) to every reduce task.
  void add_job(Coflow& coflow, const std::vector<int>& maps,
               const std::vector<int>& reduces) {
    for (std::size_t i = 0; i < maps.size(); ++i) {
      for (std::size_t j = 0; j < reduces.size(); ++j) {
        if (i == j || maps[i] == 0 || reduces[j] == 0) continue;
        coflow.add_demand(
            flow_ids, RackId{static_cast<std::int64_t>(i)},
            RackId{static_cast<std::int64_t>(j)},
            DataSize::gigabytes(static_cast<double>(maps[i] * reduces[j])));
      }
    }
    coflow.mark_released(sim.now());
    for (const auto& f : coflow.flows()) {
      f->set_path(FlowPath::kOcs);
      sunflow.submit(coflow, *f);
    }
  }

  double cct_of(const Coflow& coflow) {
    double last = 0;
    for (const auto& f : coflow.flows()) {
      last = std::max(last, f->completion_time().sec());
    }
    return last - coflow.release_time().sec();
  }
};

void run_case(const char* name, const std::vector<int>& red1,
              const std::vector<int>& red2, Duration delta) {
  Case c(delta);
  Coflow job1(CoflowId{1}, JobId{1});
  Coflow job2(CoflowId{2}, JobId{2});
  c.add_job(job1, {3, 3, 3}, red1);
  c.add_job(job2, {5, 5, 5}, red2);
  c.sim.run();

  const Duration b1 = job1.lower_bound(c.net.ocs().link_rate(),
                                       c.net.ocs().reconfig_delay());
  const Duration b2 = job2.lower_bound(c.net.ocs().link_rate(),
                                       c.net.ocs().reconfig_delay());
  std::printf("%s\n", name);
  std::printf("  Job1: lower bound %.2f units, simulated CCT %.2f units\n",
              b1.sec(), c.cct_of(job1));
  std::printf("  Job2: lower bound %.2f units, simulated CCT %.2f units "
              "(includes queueing behind Job1)\n",
              b2.sec(), c.cct_of(job2));
}

}  // namespace

int main() {
  const Duration delta = Duration::milliseconds(10);
  std::printf("=== Figure 2: task placement determines CCT (delta=%.2f "
              "units) ===\n\n",
              delta.sec());
  run_case("Case 1: reduces packed on two racks (2+1)", {2, 1, 0},
           {2, 1, 0}, delta);
  std::printf("\n");
  run_case("Case 2: reduces spread one per rack (1+1+1)", {1, 1, 1},
           {1, 1, 1}, delta);
  std::printf(
      "\n(paper: Case 1 = 12+2d / 20+3d; Case 2 = 6+2d / 16+3d — Case 2\n"
      " strictly dominates because every placement leaves more circuits\n"
      " usable concurrently)\n");
  return 0;
}
