#!/usr/bin/env bash
# Scale campaign driver (EXPERIMENTS.md "Scale campaign"): bench_scale
# sweeps over {10k, 30k, 100k} jobs x {60, 128, 256} racks under both
# dispatch engines, RunReports written to results/. Serial on purpose —
# one run at a time so wall/RSS numbers are not contended.
#
#   tools/run_scale_campaign.sh [BUILD_DIR] [OUT_DIR]
#
# The 100k x 256 offer-queue point runs first: it is the ISSUE 8
# acceptance gate (< 15 min wall) and fails fast if the build regressed.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results/scale_campaign}"
BENCH="$BUILD_DIR/bench/bench_scale"
mkdir -p "$OUT_DIR"

run() {
  # Wall clock and peak RSS land in the v2 RunReport itself
  # (wall_clock_sec / rss_high_water_bytes); no external timer needed.
  # Completed points are skipped, so a rerun resumes where it stopped.
  local jobs="$1" racks="$2" engine="$3"
  local tag="j${jobs}_r${racks}_${engine}"
  if [ -s "$OUT_DIR/run_${tag}.json" ]; then
    echo "=== $tag (already done) ==="
    return
  fi
  echo "=== $tag ==="
  "$BENCH" --jobs="$jobs" --racks="$racks" \
    --dispatch-engine="$engine" --heartbeat=60 \
    --report-out="$OUT_DIR/run_${tag}.json" \
    > "$OUT_DIR/run_${tag}.log" 2>&1
  python3 tools/run_report.py show "$OUT_DIR/run_${tag}.json"
}

# Acceptance gate first.
run 100000 256 offer-queue

for jobs in 10000 30000 100000; do
  for racks in 60 128 256; do
    for engine in offer-queue scan; do
      [ "$jobs" = 100000 ] && [ "$racks" = 256 ] && \
        [ "$engine" = offer-queue ] && continue
      run "$jobs" "$racks" "$engine"
    done
  done
done

# Scheduler-engine cross-check at the 10k point: the incremental engines
# must be bit-identical to the all-reference oracle.
echo "=== j10000_r60_reference-sched ==="
if [ ! -s "$OUT_DIR/run_j10000_r60_refsched.json" ]; then
  "$BENCH" --jobs=10000 --racks=60 \
    --sched-engine=reference --heartbeat=60 \
    --report-out="$OUT_DIR/run_j10000_r60_refsched.json" \
    > "$OUT_DIR/run_j10000_r60_refsched.log" 2>&1
fi

echo "=== diffs ==="
for jobs in 10000 30000 100000; do
  for racks in 60 128 256; do
    python3 tools/run_report.py diff \
      "$OUT_DIR/run_j${jobs}_r${racks}_offer-queue.json" \
      "$OUT_DIR/run_j${jobs}_r${racks}_scan.json"
  done
done
python3 tools/run_report.py diff \
  "$OUT_DIR/run_j10000_r60_offer-queue.json" \
  "$OUT_DIR/run_j10000_r60_refsched.json"
echo "campaign complete"
