#!/usr/bin/env python3
"""Validate, pretty-print, and diff cosched RunReport JSON documents.

Usage:
  tools/run_report.py check  REPORT [--require-phases p1,p2,...]
  tools/run_report.py show   REPORT [--phases]
  tools/run_report.py diff   REPORT_A REPORT_B [--tolerance=REL]

`check` validates the schema (exit 0/1) — pass --require-phases to also
demand that the named PerfMonitor phases recorded samples with size
attribution.  `show` prints a human summary.  `diff` compares the result
metrics of two reports (wall-clock fields are informational only and never
diffed), failing if any metric differs by more than --tolerance relative
(default 0: bit-exact decimal representation).
"""

import argparse
import json
import sys

SCHEMA = "cosched.run_report"
# v1 reports lack metrics.dispatch_waves (added in v2 together with the
# dispatch-engine work); both validate, and `diff` compares whatever metric
# fields each document carries.
VERSIONS = {1, 2}

# The five scheduling passes the scale campaign cares about (ISSUE 6
# acceptance); `check --require-phases=default` expands to these.
DEFAULT_REQUIRED_PHASES = [
    "psrt.enumerate",
    "sbs.explore",
    "ocas.grant",
    "sunflow.allocation",
    "eps.replan",
]

TOP_LEVEL_KEYS = {
    "schema": str,
    "version": int,
    "scheduler": str,
    "seed": int,
    "config": dict,
    "wall_time_sec": (int, float),
    "rss_high_water_bytes": int,
    "metrics": dict,
    "faults": dict,
    "counters": dict,
    "profile": list,
    "phases": list,
}

METRIC_KEYS = [
    "makespan_sec",
    "avg_jct_sec",
    "avg_cct_sec",
    "avg_jct_heavy_sec",
    "avg_jct_light_sec",
    "avg_cct_heavy_sec",
    "avg_cct_light_sec",
    "jct_percentiles",
    "cct_percentiles",
    "jain_fairness",
    "ocs_traffic_fraction",
    "ocs_gb",
    "eps_gb",
    "local_gb",
    "jobs",
    "events_executed",
]

# Required from v2 on (schema bump for the dispatch-engine work).
METRIC_KEYS_V2 = [
    "dispatch_waves",
]

PHASE_KEYS = ["name", "calls", "total_ns", "max_ns", "latency_ns",
              "histogram", "by_size"]


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def validate(doc, errors):
    for key, typ in TOP_LEVEL_KEYS.items():
        if key not in doc:
            errors.append(f"missing top-level key: {key}")
        elif not isinstance(doc[key], typ):
            errors.append(f"key {key!r} has type {type(doc[key]).__name__}")
    if errors:
        return
    if doc["schema"] != SCHEMA:
        errors.append(f"schema is {doc['schema']!r}, expected {SCHEMA!r}")
    if doc["version"] not in VERSIONS:
        errors.append(f"version is {doc['version']}, expected one of "
                      f"{sorted(VERSIONS)}")
    required = list(METRIC_KEYS)
    if doc["version"] >= 2:
        required += METRIC_KEYS_V2
    for key in required:
        if key not in doc["metrics"]:
            errors.append(f"missing metrics key: {key}")
    for digest in ("jct_percentiles", "cct_percentiles"):
        d = doc["metrics"].get(digest, {})
        for p in ("p50", "p90", "p99", "max"):
            if p not in d:
                errors.append(f"metrics.{digest} missing {p}")
    for i, phase in enumerate(doc["phases"]):
        for key in PHASE_KEYS:
            if key not in phase:
                errors.append(f"phases[{i}] missing key: {key}")
                continue
        name = phase.get("name", f"#{i}")
        count = phase.get("latency_ns", {}).get("count")
        if count != phase.get("calls"):
            errors.append(f"phase {name}: histogram count {count} != "
                          f"calls {phase.get('calls')}")
        hist_total = sum(n for _, _, n in phase.get("histogram", []))
        if hist_total != phase.get("calls"):
            errors.append(f"phase {name}: bucket sum {hist_total} != "
                          f"calls {phase.get('calls')}")
        size_calls = sum(b.get("calls", 0) for b in phase.get("by_size", []))
        if size_calls != phase.get("calls"):
            errors.append(f"phase {name}: by_size calls {size_calls} != "
                          f"calls {phase.get('calls')}")


def check_required_phases(doc, required, errors):
    by_name = {p.get("name"): p for p in doc.get("phases", [])}
    for name in required:
        phase = by_name.get(name)
        if phase is None:
            errors.append(f"required phase absent: {name}")
            continue
        if phase.get("calls", 0) == 0:
            errors.append(f"required phase recorded no samples: {name}")
            continue
        if not phase.get("histogram"):
            errors.append(f"required phase has empty histogram: {name}")
        if not phase.get("by_size"):
            errors.append(f"required phase has no size attribution: {name}")


def cmd_check(args):
    try:
        doc = load(args.report)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL {args.report}: {exc}", file=sys.stderr)
        return 1
    errors = []
    validate(doc, errors)
    if args.require_phases:
        spec = args.require_phases
        required = (DEFAULT_REQUIRED_PHASES if spec == "default"
                    else [p for p in spec.split(",") if p])
        check_required_phases(doc, required, errors)
    if args.max_rss_gb > 0:
        rss_gb = doc.get("rss_high_water_bytes", 0) / 2**30
        if rss_gb > args.max_rss_gb:
            errors.append(f"rss_high_water {rss_gb:.2f}GB exceeds "
                          f"--max-rss-gb={args.max_rss_gb}")
    if errors:
        for e in errors:
            print(f"FAIL {args.report}: {e}", file=sys.stderr)
        return 1
    print(f"OK {args.report}: schema v{doc['version']}, "
          f"scheduler={doc['scheduler']}, jobs={doc['metrics']['jobs']}, "
          f"{len(doc['phases'])} phases")
    return 0


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def cmd_show(args):
    doc = load(args.report)
    m = doc["metrics"]
    cfg = doc["config"]
    print(f"{doc['scheduler']} seed={doc['seed']} "
          f"jobs={cfg['jobs']} racks={cfg['racks']}")
    print(f"  wall {doc['wall_time_sec']:.2f}s  "
          f"rss_hwm {doc['rss_high_water_bytes'] / 2**20:.0f}MB  "
          f"events {m['events_executed']}")
    print(f"  makespan {m['makespan_sec']:.1f}s  "
          f"avg JCT {m['avg_jct_sec']:.1f}s  avg CCT {m['avg_cct_sec']:.1f}s")
    jp = m["jct_percentiles"]
    print(f"  JCT p50/p90/p99/max: {jp['p50']:.1f} {jp['p90']:.1f} "
          f"{jp['p99']:.1f} {jp['max']:.1f} s")
    print(f"  OCS fraction {m['ocs_traffic_fraction']:.3f}  "
          f"ocs/eps/local GB: {m['ocs_gb']:.1f}/{m['eps_gb']:.1f}/"
          f"{m['local_gb']:.1f}")
    f = doc["faults"]
    if any(v for v in f.values()):
        print(f"  faults: {f}")
    phases = [p for p in doc["phases"] if p["calls"] > 0]
    if phases:
        print(f"  {'phase':<20}{'calls':>10}{'total':>10}"
              f"{'p50':>10}{'p99':>10}{'max':>10}")
        for p in sorted(phases, key=lambda p: -p["total_ns"]):
            lat = p["latency_ns"]
            print(f"  {p['name']:<20}{p['calls']:>10}"
                  f"{fmt_ns(p['total_ns']):>10}{fmt_ns(lat['p50']):>10}"
                  f"{fmt_ns(lat['p99']):>10}{fmt_ns(lat['max']):>10}")
            if args.phases:
                for b in p["by_size"]:
                    mean_ns = b["total_ns"] / b["calls"]
                    print(f"    size>={b['size_lo']:<8}{b['calls']:>12} calls"
                          f"{fmt_ns(mean_ns):>12} mean"
                          f"{fmt_ns(b['max_ns']):>12} max")
    return 0


def walk(prefix, value, out):
    if isinstance(value, dict):
        for k, v in sorted(value.items()):
            walk(f"{prefix}.{k}" if prefix else k, v, out)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        out[prefix] = value


def cmd_diff(args):
    a, b = load(args.report_a), load(args.report_b)
    flat_a, flat_b = {}, {}
    # Result metrics and faults only: wall-clock cost, counters, and
    # profiles legitimately differ between bit-identical runs.
    for doc, flat in ((a, flat_a), (b, flat_b)):
        walk("metrics", doc.get("metrics", {}), flat)
        walk("faults", doc.get("faults", {}), flat)
        flat["seed"] = doc.get("seed")
        flat["scheduler#"] = hash(doc.get("scheduler"))
    tol = args.tolerance
    bad = []
    for key in sorted(set(flat_a) | set(flat_b)):
        va, vb = flat_a.get(key), flat_b.get(key)
        if va is None or vb is None:
            bad.append((key, va, vb))
            continue
        if va == vb:
            continue
        denom = max(abs(va), abs(vb))
        if denom == 0 or abs(va - vb) / denom > tol:
            bad.append((key, va, vb))
    if bad:
        for key, va, vb in bad:
            print(f"DIFF {key}: {va} != {vb}")
        if args.expect_diff:
            print(f"EXPECTED-DIFF {args.report_a} != {args.report_b} "
                  f"({len(bad)} fields differ)")
            return 0
        return 1
    if args.expect_diff:
        print(f"UNEXPECTED-MATCH {args.report_a} == {args.report_b}: the "
              f"runs were supposed to differ (e.g. fabric-aware vs legacy "
              f"planner placement delta) but every field matched")
        return 1
    print(f"MATCH {args.report_a} == {args.report_b} "
          f"({len(flat_a)} fields, tolerance={tol})")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="validate a report's schema")
    p_check.add_argument("report")
    p_check.add_argument("--require-phases", default="",
                         help="comma-separated phase names that must have "
                              "samples ('default' = the five scheduler "
                              "passes)")
    p_check.add_argument("--max-rss-gb", type=float, default=0.0,
                         help="fail if the run's peak RSS (VmHWM) exceeds "
                              "this many GiB (0 = no limit); the CI "
                              "scale-smoke memory-regression guard")
    p_check.set_defaults(func=cmd_check)

    p_show = sub.add_parser("show", help="human-readable summary")
    p_show.add_argument("report")
    p_show.add_argument("--phases", action="store_true",
                        help="include per-phase size breakdowns")
    p_show.set_defaults(func=cmd_show)

    p_diff = sub.add_parser("diff", help="compare two reports' metrics")
    p_diff.add_argument("report_a")
    p_diff.add_argument("report_b")
    p_diff.add_argument("--tolerance", type=float, default=0.0,
                        help="relative tolerance (default 0 = exact)")
    p_diff.add_argument("--expect-diff", action="store_true",
                        help="invert the contract: exit 0 (listing the "
                             "differing fields) when the reports differ, "
                             "exit 1 when they are identical — pins that "
                             "an A/B knob actually changed the run")
    p_diff.set_defaults(func=cmd_diff)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
