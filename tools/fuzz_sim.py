#!/usr/bin/env python3
"""Drive the randomized simulation fuzzer (tests/test_fuzz_audit) seed by seed.

Each run invokes the fuzz binary with COSCHED_FUZZ_RUNS=1 and a distinct
COSCHED_FUZZ_SEED_BASE, so every seed gets its own process: one crashing or
invariant-violating configuration cannot mask the seeds after it, and the
failing seed is known exactly. The binary derives the whole configuration
(topology, workload, fault plan, scheduler, thread count) from the seed, runs
it with the invariant auditor armed, and cross-checks serial sharding against
parallel plus the full engine matrix — grouped-vs-reference EPS rates,
incremental-vs-reference scheduler decisions, offer-queue-vs-scan dispatch
(alone and stacked on the all-reference configuration), and all references
together — bit for bit, so every seed exercises the rate, scheduler, and
dispatch engine axes (DESIGN.md sections 9-11).

On failure the full test output — including the auditor's structured dump and
the seed recipe line — is appended to --report (default fuzz_failures.txt) so
CI can upload it as an artifact, and the exit code is non-zero.

Reproduce a failing seed directly:

  COSCHED_FUZZ_RUNS=1 COSCHED_FUZZ_SEED_BASE=<seed> build/tests/test_fuzz_audit

Only the Python standard library is used.
"""

import argparse
import os
import subprocess
import sys

DEFAULT_SEED_BASE = 0xF0222026


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--runs", type=int, default=25,
                    help="number of seeds to fuzz (default 25)")
    ap.add_argument("--build-dir", default="build",
                    help="build directory containing tests/test_fuzz_audit")
    ap.add_argument("--seed-base", type=lambda s: int(s, 0),
                    default=DEFAULT_SEED_BASE,
                    help="first seed; run i uses seed-base + i "
                         f"(default {DEFAULT_SEED_BASE:#x})")
    ap.add_argument("--audit", dest="audit", action="store_true", default=True,
                    help="arm the invariant auditor (default)")
    ap.add_argument("--no-audit", dest="audit", action="store_false",
                    help="disable the auditor (perf triage only)")
    ap.add_argument("--cross-dispatch", dest="cross_dispatch",
                    action="store_true", default=True,
                    help="cross offer-queue vs scan dispatch per seed "
                         "(default)")
    ap.add_argument("--no-cross-dispatch", dest="cross_dispatch",
                    action="store_false",
                    help="skip the dispatch-engine crossing (faster triage "
                         "when a failure is known to be elsewhere)")
    ap.add_argument("--report", default="fuzz_failures.txt",
                    help="file collecting failing seeds and their dumps")
    ap.add_argument("--timeout", type=float, default=300.0,
                    help="per-seed timeout in seconds (default 300)")
    args = ap.parse_args()

    exe = os.path.join(args.build_dir, "tests", "test_fuzz_audit")
    if not os.path.exists(exe):
        sys.exit(f"error: {exe} not found (build the tests first)")

    failures = []
    for i in range(args.runs):
        seed = args.seed_base + i
        env = dict(os.environ)
        env["COSCHED_FUZZ_RUNS"] = "1"
        env["COSCHED_FUZZ_SEED_BASE"] = str(seed)
        env["COSCHED_FUZZ_AUDIT"] = "1" if args.audit else "0"
        env["COSCHED_FUZZ_CROSS_DISPATCH"] = \
            "1" if args.cross_dispatch else "0"
        try:
            proc = subprocess.run([exe], env=env, capture_output=True,
                                  text=True, timeout=args.timeout)
            ok = proc.returncode == 0
            detail = proc.stdout + proc.stderr
        except subprocess.TimeoutExpired as e:
            ok = False
            detail = ((e.stdout or "") + (e.stderr or "") +
                      f"\n*** timed out after {args.timeout:.0f}s\n")
        status = "ok" if ok else "FAIL"
        print(f"[{i + 1:>3}/{args.runs}] seed={seed} {status}", flush=True)
        if not ok:
            failures.append((seed, detail))

    if failures:
        with open(args.report, "a") as f:
            for seed, detail in failures:
                f.write(f"==== seed {seed} ====\n{detail}\n")
        print(f"\n{len(failures)}/{args.runs} seeds failed; "
              f"dumps appended to {args.report}", file=sys.stderr)
        print("reproduce with: COSCHED_FUZZ_RUNS=1 "
              f"COSCHED_FUZZ_SEED_BASE={failures[0][0]} {exe}",
              file=sys.stderr)
        return 1
    print(f"\nall {args.runs} seeds clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
