#!/usr/bin/env python3
"""Check relative links in the repo's Markdown files.

Walks every ``*.md`` under the repository root (skipping build trees and
dot-directories), extracts inline links and images, and verifies that each
*relative* target resolves to a file or directory that actually exists.
External links (http/https/mailto) and pure in-page anchors (``#section``)
are out of scope -- this tool exists so a rename like ``docs/FAULTS.md``
cannot silently strand pointers in README/DESIGN/EXPERIMENTS.

Exit status: 0 when every relative link resolves, 1 otherwise (with one
``file:line: target`` diagnostic per broken link).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target). Reference-style
# definitions ([id]: target) are rare in this repo and intentionally ignored.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_DIRS = {"build", "third_party", ".git", ".cache"}
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        rel = path.relative_to(root)
        if any(part in _SKIP_DIRS or part.startswith(".") for part in rel.parts[:-1]):
            continue
        yield path


def check_file(path: Path, root: Path) -> list[str]:
    errors = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            # Drop a trailing #fragment; anchor existence is not checked.
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = (path.parent / target_path).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                errors.append(
                    f"{path.relative_to(root)}:{lineno}: "
                    f"{target} escapes the repository"
                )
                continue
            if not resolved.exists():
                errors.append(f"{path.relative_to(root)}:{lineno}: {target}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root to scan (default: the tool's parent repo)")
    args = parser.parse_args()

    broken: list[str] = []
    checked = 0
    for md in iter_markdown_files(args.root):
        checked += 1
        broken.extend(check_file(md, args.root))

    if broken:
        print(f"Broken relative links ({len(broken)}):", file=sys.stderr)
        for err in broken:
            print(f"  {err}", file=sys.stderr)
        return 1
    print(f"OK: all relative links resolve across {checked} Markdown files.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
