#!/usr/bin/env python3
"""Run the engine microbenches and maintain BENCH_engine.json.

Two modes:

  run    (default) Execute bench_micro_net, bench_micro_simcore, and
         bench_micro_sched from a build directory, merge the fresh numbers
         with the committed pre-optimization baselines
         (results/bench_*_before.json), compute per-benchmark speedups,
         and write BENCH_engine.json.

         The bench_micro_sched "before" baseline was generated with
         COSCHED_SCHED_BENCH_FORCE_REFERENCE=1, which makes the
         incrementally-named scheduler benchmarks run the reference engine
         — same binary, same names, honest before/after.

  check  Execute the benches with a short --benchmark_min_time and compare
         against the "after" numbers committed in BENCH_engine.json. Exits
         non-zero when a bench crashes or any benchmark regressed by more
         than --max-regression (default 3x). Intended as a CI smoke guard,
         not a precise gate: shared runners are noisy, so the threshold is
         deliberately loose and the CI job is continue-on-error.

Only the Python standard library is used.
"""

import argparse
import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SUITES = {
    "bench_micro_net": "results/bench_net_before.json",
    "bench_micro_simcore": "results/bench_simcore_before.json",
    "bench_micro_sched": "results/bench_sched_before.json",
    "bench_micro_dispatch": "results/bench_dispatch_before.json",
}

_NS_PER = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def run_bench(build_dir, name, min_time, bench_filter=""):
    exe = os.path.join(build_dir, "bench", name)
    if not os.path.exists(exe):
        sys.exit(f"error: {exe} not found (build the benches first)")
    cmd = [exe, f"--benchmark_min_time={min_time}", "--benchmark_format=json"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        sys.exit(f"error: {name} exited with {proc.returncode}")
    return json.loads(proc.stdout)


def extract(report):
    """Map benchmark name -> normalized numbers, skipping aggregates."""
    out = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        if name.endswith("_BigO") or name.endswith("_RMS"):
            continue
        unit = _NS_PER.get(b.get("time_unit", "ns"), 1.0)
        entry = {"real_time_ns": b["real_time"] * unit}
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        out[name] = entry
    return out


def load_before(path):
    full = os.path.join(REPO, path)
    if not os.path.exists(full):
        return {}
    with open(full) as f:
        return extract(json.load(f))


def speedups(before, after):
    out = {}
    for name, b in before.items():
        a = after.get(name)
        if a is None or a["real_time_ns"] <= 0:
            continue
        out[name] = round(b["real_time_ns"] / a["real_time_ns"], 3)
    return out


def cmd_run(args):
    doc = {
        "comment": "Engine micro-benchmark record. 'before' is the "
                   "pre-optimization engine (committed baselines in "
                   "results/); 'speedup' is before/after wall time. "
                   "Regenerate with tools/bench_engine.py run.",
        "min_time_sec": args.min_time,
        "suites": {},
    }
    for suite, before_path in SUITES.items():
        after = extract(
            run_bench(args.build_dir, suite, args.min_time, args.filter))
        before = load_before(before_path)
        doc["suites"][suite] = {
            "before": before,
            "after": after,
            "speedup": speedups(before, after),
        }
        print(f"{suite}: {len(after)} benchmarks", file=sys.stderr)
    # In-binary before/after: the reference rate engine ran in the same
    # process, so this ratio is immune to machine-speed differences.
    net = doc["suites"].get("bench_micro_net", {}).get("after", {})
    inbin = {}
    for arg in ("5000", "8192"):
        new = net.get(f"BM_EpsHighChurnReplan/{arg}")
        old = net.get(f"BM_EpsHighChurnReplanReference/{arg}")
        if new and old and new["real_time_ns"] > 0:
            inbin[arg] = round(old["real_time_ns"] / new["real_time_ns"], 3)
    doc["eps_replan_speedup_vs_reference_engine"] = inbin
    # Same in-binary trick for the scheduler engines: incremental vs
    # reference full-run dispatch cost and one SBS exploration pass.
    sched = doc["suites"].get("bench_micro_sched", {}).get("after", {})
    sched_inbin = {}
    for arg in ("200", "500"):
        new = sched.get(f"BM_SchedDispatchRun/{arg}")
        old = sched.get(f"BM_SchedDispatchRunReference/{arg}")
        if new and old and new["real_time_ns"] > 0:
            sched_inbin[arg] = round(
                old["real_time_ns"] / new["real_time_ns"], 3)
    new = sched.get("BM_SbsExplorePass")
    old = sched.get("BM_SbsExplorePassReference")
    if new and old and new["real_time_ns"] > 0:
        sched_inbin["sbs_explore"] = round(
            old["real_time_ns"] / new["real_time_ns"], 3)
    doc["sched_dispatch_speedup_vs_reference_engine"] = sched_inbin
    # In-binary dispatch-engine pair: driver.dispatch self time (profiler
    # section, manual-timed) under offer-queue vs scan at 10k jobs. The
    # ISSUE 8 acceptance bar is >= 3x at 10k jobs.
    disp = doc["suites"].get("bench_micro_dispatch", {}).get("after", {})
    disp_inbin = {}
    for arg in ("10000/60", "10000/256"):
        new = disp.get(f"BM_DriverDispatchSelfTime/{arg}/iterations:1/"
                       "manual_time")
        old = disp.get(f"BM_DriverDispatchSelfTimeScan/{arg}/iterations:1/"
                       "manual_time")
        if new and old and new["real_time_ns"] > 0:
            disp_inbin[arg] = round(
                old["real_time_ns"] / new["real_time_ns"], 3)
    for arg in ("60", "256", "1024"):
        new = disp.get(f"BM_OfferQueueWave/{arg}")
        old = disp.get(f"BM_FullScanWave/{arg}")
        if new and old and new["real_time_ns"] > 0:
            disp_inbin[f"wave/{arg}"] = round(
                old["real_time_ns"] / new["real_time_ns"], 3)
    doc["driver_dispatch_speedup_vs_scan_engine"] = disp_inbin
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)


def cmd_check(args):
    with open(args.baseline) as f:
        baseline = json.load(f)
    failures = []
    for suite in SUITES:
        fresh = extract(
            run_bench(args.build_dir, suite, args.min_time, args.filter))
        committed = baseline.get("suites", {}).get(suite, {}).get("after", {})
        for name, ref in committed.items():
            cur = fresh.get(name)
            if cur is None:
                # With an explicit --filter the committed entries outside
                # the filter are intentionally absent, not regressions.
                if not args.filter:
                    failures.append(f"{suite}: {name} missing from fresh run")
                continue
            ratio = cur["real_time_ns"] / max(ref["real_time_ns"], 1e-9)
            status = "FAIL" if ratio > args.max_regression else "ok"
            print(f"[{status}] {name}: {ratio:.2f}x committed time")
            if ratio > args.max_regression:
                failures.append(
                    f"{suite}: {name} is {ratio:.2f}x slower than the "
                    f"committed number (limit {args.max_regression}x)")
    if failures:
        print("\n".join(failures), file=sys.stderr)
        sys.exit(1)
    print("bench check passed")


def main():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("mode", nargs="?", default="run", choices=["run", "check"])
    p.add_argument("--build-dir", default=os.path.join(REPO, "build"))
    p.add_argument("--out", default=os.path.join(REPO, "BENCH_engine.json"))
    p.add_argument("--baseline",
                   default=os.path.join(REPO, "BENCH_engine.json"))
    p.add_argument("--min-time", default="0.2",
                   help="--benchmark_min_time per bench binary")
    p.add_argument("--filter", default="",
                   help="--benchmark_filter regex passed to every bench "
                        "(check mode skips committed entries it excludes; "
                        "use '-SelfTime' to drop the full-run dispatch "
                        "pairs on time-constrained runners)")
    p.add_argument("--max-regression", type=float, default=3.0)
    args = p.parse_args()
    if args.mode == "run":
        cmd_run(args)
    else:
        cmd_check(args)


if __name__ == "__main__":
    main()
