// Scheduler-engine equivalence regression (part of `ctest -L determinism`).
//
// The incremental decision engine (cached OCAS candidate lists, memoized
// SBS explorations, epoch-cached no-grant answers) must reproduce the
// retained reference engine *bit for bit*: identical RunMetrics, identical
// container-grant sequences (same task, same rack, same OCAS class, in the
// same order), and identical PSRT/SBS placement decisions — across
// randomized topologies, fault plans (container kills that requeue tasks
// mid-wave, T_rem noise that makes availability estimates draw-order
// sensitive), thread counts, and the churn edge cases: a task killed and
// re-granted at the same sim instant, jobs retiring mid-dispatch-wave, and
// jobs with zero reduces. Any divergence here means the fast path changed
// simulation results.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "faults/fault_spec.h"
#include "obs/observability.h"
#include "sched/coscheduler.h"
#include "sim/experiment.h"

namespace cosched {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_runs_bitwise_equal(const std::vector<RunMetrics>& a,
                               const std::vector<RunMetrics>& b,
                               const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t rep = 0; rep < a.size(); ++rep) {
    const std::string at = where + " rep" + std::to_string(rep);
    EXPECT_EQ(bits(a[rep].makespan.sec()), bits(b[rep].makespan.sec())) << at;
    EXPECT_EQ(a[rep].ocs_bytes.in_bytes(), b[rep].ocs_bytes.in_bytes()) << at;
    EXPECT_EQ(a[rep].eps_bytes.in_bytes(), b[rep].eps_bytes.in_bytes()) << at;
    EXPECT_EQ(a[rep].local_bytes.in_bytes(), b[rep].local_bytes.in_bytes())
        << at;
    EXPECT_EQ(a[rep].events_executed, b[rep].events_executed) << at;
    ASSERT_EQ(a[rep].jobs.size(), b[rep].jobs.size()) << at;
    for (std::size_t j = 0; j < a[rep].jobs.size(); ++j) {
      const std::string jat = at + " job#" + std::to_string(j);
      EXPECT_EQ(bits(a[rep].jobs[j].jct.sec()), bits(b[rep].jobs[j].jct.sec()))
          << jat;
      EXPECT_EQ(bits(a[rep].jobs[j].cct.sec()), bits(b[rep].jobs[j].cct.sec()))
          << jat;
      EXPECT_EQ(bits(a[rep].jobs[j].first_reduce_placement.sec()),
                bits(b[rep].jobs[j].first_reduce_placement.sec()))
          << jat;
    }
  }
}

/// Grant-for-grant comparison: the incremental engine must pick the same
/// task for the same container under the same OCAS class, in the same
/// order — not just land on the same aggregate metrics.
void expect_decisions_equal(const DecisionLog& ref, const DecisionLog& inc,
                            const std::string& where) {
  ASSERT_EQ(ref.grants().size(), inc.grants().size()) << where;
  for (std::size_t i = 0; i < ref.grants().size(); ++i) {
    const GrantDecision& a = ref.grants()[i];
    const GrantDecision& b = inc.grants()[i];
    const std::string at = where + " grant#" + std::to_string(i);
    EXPECT_EQ(bits(a.at.sec()), bits(b.at.sec())) << at;
    EXPECT_EQ(a.rack, b.rack) << at;
    EXPECT_EQ(a.job, b.job) << at;
    EXPECT_EQ(a.task, b.task) << at;
    EXPECT_EQ(a.user, b.user) << at;
    EXPECT_EQ(a.is_map, b.is_map) << at;
    EXPECT_EQ(a.ocas_class, b.ocas_class) << at;
  }
  ASSERT_EQ(ref.placements().size(), inc.placements().size()) << where;
  for (std::size_t i = 0; i < ref.placements().size(); ++i) {
    const PlacementDecision& a = ref.placements()[i];
    const PlacementDecision& b = inc.placements()[i];
    const std::string at = where + " placement#" + std::to_string(i);
    EXPECT_EQ(bits(a.at.sec()), bits(b.at.sec())) << at;
    EXPECT_EQ(a.job, b.job) << at;
    EXPECT_EQ(a.r_map, b.r_map) << at;
    EXPECT_EQ(a.r_red, b.r_red) << at;
    EXPECT_EQ(a.d, b.d) << at;
    ASSERT_EQ(a.plan.size(), b.plan.size()) << at;
    for (std::size_t k = 0; k < a.plan.size(); ++k) {
      EXPECT_EQ(a.plan[k].first, b.plan[k].first) << at;
      EXPECT_EQ(a.plan[k].second, b.plan[k].second) << at;
    }
    EXPECT_EQ(bits(a.planned_cct.sec()), bits(b.planned_cct.sec())) << at;
    EXPECT_EQ(bits(a.t_max.sec()), bits(b.t_max.sec())) << at;
    EXPECT_EQ(bits(a.score_sec), bits(b.score_sec)) << at;
    EXPECT_EQ(a.candidates, b.candidates) << at;
  }
}

ExperimentConfig base_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.sim.topo.num_racks = 10;
  cfg.sim.topo.servers_per_rack = 2;
  cfg.sim.topo.slots_per_server = 6;
  cfg.workload.num_jobs = 16;
  cfg.workload.num_users = 4;
  cfg.workload.arrival_window = Duration::minutes(2);
  cfg.workload.max_maps = 40;
  cfg.workload.max_reduces = 8;
  cfg.workload.heavy_input_mu = 2.5;
  cfg.workload.heavy_input_sigma = 0.8;
  cfg.workload.max_input = DataSize::gigabytes(40);
  cfg.repetitions = 2;
  cfg.base_seed = seed;
  cfg.sim.audit = true;  // cache-coherence checks armed on every case
  return cfg;
}

std::vector<RunMetrics> run_with_engine(ExperimentConfig cfg,
                                        const std::string& scheduler,
                                        SchedEngine engine,
                                        std::int32_t threads = 1) {
  cfg.sim.sched_engine = engine;
  ParallelExperimentConfig par;
  par.threads = threads;
  return run_repetitions(cfg, make_scheduler_factory(scheduler), par);
}

FaultPlan parse_plan(const std::string& spec) {
  std::string error;
  const std::optional<FaultPlan> plan = FaultPlan::parse(spec, &error);
  EXPECT_TRUE(plan.has_value()) << spec << ": " << error;
  return plan.value_or(FaultPlan{});
}

TEST(SchedEquivalence, RandomizedTopologiesMatchBitForBit) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExperimentConfig cfg = base_config(seed);
    cfg.sim.topo.num_racks = static_cast<std::int32_t>(4 + seed * 3);
    cfg.workload.shuffle_heavy_fraction = 0.1 * static_cast<double>(seed);
    const auto ref =
        run_with_engine(cfg, "coscheduler", SchedEngine::kReference);
    const auto inc =
        run_with_engine(cfg, "coscheduler", SchedEngine::kIncremental);
    expect_runs_bitwise_equal(ref, inc, "seed" + std::to_string(seed));
  }
}

TEST(SchedEquivalence, AblationModesMatchBitForBit) {
  // The ablation schedulers share CoScheduler's engine code with different
  // Options — "ocas" has no reduce planning at all (class-5 only), so the
  // reduce-candidate list does real work there.
  for (const char* sched : {"mts+ocas", "ocas"}) {
    SCOPED_TRACE(sched);
    const ExperimentConfig cfg = base_config(7);
    const auto ref = run_with_engine(cfg, sched, SchedEngine::kReference);
    const auto inc = run_with_engine(cfg, sched, SchedEngine::kIncremental);
    expect_runs_bitwise_equal(ref, inc, sched);
  }
}

TEST(SchedEquivalence, GrantSequencesIdenticalGrantForGrant) {
  ExperimentConfig cfg = base_config(11);
  cfg.repetitions = 1;

  Observability ref_obs;
  ExperimentConfig ref_cfg = cfg;
  ref_cfg.sim.obs = &ref_obs;
  ref_cfg.sim.sched_engine = SchedEngine::kReference;
  const RunMetrics ref =
      run_once(ref_cfg, make_scheduler_factory("coscheduler"), 0);

  Observability inc_obs;
  ExperimentConfig inc_cfg = cfg;
  inc_cfg.sim.obs = &inc_obs;
  inc_cfg.sim.sched_engine = SchedEngine::kIncremental;
  const RunMetrics inc =
      run_once(inc_cfg, make_scheduler_factory("coscheduler"), 0);

  EXPECT_EQ(bits(ref.makespan.sec()), bits(inc.makespan.sec()));
  EXPECT_GT(ref_obs.decisions.grants().size(), 0u);
  expect_decisions_equal(ref_obs.decisions, inc_obs.decisions, "grants");
}

TEST(SchedEquivalence, ContainerKillChurnMatchesBitForBit) {
  // Kills roll tasks back to pending and can re-grant them within the same
  // dispatch instant — exercising candidate re-insertion (on_task_requeued)
  // and the no-grant epoch cache under churn.
  ExperimentConfig cfg = base_config(13);
  cfg.sim.faults = parse_plan("container-kill:p=0.09,straggler:p=0.2:slow=3");
  const auto ref = run_with_engine(cfg, "coscheduler", SchedEngine::kReference);
  const auto inc =
      run_with_engine(cfg, "coscheduler", SchedEngine::kIncremental);
  expect_runs_bitwise_equal(ref, inc, "kill-churn");
}

TEST(SchedEquivalence, NoisyAvailabilityMatchesBitForBit) {
  // T_rem noise draws lazily per task from one RNG stream, so estimate
  // values depend on the order of first touches: this pins the incremental
  // engine's reference-order replay path in explore_schedules_incremental.
  ExperimentConfig cfg = base_config(17);
  cfg.sim.trem_error_rate = 0.3;
  const auto ref = run_with_engine(cfg, "coscheduler", SchedEngine::kReference);
  const auto inc =
      run_with_engine(cfg, "coscheduler", SchedEngine::kIncremental);
  expect_runs_bitwise_equal(ref, inc, "trem-noise");

  // Noise *and* kills together: requeued tasks redraw factors, so any
  // reordering of oracle queries would cascade.
  cfg.sim.faults = parse_plan("container-kill:p=0.06,trem-noise:pct=25");
  const auto ref2 =
      run_with_engine(cfg, "coscheduler", SchedEngine::kReference);
  const auto inc2 =
      run_with_engine(cfg, "coscheduler", SchedEngine::kIncremental);
  expect_runs_bitwise_equal(ref2, inc2, "trem-noise+kills");
}

TEST(SchedEquivalence, OutageAndDeadlockRecoveryMatchesBitForBit) {
  // OCS outages force the deadlock breaker's clear_reduce_plan path on
  // saturated topologies (on_reduce_plan_cleared), plus flow evictions.
  ExperimentConfig cfg = base_config(19);
  cfg.sim.topo.num_racks = 4;
  cfg.sim.topo.servers_per_rack = 1;
  cfg.sim.topo.slots_per_server = 4;
  cfg.workload.num_jobs = 12;
  cfg.workload.shuffle_heavy_fraction = 0.6;
  cfg.sim.faults = parse_plan("ocs-outage:at=20s:dur=60s");
  const auto ref = run_with_engine(cfg, "coscheduler", SchedEngine::kReference);
  const auto inc =
      run_with_engine(cfg, "coscheduler", SchedEngine::kIncremental);
  expect_runs_bitwise_equal(ref, inc, "outage");
}

TEST(SchedEquivalence, ZeroReduceJobsMatchBitForBit) {
  // Map-only jobs never enter the reduce-candidate list and retire straight
  // from on_maps_completed — the retirement edge case where a job completes
  // inside the same event that finished its last map.
  ExperimentConfig cfg = base_config(23);
  cfg.workload.max_reduces = 1;  // generator draws reduces in [0, max]
  cfg.workload.num_jobs = 20;
  const auto ref = run_with_engine(cfg, "coscheduler", SchedEngine::kReference);
  const auto inc =
      run_with_engine(cfg, "coscheduler", SchedEngine::kIncremental);
  expect_runs_bitwise_equal(ref, inc, "zero-reduce");
}

TEST(SchedEquivalence, IncrementalEngineIsThreadInvariant) {
  // The determinism contract extends to the incremental engine: parallel
  // sharding may only change wall clock, never results.
  ExperimentConfig cfg = base_config(29);
  cfg.repetitions = 3;
  const auto serial =
      run_with_engine(cfg, "coscheduler", SchedEngine::kIncremental);
  const auto sharded = run_with_engine(cfg, "coscheduler",
                                       SchedEngine::kIncremental,
                                       /*threads=*/3);
  expect_runs_bitwise_equal(serial, sharded, "threads");
}

TEST(PsrtEquivalence, FastPathBitEqualToReferenceOnRandomInputs) {
  // The incremental engine's PSRT enumeration skips the m x R_red traffic
  // matrix entirely (extremal row/column collapse, DESIGN.md §11). That is
  // only legal if it reproduces the reference candidate list bit for bit:
  // same candidate count, same d vectors, same CCT lower-bound bits.
  Rng rng(0x95A7);
  const DataSize te = DataSize::gigabytes(1.125);  // the paper's T_e
  const Bandwidth ocs = Bandwidth::gbps(100.0);
  const Duration delta = Duration::milliseconds(10.0);
  for (int trial = 0; trial < 200; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 14));
    std::vector<DataSize> sm(m);
    for (auto& s : sm) {
      // Every per-rack output clears T_e (PSRT's precondition), spanning
      // ties, near-threshold values, and multi-hundred-GB elephants.
      s = te + DataSize::megabytes(rng.uniform_int(0, 300'000));
      if (rng.uniform_int(0, 4) == 0) s = te;  // exact-threshold ties
    }
    const auto reduces = static_cast<std::int32_t>(rng.uniform_int(1, 40));
    const auto racks = static_cast<std::int32_t>(rng.uniform_int(2, 64));
    const auto ref =
        possible_reduce_schedules(sm, reduces, te, ocs, delta, racks);
    const auto fast = possible_reduce_schedules_incremental(
        sm, reduces, te, ocs, delta, racks);
    ASSERT_EQ(ref.size(), fast.size()) << "trial " << trial;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i].d, fast[i].d) << "trial " << trial << " cand " << i;
      ASSERT_EQ(bits(ref[i].cct.sec()), bits(fast[i].cct.sec()))
          << "trial " << trial << " cand " << i << " d.size "
          << ref[i].d.size();
    }
  }
}

TEST(SchedEquivalence, RetiredJobsFreeSchedulerState) {
  // After a full run every job has retired, so the incremental engine's
  // per-job state must be empty — audit_invariants against an empty active
  // set proves on_job_completed actually freed everything (no leaks hiding
  // behind "cache coherent while jobs were alive").
  ExperimentConfig cfg = base_config(31);
  cfg.repetitions = 1;
  auto sched = std::make_unique<CoScheduler>();
  CoScheduler* raw = sched.get();
  Rng workload_rng = Rng(cfg.base_seed).fork(1);
  SimConfig sim = cfg.sim;
  sim.seed = cfg.base_seed;
  SimulationDriver driver(sim, generate_workload(cfg.workload, workload_rng),
                          std::move(sched));
  (void)driver.run();
  EXPECT_EQ(raw->sched_engine(), SchedEngine::kIncremental);
  EXPECT_EQ(raw->audit_invariants({}), "");
}

}  // namespace
}  // namespace cosched
