// The fault-injection subsystem (ctest -L faults): the spec grammar, the
// determinism contract (fixed plans are reproducible and thread-count
// invariant; empty plans change nothing), and the recovery semantics —
// re-executed maps regenerate shuffle bytes exactly once, killed reduces
// release their containers, and an OCS outage mid-coflow degrades onto the
// EPS without losing bytes.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/job.h"
#include "faults/fault_injector.h"
#include "faults/fault_spec.h"
#include "obs/observability.h"
#include "sim/experiment.h"

namespace cosched {
namespace {

// ---- spec grammar ----------------------------------------------------------

FaultPlan parse_ok(const std::string& spec) {
  std::string error;
  const std::optional<FaultPlan> plan = FaultPlan::parse(spec, &error);
  EXPECT_TRUE(plan.has_value()) << spec << ": " << error;
  return plan.value_or(FaultPlan{});
}

std::string parse_error(const std::string& spec) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse(spec, &error).has_value()) << spec;
  return error;
}

TEST(FaultSpec, EmptySpecIsEmptyPlan) {
  const FaultPlan plan = parse_ok("");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.to_spec(), "");
}

TEST(FaultSpec, ParsesEveryClause) {
  const FaultPlan plan = parse_ok(
      "straggler:p=0.05:slow=2.0,container-kill:p=0.01,"
      "ocs-outage:at=300s:dur=60s,reconfig-jitter:pct=50,trem-noise:pct=30");
  ASSERT_TRUE(plan.straggler.has_value());
  EXPECT_DOUBLE_EQ(plan.straggler->p, 0.05);
  EXPECT_DOUBLE_EQ(plan.straggler->slow, 2.0);
  ASSERT_TRUE(plan.container_kill.has_value());
  EXPECT_DOUBLE_EQ(plan.container_kill->p, 0.01);
  ASSERT_EQ(plan.ocs_outages.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.ocs_outages[0].at.sec(), 300.0);
  EXPECT_DOUBLE_EQ(plan.ocs_outages[0].dur.sec(), 60.0);
  ASSERT_TRUE(plan.reconfig_jitter.has_value());
  EXPECT_DOUBLE_EQ(plan.reconfig_jitter->pct, 0.5);
  ASSERT_TRUE(plan.trem_noise.has_value());
  EXPECT_DOUBLE_EQ(plan.trem_noise->rate, 0.3);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultSpec, DurationsAcceptBareSeconds) {
  const FaultPlan plan = parse_ok("ocs-outage:at=300:dur=60");
  ASSERT_EQ(plan.ocs_outages.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.ocs_outages[0].at.sec(), 300.0);
  EXPECT_DOUBLE_EQ(plan.ocs_outages[0].dur.sec(), 60.0);
}

TEST(FaultSpec, OutagesAreRepeatable) {
  const FaultPlan plan =
      parse_ok("ocs-outage:at=10s:dur=5s,ocs-outage:at=100s:dur=20s");
  ASSERT_EQ(plan.ocs_outages.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.ocs_outages[1].at.sec(), 100.0);
}

TEST(FaultSpec, RoundTripsThroughToSpec) {
  const std::string spec =
      "straggler:p=0.1:slow=3,container-kill:p=0.02,"
      "ocs-outage:at=40s:dur=25s,reconfig-jitter:pct=50,trem-noise:pct=20";
  const FaultPlan plan = parse_ok(spec);
  const FaultPlan reparsed = parse_ok(plan.to_spec());
  EXPECT_EQ(plan.to_spec(), reparsed.to_spec());
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_NE(parse_error("bogus-fault:p=0.1"), "");
  EXPECT_NE(parse_error("straggler:p=1.5"), "");        // p out of range
  EXPECT_NE(parse_error("straggler:p=0.1:slow=0.5"), "");  // slow <= 1
  EXPECT_NE(parse_error("container-kill:p=1.0"), "");   // p must be < 1
  EXPECT_NE(parse_error("ocs-outage:at=10s"), "");      // missing dur
  EXPECT_NE(parse_error("ocs-outage:at=10s:dur=0s"), "");  // dur <= 0
  EXPECT_NE(parse_error("ocs-outage:at=-5s:dur=10s"), "");
  EXPECT_NE(parse_error("reconfig-jitter:pct=0"), "");
  EXPECT_NE(parse_error("reconfig-jitter:pct=150"), "");
  EXPECT_NE(parse_error("trem-noise:pct=-1"), "");
  EXPECT_NE(parse_error("straggler:p=abc"), "");
  EXPECT_NE(parse_error("straggler:p"), "");
  EXPECT_NE(parse_error("straggler:p=0.1,straggler:p=0.2"), "");  // dup
}

TEST(FaultSpec, TremErrorOrPrefersTheClause) {
  EXPECT_DOUBLE_EQ(FaultPlan{}.trem_error_or(0.25), 0.25);
  EXPECT_DOUBLE_EQ(parse_ok("trem-noise:pct=30").trem_error_or(0.25), 0.3);
}

// ---- injector determinism --------------------------------------------------

TEST(FaultInjector, DrawsAreReproducibleAcrossInstances) {
  const FaultPlan plan = parse_ok(
      "straggler:p=0.5:slow=2,container-kill:p=0.5,reconfig-jitter:pct=50");
  FaultInjector a(plan, 1234);
  FaultInjector b(plan, 1234);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.draw_straggler_multiplier()),
              std::bit_cast<std::uint64_t>(b.draw_straggler_multiplier()));
    EXPECT_EQ(a.draw_kill_point(), b.draw_kill_point());
    const Duration da = a.jittered_reconfig_delay(Duration::seconds(0.01));
    const Duration db = b.jittered_reconfig_delay(Duration::seconds(0.01));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(da.sec()),
              std::bit_cast<std::uint64_t>(db.sec()));
  }
  EXPECT_EQ(a.stats().stragglers, b.stats().stragglers);
}

TEST(FaultInjector, StreamsAreIndependent) {
  // Consuming one fault family's stream must not shift another family's
  // draws — the property that keeps a plan's families composable.
  const FaultPlan plan = parse_ok("straggler:p=0.5:slow=2,container-kill:p=0.5");
  FaultInjector a(plan, 99);
  FaultInjector b(plan, 99);
  for (int i = 0; i < 64; ++i) (void)a.draw_straggler_multiplier();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.draw_kill_point(), b.draw_kill_point());
  }
}

// ---- run-level contracts ---------------------------------------------------

ExperimentConfig small_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.sim.topo.num_racks = 12;
  cfg.sim.topo.servers_per_rack = 2;
  cfg.sim.topo.slots_per_server = 10;
  cfg.workload.num_jobs = 18;
  cfg.workload.num_users = 4;
  cfg.workload.arrival_window = Duration::minutes(3);
  cfg.workload.max_maps = 60;
  cfg.workload.max_reduces = 8;
  cfg.workload.heavy_input_mu = 2.5;
  cfg.workload.heavy_input_sigma = 0.8;
  cfg.workload.max_input = DataSize::gigabytes(50);
  cfg.repetitions = 2;
  cfg.base_seed = seed;
  return cfg;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_run_bitwise_equal(const RunMetrics& a, const RunMetrics& b,
                              const std::string& where) {
  EXPECT_EQ(bits(a.makespan.sec()), bits(b.makespan.sec())) << where;
  EXPECT_EQ(a.ocs_bytes.in_bytes(), b.ocs_bytes.in_bytes()) << where;
  EXPECT_EQ(a.eps_bytes.in_bytes(), b.eps_bytes.in_bytes()) << where;
  EXPECT_EQ(a.local_bytes.in_bytes(), b.local_bytes.in_bytes()) << where;
  EXPECT_EQ(a.events_executed, b.events_executed) << where;
  EXPECT_EQ(a.faults.stragglers, b.faults.stragglers) << where;
  EXPECT_EQ(a.faults.maps_killed, b.faults.maps_killed) << where;
  EXPECT_EQ(a.faults.reduces_killed, b.faults.reduces_killed) << where;
  EXPECT_EQ(a.faults.flows_evicted, b.faults.flows_evicted) << where;
  ASSERT_EQ(a.jobs.size(), b.jobs.size()) << where;
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(bits(a.jobs[j].jct.sec()), bits(b.jobs[j].jct.sec()))
        << where << " job#" << j;
    EXPECT_EQ(bits(a.jobs[j].cct.sec()), bits(b.jobs[j].cct.sec()))
        << where << " job#" << j;
    EXPECT_EQ(a.jobs[j].shuffle_bytes.in_bytes(),
              b.jobs[j].shuffle_bytes.in_bytes())
        << where << " job#" << j;
  }
}

// A plan exercising every fault family at rates high enough to fire in the
// small config.
const char* kFullSpec =
    "straggler:p=0.2:slow=2,container-kill:p=0.1,"
    "ocs-outage:at=40s:dur=30s,reconfig-jitter:pct=50,trem-noise:pct=20";

TEST(FaultRuns, ExplicitEmptyPlanMatchesDefault) {
  const ExperimentConfig base = small_config(42);
  ExperimentConfig with_empty = base;
  with_empty.sim.faults = parse_ok("");
  for (const std::string name : {"fair", "coscheduler"}) {
    const SchedulerFactory factory = make_scheduler_factory(name);
    const std::vector<RunMetrics> a = run_repetitions(base, factory);
    const std::vector<RunMetrics> b = run_repetitions(with_empty, factory);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t rep = 0; rep < a.size(); ++rep) {
      expect_run_bitwise_equal(a[rep], b[rep], name + " (empty plan)");
      EXPECT_EQ(a[rep].faults.tasks_killed(), 0);
      EXPECT_EQ(a[rep].faults.stragglers, 0);
      EXPECT_EQ(a[rep].faults.flows_evicted, 0);
    }
  }
}

TEST(FaultRuns, FixedPlanRerunsAreByteIdentical) {
  ExperimentConfig cfg = small_config(7);
  cfg.sim.faults = parse_ok(kFullSpec);
  for (const std::string name : {"fair", "corral", "coscheduler"}) {
    const SchedulerFactory factory = make_scheduler_factory(name);
    const std::vector<RunMetrics> first = run_repetitions(cfg, factory);
    const std::vector<RunMetrics> second = run_repetitions(cfg, factory);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t rep = 0; rep < first.size(); ++rep) {
      expect_run_bitwise_equal(first[rep], second[rep],
                               name + " rep" + std::to_string(rep));
    }
  }
}

TEST(FaultRuns, FixedPlanIsThreadCountInvariant) {
  ExperimentConfig cfg = small_config(11);
  cfg.repetitions = 3;
  cfg.sim.faults = parse_ok(kFullSpec);
  ParallelExperimentConfig par;
  par.threads = 4;
  const SchedulerFactory factory = make_scheduler_factory("coscheduler");
  const std::vector<RunMetrics> serial = run_repetitions(cfg, factory);
  const std::vector<RunMetrics> parallel = run_repetitions(cfg, factory, par);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t rep = 0; rep < serial.size(); ++rep) {
    expect_run_bitwise_equal(serial[rep], parallel[rep],
                             "threads=4 rep" + std::to_string(rep));
  }
}

TEST(FaultRuns, TremNoiseClauseMatchesLegacyKnobBitwise) {
  ExperimentConfig legacy = small_config(5);
  legacy.sim.trem_error_rate = 0.3;
  ExperimentConfig via_faults = small_config(5);
  via_faults.sim.faults = parse_ok("trem-noise:pct=30");
  const SchedulerFactory factory = make_scheduler_factory("coscheduler");
  const std::vector<RunMetrics> a = run_repetitions(legacy, factory);
  const std::vector<RunMetrics> b = run_repetitions(via_faults, factory);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t rep = 0; rep < a.size(); ++rep) {
    expect_run_bitwise_equal(a[rep], b[rep],
                             "trem-noise rep" + std::to_string(rep));
  }
}

// The placement-accounting half of re-execution, at the Job level: a
// requeued map rolls back maps_placed_ and is findable by both pending-map
// lookups again, and completing the retry credits its output exactly once.
TEST(FaultRecovery, RequeuedMapIsSchedulableAgainAndCreditsOutputOnce) {
  JobSpec spec;
  spec.id = JobId{1};
  spec.user = UserId{0};
  spec.num_maps = 2;
  spec.num_reduces = 1;
  spec.input_size = DataSize::gigabytes(2);
  spec.map_durations = {Duration::seconds(10), Duration::seconds(10)};
  spec.reduce_durations = {Duration::seconds(5)};
  IdAllocator<TaskId> ids;
  Job job(spec, DataSize::gigabytes(1), ids, CoflowId{1});
  job.set_block_placement(
      {BlockReplicas{{RackId{0}}}, BlockReplicas{{RackId{1}}}});

  Task* m0 = job.next_pending_map_local(RackId{0});
  ASSERT_NE(m0, nullptr);
  m0->place(RackId{0}, NodeId{0}, SimTime::zero());
  job.note_map_placed(RackId{0});
  EXPECT_EQ(job.maps_placed(), 1);

  // The attempt dies; the task must be schedulable again on its replica
  // rack and through the any-rack cursor (which had already moved past it).
  ASSERT_NE(job.next_pending_map_any(), nullptr);  // advance cursor to m1
  m0->reset_for_retry();
  job.requeue_map(m0->index());
  EXPECT_EQ(job.maps_placed(), 0);
  EXPECT_EQ(m0->attempt(), 2);
  EXPECT_EQ(job.next_pending_map_local(RackId{0}), m0);
  EXPECT_EQ(job.next_pending_map_any(), m0);

  // Retry runs to completion: output credited exactly once.
  m0->place(RackId{1}, NodeId{2}, SimTime::seconds(1));
  job.note_map_placed(RackId{1});
  m0->complete(SimTime::seconds(11));
  job.note_map_completed(RackId{1}, spec.map_output_size());
  EXPECT_EQ(job.maps_completed(), 1);
  DataSize credited;
  for (const auto& [rack, output] : job.map_output_by_rack()) {
    credited += output;
  }
  EXPECT_EQ(credited.in_bytes(), spec.map_output_size().in_bytes());
}

// And the same for a reduce: requeueing rolls back the per-rack placement
// count (what re-opens the slot in OCAS's reduce plan).
TEST(FaultRecovery, RequeuedReduceRollsBackPerRackPlacement) {
  JobSpec spec;
  spec.id = JobId{2};
  spec.user = UserId{0};
  spec.num_maps = 1;
  spec.num_reduces = 2;
  spec.input_size = DataSize::gigabytes(2);
  spec.map_durations = {Duration::seconds(10)};
  spec.reduce_durations = {Duration::seconds(5), Duration::seconds(5)};
  IdAllocator<TaskId> ids;
  Job job(spec, DataSize::gigabytes(1), ids, CoflowId{2});

  Task* r0 = job.next_pending_reduce();
  ASSERT_NE(r0, nullptr);
  r0->place(RackId{3}, NodeId{30}, SimTime::zero());
  job.note_reduce_placed(RackId{3});
  EXPECT_EQ(job.reduces_placed(), 1);
  EXPECT_EQ(job.reduce_placed_by_rack().at(RackId{3}), 1);

  r0->reset_for_retry();
  job.requeue_reduce(r0->index(), RackId{3});
  EXPECT_EQ(job.reduces_placed(), 0);
  EXPECT_EQ(job.reduce_placed_by_rack().at(RackId{3}), 0);
  EXPECT_FALSE(job.all_reduces_placed());
  EXPECT_EQ(job.next_pending_reduce(), r0);
}

// Re-executed maps regenerate their output exactly once, end to end: under
// an aggressive kill plan every job's credited map output still equals the
// fault-free run's — a lost completion or a double-count would shift it by
// at least one map's output. (Shuffle *demand* may legitimately grow when a
// killed reduce retries on a different rack and re-fetches its partitions,
// so demand is only checked for no-loss.)
TEST(FaultRuns, KilledTasksRegenerateMapOutputExactlyOnce) {
  const ExperimentConfig clean = small_config(21);
  ExperimentConfig faulty = clean;
  faulty.sim.faults = parse_ok("container-kill:p=0.2");
  for (const std::string name : {"fair", "coscheduler"}) {
    const SchedulerFactory factory = make_scheduler_factory(name);
    const std::vector<RunMetrics> a = run_repetitions(clean, factory);
    const std::vector<RunMetrics> b = run_repetitions(faulty, factory);
    ASSERT_EQ(a.size(), b.size());
    std::int64_t killed = 0;
    for (std::size_t rep = 0; rep < a.size(); ++rep) {
      killed += b[rep].faults.tasks_killed();
      ASSERT_EQ(a[rep].jobs.size(), b[rep].jobs.size());
      for (std::size_t j = 0; j < a[rep].jobs.size(); ++j) {
        EXPECT_EQ(a[rep].jobs[j].map_output_bytes.in_bytes(),
                  b[rep].jobs[j].map_output_bytes.in_bytes())
            << name << " rep" << rep << " job#" << j;
        // Demand never shrinks; re-fetches may add (within a few bytes of
        // incremental-materialization rounding).
        EXPECT_GE(b[rep].jobs[j].shuffle_bytes.in_bytes() + 16,
                  a[rep].jobs[j].shuffle_bytes.in_bytes())
            << name << " rep" << rep << " job#" << j;
      }
    }
    EXPECT_GT(killed, 0) << name;  // the plan actually fired
  }
}

// Killed reduces release their containers: the driver CHECKs at end of run
// that every slot is free again, so surviving a reduce-heavy kill plan to
// completion is the assertion. The kill counters prove reduces died.
TEST(FaultRuns, KilledReducesReleaseContainersAndJobsFinish) {
  ExperimentConfig cfg = small_config(33);
  cfg.sim.faults = parse_ok("container-kill:p=0.25");
  for (const std::string name : {"fair", "corral", "coscheduler"}) {
    const std::vector<RunMetrics> runs =
        run_repetitions(cfg, make_scheduler_factory(name));
    std::int64_t reduces_killed = 0;
    for (const RunMetrics& m : runs) {
      reduces_killed += m.faults.reduces_killed;
      for (const JobRecord& job : m.jobs) {
        EXPECT_GT(job.completion.sec(), 0.0) << name;
      }
    }
    EXPECT_GT(reduces_killed, 0) << name;
  }
}

// An OCS outage mid-coflow: circuit transfers are evicted and finish on the
// EPS. To make byte conservation exact, run a single job so every placement
// decision happens before the outage fires — until then the faulted run is
// bit-identical to the clean one (empty prefix of the plan), so the demand
// matrix is the same and the cross-fabric byte sum must match up to the
// ledgers' once-per-run fractional-byte truncation.
TEST(FaultRuns, OcsOutageFallsBackToEpsWithoutLosingBytes) {
  ExperimentConfig clean = small_config(55);
  clean.workload.num_jobs = 1;
  clean.workload.shuffle_heavy_fraction = 1.0;  // elephants ride the OCS
  clean.repetitions = 1;
  const SchedulerFactory factory = make_scheduler_factory("coscheduler");
  const RunMetrics a = run_once(clean, factory, 0);
  ASSERT_EQ(a.jobs.size(), 1u);
  ASSERT_TRUE(a.jobs[0].has_shuffle);
  ASSERT_GT(a.ocs_bytes.in_bytes(), 0);

  // The coflow is released at the first reduce placement (deferred
  // semantics: all reduces of the lone job are granted in one dispatch
  // pass). The OCS elephants drain through their circuits in a small
  // fraction of the coflow's lifetime — the EPS mice dominate `cct` — so
  // probe instants shortly after the release until the outage catches a
  // circuit mid-transfer. Deterministic: a fixed seed selects a fixed probe.
  const double open = a.jobs[0].first_reduce_placement.sec();
  const double cct = a.jobs[0].cct.sec();
  ASSERT_GT(cct, 0.0);
  RunMetrics b;
  for (double frac : {0.02, 0.05, 0.1, 0.01, 0.2, 0.5, 0.005, 0.002}) {
    const double at = open + frac * cct;
    ExperimentConfig faulty = clean;
    faulty.sim.faults =
        parse_ok("ocs-outage:at=" + std::to_string(at) + "s:dur=1200s");
    b = run_once(faulty, factory, 0);
    if (b.faults.flows_evicted > 0) break;
  }
  ASSERT_GT(b.faults.flows_evicted, 0);  // some probe caught flows mid-circuit
  EXPECT_EQ(b.faults.ocs_outages, 1);
  // Placements predate the outage, so local traffic and per-job demand are
  // unchanged; the evicted flows' drained bits stay in the OCS ledger and
  // the remainder lands in the EPS ledger.
  EXPECT_EQ(a.local_bytes.in_bytes(), b.local_bytes.in_bytes());
  EXPECT_EQ(a.jobs[0].shuffle_bytes.in_bytes(),
            b.jobs[0].shuffle_bytes.in_bytes());
  const std::int64_t cross_a = a.ocs_bytes.in_bytes() + a.eps_bytes.in_bytes();
  const std::int64_t cross_b = b.ocs_bytes.in_bytes() + b.eps_bytes.in_bytes();
  EXPECT_NEAR(static_cast<double>(cross_a), static_cast<double>(cross_b), 8.0);
  // Traffic visibly shifted off the OCS, and the slower path can only
  // delay the job, never speed it up.
  EXPECT_LT(b.ocs_bytes.in_bytes(), a.ocs_bytes.in_bytes());
  EXPECT_GT(b.eps_bytes.in_bytes(), a.eps_bytes.in_bytes());
  EXPECT_GE(b.makespan.sec(), a.makespan.sec());
}

// A killed-reduce rollback and an OCS outage eviction in the same sim tick:
// the hardest interleaving for the container and byte ledgers, since the
// rollback un-places a task while the eviction re-routes its job's flows.
// Probe a kill-only run for the exact instant of the first reduce kill,
// then pin an outage to that instant. Fault families draw from independent
// RNG streams, so adding the outage family leaves the kill schedule of the
// identical prefix untouched; the outage events are scheduled at run()
// start and thus carry lower sequence numbers, so at the shared timestamp
// the eviction fires first and the rollback lands inside the outage window.
TEST(FaultRuns, ReduceKillAndOutageEvictionShareATick) {
  ExperimentConfig cfg = small_config(77);
  cfg.workload.shuffle_heavy_fraction = 1.0;  // elephants ride the OCS
  cfg.repetitions = 1;
  cfg.sim.faults = parse_ok("container-kill:p=0.3");
  cfg.sim.audit = true;  // run the interleaving fully audited
  const SchedulerFactory factory = make_scheduler_factory("coscheduler");

  Observability probe_obs;
  cfg.sim.obs = &probe_obs;
  const RunMetrics probe = run_once(cfg, factory, 0);
  ASSERT_GT(probe.faults.reduces_killed, 0);
  SimTime kill_at = SimTime::zero();
  bool found = false;
  for (const FaultDecision& d : probe_obs.decisions.faults()) {
    if (d.action == FaultAction::kKillReduce) {
      kill_at = d.at;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);

  ExperimentConfig faulty = cfg;
  Observability obs;
  faulty.sim.obs = &obs;
  faulty.sim.faults.ocs_outages.push_back(
      OcsOutageFault{kill_at, Duration::seconds(15)});
  const RunMetrics b = run_once(faulty, factory, 0);
  EXPECT_EQ(b.faults.ocs_outages, 1);
  EXPECT_GT(b.faults.reduces_killed, 0);

  bool outage_at_tick = false;
  bool kill_at_tick = false;
  for (const FaultDecision& d : obs.decisions.faults()) {
    if (d.at == kill_at && d.action == FaultAction::kOutageBegin) {
      outage_at_tick = true;
    }
    if (d.at == kill_at && d.action == FaultAction::kKillReduce) {
      // The outage family must not have shifted the kill out of its tick.
      kill_at_tick = true;
    }
  }
  EXPECT_TRUE(outage_at_tick);
  EXPECT_TRUE(kill_at_tick);
  for (const JobRecord& job : b.jobs) {
    EXPECT_GT(job.completion.sec(), 0.0);
  }
}

}  // namespace
}  // namespace cosched
