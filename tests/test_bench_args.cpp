// BenchArgs::parse_or_error: the benches' flag parser must reject garbage
// loudly instead of atoi-ing it to 0 (the bug this suite pins down).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"

namespace cosched::bench {
namespace {

std::optional<BenchArgs> parse(std::vector<std::string> flags,
                               std::string* error = nullptr,
                               bool* help = nullptr) {
  std::vector<char*> argv;
  std::string prog = "bench";
  argv.push_back(prog.data());
  for (std::string& f : flags) argv.push_back(f.data());
  std::string local_error;
  bool local_help = false;
  return BenchArgs::parse_or_error(static_cast<int>(argv.size()), argv.data(),
                                   error != nullptr ? error : &local_error,
                                   help != nullptr ? help : &local_help);
}

TEST(BenchArgsParse, DefaultsWithNoFlags) {
  const auto args = parse({});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->reps, 2);
  EXPECT_EQ(args->jobs, 200);
  EXPECT_EQ(args->seed, 42u);
  EXPECT_EQ(args->threads, 1);
  EXPECT_FALSE(args->profile);
  EXPECT_FALSE(args->observing());
}

TEST(BenchArgsParse, ValidFlagsParse) {
  const auto args = parse({"--reps=20", "--jobs=1000", "--seed=123456789",
                           "--threads=8", "--trace-out=/tmp/t.json",
                           "--counters-out=/tmp/c.csv", "--profile"});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->reps, 20);
  EXPECT_EQ(args->jobs, 1000);
  EXPECT_EQ(args->seed, 123456789u);
  EXPECT_EQ(args->threads, 8);
  EXPECT_EQ(args->trace_out, "/tmp/t.json");
  EXPECT_EQ(args->counters_out, "/tmp/c.csv");
  EXPECT_TRUE(args->profile);
  EXPECT_TRUE(args->observing());
}

TEST(BenchArgsParse, ThreadsZeroMeansHardwareConcurrency) {
  const auto args = parse({"--threads=0"});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->threads, 0);
  EXPECT_EQ(args->parallel().threads, 0);
}

TEST(BenchArgsParse, RejectsNonNumericReps) {
  std::string error;
  EXPECT_FALSE(parse({"--reps=abc"}, &error).has_value());
  EXPECT_NE(error.find("--reps"), std::string::npos);
  EXPECT_NE(error.find("abc"), std::string::npos);
}

TEST(BenchArgsParse, RejectsNonPositiveReps) {
  EXPECT_FALSE(parse({"--reps=0"}).has_value());
  EXPECT_FALSE(parse({"--reps=-3"}).has_value());
  EXPECT_FALSE(parse({"--reps="}).has_value());
}

TEST(BenchArgsParse, RejectsTrailingGarbage) {
  EXPECT_FALSE(parse({"--reps=12x"}).has_value());
  EXPECT_FALSE(parse({"--jobs=1e3"}).has_value());
  EXPECT_FALSE(parse({"--seed=42 "}).has_value());
}

TEST(BenchArgsParse, RejectsNonNumericSeed) {
  std::string error;
  EXPECT_FALSE(parse({"--seed=abc"}, &error).has_value());
  EXPECT_NE(error.find("--seed"), std::string::npos);
  EXPECT_FALSE(parse({"--seed=-1"}).has_value());
}

TEST(BenchArgsParse, RejectsOverflow) {
  EXPECT_FALSE(parse({"--reps=99999999999999999999"}).has_value());
  EXPECT_FALSE(parse({"--seed=99999999999999999999999"}).has_value());
}

TEST(BenchArgsParse, RejectsNegativeThreads) {
  EXPECT_FALSE(parse({"--threads=-1"}).has_value());
  EXPECT_FALSE(parse({"--threads=two"}).has_value());
}

TEST(BenchArgsParse, ValidFaultSpecParses) {
  const auto args = parse({"--faults=straggler:p=0.1:slow=2"});
  ASSERT_TRUE(args.has_value());
  ASSERT_TRUE(args->faults.straggler.has_value());
  EXPECT_DOUBLE_EQ(args->faults.straggler->p, 0.1);
  EXPECT_EQ(args->faults_spec, "straggler:p=0.1:slow=2");
}

TEST(BenchArgsParse, DefaultFaultPlanIsEmpty) {
  const auto args = parse({});
  ASSERT_TRUE(args.has_value());
  EXPECT_TRUE(args->faults.empty());
  EXPECT_TRUE(args->faults_spec.empty());
}

TEST(BenchArgsParse, RejectsMalformedFaultSpec) {
  std::string error;
  EXPECT_FALSE(parse({"--faults=bogus:p=1"}, &error).has_value());
  EXPECT_NE(error.find("--faults"), std::string::npos);
  EXPECT_FALSE(parse({"--faults=straggler:p=2"}).has_value());
}

TEST(BenchArgsParse, RejectsUnknownFlag) {
  std::string error;
  EXPECT_FALSE(parse({"--bogus=1"}, &error).has_value());
  EXPECT_NE(error.find("--bogus"), std::string::npos);
}

TEST(BenchArgsParse, HelpFlagSetsHelp) {
  std::string error;
  bool help = false;
  const auto args = parse({"--help"}, &error, &help);
  EXPECT_TRUE(help);
  ASSERT_TRUE(args.has_value());
}

TEST(BenchArgsParse, SeedAcceptsFullU64Range) {
  const auto args = parse({"--seed=18446744073709551615"});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->seed, 18446744073709551615ull);
}

TEST(ParseHelpers, ParseInt32Bounds) {
  std::int32_t v = -1;
  EXPECT_TRUE(parse_int32("5", 1, 10, &v));
  EXPECT_EQ(v, 5);
  EXPECT_FALSE(parse_int32("0", 1, 10, &v));
  EXPECT_FALSE(parse_int32("11", 1, 10, &v));
  EXPECT_FALSE(parse_int32("", 1, 10, &v));
  EXPECT_FALSE(parse_int32(nullptr, 1, 10, &v));
  EXPECT_FALSE(parse_int32("5.0", 1, 10, &v));
}

TEST(ParseHelpers, ParseInt32RejectsStrtolLaundering) {
  // strtol silently skips leading whitespace and accepts '+'; a strict flag
  // value starts with a digit or '-' and nothing else.
  std::int32_t v = 0;
  EXPECT_FALSE(parse_int32(" 5", 1, 10, &v));
  EXPECT_FALSE(parse_int32("+5", 1, 10, &v));
  EXPECT_FALSE(parse_int32("\t5", 1, 10, &v));
  EXPECT_TRUE(parse_int32("-3", -10, 10, &v));
  EXPECT_EQ(v, -3);
}

TEST(ParseHelpers, ParseUint64RejectsNegativeWraparound) {
  // Regression: strtoull converts " -1" to 18446744073709551615 without
  // setting ERANGE, so a negative seed used to launder itself into a huge
  // valid one. The first character must now be a digit.
  std::uint64_t v = 0;
  EXPECT_FALSE(parse_uint64("-1", &v));
  EXPECT_FALSE(parse_uint64(" -1", &v));
  EXPECT_FALSE(parse_uint64(" 5", &v));
  EXPECT_FALSE(parse_uint64("+5", &v));
  EXPECT_TRUE(parse_uint64("5", &v));
  EXPECT_EQ(v, 5u);
  // Genuine overflow still reports failure via ERANGE.
  EXPECT_FALSE(parse_uint64("99999999999999999999", &v));
}

TEST(BenchArgsParse, RejectsNegativeSeedInsteadOfWrapping) {
  std::string error;
  EXPECT_FALSE(parse({"--seed=-1"}, &error).has_value());
  EXPECT_NE(error.find("--seed"), std::string::npos);
  EXPECT_FALSE(parse({"--seed=+7"}).has_value());
}

TEST(BenchArgsParse, SchedEngineFlagParses) {
  const auto defaults = parse({});
  ASSERT_TRUE(defaults.has_value());
  EXPECT_EQ(defaults->sched_engine, SchedEngine::kIncremental);

  const auto ref = parse({"--sched-engine=reference"});
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->sched_engine, SchedEngine::kReference);
  EXPECT_EQ(paper_config(*ref).sim.sched_engine, SchedEngine::kReference);

  const auto inc = parse({"--sched-engine=incremental"});
  ASSERT_TRUE(inc.has_value());
  EXPECT_EQ(inc->sched_engine, SchedEngine::kIncremental);
  EXPECT_EQ(paper_config(*inc).sim.sched_engine, SchedEngine::kIncremental);
}

TEST(BenchArgsParse, RejectsUnknownSchedEngine) {
  // Anything but the two exact engine names is a loud error — no silent
  // fallback to the default engine (the laundering this suite exists for).
  std::string error;
  EXPECT_FALSE(parse({"--sched-engine=fast"}, &error).has_value());
  EXPECT_NE(error.find("--sched-engine"), std::string::npos);
  EXPECT_NE(error.find("fast"), std::string::npos);
  EXPECT_FALSE(parse({"--sched-engine="}).has_value());
  EXPECT_FALSE(parse({"--sched-engine=Incremental"}).has_value());
  EXPECT_FALSE(parse({"--sched-engine=incremental "}).has_value());
  EXPECT_FALSE(parse({"--sched-engine=reference0"}).has_value());
}

TEST(BenchArgsParse, EpsEngineFlagParses) {
  const auto defaults = parse({});
  ASSERT_TRUE(defaults.has_value());
  EXPECT_EQ(defaults->eps_engine, EpsFabric::RateEngine::kGrouped);

  const auto ref = parse({"--eps-engine=reference"});
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->eps_engine, EpsFabric::RateEngine::kReference);
  EXPECT_EQ(paper_config(*ref).sim.eps_engine,
            EpsFabric::RateEngine::kReference);

  const auto grouped = parse({"--eps-engine=grouped"});
  ASSERT_TRUE(grouped.has_value());
  EXPECT_EQ(grouped->eps_engine, EpsFabric::RateEngine::kGrouped);
}

TEST(BenchArgsParse, RejectsUnknownEpsEngine) {
  std::string error;
  EXPECT_FALSE(parse({"--eps-engine=incremental"}, &error).has_value());
  EXPECT_NE(error.find("--eps-engine"), std::string::npos);
  EXPECT_FALSE(parse({"--eps-engine="}).has_value());
  EXPECT_FALSE(parse({"--eps-engine=Grouped"}).has_value());
}

TEST(BenchArgsParse, DispatchEngineFlagParses) {
  const auto defaults = parse({});
  ASSERT_TRUE(defaults.has_value());
  EXPECT_EQ(defaults->dispatch_engine, DispatchEngine::kOfferQueue);

  const auto scan = parse({"--dispatch-engine=scan"});
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->dispatch_engine, DispatchEngine::kScan);
  EXPECT_EQ(paper_config(*scan).sim.dispatch_engine, DispatchEngine::kScan);

  const auto oq = parse({"--dispatch-engine=offer-queue"});
  ASSERT_TRUE(oq.has_value());
  EXPECT_EQ(oq->dispatch_engine, DispatchEngine::kOfferQueue);
  EXPECT_EQ(paper_config(*oq).sim.dispatch_engine,
            DispatchEngine::kOfferQueue);
}

TEST(BenchArgsParse, RejectsUnknownDispatchEngine) {
  std::string error;
  EXPECT_FALSE(parse({"--dispatch-engine=queue"}, &error).has_value());
  EXPECT_NE(error.find("--dispatch-engine"), std::string::npos);
  EXPECT_NE(error.find("queue"), std::string::npos);
  EXPECT_FALSE(parse({"--dispatch-engine="}).has_value());
  EXPECT_FALSE(parse({"--dispatch-engine=offerqueue"}).has_value());
  EXPECT_FALSE(parse({"--dispatch-engine=Scan"}).has_value());
  EXPECT_FALSE(parse({"--dispatch-engine=scan "}).has_value());
}

TEST(ScaleCombo, RejectsNonPositiveValues) {
  EXPECT_FALSE(check_scale_combo(100, 0).ok);
  EXPECT_NE(check_scale_combo(100, 0).error.find("--racks"),
            std::string::npos);
  EXPECT_FALSE(check_scale_combo(100, -4).ok);
  EXPECT_FALSE(check_scale_combo(0, 60).ok);
  EXPECT_NE(check_scale_combo(0, 60).error.find("--jobs"),
            std::string::npos);
  EXPECT_FALSE(check_scale_combo(-1, 60).ok);
}

TEST(ScaleCombo, WarnsWhenJobsCannotCoverRacks) {
  const ScaleComboCheck sparse = check_scale_combo(100, 256);
  EXPECT_TRUE(sparse.ok);
  EXPECT_TRUE(sparse.error.empty());
  EXPECT_NE(sparse.warning.find("idle"), std::string::npos);

  // jobs == racks is the boundary: no warning.
  const ScaleComboCheck exact = check_scale_combo(256, 256);
  EXPECT_TRUE(exact.ok);
  EXPECT_TRUE(exact.warning.empty());

  const ScaleComboCheck dense = check_scale_combo(10000, 60);
  EXPECT_TRUE(dense.ok);
  EXPECT_TRUE(dense.warning.empty());
}

TEST(BenchArgsParse, AuditFlagToggles) {
  const auto defaults = parse({});
  ASSERT_TRUE(defaults.has_value());
  EXPECT_EQ(defaults->audit, kAuditDefaultOn);

  const auto on = parse({"--audit"});
  ASSERT_TRUE(on.has_value());
  EXPECT_TRUE(on->audit);
  EXPECT_TRUE(paper_config(*on).sim.audit);

  const auto off = parse({"--no-audit"});
  ASSERT_TRUE(off.has_value());
  EXPECT_FALSE(off->audit);
  EXPECT_FALSE(paper_config(*off).sim.audit);
}

TEST(BenchArgsParse, FabricDefaultsToSingleCoreOcs) {
  const auto args = parse({});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->fabric_spec, "ocs:1");
  EXPECT_EQ(args->fabric, FabricSpec{});
  EXPECT_EQ(paper_config(*args).sim.fabric, FabricSpec{});
}

TEST(BenchArgsParse, FabricFlagParsesEveryKind) {
  const auto kcore = parse({"--fabric=ocs:4"});
  ASSERT_TRUE(kcore.has_value());
  EXPECT_EQ(kcore->fabric.kind, FabricKind::kOcs);
  EXPECT_EQ(kcore->fabric.planes, 4);
  EXPECT_EQ(kcore->fabric_spec, "ocs:4");
  EXPECT_EQ(paper_config(*kcore).sim.fabric.planes, 4);

  const auto rotor = parse({"--fabric=rotor:50ms"});
  ASSERT_TRUE(rotor.has_value());
  EXPECT_EQ(rotor->fabric.kind, FabricKind::kRotor);
  EXPECT_DOUBLE_EQ(rotor->fabric.rotor_period.sec(), 0.05);

  const auto mesh = parse({"--fabric=mesh"});
  ASSERT_TRUE(mesh.has_value());
  EXPECT_EQ(mesh->fabric.kind, FabricKind::kMesh);

  const auto ring = parse({"--fabric=ring"});
  ASSERT_TRUE(ring.has_value());
  EXPECT_EQ(ring->fabric.kind, FabricKind::kRing);
}

TEST(BenchArgsParse, RejectsMalformedFabricSpecs) {
  for (const char* flag :
       {"--fabric=", "--fabric=ocs:0", "--fabric=ocs:65", "--fabric=ocs:2x",
        "--fabric=rotor:abc", "--fabric=rotor:0", "--fabric=mesh:1",
        "--fabric=ring:2", "--fabric=torus"}) {
    std::string error;
    EXPECT_FALSE(parse({flag}, &error).has_value()) << flag;
    EXPECT_NE(error.find("--fabric"), std::string::npos) << flag;
  }
}

}  // namespace
}  // namespace cosched::bench
