// Unit tests for the executor layer (src/exec/): the worker pool and the
// deterministic-result parallel_for the experiment harness shards with.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "exec/parallel_for.h"
#include "exec/thread_pool.h"

namespace cosched {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    // Destructor drains the queue and joins.
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ResolveThreadsMapsZeroToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7u);
}

TEST(ParallelFor, EachIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 257;  // not a multiple of the worker count
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(&pool, kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, NullPoolFallsBackToSerialInOrder) {
  std::vector<std::size_t> order;
  parallel_for(nullptr, 5, [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  parallel_for(&pool, 4, [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ParallelFor, ZeroAndOneIterationAreFine) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(&pool, 0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(&pool, 1, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for(&pool, 64,
                   [&ran](std::size_t i) {
                     ran.fetch_add(1);
                     if (i == 10) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The failing index ran; the pool is still usable afterwards.
  EXPECT_GE(ran.load(), 1);
  std::atomic<int> after{0};
  parallel_for(&pool, 8, [&after](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ParallelFor, ManyMoreIndicesThanWorkers) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  parallel_for(&pool, 1000,
               [&sum](std::size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 1000ull * 1001ull / 2);
}

}  // namespace
}  // namespace cosched
