// Tests for the alternative circuit schedulers: FIFO (coflow-oblivious)
// and BvN/TMS (optimal per-coflow clearance, strict one-at-a-time), and a
// three-way behavioral comparison against Sunflow.
#include <gtest/gtest.h>

#include <memory>

#include "coflow/bvn_circuit.h"
#include "coflow/fifo_circuit.h"
#include "coflow/sunflow.h"
#include "common/rng.h"
#include "fabric/ocs_fabric.h"

namespace cosched {
namespace {

HybridTopology topo6() {
  HybridTopology t;
  t.num_racks = 6;
  t.ocs_link = Bandwidth::gbps(100);
  t.ocs_reconfig_delay = Duration::milliseconds(10);
  return t;
}

struct Harness {
  Simulator sim;
  Network net;
  std::unique_ptr<CircuitScheduler> sched;
  IdAllocator<FlowId> ids;
  std::vector<std::unique_ptr<Coflow>> coflows;

  explicit Harness(const char* kind)
      : net(sim, topo6(), std::make_unique<OcsFabric>(sim, topo6(), 1)) {
    if (std::string(kind) == "fifo") {
      sched = std::make_unique<FifoCircuitScheduler>(sim, net);
    } else if (std::string(kind) == "bvn") {
      sched = std::make_unique<BvnCircuitScheduler>(sim, net);
    } else {
      sched = std::make_unique<SunflowScheduler>(sim, net.fabric());
    }
  }

  Coflow& coflow(std::int64_t id) {
    coflows.push_back(std::make_unique<Coflow>(CoflowId{id}, JobId{id}));
    return *coflows.back();
  }

  void demand(Coflow& c, int s, int d, double gb) {
    c.add_demand(ids, RackId{s}, RackId{d}, DataSize::gigabytes(gb));
  }

  void go(Coflow& c) {
    c.mark_released(sim.now());
    for (const auto& f : c.flows()) {
      f->set_path(FlowPath::kOcs);
      sched->submit(c, *f);
    }
  }

  double cct(const Coflow& c) {
    double last = 0;
    for (const auto& f : c.flows()) {
      EXPECT_TRUE(f->completed());
      last = std::max(last, f->completion_time().sec());
    }
    return last - c.release_time().sec();
  }
};

// ----------------------------------------------------------------- FIFO ---

TEST(FifoCircuit, SingleFlowMatchesSunflowTiming) {
  Harness h("fifo");
  Coflow& c = h.coflow(0);
  h.demand(c, 0, 1, 1.25);
  h.go(c);
  h.sim.run();
  EXPECT_NEAR(h.cct(c), 0.11, 1e-9);
}

TEST(FifoCircuit, ServesInSubmissionOrderOnContendedPorts) {
  Harness h("fifo");
  Coflow& big = h.coflow(0);
  h.demand(big, 0, 1, 12.5);  // 1 s
  Coflow& small = h.coflow(1);
  h.demand(small, 0, 1, 1.25);  // 0.1 s — Sunflow would run this first
  h.go(big);
  h.go(small);
  h.sim.run();
  EXPECT_NEAR(h.cct(big), 1.01, 1e-9);
  EXPECT_NEAR(h.cct(small), 1.01 + 0.11, 1e-9);
}

TEST(FifoCircuit, AllFlowsComplete) {
  Harness h("fifo");
  Rng rng(3);
  for (int k = 0; k < 8; ++k) {
    Coflow& c = h.coflow(k);
    for (int e = 0; e < 3; ++e) {
      const int s = static_cast<int>(rng.uniform_int(0, 5));
      int d = static_cast<int>(rng.uniform_int(0, 5));
      if (d == s) d = (d + 1) % 6;
      h.demand(c, s, d, 1.25 * static_cast<double>(rng.uniform_int(1, 3)));
    }
    h.go(c);
  }
  h.sim.run();
  EXPECT_EQ(h.sched->pending_flows(), 0u);
  for (const auto& c : h.coflows) EXPECT_TRUE(c->all_flows_complete());
}

// ------------------------------------------------------------------ BvN ---

TEST(BvnCircuit, SingleFlowPaysOneSlot) {
  Harness h("bvn");
  Coflow& c = h.coflow(0);
  h.demand(c, 0, 1, 1.25);
  h.go(c);
  h.sim.run();
  EXPECT_NEAR(h.cct(c), 0.11, 1e-9);
}

TEST(BvnCircuit, AllToAllMeetsBandwidthBoundWithSlotOverhead) {
  Harness h("bvn");
  Coflow& c = h.coflow(0);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) h.demand(c, i, j, 1.25);
    }
  }
  h.go(c);
  h.sim.run();
  // Two rotations of 3 circuits: 2 slots x (0.01 + 0.1) = 0.22.
  EXPECT_NEAR(h.cct(c), 0.22, 1e-9);
}

TEST(BvnCircuit, SkewedMatrixBeatsNaiveSerialization) {
  Harness h("bvn");
  Coflow& c = h.coflow(0);
  h.demand(c, 0, 1, 12.5);
  h.demand(c, 2, 3, 12.5);
  h.demand(c, 4, 5, 12.5);
  h.go(c);
  h.sim.run();
  // One slot, 3 parallel circuits: 1.01 s (serialized would be 3.03).
  EXPECT_NEAR(h.cct(c), 1.01, 1e-9);
}

TEST(BvnCircuit, CoflowsRunStrictlyOneAtATime) {
  Harness h("bvn");
  Coflow& first = h.coflow(0);
  h.demand(first, 0, 1, 1.25);
  Coflow& second = h.coflow(1);
  h.demand(second, 2, 3, 1.25);  // disjoint ports, but must still wait
  h.go(first);
  h.go(second);
  h.sim.run();
  EXPECT_NEAR(h.cct(first), 0.11, 1e-9);
  EXPECT_NEAR(h.cct(second), 0.22, 1e-9);  // no work conservation
}

TEST(BvnCircuit, ShortestBoundFirst) {
  Harness h("bvn");
  Coflow& big = h.coflow(0);
  h.demand(big, 0, 1, 12.5);
  Coflow& small = h.coflow(1);
  h.demand(small, 0, 1, 1.25);
  h.go(big);
  h.go(small);
  h.sim.run();
  EXPECT_NEAR(h.cct(small), 0.11, 1e-9);
  EXPECT_NEAR(h.cct(big), 0.11 + 1.01, 1e-9);
}

TEST(BvnCircuit, ManyRandomCoflowsDrainCompletely) {
  Harness h("bvn");
  Rng rng(9);
  for (int k = 0; k < 10; ++k) {
    Coflow& c = h.coflow(k);
    for (int e = 0; e < 4; ++e) {
      const int s = static_cast<int>(rng.uniform_int(0, 5));
      int d = static_cast<int>(rng.uniform_int(0, 5));
      if (d == s) d = (d + 1) % 6;
      h.demand(c, s, d, 1.25 * static_cast<double>(rng.uniform_int(1, 4)));
    }
    h.go(c);
  }
  h.sim.run();
  EXPECT_EQ(h.sched->pending_flows(), 0u);
  for (const auto& c : h.coflows) EXPECT_TRUE(c->all_flows_complete());
}

// ---------------------------------------------------------- comparison ----

TEST(CircuitSchedulers, SunflowBeatsFifoOnAverageCct) {
  // One long coflow submitted first, many short ones after: FIFO lets the
  // long flow block, Sunflow reorders.
  double sunflow_avg = 0, fifo_avg = 0;
  for (const char* kind : {"sunflow", "fifo"}) {
    Harness h(kind);
    std::vector<Coflow*> cs;
    Coflow& big = h.coflow(0);
    h.demand(big, 0, 1, 125.0);  // 10 s
    cs.push_back(&big);
    h.go(big);
    for (int k = 1; k <= 5; ++k) {
      Coflow& c = h.coflow(k);
      h.demand(c, 0, 1, 1.25);
      cs.push_back(&c);
      h.go(c);
    }
    h.sim.run();
    double avg = 0;
    for (Coflow* c : cs) avg += h.cct(*c);
    avg /= static_cast<double>(cs.size());
    if (std::string(kind) == "sunflow") {
      sunflow_avg = avg;
    } else {
      fifo_avg = avg;
    }
  }
  EXPECT_LT(sunflow_avg, fifo_avg);
}

}  // namespace
}  // namespace cosched
