// Unit tests for src/common: units, ids, rng, stats, check macros.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

namespace cosched {
namespace {

// ---------------------------------------------------------------- units ---

TEST(Units, DurationConstructorsAgree) {
  EXPECT_DOUBLE_EQ(Duration::seconds(1.5).sec(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::milliseconds(10).sec(), 0.01);
  EXPECT_DOUBLE_EQ(Duration::microseconds(5).sec(), 5e-6);
  EXPECT_DOUBLE_EQ(Duration::minutes(90).sec(), 5400.0);
  EXPECT_DOUBLE_EQ(Duration::hours(2).sec(), 7200.0);
}

TEST(Units, DurationArithmetic) {
  const Duration a = Duration::seconds(2.0);
  const Duration b = Duration::seconds(0.5);
  EXPECT_DOUBLE_EQ((a + b).sec(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).sec(), 1.5);
  EXPECT_DOUBLE_EQ((a * 3.0).sec(), 6.0);
  EXPECT_DOUBLE_EQ((a / 4.0).sec(), 0.5);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  EXPECT_LT(b, a);
  EXPECT_TRUE(Duration::infinity() > a);
  EXPECT_FALSE(Duration::infinity().is_finite());
}

TEST(Units, InfiniteDurationTimesZeroIsZero) {
  // IEEE inf * 0 is NaN, which compares false against everything and slips
  // past is_finite() guards; the scaling operators define it as zero so an
  // unreachable deadline scaled by a zero factor stays an honest zero.
  EXPECT_DOUBLE_EQ((Duration::infinity() * 0.0).sec(), 0.0);
  EXPECT_DOUBLE_EQ((0.0 * Duration::infinity()).sec(), 0.0);
  EXPECT_DOUBLE_EQ((Duration::zero() *
                    std::numeric_limits<double>::infinity()).sec(), 0.0);
  EXPECT_DOUBLE_EQ((std::numeric_limits<double>::infinity() *
                    Duration::zero()).sec(), 0.0);
  // Untouched cases keep their usual semantics.
  EXPECT_FALSE((Duration::infinity() * 2.0).is_finite());
  EXPECT_FALSE((2.0 * Duration::infinity()).is_finite());
  EXPECT_DOUBLE_EQ((Duration::seconds(3.0) * 0.0).sec(), 0.0);
  EXPECT_DOUBLE_EQ((Duration::seconds(2.0) * 1.5).sec(), 3.0);
}

TEST(Units, SimTimeAndDurationInterplay) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + Duration::seconds(10);
  EXPECT_DOUBLE_EQ((t1 - t0).sec(), 10.0);
  EXPECT_DOUBLE_EQ((t1 - Duration::seconds(4)).sec(), 6.0);
  EXPECT_LT(t0, t1);
}

TEST(Units, DataSizeConstructorsAndArithmetic) {
  EXPECT_EQ(DataSize::gigabytes(1.125).in_bytes(), 1'125'000'000);
  EXPECT_EQ(DataSize::megabytes(256).in_bytes(), 256'000'000);
  const DataSize a = DataSize::gigabytes(2);
  const DataSize b = DataSize::gigabytes(0.5);
  EXPECT_EQ((a + b).in_bytes(), 2'500'000'000);
  EXPECT_EQ((a - b).in_bytes(), 1'500'000'000);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  EXPECT_EQ((a * 0.25).in_bytes(), 500'000'000);
  EXPECT_EQ((a / std::int64_t{4}).in_bytes(), 500'000'000);
}

TEST(Units, BandwidthAndTransferTime) {
  const Bandwidth bw = Bandwidth::gbps(100);
  EXPECT_DOUBLE_EQ(bw.in_bits_per_sec(), 100e9);
  // 1.125 GB over 100 Gb/s = 9e9 bits / 100e9 bps = 90 ms.
  const Duration t = transfer_time(DataSize::gigabytes(1.125), bw);
  EXPECT_NEAR(t.sec(), 0.09, 1e-12);
  const DataSize back = data_transferred(bw, t);
  EXPECT_NEAR(static_cast<double>(back.in_bytes()), 1.125e9, 1.0);
}

TEST(Units, TransferTimeRejectsZeroBandwidth) {
  EXPECT_THROW((void)transfer_time(DataSize::bytes(1), Bandwidth::zero()),
               CheckFailure);
}

// ------------------------------------------------------------------ ids ---

TEST(Ids, StrongIdsAreDistinctTypes) {
  static_assert(!std::is_convertible_v<RackId, JobId>);
  static_assert(!std::is_convertible_v<std::int64_t, RackId>);
  const RackId r{3};
  EXPECT_EQ(r.value(), 3);
  EXPECT_TRUE(r.valid());
  EXPECT_FALSE(RackId::invalid().valid());
}

TEST(Ids, AllocatorIsMonotonic) {
  IdAllocator<TaskId> alloc;
  const TaskId a = alloc.next();
  const TaskId b = alloc.next();
  EXPECT_LT(a, b);
  EXPECT_EQ(alloc.allocated(), 2);
}

TEST(Ids, HashableInUnorderedContainers) {
  std::set<JobId> jobs{JobId{2}, JobId{1}, JobId{1}};
  EXPECT_EQ(jobs.size(), 2u);
  std::hash<JobId> h;
  EXPECT_EQ(h(JobId{5}), h(JobId{5}));
}

// ------------------------------------------------------------------ rng ---

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkedStreamsAreIndependentAndStable) {
  Rng root(7);
  Rng f1 = root.fork(1);
  Rng f2 = root.fork(2);
  Rng f1_again = Rng(7).fork(1);
  EXPECT_EQ(f1.next_u64(), f1_again.next_u64());
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Rng, Uniform01InRangeWithPlausibleMean) {
  Rng rng(123);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stat.add(u);
  }
  EXPECT_NEAR(stat.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(5);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.add(rng.exponential(4.0));
  EXPECT_NEAR(stat.mean(), 4.0, 0.1);
}

TEST(Rng, NormalMeanAndStddev) {
  Rng rng(17);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stat.mean(), 10.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(31);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.lognormal(1.0, 0.8));
  EXPECT_NEAR(percentile(xs, 50.0), std::exp(1.0), 0.1);
}

TEST(Rng, ZipfFavorsSmallRanks) {
  Rng rng(77);
  int ones = 0, tens = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.zipf(10, 1.2);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 10);
    if (v == 1) ++ones;
    if (v == 10) ++tens;
  }
  EXPECT_GT(ones, tens * 3);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(8);
  const auto s = rng.sample_without_replacement(20, 8);
  EXPECT_EQ(s.size(), 8u);
  std::set<std::int64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 8u);
  for (auto v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(8);
  const auto s = rng.sample_without_replacement(5, 5);
  std::set<std::int64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

// ---------------------------------------------------------------- stats ---

TEST(Stats, RunningStatBasics) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Stats, RunningStatMergeMatchesCombined) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    a.add(x);
    all.add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = i * 0.37;
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Stats, HistogramBinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // clamps to first bin
  h.add(0.5);
  h.add(9.9);
  h.add(99.0);  // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_FALSE(h.to_string().empty());
}

// ---------------------------------------------------------------- check ---

TEST(Check, ThrowsWithContext) {
  try {
    COSCHED_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(COSCHED_CHECK(2 + 2 == 4));
}

// ------------------------------------------------------------------ log ---

TEST(Log, SinkCapturesAtOrAboveLevel) {
  std::vector<std::string> lines;
  Log::set_sink([&](LogLevel, const std::string& m) { lines.push_back(m); });
  Log::set_level(LogLevel::kInfo);
  COSCHED_DEBUG() << "hidden";
  COSCHED_INFO() << "shown " << 1;
  COSCHED_ERROR() << "error";
  Log::reset_sink();
  Log::set_level(LogLevel::kWarn);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "shown 1");
  EXPECT_EQ(lines[1], "error");
}

TEST(Log, ParseLogLevelAcceptsAllNamesCaseInsensitively) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Debug"), LogLevel::kDebug);
}

TEST(Log, ParseLogLevelRejectsGarbage) {
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("info "), std::nullopt);
  EXPECT_EQ(parse_log_level("2"), std::nullopt);
}

TEST(Log, InitFromEnvAppliesAndIgnoresBadValues) {
  const LogLevel before = Log::level();
  ::setenv("COSCHED_LOG_LEVEL", "error", 1);
  Log::init_from_env();
  EXPECT_EQ(Log::level(), LogLevel::kError);

  // Unparsable and unset values leave the level untouched.
  ::setenv("COSCHED_LOG_LEVEL", "bogus", 1);
  Log::init_from_env();
  EXPECT_EQ(Log::level(), LogLevel::kError);
  ::unsetenv("COSCHED_LOG_LEVEL");
  Log::init_from_env();
  EXPECT_EQ(Log::level(), LogLevel::kError);

  Log::set_level(before);
}

}  // namespace
}  // namespace cosched
