// Golden-file regression test (ctest -L determinism): a tiny fixed-seed
// Figure-3 configuration (2 repetitions x 20 jobs, seed 42, the paper's
// topology) whose per-scheduler mean makespan / JCT / CCT / OCS fraction
// must match tests/golden/fig3_small.csv EXACTLY — tolerance 0. Values are
// serialized with %.17g, which round-trips IEEE doubles losslessly, so any
// change in simulation arithmetic, event ordering, RNG consumption, or
// workload generation shows up here as a hard failure.
//
// Regenerating after an intentional behavior change:
//
//   COSCHED_REGEN_GOLDEN=1 ./build/tests/test_golden
//
// then commit the rewritten tests/golden/fig3_small.csv (and explain the
// change in the PR). The golden path is baked in at compile time from the
// source tree, so the one command works from any build directory.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/experiment.h"

namespace cosched {
namespace {

#ifndef COSCHED_GOLDEN_DIR
#error "COSCHED_GOLDEN_DIR must be defined by the build"
#endif

const char* kGoldenPath = COSCHED_GOLDEN_DIR "/fig3_small.csv";

const std::vector<std::string> kSchedulers{"fair", "corral", "coscheduler"};

/// The bench's paper_config at golden scale, so the golden run exercises
/// the exact topology/workload path of bench_fig3_overall.
ExperimentConfig golden_config() {
  bench::BenchArgs args;
  args.reps = 2;
  args.jobs = 20;
  args.seed = 42;
  return bench::paper_config(args);
}

struct GoldenRow {
  std::string scheduler;
  double makespan_sec = 0.0;
  double avg_jct_sec = 0.0;
  double avg_cct_sec = 0.0;
  double ocs_fraction = 0.0;
};

std::vector<GoldenRow> measure() {
  const std::vector<AggregateMetrics> results =
      compare_schedulers(golden_config(), kSchedulers);
  std::vector<GoldenRow> rows;
  for (const AggregateMetrics& m : results) {
    GoldenRow row;
    row.scheduler = m.scheduler;
    row.makespan_sec = m.makespan_sec.mean();
    row.avg_jct_sec = m.avg_jct_sec.mean();
    row.avg_cct_sec = m.avg_cct_sec.mean();
    row.ocs_fraction = m.ocs_fraction.mean();
    rows.push_back(row);
  }
  return rows;
}

std::string serialize(const std::vector<GoldenRow>& rows) {
  std::string out = "scheduler,makespan_sec,avg_jct_sec,avg_cct_sec,"
                    "ocs_fraction\n";
  for (const GoldenRow& r : rows) {
    char line[256];
    std::snprintf(line, sizeof(line), "%s,%.17g,%.17g,%.17g,%.17g\n",
                  r.scheduler.c_str(), r.makespan_sec, r.avg_jct_sec,
                  r.avg_cct_sec, r.ocs_fraction);
    out += line;
  }
  return out;
}

std::vector<GoldenRow> parse_golden(std::istream& is) {
  std::vector<GoldenRow> rows;
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    GoldenRow row;
    std::stringstream ss(line);
    std::string field;
    std::getline(ss, row.scheduler, ',');
    std::getline(ss, field, ',');
    row.makespan_sec = std::strtod(field.c_str(), nullptr);
    std::getline(ss, field, ',');
    row.avg_jct_sec = std::strtod(field.c_str(), nullptr);
    std::getline(ss, field, ',');
    row.avg_cct_sec = std::strtod(field.c_str(), nullptr);
    std::getline(ss, field, ',');
    row.ocs_fraction = std::strtod(field.c_str(), nullptr);
    rows.push_back(row);
  }
  return rows;
}

TEST(GoldenFig3Small, MeansMatchCommittedGoldenExactly) {
  const std::vector<GoldenRow> measured = measure();

  if (std::getenv("COSCHED_REGEN_GOLDEN") != nullptr) {
    std::ofstream os(kGoldenPath);
    ASSERT_TRUE(os.good()) << "cannot write " << kGoldenPath;
    os << serialize(measured);
    GTEST_SKIP() << "regenerated " << kGoldenPath
                 << "; rerun without COSCHED_REGEN_GOLDEN to verify";
  }

  std::ifstream is(kGoldenPath);
  ASSERT_TRUE(is.good())
      << "missing golden file " << kGoldenPath
      << " — regenerate with COSCHED_REGEN_GOLDEN=1 ./tests/test_golden";
  const std::vector<GoldenRow> golden = parse_golden(is);

  ASSERT_EQ(golden.size(), measured.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    SCOPED_TRACE("scheduler " + golden[i].scheduler);
    EXPECT_EQ(golden[i].scheduler, measured[i].scheduler);
    // Tolerance 0: %.17g round-trips doubles exactly, so == is well-defined.
    EXPECT_EQ(golden[i].makespan_sec, measured[i].makespan_sec);
    EXPECT_EQ(golden[i].avg_jct_sec, measured[i].avg_jct_sec);
    EXPECT_EQ(golden[i].avg_cct_sec, measured[i].avg_cct_sec);
    EXPECT_EQ(golden[i].ocs_fraction, measured[i].ocs_fraction);
  }
}

// The serializer itself must round-trip: a value written with %.17g and
// parsed with strtod compares equal bit-for-bit.
TEST(GoldenFig3Small, SerializationRoundTrips) {
  const std::vector<GoldenRow> measured = measure();
  std::stringstream ss(serialize(measured));
  const std::vector<GoldenRow> reparsed = parse_golden(ss);
  ASSERT_EQ(reparsed.size(), measured.size());
  for (std::size_t i = 0; i < measured.size(); ++i) {
    EXPECT_EQ(reparsed[i].scheduler, measured[i].scheduler);
    EXPECT_EQ(reparsed[i].makespan_sec, measured[i].makespan_sec);
    EXPECT_EQ(reparsed[i].avg_jct_sec, measured[i].avg_jct_sec);
    EXPECT_EQ(reparsed[i].avg_cct_sec, measured[i].avg_cct_sec);
    EXPECT_EQ(reparsed[i].ocs_fraction, measured[i].ocs_fraction);
  }
}

}  // namespace
}  // namespace cosched
