// Unit tests for the Hybrid-DCN network model: EPS max-min fairness, local
// paths, the OCS port state machine, and routing classification.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "fabric/ocs_fabric.h"
#include "net/eps_fabric.h"
#include "net/network.h"
#include "net/ocs_switch.h"
#include "net/topology.h"

namespace cosched {
namespace {

HybridTopology small_topo() {
  HybridTopology t;
  t.num_racks = 4;
  t.servers_per_rack = 10;
  t.server_nic = Bandwidth::gbps(10);
  t.eps_oversubscription = 10.0;  // rack link = 10 Gbps
  t.ocs_link = Bandwidth::gbps(100);
  t.ocs_reconfig_delay = Duration::milliseconds(10);
  return t;
}

struct FlowFixture {
  IdAllocator<FlowId> ids;
  std::vector<std::unique_ptr<Flow>> flows;

  Flow& make(RackId src, RackId dst, DataSize size) {
    flows.push_back(std::make_unique<Flow>(ids.next(), CoflowId{0}, JobId{0},
                                           src, dst, size));
    return *flows.back();
  }
};

// ---------------------------------------------------------------- topo ----

TEST(Topology, RackLinkFollowsOversubscription) {
  HybridTopology t = small_topo();
  EXPECT_DOUBLE_EQ(t.eps_rack_link().in_gbps(), 10.0);
  t.eps_oversubscription = 20.0;
  EXPECT_DOUBLE_EQ(t.eps_rack_link().in_gbps(), 5.0);
  t.eps_oversubscription = 3.0;
  EXPECT_NEAR(t.eps_rack_link().in_gbps(), 100.0 / 3.0, 1e-9);
}

TEST(Topology, SlotAccounting) {
  HybridTopology t = small_topo();
  t.slots_per_server = 20;
  EXPECT_EQ(t.slots_per_rack(), 200);
  EXPECT_EQ(t.total_slots(), 800);
}

TEST(Topology, ValidateRejectsNonsense) {
  HybridTopology t = small_topo();
  t.num_racks = 0;
  EXPECT_THROW(t.validate(), CheckFailure);
}

// ----------------------------------------------------------------- EPS ----

TEST(EpsFabric, SingleFlowGetsFullRackLink) {
  Simulator sim;
  EpsFabric eps(sim, small_topo());
  FlowFixture fx;
  // 10 Gb/s link, 1.25 GB = 10 Gbit => exactly 1 second.
  Flow& f = fx.make(RackId{0}, RackId{1}, DataSize::gigabytes(1.25));
  f.set_path(FlowPath::kEps);
  bool done = false;
  eps.start_flow(f, [&](Flow&) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(f.completed());
  EXPECT_NEAR(f.completion_time().sec(), 1.0, 1e-9);
}

TEST(EpsFabric, TwoFlowsSharingUplinkHalveTheRate) {
  Simulator sim;
  EpsFabric eps(sim, small_topo());
  FlowFixture fx;
  Flow& a = fx.make(RackId{0}, RackId{1}, DataSize::gigabytes(1.25));
  Flow& b = fx.make(RackId{0}, RackId{2}, DataSize::gigabytes(1.25));
  a.set_path(FlowPath::kEps);
  b.set_path(FlowPath::kEps);
  eps.start_flow(a, nullptr);
  eps.start_flow(b, nullptr);
  sim.run();
  // Both share rack 0's uplink at 5 Gb/s -> 2 s each.
  EXPECT_NEAR(a.completion_time().sec(), 2.0, 1e-9);
  EXPECT_NEAR(b.completion_time().sec(), 2.0, 1e-9);
}

TEST(EpsFabric, DownlinkContentionAlsoShares) {
  Simulator sim;
  EpsFabric eps(sim, small_topo());
  FlowFixture fx;
  Flow& a = fx.make(RackId{0}, RackId{2}, DataSize::gigabytes(1.25));
  Flow& b = fx.make(RackId{1}, RackId{2}, DataSize::gigabytes(1.25));
  a.set_path(FlowPath::kEps);
  b.set_path(FlowPath::kEps);
  eps.start_flow(a, nullptr);
  eps.start_flow(b, nullptr);
  sim.run();
  EXPECT_NEAR(a.completion_time().sec(), 2.0, 1e-9);
  EXPECT_NEAR(b.completion_time().sec(), 2.0, 1e-9);
}

TEST(EpsFabric, MaxMinGivesUnbottleneckedFlowTheResidual) {
  Simulator sim;
  EpsFabric eps(sim, small_topo());
  FlowFixture fx;
  // Two flows into rack 2 (downlink shared), one of which shares its source
  // uplink with a third flow. Progressive filling: the third flow is capped
  // at 5 (uplink share); classic max-min would then give flow `a` the
  // leftover downlink. With equal-split per link, a and b get 5 each.
  Flow& a = fx.make(RackId{0}, RackId{2}, DataSize::gigabytes(1.25));
  Flow& b = fx.make(RackId{1}, RackId{2}, DataSize::gigabytes(1.25));
  Flow& c = fx.make(RackId{1}, RackId{3}, DataSize::gigabytes(1.25));
  for (Flow* f : {&a, &b, &c}) f->set_path(FlowPath::kEps);
  eps.start_flow(a, nullptr);
  eps.start_flow(b, nullptr);
  eps.start_flow(c, nullptr);
  sim.run_until(SimTime::zero());  // let the coalesced rate replan fire
  const auto rates = eps.current_rates();
  ASSERT_EQ(rates.size(), 3u);
  // Rack1 uplink carries b and c: 5 Gb/s each. Rack2 downlink carries a and
  // b: b is frozen at 5, a gets the remaining 5 Gb/s.
  EXPECT_NEAR(rates[0].second.in_gbps(), 5.0, 1e-9);
  EXPECT_NEAR(rates[1].second.in_gbps(), 5.0, 1e-9);
  EXPECT_NEAR(rates[2].second.in_gbps(), 5.0, 1e-9);
  sim.run();
  EXPECT_TRUE(a.completed());
  EXPECT_TRUE(b.completed());
  EXPECT_TRUE(c.completed());
}

TEST(EpsFabric, RatesReallocateWhenFlowFinishes) {
  Simulator sim;
  EpsFabric eps(sim, small_topo());
  FlowFixture fx;
  Flow& small = fx.make(RackId{0}, RackId{1}, DataSize::gigabytes(0.625));
  Flow& big = fx.make(RackId{0}, RackId{2}, DataSize::gigabytes(1.25));
  small.set_path(FlowPath::kEps);
  big.set_path(FlowPath::kEps);
  eps.start_flow(small, nullptr);
  eps.start_flow(big, nullptr);
  sim.run();
  // small: 5 Gbit at 5 Gb/s -> 1 s. big: 5 Gbit in first second, then the
  // remaining 5 Gbit at full 10 Gb/s -> 1.5 s total.
  EXPECT_NEAR(small.completion_time().sec(), 1.0, 1e-9);
  EXPECT_NEAR(big.completion_time().sec(), 1.5, 1e-9);
}

TEST(EpsFabric, LocalFlowRunsAtNicSpeedWithoutContention) {
  Simulator sim;
  EpsFabric eps(sim, small_topo());
  FlowFixture fx;
  Flow& local = fx.make(RackId{0}, RackId{0}, DataSize::gigabytes(1.25));
  Flow& cross = fx.make(RackId{0}, RackId{1}, DataSize::gigabytes(1.25));
  local.set_path(FlowPath::kLocal);
  cross.set_path(FlowPath::kEps);
  eps.start_flow(local, nullptr);
  eps.start_flow(cross, nullptr);
  sim.run();
  // Local does not consume the rack uplink: both take 1 s.
  EXPECT_NEAR(local.completion_time().sec(), 1.0, 1e-9);
  EXPECT_NEAR(cross.completion_time().sec(), 1.0, 1e-9);
}

TEST(EpsFabric, ZeroByteFlowCompletesImmediately) {
  Simulator sim;
  EpsFabric eps(sim, small_topo());
  FlowFixture fx;
  Flow& f = fx.make(RackId{0}, RackId{1}, DataSize::zero());
  f.set_path(FlowPath::kEps);
  bool done = false;
  eps.start_flow(f, [&](Flow&) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(f.completion_time().sec(), 0.0);
}

TEST(EpsFabric, ZeroByteFlowLeavesNoStaleGroup) {
  // A zero-byte flow joins its (src,dst) group and completes via an
  // immediate event; the completion must remove it from the group so no
  // stale group survives with zero members.
  Simulator sim;
  EpsFabric eps(sim, small_topo());
  FlowFixture fx;
  Flow& f = fx.make(RackId{0}, RackId{1}, DataSize::zero());
  f.set_path(FlowPath::kEps);
  eps.start_flow(f, nullptr);
  EXPECT_EQ(eps.active_flows(), 1u);
  EXPECT_EQ(eps.active_groups(), 1u);
  sim.run();
  EXPECT_TRUE(f.completed());
  EXPECT_EQ(eps.active_flows(), 0u);
  EXPECT_EQ(eps.active_groups(), 0u);
}

TEST(EpsFabric, ZeroByteFlowGrownAtCreationInstantDoesNotCrash) {
  // Regression: a zero-byte flow schedules an immediate completion event,
  // and demand added within the same instant races that event — it fires
  // before the replan has assigned the flow a rate. The fabric must defer
  // to the replan instead of tripping a rate>0 check, and the flow must
  // still complete with the right byte count.
  Simulator sim;
  EpsFabric eps(sim, small_topo());
  FlowFixture fx;
  Flow& f = fx.make(RackId{0}, RackId{1}, DataSize::zero());
  f.set_path(FlowPath::kEps);
  eps.start_flow(f, nullptr);
  // Same-instant growth: the immediate completion event is already queued
  // with a lower sequence number than any replan this triggers.
  f.add_demand(DataSize::gigabytes(1.25));
  eps.demand_added(f);
  sim.run();
  EXPECT_TRUE(f.completed());
  EXPECT_NEAR(f.completion_time().sec(), 1.0, 1e-9);
  EXPECT_EQ(eps.active_flows(), 0u);
  EXPECT_EQ(eps.active_groups(), 0u);
  EXPECT_NEAR(eps.eps_bytes_transferred().in_gigabytes(), 1.25, 1e-6);
}

TEST(EpsFabric, GroupEmptyingMidChurnLeavesNoStaleCount) {
  // Flows on the same rack pair share one group. Finishing them at
  // different times — with new same-pair flows arriving in between — must
  // keep the group count in lockstep with the live pair set.
  Simulator sim;
  EpsFabric eps(sim, small_topo());
  FlowFixture fx;
  Flow& a = fx.make(RackId{0}, RackId{1}, DataSize::gigabytes(0.625));
  Flow& b = fx.make(RackId{0}, RackId{1}, DataSize::gigabytes(1.25));
  Flow& c = fx.make(RackId{2}, RackId{3}, DataSize::gigabytes(1.25));
  for (Flow* f : {&a, &b, &c}) f->set_path(FlowPath::kEps);
  eps.start_flow(a, nullptr);
  eps.start_flow(b, nullptr);
  eps.start_flow(c, nullptr);
  EXPECT_EQ(eps.active_groups(), 2u);
  // After (0,1) drains, start another (0,1) flow plus a zero-byte one that
  // vanishes within its creation instant.
  sim.schedule_at(SimTime::seconds(3.0), [&] {
    EXPECT_EQ(eps.active_groups(), 0u);
    Flow& d = fx.make(RackId{0}, RackId{1}, DataSize::gigabytes(1.25));
    Flow& z = fx.make(RackId{0}, RackId{1}, DataSize::zero());
    d.set_path(FlowPath::kEps);
    z.set_path(FlowPath::kEps);
    eps.start_flow(d, nullptr);
    eps.start_flow(z, nullptr);
    EXPECT_EQ(eps.active_groups(), 1u);
  });
  sim.run();
  for (const auto& f : fx.flows) EXPECT_TRUE(f->completed());
  EXPECT_EQ(eps.active_flows(), 0u);
  EXPECT_EQ(eps.active_groups(), 0u);
}

TEST(EpsFabric, DemandAddedExtendsTransfer) {
  Simulator sim;
  EpsFabric eps(sim, small_topo());
  FlowFixture fx;
  Flow& f = fx.make(RackId{0}, RackId{1}, DataSize::gigabytes(1.25));
  f.set_path(FlowPath::kEps);
  eps.start_flow(f, nullptr);
  sim.schedule_at(SimTime::seconds(0.5), [&] {
    f.add_demand(DataSize::gigabytes(1.25));
    eps.demand_added(f);
  });
  sim.run();
  EXPECT_NEAR(f.completion_time().sec(), 2.0, 1e-9);
}

TEST(EpsFabric, ByteAccountingSeparatesEpsAndLocal) {
  Simulator sim;
  EpsFabric eps(sim, small_topo());
  FlowFixture fx;
  Flow& cross = fx.make(RackId{0}, RackId{1}, DataSize::gigabytes(2));
  Flow& local = fx.make(RackId{2}, RackId{2}, DataSize::gigabytes(3));
  cross.set_path(FlowPath::kEps);
  local.set_path(FlowPath::kLocal);
  eps.start_flow(cross, nullptr);
  eps.start_flow(local, nullptr);
  sim.run();
  EXPECT_NEAR(eps.eps_bytes_transferred().in_gigabytes(), 2.0, 1e-6);
  EXPECT_NEAR(eps.local_bytes_transferred().in_gigabytes(), 3.0, 1e-6);
}

TEST(EpsFabric, OversubscriptionScalesRates) {
  // Same single flow, 20:1 vs 10:1 — double the transfer time.
  for (const auto& [ratio, expected_sec] :
       std::vector<std::pair<double, double>>{{10.0, 1.0}, {20.0, 2.0}}) {
    Simulator sim;
    HybridTopology t = small_topo();
    t.eps_oversubscription = ratio;
    EpsFabric eps(sim, t);
    FlowFixture fx;
    Flow& f = fx.make(RackId{0}, RackId{1}, DataSize::gigabytes(1.25));
    f.set_path(FlowPath::kEps);
    eps.start_flow(f, nullptr);
    sim.run();
    EXPECT_NEAR(f.completion_time().sec(), expected_sec, 1e-6)
        << "ratio " << ratio;
  }
}

TEST(EpsFabric, ManyFlowsAllCompleteAndConserveBytes) {
  Simulator sim;
  EpsFabric eps(sim, small_topo());
  FlowFixture fx;
  Rng rng(5);
  double total_gb = 0;
  std::vector<Flow*> flows;
  for (int i = 0; i < 200; ++i) {
    const auto src = rng.uniform_int(0, 3);
    auto dst = rng.uniform_int(0, 3);
    if (dst == src) dst = (dst + 1) % 4;
    const double gb = 0.1 * static_cast<double>(rng.uniform_int(1, 20));
    total_gb += gb;
    Flow& f = fx.make(RackId{src}, RackId{dst}, DataSize::gigabytes(gb));
    f.set_path(FlowPath::kEps);
    flows.push_back(&f);
    eps.start_flow(f, nullptr);
  }
  sim.run();
  for (Flow* f : flows) EXPECT_TRUE(f->completed());
  EXPECT_NEAR(eps.eps_bytes_transferred().in_gigabytes(), total_gb,
              total_gb * 0.01);
}

// ----------------------------------------------------------------- OCS ----

TEST(OcsSwitch, CircuitComesUpAfterReconfigDelay) {
  Simulator sim;
  OcsSwitch ocs(sim, small_topo());
  double up_at = -1;
  ocs.setup_circuit(RackId{0}, RackId{1}, [&] { up_at = sim.now().sec(); });
  EXPECT_EQ(ocs.out_port_state(RackId{0}), PortState::kReconfiguring);
  EXPECT_EQ(ocs.in_port_state(RackId{1}), PortState::kReconfiguring);
  EXPECT_FALSE(ocs.circuit_up(RackId{0}, RackId{1}));
  sim.run();
  EXPECT_NEAR(up_at, 0.010, 1e-12);
  EXPECT_TRUE(ocs.circuit_up(RackId{0}, RackId{1}));
  EXPECT_EQ(ocs.circuits_established(), 1);
}

TEST(OcsSwitch, PortsAreExclusive) {
  Simulator sim;
  OcsSwitch ocs(sim, small_topo());
  ocs.setup_circuit(RackId{0}, RackId{1}, nullptr);
  EXPECT_FALSE(ocs.out_port_free(RackId{0}));
  EXPECT_FALSE(ocs.in_port_free(RackId{1}));
  EXPECT_TRUE(ocs.out_port_free(RackId{1}));
  EXPECT_TRUE(ocs.in_port_free(RackId{0}));
  // Using a busy port is a programming error.
  EXPECT_THROW(ocs.setup_circuit(RackId{0}, RackId{2}, nullptr),
               CheckFailure);
  EXPECT_THROW(ocs.setup_circuit(RackId{2}, RackId{1}, nullptr),
               CheckFailure);
}

TEST(OcsSwitch, SelfCircuitRejected) {
  Simulator sim;
  OcsSwitch ocs(sim, small_topo());
  EXPECT_THROW(ocs.setup_circuit(RackId{1}, RackId{1}, nullptr),
               CheckFailure);
}

TEST(OcsSwitch, TeardownFreesPortsImmediately) {
  Simulator sim;
  OcsSwitch ocs(sim, small_topo());
  ocs.setup_circuit(RackId{0}, RackId{1}, nullptr);
  sim.run();
  ASSERT_TRUE(ocs.circuit_up(RackId{0}, RackId{1}));
  ocs.teardown_circuit(RackId{0}, RackId{1});
  EXPECT_TRUE(ocs.out_port_free(RackId{0}));
  EXPECT_TRUE(ocs.in_port_free(RackId{1}));
  EXPECT_FALSE(ocs.circuit_up(RackId{0}, RackId{1}));
}

TEST(OcsSwitch, TeardownDuringReconfigCancelsSetup) {
  Simulator sim;
  OcsSwitch ocs(sim, small_topo());
  bool came_up = false;
  ocs.setup_circuit(RackId{0}, RackId{1}, [&] { came_up = true; });
  sim.schedule_at(SimTime::seconds(0.001), [&] {
    ocs.teardown_circuit(RackId{0}, RackId{1});
  });
  sim.run();
  EXPECT_FALSE(came_up);
  EXPECT_TRUE(ocs.out_port_free(RackId{0}));
  EXPECT_TRUE(ocs.in_port_free(RackId{1}));
  EXPECT_EQ(ocs.circuits_established(), 0);
}

TEST(OcsSwitch, PortsCanBeReusedAfterTeardownDuringReconfig) {
  Simulator sim;
  OcsSwitch ocs(sim, small_topo());
  ocs.setup_circuit(RackId{0}, RackId{1}, nullptr);
  bool second_up = false;
  sim.schedule_at(SimTime::seconds(0.002), [&] {
    ocs.teardown_circuit(RackId{0}, RackId{1});
    ocs.setup_circuit(RackId{0}, RackId{2}, [&] { second_up = true; });
  });
  sim.run();
  EXPECT_TRUE(second_up);
  EXPECT_TRUE(ocs.circuit_up(RackId{0}, RackId{2}));
  // The first (cancelled) setup must not have flipped state.
  EXPECT_TRUE(ocs.in_port_free(RackId{1}));
}

TEST(OcsSwitch, NotAllStopOtherCircuitKeepsRunning) {
  Simulator sim;
  OcsSwitch ocs(sim, small_topo());
  ocs.setup_circuit(RackId{0}, RackId{1}, nullptr);
  sim.run();
  ASSERT_TRUE(ocs.circuit_up(RackId{0}, RackId{1}));
  // Setting up 2->3 must not disturb the 0->1 circuit.
  ocs.setup_circuit(RackId{2}, RackId{3}, nullptr);
  EXPECT_TRUE(ocs.circuit_up(RackId{0}, RackId{1}));
  sim.run();
  EXPECT_TRUE(ocs.circuit_up(RackId{2}, RackId{3}));
  EXPECT_TRUE(ocs.circuit_up(RackId{0}, RackId{1}));
}

TEST(OcsSwitch, ConnectedToReportsPeer) {
  Simulator sim;
  OcsSwitch ocs(sim, small_topo());
  EXPECT_FALSE(ocs.connected_to(RackId{0}).has_value());
  ocs.setup_circuit(RackId{0}, RackId{3}, nullptr);
  ASSERT_TRUE(ocs.connected_to(RackId{0}).has_value());
  EXPECT_EQ(*ocs.connected_to(RackId{0}), RackId{3});
}

// ------------------------------------------------------------- Network ----

TEST(Network, ClassifiesByElephantThreshold) {
  Simulator sim;
  HybridTopology t = small_topo();
  Network net(sim, t, std::make_unique<OcsFabric>(sim, t, 1));
  IdAllocator<FlowId> ids;
  Flow local(ids.next(), CoflowId{0}, JobId{0}, RackId{1}, RackId{1},
             DataSize::gigabytes(5));
  Flow small(ids.next(), CoflowId{0}, JobId{0}, RackId{0}, RackId{1},
             DataSize::gigabytes(1.0));
  Flow elephant(ids.next(), CoflowId{0}, JobId{0}, RackId{0}, RackId{1},
                DataSize::gigabytes(1.125));
  EXPECT_EQ(net.classify(local), FlowPath::kLocal);
  EXPECT_EQ(net.classify(small), FlowPath::kEps);
  EXPECT_EQ(net.classify(elephant), FlowPath::kOcs);
}

TEST(Network, OcsByteAccounting) {
  Simulator sim;
  const HybridTopology t = small_topo();
  Network net(sim, t, std::make_unique<OcsFabric>(sim, t, 1));
  net.note_ocs_bytes(DataSize::gigabytes(2));
  net.note_ocs_bytes(DataSize::gigabytes(3));
  EXPECT_NEAR(net.ocs_bytes_transferred().in_gigabytes(), 5.0, 1e-9);
}

}  // namespace
}  // namespace cosched
