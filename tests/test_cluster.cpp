// Unit tests for the cluster module: slot accounting, task lifecycle,
// block-placement policies, Job bookkeeping, T_rem estimation.
#include <gtest/gtest.h>

#include <set>

#include "cluster/block_placement.h"
#include "cluster/cluster.h"
#include "cluster/job.h"
#include "cluster/task.h"
#include "cluster/trem_estimator.h"
#include "common/check.h"
#include "common/rng.h"

namespace cosched {
namespace {

HybridTopology tiny_topo() {
  HybridTopology t;
  t.num_racks = 4;
  t.servers_per_rack = 2;
  t.slots_per_server = 3;
  return t;
}

// -------------------------------------------------------------- cluster ---

TEST(Cluster, InitialCapacity) {
  Cluster c(tiny_topo());
  EXPECT_EQ(c.num_racks(), 4);
  EXPECT_EQ(c.slots_per_rack(), 6);
  EXPECT_EQ(c.total_free_slots(), 24);
  EXPECT_EQ(c.free_slots(RackId{0}), 6);
  EXPECT_EQ(c.used_slots(RackId{0}), 0);
}

TEST(Cluster, AllocateReleaseRoundTrip) {
  Cluster c(tiny_topo());
  const NodeId n = c.allocate_slot(RackId{1});
  EXPECT_EQ(c.free_slots(RackId{1}), 5);
  EXPECT_EQ(c.total_free_slots(), 23);
  c.release_slot(RackId{1}, n);
  EXPECT_EQ(c.free_slots(RackId{1}), 6);
  EXPECT_EQ(c.total_free_slots(), 24);
}

TEST(Cluster, BalancesAcrossServers) {
  Cluster c(tiny_topo());
  const NodeId a = c.allocate_slot(RackId{0});
  const NodeId b = c.allocate_slot(RackId{0});
  EXPECT_NE(a, b);  // second allocation goes to the other (emptier) server
}

TEST(Cluster, ExhaustionThrows) {
  Cluster c(tiny_topo());
  for (int i = 0; i < 6; ++i) (void)c.allocate_slot(RackId{2});
  EXPECT_EQ(c.free_slots(RackId{2}), 0);
  EXPECT_THROW((void)c.allocate_slot(RackId{2}), CheckFailure);
}

TEST(Cluster, DoubleReleaseThrows) {
  Cluster c(tiny_topo());
  const NodeId n = c.allocate_slot(RackId{0});
  c.release_slot(RackId{0}, n);
  EXPECT_THROW(c.release_slot(RackId{0}, n), CheckFailure);
}

TEST(Cluster, ReleaseOnWrongRackThrows) {
  Cluster c(tiny_topo());
  const NodeId n = c.allocate_slot(RackId{0});
  EXPECT_THROW(c.release_slot(RackId{3}, n), CheckFailure);
}

// ----------------------------------------------------------------- task ---

TEST(Task, MapLifecycle) {
  Task t(TaskId{0}, JobId{0}, TaskKind::kMap, 0, Duration::seconds(10));
  EXPECT_EQ(t.state(), TaskState::kPending);
  t.place(RackId{1}, NodeId{3}, SimTime::seconds(5));
  EXPECT_EQ(t.state(), TaskState::kRunning);
  EXPECT_TRUE(t.compute_started());
  EXPECT_NEAR(t.true_remaining(SimTime::seconds(9)).sec(), 6.0, 1e-12);
  t.complete(SimTime::seconds(15));
  EXPECT_EQ(t.state(), TaskState::kCompleted);
}

TEST(Task, ReduceWaitsForShuffleBeforeComputing) {
  Task t(TaskId{0}, JobId{0}, TaskKind::kReduce, 0, Duration::seconds(20));
  t.place(RackId{0}, NodeId{0}, SimTime::seconds(0));
  EXPECT_FALSE(t.compute_started());
  t.begin_compute(SimTime::seconds(30));
  EXPECT_TRUE(t.compute_started());
  EXPECT_NEAR(t.true_remaining(SimTime::seconds(35)).sec(), 15.0, 1e-12);
  t.complete(SimTime::seconds(50));
}

TEST(Task, ReadPenaltyExtendsRun) {
  Task t(TaskId{0}, JobId{0}, TaskKind::kMap, 0, Duration::seconds(10));
  t.set_read_penalty(Duration::seconds(2));
  EXPECT_NEAR(t.run_duration().sec(), 12.0, 1e-12);
}

TEST(Task, CompleteBeforeComputeThrows) {
  Task t(TaskId{0}, JobId{0}, TaskKind::kReduce, 0, Duration::seconds(1));
  t.place(RackId{0}, NodeId{0}, SimTime::zero());
  EXPECT_THROW(t.complete(SimTime::seconds(1)), CheckFailure);
}

// ------------------------------------------------------------ placement ---

TEST(BlockPlacement, RandomReplicasAreDistinctRacks) {
  Rng rng(1);
  const auto blocks = place_blocks_random(50, 10, 3, rng);
  ASSERT_EQ(blocks.size(), 50u);
  for (const auto& b : blocks) {
    ASSERT_EQ(b.racks.size(), 3u);
    std::set<RackId> uniq(b.racks.begin(), b.racks.end());
    EXPECT_EQ(uniq.size(), 3u);
    for (RackId r : b.racks) EXPECT_LT(r.value(), 10);
  }
}

TEST(BlockPlacement, RandomClampsReplicationToRackCount) {
  Rng rng(1);
  const auto blocks = place_blocks_random(5, 2, 3, rng);
  for (const auto& b : blocks) EXPECT_EQ(b.racks.size(), 2u);
}

TEST(BlockPlacement, ClusteredSetsAreDisjointAndEven) {
  Rng rng(2);
  std::vector<std::vector<RackId>> sets;
  const auto blocks = place_blocks_clustered(40, 30, 3, 4, rng, &sets);
  ASSERT_EQ(sets.size(), 3u);
  std::set<RackId> all;
  for (const auto& set : sets) {
    EXPECT_EQ(set.size(), 4u);
    all.insert(set.begin(), set.end());
  }
  EXPECT_EQ(all.size(), 12u) << "replica sets must be disjoint";

  // Replica k of every block lands in set k, spread evenly.
  for (std::size_t k = 0; k < 3; ++k) {
    std::map<RackId, int> counts;
    for (const auto& b : blocks) ++counts[b.racks[k]];
    for (const auto& [rack, n] : counts) {
      EXPECT_EQ(n, 10);  // 40 blocks over 4 racks
      EXPECT_NE(std::find(sets[k].begin(), sets[k].end(), rack),
                sets[k].end());
    }
  }
}

TEST(BlockPlacement, ClusteredClampsWhenSetsDoNotFit) {
  Rng rng(3);
  std::vector<std::vector<RackId>> sets;
  // r_data=10 with 9 racks and replication 3 -> clamp to 3 per set.
  const auto blocks = place_blocks_clustered(10, 9, 3, 10, rng, &sets);
  EXPECT_EQ(sets.size(), 3u);
  for (const auto& set : sets) EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(blocks.size(), 10u);
}

TEST(BlockPlacement, OnRacksConfinesReplicas) {
  Rng rng(4);
  const std::vector<RackId> racks{RackId{2}, RackId{5}, RackId{7}};
  const auto blocks = place_blocks_on_racks(20, racks, 3, rng);
  for (const auto& b : blocks) {
    for (RackId r : b.racks) {
      EXPECT_NE(std::find(racks.begin(), racks.end(), r), racks.end());
    }
  }
}

// ------------------------------------------------------------------ job ---

JobSpec simple_spec(std::int32_t maps, std::int32_t reduces) {
  JobSpec s;
  s.id = JobId{7};
  s.user = UserId{1};
  s.num_maps = maps;
  s.num_reduces = reduces;
  s.input_size = DataSize::gigabytes(maps);  // 1 GB blocks
  s.sir = 2.0;
  s.map_durations.assign(static_cast<std::size_t>(maps),
                         Duration::seconds(10));
  s.reduce_durations.assign(static_cast<std::size_t>(reduces),
                            Duration::seconds(20));
  return s;
}

TEST(Job, ConstructionBuildsTasks) {
  IdAllocator<TaskId> ids;
  Job job(simple_spec(4, 2), DataSize::gigabytes(1.125), ids, CoflowId{7});
  EXPECT_EQ(job.maps().size(), 4u);
  EXPECT_EQ(job.reduces().size(), 2u);
  EXPECT_TRUE(job.shuffle_heavy());  // 4 GB * 2.0 = 8 GB >= 1.125 GB
  EXPECT_FALSE(job.all_maps_done());
  EXPECT_FALSE(job.has_block_placement());
}

TEST(Job, LocalityIndexFindsPendingMaps) {
  IdAllocator<TaskId> ids;
  Job job(simple_spec(3, 0), DataSize::gigabytes(100), ids, CoflowId{7});
  std::vector<BlockReplicas> blocks(3);
  blocks[0].racks = {RackId{0}, RackId{1}};
  blocks[1].racks = {RackId{1}, RackId{2}};
  blocks[2].racks = {RackId{2}, RackId{0}};
  job.set_block_placement(blocks);

  EXPECT_TRUE(job.map_local_on(0, RackId{1}));
  EXPECT_FALSE(job.map_local_on(0, RackId{2}));

  Task* t = job.next_pending_map_local(RackId{1});
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(job.map_local_on(t->index(), RackId{1}));

  // Placing it removes it from all rack queues (lazily).
  t->place(RackId{1}, NodeId{0}, SimTime::zero());
  Task* t2 = job.next_pending_map_local(RackId{1});
  ASSERT_NE(t2, nullptr);
  EXPECT_NE(t2->index(), t->index());
}

TEST(Job, NextPendingMapAnyWalksAllMaps) {
  IdAllocator<TaskId> ids;
  Job job(simple_spec(3, 0), DataSize::gigabytes(100), ids, CoflowId{7});
  Rng rng(1);
  job.set_block_placement(place_blocks_random(3, 4, 2, rng));
  std::set<std::int32_t> seen;
  while (Task* t = job.next_pending_map_any()) {
    seen.insert(t->index());
    t->place(RackId{0}, NodeId{0}, SimTime::zero());
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Job, ReducePlanAccounting) {
  IdAllocator<TaskId> ids;
  Job job(simple_spec(2, 4), DataSize::gigabytes(1.125), ids, CoflowId{7});
  job.set_reduce_plan({{RackId{0}, 3}, {RackId{1}, 1}}, Duration::seconds(5));
  EXPECT_TRUE(job.has_reduce_plan());
  EXPECT_EQ(job.reduce_plan_remaining(RackId{0}), 3);
  EXPECT_EQ(job.reduce_plan_remaining(RackId{2}), 0);
  job.note_reduce_placed(RackId{0});
  EXPECT_EQ(job.reduce_plan_remaining(RackId{0}), 2);
  job.clear_reduce_plan();
  EXPECT_FALSE(job.has_reduce_plan());
}

TEST(Job, MapCompletionBookkeeping) {
  IdAllocator<TaskId> ids;
  Job job(simple_spec(2, 1), DataSize::gigabytes(1.125), ids, CoflowId{7});
  job.note_map_placed(RackId{3});
  job.note_map_completed(RackId{3}, DataSize::gigabytes(2));
  job.note_map_placed(RackId{3});
  job.note_map_completed(RackId{3}, DataSize::gigabytes(2));
  EXPECT_TRUE(job.all_maps_done());
  EXPECT_EQ(job.map_racks_used().size(), 1u);
  EXPECT_NEAR(job.map_output_by_rack().at(RackId{3}).in_gigabytes(), 4.0,
              1e-9);
}

TEST(Job, PreferredRacksDefaultAllowsEverything) {
  IdAllocator<TaskId> ids;
  Job job(simple_spec(1, 0), DataSize::gigabytes(1), ids, CoflowId{7});
  EXPECT_TRUE(job.rack_preferred(RackId{9}));
  job.set_preferred_racks({RackId{1}});
  EXPECT_TRUE(job.rack_preferred(RackId{1}));
  EXPECT_FALSE(job.rack_preferred(RackId{9}));
}

// ------------------------------------------------------------------ trem ---

TEST(Trem, ZeroErrorIsExact) {
  TremEstimator est(Rng(1), 0.0);
  Task t(TaskId{5}, JobId{0}, TaskKind::kMap, 0, Duration::seconds(100));
  t.place(RackId{0}, NodeId{0}, SimTime::zero());
  EXPECT_NEAR(est.estimate(t, SimTime::seconds(40)).sec(), 60.0, 1e-12);
}

TEST(Trem, ErrorFactorIsStablePerTask) {
  TremEstimator est(Rng(1), 0.5);
  Task t(TaskId{5}, JobId{0}, TaskKind::kMap, 0, Duration::seconds(100));
  t.place(RackId{0}, NodeId{0}, SimTime::zero());
  const double f = est.factor_for(t.id());
  EXPECT_GE(f, 0.5);
  EXPECT_LE(f, 1.5);
  EXPECT_DOUBLE_EQ(est.factor_for(t.id()), f);
  EXPECT_NEAR(est.estimate(t, SimTime::seconds(40)).sec(), 60.0 * f, 1e-9);
}

TEST(Trem, FactorsBoundedByErrorRate) {
  TremEstimator est(Rng(2), 0.3);
  for (int i = 0; i < 100; ++i) {
    const double f = est.factor_for(TaskId{i});
    EXPECT_GE(f, 0.7);
    EXPECT_LE(f, 1.3);
  }
}

TEST(Trem, ForgetResamples) {
  TremEstimator est(Rng(3), 0.5);
  const double f1 = est.factor_for(TaskId{1});
  est.forget(TaskId{1});
  // Resampled factor comes from a later RNG draw — in general different.
  const double f2 = est.factor_for(TaskId{1});
  EXPECT_NE(f1, f2);
}

}  // namespace
}  // namespace cosched
