// Randomized simulation fuzzing under the invariant auditor (ctest -L
// audit). Each iteration draws a seeded random topology x workload x fault
// plan x scheduler x thread count, runs it with every invariant check
// armed, and cross-checks the production fast paths against their
// references: grouped vs per-flow EPS rate engines, incremental vs
// reference scheduler engines (alone and combined — the full 4-way
// sched x rate matrix), and serial vs parallel experiment sharding, all
// bit for bit.
//
// Environment knobs (all optional; tools/fuzz_sim.py drives them):
//   COSCHED_FUZZ_RUNS       iterations (default 4 — keeps tier-1 fast)
//   COSCHED_FUZZ_SEED_BASE  base seed; iteration i uses base + i
//   COSCHED_FUZZ_AUDIT      "0" disables the auditor (perf triage only)
//   COSCHED_FUZZ_CROSS_DISPATCH
//                           "0" skips the offer-queue vs scan dispatch
//                           crossing (on by default)
//   COSCHED_FUZZ_FABRIC     force one --fabric spec (e.g. "ocs:1",
//                           "rotor:50ms") instead of drawing it per case —
//                           with "ocs:1" every case matches the pre-fabric
//                           seam bit for bit
//
// A failure prints the full recipe (seed, topology, fault spec, scheduler,
// threads) so any crash reproduces with COSCHED_FUZZ_RUNS=1 and the seed.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "audit/invariant_auditor.h"
#include "faults/fault_spec.h"
#include "sim/experiment.h"

namespace cosched {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::string(v) != "0";
}

struct FuzzCase {
  std::uint64_t seed = 0;
  ExperimentConfig cfg;
  std::string scheduler;
  std::int32_t threads = 1;
  std::string fault_spec;

  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << "seed=" << seed << " scheduler=" << scheduler
       << " fabric=" << cfg.sim.fabric.to_spec()
       << " threads=" << threads << " racks=" << cfg.sim.topo.num_racks
       << " servers=" << cfg.sim.topo.servers_per_rack
       << " slots=" << cfg.sim.topo.slots_per_server
       << " jobs=" << cfg.workload.num_jobs
       << " heavy=" << cfg.workload.shuffle_heavy_fraction
       << " faults='" << fault_spec << "'";
    return os.str();
  }
};

/// Everything about the case derives from the seed — rerunning a logged
/// seed reproduces the exact run, including its fault plan.
FuzzCase draw_case(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto pick = [&](std::int64_t lo, std::int64_t hi) {
    return static_cast<std::int32_t>(
        std::uniform_int_distribution<std::int64_t>(lo, hi)(rng));
  };
  const auto frac = [&] {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
  };

  FuzzCase c;
  c.seed = seed;
  c.cfg.sim.topo.num_racks = pick(3, 8);
  c.cfg.sim.topo.servers_per_rack = pick(1, 3);
  c.cfg.sim.topo.slots_per_server = pick(2, 8);
  c.cfg.workload.num_jobs = pick(4, 14);
  c.cfg.workload.num_users = pick(1, 4);
  c.cfg.workload.arrival_window = Duration::seconds(pick(30, 180));
  c.cfg.workload.max_maps = pick(10, 50);
  c.cfg.workload.max_reduces = pick(2, 8);
  c.cfg.workload.shuffle_heavy_fraction = 0.5 * frac();
  c.cfg.workload.heavy_input_mu = 2.0 + frac();
  c.cfg.workload.heavy_input_sigma = 0.5 + 0.5 * frac();
  c.cfg.workload.max_input = DataSize::gigabytes(30);
  c.cfg.repetitions = 2;
  c.cfg.base_seed = seed;
  c.cfg.sim.audit = env_flag("COSCHED_FUZZ_AUDIT", true);

  // Compose a random fault plan clause by clause (possibly empty).
  std::ostringstream spec;
  const auto append = [&](const std::string& clause) {
    if (spec.tellp() > 0) spec << ",";
    spec << clause;
  };
  if (frac() < 0.5) {
    std::ostringstream s;
    s << "straggler:p=0." << pick(1, 3) << ":slow=" << pick(2, 4);
    append(s.str());
  }
  if (frac() < 0.5) {
    std::ostringstream s;
    s << "container-kill:p=0.0" << pick(1, 9);
    append(s.str());
  }
  if (frac() < 0.5) {
    std::ostringstream s;
    s << "ocs-outage:at=" << pick(10, 90) << "s:dur=" << pick(5, 40) << "s";
    append(s.str());
    if (frac() < 0.3) {
      std::ostringstream s2;
      s2 << "ocs-outage:at=" << pick(100, 200) << "s:dur=" << pick(5, 30)
         << "s";
      append(s2.str());
    }
  }
  if (frac() < 0.3) {
    std::ostringstream s;
    s << "reconfig-jitter:pct=" << pick(10, 90);
    append(s.str());
  }
  if (frac() < 0.3) {
    std::ostringstream s;
    s << "trem-noise:pct=" << pick(5, 40);
    append(s.str());
  }
  const char* schedulers[] = {"fair",     "corral", "coscheduler",
                              "mts+ocas", "ocas",   "delay"};
  c.scheduler = schedulers[pick(0, 5)];
  c.threads = pick(1, 3);

  // The fabric axis. Drawn last so every earlier draw — and therefore
  // every pre-existing fuzz case — is unchanged; COSCHED_FUZZ_FABRIC=ocs:1
  // forces the default fabric on the whole sweep (the pre-seam behavior).
  if (const char* forced = std::getenv("COSCHED_FUZZ_FABRIC");
      forced != nullptr && *forced != '\0') {
    std::string fab_error;
    const std::optional<FabricSpec> fs = FabricSpec::parse(forced, &fab_error);
    EXPECT_TRUE(fs.has_value()) << forced << ": " << fab_error;
    c.cfg.sim.fabric = fs.value_or(FabricSpec{});
  } else {
    const char* fabrics[] = {"ocs:1",        "ocs:1", "ocs:1",  "ocs:2",
                             "ocs:3",        "rotor:100ms", "rotor:50ms",
                             "mesh",         "ring"};
    std::string fab_error;
    c.cfg.sim.fabric =
        FabricSpec::parse(fabrics[pick(0, 8)], &fab_error).value();
  }
  // K-core fabrics can lose a single plane: sometimes target one instead of
  // the whole switch (drawn after the fabric, so single-plane cases only
  // consume randomness when the fabric has planes to lose).
  if (c.cfg.sim.fabric.kind == FabricKind::kOcs &&
      c.cfg.sim.fabric.planes > 1 && frac() < 0.4) {
    std::ostringstream s;
    s << "ocs-outage:at=" << pick(20, 120) << "s:dur=" << pick(5, 40)
      << "s:plane=" << pick(0, c.cfg.sim.fabric.planes - 1);
    append(s.str());
  }

  c.fault_spec = spec.str();
  std::string error;
  const std::optional<FaultPlan> plan = FaultPlan::parse(c.fault_spec, &error);
  EXPECT_TRUE(plan.has_value()) << c.fault_spec << ": " << error;
  c.cfg.sim.faults = plan.value_or(FaultPlan{});
  return c;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bitwise_equal(const std::vector<RunMetrics>& a,
                          const std::vector<RunMetrics>& b,
                          const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t rep = 0; rep < a.size(); ++rep) {
    const std::string at = where + " rep" + std::to_string(rep);
    EXPECT_EQ(bits(a[rep].makespan.sec()), bits(b[rep].makespan.sec())) << at;
    EXPECT_EQ(a[rep].ocs_bytes.in_bytes(), b[rep].ocs_bytes.in_bytes()) << at;
    EXPECT_EQ(a[rep].eps_bytes.in_bytes(), b[rep].eps_bytes.in_bytes()) << at;
    EXPECT_EQ(a[rep].local_bytes.in_bytes(), b[rep].local_bytes.in_bytes())
        << at;
    EXPECT_EQ(a[rep].events_executed, b[rep].events_executed) << at;
    EXPECT_EQ(a[rep].dispatch_waves, b[rep].dispatch_waves) << at;
    ASSERT_EQ(a[rep].jobs.size(), b[rep].jobs.size()) << at;
    for (std::size_t j = 0; j < a[rep].jobs.size(); ++j) {
      EXPECT_EQ(bits(a[rep].jobs[j].jct.sec()), bits(b[rep].jobs[j].jct.sec()))
          << at << " job#" << j;
      EXPECT_EQ(bits(a[rep].jobs[j].cct.sec()), bits(b[rep].jobs[j].cct.sec()))
          << at << " job#" << j;
    }
  }
}

TEST(FuzzAudit, RandomConfigsHoldEveryInvariant) {
  const std::uint64_t runs = env_u64("COSCHED_FUZZ_RUNS", 4);
  const std::uint64_t base = env_u64("COSCHED_FUZZ_SEED_BASE", 0xF022'2026);
  for (std::uint64_t i = 0; i < runs; ++i) {
    const FuzzCase c = draw_case(base + i);
    SCOPED_TRACE(c.describe());
    const SchedulerFactory factory = make_scheduler_factory(c.scheduler);

    // Audited serial run with the production (grouped) rate engine.
    std::vector<RunMetrics> serial;
    try {
      serial = run_repetitions(c.cfg, factory);
    } catch (const AuditFailure& e) {
      FAIL() << "invariant violation\n" << e.what();
    } catch (const CheckFailure& e) {
      FAIL() << "check failure\n" << e.what();
    }

    // Parallel sharding must be bit-identical to serial.
    if (c.threads > 1) {
      ParallelExperimentConfig par;
      par.threads = c.threads;
      const std::vector<RunMetrics> sharded =
          run_repetitions(c.cfg, factory, par);
      expect_bitwise_equal(serial, sharded, "serial-vs-parallel");
    }

    // Cross the engine axes: every fast path must agree bit for bit with
    // its reference, alone and combined (the serial run above is
    // incremental-sched x grouped-rates, so these three cover the 4-way
    // sched x rate engine matrix).
    ExperimentConfig eps_ref = c.cfg;
    eps_ref.sim.eps_engine = EpsFabric::RateEngine::kReference;
    expect_bitwise_equal(serial, run_repetitions(eps_ref, factory),
                         "grouped-vs-reference");

    ExperimentConfig sched_ref = c.cfg;
    sched_ref.sim.sched_engine = SchedEngine::kReference;
    expect_bitwise_equal(serial, run_repetitions(sched_ref, factory),
                         "sched-incremental-vs-reference");

    ExperimentConfig both_ref = sched_ref;
    both_ref.sim.eps_engine = EpsFabric::RateEngine::kReference;
    expect_bitwise_equal(serial, run_repetitions(both_ref, factory),
                         "both-engines-reference");

    // Dispatch-engine crossing: the serial run above used the default
    // offer queue; the reference scan — alone and stacked on the
    // all-reference configuration — must land on the same bits.
    if (env_flag("COSCHED_FUZZ_CROSS_DISPATCH", true)) {
      ExperimentConfig scan = c.cfg;
      scan.sim.dispatch_engine = DispatchEngine::kScan;
      expect_bitwise_equal(serial, run_repetitions(scan, factory),
                           "offer-queue-vs-scan");

      ExperimentConfig all_ref = both_ref;
      all_ref.sim.dispatch_engine = DispatchEngine::kScan;
      expect_bitwise_equal(serial, run_repetitions(all_ref, factory),
                           "all-fast-vs-all-reference");
    }
  }
}

}  // namespace
}  // namespace cosched
