// The determinism contract of the experiment harness (ctest -L
// determinism): rerunning the same ExperimentConfig yields byte-identical
// RunMetrics, and the parallel shard path (src/exec/) is bit-for-bit equal
// to the serial path per (scheduler, repetition) — parallelism may only
// change wall clock, never results.
//
// Comparisons go through std::bit_cast on every floating-point field, so
// even sign-of-zero or NaN-payload differences would fail; "close enough"
// does not exist here.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/observability.h"
#include "sim/experiment.h"

namespace cosched {
namespace {

const std::vector<std::string> kAllSchedulers{
    "fair", "corral", "delay", "coscheduler", "mts+ocas", "ocas"};

ExperimentConfig small_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.sim.topo.num_racks = 12;
  cfg.sim.topo.servers_per_rack = 2;
  cfg.sim.topo.slots_per_server = 10;
  cfg.workload.num_jobs = 18;
  cfg.workload.num_users = 4;
  cfg.workload.arrival_window = Duration::minutes(3);
  cfg.workload.max_maps = 60;
  cfg.workload.max_reduces = 8;
  cfg.workload.heavy_input_mu = 2.5;
  cfg.workload.heavy_input_sigma = 0.8;
  cfg.workload.max_input = DataSize::gigabytes(50);
  cfg.repetitions = 3;
  cfg.base_seed = seed;
  return cfg;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_job_bitwise_equal(const JobRecord& a, const JobRecord& b,
                              const std::string& where) {
  EXPECT_EQ(a.id, b.id) << where;
  EXPECT_EQ(a.user, b.user) << where;
  EXPECT_EQ(a.shuffle_heavy, b.shuffle_heavy) << where;
  EXPECT_EQ(a.has_shuffle, b.has_shuffle) << where;
  EXPECT_EQ(bits(a.arrival.sec()), bits(b.arrival.sec())) << where;
  EXPECT_EQ(bits(a.completion.sec()), bits(b.completion.sec())) << where;
  EXPECT_EQ(bits(a.jct.sec()), bits(b.jct.sec())) << where;
  EXPECT_EQ(bits(a.cct.sec()), bits(b.cct.sec())) << where;
  EXPECT_EQ(a.shuffle_bytes.in_bytes(), b.shuffle_bytes.in_bytes()) << where;
  EXPECT_EQ(bits(a.last_map_completion.sec()),
            bits(b.last_map_completion.sec()))
      << where;
  EXPECT_EQ(bits(a.first_reduce_placement.sec()),
            bits(b.first_reduce_placement.sec()))
      << where;
  EXPECT_EQ(bits(a.cct_lower_bound.sec()), bits(b.cct_lower_bound.sec()))
      << where;
  EXPECT_EQ(a.all_flows_ocs, b.all_flows_ocs) << where;
}

void expect_run_bitwise_equal(const RunMetrics& a, const RunMetrics& b,
                              const std::string& where,
                              bool ignore_events_executed = false) {
  EXPECT_EQ(a.scheduler, b.scheduler) << where;
  EXPECT_EQ(a.seed, b.seed) << where;
  EXPECT_EQ(bits(a.makespan.sec()), bits(b.makespan.sec())) << where;
  EXPECT_EQ(a.ocs_bytes.in_bytes(), b.ocs_bytes.in_bytes()) << where;
  EXPECT_EQ(a.eps_bytes.in_bytes(), b.eps_bytes.in_bytes()) << where;
  EXPECT_EQ(a.local_bytes.in_bytes(), b.local_bytes.in_bytes()) << where;
  if (!ignore_events_executed) {
    EXPECT_EQ(a.events_executed, b.events_executed) << where;
  }
  ASSERT_EQ(a.jobs.size(), b.jobs.size()) << where;
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    expect_job_bitwise_equal(a.jobs[j], b.jobs[j],
                             where + " job#" + std::to_string(j));
  }
}

void expect_stat_bitwise_equal(const RunningStat& a, const RunningStat& b,
                               const std::string& where) {
  EXPECT_EQ(a.count(), b.count()) << where;
  EXPECT_EQ(bits(a.mean()), bits(b.mean())) << where;
  EXPECT_EQ(bits(a.variance()), bits(b.variance())) << where;
  EXPECT_EQ(bits(a.min()), bits(b.min())) << where;
  EXPECT_EQ(bits(a.max()), bits(b.max())) << where;
  EXPECT_EQ(bits(a.sum()), bits(b.sum())) << where;
}

void expect_aggregate_bitwise_equal(const AggregateMetrics& a,
                                    const AggregateMetrics& b,
                                    const std::string& where) {
  EXPECT_EQ(a.scheduler, b.scheduler) << where;
  EXPECT_EQ(a.repetitions, b.repetitions) << where;
  expect_stat_bitwise_equal(a.makespan_sec, b.makespan_sec,
                            where + " makespan");
  expect_stat_bitwise_equal(a.avg_jct_sec, b.avg_jct_sec, where + " jct");
  expect_stat_bitwise_equal(a.avg_cct_sec, b.avg_cct_sec, where + " cct");
  expect_stat_bitwise_equal(a.avg_jct_heavy_sec, b.avg_jct_heavy_sec,
                            where + " jct_heavy");
  expect_stat_bitwise_equal(a.avg_jct_light_sec, b.avg_jct_light_sec,
                            where + " jct_light");
  expect_stat_bitwise_equal(a.avg_cct_heavy_sec, b.avg_cct_heavy_sec,
                            where + " cct_heavy");
  expect_stat_bitwise_equal(a.avg_cct_light_sec, b.avg_cct_light_sec,
                            where + " cct_light");
  expect_stat_bitwise_equal(a.ocs_fraction, b.ocs_fraction,
                            where + " ocs_fraction");
}

TEST(Determinism, SerialRerunIsByteIdentical) {
  const ExperimentConfig cfg = small_config(42);
  for (const std::string& name : kAllSchedulers) {
    const SchedulerFactory factory = make_scheduler_factory(name);
    const std::vector<RunMetrics> first = run_repetitions(cfg, factory);
    const std::vector<RunMetrics> second = run_repetitions(cfg, factory);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t rep = 0; rep < first.size(); ++rep) {
      expect_run_bitwise_equal(
          first[rep], second[rep],
          name + " rep" + std::to_string(rep) + " (serial rerun)");
    }
  }
}

TEST(Determinism, ParallelMatchesSerialPerRepetition) {
  const ExperimentConfig cfg = small_config(7);
  ParallelExperimentConfig par;
  par.threads = 4;
  for (const std::string& name : kAllSchedulers) {
    const SchedulerFactory factory = make_scheduler_factory(name);
    const std::vector<RunMetrics> serial = run_repetitions(cfg, factory);
    const std::vector<RunMetrics> parallel =
        run_repetitions(cfg, factory, par);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t rep = 0; rep < serial.size(); ++rep) {
      expect_run_bitwise_equal(
          serial[rep], parallel[rep],
          name + " rep" + std::to_string(rep) + " (parallel vs serial)");
    }
  }
}

TEST(Determinism, ParallelCompareSchedulersMatchesSerial) {
  const ExperimentConfig cfg = small_config(1234);
  ParallelExperimentConfig par;
  par.threads = 4;
  const std::vector<AggregateMetrics> serial =
      compare_schedulers(cfg, kAllSchedulers);
  const std::vector<AggregateMetrics> parallel =
      compare_schedulers(cfg, kAllSchedulers, par);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    expect_aggregate_bitwise_equal(serial[s], parallel[s],
                                   kAllSchedulers[s] + " (aggregate)");
  }
}

TEST(Determinism, HardwareConcurrencyMatchesSerial) {
  const ExperimentConfig cfg = small_config(99);
  ParallelExperimentConfig par;
  par.threads = 0;  // one worker per hardware thread
  const SchedulerFactory factory = make_scheduler_factory("coscheduler");
  const std::vector<RunMetrics> serial = run_repetitions(cfg, factory);
  const std::vector<RunMetrics> parallel = run_repetitions(cfg, factory, par);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t rep = 0; rep < serial.size(); ++rep) {
    expect_run_bitwise_equal(serial[rep], parallel[rep],
                             "threads=0 rep" + std::to_string(rep));
  }
}

// Attaching an observability bundle must not perturb simulation results,
// and in the parallel path it must stay confined to the designated
// repetition — the contract that keeps --trace-out meaningful under
// --threads=N. The one exemption is events_executed on the observed
// repetition itself: the CounterRegistry samples gauges via extra
// simulator events, which are counted but never touch simulation state.
TEST(Determinism, ObservabilityAttachmentDoesNotPerturbParallelResults) {
  ExperimentConfig cfg = small_config(5);
  ParallelExperimentConfig par;
  par.threads = 4;
  par.observed_repetition = 1;
  const SchedulerFactory factory = make_scheduler_factory("coscheduler");
  const std::vector<RunMetrics> plain = run_repetitions(cfg, factory);

  Observability obs;
  cfg.sim.obs = &obs;
  const std::vector<RunMetrics> observed = run_repetitions(cfg, factory, par);
  ASSERT_EQ(plain.size(), observed.size());
  for (std::size_t rep = 0; rep < plain.size(); ++rep) {
    const bool is_observed_rep =
        rep == static_cast<std::size_t>(par.observed_repetition);
    expect_run_bitwise_equal(plain[rep], observed[rep],
                             "observed rep" + std::to_string(rep),
                             /*ignore_events_executed=*/is_observed_rep);
  }
  // The designated repetition actually recorded something; the obs bundle
  // was dropped (not raced over) on every other repetition.
  EXPECT_GT(obs.trace.events().size(), 0u);
}

}  // namespace
}  // namespace cosched
