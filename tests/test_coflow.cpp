// Unit tests for the coflow module: traffic matrix, CCT lower bound,
// Hopcroft–Karp matching, BvN/Inukai clearance, and the Sunflow circuit
// scheduler.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "coflow/bvn_clearance.h"
#include "coflow/cct_bound.h"
#include "coflow/coflow.h"
#include "coflow/matching.h"
#include "coflow/sunflow.h"
#include "coflow/traffic_matrix.h"
#include "common/rng.h"
#include "fabric/ocs_fabric.h"
#include "net/network.h"

namespace cosched {
namespace {

// -------------------------------------------------------------- matrix ----

TEST(TrafficMatrix, AccumulatesAndSums) {
  TrafficMatrix m;
  m.add(RackId{0}, RackId{1}, DataSize::gigabytes(1));
  m.add(RackId{0}, RackId{1}, DataSize::gigabytes(2));
  m.add(RackId{0}, RackId{2}, DataSize::gigabytes(4));
  m.add(RackId{1}, RackId{2}, DataSize::gigabytes(8));
  EXPECT_EQ(m.num_entries(), 3u);
  EXPECT_NEAR(m.at(RackId{0}, RackId{1}).in_gigabytes(), 3.0, 1e-9);
  EXPECT_NEAR(m.row_sum(RackId{0}).in_gigabytes(), 7.0, 1e-9);
  EXPECT_NEAR(m.col_sum(RackId{2}).in_gigabytes(), 12.0, 1e-9);
  EXPECT_NEAR(m.total().in_gigabytes(), 15.0, 1e-9);
  EXPECT_EQ(m.row_degree(RackId{0}), 2u);
  EXPECT_EQ(m.col_degree(RackId{2}), 2u);
  EXPECT_EQ(m.sources(), (std::vector<RackId>{RackId{0}, RackId{1}}));
  EXPECT_EQ(m.destinations(), (std::vector<RackId>{RackId{1}, RackId{2}}));
}

TEST(TrafficMatrix, ZeroDemandIsIgnored) {
  TrafficMatrix m;
  m.add(RackId{0}, RackId{1}, DataSize::zero());
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.at(RackId{0}, RackId{1}), DataSize::zero());
}

// --------------------------------------------------------------- bound ----

TEST(CctBound, SingleFlowIsTransferPlusDelta) {
  TrafficMatrix m;
  m.add(RackId{0}, RackId{1}, DataSize::gigabytes(1.25));
  const Duration b =
      cct_lower_bound(m, Bandwidth::gbps(100), Duration::milliseconds(10));
  EXPECT_NEAR(b.sec(), 0.1 + 0.01, 1e-12);
}

TEST(CctBound, EmptyMatrixIsZero) {
  EXPECT_EQ(cct_lower_bound(TrafficMatrix{}, Bandwidth::gbps(100),
                            Duration::milliseconds(10)),
            Duration::zero());
}

TEST(CctBound, DominatedByBusiestPort) {
  // Paper example shape (Figure 2 Case 1): maps 3/3/3 racks {0,1,2}, two
  // reduces on rack 0 and one on rack 1, one "unit" = 1 GB per map-reduce
  // pair, unit bandwidth 1 GB/s = 8 Gb/s. Rack 0 receives 12 units over 2
  // flows: bound = 12 + 2 delta.
  TrafficMatrix m;
  m.add(RackId{1}, RackId{0}, DataSize::gigabytes(6));
  m.add(RackId{2}, RackId{0}, DataSize::gigabytes(6));
  m.add(RackId{0}, RackId{1}, DataSize::gigabytes(3));
  m.add(RackId{2}, RackId{1}, DataSize::gigabytes(3));
  const Duration delta = Duration::milliseconds(10);
  const Duration b = cct_lower_bound(m, Bandwidth::gbps(8), delta);
  EXPECT_NEAR(b.sec(), 12.0 + 2 * delta.sec(), 1e-9);
}

TEST(CctBound, AllToAllEqualsPerPortWork) {
  // 3x3 all-to-all, off-diagonal 3 GB each: every port moves 6 GB in 2
  // flows. At 1 GB/s: 6 + 2 delta (Figure 2 Case 2, Job 1).
  TrafficMatrix m;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) m.add(RackId{i}, RackId{j}, DataSize::gigabytes(3));
    }
  }
  const Duration delta = Duration::milliseconds(10);
  const Duration b = cct_lower_bound(m, Bandwidth::gbps(8), delta);
  EXPECT_NEAR(b.sec(), 6.0 + 2 * delta.sec(), 1e-9);
}

TEST(OcsFlowTime, ZeroSizeZeroTime) {
  EXPECT_EQ(ocs_flow_time(DataSize::zero(), Bandwidth::gbps(100),
                          Duration::milliseconds(10)),
            Duration::zero());
}

// ------------------------------------------------------------- matching ---

TEST(Matching, PerfectOnCompleteBipartite) {
  BipartiteGraph g(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) g.add_edge(i, j);
  }
  const MatchingResult m = maximum_bipartite_matching(g);
  EXPECT_EQ(m.size, 4u);
  std::set<std::size_t> rights(m.match_left.begin(), m.match_left.end());
  EXPECT_EQ(rights.size(), 4u);
}

TEST(Matching, AugmentingPathIsFound) {
  // Greedy would match l0-r0 and strand l1; Hopcroft–Karp augments.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const MatchingResult m = maximum_bipartite_matching(g);
  EXPECT_EQ(m.size, 2u);
  EXPECT_EQ(m.match_left[0], 1u);
  EXPECT_EQ(m.match_left[1], 0u);
}

TEST(Matching, RespectsMissingEdges) {
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  g.add_edge(2, 0);
  const MatchingResult m = maximum_bipartite_matching(g);
  EXPECT_EQ(m.size, 1u);
}

TEST(Matching, EmptyGraph) {
  BipartiteGraph g(3, 2);
  const MatchingResult m = maximum_bipartite_matching(g);
  EXPECT_EQ(m.size, 0u);
  for (auto r : m.match_left) EXPECT_EQ(r, MatchingResult::kUnmatched);
}

TEST(Matching, ConsistencyLeftRight) {
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t nl = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    const std::size_t nr = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    BipartiteGraph g(nl, nr);
    for (std::size_t i = 0; i < nl; ++i) {
      for (std::size_t j = 0; j < nr; ++j) {
        if (rng.bernoulli(0.4)) g.add_edge(i, j);
      }
    }
    const MatchingResult m = maximum_bipartite_matching(g);
    std::size_t count = 0;
    for (std::size_t l = 0; l < nl; ++l) {
      if (m.match_left[l] == MatchingResult::kUnmatched) continue;
      ++count;
      EXPECT_EQ(m.match_right[m.match_left[l]], l);
    }
    EXPECT_EQ(count, m.size);
  }
}

// -------------------------------------------------------------- BvN -------

void verify_clearance(const TrafficMatrix& matrix, Bandwidth bw) {
  const ClearanceSchedule sched = bvn_clearance(matrix, bw);

  // 1. Transfer time equals the bandwidth term of the lower bound.
  Duration expected = Duration::zero();
  for (RackId r : matrix.sources()) {
    expected = std::max(expected, transfer_time(matrix.row_sum(r), bw));
  }
  for (RackId r : matrix.destinations()) {
    expected = std::max(expected, transfer_time(matrix.col_sum(r), bw));
  }
  EXPECT_NEAR(sched.transfer_time().sec(), expected.sec(), 1e-9);

  // 2. Each slot is a valid circuit configuration (port-disjoint).
  for (const auto& slot : sched.slots) {
    std::set<RackId> outs, ins;
    for (const auto& [src, dst] : slot.circuits) {
      EXPECT_TRUE(outs.insert(src).second) << "output port reused in slot";
      EXPECT_TRUE(ins.insert(dst).second) << "input port reused in slot";
    }
  }

  // 3. Replaying the schedule drains every real entry exactly.
  std::map<std::pair<RackId, RackId>, double> left;
  for (const auto& [key, size] : matrix.entries()) {
    left[key] = static_cast<double>(size.in_bytes());
  }
  for (const auto& slot : sched.slots) {
    const double slot_bytes =
        slot.duration.sec() * bw.in_bits_per_sec() / 8.0;
    for (const auto& pair : slot.circuits) {
      auto it = left.find(pair);
      ASSERT_NE(it, left.end()) << "slot lists a circuit with no demand";
      it->second -= slot_bytes;
    }
  }
  for (const auto& [key, remaining] : left) {
    EXPECT_LE(remaining, 1.0) << "entry not fully cleared";
  }
}

TEST(BvnClearance, EmptyMatrixYieldsEmptySchedule) {
  const ClearanceSchedule s = bvn_clearance(TrafficMatrix{},
                                            Bandwidth::gbps(100));
  EXPECT_TRUE(s.slots.empty());
  EXPECT_EQ(s.transfer_time(), Duration::zero());
}

TEST(BvnClearance, SingleEntry) {
  TrafficMatrix m;
  m.add(RackId{0}, RackId{1}, DataSize::gigabytes(2));
  verify_clearance(m, Bandwidth::gbps(100));
  const ClearanceSchedule s = bvn_clearance(m, Bandwidth::gbps(100));
  EXPECT_EQ(s.slots.size(), 1u);
  EXPECT_NEAR(s.total_time(Duration::milliseconds(10)).sec(), 0.16 + 0.01,
              1e-9);
}

TEST(BvnClearance, UniformAllToAllUsesRotations) {
  TrafficMatrix m;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) m.add(RackId{i}, RackId{j}, DataSize::gigabytes(1));
    }
  }
  verify_clearance(m, Bandwidth::gbps(8));
  const ClearanceSchedule s = bvn_clearance(m, Bandwidth::gbps(8));
  // Two rotations of three circuits each clear the matrix in 2 s.
  EXPECT_NEAR(s.transfer_time().sec(), 2.0, 1e-9);
}

TEST(BvnClearance, RectangularMatrixIsPadded) {
  // 3 sources, 1 destination.
  TrafficMatrix m;
  m.add(RackId{0}, RackId{9}, DataSize::gigabytes(1));
  m.add(RackId{1}, RackId{9}, DataSize::gigabytes(2));
  m.add(RackId{2}, RackId{9}, DataSize::gigabytes(3));
  verify_clearance(m, Bandwidth::gbps(8));
  const ClearanceSchedule s = bvn_clearance(m, Bandwidth::gbps(8));
  EXPECT_NEAR(s.transfer_time().sec(), 6.0, 1e-9);
}

TEST(BvnClearance, SkewedMatrixStillMeetsBound) {
  TrafficMatrix m;
  m.add(RackId{0}, RackId{1}, DataSize::gigabytes(10));
  m.add(RackId{0}, RackId{2}, DataSize::gigabytes(1));
  m.add(RackId{3}, RackId{1}, DataSize::gigabytes(1));
  verify_clearance(m, Bandwidth::gbps(8));
}

TEST(BvnClearance, RandomMatricesProperty) {
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    TrafficMatrix m;
    const int racks = 2 + static_cast<int>(rng.uniform_int(0, 6));
    for (int i = 0; i < racks; ++i) {
      for (int j = 0; j < racks; ++j) {
        if (i != j && rng.bernoulli(0.5)) {
          m.add(RackId{i}, RackId{j},
                DataSize::megabytes(
                    static_cast<double>(rng.uniform_int(1, 4000))));
        }
      }
    }
    if (m.empty()) continue;
    verify_clearance(m, Bandwidth::gbps(100));
  }
}

// ------------------------------------------------------------- coflow -----

TEST(Coflow, AggregatesDemandPerRackPair) {
  IdAllocator<FlowId> ids;
  Coflow c(CoflowId{1}, JobId{7});
  auto [f1, created1] =
      c.add_demand(ids, RackId{0}, RackId{1}, DataSize::gigabytes(1));
  auto [f2, created2] =
      c.add_demand(ids, RackId{0}, RackId{1}, DataSize::gigabytes(2));
  EXPECT_TRUE(created1);
  EXPECT_FALSE(created2);
  EXPECT_EQ(f1, f2);
  EXPECT_NEAR(f1->size().in_gigabytes(), 3.0, 1e-9);
  EXPECT_EQ(c.flows().size(), 1u);
}

TEST(Coflow, CrossRackMatrixExcludesLocalFlows) {
  IdAllocator<FlowId> ids;
  Coflow c(CoflowId{1}, JobId{7});
  c.add_demand(ids, RackId{0}, RackId{0}, DataSize::gigabytes(5));
  c.add_demand(ids, RackId{0}, RackId{1}, DataSize::gigabytes(2));
  const TrafficMatrix m = c.cross_rack_matrix();
  EXPECT_EQ(m.num_entries(), 1u);
  EXPECT_NEAR(m.total().in_gigabytes(), 2.0, 1e-9);
  EXPECT_NEAR(c.total_demand().in_gigabytes(), 7.0, 1e-9);
}

TEST(Coflow, CctIsReleaseToCompletion) {
  Coflow c(CoflowId{1}, JobId{7});
  c.mark_released(SimTime::seconds(10));
  c.mark_released(SimTime::seconds(20));  // second release ignored
  c.mark_completed(SimTime::seconds(25));
  EXPECT_NEAR(c.cct().sec(), 15.0, 1e-12);
}

TEST(Coflow, AllFlowsCompleteTracksFlows) {
  IdAllocator<FlowId> ids;
  Coflow c(CoflowId{1}, JobId{7});
  auto [f, created] =
      c.add_demand(ids, RackId{0}, RackId{1}, DataSize::gigabytes(1));
  EXPECT_FALSE(c.all_flows_complete());
  f->mark_completed(SimTime::seconds(1));
  EXPECT_TRUE(c.all_flows_complete());
}

// ------------------------------------------------------------ sunflow -----

struct SunflowFixture {
  HybridTopology topo;
  Simulator sim;
  Network net;
  SunflowScheduler sunflow;
  IdAllocator<FlowId> flow_ids;
  std::vector<std::unique_ptr<Coflow>> coflows;
  std::vector<FlowId> completed;

  SunflowFixture()
      : topo(make_topo()),
        net(sim, topo, std::make_unique<OcsFabric>(sim, topo, 1)),
        sunflow(sim, net.fabric()) {
    sunflow.set_on_flow_complete(
        [this](Flow& f) { completed.push_back(f.id()); });
  }

  static HybridTopology make_topo() {
    HybridTopology t;
    t.num_racks = 6;
    t.ocs_link = Bandwidth::gbps(100);
    t.ocs_reconfig_delay = Duration::milliseconds(10);
    return t;
  }

  Coflow& make_coflow(JobId job) {
    coflows.push_back(
        std::make_unique<Coflow>(CoflowId{static_cast<std::int64_t>(
                                     coflows.size())},
                                 job));
    return *coflows.back();
  }

  Flow& demand(Coflow& c, int src, int dst, double gb) {
    auto [flow, created] = c.add_demand(flow_ids, RackId{src}, RackId{dst},
                                        DataSize::gigabytes(gb));
    return *flow;
  }

  void submit_all(Coflow& c) {
    for (const auto& f : c.flows()) {
      f->set_path(FlowPath::kOcs);
      sunflow.submit(c, *f);
    }
  }
};

TEST(Sunflow, SingleFlowPaysOneReconfiguration) {
  SunflowFixture fx;
  Coflow& c = fx.make_coflow(JobId{0});
  Flow& f = fx.demand(c, 0, 1, 1.25);  // 0.1 s at 100 Gb/s
  fx.submit_all(c);
  fx.sim.run();
  EXPECT_TRUE(f.completed());
  EXPECT_NEAR(f.completion_time().sec(), 0.01 + 0.1, 1e-9);
  EXPECT_NEAR(fx.net.ocs_bytes_transferred().in_gigabytes(), 1.25, 1e-9);
}

TEST(Sunflow, AllToAllFinishesAtLowerBound) {
  SunflowFixture fx;
  Coflow& c = fx.make_coflow(JobId{0});
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) fx.demand(c, i, j, 1.25);
    }
  }
  fx.submit_all(c);
  fx.sim.run();
  // Two rotations of 3 concurrent circuits: 2 * (0.01 + 0.1).
  double last = 0;
  for (const auto& f : c.flows()) {
    ASSERT_TRUE(f->completed());
    last = std::max(last, f->completion_time().sec());
  }
  EXPECT_NEAR(last, 0.22, 1e-9);
  EXPECT_EQ(fx.sunflow.pending_flows(), 0u);
  EXPECT_EQ(fx.sunflow.active_transfers(), 0u);
}

TEST(Sunflow, ShorterCoflowGoesFirstOnContendedPorts) {
  SunflowFixture fx;
  Coflow& big = fx.make_coflow(JobId{0});
  fx.demand(big, 0, 1, 12.5);  // bound: 1.0 s + delta
  Coflow& small = fx.make_coflow(JobId{1});
  fx.demand(small, 0, 1, 1.25);  // bound: 0.1 s + delta -> higher priority
  fx.submit_all(big);
  fx.submit_all(small);
  fx.sim.run();
  const Flow& fb = *big.flows()[0];
  const Flow& fs = *small.flows()[0];
  // small first: 0.01 + 0.1 = 0.11; big follows: +0.01 + 1.0.
  EXPECT_NEAR(fs.completion_time().sec(), 0.11, 1e-9);
  EXPECT_NEAR(fb.completion_time().sec(), 0.11 + 1.01, 1e-9);
}

TEST(Sunflow, NonPreemptiveOnceStarted) {
  SunflowFixture fx;
  Coflow& big = fx.make_coflow(JobId{0});
  fx.demand(big, 0, 1, 12.5);
  fx.submit_all(big);
  // Let the big transfer begin, then submit a shorter coflow.
  fx.sim.run_until(SimTime::seconds(0.05));
  Coflow& small = fx.make_coflow(JobId{1});
  fx.demand(small, 0, 1, 1.25);
  fx.submit_all(small);
  fx.sim.run();
  const Flow& fb = *big.flows()[0];
  const Flow& fs = *small.flows()[0];
  EXPECT_NEAR(fb.completion_time().sec(), 1.01, 1e-9);
  EXPECT_NEAR(fs.completion_time().sec(), 1.01 + 0.11, 1e-9);
}

TEST(Sunflow, WorkConservationUsesIdlePorts) {
  SunflowFixture fx;
  Coflow& high = fx.make_coflow(JobId{0});
  fx.demand(high, 0, 1, 1.25);
  Coflow& low = fx.make_coflow(JobId{1});
  fx.demand(low, 2, 3, 12.5);  // disjoint ports, lower priority
  fx.submit_all(high);
  fx.submit_all(low);
  fx.sim.run();
  // Both start immediately; the low-priority coflow is not delayed.
  EXPECT_NEAR(low.flows()[0]->completion_time().sec(), 1.01, 1e-9);
  EXPECT_NEAR(high.flows()[0]->completion_time().sec(), 0.11, 1e-9);
}

TEST(Sunflow, DemandGrowthDuringTransferExtendsIt) {
  SunflowFixture fx;
  Coflow& c = fx.make_coflow(JobId{0});
  Flow& f = fx.demand(c, 0, 1, 1.25);
  fx.submit_all(c);
  fx.sim.schedule_at(SimTime::seconds(0.05), [&] {
    f.add_demand(DataSize::gigabytes(1.25));
    fx.sunflow.demand_added(f);
  });
  fx.sim.run();
  // Started at 0.01; by 0.05 moved 4 Gbit; remaining 6+10 = 16 Gbit
  // -> completes at 0.05 + 0.16 = 0.21.
  EXPECT_NEAR(f.completion_time().sec(), 0.21, 1e-9);
}

TEST(Sunflow, DemandGrowthWhilePendingIsPickedUpAtStart) {
  SunflowFixture fx;
  Coflow& blocker = fx.make_coflow(JobId{0});
  fx.demand(blocker, 0, 1, 1.25);
  Coflow& waiter = fx.make_coflow(JobId{1});
  Flow& wf = fx.demand(waiter, 0, 1, 12.5);
  fx.submit_all(blocker);
  fx.submit_all(waiter);
  fx.sim.schedule_at(SimTime::seconds(0.05), [&] {
    wf.add_demand(DataSize::gigabytes(12.5));
    fx.sunflow.demand_added(wf);
  });
  fx.sim.run();
  // blocker: 0.11. waiter starts after: 0.11 + 0.01 + 2.0.
  EXPECT_NEAR(wf.completion_time().sec(), 2.12, 1e-9);
}

TEST(Sunflow, ReservationPreventsPriorityInversion) {
  // High-priority coflow has two flows that must share in-port 1
  // sequentially: (0->1) then (2->1). While (0->1) runs, out-port 2 and
  // in-port... the second flow's ports are momentarily free — without
  // reservation the long low-priority flow (2->1 for job B) would grab
  // them non-preemptively and stall the head coflow.
  SunflowFixture fx;
  Coflow& head = fx.make_coflow(JobId{0});
  fx.demand(head, 0, 1, 1.25);
  fx.demand(head, 2, 1, 1.25);  // waits for in-port 1
  Coflow& tail = fx.make_coflow(JobId{1});
  fx.demand(tail, 2, 1, 125.0);  // 10 s transfer; bound far larger
  fx.submit_all(head);
  fx.submit_all(tail);
  fx.sim.run();
  // Head coflow: 2 sequential flows on in-port 1: 2*(0.01+0.1).
  double head_done = 0;
  for (const auto& f : head.flows()) {
    head_done = std::max(head_done, f->completion_time().sec());
  }
  EXPECT_NEAR(head_done, 0.22, 1e-9);
  // Tail flow runs after: its ports were reserved for the head.
  EXPECT_NEAR(tail.flows()[0]->completion_time().sec(), 0.22 + 0.01 + 10.0,
              1e-9);
}

TEST(Sunflow, LateFlowsOfAdmittedCoflowAreScheduled) {
  SunflowFixture fx;
  Coflow& c = fx.make_coflow(JobId{0});
  Flow& first = fx.demand(c, 0, 1, 1.25);
  first.set_path(FlowPath::kOcs);
  fx.sunflow.submit(c, first);
  // Advance past the first circuit's setup (clock rests at t=0.01).
  fx.sim.run_until(SimTime::seconds(0.05));
  Flow& second = fx.demand(c, 2, 3, 1.25);
  second.set_path(FlowPath::kOcs);
  fx.sunflow.submit(c, second);
  fx.sim.run();
  EXPECT_TRUE(first.completed());
  EXPECT_TRUE(second.completed());
  EXPECT_NEAR(second.completion_time().sec(), 0.01 + 0.11, 1e-9);
}

// Figure 2 regression: the motivation example's placements and CCTs.
// 1 unit = 1 GB at 8 Gb/s (1 GB per unit time), delta = 0.01 units.
TEST(Sunflow, Figure2MotivationCcts) {
  auto build = [](const std::vector<int>& red1, const std::vector<int>& red2,
                  double* cct1, double* cct2) {
    HybridTopology t;
    t.num_racks = 3;
    t.ocs_link = Bandwidth::gbps(8);
    t.ocs_reconfig_delay = Duration::milliseconds(10);
    Simulator sim;
    Network net(sim, t, std::make_unique<OcsFabric>(sim, t, 1));
    SunflowScheduler sunflow(sim, net.fabric());
    IdAllocator<FlowId> ids;
    Coflow job1(CoflowId{1}, JobId{1});
    Coflow job2(CoflowId{2}, JobId{2});
    auto fill = [&](Coflow& c, const std::vector<int>& maps,
                    const std::vector<int>& reds) {
      for (std::size_t i = 0; i < maps.size(); ++i) {
        for (std::size_t j = 0; j < reds.size(); ++j) {
          if (i == j || reds[j] == 0) continue;
          c.add_demand(ids, RackId{static_cast<std::int64_t>(i)},
                       RackId{static_cast<std::int64_t>(j)},
                       DataSize::gigabytes(maps[i] * reds[j]));
        }
      }
      for (const auto& f : c.flows()) {
        f->set_path(FlowPath::kOcs);
        sunflow.submit(c, *f);
      }
    };
    fill(job1, {3, 3, 3}, red1);
    fill(job2, {5, 5, 5}, red2);
    sim.run();
    auto cct = [](const Coflow& c) {
      double last = 0;
      for (const auto& f : c.flows()) {
        last = std::max(last, f->completion_time().sec());
      }
      return last;
    };
    *cct1 = cct(job1);
    *cct2 = cct(job2);
  };

  // Case 1 (packed reduces): paper reports 12+2d for Job1. Our Sunflow
  // needs one extra reconfiguration wave: 12+3d.
  double c1_j1 = 0, c1_j2 = 0;
  build({2, 1, 0}, {2, 1, 0}, &c1_j1, &c1_j2);
  EXPECT_NEAR(c1_j1, 12.03, 1e-6);
  // Job1's lower bound (12 + 2d) is never beaten.
  EXPECT_GE(c1_j1, 12.02 - 1e-9);

  // Case 2 (spread reduces): paper reports 6+2d and 16+3d. We measure
  // 6+2d exactly and 16+4d for Job2 (queueing behind Job1 plus setup).
  double c2_j1 = 0, c2_j2 = 0;
  build({1, 1, 1}, {1, 1, 1}, &c2_j1, &c2_j2);
  EXPECT_NEAR(c2_j1, 6.02, 1e-6);
  EXPECT_NEAR(c2_j2, 16.04, 1e-6);

  // The headline claim: spreading strictly shortens both CCTs.
  EXPECT_LT(c2_j1, c1_j1);
  EXPECT_LT(c2_j2, c1_j2);
}

TEST(Sunflow, ManyCoflowsAllComplete) {
  SunflowFixture fx;
  Rng rng(11);
  std::vector<Coflow*> cs;
  for (int k = 0; k < 10; ++k) {
    Coflow& c = fx.make_coflow(JobId{k});
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int e = 0; e < n; ++e) {
      const int src = static_cast<int>(rng.uniform_int(0, 5));
      int dst = static_cast<int>(rng.uniform_int(0, 5));
      if (dst == src) dst = (dst + 1) % 6;
      fx.demand(c, src, dst,
                1.25 * static_cast<double>(rng.uniform_int(1, 4)));
    }
    cs.push_back(&c);
  }
  for (Coflow* c : cs) fx.submit_all(*c);
  fx.sim.run();
  for (Coflow* c : cs) {
    EXPECT_TRUE(c->all_flows_complete());
  }
  EXPECT_EQ(fx.sunflow.pending_flows(), 0u);
  EXPECT_EQ(fx.sunflow.active_transfers(), 0u);
}

}  // namespace
}  // namespace cosched
