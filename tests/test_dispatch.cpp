// Dispatch-engine equivalence regression (part of `ctest -L determinism`).
//
// The event-driven offer-queue dispatcher must reproduce the retained
// O(racks) round-robin scan *bit for bit*: identical RunMetrics (including
// the dispatch-wave count), identical container-grant sequences, identical
// placements — across every scheduler family (including Delay, whose
// declines mutate skip counters and therefore must never be decline-
// skipped), both scheduler engines, fault churn, OCS outages, and the
// delay-scheduling heartbeat path where whole waves place nothing. Any
// divergence here means the offer queue changed simulation results.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_spec.h"
#include "obs/observability.h"
#include "sim/experiment.h"

namespace cosched {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_runs_bitwise_equal(const std::vector<RunMetrics>& a,
                               const std::vector<RunMetrics>& b,
                               const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t rep = 0; rep < a.size(); ++rep) {
    const std::string at = where + " rep" + std::to_string(rep);
    EXPECT_EQ(bits(a[rep].makespan.sec()), bits(b[rep].makespan.sec())) << at;
    EXPECT_EQ(a[rep].ocs_bytes.in_bytes(), b[rep].ocs_bytes.in_bytes()) << at;
    EXPECT_EQ(a[rep].eps_bytes.in_bytes(), b[rep].eps_bytes.in_bytes()) << at;
    EXPECT_EQ(a[rep].local_bytes.in_bytes(), b[rep].local_bytes.in_bytes())
        << at;
    EXPECT_EQ(a[rep].events_executed, b[rep].events_executed) << at;
    EXPECT_EQ(a[rep].dispatch_waves, b[rep].dispatch_waves) << at;
    ASSERT_EQ(a[rep].jobs.size(), b[rep].jobs.size()) << at;
    for (std::size_t j = 0; j < a[rep].jobs.size(); ++j) {
      const std::string jat = at + " job#" + std::to_string(j);
      EXPECT_EQ(bits(a[rep].jobs[j].jct.sec()), bits(b[rep].jobs[j].jct.sec()))
          << jat;
      EXPECT_EQ(bits(a[rep].jobs[j].cct.sec()), bits(b[rep].jobs[j].cct.sec()))
          << jat;
      EXPECT_EQ(bits(a[rep].jobs[j].first_reduce_placement.sec()),
                bits(b[rep].jobs[j].first_reduce_placement.sec()))
          << jat;
    }
  }
}

ExperimentConfig base_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.sim.topo.num_racks = 12;
  cfg.sim.topo.servers_per_rack = 2;
  cfg.sim.topo.slots_per_server = 6;
  cfg.workload.num_jobs = 16;
  cfg.workload.num_users = 4;
  cfg.workload.arrival_window = Duration::minutes(2);
  cfg.workload.max_maps = 40;
  cfg.workload.max_reduces = 8;
  cfg.workload.heavy_input_mu = 2.5;
  cfg.workload.heavy_input_sigma = 0.8;
  cfg.workload.max_input = DataSize::gigabytes(40);
  cfg.repetitions = 2;
  cfg.base_seed = seed;
  cfg.sim.audit = true;  // offer-queue coherence armed on every case
  return cfg;
}

std::vector<RunMetrics> run_with_dispatch(ExperimentConfig cfg,
                                          const std::string& scheduler,
                                          DispatchEngine engine) {
  cfg.sim.dispatch_engine = engine;
  return run_repetitions(cfg, make_scheduler_factory(scheduler),
                         ParallelExperimentConfig{});
}

FaultPlan parse_plan(const std::string& spec) {
  std::string error;
  const std::optional<FaultPlan> plan = FaultPlan::parse(spec, &error);
  EXPECT_TRUE(plan.has_value()) << spec << ": " << error;
  return plan.value_or(FaultPlan{});
}

TEST(DispatchEquivalence, EverySchedulerFamilyMatchesBitForBit) {
  // "delay" is the decline-impure scheduler (declines advance its skip
  // counters), so it exercises the must-not-skip path; the rest exercise
  // the decline-stamp fast path.
  for (const char* sched : {"coscheduler", "fair", "corral", "delay",
                            "mts+ocas", "ocas"}) {
    SCOPED_TRACE(sched);
    const ExperimentConfig cfg = base_config(3);
    const auto scan = run_with_dispatch(cfg, sched, DispatchEngine::kScan);
    const auto oq =
        run_with_dispatch(cfg, sched, DispatchEngine::kOfferQueue);
    expect_runs_bitwise_equal(scan, oq, sched);
  }
}

TEST(DispatchEquivalence, BothSchedEnginesMatchAcrossDispatchEngines) {
  // The 2x2 grid: {scan, offer-queue} x {reference, incremental} must all
  // land on the same bits — the offer queue's decline skipping composes
  // with the incremental engine's own no-grant memo.
  const ExperimentConfig cfg = base_config(5);
  std::vector<std::vector<RunMetrics>> grid;
  for (const SchedEngine se :
       {SchedEngine::kReference, SchedEngine::kIncremental}) {
    for (const DispatchEngine de :
         {DispatchEngine::kScan, DispatchEngine::kOfferQueue}) {
      ExperimentConfig c = cfg;
      c.sim.sched_engine = se;
      grid.push_back(run_with_dispatch(c, "coscheduler", de));
    }
  }
  for (std::size_t i = 1; i < grid.size(); ++i) {
    expect_runs_bitwise_equal(grid[0], grid[i],
                              "grid cell " + std::to_string(i));
  }
}

TEST(DispatchEquivalence, RandomizedTopologiesMatchBitForBit) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExperimentConfig cfg = base_config(seed);
    // Cross the offer queue's 64-rack word boundary on the larger draws.
    cfg.sim.topo.num_racks = static_cast<std::int32_t>(4 + seed * 17);
    cfg.workload.shuffle_heavy_fraction = 0.15 * static_cast<double>(seed);
    const auto scan =
        run_with_dispatch(cfg, "coscheduler", DispatchEngine::kScan);
    const auto oq =
        run_with_dispatch(cfg, "coscheduler", DispatchEngine::kOfferQueue);
    expect_runs_bitwise_equal(scan, oq, "seed" + std::to_string(seed));
  }
}

TEST(DispatchEquivalence, GrantSequencesIdenticalGrantForGrant) {
  ExperimentConfig cfg = base_config(11);
  cfg.repetitions = 1;

  Observability scan_obs;
  ExperimentConfig scan_cfg = cfg;
  scan_cfg.sim.obs = &scan_obs;
  scan_cfg.sim.dispatch_engine = DispatchEngine::kScan;
  const RunMetrics scan =
      run_once(scan_cfg, make_scheduler_factory("coscheduler"), 0);

  Observability oq_obs;
  ExperimentConfig oq_cfg = cfg;
  oq_cfg.sim.obs = &oq_obs;
  oq_cfg.sim.dispatch_engine = DispatchEngine::kOfferQueue;
  const RunMetrics oq =
      run_once(oq_cfg, make_scheduler_factory("coscheduler"), 0);

  EXPECT_EQ(bits(scan.makespan.sec()), bits(oq.makespan.sec()));
  const auto& a = scan_obs.decisions.grants();
  const auto& b = oq_obs.decisions.grants();
  ASSERT_GT(a.size(), 0u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string at = "grant#" + std::to_string(i);
    EXPECT_EQ(bits(a[i].at.sec()), bits(b[i].at.sec())) << at;
    EXPECT_EQ(a[i].rack, b[i].rack) << at;
    EXPECT_EQ(a[i].job, b[i].job) << at;
    EXPECT_EQ(a[i].task, b[i].task) << at;
    EXPECT_EQ(a[i].is_map, b[i].is_map) << at;
    EXPECT_EQ(a[i].ocas_class, b[i].ocas_class) << at;
  }
}

TEST(DispatchEquivalence, KillChurnAndOutagesMatchBitForBit) {
  // Kills release containers (free-set re-entry mid-event) and requeue
  // tasks; outages trigger the deadlock breaker's plan clearing. Both
  // paths bump the decline epoch — a stale stamp here would diverge.
  ExperimentConfig cfg = base_config(13);
  cfg.sim.faults = parse_plan(
      "container-kill:p=0.09,straggler:p=0.2:slow=3,ocs-outage:at=30s:dur="
      "45s");
  for (const char* sched : {"coscheduler", "delay"}) {
    SCOPED_TRACE(sched);
    const auto scan = run_with_dispatch(cfg, sched, DispatchEngine::kScan);
    const auto oq =
        run_with_dispatch(cfg, sched, DispatchEngine::kOfferQueue);
    expect_runs_bitwise_equal(scan, oq, sched);
  }
}

TEST(DispatchEquivalence, DelayHeartbeatWavesMatchBitForBit) {
  // A tight cluster makes Delay decline whole waves (no local slot free),
  // arming the 1 s re-offer heartbeat: under the offer queue that re-offer
  // must visit the same racks in the same order as the scan's full pass.
  ExperimentConfig cfg = base_config(17);
  cfg.sim.topo.num_racks = 6;
  cfg.sim.topo.servers_per_rack = 1;
  cfg.sim.topo.slots_per_server = 4;
  cfg.workload.num_jobs = 14;
  const auto scan = run_with_dispatch(cfg, "delay", DispatchEngine::kScan);
  const auto oq =
      run_with_dispatch(cfg, "delay", DispatchEngine::kOfferQueue);
  expect_runs_bitwise_equal(scan, oq, "delay-heartbeat");
}

TEST(DispatchEquivalence, DispatchWaveCountIsExportedAndStable) {
  // dispatch_waves lands in RunMetrics, is non-zero for any run that
  // placed tasks, and is invariant across engines (it counts waves that
  // scanned, not racks visited).
  const ExperimentConfig cfg = base_config(19);
  const auto scan =
      run_with_dispatch(cfg, "coscheduler", DispatchEngine::kScan);
  const auto oq =
      run_with_dispatch(cfg, "coscheduler", DispatchEngine::kOfferQueue);
  for (std::size_t rep = 0; rep < scan.size(); ++rep) {
    EXPECT_GT(scan[rep].dispatch_waves, 0u);
    EXPECT_EQ(scan[rep].dispatch_waves, oq[rep].dispatch_waves);
  }
}

}  // namespace
}  // namespace cosched
