// Unit tests for the metrics module: run-level derivations, aggregation,
// percentile digests, fairness index, and the CSV timeline export.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "metrics/metrics.h"
#include "metrics/report.h"

namespace cosched {
namespace {

JobRecord make_job(std::int64_t id, std::int64_t user, bool heavy,
                   double jct_sec, double cct_sec) {
  JobRecord j;
  j.id = JobId{id};
  j.user = UserId{user};
  j.shuffle_heavy = heavy;
  j.has_shuffle = cct_sec > 0;
  j.arrival = SimTime::zero();
  j.completion = SimTime::seconds(jct_sec);
  j.jct = Duration::seconds(jct_sec);
  j.cct = Duration::seconds(cct_sec);
  j.shuffle_bytes = DataSize::gigabytes(heavy ? 10 : 0.5);
  return j;
}

RunMetrics sample_run() {
  RunMetrics m;
  m.scheduler = "test";
  m.makespan = Duration::seconds(100);
  m.jobs.push_back(make_job(0, 0, true, 50, 20));
  m.jobs.push_back(make_job(1, 0, false, 10, 2));
  m.jobs.push_back(make_job(2, 1, false, 20, 0));  // no shuffle
  m.jobs.push_back(make_job(3, 1, true, 40, 10));
  m.ocs_bytes = DataSize::gigabytes(15);
  m.eps_bytes = DataSize::gigabytes(5);
  m.local_bytes = DataSize::gigabytes(1);
  return m;
}

TEST(Metrics, Averages) {
  const RunMetrics m = sample_run();
  EXPECT_DOUBLE_EQ(m.avg_jct_sec(), 30.0);
  EXPECT_NEAR(m.avg_cct_sec(), (20.0 + 2.0 + 10.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.avg_jct_sec(true), 45.0);
  EXPECT_DOUBLE_EQ(m.avg_jct_sec(false), 15.0);
  EXPECT_DOUBLE_EQ(m.avg_cct_sec(true), 15.0);
  EXPECT_DOUBLE_EQ(m.avg_cct_sec(false), 2.0);
}

TEST(Metrics, OcsFractionExcludesLocal) {
  const RunMetrics m = sample_run();
  EXPECT_NEAR(m.ocs_traffic_fraction(), 15.0 / 20.0, 1e-12);
}

TEST(Metrics, OcsFractionZeroWhenNoTraffic) {
  RunMetrics m;
  EXPECT_DOUBLE_EQ(m.ocs_traffic_fraction(), 0.0);
}

TEST(Metrics, AggregateAccumulates) {
  AggregateMetrics agg;
  agg.add(sample_run());
  agg.add(sample_run());
  EXPECT_EQ(agg.repetitions, 2u);
  EXPECT_EQ(agg.scheduler, "test");
  EXPECT_DOUBLE_EQ(agg.makespan_sec.mean(), 100.0);
  EXPECT_DOUBLE_EQ(agg.avg_jct_sec.mean(), 30.0);
}

TEST(Metrics, AggregateRejectsMixedSchedulers) {
  AggregateMetrics agg;
  agg.add(sample_run());
  RunMetrics other = sample_run();
  other.scheduler = "other";
  EXPECT_THROW(agg.add(other), CheckFailure);
}

TEST(Metrics, ImprovementOverMatchesEquation10) {
  EXPECT_NEAR(improvement_over(100.0, 48.8), 0.512, 1e-12);
  EXPECT_NEAR(improvement_over(10.0, 15.0), 0.5, 1e-12);  // absolute value
  EXPECT_THROW((void)improvement_over(0.0, 1.0), CheckFailure);
}

TEST(Report, PercentileDigests) {
  const RunMetrics m = sample_run();
  const PercentileDigest jct = jct_percentiles(m);
  EXPECT_DOUBLE_EQ(jct.max, 50.0);
  EXPECT_DOUBLE_EQ(jct.p50, 30.0);
  const PercentileDigest cct = cct_percentiles(m);
  EXPECT_DOUBLE_EQ(cct.max, 20.0);
}

TEST(Report, JainIndexPerfectlyFairIsOne) {
  RunMetrics m;
  m.scheduler = "t";
  m.jobs.push_back(make_job(0, 0, false, 10, 0));
  m.jobs.push_back(make_job(1, 1, false, 10, 0));
  m.jobs.push_back(make_job(2, 2, false, 10, 0));
  EXPECT_NEAR(jain_fairness_index(m), 1.0, 1e-12);
}

TEST(Report, JainIndexDetectsSkew) {
  RunMetrics m;
  m.scheduler = "t";
  m.jobs.push_back(make_job(0, 0, false, 10, 0));
  m.jobs.push_back(make_job(1, 1, false, 90, 0));
  // Jain for (10, 90): (100)^2 / (2 * (100 + 8100)) = 0.6097...
  EXPECT_NEAR(jain_fairness_index(m), 10000.0 / (2 * 8200.0), 1e-9);
}

TEST(Report, TimelineCsvHasHeaderAndRows) {
  const RunMetrics m = sample_run();
  std::ostringstream os;
  write_job_timeline_csv(os, m);
  const std::string out = os.str();
  EXPECT_NE(out.find("job_id,user,"), std::string::npos);
  // 1 header + 4 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(Report, PercentileDigestsEmptyRunAreZero) {
  RunMetrics m;
  m.scheduler = "t";
  const PercentileDigest jct = jct_percentiles(m);
  EXPECT_DOUBLE_EQ(jct.p50, 0.0);
  EXPECT_DOUBLE_EQ(jct.p90, 0.0);
  EXPECT_DOUBLE_EQ(jct.p99, 0.0);
  EXPECT_DOUBLE_EQ(jct.max, 0.0);
  // A run whose jobs all lack shuffles has an empty CCT digest too.
  m.jobs.push_back(make_job(0, 0, false, 10, 0));
  const PercentileDigest cct = cct_percentiles(m);
  EXPECT_DOUBLE_EQ(cct.max, 0.0);
}

TEST(Report, PercentileDigestsSingleJobCollapse) {
  RunMetrics m;
  m.scheduler = "t";
  m.jobs.push_back(make_job(0, 0, true, 42, 7));
  const PercentileDigest jct = jct_percentiles(m);
  EXPECT_DOUBLE_EQ(jct.p50, 42.0);
  EXPECT_DOUBLE_EQ(jct.p90, 42.0);
  EXPECT_DOUBLE_EQ(jct.p99, 42.0);
  EXPECT_DOUBLE_EQ(jct.max, 42.0);
  const PercentileDigest cct = cct_percentiles(m);
  EXPECT_DOUBLE_EQ(cct.p50, 7.0);
  EXPECT_DOUBLE_EQ(cct.max, 7.0);
}

TEST(Report, PercentileDigestsDuplicateValues) {
  RunMetrics m;
  m.scheduler = "t";
  for (int i = 0; i < 5; ++i) m.jobs.push_back(make_job(i, 0, false, 10, 0));
  const PercentileDigest jct = jct_percentiles(m);
  EXPECT_DOUBLE_EQ(jct.p50, 10.0);
  EXPECT_DOUBLE_EQ(jct.p90, 10.0);
  EXPECT_DOUBLE_EQ(jct.p99, 10.0);
  EXPECT_DOUBLE_EQ(jct.max, 10.0);
}

TEST(Report, JainIndexSingleUserIsOne) {
  RunMetrics m;
  m.scheduler = "t";
  m.jobs.push_back(make_job(0, 7, false, 10, 0));
  m.jobs.push_back(make_job(1, 7, false, 90, 0));
  EXPECT_DOUBLE_EQ(jain_fairness_index(m), 1.0);
}

TEST(Report, JainIndexAllZeroJctIsOne) {
  RunMetrics m;
  m.scheduler = "t";
  m.jobs.push_back(make_job(0, 0, false, 0, 0));
  m.jobs.push_back(make_job(1, 1, false, 0, 0));
  EXPECT_DOUBLE_EQ(jain_fairness_index(m), 1.0);  // 0/0 guarded, not NaN
}

TEST(Report, JainIndexEmptyRunIsOne) {
  RunMetrics m;
  m.scheduler = "t";
  EXPECT_DOUBLE_EQ(jain_fairness_index(m), 1.0);
}

TEST(Report, TimelineCsvGoldenOutput) {
  RunMetrics m;
  m.scheduler = "t";
  JobRecord heavy = make_job(3, 1, true, 25, 5);
  heavy.arrival = SimTime::seconds(10);
  heavy.completion = SimTime::seconds(35);
  m.jobs.push_back(heavy);
  JobRecord light = make_job(4, 0, false, 8, 0);
  light.has_shuffle = false;
  light.cct = Duration::seconds(99);  // must be suppressed: no shuffle
  light.completion = SimTime::seconds(8);
  m.jobs.push_back(light);

  std::ostringstream os;
  write_job_timeline_csv(os, m);
  EXPECT_EQ(os.str(),
            "job_id,user,shuffle_heavy,arrival_sec,completion_sec,jct_sec,"
            "cct_sec,shuffle_gb\n"
            "3,1,1,10,35,25,5,10\n"
            "4,0,0,0,8,8,0,0.5\n");
}

TEST(Report, SummaryMentionsKeyQuantities) {
  const RunMetrics m = sample_run();
  std::ostringstream os;
  print_summary(os, m);
  const std::string out = os.str();
  EXPECT_NE(out.find("makespan"), std::string::npos);
  EXPECT_NE(out.find("OCS share"), std::string::npos);
  EXPECT_NE(out.find("fairness"), std::string::npos);
}

}  // namespace
}  // namespace cosched
