// End-to-end integration tests: full simulations on a small cluster with
// every scheduler, checking completion, determinism, reduce-phase
// semantics, traffic routing, and byte conservation.
#include <gtest/gtest.h>

#include <memory>

#include "sched/corral.h"
#include "sched/coscheduler.h"
#include "sched/fair.h"
#include "sim/driver.h"
#include "sim/experiment.h"
#include "workload/generator.h"

namespace cosched {
namespace {

HybridTopology small_topo() {
  HybridTopology t;
  t.num_racks = 12;
  t.servers_per_rack = 2;
  t.slots_per_server = 10;  // 20 per rack, 240 total
  t.server_nic = Bandwidth::gbps(10);
  t.eps_oversubscription = 10.0;
  t.ocs_link = Bandwidth::gbps(100);
  t.ocs_reconfig_delay = Duration::milliseconds(10);
  t.elephant_threshold = DataSize::gigabytes(1.125);
  return t;
}

SimConfig small_sim() {
  SimConfig cfg;
  cfg.topo = small_topo();
  cfg.seed = 1;
  return cfg;
}

std::vector<JobSpec> small_workload(std::uint64_t seed, std::int32_t jobs = 40) {
  WorkloadConfig cfg;
  cfg.num_jobs = jobs;
  cfg.num_users = 4;
  cfg.arrival_window = Duration::minutes(5);
  cfg.max_maps = 60;
  cfg.max_reduces = 16;
  cfg.heavy_input_mu = 2.0;  // keep heavy jobs modest for the small cluster
  cfg.heavy_input_sigma = 0.7;
  cfg.max_input = DataSize::gigabytes(40);
  Rng rng(seed);
  return generate_workload(cfg, rng);
}

/// One heavy job: 8 GB input, SIR 1.0, 8 maps, 4 reduces.
JobSpec one_heavy_job() {
  JobSpec s;
  s.id = JobId{0};
  s.user = UserId{0};
  s.arrival = SimTime::zero();
  s.num_maps = 8;
  s.num_reduces = 4;
  s.input_size = DataSize::gigabytes(8);
  s.sir = 1.0;
  s.map_durations.assign(8, Duration::seconds(30));
  s.reduce_durations.assign(4, Duration::seconds(20));
  return s;
}

RunMetrics run_with(std::unique_ptr<JobScheduler> sched,
                    std::vector<JobSpec> jobs,
                    SimConfig cfg = small_sim()) {
  SimulationDriver driver(cfg, std::move(jobs), std::move(sched));
  return driver.run();
}

// ------------------------------------------------------------ completion ---

TEST(SimIntegration, FairCompletesWorkload) {
  const RunMetrics m =
      run_with(std::make_unique<FairScheduler>(), small_workload(1));
  EXPECT_EQ(m.jobs.size(), 40u);
  EXPECT_GT(m.makespan.sec(), 0.0);
  for (const auto& j : m.jobs) {
    EXPECT_GT(j.jct.sec(), 0.0);
    EXPECT_GE(j.completion.sec(), j.arrival.sec());
  }
}

TEST(SimIntegration, CorralCompletesWorkload) {
  const RunMetrics m =
      run_with(std::make_unique<CorralScheduler>(), small_workload(1));
  EXPECT_EQ(m.jobs.size(), 40u);
}

TEST(SimIntegration, CoSchedulerCompletesWorkload) {
  const RunMetrics m =
      run_with(std::make_unique<CoScheduler>(), small_workload(1));
  EXPECT_EQ(m.jobs.size(), 40u);
}

TEST(SimIntegration, AblationModesComplete) {
  for (const char* name : {"ocas", "mts+ocas"}) {
    const RunMetrics m =
        run_with(make_scheduler_factory(name)(), small_workload(2));
    EXPECT_EQ(m.jobs.size(), 40u) << name;
    EXPECT_EQ(m.scheduler, name);
  }
}

// ----------------------------------------------------------- determinism ---

TEST(SimIntegration, DeterministicAcrossRuns) {
  const RunMetrics a =
      run_with(std::make_unique<CoScheduler>(), small_workload(3));
  const RunMetrics b =
      run_with(std::make_unique<CoScheduler>(), small_workload(3));
  EXPECT_DOUBLE_EQ(a.makespan.sec(), b.makespan.sec());
  EXPECT_DOUBLE_EQ(a.avg_jct_sec(), b.avg_jct_sec());
  EXPECT_DOUBLE_EQ(a.avg_cct_sec(), b.avg_cct_sec());
  EXPECT_EQ(a.ocs_bytes, b.ocs_bytes);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

// -------------------------------------------------- reduce-phase semantics ---

TEST(SimIntegration, CoSchedulerDefersReducesUntilMapsDone) {
  SimConfig cfg = small_sim();
  std::vector<JobSpec> jobs{one_heavy_job()};
  SimulationDriver driver(cfg, jobs, std::make_unique<CoScheduler>());
  const RunMetrics m = driver.run();
  EXPECT_EQ(m.jobs.size(), 1u);
  // With 8 maps of 30 s on an empty cluster, maps end at t=30 (+ read
  // penalty if any). The coflow must not be released before that.
  EXPECT_TRUE(m.jobs[0].has_shuffle);
  EXPECT_GE(m.jobs[0].jct.sec(), 30.0 + 20.0);
}

TEST(SimIntegration, FairOverlapsReduceWithMaps) {
  // One job with far more maps than slots: maps run in waves, so with
  // slow-start the reduces grab containers long before maps finish.
  JobSpec s = one_heavy_job();
  s.num_maps = 300;  // 240 slots total -> at least two waves
  s.map_durations.assign(300, Duration::seconds(30));
  const RunMetrics fair = run_with(std::make_unique<FairScheduler>(), {s});
  const RunMetrics cosched = run_with(std::make_unique<CoScheduler>(), {s});
  // Both complete; under Fair the job cannot finish faster than two map
  // waves; the point here is just that overlap doesn't break anything.
  EXPECT_EQ(fair.jobs.size(), 1u);
  EXPECT_EQ(cosched.jobs.size(), 1u);
}

// ------------------------------------------------------------ OCS routing ---

TEST(SimIntegration, CoSchedulerPutsHeavyShuffleOnOcs) {
  const RunMetrics m =
      run_with(std::make_unique<CoScheduler>(), {one_heavy_job()});
  // 8 GB shuffle from a single heavy job: Co-scheduler should aggregate it
  // into elephant flows and move (nearly) all cross-rack bytes via OCS.
  EXPECT_GT(m.ocs_traffic_fraction(), 0.8)
      << "ocs=" << m.ocs_bytes << " eps=" << m.eps_bytes;
}

TEST(SimIntegration, FairScattersShuffleOntoEps) {
  const RunMetrics m =
      run_with(std::make_unique<FairScheduler>(), {one_heavy_job()});
  // Fair spreads 8 maps and 4 reduces over 12 racks: per-rack-pair flows
  // are far below 1.125 GB, so nothing qualifies for the OCS.
  EXPECT_LT(m.ocs_traffic_fraction(), 0.2)
      << "ocs=" << m.ocs_bytes << " eps=" << m.eps_bytes;
}

// --------------------------------------------------------- byte conservation

TEST(SimIntegration, ShuffleBytesAreConserved) {
  const auto jobs = small_workload(5);
  const RunMetrics m = run_with(std::make_unique<CoScheduler>(), jobs);
  double expected_gb = 0.0;
  for (const auto& rec : m.jobs) expected_gb += rec.shuffle_bytes.in_gigabytes();
  const double moved_gb = m.ocs_bytes.in_gigabytes() +
                          m.eps_bytes.in_gigabytes() +
                          m.local_bytes.in_gigabytes();
  EXPECT_NEAR(moved_gb, expected_gb, expected_gb * 0.01 + 0.01);
}

TEST(SimIntegration, CctIsMeasuredForEveryShuffleJob) {
  const RunMetrics m =
      run_with(std::make_unique<CoScheduler>(), small_workload(6));
  for (const auto& j : m.jobs) {
    if (j.has_shuffle) {
      EXPECT_GT(j.cct.sec(), 0.0);
      EXPECT_LE(j.cct.sec(), j.jct.sec() + 1e-9);
    }
  }
}

// ------------------------------------------------------------- placement ---

TEST(SimIntegration, CoSchedulerKeepsHeavyMapsOnGuidelineRacks) {
  // One heavy job alone: its maps must stay on R_map racks (no other work
  // competes, so the overflow gate never opens).
  JobSpec s = one_heavy_job();  // 8 GB * SIR 1.0 -> R_map = 2
  SimConfig cfg = small_sim();
  std::vector<JobSpec> jobs{s};
  SimulationDriver driver(cfg, jobs, std::make_unique<CoScheduler>());
  const RunMetrics m = driver.run();
  ASSERT_EQ(m.jobs.size(), 1u);
  // All cross-rack shuffle on OCS implies the maps were aggregated: with
  // maps on 2 racks and 8 GB of shuffle, every rack-pair flow is 2 GB.
  EXPECT_GT(m.ocs_traffic_fraction(), 0.8);
}

TEST(SimIntegration, CorralConfinesJobToItsRackSet) {
  // With strict confinement and one rack-sized job, all shuffle is local.
  JobSpec s = one_heavy_job();
  s.num_maps = 4;
  s.map_durations.assign(4, Duration::seconds(10));
  const RunMetrics m =
      run_with(std::make_unique<CorralScheduler>(), {s});
  // 4 maps + 4 reduces fit one rack (20 slots): shuffle never leaves it.
  EXPECT_NEAR(m.local_bytes.in_gigabytes(), 8.0, 0.1);
  EXPECT_NEAR(m.ocs_bytes.in_gigabytes() + m.eps_bytes.in_gigabytes(), 0.0,
              0.01);
}

TEST(SimIntegration, SirMispredictionDegradesGracefully) {
  // With a large prediction error some heavy jobs are treated as light at
  // submission (random placement), but everything still completes and the
  // actual-SIR classification still plans reduces.
  CoScheduler::Options opts;
  opts.sir_prediction_error = 0.9;
  const RunMetrics m = run_with(std::make_unique<CoScheduler>(opts),
                                small_workload(9));
  EXPECT_EQ(m.jobs.size(), 40u);
}

// -------------------------------------------------------------- estimator ---

TEST(SimIntegration, TremErrorStillCompletes) {
  SimConfig cfg = small_sim();
  cfg.trem_error_rate = 0.5;
  const RunMetrics m = run_with(std::make_unique<CoScheduler>(),
                                small_workload(7), cfg);
  EXPECT_EQ(m.jobs.size(), 40u);
}

// ------------------------------------------------------------- experiment ---

TEST(Experiment, CompareSchedulersAggregates) {
  ExperimentConfig cfg;
  cfg.sim = small_sim();
  cfg.workload.num_jobs = 20;
  cfg.workload.num_users = 4;
  cfg.workload.arrival_window = Duration::minutes(3);
  cfg.workload.max_maps = 40;
  cfg.workload.max_reduces = 8;
  cfg.workload.heavy_input_mu = 2.0;
  cfg.workload.max_input = DataSize::gigabytes(30);
  cfg.repetitions = 2;
  const auto results =
      compare_schedulers(cfg, {"fair", "coscheduler"});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].scheduler, "fair");
  EXPECT_EQ(results[1].scheduler, "coscheduler");
  EXPECT_EQ(results[0].repetitions, 2u);
  EXPECT_GT(results[0].makespan_sec.mean(), 0.0);
  EXPECT_GT(results[1].avg_jct_sec.mean(), 0.0);
}

TEST(Experiment, UnknownSchedulerThrows) {
  EXPECT_THROW((void)make_scheduler_factory("bogus"), CheckFailure);
}

TEST(Experiment, RunOnceIsDeterministic) {
  ExperimentConfig cfg;
  cfg.sim = small_sim();
  cfg.workload.num_jobs = 10;
  cfg.workload.num_users = 2;
  cfg.workload.arrival_window = Duration::minutes(2);
  cfg.workload.max_maps = 20;
  cfg.workload.max_reduces = 4;
  cfg.workload.max_input = DataSize::gigabytes(20);
  const auto factory = make_scheduler_factory("fair");
  const RunMetrics a = run_once(cfg, factory, 0);
  const RunMetrics b = run_once(cfg, factory, 0);
  EXPECT_DOUBLE_EQ(a.makespan.sec(), b.makespan.sec());
  const RunMetrics c = run_once(cfg, factory, 1);
  EXPECT_NE(a.makespan.sec(), c.makespan.sec());
}

}  // namespace
}  // namespace cosched
