// The runtime invariant auditor (ctest -L audit): clean runs across
// schedulers and fault plans pass every check, a deliberately corrupted
// byte ledger is caught with a structured dump, audited runs are
// bit-for-bit identical to unaudited ones, and the event-queue consistency
// scan holds under cancel/compaction churn.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "audit/invariant_auditor.h"
#include "faults/fault_spec.h"
#include "sched/coscheduler.h"
#include "sched/fair.h"
#include "sim/driver.h"
#include "sim/experiment.h"

namespace cosched {
namespace {

FaultPlan parse_plan(const std::string& spec) {
  std::string error;
  const std::optional<FaultPlan> plan = FaultPlan::parse(spec, &error);
  EXPECT_TRUE(plan.has_value()) << spec << ": " << error;
  return plan.value_or(FaultPlan{});
}

/// A small cluster + workload big enough to exercise both fabrics, plan
/// installs, and container churn, small enough to run in milliseconds.
ExperimentConfig small_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.sim.topo.num_racks = 10;
  cfg.sim.topo.servers_per_rack = 2;
  cfg.sim.topo.slots_per_server = 10;
  cfg.workload.num_jobs = 14;
  cfg.workload.num_users = 4;
  cfg.workload.arrival_window = Duration::minutes(3);
  cfg.workload.max_maps = 50;
  cfg.workload.max_reduces = 8;
  cfg.workload.heavy_input_mu = 2.5;
  cfg.workload.heavy_input_sigma = 0.8;
  cfg.workload.max_input = DataSize::gigabytes(40);
  cfg.repetitions = 1;
  cfg.base_seed = seed;
  cfg.sim.audit = true;
  return cfg;
}

JobSpec shuffle_job(std::int64_t id, std::int32_t maps, std::int32_t reduces,
                    double input_gb, double sir) {
  JobSpec s;
  s.id = JobId{id};
  s.user = UserId{0};
  s.num_maps = maps;
  s.num_reduces = reduces;
  s.input_size = DataSize::gigabytes(input_gb);
  s.sir = sir;
  s.map_durations.assign(static_cast<std::size_t>(maps),
                         Duration::seconds(5));
  s.reduce_durations.assign(static_cast<std::size_t>(reduces),
                            Duration::seconds(5));
  return s;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// ---- clean runs across schedulers and fault plans --------------------------

TEST(Audit, CleanRunsPassAcrossSchedulers) {
  const ExperimentConfig cfg = small_config(101);
  for (const std::string name :
       {"fair", "corral", "coscheduler", "mts+ocas", "ocas"}) {
    const SchedulerFactory factory = make_scheduler_factory(name);
    EXPECT_NO_THROW((void)run_once(cfg, factory, 0)) << name;
  }
}

TEST(Audit, CleanRunsPassUnderFullFaultPlan) {
  ExperimentConfig cfg = small_config(202);
  cfg.sim.faults = parse_plan(
      "straggler:p=0.2:slow=2,container-kill:p=0.1,"
      "ocs-outage:at=40s:dur=30s,reconfig-jitter:pct=50,trem-noise:pct=20");
  for (const std::string name : {"fair", "coscheduler"}) {
    const SchedulerFactory factory = make_scheduler_factory(name);
    EXPECT_NO_THROW((void)run_once(cfg, factory, 0)) << name;
  }
}

TEST(Audit, AuditorActuallyRanAndDrainedItsLedgers) {
  SimConfig cfg;
  cfg.topo.num_racks = 6;
  cfg.topo.servers_per_rack = 2;
  cfg.topo.slots_per_server = 4;
  cfg.audit = true;
  auto jobs = std::vector<JobSpec>{shuffle_job(0, 4, 3, 8.0, 1.0)};
  SimulationDriver driver(cfg, jobs, std::make_unique<CoScheduler>());
  ASSERT_NE(driver.auditor(), nullptr);
  (void)driver.run();
  EXPECT_GT(driver.auditor()->checks_run(), 0);
  EXPECT_GT(driver.auditor()->tracked_flows(), 0u);
}

TEST(Audit, DisabledConfigHasNoAuditor) {
  SimConfig cfg;
  cfg.topo.num_racks = 4;
  cfg.topo.servers_per_rack = 1;
  cfg.topo.slots_per_server = 4;
  cfg.audit = false;
  auto jobs = std::vector<JobSpec>{shuffle_job(0, 2, 0, 1.0, 0.0)};
  SimulationDriver driver(cfg, jobs, std::make_unique<FairScheduler>());
  EXPECT_EQ(driver.auditor(), nullptr);
  EXPECT_NO_THROW((void)driver.run());
}

// ---- the auditor is passive: audit on == audit off, bit for bit ------------

TEST(Audit, AuditedRunIsBitIdenticalToUnaudited) {
  ExperimentConfig on = small_config(303);
  on.sim.faults = parse_plan("container-kill:p=0.1,ocs-outage:at=30s:dur=20s");
  ExperimentConfig off = on;
  off.sim.audit = false;
  for (const std::string name : {"fair", "coscheduler"}) {
    const SchedulerFactory factory = make_scheduler_factory(name);
    const RunMetrics a = run_once(on, factory, 0);
    const RunMetrics b = run_once(off, factory, 0);
    EXPECT_EQ(bits(a.makespan.sec()), bits(b.makespan.sec())) << name;
    EXPECT_EQ(a.ocs_bytes.in_bytes(), b.ocs_bytes.in_bytes()) << name;
    EXPECT_EQ(a.eps_bytes.in_bytes(), b.eps_bytes.in_bytes()) << name;
    EXPECT_EQ(a.local_bytes.in_bytes(), b.local_bytes.in_bytes()) << name;
    EXPECT_EQ(a.events_executed, b.events_executed) << name;
    ASSERT_EQ(a.jobs.size(), b.jobs.size()) << name;
    for (std::size_t j = 0; j < a.jobs.size(); ++j) {
      EXPECT_EQ(bits(a.jobs[j].jct.sec()), bits(b.jobs[j].jct.sec()))
          << name << " job#" << j;
      EXPECT_EQ(bits(a.jobs[j].cct.sec()), bits(b.jobs[j].cct.sec()))
          << name << " job#" << j;
    }
  }
}

// ---- a broken ledger is caught with a structured dump ----------------------

TEST(Audit, PhantomBytesAreCaughtWithStructuredDump) {
  SimConfig cfg;
  cfg.topo.num_racks = 6;
  cfg.topo.servers_per_rack = 2;
  cfg.topo.slots_per_server = 4;
  cfg.audit = true;
  auto jobs = std::vector<JobSpec>{shuffle_job(0, 4, 3, 8.0, 1.0)};
  SimulationDriver driver(cfg, jobs, std::make_unique<CoScheduler>());
  ASSERT_NE(driver.auditor(), nullptr);
  // Claim a gigabit was injected that no fabric will ever drain: the first
  // heavy conservation check (job finish) must abort the run.
  driver.auditor()->debug_inject_phantom_bits(1e9);
  try {
    (void)driver.run();
    FAIL() << "corrupted byte ledger was not caught";
  } catch (const AuditFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("INVARIANT AUDIT FAILURE"), std::string::npos) << what;
    EXPECT_NE(what.find("byte-conservation"), std::string::npos) << what;
    EXPECT_NE(what.find("sim time"), std::string::npos) << what;
    EXPECT_NE(what.find("container ledger"), std::string::npos) << what;
    EXPECT_NE(what.find("byte ledger"), std::string::npos) << what;
  }
}

TEST(Audit, PhantomBitsBelowToleranceAreAccepted) {
  // The slack exists so sub-residual completion residue never false-alarms;
  // a corruption inside the documented tolerance is by design invisible.
  SimConfig cfg;
  cfg.topo.num_racks = 6;
  cfg.topo.servers_per_rack = 2;
  cfg.topo.slots_per_server = 4;
  cfg.audit = true;
  auto jobs = std::vector<JobSpec>{shuffle_job(0, 4, 3, 8.0, 1.0)};
  SimulationDriver driver(cfg, jobs, std::make_unique<CoScheduler>());
  driver.auditor()->debug_inject_phantom_bits(1.0);
  EXPECT_NO_THROW((void)driver.run());
}

TEST(Audit, AuditFailureIsACheckFailure) {
  // Callers with existing CheckFailure handlers also catch audit aborts.
  const AuditFailure f("boom");
  const CheckFailure* base = &f;
  EXPECT_STREQ(base->what(), "boom");
}

// ---- event-queue consistency under churn -----------------------------------

TEST(Audit, QueueConsistentThroughCancelAndCompactionChurn) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      handles.push_back(sim.schedule_after(
          Duration::seconds(1.0 + round + 0.01 * i), [] {}));
    }
    // Cancel two of every three handles (re-cancelling is a no-op): with a
    // majority of the heap tombstoned, the queue must compact mid-churn.
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (i % 3 != 0) handles[i].cancel();
    }
    ASSERT_TRUE(sim.queue_consistent()) << "round " << round;
    sim.run_until(SimTime::seconds(round + 0.5));
    ASSERT_TRUE(sim.queue_consistent()) << "round " << round;
  }
  sim.run();
  EXPECT_TRUE(sim.queue_consistent());
  EXPECT_GT(sim.queue_compactions(), 0);
}

}  // namespace
}  // namespace cosched
