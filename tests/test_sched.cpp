// Unit tests for the scheduler module: fairness ordering and the PSRT
// possible-schedule computation. Whole-scheduler behavior is exercised
// end-to-end in test_sim.cpp.
#include <gtest/gtest.h>

#include "cluster/job.h"
#include "common/rng.h"
#include "sched/coscheduler.h"
#include "sched/fairness.h"

namespace cosched {
namespace {

JobSpec spec_for_user(std::int64_t job_id, std::int64_t user,
                      std::int32_t maps, std::int32_t reduces) {
  JobSpec s;
  s.id = JobId{job_id};
  s.user = UserId{user};
  s.num_maps = maps;
  s.num_reduces = reduces;
  s.input_size = DataSize::gigabytes(1);
  s.sir = 1.0;
  s.map_durations.assign(static_cast<std::size_t>(maps),
                         Duration::seconds(10));
  s.reduce_durations.assign(static_cast<std::size_t>(reduces),
                            Duration::seconds(10));
  return s;
}

// ------------------------------------------------------------- fairness ---

TEST(Fairness, OrdersByRunningTasksAscending) {
  IdAllocator<TaskId> ids;
  Job a(spec_for_user(0, 0, 4, 0), DataSize::gigabytes(99), ids, CoflowId{0});
  Job b(spec_for_user(1, 1, 4, 0), DataSize::gigabytes(99), ids, CoflowId{1});
  // User 0 has 2 running tasks, user 1 has none.
  a.note_map_placed(RackId{0});
  a.note_map_placed(RackId{1});
  std::vector<Job*> jobs{&a, &b};
  const auto order = fair_user_order(jobs);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], UserId{1});
  EXPECT_EQ(order[1], UserId{0});
}

TEST(Fairness, CompletedTasksDoNotCount) {
  IdAllocator<TaskId> ids;
  Job a(spec_for_user(0, 0, 4, 0), DataSize::gigabytes(99), ids, CoflowId{0});
  Job b(spec_for_user(1, 1, 4, 0), DataSize::gigabytes(99), ids, CoflowId{1});
  a.note_map_placed(RackId{0});
  a.note_map_completed(RackId{0}, DataSize::zero());
  b.note_map_placed(RackId{0});
  std::vector<Job*> jobs{&a, &b};
  const auto order = fair_user_order(jobs);
  EXPECT_EQ(order[0], UserId{0});  // 0 running beats 1 running
}

TEST(Fairness, TieBreaksByUserId) {
  IdAllocator<TaskId> ids;
  Job a(spec_for_user(0, 5, 1, 0), DataSize::gigabytes(99), ids, CoflowId{0});
  Job b(spec_for_user(1, 2, 1, 0), DataSize::gigabytes(99), ids, CoflowId{1});
  std::vector<Job*> jobs{&a, &b};
  const auto order = fair_user_order(jobs);
  EXPECT_EQ(order[0], UserId{2});
  EXPECT_EQ(order[1], UserId{5});
}

TEST(Fairness, JobsOfUserPreservesArrivalOrder) {
  IdAllocator<TaskId> ids;
  Job a(spec_for_user(0, 1, 1, 0), DataSize::gigabytes(99), ids, CoflowId{0});
  Job b(spec_for_user(1, 2, 1, 0), DataSize::gigabytes(99), ids, CoflowId{1});
  Job c(spec_for_user(2, 1, 1, 0), DataSize::gigabytes(99), ids, CoflowId{2});
  std::vector<Job*> jobs{&a, &b, &c};
  const auto mine = jobs_of_user(jobs, UserId{1});
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_EQ(mine[0]->id(), JobId{0});
  EXPECT_EQ(mine[1]->id(), JobId{2});
}

// ----------------------------------------------------------------- PSRT ---

constexpr auto kTe = DataSize::gigabytes(1.125);
const Bandwidth kBw = Bandwidth::gbps(100);
const Duration kDelta = Duration::milliseconds(10);

TEST(Psrt, EmptyInputsYieldNoSchedules) {
  EXPECT_TRUE(
      possible_reduce_schedules({}, 10, kTe, kBw, kDelta, 60).empty());
  EXPECT_TRUE(possible_reduce_schedules({DataSize::gigabytes(10)}, 0, kTe,
                                        kBw, kDelta, 60)
                  .empty());
}

TEST(Psrt, RRedRangeFollowsEquation7) {
  // SM_min = 5 GB, T_e = 1.125 GB -> floor(5/1.125) = 4 possible R_red.
  const std::vector<DataSize> sm{DataSize::gigabytes(5),
                                 DataSize::gigabytes(9)};
  const auto schedules =
      possible_reduce_schedules(sm, 100, kTe, kBw, kDelta, 60);
  ASSERT_EQ(schedules.size(), 4u);
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    EXPECT_EQ(schedules[i].d.size(), i + 1);
  }
}

TEST(Psrt, DistributionSumsToReduceCountAndMeetsFloor) {
  const std::vector<DataSize> sm{DataSize::gigabytes(5),
                                 DataSize::gigabytes(9)};
  const std::int32_t reduces = 100;
  for (const auto& ps :
       possible_reduce_schedules(sm, reduces, kTe, kBw, kDelta, 60)) {
    std::int32_t total = 0;
    for (std::int32_t d : ps.d) {
      total += d;
      // Aggregation floor: SM_min * d / reduces >= T_e.
      EXPECT_GE(DataSize::gigabytes(5) *
                    (static_cast<double>(d) / reduces),
                kTe);
    }
    EXPECT_EQ(total, reduces);
  }
}

TEST(Psrt, DistributionIsBalanced) {
  const std::vector<DataSize> sm{DataSize::gigabytes(12)};
  for (const auto& ps :
       possible_reduce_schedules(sm, 50, kTe, kBw, kDelta, 60)) {
    const auto [lo, hi] = std::minmax_element(ps.d.begin(), ps.d.end());
    EXPECT_LE(*hi - *lo, 1) << "remaining tasks must go to least-loaded";
  }
}

TEST(Psrt, CctIsMinimizedAtRredEqualRmap) {
  // Equation 2: a map rack's outbound work (40 GB) is fixed regardless of
  // R_red, but gains one reconfiguration per reduce rack; a reduce rack's
  // inbound shrinks as 80/R_red GB. The bound is minimized where the two
  // cross — at R_red = R_map, exactly the paper's Section IV-C analysis.
  const std::vector<DataSize> sm{DataSize::gigabytes(40),
                                 DataSize::gigabytes(40)};
  const auto schedules =
      possible_reduce_schedules(sm, 64, kTe, kBw, kDelta, 60);
  ASSERT_GT(schedules.size(), 2u);
  std::size_t best = 0;
  for (std::size_t i = 1; i < schedules.size(); ++i) {
    if (schedules[i].cct < schedules[best].cct) best = i;
  }
  EXPECT_EQ(schedules[best].d.size(), 2u);  // R_red == R_map == 2
  // At the optimum: row = col = 40 GB at 100 Gb/s + 2 reconfigurations.
  EXPECT_NEAR(schedules[best].cct.sec(), 3.2 + 0.02, 1e-9);
}

TEST(Psrt, CctMatchesManualBoundForSingleRack) {
  // One map rack (10 GB), one reduce rack: a single flow.
  const std::vector<DataSize> sm{DataSize::gigabytes(10)};
  const auto schedules =
      possible_reduce_schedules(sm, 4, kTe, kBw, kDelta, 60);
  ASSERT_FALSE(schedules.empty());
  const auto& one = schedules.front();
  ASSERT_EQ(one.d.size(), 1u);
  EXPECT_EQ(one.d[0], 4);
  EXPECT_NEAR(one.cct.sec(),
              transfer_time(DataSize::gigabytes(10), kBw).sec() +
                  kDelta.sec(),
              1e-9);
}

TEST(Psrt, RespectsMaxRacksCap) {
  const std::vector<DataSize> sm{DataSize::gigabytes(100)};
  const auto schedules =
      possible_reduce_schedules(sm, 100, kTe, kBw, kDelta, 3);
  EXPECT_LE(schedules.size(), 3u);
}

TEST(Psrt, CapsAtReduceCount) {
  const std::vector<DataSize> sm{DataSize::gigabytes(100)};
  const auto schedules =
      possible_reduce_schedules(sm, 2, kTe, kBw, kDelta, 60);
  EXPECT_LE(schedules.size(), 2u);
}

TEST(Psrt, SkipsInfeasibleAggregation) {
  // SM_min barely above T_e: d_min ~= reduces, so only R_red = 1 fits.
  const std::vector<DataSize> sm{DataSize::gigabytes(1.2)};
  const auto schedules =
      possible_reduce_schedules(sm, 10, kTe, kBw, kDelta, 60);
  ASSERT_EQ(schedules.size(), 1u);
  EXPECT_EQ(schedules[0].d.size(), 1u);
}

// Property sweep: random map-output distributions, all PSRT invariants.
class PsrtProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PsrtProperty, InvariantsHoldForRandomDistributions) {
  Rng rng(GetParam());
  const int n_racks = 1 + static_cast<int>(rng.uniform_int(0, 11));
  std::vector<DataSize> sm;
  for (int i = 0; i < n_racks; ++i) {
    // >= T_e by construction (pre-filtered input contract).
    sm.push_back(DataSize::gigabytes(1.125 + rng.uniform(0.0, 80.0)));
  }
  const auto reduces = static_cast<std::int32_t>(rng.uniform_int(1, 150));
  const auto schedules =
      possible_reduce_schedules(sm, reduces, kTe, kBw, kDelta, 60);

  DataSize sm_min = sm.front();
  for (const DataSize& s : sm) sm_min = std::min(sm_min, s);
  const auto expected_max = std::min<std::int64_t>(
      {sm_min.in_bytes() / kTe.in_bytes(), reduces, 60});

  std::size_t prev_racks = 0;
  for (const auto& ps : schedules) {
    // R_red values are distinct, increasing, within Equation 7's range.
    EXPECT_GT(ps.d.size(), prev_racks);
    prev_racks = ps.d.size();
    EXPECT_LE(static_cast<std::int64_t>(ps.d.size()), expected_max);

    std::int32_t total = 0;
    for (std::int32_t d : ps.d) {
      total += d;
      // Every rack aggregates past the threshold from the smallest
      // map rack (the paper's aggregation floor).
      EXPECT_GE(sm_min * (static_cast<double>(d) / reduces) +
                    DataSize::bytes(8),  // rounding slack
                kTe);
    }
    EXPECT_EQ(total, reduces);
    // Balance: remaining tasks go to the least-loaded rack.
    const auto [lo, hi] = std::minmax_element(ps.d.begin(), ps.d.end());
    EXPECT_LE(*hi - *lo, 1);
    EXPECT_GT(ps.cct, Duration::zero());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDistributions, PsrtProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(Psrt, RejectsUnfilteredInput) {
  const std::vector<DataSize> sm{DataSize::megabytes(100)};
  EXPECT_THROW(
      (void)possible_reduce_schedules(sm, 10, kTe, kBw, kDelta, 60),
      CheckFailure);
}

}  // namespace
}  // namespace cosched
