// Driver-level tests: remote-read penalties, availability estimation,
// per-path byte accounting, heartbeat retry, deadlock recovery, and reduce
// demand materialization — exercised through small crafted scenarios.
#include <gtest/gtest.h>

#include <memory>

#include "sched/coscheduler.h"
#include "sched/delay.h"
#include "sched/fair.h"
#include "sched/fairness.h"
#include "sim/driver.h"

namespace cosched {
namespace {

HybridTopology mini_topo(std::int32_t racks = 6, std::int32_t servers = 2,
                         std::int32_t slots = 4) {
  HybridTopology t;
  t.num_racks = racks;
  t.servers_per_rack = servers;
  t.slots_per_server = slots;
  return t;
}

JobSpec simple_job(std::int64_t id, std::int32_t maps, std::int32_t reduces,
                   double input_gb, double sir, double map_sec = 10,
                   double reduce_sec = 10) {
  JobSpec s;
  s.id = JobId{id};
  s.user = UserId{0};
  s.num_maps = maps;
  s.num_reduces = reduces;
  s.input_size = DataSize::gigabytes(input_gb);
  s.sir = sir;
  s.map_durations.assign(static_cast<std::size_t>(maps),
                         Duration::seconds(map_sec));
  s.reduce_durations.assign(static_cast<std::size_t>(reduces),
                            Duration::seconds(reduce_sec));
  return s;
}

/// Forces every task onto one specific rack (maps remote on purpose).
class PinToRackScheduler : public JobScheduler {
 public:
  explicit PinToRackScheduler(RackId rack, std::int32_t data_rack)
      : rack_(rack), data_rack_(data_rack) {}

  [[nodiscard]] std::string name() const override { return "pin"; }
  [[nodiscard]] bool defers_reduces() const override { return false; }

  void on_job_submitted(Job& job, SchedContext& ctx) override {
    job.set_block_placement(place_blocks_on_racks(
        job.spec().num_maps, {RackId{data_rack_}}, 1, ctx.rng));
  }

  std::optional<TaskChoice> pick_task(RackId rack,
                                      SchedContext& ctx) override {
    if (rack != rack_) return std::nullopt;
    for (Job* job : ctx.active_jobs) {
      if (Task* t = job->next_pending_map_any()) return TaskChoice{job, t};
      if (reduces_eligible(*job, ctx)) {
        if (Task* t = job->next_pending_reduce()) return TaskChoice{job, t};
      }
    }
    return std::nullopt;
  }

 private:
  RackId rack_;
  std::int32_t data_rack_;
};

TEST(Driver, RemoteMapPaysReadPenalty) {
  // All blocks on rack 0, all tasks forced to rack 1: each map pays
  // block/NIC extra. Block = 10 GB / 1 map = 10 GB -> 8 s at 10 Gb/s.
  SimConfig cfg;
  cfg.topo = mini_topo();
  auto jobs = std::vector<JobSpec>{simple_job(0, 1, 0, 10.0, 0.0, 10)};
  SimulationDriver driver(
      cfg, jobs, std::make_unique<PinToRackScheduler>(RackId{1}, 0));
  const RunMetrics m = driver.run();
  EXPECT_NEAR(m.jobs[0].jct.sec(), 10.0 + 8.0, 1e-9);
}

TEST(Driver, LocalMapPaysNoPenalty) {
  SimConfig cfg;
  cfg.topo = mini_topo();
  auto jobs = std::vector<JobSpec>{simple_job(0, 1, 0, 10.0, 0.0, 10)};
  SimulationDriver driver(
      cfg, jobs, std::make_unique<PinToRackScheduler>(RackId{0}, 0));
  const RunMetrics m = driver.run();
  EXPECT_NEAR(m.jobs[0].jct.sec(), 10.0, 1e-9);
}

TEST(Driver, MapOnlyJobCompletesAtLastMap) {
  SimConfig cfg;
  cfg.topo = mini_topo();
  auto jobs = std::vector<JobSpec>{simple_job(0, 5, 0, 5.0, 0.0, 7)};
  SimulationDriver driver(cfg, jobs, std::make_unique<FairScheduler>());
  const RunMetrics m = driver.run();
  ASSERT_EQ(m.jobs.size(), 1u);
  EXPECT_FALSE(m.jobs[0].has_shuffle);
  EXPECT_NEAR(m.jobs[0].jct.sec(), 7.0, 1e-9);  // 5 maps fit in parallel
}

TEST(Driver, ZeroShuffleJobWithReducesStillRuns) {
  SimConfig cfg;
  cfg.topo = mini_topo();
  auto jobs = std::vector<JobSpec>{simple_job(0, 2, 2, 1.0, 0.0, 5, 6)};
  SimulationDriver driver(cfg, jobs, std::make_unique<CoScheduler>());
  const RunMetrics m = driver.run();
  // Maps 5 s (+ possibly a remote-read penalty of 0.4 s on a 0.5 GB
  // block), reduces placed after maps, compute 6 s, no fetch wait.
  EXPECT_GE(m.jobs[0].jct.sec(), 11.0 - 1e-9);
  EXPECT_LE(m.jobs[0].jct.sec(), 11.5);
  EXPECT_FALSE(m.jobs[0].has_shuffle);
}

TEST(Driver, AvailabilityOracleCountsFreeSlotsAndRemainders) {
  SimConfig cfg;
  cfg.topo = mini_topo(4, 1, 2);  // 2 slots per rack
  // One job with two 10 s maps pinned to rack 0 fills it.
  auto jobs = std::vector<JobSpec>{simple_job(0, 2, 0, 1.0, 0.0, 10)};
  SimulationDriver driver(
      cfg, jobs, std::make_unique<PinToRackScheduler>(RackId{0}, 0));
  // Probe availability mid-run via the oracle interface.
  AvailabilityOracle& oracle = driver;
  // Before the run, everything is free.
  EXPECT_DOUBLE_EQ(oracle.estimate_availability(RackId{0}, 2).sec(), 0.0);
  const RunMetrics m = driver.run();
  EXPECT_EQ(m.jobs.size(), 1u);
  // Impossible request: more containers than a rack has.
  EXPECT_FALSE(oracle.estimate_availability(RackId{0}, 3).is_finite());
}

TEST(Driver, TrafficSplitsAcrossPathsForMixedFlows) {
  // 2 map racks (forced via CoScheduler guideline), large shuffle: all
  // cross-rack demand rides the OCS; the local share stays local.
  SimConfig cfg;
  cfg.topo = mini_topo(9, 2, 30);
  auto jobs = std::vector<JobSpec>{simple_job(0, 8, 4, 8.0, 1.0, 10, 10)};
  SimulationDriver driver(cfg, jobs, std::make_unique<CoScheduler>());
  const RunMetrics m = driver.run();
  const double total = m.ocs_bytes.in_gigabytes() +
                       m.eps_bytes.in_gigabytes() +
                       m.local_bytes.in_gigabytes();
  EXPECT_NEAR(total, 8.0, 0.1);
}

TEST(Driver, HeartbeatRetriesDeclinedOffers) {
  // Delay scheduler declines non-local offers; with all data racks busy it
  // must eventually place maps remotely via heartbeat retries rather than
  // hang.
  SimConfig cfg;
  cfg.topo = mini_topo(4, 1, 2);
  std::vector<JobSpec> jobs;
  // Job 0 occupies rack 0 (where job 1's data also lives).
  jobs.push_back(simple_job(0, 8, 0, 2.0, 0.0, 50));
  jobs.push_back(simple_job(1, 4, 0, 1.0, 0.0, 5));
  DelayScheduler::Options opts;
  opts.replication = 1;
  opts.max_skips = 3;
  SimulationDriver driver(cfg, jobs,
                          std::make_unique<DelayScheduler>(opts));
  const RunMetrics m = driver.run();
  EXPECT_EQ(m.jobs.size(), 2u);  // both complete; no deadlock
}

TEST(Driver, ReduceDemandMaterializesOncePerReduce) {
  // Overlap scheduler: some reduces placed before maps finish, some after.
  // Conservation then proves demand was added exactly once per reduce.
  SimConfig cfg;
  cfg.topo = mini_topo(6, 1, 3);  // tight cluster forces phased placement
  auto jobs = std::vector<JobSpec>{simple_job(0, 12, 6, 12.0, 1.0, 10, 5)};
  SimulationDriver driver(cfg, jobs, std::make_unique<FairScheduler>());
  const RunMetrics m = driver.run();
  const double moved = m.ocs_bytes.in_gigabytes() +
                       m.eps_bytes.in_gigabytes() +
                       m.local_bytes.in_gigabytes();
  EXPECT_NEAR(moved, 12.0, 0.15);
}

TEST(Driver, MakespanEqualsLastCompletion) {
  SimConfig cfg;
  cfg.topo = mini_topo();
  std::vector<JobSpec> jobs{simple_job(0, 2, 0, 1.0, 0.0, 5),
                            simple_job(1, 2, 0, 1.0, 0.0, 9)};
  jobs[1].arrival = SimTime::seconds(3);
  SimulationDriver driver(cfg, jobs, std::make_unique<FairScheduler>());
  const RunMetrics m = driver.run();
  EXPECT_NEAR(m.makespan.sec(), 12.0, 1e-9);
}

TEST(Driver, EventsExecutedReported) {
  SimConfig cfg;
  cfg.topo = mini_topo();
  auto jobs = std::vector<JobSpec>{simple_job(0, 1, 0, 1.0, 0.0, 5)};
  SimulationDriver driver(cfg, jobs, std::make_unique<FairScheduler>());
  const RunMetrics m = driver.run();
  EXPECT_GT(m.events_executed, 0u);
}

}  // namespace
}  // namespace cosched
