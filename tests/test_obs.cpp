// Observability-layer tests: the null recorder really is free, traces are
// deterministic and well-formed Chrome JSON, counter sampling tracks
// simulator state without keeping the queue alive, and the decision log
// reports the same plan the scheduler actually executed.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/report.h"
#include "net/flow.h"
#include "obs/observability.h"
#include "obs/profile.h"
#include "sim/driver.h"
#include "sim/experiment.h"

// ---------------------------------------------------------------------------
// Global allocation counting for the null-recorder hot-path test. Every
// allocation in this binary bumps the counter; the test snapshots it around
// the recording loop. The replacements are malloc/free-matched pairs; GCC
// cannot see that across the replaced declarations and warns spuriously.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow forms must be replaced too: std::stable_sort's temporary
// buffer allocates through operator new(size, nothrow). Leaving them on
// the default allocator while delete routes to free() trips ASan's
// alloc-dealloc-mismatch check.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cosched {
namespace {

HybridTopology mini_topo(std::int32_t racks = 6, std::int32_t servers = 2,
                         std::int32_t slots = 4) {
  HybridTopology t;
  t.num_racks = racks;
  t.servers_per_rack = servers;
  t.slots_per_server = slots;
  return t;
}

JobSpec simple_job(std::int64_t id, std::int32_t maps, std::int32_t reduces,
                   double input_gb, double sir, double map_sec = 10,
                   double reduce_sec = 10) {
  JobSpec s;
  s.id = JobId{id};
  s.user = UserId{0};
  s.num_maps = maps;
  s.num_reduces = reduces;
  s.input_size = DataSize::gigabytes(input_gb);
  s.sir = sir;
  s.map_durations.assign(static_cast<std::size_t>(maps),
                         Duration::seconds(map_sec));
  s.reduce_durations.assign(static_cast<std::size_t>(reduces),
                            Duration::seconds(reduce_sec));
  return s;
}

/// One shuffle-heavy job on the mini cluster: 20 GB input, SIR 1.0, so the
/// shuffle (20 GB) and each map rack's output clear T_e = 1.125 GB and the
/// coscheduler exercises MTS, PSRT/SBS, coflow release, and the OCS.
std::vector<JobSpec> heavy_workload() {
  return {simple_job(0, 4, 4, 20.0, 1.0)};
}

RunMetrics run_with_obs(Observability& obs, std::uint64_t seed = 7) {
  // Sample finely enough to catch sub-second circuit lifetimes: a 10 GB
  // flow drains in ~0.8 s at the 100 Gb/s OCS rate.
  obs.counters.set_interval(Duration::milliseconds(50));
  SimConfig cfg;
  cfg.topo = mini_topo();
  cfg.seed = seed;
  cfg.obs = &obs;
  SimulationDriver driver(cfg, heavy_workload(),
                          make_scheduler_factory("coscheduler")());
  return driver.run();
}

// --- Minimal JSON well-formedness checker ---------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!parse_value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool parse_value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string();
      case 't':
        return parse_literal("true");
      case 'f':
        return parse_literal("false");
      case 'n':
        return parse_literal("null");
      default:
        return parse_number();
    }
  }

  bool parse_object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!parse_string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool parse_array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool parse_string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }

  bool parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool parse_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- TraceRecorder basics --------------------------------------------------

TEST(TraceRecorder, NullByDefault) {
  TraceRecorder rec;
  EXPECT_FALSE(rec.enabled());
  rec.record({.kind = TraceEventKind::kJobArrival, .at = SimTime::zero()});
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceRecorder, EnabledCaptures) {
  TraceRecorder rec;
  rec.enable();
  rec.record({.kind = TraceEventKind::kJobArrival,
              .at = SimTime::seconds(1),
              .job = JobId{3}});
  rec.record({.kind = TraceEventKind::kJobComplete,
              .at = SimTime::seconds(2),
              .job = JobId{3}});
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.count(TraceEventKind::kJobArrival), 1);
  EXPECT_EQ(rec.events()[1].job, JobId{3});
}

TEST(TraceRecorder, DisabledRecorderAllocatesNothing) {
  TraceRecorder rec;  // null recorder
  const TraceEvent ev{.kind = TraceEventKind::kFlowRouted,
                      .at = SimTime::seconds(1),
                      .job = JobId{1},
                      .flow = FlowId{2},
                      .src = RackId{0},
                      .dst = RackId{1},
                      .a = 2,
                      .b = 1.5};
  DecisionLog log;  // disabled
  const std::int64_t before = g_allocations.load();
  for (int i = 0; i < 100000; ++i) {
    rec.record(ev);
    log.record(GrantDecision{});
    COSCHED_PROF_SCOPE("test.disabled");  // profiling off: single branch
  }
  EXPECT_EQ(g_allocations.load(), before);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(log.grants().empty());
}

// --- End-to-end trace through the driver -----------------------------------

TEST(Trace, DriverRunEmitsRequiredEventKinds) {
  Observability obs;
  const RunMetrics m = run_with_obs(obs);
  ASSERT_EQ(m.jobs.size(), 1u);

  const TraceRecorder& t = obs.trace;
  EXPECT_EQ(t.count(TraceEventKind::kJobArrival), 1);
  EXPECT_EQ(t.count(TraceEventKind::kJobComplete), 1);
  // 4 maps + 4 reduces: one grant and one start/finish pair each.
  EXPECT_EQ(t.count(TraceEventKind::kContainerGrant), 8);
  EXPECT_EQ(t.count(TraceEventKind::kTaskStart), 8);
  EXPECT_EQ(t.count(TraceEventKind::kTaskFinish), 8);
  EXPECT_EQ(t.count(TraceEventKind::kReduceComputeStart), 4);
  EXPECT_EQ(t.count(TraceEventKind::kCoflowRelease), 1);
  EXPECT_GT(t.count(TraceEventKind::kFlowRouted), 0);
  EXPECT_EQ(t.count(TraceEventKind::kFlowRouted),
            t.count(TraceEventKind::kFlowComplete));
  // The shuffle is heavy, so some flows must ride the OCS...
  std::int64_t ocs_flows = 0;
  for (const TraceEvent& ev : t.events()) {
    if (ev.kind == TraceEventKind::kFlowRouted &&
        ev.a == static_cast<std::int64_t>(FlowPath::kOcs)) {
      ++ocs_flows;
    }
  }
  EXPECT_GT(ocs_flows, 0);
  // ...which means circuits were configured, carried traffic, and came down.
  EXPECT_GT(t.count(TraceEventKind::kCircuitSetup), 0);
  EXPECT_GT(t.count(TraceEventKind::kCircuitUp), 0);
  EXPECT_EQ(t.count(TraceEventKind::kCircuitSetup),
            t.count(TraceEventKind::kCircuitTeardown));
  EXPECT_EQ(t.count(TraceEventKind::kDeadlockBreak), 0);

  // Timestamps are non-decreasing (recorded in execution order).
  for (std::size_t i = 1; i < t.events().size(); ++i) {
    EXPECT_GE(t.events()[i].at, t.events()[i - 1].at);
  }
}

TEST(Trace, DeterministicForFixedSeed) {
  Observability a;
  Observability b;
  run_with_obs(a, 11);
  run_with_obs(b, 11);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace.events()[i], b.trace.events()[i]) << "event " << i;
  }
  EXPECT_EQ(a.decisions.grants().size(), b.decisions.grants().size());
  EXPECT_EQ(a.counters.rows(), b.counters.rows());
}

TEST(Trace, ChromeExportIsValidJsonWithRequiredEvents) {
  Observability obs;
  run_with_obs(obs);
  std::ostringstream os;
  obs.trace.write_chrome_trace(os, &obs.counters);
  const std::string json = os.str();

  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("container_grant"), std::string::npos);
  EXPECT_NE(json.find("coflow_release"), std::string::npos);
  EXPECT_NE(json.find("flow_ocs"), std::string::npos);
  EXPECT_NE(json.find("\"circuit\""), std::string::npos);
  // Counter tracks rode along.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("ocs.circuits_active"), std::string::npos);
}

TEST(Trace, CsvExportHasHeaderAndOneRowPerEvent) {
  Observability obs;
  run_with_obs(obs);
  std::ostringstream os;
  obs.trace.write_csv(os);
  const std::string csv = os.str();
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, obs.trace.size() + 1);  // header + one per event
  EXPECT_EQ(csv.rfind("time_sec,kind,job,task,flow,src,dst,a,b", 0), 0u);
}

// --- Counter sampling ------------------------------------------------------

TEST(Counters, SamplesTrackSimStateAndStopWithTheQueue) {
  Simulator sim;
  int depth = 0;
  CounterRegistry reg;
  reg.add_gauge("depth", [&] { return static_cast<double>(depth); });
  reg.set_interval(Duration::seconds(1));
  sim.schedule_at(SimTime::seconds(0.5), [&] { depth = 5; });
  sim.schedule_at(SimTime::seconds(2.5), [&] { depth = 2; });
  sim.schedule_at(SimTime::seconds(10), [&] { depth = 0; });
  reg.arm(sim);
  sim.run();  // must terminate: the sampler cannot keep the queue alive

  ASSERT_EQ(reg.sample_times().size(), 11u);  // t = 0..10 inclusive
  EXPECT_EQ(reg.rows()[0][0], 0.0);
  EXPECT_EQ(reg.rows()[1][0], 5.0);   // after the 0.5 s bump
  EXPECT_EQ(reg.rows()[3][0], 2.0);   // after the 2.5 s drop
  EXPECT_EQ(reg.rows()[10][0], 0.0);  // the 10 s event fires first (FIFO)
  EXPECT_EQ(reg.last("depth"), 0.0);
  EXPECT_EQ(reg.last("missing"), 0.0);

  std::ostringstream os;
  reg.write_csv(os);
  EXPECT_EQ(os.str().rfind("time_sec,depth", 0), 0u);
}

TEST(Counters, DriverGaugesMatchRunState) {
  Observability obs;
  const RunMetrics m = run_with_obs(obs);
  const CounterRegistry& c = obs.counters;
  ASSERT_FALSE(c.rows().empty());

  const auto& names = c.names();
  auto col = [&](const std::string& name) {
    for (std::size_t j = 0; j < names.size(); ++j) {
      if (names[j] == name) return j;
    }
    ADD_FAILURE() << "gauge " << name << " not registered";
    return std::size_t{0};
  };
  const std::size_t jobs_col = col("jobs.active");
  const std::size_t used_col = col("cluster.containers_used");
  const std::size_t circ_col = col("ocs.circuits_active");
  const std::size_t live_col = col("sim.events_live");
  const std::size_t raw_col = col("sim.events_raw");

  double max_used = 0;
  double max_circuits = 0;
  for (std::size_t i = 0; i < c.rows().size(); ++i) {
    const auto& row = c.rows()[i];
    EXPECT_GE(row[jobs_col], 0.0);
    EXPECT_LE(row[jobs_col], 1.0);  // single-job workload
    EXPECT_GE(row[raw_col], row[live_col]);  // tombstones only ever add
    max_used = std::max(max_used, row[used_col]);
    max_circuits = std::max(max_circuits, row[circ_col]);
  }
  EXPECT_GT(max_used, 0.0);      // tasks held containers while sampled
  EXPECT_GT(max_circuits, 0.0);  // the heavy shuffle used the OCS
  // Samples cover the run (last sample at or before completion).
  EXPECT_LE(c.sample_times().back().sec(), m.makespan.sec() + 1.0);
  EXPECT_GE(c.sample_times().back().sec(), 1.0);
}

// --- Decision log ----------------------------------------------------------

TEST(DecisionLog, PlacementPlanMatchesExecutedGrants) {
  Observability obs;
  run_with_obs(obs);
  const DecisionLog& d = obs.decisions;

  ASSERT_EQ(d.placements().size(), 1u);  // one PSRT+SBS pass for one job
  const PlacementDecision& p = d.placements()[0];
  EXPECT_EQ(p.job, JobId{0});
  EXPECT_EQ(p.r_red, static_cast<std::int32_t>(p.plan.size()));
  EXPECT_GT(p.candidates, 0);
  EXPECT_GE(p.score_sec, p.planned_cct.sec());

  // The distribution D sums to the job's reduce count and matches the
  // concrete plan's counts.
  std::int32_t d_sum = 0;
  for (std::int32_t di : p.d) d_sum += di;
  EXPECT_EQ(d_sum, 4);
  std::vector<std::int32_t> plan_counts;
  for (const auto& [rack, count] : p.plan) plan_counts.push_back(count);
  std::sort(plan_counts.begin(), plan_counts.end(), std::greater<>());
  std::vector<std::int32_t> d_sorted = p.d;
  std::sort(d_sorted.begin(), d_sorted.end(), std::greater<>());
  EXPECT_EQ(plan_counts, d_sorted);

  // Every reduce grant landed on a plan rack, with the plan's multiplicity,
  // under OCAS class 1 (planned heavy reduce).
  std::map<RackId, std::int32_t> granted;
  for (const GrantDecision& g : d.grants()) {
    if (g.is_map) continue;
    EXPECT_EQ(g.ocas_class, 1);
    granted[g.rack] += 1;
  }
  const std::map<RackId, std::int32_t> plan_map(p.plan.begin(), p.plan.end());
  EXPECT_EQ(granted, plan_map);

  // Circuit decisions carry the coflow priority and real rack pairs.
  ASSERT_FALSE(d.circuits().empty());
  for (const CircuitDecision& c : d.circuits()) {
    EXPECT_EQ(c.job, JobId{0});
    EXPECT_NE(c.src, c.dst);
    EXPECT_GT(c.bytes.in_gigabytes(), 0.0);
    EXPECT_GT(c.priority_sec, 0.0);
  }

  std::ostringstream os;
  d.write_placements_csv(os);
  d.write_grants_csv(os);
  d.write_circuits_csv(os);
  EXPECT_NE(os.str().find("ocas_class"), std::string::npos);
}

// --- Profiler --------------------------------------------------------------

TEST(Profiler, ScopesAccumulateWhenEnabled) {
  Profiler::set_enabled(true);
  Profiler::instance().reset();
  for (int i = 0; i < 3; ++i) {
    COSCHED_PROF_SCOPE("test.section");
  }
  Profiler::set_enabled(false);
  const auto snap = Profiler::instance().snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first, "test.section");
  EXPECT_EQ(snap[0].second.calls, 3u);
  EXPECT_LE(snap[0].second.max_ns, snap[0].second.total_ns);

  std::ostringstream os;
  Profiler::instance().write_summary(os);
  EXPECT_NE(os.str().find("test.section"), std::string::npos);
  Profiler::instance().reset();
}

TEST(Profiler, DisabledScopesRecordNothing) {
  Profiler::set_enabled(false);
  Profiler::instance().reset();
  {
    COSCHED_PROF_SCOPE("test.never");
  }
  EXPECT_TRUE(Profiler::instance().snapshot().empty());
}

// --- Observability summary -------------------------------------------------

TEST(ObsSummary, MentionsEventsDecisionsAndCounters) {
  Observability obs;
  run_with_obs(obs);
  std::ostringstream os;
  print_obs_summary(os, obs);
  const std::string out = os.str();
  EXPECT_NE(out.find("trace events"), std::string::npos);
  EXPECT_NE(out.find("container_grant"), std::string::npos);
  EXPECT_NE(out.find("placements"), std::string::npos);
  EXPECT_NE(out.find("ocs.circuits_active"), std::string::npos);
  // Per-rack gauges stay out of the summary (CSV only).
  EXPECT_EQ(out.find("cluster.rack_used."), std::string::npos);
}

}  // namespace
}  // namespace cosched
