// Unit tests for the workload generator and trace serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "workload/generator.h"
#include "workload/job_spec.h"
#include "workload/trace_io.h"

namespace cosched {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig cfg;
  cfg.num_jobs = 200;
  cfg.num_users = 10;
  cfg.arrival_window = Duration::minutes(10);
  return cfg;
}

TEST(JobSpec, DerivedQuantities) {
  JobSpec j;
  j.id = JobId{1};
  j.user = UserId{0};
  j.num_maps = 4;
  j.num_reduces = 2;
  j.input_size = DataSize::gigabytes(4);
  j.sir = 0.5;
  j.map_durations.assign(4, Duration::seconds(10));
  j.reduce_durations.assign(2, Duration::seconds(20));
  EXPECT_NO_THROW(j.validate());
  EXPECT_NEAR(j.block_size().in_gigabytes(), 1.0, 1e-9);
  EXPECT_NEAR(j.shuffle_size().in_gigabytes(), 2.0, 1e-9);
  EXPECT_NEAR(j.map_output_size().in_gigabytes(), 0.5, 1e-9);
  EXPECT_TRUE(j.shuffle_heavy(DataSize::gigabytes(1.125)));
  EXPECT_FALSE(j.shuffle_heavy(DataSize::gigabytes(3)));
}

TEST(JobSpec, MapOnlyJobIsNeverShuffleHeavy) {
  JobSpec j;
  j.id = JobId{1};
  j.user = UserId{0};
  j.num_maps = 1;
  j.num_reduces = 0;
  j.input_size = DataSize::gigabytes(100);
  j.sir = 1.0;
  j.map_durations.assign(1, Duration::seconds(10));
  EXPECT_FALSE(j.shuffle_heavy(DataSize::gigabytes(1.125)));
}

TEST(JobSpec, ValidateCatchesMismatchedDurations) {
  JobSpec j;
  j.id = JobId{1};
  j.user = UserId{0};
  j.num_maps = 2;
  j.num_reduces = 0;
  j.input_size = DataSize::gigabytes(1);
  j.map_durations.assign(1, Duration::seconds(10));  // should be 2
  EXPECT_THROW(j.validate(), CheckFailure);
}

TEST(Generator, ProducesRequestedJobCountSortedByArrival) {
  Rng rng(1);
  const auto jobs = generate_workload(small_config(), rng);
  ASSERT_EQ(jobs.size(), 200u);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_LE(jobs[i - 1].arrival.sec(), jobs[i].arrival.sec());
  }
  for (const auto& j : jobs) {
    EXPECT_NO_THROW(j.validate());
    EXPECT_LE(j.arrival.sec(), Duration::minutes(10).sec());
    EXPECT_LT(j.user.value(), 10);
  }
}

TEST(Generator, HeavyFractionRoughlyMatchesTarget) {
  WorkloadConfig cfg = small_config();
  cfg.num_jobs = 2000;
  cfg.shuffle_heavy_fraction = 0.2;
  Rng rng(7);
  const auto jobs = generate_workload(cfg, rng);
  const WorkloadStats stats = compute_stats(jobs, cfg.elephant_threshold);
  const double frac = static_cast<double>(stats.num_shuffle_heavy) /
                      static_cast<double>(stats.num_jobs);
  EXPECT_NEAR(frac, 0.2, 0.04);
}

TEST(Generator, HeavyJobsExceedThresholdLightJobsDoNot) {
  WorkloadConfig cfg = small_config();
  cfg.num_jobs = 500;
  Rng rng(3);
  const auto jobs = generate_workload(cfg, rng);
  for (const auto& j : jobs) {
    if (j.shuffle_heavy(cfg.elephant_threshold)) {
      EXPECT_GE(j.shuffle_size().in_bytes(),
                cfg.elephant_threshold.in_bytes());
    } else {
      EXPECT_TRUE(j.num_reduces == 0 ||
                  j.shuffle_size() < cfg.elephant_threshold);
    }
  }
}

TEST(Generator, MapCountTracksBlocks) {
  WorkloadConfig cfg = small_config();
  Rng rng(9);
  const auto jobs = generate_workload(cfg, rng);
  for (const auto& j : jobs) {
    const auto blocks =
        (j.input_size.in_bytes() + cfg.block_size.in_bytes() - 1) /
        cfg.block_size.in_bytes();
    EXPECT_EQ(j.num_maps, std::clamp<std::int64_t>(blocks, 1, cfg.max_maps));
  }
}

TEST(Generator, DeterministicGivenSeed) {
  Rng a(42), b(42);
  const auto ja = generate_workload(small_config(), a);
  const auto jb = generate_workload(small_config(), b);
  ASSERT_EQ(ja.size(), jb.size());
  for (std::size_t i = 0; i < ja.size(); ++i) {
    EXPECT_EQ(ja[i].id, jb[i].id);
    EXPECT_EQ(ja[i].input_size, jb[i].input_size);
    EXPECT_DOUBLE_EQ(ja[i].sir, jb[i].sir);
    EXPECT_EQ(ja[i].num_maps, jb[i].num_maps);
  }
}

TEST(Generator, HonorsTaskCaps) {
  WorkloadConfig cfg = small_config();
  cfg.num_jobs = 1000;
  Rng rng(5);
  const auto jobs = generate_workload(cfg, rng);
  for (const auto& j : jobs) {
    EXPECT_LE(j.num_maps, cfg.max_maps);
    EXPECT_LE(j.num_reduces, cfg.max_reduces);
    for (const auto& d : j.map_durations) EXPECT_GE(d.sec(), 1.0);
  }
}

TEST(Generator, RejectsBadConfig) {
  WorkloadConfig cfg = small_config();
  cfg.shuffle_heavy_fraction = 1.5;
  Rng rng(1);
  EXPECT_THROW((void)generate_workload(cfg, rng), CheckFailure);
}

TEST(Stats, ComputeStatsAggregates) {
  WorkloadConfig cfg = small_config();
  Rng rng(11);
  const auto jobs = generate_workload(cfg, rng);
  const WorkloadStats s = compute_stats(jobs, cfg.elephant_threshold);
  EXPECT_EQ(s.num_jobs, 200);
  EXPECT_GT(s.total_map_tasks, 0);
  EXPECT_GT(s.total_input.in_bytes(), 0);
  EXPECT_LE(s.first_arrival.sec(), s.last_arrival.sec());
}

TEST(TraceIo, RoundTripsExactly) {
  WorkloadConfig cfg = small_config();
  cfg.num_jobs = 50;
  Rng rng(13);
  const auto jobs = generate_workload(cfg, rng);

  std::stringstream ss;
  write_trace(ss, jobs);
  const auto parsed = read_trace(ss);
  ASSERT_EQ(parsed.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(parsed[i].id, jobs[i].id);
    EXPECT_EQ(parsed[i].user, jobs[i].user);
    EXPECT_DOUBLE_EQ(parsed[i].arrival.sec(), jobs[i].arrival.sec());
    EXPECT_EQ(parsed[i].num_maps, jobs[i].num_maps);
    EXPECT_EQ(parsed[i].num_reduces, jobs[i].num_reduces);
    EXPECT_EQ(parsed[i].input_size, jobs[i].input_size);
    EXPECT_DOUBLE_EQ(parsed[i].sir, jobs[i].sir);
    ASSERT_EQ(parsed[i].map_durations.size(), jobs[i].map_durations.size());
    for (std::size_t t = 0; t < jobs[i].map_durations.size(); ++t) {
      EXPECT_DOUBLE_EQ(parsed[i].map_durations[t].sec(),
                       jobs[i].map_durations[t].sec());
    }
  }
}

TEST(TraceIo, MapOnlyJobRoundTrips) {
  JobSpec j;
  j.id = JobId{0};
  j.user = UserId{0};
  j.num_maps = 2;
  j.num_reduces = 0;
  j.input_size = DataSize::gigabytes(1);
  j.sir = 0.0;
  j.map_durations.assign(2, Duration::seconds(5));

  std::stringstream ss;
  write_trace(ss, {j});
  const auto parsed = read_trace(ss);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].num_reduces, 0);
  EXPECT_TRUE(parsed[0].reduce_durations.empty());
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream ss("not,a,trace\n");
  EXPECT_THROW((void)read_trace(ss), CheckFailure);
}

TEST(TraceIo, RejectsTruncatedLine) {
  std::stringstream ss;
  ss << "job_id,user_id,arrival_sec,num_maps,num_reduces,input_bytes,sir,"
        "map_durations_sec,reduce_durations_sec\n";
  ss << "0,0,1.0,2\n";
  EXPECT_THROW((void)read_trace(ss), CheckFailure);
}

}  // namespace
}  // namespace cosched
