// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "simcore/simulator.h"

namespace cosched {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now().sec(), 0.0);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().sec(), 3.0);
}

TEST(Simulator, LivePendingCountExcludesTombstones) {
  Simulator sim;
  auto h1 = sim.schedule_at(SimTime::seconds(1), [] {});
  auto h2 = sim.schedule_at(SimTime::seconds(2), [] {});
  auto h3 = sim.schedule_at(SimTime::seconds(3), [] {});
  EXPECT_EQ(sim.events_pending(), 3u);
  EXPECT_EQ(sim.events_pending_raw(), 3u);

  // Cancelling leaves a tombstone in the queue but drops the live count.
  h2.cancel();
  EXPECT_EQ(sim.events_pending(), 2u);
  EXPECT_EQ(sim.events_pending_raw(), 3u);

  // Double-cancel must not decrement twice.
  h2.cancel();
  EXPECT_EQ(sim.events_pending(), 2u);

  EXPECT_TRUE(sim.step());  // t=1 fires
  EXPECT_EQ(sim.events_pending(), 1u);
  EXPECT_EQ(sim.events_pending_raw(), 2u);  // tombstone still queued

  EXPECT_TRUE(sim.step());  // skips the t=2 tombstone, fires t=3
  EXPECT_DOUBLE_EQ(sim.now().sec(), 3.0);
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.events_pending_raw(), 0u);

  // Cancelling after the queue drained stays a no-op.
  h1.cancel();
  h3.cancel();
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, LivePendingCountTracksExecution) {
  Simulator sim;
  sim.schedule_at(SimTime::seconds(1), [&] {
    EXPECT_EQ(sim.events_pending(), 1u);  // self already popped
    sim.schedule_after(Duration::seconds(1), [] {});
  });
  sim.schedule_at(SimTime::seconds(5), [] {});
  EXPECT_EQ(sim.events_pending(), 2u);
  sim.run();
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.events_pending_raw(), 0u);
}

TEST(Simulator, SelfCancelDuringExecutionDoesNotCorruptLiveCount) {
  // An action cancelling its own handle (the EPS fabric does this when it
  // settles a completion event) must not double-decrement the live count.
  Simulator sim;
  auto handle = std::make_shared<EventHandle>();
  *handle = sim.schedule_at(SimTime::seconds(1), [handle] {
    handle->cancel();  // no-op: the event is already being consumed
    handle->cancel();
  });
  sim.schedule_at(SimTime::seconds(2), [] {});
  sim.run();
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.events_pending_raw(), 0u);
}

TEST(Simulator, SameTimestampFiresInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::seconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  std::vector<int> expected(10);
  for (int i = 0; i < 10; ++i) expected[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(order, expected);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(SimTime::seconds(2), [&] {
    sim.schedule_after(Duration::seconds(3),
                       [&] { fired_at = sim.now().sec(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, RejectsPastEvents) {
  Simulator sim;
  sim.schedule_at(SimTime::seconds(5), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime::seconds(1), [] {}), CheckFailure);
}

TEST(Simulator, RejectsInfiniteTime) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(SimTime::infinity(), [] {}), CheckFailure);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  int count = 0;
  EventHandle h = sim.schedule_at(SimTime::seconds(1), [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  h.cancel();  // no-op
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(Simulator, EventsMayScheduleFurtherEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    ++chain;
    if (chain < 5) sim.schedule_after(Duration::seconds(1), step);
  };
  sim.schedule_at(SimTime::seconds(0), step);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(sim.now().sec(), 4.0);
}

TEST(Simulator, RunUntilStopsAtDeadlineInclusive) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(SimTime::seconds(t), [&fired, t] { fired.push_back(t); });
  }
  sim.run_until(SimTime::seconds(3));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0}));
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(SimTime::seconds(1), [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, StepSkipsCancelledEvents) {
  Simulator sim;
  bool second_fired = false;
  EventHandle h = sim.schedule_at(SimTime::seconds(1), [] { FAIL(); });
  sim.schedule_at(SimTime::seconds(2), [&] { second_fired = true; });
  h.cancel();
  EXPECT_TRUE(sim.step());
  EXPECT_TRUE(second_fired);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.schedule_at(SimTime::seconds(i), [] {});
  }
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, ZeroDelayEventFiresAtCurrentTime) {
  Simulator sim;
  std::vector<std::string> order;
  sim.schedule_at(SimTime::seconds(1), [&] {
    order.push_back("outer");
    sim.schedule_after(Duration::zero(), [&] { order.push_back("inner"); });
  });
  sim.schedule_at(SimTime::seconds(1), [&] { order.push_back("sibling"); });
  sim.run();
  // The zero-delay event fires after already-queued same-time events.
  EXPECT_EQ(order,
            (std::vector<std::string>{"outer", "sibling", "inner"}));
}

TEST(Simulator, MassCancellationTriggersCompaction) {
  Simulator sim;
  std::vector<EventHandle> handles;
  std::vector<int> fired;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(
        sim.schedule_at(SimTime::seconds(i), [&fired, i] {
          fired.push_back(i);
        }));
  }
  // Cancel the tail 51: the 51st cancel tips `tombstones * 2 > heap size`
  // (102 > 100) and the sweep drops every stale entry at once.
  for (int i = 49; i < 100; ++i) handles[static_cast<std::size_t>(i)].cancel();
  EXPECT_GE(sim.queue_compactions(), 1u);
  EXPECT_EQ(sim.events_pending(), 49u);
  EXPECT_EQ(sim.events_pending_raw(), sim.events_pending());
  sim.run();
  ASSERT_EQ(fired.size(), 49u);
  for (std::size_t i = 0; i < fired.size(); ++i) {
    // Survivors still fire in timestamp order after the re-heapify.
    EXPECT_EQ(fired[i], static_cast<int>(i));
  }
}

TEST(Simulator, RecycledSlotDoesNotResurrectOldHandle) {
  Simulator sim;
  int first = 0;
  int second = 0;
  EventHandle stale = sim.schedule_at(SimTime::seconds(1), [&] { ++first; });
  sim.run();  // fires and frees the slot
  EXPECT_EQ(first, 1);
  EXPECT_FALSE(stale.pending());
  // The next schedule reuses the freed slot with a bumped generation: the
  // old handle must stay inert and must not cancel the new event.
  EventHandle fresh = sim.schedule_after(Duration::seconds(1),
                                         [&] { ++second; });
  stale.cancel();
  EXPECT_TRUE(fresh.pending());
  sim.run();
  EXPECT_EQ(second, 1);
}

TEST(Simulator, HandleOutlivesSimulatorSafely) {
  EventHandle h;
  {
    Simulator sim;
    h = sim.schedule_at(SimTime::seconds(1), [] {});
    EXPECT_TRUE(h.pending());
  }
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not touch freed memory
}

TEST(Simulator, CancelInsideOwnActionIsNoOp) {
  Simulator sim;
  int fired = 0;
  EventHandle h;
  h = sim.schedule_at(SimTime::seconds(1), [&] {
    ++fired;
    h.cancel();  // the EPS replan path cancels its own handle mid-action
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_pending(), 0u);
  // The slot freed by firing must be reusable afterwards.
  sim.schedule_after(Duration::seconds(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace cosched
