// Rate-engine equivalence regression (part of `ctest -L determinism`).
//
// The grouped fast-path filling in EpsFabric must reproduce the retained
// per-flow reference engine *bit for bit*: identical per-flow rates after
// every replan and identical completion times, across randomized
// topologies and flow sets — including many flows on one rack pair,
// zero-byte flows, local flows, and demand added mid-transfer. Any
// divergence here means the fast path changed simulation results.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/eps_fabric.h"

namespace cosched {
namespace {

// One fabric + simulator pair running a scripted scenario under a chosen
// rate engine. Flow ids are allocated in scenario order, so the two runs
// being compared always agree on ids.
struct EngineRun {
  Simulator sim;
  EpsFabric eps;
  IdAllocator<FlowId> ids;
  std::vector<std::unique_ptr<Flow>> flows;

  EngineRun(const HybridTopology& topo, EpsFabric::RateEngine engine)
      : eps(sim, topo) {
    eps.set_rate_engine(engine);
  }

  void start(std::int64_t src, std::int64_t dst, DataSize size) {
    flows.push_back(std::make_unique<Flow>(ids.next(), CoflowId{0}, JobId{0},
                                           RackId{src}, RackId{dst}, size));
    Flow& f = *flows.back();
    f.set_path(src == dst ? FlowPath::kLocal : FlowPath::kEps);
    eps.start_flow(f, nullptr);
  }

  void grow(std::size_t idx, DataSize extra) {
    flows[idx]->add_demand(extra);
    eps.demand_added(*flows[idx]);
  }
};

void expect_identical_state(EngineRun& ref, EngineRun& fast) {
  ASSERT_EQ(ref.eps.active_flows(), fast.eps.active_flows());
  const auto a = ref.eps.current_rates();
  const auto b = fast.eps.current_rates();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].first, b[i].first);
    // Bit-exact: the grouped engine must not perturb rates at all.
    ASSERT_EQ(a[i].second.in_bits_per_sec(), b[i].second.in_bits_per_sec())
        << "flow " << a[i].first << " rates diverged";
  }
}

// Drive both engines through one randomized scenario in lockstep,
// comparing rates after every mutation and completion times at the end.
void run_scenario(std::uint64_t seed, std::int32_t racks,
                  std::int64_t num_starts, std::int64_t pair_limit,
                  bool zero_bytes, bool locals, bool demand_adds) {
  HybridTopology topo;
  topo.num_racks = racks;
  EngineRun ref(topo, EpsFabric::RateEngine::kReference);
  EngineRun fast(topo, EpsFabric::RateEngine::kGrouped);

  // Both runs draw from their own identically seeded generator.
  Rng rng(seed);
  SimTime t = SimTime::zero();
  std::int64_t started = 0;
  while (started < num_starts) {
    t = t + Duration::milliseconds(rng.uniform_int(0, 250));
    ref.sim.run_until(t);
    fast.sim.run_until(t);
    const bool add_demand = demand_adds && started > 0 &&
                            rng.uniform_int(0, 3) == 0;
    if (add_demand) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ref.flows.size()) - 1));
      const DataSize extra = DataSize::megabytes(rng.uniform_int(0, 800));
      // Completion status must already agree; only grow in-flight flows so
      // this scenario never re-opens a drained flow (the driver restarts
      // those through the fabric, which is covered by the driver tests).
      ASSERT_EQ(ref.flows[idx]->completed(), fast.flows[idx]->completed());
      if (!ref.flows[idx]->completed()) {
        ref.grow(idx, extra);
        fast.grow(idx, extra);
      }
    } else {
      // Restricting the rack range squeezes many flows onto few pairs.
      const std::int64_t span = pair_limit > 0
                                    ? std::min<std::int64_t>(pair_limit, racks)
                                    : racks;
      const std::int64_t src = rng.uniform_int(0, span - 1);
      std::int64_t dst = rng.uniform_int(0, span - 1);
      if (locals ? false : dst == src) dst = (dst + 1) % span;
      if (dst == src && span == 1) dst = src;  // degenerate: local only
      DataSize size = DataSize::megabytes(rng.uniform_int(1, 4000));
      if (zero_bytes && rng.uniform_int(0, 4) == 0) size = DataSize::zero();
      ref.start(src, dst, size);
      fast.start(src, dst, size);
      ++started;
    }
    // Advance past the replan-coalescing window so new rates are live.
    t = t + Duration::milliseconds(101);
    ref.sim.run_until(t);
    fast.sim.run_until(t);
    expect_identical_state(ref, fast);
    if (::testing::Test::HasFatalFailure()) return;
  }

  ref.sim.run();
  fast.sim.run();
  ASSERT_EQ(ref.eps.active_flows(), 0U);
  ASSERT_EQ(fast.eps.active_flows(), 0U);
  ASSERT_EQ(fast.eps.active_groups(), 0U);
  for (std::size_t i = 0; i < ref.flows.size(); ++i) {
    ASSERT_TRUE(ref.flows[i]->completed());
    ASSERT_TRUE(fast.flows[i]->completed());
    ASSERT_EQ(ref.flows[i]->completion_time().sec(),
              fast.flows[i]->completion_time().sec())
        << "flow " << ref.flows[i]->id() << " completion diverged";
  }
  // The byte accounting must agree too (identical settles on both sides).
  ASSERT_EQ(ref.eps.eps_bytes_transferred().in_bytes(),
            fast.eps.eps_bytes_transferred().in_bytes());
  ASSERT_EQ(ref.eps.local_bytes_transferred().in_bytes(),
            fast.eps.local_bytes_transferred().in_bytes());
}

TEST(RateEquivalence, RandomizedSmallTopologies) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::int32_t racks = static_cast<std::int32_t>(2 + seed % 7);
    SCOPED_TRACE("seed " + std::to_string(seed) + " racks " +
                 std::to_string(racks));
    run_scenario(seed, racks, /*num_starts=*/40, /*pair_limit=*/0,
                 /*zero_bytes=*/false, /*locals=*/false,
                 /*demand_adds=*/false);
  }
}

TEST(RateEquivalence, ManyFlowsPerPair) {
  // 80 flows over at most 2*1 cross-rack pairs: deep groups, few rounds.
  run_scenario(/*seed=*/11, /*racks=*/6, /*num_starts=*/80, /*pair_limit=*/2,
               /*zero_bytes=*/false, /*locals=*/false, /*demand_adds=*/false);
}

TEST(RateEquivalence, PaperScaleSixtyRacks) {
  run_scenario(/*seed=*/21, /*racks=*/60, /*num_starts=*/120,
               /*pair_limit=*/0, /*zero_bytes=*/false, /*locals=*/false,
               /*demand_adds=*/false);
}

TEST(RateEquivalence, ZeroByteAndLocalFlows) {
  run_scenario(/*seed=*/31, /*racks=*/5, /*num_starts=*/60, /*pair_limit=*/0,
               /*zero_bytes=*/true, /*locals=*/true, /*demand_adds=*/false);
}

TEST(RateEquivalence, DemandAddedMidTransfer) {
  run_scenario(/*seed=*/41, /*racks=*/8, /*num_starts=*/50, /*pair_limit=*/3,
               /*zero_bytes=*/true, /*locals=*/true, /*demand_adds=*/true);
}

}  // namespace
}  // namespace cosched
