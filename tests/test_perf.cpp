// Performance-observability suite (ctest -L obs): the LatencyHistogram's
// fixed bucket layout and percentile math, PerfPhaseStats size attribution,
// PerfMonitor enable/capture semantics, the RunReport JSON exporter, and —
// most importantly — the guarantee the whole subsystem rests on: a run with
// monitoring and heartbeat enabled is bit-for-bit identical to a dark run.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/run_report.h"
#include "obs/latency_histogram.h"
#include "obs/observability.h"
#include "obs/perf_monitor.h"
#include "obs/profile.h"
#include "sim/experiment.h"

namespace cosched {
namespace {

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

// ---- LatencyHistogram bucket layout ---------------------------------------

TEST(LatencyHistogram, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_lo(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_hi(v), v + 1);
  }
  EXPECT_EQ(LatencyHistogram::bucket_index(16), 16u);
  EXPECT_EQ(LatencyHistogram::bucket_index(kU64Max),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogram, BucketBoundariesAreConsistent) {
  for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const std::uint64_t lo = LatencyHistogram::bucket_lo(i);
    const std::uint64_t hi = LatencyHistogram::bucket_hi(i);
    EXPECT_LT(lo, hi) << "bucket " << i;
    // Both endpoints of [lo, hi) land in bucket i.
    EXPECT_EQ(LatencyHistogram::bucket_index(lo), i);
    EXPECT_EQ(LatencyHistogram::bucket_index(hi - 1), i);
    // Buckets tile the axis: hi(i) == lo(i+1).
    if (i + 1 < LatencyHistogram::kNumBuckets) {
      EXPECT_EQ(hi, LatencyHistogram::bucket_lo(i + 1)) << "bucket " << i;
    } else {
      EXPECT_EQ(hi, kU64Max);
    }
  }
}

TEST(LatencyHistogram, BucketRelativeWidthIsBounded) {
  // Four sub-buckets per octave: width / lo <= 1/4 for every log bucket,
  // which bounds the percentile estimation error.
  for (std::size_t i = 16; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    const double lo = static_cast<double>(LatencyHistogram::bucket_lo(i));
    const double hi = static_cast<double>(LatencyHistogram::bucket_hi(i));
    EXPECT_LE((hi - lo) / lo, 0.25 + 1e-12) << "bucket " << i;
  }
}

// ---- LatencyHistogram percentiles -----------------------------------------

TEST(LatencyHistogram, EmptyHistogramIsAllZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.percentile(100), 0.0);
}

TEST(LatencyHistogram, SingleSampleIsEveryPercentile) {
  LatencyHistogram h;
  h.add(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234u);
  EXPECT_EQ(h.max(), 1234u);
  EXPECT_EQ(h.mean(), 1234.0);
  // Interpolation is clamped to [min, max], so a lone sample is exact at
  // every percentile, not just p100.
  for (double p : {0.0, 1.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(h.percentile(p), 1234.0) << "p" << p;
  }
}

TEST(LatencyHistogram, ExactValuesBelowSixteen) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.add(v);
  for (std::uint64_t v = 0; v < 16; ++v) EXPECT_EQ(h.bucket_count(v), 1u);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.sum(), 120u);
  EXPECT_EQ(h.percentile(100), 15.0);
}

TEST(LatencyHistogram, PercentilesAreMonotoneAndClamped) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10000; v += 7) h.add(v);
  double prev = -1.0;
  for (double p = 0; p <= 100.0; p += 0.5) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    EXPECT_GE(v, static_cast<double>(h.min()));
    EXPECT_LE(v, static_cast<double>(h.max()));
    prev = v;
  }
  EXPECT_EQ(h.percentile(100), static_cast<double>(h.max()));
}

TEST(LatencyHistogram, MergeMatchesCombinedSamples) {
  std::vector<std::uint64_t> xs, ys;
  for (std::uint64_t i = 0; i < 200; ++i) xs.push_back(i * i + 3);
  for (std::uint64_t i = 0; i < 300; ++i) ys.push_back(i * 31 + 1);

  LatencyHistogram a, b, combined;
  for (auto v : xs) { a.add(v); combined.add(v); }
  for (auto v : ys) { b.add(v); combined.add(v); }

  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ba = b;
  ba.merge(a);
  for (const LatencyHistogram* m : {&ab, &ba}) {
    EXPECT_EQ(m->count(), combined.count());
    EXPECT_EQ(m->sum(), combined.sum());
    EXPECT_EQ(m->min(), combined.min());
    EXPECT_EQ(m->max(), combined.max());
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      EXPECT_EQ(m->bucket_count(i), combined.bucket_count(i)) << "bucket " << i;
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(m->p99()),
              std::bit_cast<std::uint64_t>(combined.p99()));
  }
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram a;
  a.add(42);
  a.add(7);
  LatencyHistogram merged = a;
  merged.merge(LatencyHistogram{});
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.min(), 7u);
  EXPECT_EQ(merged.max(), 42u);

  LatencyHistogram empty;
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.min(), 7u);
  EXPECT_EQ(empty.max(), 42u);
}

TEST(LatencyHistogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.add(99);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(50), 0.0);
}

// ---- PerfPhaseStats size attribution --------------------------------------

TEST(PerfPhaseStats, SizeBucketIndexIsBitWidth) {
  EXPECT_EQ(PerfPhaseStats::size_bucket_index(0), 0u);
  EXPECT_EQ(PerfPhaseStats::size_bucket_index(1), 1u);
  EXPECT_EQ(PerfPhaseStats::size_bucket_index(2), 2u);
  EXPECT_EQ(PerfPhaseStats::size_bucket_index(3), 2u);
  EXPECT_EQ(PerfPhaseStats::size_bucket_index(4), 3u);
  EXPECT_EQ(PerfPhaseStats::size_bucket_index(7), 3u);
  EXPECT_EQ(PerfPhaseStats::size_bucket_index(8), 4u);
  EXPECT_EQ(PerfPhaseStats::size_bucket_index(kU64Max),
            PerfPhaseStats::kSizeBuckets - 1);
}

TEST(PerfPhaseStats, SizeBucketBoundsMatchIndex) {
  EXPECT_EQ(PerfPhaseStats::size_bucket_lo(0), 0u);
  EXPECT_EQ(PerfPhaseStats::size_bucket_hi(0), 0u);
  for (std::size_t b = 1; b < PerfPhaseStats::kSizeBuckets; ++b) {
    const std::uint64_t lo = PerfPhaseStats::size_bucket_lo(b);
    const std::uint64_t hi = PerfPhaseStats::size_bucket_hi(b);
    EXPECT_LE(lo, hi) << "bucket " << b;
    EXPECT_EQ(PerfPhaseStats::size_bucket_index(lo), b);
    EXPECT_EQ(PerfPhaseStats::size_bucket_index(hi), b);
  }
  EXPECT_EQ(PerfPhaseStats::size_bucket_hi(PerfPhaseStats::kSizeBuckets - 1),
            kU64Max);
}

TEST(PerfPhaseStats, AddAttributesToSizeBucket) {
  PerfPhaseStats s;
  s.add(100, 5);  // sizes 4..7 -> bucket 3
  s.add(300, 6);
  s.add(50, 0);  // -> bucket 0
  EXPECT_EQ(s.calls, 3u);
  EXPECT_EQ(s.total_ns, 450u);
  EXPECT_EQ(s.max_ns, 300u);
  EXPECT_EQ(s.latency.count(), 3u);
  EXPECT_EQ(s.by_size[3].calls, 2u);
  EXPECT_EQ(s.by_size[3].total_ns, 400u);
  EXPECT_EQ(s.by_size[3].max_ns, 300u);
  EXPECT_EQ(s.by_size[3].total_size, 11u);
  EXPECT_EQ(s.by_size[0].calls, 1u);
  EXPECT_EQ(s.by_size[0].total_ns, 50u);

  PerfPhaseStats other;
  other.add(1000, 7);
  s.merge(other);
  EXPECT_EQ(s.calls, 4u);
  EXPECT_EQ(s.max_ns, 1000u);
  EXPECT_EQ(s.by_size[3].calls, 3u);
  EXPECT_EQ(s.by_size[3].total_size, 18u);
}

// ---- PerfMonitor ----------------------------------------------------------

TEST(PerfMonitor, PhaseNamesAreStable) {
  EXPECT_STREQ(to_string(PerfPhase::kPsrtEnumerate), "psrt.enumerate");
  EXPECT_STREQ(to_string(PerfPhase::kSbsExplore), "sbs.explore");
  EXPECT_STREQ(to_string(PerfPhase::kOcasGrant), "ocas.grant");
  EXPECT_STREQ(to_string(PerfPhase::kSchedPickTask), "sched.pick_task");
  EXPECT_STREQ(to_string(PerfPhase::kSunflowAlloc), "sunflow.allocation");
  EXPECT_STREQ(to_string(PerfPhase::kEpsReplan), "eps.replan");
  EXPECT_STREQ(to_string(PerfPhase::kEventDispatch), "sim.event_dispatch");
  EXPECT_STREQ(to_string(PerfPhase::kDriverDispatch), "driver.dispatch");
}

TEST(PerfMonitor, DisabledScopeRecordsNothing) {
  PerfMonitor::set_enabled(false);
  PerfMonitor::instance().reset();
  {
    PerfScope scope(PerfPhase::kOcasGrant);
    EXPECT_FALSE(scope.active());
    scope.set_size(17);
  }
  EXPECT_TRUE(PerfMonitor::instance().snapshot().empty());
}

TEST(PerfMonitor, EnabledScopeRecordsIntoPhase) {
  PerfMonitor::set_enabled(true);
  PerfMonitor::instance().reset();
  {
    PerfScope scope(PerfPhase::kSbsExplore);
    EXPECT_TRUE(scope.active());
    scope.set_size(12);
  }
  PerfMonitor::set_enabled(false);

  const PerfSnapshot snap = PerfMonitor::instance().snapshot();
  EXPECT_FALSE(snap.empty());
  const PerfPhaseStats& s = snap.phase(PerfPhase::kSbsExplore);
  EXPECT_EQ(s.calls, 1u);
  EXPECT_EQ(s.latency.count(), 1u);
  EXPECT_EQ(s.by_size[PerfPhaseStats::size_bucket_index(12)].calls, 1u);
  EXPECT_EQ(snap.phase(PerfPhase::kOcasGrant).calls, 0u);
}

TEST(PerfMonitor, CaptureSeesOnlyBracketedRecords) {
  PerfMonitor::set_enabled(true);
  PerfMonitor::instance().reset();

  PerfMonitor::instance().record(PerfPhase::kEpsReplan, 10, 1);  // pre-capture
  PerfSnapshot cap;
  PerfMonitor::begin_capture(&cap);
  PerfMonitor::instance().record(PerfPhase::kEpsReplan, 20, 2);
  PerfMonitor::end_capture();
  PerfMonitor::instance().record(PerfPhase::kEpsReplan, 30, 3);  // post
  PerfMonitor::set_enabled(false);

  EXPECT_EQ(cap.phase(PerfPhase::kEpsReplan).calls, 1u);
  EXPECT_EQ(cap.phase(PerfPhase::kEpsReplan).total_ns, 20u);
  EXPECT_EQ(
      PerfMonitor::instance().snapshot().phase(PerfPhase::kEpsReplan).calls,
      3u);
}

TEST(PerfMonitor, WriteSummaryListsRecordedPhases) {
  PerfSnapshot snap;
  snap.phases[static_cast<std::size_t>(PerfPhase::kSunflowAlloc)].add(500, 9);
  std::ostringstream os;
  PerfMonitor::write_summary(os, snap);
  const std::string out = os.str();
  EXPECT_NE(out.find("sunflow.allocation"), std::string::npos);
  EXPECT_EQ(out.find("ocas.grant"), std::string::npos);
}

// ---- Profiler per-run capture ---------------------------------------------

TEST(Profiler, CaptureCollectsDeltaNotCumulative) {
  Profiler::set_enabled(true);
  Profiler::instance().reset();
  Profiler::instance().add("perf_test.section", 100);

  std::vector<std::pair<std::string, Profiler::Section>> cap;
  Profiler::begin_capture(&cap);
  Profiler::instance().add("perf_test.section", 200);
  Profiler::instance().add("perf_test.other", 50);
  Profiler::end_capture();
  Profiler::instance().add("perf_test.section", 400);
  Profiler::set_enabled(false);

  // The capture holds only what happened inside the bracket — the fix for
  // cross-run accumulation in multi-repetition benches.
  ASSERT_EQ(cap.size(), 2u);
  EXPECT_EQ(cap[0].first, "perf_test.section");
  EXPECT_EQ(cap[0].second.calls, 1u);
  EXPECT_EQ(cap[0].second.total_ns, 200u);
  EXPECT_EQ(cap[1].first, "perf_test.other");
  EXPECT_EQ(cap[1].second.calls, 1u);

  // The global registry still accumulates everything.
  for (const auto& [name, s] : Profiler::instance().snapshot()) {
    if (name == "perf_test.section") {
      EXPECT_EQ(s.calls, 3u);
      EXPECT_EQ(s.total_ns, 700u);
    }
  }
  Profiler::instance().reset();
}

// ---- RunReport JSON -------------------------------------------------------

ExperimentConfig tiny_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.sim.topo.num_racks = 12;
  cfg.sim.topo.servers_per_rack = 2;
  cfg.sim.topo.slots_per_server = 10;
  cfg.workload.num_jobs = 18;
  cfg.workload.num_users = 4;
  cfg.workload.arrival_window = Duration::minutes(3);
  cfg.workload.max_maps = 60;
  cfg.workload.max_reduces = 8;
  cfg.workload.max_input = DataSize::gigabytes(50);
  cfg.repetitions = 1;
  cfg.base_seed = seed;
  return cfg;
}

/// Structural JSON check without a parser: quotes, braces, and brackets
/// must balance, with string/escape state tracked.
void expect_balanced_json(const std::string& s) {
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (escaped) { escaped = false; continue; }
    if (in_string) {
      if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(RunReport, EmitsAllSectionsAndBalances) {
  const ExperimentConfig cfg = tiny_config(7);
  PerfMonitor::set_enabled(true);
  PerfMonitor::instance().reset();
  Observability obs;
  ExperimentConfig observed = cfg;
  observed.sim.obs = &obs;
  const RunMetrics run =
      run_once(observed, make_scheduler_factory("coscheduler"), 0);
  PerfMonitor::set_enabled(false);

  RunReportMeta meta;
  meta.num_jobs = 18;
  meta.num_racks = 12;
  meta.wall_time_sec = 0.25;
  meta.rss_high_water_bytes = 1 << 20;
  std::ostringstream os;
  write_run_report_json(os, run, meta, &obs.perf, &obs.profile, &obs.counters);
  const std::string json = os.str();

  expect_balanced_json(json);
  for (const char* key :
       {"\"schema\": \"cosched.run_report\"", "\"version\": 2",
        "\"scheduler\": \"coscheduler\"", "\"config\": {\"jobs\": 18",
        "\"metrics\": {", "\"makespan_sec\": ", "\"jct_percentiles\": ",
        "\"jain_fairness\": ", "\"dispatch_waves\": ", "\"faults\": {",
        "\"counters\": {", "\"profile\": [", "\"phases\": ["}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // All eight phases appear by stable name, with histograms attached.
  for (std::size_t p = 0; p < kPerfPhaseCount; ++p) {
    const std::string name =
        std::string("\"name\": \"") + to_string(static_cast<PerfPhase>(p)) +
        '"';
    EXPECT_NE(json.find(name), std::string::npos) << "missing " << name;
  }
  EXPECT_NE(json.find("\"histogram\": ["), std::string::npos);
  EXPECT_NE(json.find("\"by_size\": ["), std::string::npos);
  // The coscheduler run must have exercised the key phases.
  EXPECT_GT(obs.perf.phase(PerfPhase::kOcasGrant).calls, 0u);
  EXPECT_GT(obs.perf.phase(PerfPhase::kSunflowAlloc).calls, 0u);
  EXPECT_GT(obs.perf.phase(PerfPhase::kEventDispatch).calls, 0u);
}

TEST(RunReport, DarkRunStillYieldsValidReport) {
  RunMetrics run;
  run.scheduler = "fair";
  run.seed = 3;
  std::ostringstream os;
  write_run_report_json(os, run, RunReportMeta{});
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"schema\": \"cosched.run_report\""),
            std::string::npos);
  EXPECT_NE(json.find("\"phases\": []"), std::string::npos);
  EXPECT_NE(json.find("\"profile\": []"), std::string::npos);
}

TEST(RunReport, IdenticalInputsSerializeIdentically) {
  const ExperimentConfig cfg = tiny_config(11);
  const RunMetrics run = run_once(cfg, make_scheduler_factory("fair"), 0);
  RunReportMeta meta;
  meta.num_jobs = 18;
  meta.num_racks = 12;
  std::ostringstream a, b;
  write_run_report_json(a, run, meta);
  write_run_report_json(b, run, meta);
  EXPECT_EQ(a.str(), b.str());
}

// ---- Determinism: monitored == dark ---------------------------------------

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_run_bitwise_equal(const RunMetrics& a, const RunMetrics& b,
                              const std::string& where) {
  EXPECT_EQ(a.scheduler, b.scheduler) << where;
  EXPECT_EQ(a.seed, b.seed) << where;
  EXPECT_EQ(bits(a.makespan.sec()), bits(b.makespan.sec())) << where;
  EXPECT_EQ(a.ocs_bytes.in_bytes(), b.ocs_bytes.in_bytes()) << where;
  EXPECT_EQ(a.eps_bytes.in_bytes(), b.eps_bytes.in_bytes()) << where;
  EXPECT_EQ(a.local_bytes.in_bytes(), b.local_bytes.in_bytes()) << where;
  EXPECT_EQ(a.events_executed, b.events_executed) << where;
  EXPECT_EQ(a.dispatch_waves, b.dispatch_waves) << where;
  ASSERT_EQ(a.jobs.size(), b.jobs.size()) << where;
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    const std::string at = where + " job#" + std::to_string(j);
    EXPECT_EQ(a.jobs[j].id, b.jobs[j].id) << at;
    EXPECT_EQ(bits(a.jobs[j].completion.sec()),
              bits(b.jobs[j].completion.sec()))
        << at;
    EXPECT_EQ(bits(a.jobs[j].jct.sec()), bits(b.jobs[j].jct.sec())) << at;
    EXPECT_EQ(bits(a.jobs[j].cct.sec()), bits(b.jobs[j].cct.sec())) << at;
    EXPECT_EQ(a.jobs[j].shuffle_bytes.in_bytes(),
              b.jobs[j].shuffle_bytes.in_bytes())
        << at;
  }
}

TEST(PerfDeterminism, MonitoredHeartbeatRunIsBitIdenticalToDark) {
  const ExperimentConfig cfg = tiny_config(42);
  for (const char* name : {"fair", "coscheduler"}) {
    // Dark run: no monitor, no heartbeat, no profiler.
    PerfMonitor::set_enabled(false);
    const RunMetrics dark = run_once(cfg, make_scheduler_factory(name), 0);

    // Fully lit run: PerfMonitor on, aggressive heartbeat into a sink.
    PerfMonitor::set_enabled(true);
    PerfMonitor::instance().reset();
    std::ostringstream beats;
    ExperimentConfig lit = cfg;
    lit.sim.heartbeat_sec = 1e-9;  // beat at every stride check
    lit.sim.heartbeat_out = &beats;
    const RunMetrics monitored =
        run_once(lit, make_scheduler_factory(name), 0);
    PerfMonitor::set_enabled(false);

    expect_run_bitwise_equal(dark, monitored, name);
    // The heartbeat fired (at minimum the final beat) and looks right.
    EXPECT_EQ(beats.str().rfind("[heartbeat] wall=", 0), 0u) << name;
    EXPECT_NE(beats.str().find("jobs=18/18"), std::string::npos) << name;
    // ...and the monitor actually saw the run.
    EXPECT_FALSE(PerfMonitor::instance().snapshot().empty()) << name;
  }
}

TEST(PerfDeterminism, HeartbeatOffWritesNothing) {
  ExperimentConfig cfg = tiny_config(5);
  std::ostringstream beats;
  cfg.sim.heartbeat_out = &beats;  // sink set, but heartbeat_sec stays 0
  (void)run_once(cfg, make_scheduler_factory("fair"), 0);
  EXPECT_TRUE(beats.str().empty());
}

}  // namespace
}  // namespace cosched
