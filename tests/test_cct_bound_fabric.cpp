// Fabric::cct_lower_bound (ctest -L fabric): hand-derived bound values per
// fabric — ocs:1 bit-identical to the paper's T(C) free function, ocs:K
// dividing port work across planes (with the single-flow and ceil(deg/K)
// setup terms), rotor slot quantization at the exactly-one-period edge,
// mesh's zero-delta max-entry bound, ring hop scaling with the abstract-id
// clamp — plus the PSRT reference/incremental surrogate equivalence under
// every fabric bound (docs/FABRICS.md, "The bound contract").
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "coflow/cct_bound.h"
#include "coflow/traffic_matrix.h"
#include "fabric/baseline_fabrics.h"
#include "fabric/ocs_fabric.h"
#include "fabric/rotor_fabric.h"
#include "net/topology.h"
#include "sched/coscheduler.h"
#include "simcore/simulator.h"

namespace cosched {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// 8 racks, 8 Gb/s OCS (= 1 GB/s, so a 1 GB transfer is exactly 1 s),
/// delta = 10 ms, T_e = 1 GB: every hand-derived value below is exact.
HybridTopology test_topo() {
  HybridTopology topo;
  topo.num_racks = 8;
  topo.ocs_link = Bandwidth::gbps(8);
  topo.ocs_reconfig_delay = Duration::milliseconds(10);
  topo.elephant_threshold = DataSize::gigabytes(1);
  return topo;
}

constexpr double kDelta = 0.01;

TrafficMatrix asymmetric_matrix() {
  // Row 0 is wide (two flows), column 1 is tall (4 GB single flow): the
  // binding line differs between the legacy bound (column 1: 6 s + 2
  // setups) and the per-entry term (the 4 GB flow).
  TrafficMatrix m;
  m.add(RackId{0}, RackId{1}, DataSize::gigabytes(2));
  m.add(RackId{0}, RackId{2}, DataSize::gigabytes(1));
  m.add(RackId{3}, RackId{1}, DataSize::gigabytes(4));
  return m;
}

TEST(CctBoundFabric, Ocs1IsBitIdenticalToTheLegacyFreeFunction) {
  Simulator sim;
  const HybridTopology topo = test_topo();
  const OcsFabric ocs1(sim, topo, 1);
  const TrafficMatrix m = asymmetric_matrix();
  const Duration legacy =
      cct_lower_bound(m, topo.ocs_link, topo.ocs_reconfig_delay);
  EXPECT_EQ(bits(ocs1.cct_lower_bound(m).sec()), bits(legacy.sec()));
  // Hand value: col 1 binds at t(6 GB) + 2 * delta.
  EXPECT_DOUBLE_EQ(legacy.sec(), 6.0 + 2.0 * kDelta);
  EXPECT_EQ(bits(ocs1.cct_lower_bound(TrafficMatrix{}).sec()), bits(0.0));
}

TEST(CctBoundFabric, Ocs4SingleFlowTermBindsOnTheAsymmetricMatrix) {
  Simulator sim;
  const OcsFabric ocs4(sim, test_topo(), 4);
  // Port terms shrink by 4: col 1 becomes (6 + 2 delta)/4 = 1.505 s. But
  // the 4 GB flow still rides one circuit on one plane: 4 s + delta binds.
  EXPECT_DOUBLE_EQ(ocs4.cct_lower_bound(asymmetric_matrix()).sec(),
                   4.0 + kDelta);
}

TEST(CctBoundFabric, Ocs4DividesPortWorkAcrossPlanes) {
  Simulator sim;
  const OcsFabric ocs1(sim, test_topo(), 1);
  const OcsFabric ocs4(sim, test_topo(), 4);
  // One source fanning 1 GB to all 8 destinations: pure port-bound shape.
  TrafficMatrix m;
  for (int j = 1; j < 8; ++j) {
    m.add(RackId{0}, RackId{j}, DataSize::gigabytes(1));
  }
  m.add(RackId{0}, RackId{100}, DataSize::gigabytes(1));
  // ocs:1 charges the full serialized row: 8 s + 8 setups.
  EXPECT_DOUBLE_EQ(ocs1.cct_lower_bound(m).sec(), 8.0 + kDelta * 8.0);
  // ocs:4 spreads it over 4 transceivers; the single-flow term (1 s +
  // delta) and ceil(8/4) setups are both smaller.
  EXPECT_DOUBLE_EQ(ocs4.cct_lower_bound(m).sec(), (8.0 + kDelta * 8.0) / 4.0);
}

TEST(CctBoundFabric, OcsKCeilSetupTermBindsForTinyFlows) {
  Simulator sim;
  const OcsFabric ocs4(sim, test_topo(), 4);
  // 5 flows of 4 MB from one source: transfer is 0.02 s total, so the
  // averaged busy term is (0.02 + 5 delta)/4 = 0.0175 s — but 5 setups
  // cannot pack onto 4 planes without some plane doing 2 in sequence.
  TrafficMatrix m;
  for (int j = 1; j <= 5; ++j) {
    m.add(RackId{0}, RackId{j}, DataSize::megabytes(4));
  }
  EXPECT_DOUBLE_EQ(ocs4.cct_lower_bound(m).sec(),
                   kDelta * std::ceil(5.0 / 4.0));
}

TEST(CctBoundFabric, RotorSlotEdgeAtExactlyOnePeriodOfCapacity) {
  Simulator sim;
  const RotorFabric rotor(sim, test_topo(), Duration::milliseconds(100));
  // One slot's usable capacity is (P - delta) * bw = 90 ms at 1 GB/s =
  // 90 MB. A flow of exactly that size fits one slot: the bound is its
  // pure transfer time, not a period.
  TrafficMatrix exact;
  exact.add(RackId{0}, RackId{1}, DataSize::bytes(90'000'000));
  EXPECT_DOUBLE_EQ(rotor.cct_lower_bound(exact).sec(), 0.09);
  // One byte more needs a second slot; the straddle-aware tail
  // ((n-2) P + delta + residual) stays below the drain term, which still
  // binds — the bound grows continuously across the slot edge.
  TrafficMatrix over;
  over.add(RackId{0}, RackId{1}, DataSize::bytes(90'000'001));
  EXPECT_DOUBLE_EQ(rotor.cct_lower_bound(over).sec(),
                   transfer_time(DataSize::bytes(90'000'001),
                                 Bandwidth::gbps(8))
                       .sec());
}

TEST(CctBoundFabric, RotorDegreeForcesDistinctSlots) {
  Simulator sim;
  const RotorFabric rotor(sim, test_topo(), Duration::milliseconds(100));
  // Three tiny flows to three destinations: the bits fit one slot, but
  // each slot wires the source to exactly one peer, so three distinct
  // slots are needed — the third's boundary lies > release + P, plus its
  // delta. Slot quantization dominates the 12 ms of transfer.
  TrafficMatrix m;
  for (int j = 1; j <= 3; ++j) {
    m.add(RackId{0}, RackId{j}, DataSize::megabytes(4));
  }
  EXPECT_DOUBLE_EQ(rotor.cct_lower_bound(m).sec(), 0.1 + kDelta);
}

TEST(CctBoundFabric, MeshChargesOnlyTheLargestEntryAndZeroDelta) {
  Simulator sim;
  const MeshFabric mesh(sim, test_topo());
  const TrafficMatrix m = asymmetric_matrix();
  // Every pair drains concurrently: 4 s for the largest flow, no delta —
  // strictly below the legacy bound's 6.02 s column serialization.
  EXPECT_DOUBLE_EQ(mesh.cct_lower_bound(m).sec(), 4.0);
  EXPECT_LT(mesh.cct_lower_bound(m).sec(),
            cct_lower_bound(m, test_topo().ocs_link,
                            test_topo().ocs_reconfig_delay)
                .sec());
}

TEST(CctBoundFabric, RingScalesByHopCountPerSource) {
  Simulator sim;
  const RingFabric ring(sim, test_topo());
  TrafficMatrix m;
  m.add(RackId{0}, RackId{1}, DataSize::gigabytes(1));  // 1 hop
  m.add(RackId{0}, RackId{3}, DataSize::gigabytes(1));  // 3 hops
  m.add(RackId{7}, RackId{1}, DataSize::gigabytes(1));  // wraps: 2 hops
  // Source 0's egress is busy 1*1 + 1*3 = 4 s; source 7's only 2 s.
  EXPECT_DOUBLE_EQ(ring.cct_lower_bound(m).sec(), 4.0);
}

TEST(CctBoundFabric, RingClampsAbstractRackIdsToOneHop) {
  Simulator sim;
  const RingFabric ring(sim, test_topo());
  // PSRT plans against placeholder destination ids (1000000 + j) before
  // SBS picks real racks; the bound must stay a true lower bound for any
  // later identity assignment, i.e. count the 1-hop minimum.
  TrafficMatrix m;
  m.add(RackId{0}, RackId{1000000}, DataSize::gigabytes(1));
  m.add(RackId{0}, RackId{1000001}, DataSize::gigabytes(1));
  EXPECT_DOUBLE_EQ(ring.cct_lower_bound(m).sec(), 2.0);
}

// The incremental PSRT evaluates the fabric bound on a surrogate matrix of
// just the binding row and column (coscheduler.h); that collapse must be
// bit-exact under every fabric's formula, not only the legacy one.
TEST(CctBoundFabric, PsrtIncrementalSurrogateMatchesReferencePerFabric) {
  Simulator sim;
  const HybridTopology topo = test_topo();
  const OcsFabric ocs1(sim, topo, 1);
  const OcsFabric ocs4(sim, topo, 4);
  const RotorFabric rotor(sim, topo, Duration::milliseconds(100));
  const MeshFabric mesh(sim, topo);
  const RingFabric ring(sim, topo);
  const std::vector<const Fabric*> fabrics = {&ocs1, &ocs4, &rotor, &mesh,
                                              &ring};
  const std::vector<DataSize> sm = {DataSize::gigabytes(3),
                                    DataSize::gigabytes(2),
                                    DataSize::gigabytes(5)};
  for (const Fabric* fabric : fabrics) {
    const CctBoundFn bound = [fabric](const TrafficMatrix& matrix) {
      return fabric->cct_lower_bound(matrix);
    };
    const auto reference = possible_reduce_schedules(
        sm, 7, topo.elephant_threshold, bound, topo.num_racks);
    const auto incremental = possible_reduce_schedules_incremental(
        sm, 7, topo.elephant_threshold, bound, topo.num_racks);
    ASSERT_EQ(reference.size(), incremental.size()) << fabric->name();
    ASSERT_FALSE(reference.empty()) << fabric->name();
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference[i].d, incremental[i].d) << fabric->name();
      EXPECT_EQ(bits(reference[i].cct.sec()), bits(incremental[i].cct.sec()))
          << fabric->name() << " candidate " << i;
    }
  }
}

// The legacy-signature PSRT overloads must keep producing the pre-fabric
// bound (pinning the escape hatch and the old tests' contract).
TEST(CctBoundFabric, LegacySignatureOverloadsMatchLegacyBoundFn) {
  const HybridTopology topo = test_topo();
  const std::vector<DataSize> sm = {DataSize::gigabytes(3),
                                    DataSize::gigabytes(2)};
  const auto via_signature = possible_reduce_schedules(
      sm, 5, topo.elephant_threshold, topo.ocs_link, topo.ocs_reconfig_delay,
      topo.num_racks);
  const auto via_fn = possible_reduce_schedules(
      sm, 5, topo.elephant_threshold,
      legacy_cct_bound(topo.ocs_link, topo.ocs_reconfig_delay),
      topo.num_racks);
  ASSERT_EQ(via_signature.size(), via_fn.size());
  for (std::size_t i = 0; i < via_fn.size(); ++i) {
    EXPECT_EQ(bits(via_signature[i].cct.sec()), bits(via_fn[i].cct.sec()));
  }
}

}  // namespace
}  // namespace cosched
