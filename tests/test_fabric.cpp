// The fabric layer (ctest -L fabric, docs/FABRICS.md): the --fabric spec
// grammar, direct unit tests of each fabric's timing model (K-core plane
// parallelism, rotor slot arithmetic, mesh/ring FIFO service), the plane=
// outage grammar, and driver-level end-to-end runs — every fabric completes
// the paper workload under the invariant auditor, the default ocs:1 spec is
// bit-identical to an explicitly parsed one, and each fabric is
// deterministic under rerun.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "fabric/baseline_fabrics.h"
#include "fabric/fabric_factory.h"
#include "fabric/ocs_fabric.h"
#include "fabric/rotor_fabric.h"
#include "faults/fault_spec.h"
#include "net/fabric.h"
#include "sim/experiment.h"

namespace cosched {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// ---- spec grammar ----------------------------------------------------------

FabricSpec spec_ok(const std::string& s) {
  std::string error;
  const std::optional<FabricSpec> spec = FabricSpec::parse(s, &error);
  EXPECT_TRUE(spec.has_value()) << s << ": " << error;
  return spec.value_or(FabricSpec{});
}

std::string spec_error(const std::string& s) {
  std::string error;
  EXPECT_FALSE(FabricSpec::parse(s, &error).has_value()) << s;
  EXPECT_NE(error, "") << s;
  return error;
}

TEST(FabricSpec, ParsesEveryKind) {
  EXPECT_EQ(spec_ok("ocs").to_spec(), "ocs:1");
  EXPECT_EQ(spec_ok("ocs:1").to_spec(), "ocs:1");
  EXPECT_EQ(spec_ok("ocs:4").planes, 4);
  EXPECT_EQ(spec_ok("ocs:64").planes, 64);
  EXPECT_EQ(spec_ok("rotor").to_spec(), "rotor:0.1s");
  EXPECT_DOUBLE_EQ(spec_ok("rotor:50ms").rotor_period.sec(), 0.05);
  EXPECT_DOUBLE_EQ(spec_ok("rotor:2s").rotor_period.sec(), 2.0);
  EXPECT_DOUBLE_EQ(spec_ok("rotor:0.25").rotor_period.sec(), 0.25);
  EXPECT_EQ(spec_ok("mesh").kind, FabricKind::kMesh);
  EXPECT_EQ(spec_ok("ring").kind, FabricKind::kRing);
}

TEST(FabricSpec, DefaultIsTheSingleCoreOcs) {
  const FabricSpec def;
  EXPECT_EQ(def, spec_ok("ocs:1"));
  EXPECT_EQ(def.to_spec(), "ocs:1");
}

TEST(FabricSpec, RoundTripsThroughToSpec) {
  for (const char* s : {"ocs:1", "ocs:4", "rotor:0.1s", "rotor:50ms",
                        "rotor:2s", "mesh", "ring"}) {
    const FabricSpec spec = spec_ok(s);
    EXPECT_EQ(spec, spec_ok(spec.to_spec())) << s;
  }
}

TEST(FabricSpec, RejectsMalformedInput) {
  spec_error("");
  spec_error("ocs:0");
  spec_error("ocs:65");
  spec_error("ocs:-1");
  spec_error("ocs:2x");       // trailing junk
  spec_error("ocs:1:2");      // extra field
  spec_error("ocs:abc");
  spec_error("rotor:abc");
  spec_error("rotor:0");
  spec_error("rotor:0ms");
  spec_error("rotor:-5ms");
  spec_error("rotor:10msx");  // trailing junk
  spec_error("mesh:1");       // baselines take no parameter
  spec_error("ring:2");
  spec_error("torus");
  spec_error("OCS:1");        // case-sensitive
}

// ---- direct fabric harness -------------------------------------------------

HybridTopology topo4() {
  HybridTopology t;
  t.num_racks = 4;
  t.ocs_link = Bandwidth::gbps(100);
  t.ocs_reconfig_delay = Duration::milliseconds(10);
  return t;
}

struct FabricHarness {
  Simulator sim;
  std::unique_ptr<Fabric> fabric;
  IdAllocator<FlowId> ids;
  std::vector<std::unique_ptr<Coflow>> coflows;

  explicit FabricHarness(const std::string& spec)
      : fabric(make_fabric(sim, topo4(), spec_ok(spec))) {}

  Coflow& coflow(std::int64_t id) {
    coflows.push_back(std::make_unique<Coflow>(CoflowId{id}, JobId{id}));
    return *coflows.back();
  }

  void demand(Coflow& c, int s, int d, double gb) {
    c.add_demand(ids, RackId{s}, RackId{d}, DataSize::gigabytes(gb));
  }

  void go(Coflow& c) {
    c.mark_released(sim.now());
    for (const auto& f : c.flows()) {
      f->set_path(FlowPath::kOcs);
      fabric->submit(c, *f);
    }
  }

  double last_completion(const Coflow& c) {
    double last = 0;
    for (const auto& f : c.flows()) {
      EXPECT_TRUE(f->completed());
      last = std::max(last, f->completion_time().sec());
    }
    return last;
  }
};

// ---- K-core OCS ------------------------------------------------------------

TEST(OcsFabric, SinglePlaneMatchesSunflowTiming) {
  FabricHarness h("ocs:1");
  Coflow& c = h.coflow(0);
  h.demand(c, 0, 1, 1.25);  // 10 Gbit at 100 Gb/s = 0.1 s + 10 ms delta
  h.go(c);
  h.sim.run();
  EXPECT_NEAR(h.last_completion(c), 0.11, 1e-9);
  EXPECT_EQ(h.fabric->self_check(), "");
}

TEST(OcsFabric, SecondPlaneUnblocksAContendedPort) {
  // Two single-flow coflows fighting for port 0 -> 1. On one plane the
  // shorter coflow runs first and the longer one queues behind it; with two
  // planes both transfer concurrently.
  auto run = [](const std::string& spec) {
    FabricHarness h(spec);
    Coflow& big = h.coflow(0);
    h.demand(big, 0, 1, 12.5);  // 1 s
    Coflow& small = h.coflow(1);
    h.demand(small, 0, 1, 1.25);  // 0.1 s
    h.go(big);
    h.go(small);
    h.sim.run();
    return std::pair{h.last_completion(big), h.last_completion(small)};
  };
  const auto [big1, small1] = run("ocs:1");
  const auto [big2, small2] = run("ocs:2");
  EXPECT_NEAR(small1, 0.11, 1e-9);
  EXPECT_NEAR(big1, 0.11 + 1.01, 1e-9);  // queued behind the short coflow
  EXPECT_NEAR(small2, 0.11, 1e-9);
  EXPECT_NEAR(big2, 1.01, 1e-9);  // its own plane, no queueing
}

TEST(OcsFabric, PlaneOutageEvictsOnlyThatPlane) {
  FabricHarness h("ocs:2");
  Coflow& a = h.coflow(0);
  h.demand(a, 0, 1, 12.5);
  Coflow& b = h.coflow(1);
  h.demand(b, 2, 3, 12.5);
  h.go(a);
  h.go(b);
  h.sim.run_until(SimTime::seconds(0.5));
  ASSERT_EQ(h.fabric->active_transfers(), 2u);
  // Plane 0 carries both (disjoint ports); plane 1 is idle. Fail plane 0.
  const std::vector<Flow*> evicted = h.fabric->begin_plane_outage(0);
  EXPECT_EQ(evicted.size(), 2u);
  EXPECT_FALSE(h.fabric->plane_available(0));
  EXPECT_TRUE(h.fabric->plane_available(1));
  // Queued demand re-allocates onto the surviving plane (pending demand
  // stays with the fabric; the evicted in-flight remainder is the driver's
  // to reroute). Healing the plane later must be accepted.
  h.fabric->end_plane_outage(0);
  EXPECT_TRUE(h.fabric->plane_available(0));
  EXPECT_EQ(h.fabric->self_check(), "");
}

// ---- rotor -----------------------------------------------------------------

TEST(RotorFabric, FollowsTheSlotArithmetic) {
  // R=4, period 0.1 s, delta 10 ms, one 10 Gbit flow 0 -> 1 submitted at
  // t=0. Shift s(k) = 1 + (k mod 3), so pair (0,1) is served in slots
  // 3, 6, 9, ... Slot 3 ([0.3, 0.4)) pays delta at 0.3, transfers
  // 0.31..0.4 (9 Gbit); the remaining 1 Gbit completes in slot 6 at
  // 0.61 + 0.01 = 0.62 s.
  FabricHarness h("rotor:0.1s");
  Coflow& c = h.coflow(0);
  h.demand(c, 0, 1, 1.25);
  h.go(c);
  h.sim.run();
  EXPECT_NEAR(h.last_completion(c), 0.62, 1e-9);
  auto& rotor = dynamic_cast<RotorFabric&>(*h.fabric);
  EXPECT_GE(rotor.slots_run(), 6);
  EXPECT_EQ(h.fabric->self_check(), "");
  EXPECT_DOUBLE_EQ(h.fabric->uncredited_settled_bits(), 0.0);
}

TEST(RotorFabric, IdlesWhenEmptyAndReruns) {
  // The rotor clock disarms when no demand is pending, so the simulation
  // drains instead of ticking forever; a later submission re-arms it.
  FabricHarness h("rotor:0.1s");
  Coflow& first = h.coflow(0);
  h.demand(first, 0, 1, 1.25);
  h.go(first);
  h.sim.run();  // would never return if the clock kept ticking
  EXPECT_NEAR(h.last_completion(first), 0.62, 1e-9);
  Coflow& second = h.coflow(1);
  h.demand(second, 0, 1, 1.25);
  h.go(second);
  h.sim.run();
  EXPECT_GT(h.last_completion(second), h.last_completion(first));
}

TEST(RotorFabric, PeriodChangesTheSchedule) {
  auto run = [](const std::string& spec) {
    FabricHarness h(spec);
    Coflow& c = h.coflow(0);
    h.demand(c, 0, 1, 1.25);
    h.go(c);
    h.sim.run();
    return h.last_completion(c);
  };
  const double base = run("rotor:0.1s");
  EXPECT_EQ(bits(run("rotor:0.1s")), bits(base));  // reproducible
  EXPECT_NE(bits(run("rotor:200ms")), bits(base));
}

TEST(RotorFabric, ServesEveryPairEventually) {
  FabricHarness h("rotor:50ms");
  Coflow& c = h.coflow(0);
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 4; ++d) {
      if (s != d) h.demand(c, s, d, 0.625);
    }
  }
  h.go(c);
  h.sim.run();
  EXPECT_GT(h.last_completion(c), 0.0);
  EXPECT_EQ(h.fabric->pending_flows(), 0u);
  EXPECT_EQ(h.fabric->active_transfers(), 0u);
  EXPECT_EQ(h.fabric->bytes_in_flight().in_bytes(), 0);
}

// ---- baselines -------------------------------------------------------------

TEST(MeshFabric, DisjointPairsRunConcurrently) {
  FabricHarness h("mesh");
  Coflow& c = h.coflow(0);
  h.demand(c, 0, 1, 1.25);
  h.demand(c, 2, 3, 1.25);
  h.go(c);
  h.sim.run();
  // Full mesh: no reconfiguration, both pairs at full link rate.
  EXPECT_NEAR(h.last_completion(c), 0.1, 1e-9);
}

TEST(MeshFabric, SamePairServesFifo) {
  FabricHarness h("mesh");
  Coflow& first = h.coflow(0);
  h.demand(first, 0, 1, 1.25);
  Coflow& second = h.coflow(1);
  h.demand(second, 0, 1, 1.25);
  h.go(first);
  h.go(second);
  h.sim.run();
  EXPECT_NEAR(h.last_completion(first), 0.1, 1e-9);
  EXPECT_NEAR(h.last_completion(second), 0.2, 1e-9);
  EXPECT_EQ(h.fabric->self_check(), "");
}

TEST(RingFabric, RateScalesWithHopCount) {
  auto run = [](int dst) {
    FabricHarness h("ring");
    Coflow& c = h.coflow(0);
    h.demand(c, 0, dst, 1.25);
    h.go(c);
    h.sim.run();
    return h.last_completion(c);
  };
  // hops(0,1)=1 at full rate; hops(0,3)=3 at a third of it.
  EXPECT_NEAR(run(1), 0.1, 1e-9);
  EXPECT_NEAR(run(3), 0.3, 1e-9);
}

TEST(RingFabric, HopCountWrapsAround) {
  FabricHarness h("ring");
  const auto& ring = dynamic_cast<const RingFabric&>(*h.fabric);
  EXPECT_EQ(ring.hops(RackId{0}, RackId{1}), 1);
  EXPECT_EQ(ring.hops(RackId{0}, RackId{3}), 3);
  EXPECT_EQ(ring.hops(RackId{3}, RackId{0}), 1);
  EXPECT_EQ(ring.hops(RackId{2}, RackId{1}), 3);
}

TEST(BaselineFabrics, EvictAllReturnsEverything) {
  for (const char* spec : {"mesh", "ring"}) {
    FabricHarness h(spec);
    Coflow& c = h.coflow(0);
    h.demand(c, 0, 1, 12.5);
    h.demand(c, 2, 3, 12.5);
    // A second coflow on the same (0,1) pair queues behind the first.
    Coflow& c2 = h.coflow(1);
    h.demand(c2, 0, 1, 12.5);
    h.go(c);
    h.go(c2);
    h.sim.run_until(SimTime::seconds(0.1));
    const std::vector<Flow*> evicted = h.fabric->evict_all();
    EXPECT_EQ(evicted.size(), 3u) << spec;
    EXPECT_EQ(h.fabric->pending_flows(), 0u) << spec;
    EXPECT_EQ(h.fabric->active_transfers(), 0u) << spec;
    EXPECT_EQ(h.fabric->self_check(), "") << spec;
  }
}

// ---- plane= outage grammar -------------------------------------------------

TEST(FabricFaults, PlaneClauseParsesAndRoundTrips) {
  std::string error;
  const std::optional<FaultPlan> plan =
      FaultPlan::parse("ocs-outage:at=10s:dur=5s:plane=2", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->ocs_outages.size(), 1u);
  EXPECT_EQ(plan->ocs_outages[0].plane, 2);
  EXPECT_NE(plan->to_spec().find(":plane=2"), std::string::npos);
  const std::optional<FaultPlan> reparsed =
      FaultPlan::parse(plan->to_spec(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->ocs_outages[0].plane, 2);
}

TEST(FabricFaults, PlaneDefaultsToWholeFabric) {
  std::string error;
  const std::optional<FaultPlan> plan =
      FaultPlan::parse("ocs-outage:at=10s:dur=5s", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_EQ(plan->ocs_outages[0].plane, -1);
  EXPECT_EQ(plan->to_spec().find("plane"), std::string::npos);
}

TEST(FabricFaults, RejectsBadPlaneValues) {
  for (const char* s :
       {"ocs-outage:at=10s:dur=5s:plane=-1", "ocs-outage:at=10s:dur=5s:plane=1.5",
        "ocs-outage:at=10s:dur=5s:plane=abc", "ocs-outage:at=10s:dur=5s:plane=2s",
        "ocs-outage:at=10s:dur=5s:plane="}) {
    std::string error;
    EXPECT_FALSE(FaultPlan::parse(s, &error).has_value()) << s;
  }
}

// ---- end-to-end driver runs ------------------------------------------------

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.sim.topo.num_racks = 12;
  cfg.sim.topo.servers_per_rack = 2;
  cfg.sim.topo.slots_per_server = 10;
  cfg.workload.num_jobs = 15;
  cfg.workload.num_users = 4;
  cfg.workload.arrival_window = Duration::minutes(3);
  cfg.workload.max_maps = 60;
  cfg.workload.max_reduces = 8;
  cfg.workload.heavy_input_mu = 2.5;
  cfg.workload.heavy_input_sigma = 0.8;
  cfg.workload.max_input = DataSize::gigabytes(50);
  cfg.repetitions = 1;
  cfg.base_seed = 17;
  cfg.sim.audit = true;
  return cfg;
}

void expect_run_bitwise_equal(const RunMetrics& a, const RunMetrics& b,
                              const std::string& where) {
  EXPECT_EQ(bits(a.makespan.sec()), bits(b.makespan.sec())) << where;
  EXPECT_EQ(a.ocs_bytes.in_bytes(), b.ocs_bytes.in_bytes()) << where;
  EXPECT_EQ(a.eps_bytes.in_bytes(), b.eps_bytes.in_bytes()) << where;
  EXPECT_EQ(a.local_bytes.in_bytes(), b.local_bytes.in_bytes()) << where;
  EXPECT_EQ(a.events_executed, b.events_executed) << where;
  EXPECT_EQ(a.dispatch_waves, b.dispatch_waves) << where;
  ASSERT_EQ(a.jobs.size(), b.jobs.size()) << where;
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(bits(a.jobs[j].jct.sec()), bits(b.jobs[j].jct.sec()))
        << where << " job#" << j;
    EXPECT_EQ(bits(a.jobs[j].cct.sec()), bits(b.jobs[j].cct.sec()))
        << where << " job#" << j;
  }
}

TEST(FabricRuns, DefaultSpecIsBitIdenticalToExplicitOcs1) {
  ExperimentConfig def = small_config();  // fabric left at FabricSpec{}
  ExperimentConfig explicit_cfg = small_config();
  explicit_cfg.sim.fabric = spec_ok("ocs:1");
  const SchedulerFactory factory = make_scheduler_factory("coscheduler");
  expect_run_bitwise_equal(run_once(def, factory, 0),
                           run_once(explicit_cfg, factory, 0), "ocs:1");
}

TEST(FabricRuns, EveryFabricCompletesUnderTheAuditor) {
  for (const char* spec : {"ocs:1", "ocs:4", "rotor:100ms", "mesh", "ring"}) {
    for (const char* sched : {"coscheduler", "fair"}) {
      ExperimentConfig cfg = small_config();
      cfg.sim.fabric = spec_ok(spec);
      const RunMetrics m = run_once(cfg, make_scheduler_factory(sched), 0);
      EXPECT_GT(m.makespan.sec(), 0.0) << spec << "/" << sched;
      EXPECT_EQ(m.jobs.size(), 15u) << spec << "/" << sched;
      for (const JobRecord& j : m.jobs) {
        EXPECT_GE(j.completion.sec(), j.arrival.sec())
            << spec << "/" << sched;
      }
    }
  }
}

TEST(FabricRuns, NonDefaultFabricsAreDeterministic) {
  for (const char* spec : {"ocs:4", "rotor:100ms", "mesh", "ring"}) {
    ExperimentConfig cfg = small_config();
    cfg.sim.fabric = spec_ok(spec);
    const SchedulerFactory factory = make_scheduler_factory("coscheduler");
    expect_run_bitwise_equal(run_once(cfg, factory, 0),
                             run_once(cfg, factory, 0), spec);
  }
}

TEST(FabricRuns, PlaneOutageOnKCoreCompletesUnderAudit) {
  ExperimentConfig cfg = small_config();
  cfg.sim.fabric = spec_ok("ocs:2");
  std::string error;
  const std::optional<FaultPlan> plan = FaultPlan::parse(
      "ocs-outage:at=30s:dur=60s:plane=1,ocs-outage:at=150s:dur=30s:plane=0",
      &error);
  ASSERT_TRUE(plan.has_value()) << error;
  cfg.sim.faults = *plan;
  const RunMetrics m =
      run_once(cfg, make_scheduler_factory("coscheduler"), 0);
  EXPECT_EQ(m.jobs.size(), 15u);
  EXPECT_EQ(m.faults.ocs_outages, 2);
}

TEST(FabricRuns, OutOfRangePlaneDegradesToWholeFabricOutage) {
  // plane=7 on ocs:2 (and any plane= on rotor/mesh) has no such plane; the
  // driver degrades it to a whole-fabric outage instead of crashing, so
  // fault plans compose with every --fabric choice.
  for (const char* spec : {"ocs:2", "rotor:100ms", "mesh"}) {
    ExperimentConfig cfg = small_config();
    cfg.sim.fabric = spec_ok(spec);
    std::string error;
    const std::optional<FaultPlan> plan =
        FaultPlan::parse("ocs-outage:at=30s:dur=60s:plane=7", &error);
    ASSERT_TRUE(plan.has_value()) << error;
    cfg.sim.faults = *plan;
    const RunMetrics m =
        run_once(cfg, make_scheduler_factory("coscheduler"), 0);
    EXPECT_EQ(m.jobs.size(), 15u) << spec;
    EXPECT_EQ(m.faults.ocs_outages, 1) << spec;
  }
}

TEST(FabricRuns, WholeFabricOutageCompletesOnEveryFabric) {
  for (const char* spec : {"ocs:4", "rotor:100ms", "ring"}) {
    ExperimentConfig cfg = small_config();
    cfg.sim.fabric = spec_ok(spec);
    std::string error;
    const std::optional<FaultPlan> plan =
        FaultPlan::parse("ocs-outage:at=30s:dur=60s", &error);
    ASSERT_TRUE(plan.has_value()) << error;
    cfg.sim.faults = *plan;
    const RunMetrics m =
        run_once(cfg, make_scheduler_factory("coscheduler"), 0);
    EXPECT_EQ(m.jobs.size(), 15u) << spec;
    EXPECT_EQ(m.faults.ocs_outages, 1) << spec;
  }
}

}  // namespace
}  // namespace cosched
